module Relset = Rdb_util.Relset
module Stat_utils = Rdb_util.Stat_utils
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Estimator = Rdb_card.Estimator
module Cost_model = Rdb_cost.Cost_model
module Interval = Rdb_cost.Interval
module Plan = Rdb_plan.Plan
module Optimizer = Rdb_plan.Optimizer
module Search_space = Rdb_plan.Search_space
module Db_stats = Rdb_stats.Db_stats
module Col_stats = Rdb_stats.Col_stats
module Mcv = Rdb_stats.Mcv
module Metrics = Rdb_obs.Metrics
module Json = Rdb_obs.Json

type bounds = Relset.t -> float * float

let trivial_bounds ~catalog (q : Query.t) : bounds =
 fun set ->
  let hi =
    List.fold_left
      (fun acc r ->
        let tbl = Catalog.table_exn catalog q.Query.rels.(r).Query.table in
        acc *. float_of_int (Table.nrows tbl))
      1.0 (Relset.to_list set)
  in
  (0.0, hi)

type transition = {
  tr_set : Relset.t;
  tr_aliases : string list;
  tr_est : float;
  tr_interval : float * float;
  tr_assumed : float;
  tr_temp_slots_hi : float;
  tr_shape_before : string;
  tr_shape_after : string;
  tr_useless : bool;
}

type reopt_report = {
  ro_threshold : float;
  ro_transitions : transition list;
  ro_predicted_replans : int;
  ro_stable : bool;
  ro_thrashing : (string * int * int) option;
  ro_temp_slots_hi : float;
}

type cert = {
  cert_shape : string;
  cert_mem : Interval.t;
  cert_work : Interval.t;
  cert_out : Interval.t;
  cert_replans_hi : int;
  cert_reopt : reopt_report option;
}

(* {1 Interval arithmetic over non-negative quantities}

   Every memory/work recurrence below is a composition of sums, products
   and maxima of terms monotone (non-decreasing) in each cardinality
   input, so corner evaluation — the formula at all-lower and at all-upper
   endpoints — is the exact interval image, the same argument
   [Rdb_cost.Interval] rests on. *)

let iv lo hi = { Interval.lo; hi }
let imax a b = iv (Float.max a.Interval.lo b.Interval.lo) (Float.max a.Interval.hi b.Interval.hi)
let iadd a b = Interval.add a b
let imul a b = iv (a.Interval.lo *. b.Interval.lo) (a.Interval.hi *. b.Interval.hi)
let iscale a k = iv (a.Interval.lo *. k) (a.Interval.hi *. k)

(* Upper bound on the executor's integer sort cost n*(1 + floor(log2 n))
   for any n <= r; the extra +1 absorbs the float log's rounding. *)
let sort_hi r =
  if r <= 1.0 then r else r *. (2.0 +. Float.log (Float.max 1.0 r) /. Float.log 2.0)

(* {1 MCV max-frequency}

   A sound per-value row-count bound for an (analyzed) column: the MCV
   list keeps the most frequent values occurring at least twice, so an
   unlisted value's count never exceeds the top listed count, and an
   empty list on an analyzed column (histogram present) means no value
   occurs twice at all. Rows appended after ANALYZE (guarded by the live
   vs. analyzed row-count delta) could each add one occurrence. *)
let max_freq stats tbl ~col =
  let live = float_of_int (Table.nrows tbl) in
  match Db_stats.col stats ~table:(Table.name tbl) ~col with
  | None -> live
  | Some cs ->
    let analyzed = float_of_int cs.Col_stats.row_count in
    let appended = Float.max 0.0 (live -. analyzed) in
    (match Mcv.entries cs.Col_stats.mcv with
     | (_, f) :: _ -> Float.min live (ceil (f *. analyzed) +. appended)
     | [] ->
       (match cs.Col_stats.hist with
        | Some _ -> Float.min live (1.0 +. appended)
        | None -> live))

(* As above, but for one specific key value: its exact MCV count when
   listed, otherwise the least listed count (the list is sorted most
   frequent first). *)
let key_freq stats tbl ~col ~key =
  let live = float_of_int (Table.nrows tbl) in
  match Db_stats.col stats ~table:(Table.name tbl) ~col with
  | None -> live
  | Some cs ->
    let analyzed = float_of_int cs.Col_stats.row_count in
    let appended = Float.max 0.0 (live -. analyzed) in
    let entries = Mcv.entries cs.Col_stats.mcv in
    let bound =
      match Mcv.frequency cs.Col_stats.mcv (Value.Int key) with
      | Some f -> ceil (f *. analyzed)
      | None ->
        (match List.rev entries with
         | (_, f_min) :: _ -> ceil (f_min *. analyzed)
         | [] -> (match cs.Col_stats.hist with Some _ -> 1.0 | None -> live))
    in
    Float.min live (bound +. appended)

(* {1 The abstract interpreter}

   One bottom-up walk mirrors the executor exactly. Per node:
   - [rows]: the sound interval on true output rows (clamped non-negative
     and, for scans, to the table size);
   - [slots]: rows x width — the node's resident footprint once built;
   - [mem]: interval on the peak resident slots while the subtree runs.
     The outer intermediate is live while the inner subtree executes, and
     both inputs plus the operator's transient structures (hash build
     table: one entry per inner row; merge join: one key cell per row per
     side) plus the output are live at the operator itself;
   - [work]: interval on the executor's [spend] total. Emitted-row terms
     equal the output cardinality (every probe match / merge group pair is
     emitted); index fan-outs are bounded by MCV max-frequency. *)
type acc = {
  rows : Interval.t;
  slots : Interval.t;
  mem : Interval.t;
  work : Interval.t;
}

let interp ~bounds ~catalog ~stats (q : Query.t) plan =
  let table_of rel = Catalog.table_exn catalog q.Query.rels.(rel).Query.table in
  let rows_of set =
    let lo, hi = bounds set in
    let lo = Float.max 0.0 lo in
    iv lo (Float.max lo hi)
  in
  let rec go p =
    match p with
    | Plan.Scan s ->
      let rel = s.Plan.scan_rel in
      let tbl = table_of rel in
      let n = float_of_int (Table.nrows tbl) in
      let r = rows_of (Relset.singleton rel) in
      let r = iv (Float.min r.Interval.lo n) (Float.min r.Interval.hi n) in
      let work =
        match s.Plan.access with
        | Plan.Seq_scan -> iv n n
        | Plan.Index_scan { col; key } ->
          iv r.Interval.lo (Float.max r.Interval.lo (key_freq stats tbl ~col ~key))
      in
      { rows = r; slots = r; mem = r; work }
    | Plan.Join j ->
      let o = go j.Plan.outer in
      let set =
        Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner)
      in
      let out_rows = rows_of set in
      let out_slots = iscale out_rows (float_of_int (Relset.cardinal set)) in
      (* Peak for a blocking join: the outer subtree alone, then the outer
         result alive during the inner subtree, then both inputs + the
         operator's transient structures + the output. *)
      let blocking i aux =
        imax o.mem (imax (iadd o.slots i.mem) (iadd (iadd o.slots i.slots) (iadd aux out_slots)))
      in
      (match j.Plan.algo with
       | Plan.Hash_join ->
         let i = go j.Plan.inner in
         {
           rows = out_rows;
           slots = out_slots;
           mem = blocking i i.rows;
           work =
             iadd (iadd o.work i.work) (iadd (iadd i.rows o.rows) out_rows);
         }
       | Plan.Merge_join ->
         let i = go j.Plan.inner in
         let sort_terms =
           iv 0.0 (sort_hi o.rows.Interval.hi +. sort_hi i.rows.Interval.hi)
         in
         {
           rows = out_rows;
           slots = out_slots;
           mem = blocking i (iadd o.rows i.rows);
           work =
             iadd (iadd o.work i.work)
               (iadd (iadd o.rows i.rows) (iadd sort_terms out_rows));
         }
       | Plan.Nested_loop ->
         let i = go j.Plan.inner in
         {
           rows = out_rows;
           slots = out_slots;
           mem = blocking i (iv 0.0 0.0);
           work = iadd (iadd o.work i.work) (imul o.rows i.rows);
         }
       | Plan.Index_nl { inner_col } ->
         (* The inner side is probed through its index, never materialized:
            only the outer result and the accumulating output are resident.
            Per outer row the executor charges that key's index fan-out,
            bounded by the column's max frequency; every emitted row came
            from a distinct candidate, so the fan-out total is also bounded
            below by the output. *)
         let inner_rel =
           match j.Plan.inner with
           | Plan.Scan s -> s.Plan.scan_rel
           | Plan.Join _ -> invalid_arg "Resource: index NL over a join"
         in
         let fanout = max_freq stats (table_of inner_rel) ~col:inner_col in
         {
           rows = out_rows;
           slots = out_slots;
           mem = imax o.mem (iadd o.slots out_slots);
           work =
             iadd o.work
               (iv
                  (o.rows.Interval.lo +. out_rows.Interval.lo)
                  (o.rows.Interval.hi *. (1.0 +. fanout)));
         })
  in
  go plan

(* {1 Re-opt transition simulation}

   The real loop (Rdb_core.Reopt) materializes the triggered join, rewrites
   the query around the temp table and replans. Abstractly, the effect of a
   materialization on planning is that the set's cardinality becomes known:
   we confirm the triggered set at its worst admissible corner (a point
   envelope) and replan the *original* query with that subset pinned — the
   same machinery as {!Sensitivity.replan}, extended to a set of pinned
   subsets. A confirmed set can never re-trigger (its estimate now equals
   its envelope), so every simulated step confirms a fresh subset and the
   trajectory terminates. *)

let replan_pinned ~space ~cost_params ~catalog ~estimator (q : Query.t)
    confirmed =
  Metrics.incr "analysis.resource_replans";
  let pinned =
    Estimator.create
      ~bound:(fun s v ->
        match List.find_opt (fun (s', _) -> Relset.equal s' s) confirmed with
        | Some (_, c) -> c
        | None -> v)
      ~mode:(Estimator.mode estimator) ~catalog
      ~stats:(Estimator.db_stats estimator)
      ?oracle:(Estimator.oracle estimator) q
  in
  let p, _stats =
    Optimizer.plan ~lint:false ~verify:false ~sensitivity:false
      ~resource:false ~space ~cost_params ~catalog ~estimator:pinned q
  in
  p

(* Upper bound on the materialized temp table's column count: Reopt keeps
   one representative per equivalence class of the crossing-edge endpoints
   inside the set plus the aggregate columns inside the set, so the
   distinct such columns bound it from above. *)
let temp_width_hi (q : Query.t) set =
  let inside (cr : Query.colref) = Relset.mem cr.Query.rel set in
  let cols = ref [] in
  let add (cr : Query.colref) =
    if
      not
        (List.exists
           (fun (c : Query.colref) ->
             c.Query.rel = cr.Query.rel && c.Query.col = cr.Query.col)
           !cols)
    then cols := cr :: !cols
  in
  List.iter
    (fun ({ l; r } : Query.edge) ->
      match (inside l, inside r) with
      | true, false -> add l
      | false, true -> add r
      | _ -> ())
    q.Query.edges;
  List.iter
    (function
      | Query.Count_star -> ()
      | Query.Count_col cr | Query.Min_col cr | Query.Max_col cr
      | Query.Sum_col cr ->
        if inside cr then add cr)
    q.Query.select;
  Int.max 1 (List.length !cols)

let detect_oscillation shapes =
  let arr = Array.of_list shapes in
  let n = Array.length arr in
  let found = ref None in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         if
           !found = None
           && String.equal arr.(i) arr.(j)
           && (let departed = ref false in
               for m = i + 1 to j - 1 do
                 if not (String.equal arr.(m) arr.(i)) then departed := true
               done;
               !departed)
         then begin
           found := Some (arr.(i), i, j);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let aliases_of q set = List.map (Query.rel_alias q) (Relset.to_list set)

let simulate ~bounds ~threshold ~min_actual_rows ~max_steps ~space
    ~cost_params ~catalog ~estimator (q : Query.t) plan0 =
  let space =
    match space with
    | Some s -> s
    | None -> Search_space.build (Join_graph.make q)
  in
  let envelope =
    Sensitivity.intersect (Sensitivity.q_envelope threshold)
      (Sensitivity.of_intervals bounds)
  in
  let replan = replan_pinned ~space ~cost_params ~catalog ~estimator q in
  let confirmed = ref [] in
  let transitions = ref [] in
  let shapes = ref [ Plan.shape q plan0 ] in
  let rec loop step plan =
    if step >= max_steps then false
    else begin
      let env s ~est =
        match
          List.find_opt (fun (s', _) -> Relset.equal s' s) !confirmed
        with
        | Some (_, c) -> (c, c)
        | None -> envelope s ~est
      in
      match
        Sensitivity.predict_trigger ~min_actual_rows ~envelope:env ~threshold
          q plan
      with
      | None -> true
      | Some p ->
        let set = p.Sensitivity.pred_set in
        let est = p.Sensitivity.pred_est in
        let lo, hi = p.Sensitivity.pred_interval in
        let assumed =
          if
            Stat_utils.q_error ~est ~actual:lo
            >= Stat_utils.q_error ~est ~actual:hi
          then lo
          else hi
        in
        let corners =
          if Float.abs (hi -. lo) <= 1e-9 *. Float.max 1.0 (Float.abs hi) then
            [ lo ]
          else [ lo; hi ]
        in
        let replanned =
          List.map (fun c -> (c, replan ((set, c) :: !confirmed))) corners
        in
        let useless =
          List.for_all (fun (_, p') -> Plan.same_shape plan p') replanned
        in
        confirmed := (set, assumed) :: !confirmed;
        let plan' =
          match List.assoc_opt assumed replanned with
          | Some p' -> p'
          | None -> replan !confirmed
        in
        let shape_before = Plan.shape q plan in
        let shape_after = Plan.shape q plan' in
        let _, bhi = bounds set in
        transitions :=
          {
            tr_set = set;
            tr_aliases = aliases_of q set;
            tr_est = est;
            tr_interval = (lo, hi);
            tr_assumed = assumed;
            tr_temp_slots_hi =
              Float.max 0.0 bhi *. float_of_int (temp_width_hi q set);
            tr_shape_before = shape_before;
            tr_shape_after = shape_after;
            tr_useless = useless;
          }
          :: !transitions;
        shapes := shape_after :: !shapes;
        loop (step + 1) plan'
    end
  in
  let stable = loop 0 plan0 in
  let transitions = List.rev !transitions in
  {
    ro_threshold = threshold;
    ro_transitions = transitions;
    ro_predicted_replans = List.length transitions;
    ro_stable = stable;
    ro_thrashing = detect_oscillation (List.rev !shapes);
    ro_temp_slots_hi =
      List.fold_left (fun acc t -> acc +. t.tr_temp_slots_hi) 0.0 transitions;
  }

let default_threshold = 32.0
let default_max_steps = 32

let certify ?bounds ?(transitions = false) ?(threshold = default_threshold)
    ?(min_actual_rows = 0) ?(max_steps = default_max_steps) ?space
    ?(cost_params = Cost_model.default) ~catalog ~estimator (q : Query.t)
    plan =
  Metrics.incr "analysis.resource_certs";
  let bounds =
    match bounds with Some b -> b | None -> trivial_bounds ~catalog q
  in
  let stats = Estimator.db_stats estimator in
  let a = interp ~bounds ~catalog ~stats q plan in
  (* Each re-opt step materializes a join of >= 2 relations, so the
     rewritten query has at least one relation fewer; a single-relation
     query has no joins to trigger on. *)
  let replans_hi = Int.max 0 (Int.min max_steps (Query.n_rels q - 1)) in
  let cert_reopt =
    if not transitions then None
    else
      Some
        (simulate ~bounds ~threshold ~min_actual_rows
           ~max_steps:replans_hi ~space ~cost_params ~catalog ~estimator q
           plan)
  in
  {
    cert_shape = Plan.shape q plan;
    cert_mem = a.mem;
    cert_work = a.work;
    cert_out = a.rows;
    cert_replans_hi = replans_hi;
    cert_reopt;
  }

let mem_hi cert = cert.cert_mem.Interval.hi

let rows_str v =
  if Float.abs v < 1e7 && Float.equal (Float.round v) v then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

let interval_str (i : Interval.t) =
  Printf.sprintf "[%s, %s]" (rows_str i.Interval.lo) (rows_str i.Interval.hi)

let string_of_aliases aliases = String.concat "," aliases

let findings ?budget (_q : Query.t) cert =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  let malformed (i : Interval.t) =
    i.Interval.lo > i.Interval.hi || i.Interval.lo < 0.0
    || Float.is_nan i.Interval.lo || Float.is_nan i.Interval.hi
  in
  List.iter
    (fun (name, i) ->
      if malformed i then
        add
          (Finding.error ~code:"resource-cert-invalid"
             (Printf.sprintf "%s interval %s of plan %s is malformed" name
                (interval_str i) cert.cert_shape)))
    [ ("memory", cert.cert_mem); ("work", cert.cert_work);
      ("output", cert.cert_out) ];
  (match budget with
  | Some b when mem_hi cert > b ->
    add
      (Finding.error ~code:"resource-over-budget"
         (Printf.sprintf
            "plan %s: certified peak memory %s row-slots exceeds the budget \
             of %s — admission control must reject or downgrade it"
            cert.cert_shape (interval_str cert.cert_mem) (rows_str b)))
  | Some _ | None -> ());
  (match cert.cert_reopt with
  | None -> ()
  | Some ro ->
    (match ro.ro_thrashing with
    | Some (shape, i, j) ->
      add
        (Finding.warning ~code:"resource-thrashing"
           (Printf.sprintf
              "re-plan loop oscillates: shape %s at step %d is re-planned \
               back into at step %d (threshold %g) — re-optimization \
               thrashes instead of converging"
              shape i j ro.ro_threshold))
    | None -> ());
    List.iter
      (fun t ->
        if t.tr_useless then
          add
            (Finding.warning ~code:"resource-useless-materialization"
               (Printf.sprintf
                  "materializing join {%s} (est %s, plausible %s) cannot \
                   change the DP choice at any admissible cardinality — \
                   the trigger would pay up to %s temp cells for nothing"
                  (string_of_aliases t.tr_aliases) (rows_str t.tr_est)
                  (Printf.sprintf "[%s, %s]"
                     (rows_str (fst t.tr_interval))
                     (rows_str (snd t.tr_interval)))
                  (rows_str t.tr_temp_slots_hi))))
      ro.ro_transitions);
  if not (List.exists (fun f -> f.Finding.severity = Finding.Error) !fs) then
    add
      (Finding.info ~code:"resource-certificate"
         (Printf.sprintf
            "plan %s: peak memory %s row-slots, work %s units, output %s \
             rows, at most %d replans%s"
            cert.cert_shape (interval_str cert.cert_mem)
            (interval_str cert.cert_work)
            (interval_str cert.cert_out)
            cert.cert_replans_hi
            (match cert.cert_reopt with
            | Some ro ->
              Printf.sprintf " (%d predicted%s)" ro.ro_predicted_replans
                (if ro.ro_stable then ", stable" else "")
            | None -> "")));
  List.rev !fs

let check ?bounds ?budget ?transitions ?threshold ?space ?cost_params
    ~catalog ~estimator q plan =
  let cert =
    certify ?bounds ?transitions ?threshold ?space ?cost_params ~catalog
      ~estimator q plan
  in
  findings ?budget q cert

let json_interval (i : Interval.t) =
  Json.Obj [ ("lo", Json.Float i.Interval.lo); ("hi", Json.Float i.Interval.hi) ]

let to_json cert =
  let transition t =
    Json.Obj
      [
        ("aliases", Json.List (List.map (fun a -> Json.Str a) t.tr_aliases));
        ("est", Json.Float t.tr_est);
        ("interval_lo", Json.Float (fst t.tr_interval));
        ("interval_hi", Json.Float (snd t.tr_interval));
        ("assumed", Json.Float t.tr_assumed);
        ("temp_slots_hi", Json.Float t.tr_temp_slots_hi);
        ("shape_before", Json.Str t.tr_shape_before);
        ("shape_after", Json.Str t.tr_shape_after);
        ("useless", Json.Bool t.tr_useless);
      ]
  in
  Json.Obj
    ([
       ("shape", Json.Str cert.cert_shape);
       ("mem", json_interval cert.cert_mem);
       ("work", json_interval cert.cert_work);
       ("out", json_interval cert.cert_out);
       ("replans_hi", Json.Int cert.cert_replans_hi);
     ]
    @
    match cert.cert_reopt with
    | None -> []
    | Some ro ->
      [
        ( "reopt",
          Json.Obj
            [
              ("threshold", Json.Float ro.ro_threshold);
              ("predicted_replans", Json.Int ro.ro_predicted_replans);
              ("stable", Json.Bool ro.ro_stable);
              ( "thrashing",
                match ro.ro_thrashing with
                | None -> Json.Null
                | Some (shape, i, j) ->
                  Json.Obj
                    [
                      ("shape", Json.Str shape);
                      ("first", Json.Int i);
                      ("again", Json.Int j);
                    ] );
              ("temp_slots_hi", Json.Float ro.ro_temp_slots_hi);
              ( "transitions",
                Json.List (List.map transition ro.ro_transitions) );
            ] );
      ])
