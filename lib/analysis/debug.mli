(** Debug-mode wiring: install the lint passes as invariant checkers inside
    the planning pipeline.

    With [RDB_LINT=1] in the environment (or an explicit [~lint:true]
    argument at the call sites that take one), every plan returned by
    [Optimizer.plan]/[plan_robust] and every re-optimization rewrite step is
    linted, and error-severity findings raise {!Lint_failed} instead of
    letting a corrupted artifact produce wrong answers. *)

exception Lint_failed of Finding.t list
(** Carries the error-severity findings; the registered printer renders
    them one per line. *)

val enabled : unit -> bool
(** [RDB_LINT] is set to [1] or [true] in the environment. *)

val sensitivity_threshold : unit -> float option
(** The Q-error envelope factor requested through [RDB_SENSITIVITY]:
    [None] when unset/[0]/[false], [Some 32.] for [1]/[true] (the default
    envelope), [Some t] for a numeric value [t >= 1]. *)

val install : unit -> unit
(** Install the plan-lint hook into [Rdb_plan.Optimizer.lint_hook], the
    plan-robustness analyzer into [Rdb_plan.Optimizer.sensitivity_hook]
    (interval cost propagation and cost-consistency checks only — no corner
    replans on the planning hot path), and the resource certifier into
    [Rdb_plan.Optimizer.resource_hook] (certificate well-formedness only —
    no transition simulation, enabled via [RDB_RESOURCE]). Idempotent;
    called by [Rdb_core.Session.create], so any session-based pipeline
    honors [RDB_LINT=1] / [RDB_SENSITIVITY=...] / [RDB_RESOURCE=1] without
    further wiring. *)

val check_query_exn : catalog:Catalog.t -> Rdb_query.Query.t -> unit
(** Run {!Query_lint.check}; raise {!Lint_failed} on error findings. *)

val check_plan_exn :
  catalog:Catalog.t ->
  ?estimator:Rdb_card.Estimator.t ->
  Rdb_query.Query.t ->
  Rdb_plan.Plan.t ->
  unit
(** Run {!Query_lint.check} and {!Plan_lint.check}; raise {!Lint_failed} on
    error findings. *)
