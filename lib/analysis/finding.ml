type severity =
  | Info
  | Warning
  | Error

type t = { severity : severity; code : string; message : string }

let make severity code message = { severity; code; message }
let info ~code message = make Info code message
let warning ~code message = make Warning code message
let error ~code message = make Error code message

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let errors fs = List.filter (fun f -> f.severity = Error) fs
let has_errors fs = List.exists (fun f -> f.severity = Error) fs
let by_code code fs = List.filter (fun f -> f.code = code) fs

let to_string f =
  Printf.sprintf "%s[%s]: %s" (severity_name f.severity) f.code f.message

let render fs = String.concat "\n" (List.map to_string fs)

let pp ppf f = Format.pp_print_string ppf (to_string f)
