(** Static lint over a physical plan against its bound query: the structural
    invariants the optimizer must preserve and the ones a corrupted or stale
    plan breaks silently.

    Error-severity checks:
    - the root's relation set covers the query exactly, and every join's
      subtree relation sets are disjoint (the relation sets partition the
      query);
    - each join's edge list references columns available in its subtrees
      ([l] on the outer side, [r] on the inner side) and matches the query's
      crossing edges between the two subtrees exactly — a dropped edge is a
      silently-lost join predicate;
    - index-scan nodes name a real catalog index on the bound column, and
      their lookup key matches an equality predicate of the query;
    - index-nested-loop joins probe a single base relation with an index on
      the declared inner column, keyed by their first join edge;
    - per-node cardinality estimates match a fresh estimator query (pass
      [estimator] to enable; the estimator caches per relation subset, so a
      mismatch means the plan was built against different estimates);
    - costs are finite, non-negative, and monotone up the tree (a join
      costs at least its inputs; index nested loops exclude the unused
      inner subtree cost, as the optimizer does). *)

val check :
  catalog:Catalog.t ->
  ?estimator:Rdb_card.Estimator.t ->
  Rdb_query.Query.t ->
  Rdb_plan.Plan.t ->
  Finding.t list
(** Findings in deterministic order; empty when the plan is clean. Without
    [estimator] the estimate-freshness checks are skipped. *)
