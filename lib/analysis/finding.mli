(** Severity-tagged findings reported by the static-analysis passes
    ({!Query_lint}, {!Plan_lint}). A finding carries a stable machine-readable
    [code] so tests can assert that a specific corruption class is detected,
    and a human-readable message naming the offending aliases/columns. *)

type severity =
  | Info
  | Warning  (** well-formed but suspicious: duplicate or contradictory
                 predicates, always-empty ranges *)
  | Error    (** an invariant violation that can produce wrong answers:
                 dangling aliases, type mismatches, stale estimates,
                 corrupted plan structure *)

type t = { severity : severity; code : string; message : string }

val info : code:string -> string -> t
val warning : code:string -> string -> t
val error : code:string -> string -> t

val severity_name : severity -> string

val errors : t list -> t list
(** Only the error-severity findings. *)

val has_errors : t list -> bool

val by_code : string -> t list -> t list
(** Findings with the given code. *)

val to_string : t -> string
(** ["error[stale-estimate]: ..."]. *)

val render : t list -> string
(** One finding per line. *)

val pp : Format.formatter -> t -> unit
