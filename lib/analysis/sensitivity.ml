module Relset = Rdb_util.Relset
module Stat_utils = Rdb_util.Stat_utils
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Estimator = Rdb_card.Estimator
module Cost_model = Rdb_cost.Cost_model
module Interval = Rdb_cost.Interval
module Plan = Rdb_plan.Plan
module Optimizer = Rdb_plan.Optimizer
module Search_space = Rdb_plan.Search_space
module Metrics = Rdb_obs.Metrics

type envelope = Relset.t -> est:float -> float * float

let q_envelope factor =
  if factor < 1.0 then invalid_arg "Sensitivity.q_envelope: factor must be >= 1";
  fun _ ~est -> (est /. factor, est *. factor)

let point_envelope f =
 fun s ~est:_ ->
  let v = f s in
  (v, v)

let of_intervals f = fun s ~est:_ -> f s

let intersect a b =
 fun s ~est ->
  let l1, h1 = a s ~est and l2, h2 = b s ~est in
  let lo = Float.max l1 l2 and hi = Float.min h1 h2 in
  if lo <= hi then (lo, hi)
  else begin
    let v = Stat_utils.clamp ~lo:l2 ~hi:h2 (Stat_utils.clamp ~lo:l1 ~hi:h1 est) in
    (v, v)
  end

(* Worst / best Q-error over an interval of possible actuals. q_error is
   monotone on either side of the estimate, so the worst case sits at an
   endpoint and the best case at the point of the interval closest to the
   estimate. *)
let worst_q ~est (lo, hi) =
  Float.max (Stat_utils.q_error ~est ~actual:lo) (Stat_utils.q_error ~est ~actual:hi)

let best_q ~est (lo, hi) =
  if lo <= est && est <= hi then 1.0
  else Float.min (Stat_utils.q_error ~est ~actual:lo) (Stat_utils.q_error ~est ~actual:hi)

type node = {
  node_set : Relset.t;
  node_est : float;
  node_interval : float * float;
  node_cost : Interval.t;
  node_exact_cost : float;
  node_is_join : bool;
}

type prediction = {
  pred_set : Relset.t;
  pred_aliases : string list;
  pred_est : float;
  pred_interval : float * float;
  pred_q_error : float;
  pred_certain : bool;
}

type fragility = {
  frag_set : Relset.t;
  frag_aliases : string list;
  frag_est : float;
  frag_interval : float * float;
  frag_q_error : float;
  frag_trips : bool;
  frag_flips : (float * string) option;
}

type report = {
  threshold : float;
  plan_shape : string;
  root_cost : Interval.t;
  nodes : node list;
  predicted : prediction option;
  fragilities : fragility list;
  cost_mismatches : (Relset.t * float * float) list;
}

let aliases_of q set = List.map (Query.rel_alias q) (Relset.to_list set)

let inl_npreds (q : Query.t) (j : Plan.join) =
  let base =
    match j.Plan.inner with
    | Plan.Scan s -> List.length (Query.preds_of q s.Plan.scan_rel)
    | Plan.Join _ -> 0 (* corrupt INL inner; Plan_lint owns the report *)
  in
  base + List.length j.Plan.join_edges - 1

(* One bottom-up walk computes, per node: the envelope interval on its true
   output rows, the interval of its subtree cost (corner evaluation — exact
   because every cost formula is monotone), and a point recomputation of the
   node's own cost from its children's *recorded* costs, which must agree
   with the recorded cost on an uncorrupted plan. *)
let interp ~envelope ~cost_params (q : Query.t) plan =
  let cp = cost_params in
  let nodes = ref [] in
  let push n = nodes := n :: !nodes in
  let rec go p =
    match p with
    | Plan.Scan s ->
      let set = Relset.singleton s.Plan.scan_rel in
      let iv = envelope set ~est:s.Plan.scan_est in
      (* A scan's cost depends on physical row counts and index selectivity,
         not on the post-predicate estimate the envelope perturbs: the cost
         stays a point even when the output cardinality is uncertain. *)
      let cost = Interval.point s.Plan.scan_cost in
      push
        {
          node_set = set;
          node_est = s.Plan.scan_est;
          node_interval = iv;
          node_cost = cost;
          node_exact_cost = s.Plan.scan_cost;
          node_is_join = false;
        };
      (cost, iv)
    | Plan.Join j ->
      let o_cost, o_iv = go j.Plan.outer in
      let i_cost, i_iv = go j.Plan.inner in
      let set =
        Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner)
      in
      let est = j.Plan.join_est in
      let out_iv = envelope set ~est in
      let box (lo, hi) = Interval.make lo hi in
      let o_rows = box o_iv and i_rows = box i_iv and out = box out_iv in
      let o_pt = Plan.est_rows j.Plan.outer and i_pt = Plan.est_rows j.Plan.inner in
      let o_rec = Plan.cost j.Plan.outer and i_rec = Plan.cost j.Plan.inner in
      let cost, exact =
        match j.Plan.algo with
        | Plan.Hash_join ->
          ( Interval.add (Interval.add o_cost i_cost)
              (Interval.hash_join cp ~build:i_rows ~probe:o_rows ~out),
            o_rec +. i_rec
            +. Cost_model.hash_join cp ~build:i_pt ~probe:o_pt ~out:est )
        | Plan.Nested_loop ->
          ( Interval.add (Interval.add o_cost i_cost)
              (Interval.nested_loop cp ~outer:o_rows ~inner:i_rows ~out),
            o_rec +. i_rec
            +. Cost_model.nested_loop cp ~outer:o_pt ~inner:i_pt ~out:est )
        | Plan.Merge_join ->
          ( Interval.add (Interval.add o_cost i_cost)
              (Interval.merge_join cp ~outer:o_rows ~inner:i_rows ~out),
            o_rec +. i_rec
            +. Cost_model.merge_join cp ~outer:o_pt ~inner:i_pt ~out:est )
        | Plan.Index_nl _ ->
          let npreds = inl_npreds q j in
          ( Interval.add o_cost
              (Interval.index_nested_loop cp ~outer:o_rows ~out ~npreds),
            o_rec +. Cost_model.index_nested_loop cp ~outer:o_pt ~out:est ~npreds
          )
      in
      push
        {
          node_set = set;
          node_est = est;
          node_interval = out_iv;
          node_cost = cost;
          node_exact_cost = exact;
          node_is_join = true;
        };
      (cost, out_iv)
  in
  let root_cost, _ = go plan in
  (root_cost, List.rev !nodes)

let predict_trigger ?(min_actual_rows = 0) ~envelope ~threshold (q : Query.t)
    plan =
  let best = ref None in
  (* Mirror of Reopt.find_trigger: post-order over join nodes, a later
     candidate wins only with strictly fewer relations, or equally many and
     strictly greater depth. *)
  let rec walk depth p =
    match p with
    | Plan.Scan _ -> ()
    | Plan.Join j ->
      walk (depth + 1) j.Plan.outer;
      walk (depth + 1) j.Plan.inner;
      let set =
        Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner)
      in
      let est = j.Plan.join_est in
      let lo, hi = envelope set ~est in
      let lo = Float.max lo (float_of_int min_actual_rows) in
      if lo <= hi && worst_q ~est (lo, hi) >= threshold then begin
        let size = Relset.cardinal set in
        let better =
          match !best with
          | None -> true
          | Some (prev_set, _, _, prev_depth) ->
            let prev_size = Relset.cardinal prev_set in
            size < prev_size || (size = prev_size && depth > prev_depth)
        in
        if better then best := Some (set, est, (lo, hi), depth)
      end
  in
  walk 0 plan;
  Option.map
    (fun (set, est, iv, _depth) ->
      {
        pred_set = set;
        pred_aliases = aliases_of q set;
        pred_est = est;
        pred_interval = iv;
        pred_q_error = worst_q ~est iv;
        pred_certain = best_q ~est iv >= threshold;
      })
    !best

(* Re-run the DP with one subset's estimate pinned to [card]. The bound hook
   intercepts exactly that subset's memoized estimate; every other estimate
   reproduces the base estimator bit-for-bit, so a plan diff is attributable
   to the one perturbed cardinality. *)
let replan ~space ~cost_params ~catalog ~estimator (q : Query.t) ~set ~card =
  let pinned =
    Estimator.create
      ~bound:(fun s v -> if Relset.equal s set then card else v)
      ~mode:(Estimator.mode estimator) ~catalog ~stats:(Estimator.db_stats estimator)
      ?oracle:(Estimator.oracle estimator) q
  in
  let p, _stats =
    Optimizer.plan ~lint:false ~verify:false ~sensitivity:false ~space
      ~cost_params ~catalog ~estimator:pinned q
  in
  p

let default_threshold = 32.0

let analyze ?envelope ?(threshold = default_threshold) ?(min_actual_rows = 0)
    ?(corner_replans = true) ?(corner_limit = max_int) ?space
    ?(cost_params = Cost_model.default) ~catalog ~estimator (q : Query.t) plan =
  Metrics.incr "analysis.sensitivity_runs";
  let envelope =
    match envelope with Some e -> e | None -> q_envelope threshold
  in
  let root_cost, nodes = interp ~envelope ~cost_params q plan in
  (* The recorded cost is not part of [node]; walk the tree again so each
     join is compared against its own recorded cost. *)
  let cost_mismatches =
    let acc = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun n -> if n.node_is_join then Hashtbl.replace tbl (n.node_set :> int) n)
      nodes;
    List.iter
      (fun (j : Plan.join) ->
        let set =
          Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner)
        in
        match Hashtbl.find_opt tbl (set :> int) with
        | Some n ->
          let tol = 1e-6 *. Float.max 1.0 (Float.abs j.Plan.join_cost) in
          if Float.abs (j.Plan.join_cost -. n.node_exact_cost) > tol then
            acc := (set, j.Plan.join_cost, n.node_exact_cost) :: !acc
        | None -> ())
      (Plan.joins_bottom_up plan);
    List.rev !acc
  in
  let predicted = predict_trigger ~min_actual_rows ~envelope ~threshold q plan in
  let joins = List.filter (fun n -> n.node_is_join) nodes in
  (* Ration corner replans to the joins whose envelope admits the largest
     error: each replanned join costs two extra DP runs. *)
  let replanned_sets =
    if (not corner_replans) || joins = [] then []
    else begin
      let ranked =
        List.stable_sort
          (fun a b ->
            compare
              (worst_q ~est:b.node_est b.node_interval)
              (worst_q ~est:a.node_est a.node_interval))
          joins
      in
      let rec take k = function
        | [] -> []
        | _ when k <= 0 -> []
        | x :: tl -> x.node_set :: take (k - 1) tl
      in
      take corner_limit ranked
    end
  in
  let space =
    if replanned_sets = [] then space
    else
      Some
        (match space with
        | Some s -> s
        | None -> Search_space.build (Join_graph.make q))
  in
  let fragilities =
    List.map
      (fun n ->
        let est = n.node_est in
        let lo, hi = n.node_interval in
        let wq = worst_q ~est n.node_interval in
        let lo_t = Float.max lo (float_of_int min_actual_rows) in
        let trips = lo_t <= hi && worst_q ~est (lo_t, hi) >= threshold in
        let flips =
          if not (List.exists (Relset.equal n.node_set) replanned_sets) then
            None
          else begin
            let space = Option.get space in
            let distinct_corners =
              List.filter
                (fun c ->
                  Float.abs (c -. est) > 1e-9 *. Float.max 1.0 (Float.abs est))
                (if Float.abs (hi -. lo) <= 1e-9 *. Float.max 1.0 hi then [ lo ]
                 else [ lo; hi ])
            in
            List.fold_left
              (fun found corner ->
                match found with
                | Some _ -> found
                | None ->
                  Metrics.incr "analysis.corner_replans";
                  let p' =
                    replan ~space ~cost_params ~catalog ~estimator q
                      ~set:n.node_set ~card:corner
                  in
                  if Plan.same_shape plan p' then None
                  else Some (corner, Plan.shape q p'))
              None distinct_corners
          end
        in
        (match flips with
        | Some _ -> Metrics.incr "analysis.fragile_joins"
        | None -> ());
        {
          frag_set = n.node_set;
          frag_aliases = aliases_of q n.node_set;
          frag_est = est;
          frag_interval = n.node_interval;
          frag_q_error = wq;
          frag_trips = trips;
          frag_flips = flips;
        })
      joins
  in
  {
    threshold;
    plan_shape = Plan.shape q plan;
    root_cost;
    nodes;
    predicted;
    fragilities;
    cost_mismatches;
  }

let fragile_sets report =
  List.filter_map
    (fun f -> match f.frag_flips with Some _ -> Some f.frag_set | None -> None)
    report.fragilities

let string_of_aliases aliases = String.concat "," aliases

let rows_str v =
  if Float.abs v < 1e7 && Float.equal (Float.round v) v then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

let interval_str (lo, hi) =
  Printf.sprintf "[%s, %s]" (rows_str lo) (rows_str hi)

let findings (q : Query.t) report =
  let fs = ref [] in
  let add f = fs := f :: !fs in
  List.iter
    (fun (set, recorded, recomputed) ->
      add
        (Finding.error ~code:"interval-cost-mismatch"
           (Printf.sprintf
              "join {%s}: recorded cost %.3f disagrees with the cost model's \
               %.3f at the plan's own estimates"
              (string_of_aliases (aliases_of q set))
              recorded recomputed)))
    report.cost_mismatches;
  List.iter
    (fun f ->
      match f.frag_flips with
      | None -> ()
      | Some (corner, shape) ->
        if f.frag_trips then
          add
            (Finding.warning ~code:"fragile-join"
               (Printf.sprintf
                  "join {%s} (est %s): at %s within envelope %s the \
                   DP-optimal plan changes to %s, and the error is large \
                   enough to trip re-optimization (worst q-error %.1f >= %g)"
                  (string_of_aliases f.frag_aliases)
                  (rows_str f.frag_est) (rows_str corner)
                  (interval_str f.frag_interval)
                  shape f.frag_q_error report.threshold))
        else
          add
            (Finding.warning ~code:"reopt-blind-spot"
               (Printf.sprintf
                  "join {%s} (est %s): at %s within envelope %s the \
                   DP-optimal plan changes to %s, but the worst q-error \
                   %.1f stays below the trigger threshold %g — \
                   re-optimization would never correct this plan"
                  (string_of_aliases f.frag_aliases)
                  (rows_str f.frag_est) (rows_str corner)
                  (interval_str f.frag_interval)
                  shape f.frag_q_error report.threshold)))
    report.fragilities;
  (match report.predicted with
  | None -> ()
  | Some p ->
    add
      (Finding.info ~code:"predicted-reopt-trigger"
         (Printf.sprintf
            "re-optimization %s trigger on join {%s}: est %s, envelope %s, \
             worst q-error %.1f >= %g"
            (if p.pred_certain then "will" else "may")
            (string_of_aliases p.pred_aliases)
            (rows_str p.pred_est)
            (interval_str p.pred_interval)
            p.pred_q_error report.threshold)));
  if !fs = [] then
    add
      (Finding.info ~code:"plan-robust"
         (Printf.sprintf
            "plan %s is stable: no estimate within the q=%g envelope trips \
             re-optimization or changes the DP-optimal plan"
            report.plan_shape report.threshold));
  List.rev !fs

let check ?envelope ?threshold ?min_actual_rows ?corner_replans ?corner_limit
    ?space ?cost_params ~catalog ~estimator q plan =
  let report =
    analyze ?envelope ?threshold ?min_actual_rows ?corner_replans ?corner_limit
      ?space ?cost_params ~catalog ~estimator q plan
  in
  findings q report
