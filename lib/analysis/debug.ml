exception Lint_failed of Finding.t list

let () =
  Printexc.register_printer (function
    | Lint_failed fs ->
      Some
        (Printf.sprintf "Lint_failed:\n%s" (Finding.render fs))
    | _ -> None)

let enabled () =
  match Sys.getenv_opt "RDB_LINT" with
  | Some ("1" | "true") -> true
  | Some _ | None -> false

let fail_on_errors findings =
  match Finding.errors findings with
  | [] -> ()
  | errs -> raise (Lint_failed errs)

let check_query_exn ~catalog q = fail_on_errors (Query_lint.check ~catalog q)

let check_plan_exn ~catalog ?estimator q plan =
  fail_on_errors
    (Query_lint.check ~catalog q @ Plan_lint.check ~catalog ?estimator q plan)

(* RDB_SENSITIVITY doubles as the enable switch and the Q-error envelope
   factor: "1"/"true" mean "on, default envelope"; any numeric value >= 1
   is the envelope factor itself (RDB_SENSITIVITY=8 analyzes a tighter
   error model than the default 32). *)
let sensitivity_threshold () =
  match Sys.getenv_opt "RDB_SENSITIVITY" with
  | None | Some ("" | "0" | "false") -> None
  | Some ("1" | "true") -> Some 32.0
  | Some s ->
    (match float_of_string_opt s with
    | Some t when t >= 1.0 -> Some t
    | Some _ | None -> Some 32.0)

let install () =
  Rdb_plan.Optimizer.lint_hook :=
    Some
      (fun ~catalog ~estimator q plan ->
        check_plan_exn ~catalog ~estimator q plan);
  Rdb_plan.Optimizer.sensitivity_hook :=
    Some
      (fun ~catalog ~estimator q plan ->
        let threshold =
          match sensitivity_threshold () with Some t -> t | None -> 32.0
        in
        (* Inline hook: interval propagation and the cost-consistency
           recomputation only. Corner replans re-enter the optimizer and
           cost two DP runs per join — the lint/fragility sweeps opt into
           those explicitly. *)
        fail_on_errors
          (Sensitivity.check ~threshold ~corner_replans:false ~catalog
             ~estimator q plan));
  Rdb_plan.Optimizer.resource_hook :=
    Some
      (fun ~catalog ~estimator q plan ->
        (* Inline hook: certificate well-formedness only — the transition
           simulation re-enters the optimizer, so the resources/lint
           sweeps opt into it explicitly, and budgets live in the server's
           admission controller. *)
        fail_on_errors
          (Resource.check ~transitions:false ~catalog ~estimator q plan))
