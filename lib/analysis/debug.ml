exception Lint_failed of Finding.t list

let () =
  Printexc.register_printer (function
    | Lint_failed fs ->
      Some
        (Printf.sprintf "Lint_failed:\n%s" (Finding.render fs))
    | _ -> None)

let enabled () =
  match Sys.getenv_opt "RDB_LINT" with
  | Some ("1" | "true") -> true
  | Some _ | None -> false

let fail_on_errors findings =
  match Finding.errors findings with
  | [] -> ()
  | errs -> raise (Lint_failed errs)

let check_query_exn ~catalog q = fail_on_errors (Query_lint.check ~catalog q)

let check_plan_exn ~catalog ?estimator q plan =
  fail_on_errors
    (Query_lint.check ~catalog q @ Plan_lint.check ~catalog ?estimator q plan)

let install () =
  Rdb_plan.Optimizer.lint_hook :=
    Some
      (fun ~catalog ~estimator q plan ->
        check_plan_exn ~catalog ~estimator q plan)
