(** Static lint over a bound query: the invariants every query entering the
    optimizer — and every re-optimization rewrite — must satisfy.

    Error-severity checks: every alias resolves to a catalog table, aliases
    are unique, every column reference (predicates, join edges, aggregates)
    is in range, predicate literals are type-compatible with their column,
    join columns are integer-typed, SUM targets an integer column, and the
    join graph is connected (the message names the components by alias).

    Warning-severity checks: duplicate predicates and join edges,
    contradictory predicate pairs on one column (e.g. [x = 1 AND x = 2],
    disjoint BETWEEN ranges, [IS NULL] alongside a comparison), always-empty
    ranges ([BETWEEN 5 AND 3], [IN ()]), comparisons against NULL, and
    degenerate join edges (a column equated with itself, or an edge joining
    a relation to itself). *)

val check : catalog:Catalog.t -> Rdb_query.Query.t -> Finding.t list
(** Findings in deterministic order; empty when the query is clean. *)
