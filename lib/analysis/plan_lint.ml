module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Plan = Rdb_plan.Plan
module Estimator = Rdb_card.Estimator

let err = Finding.error

(* Estimates must be reproducible exactly: the estimator caches per relation
   subset, so re-querying it returns the very floats the plan was built
   from. The epsilon only forgives the printing/re-reading of a float, not a
   stale estimate. *)
let same_estimate a b =
  Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check ~catalog ?estimator (q : Query.t) (plan : Plan.t) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let n = Query.n_rels q in
  let render_set s =
    "{"
    ^ String.concat ","
        (List.map
           (fun i ->
             if i >= 0 && i < n then Query.rel_alias q i
             else Printf.sprintf "rel%d" i)
           (Relset.to_list s))
    ^ "}"
  in
  (* The root must cover the query exactly. *)
  let root_set = Plan.rel_set plan in
  if not (Relset.equal root_set (Relset.full n)) then
    add
      (err ~code:"root-relset"
         (Printf.sprintf
            "plan covers %s but the query has relations %s" (render_set root_set)
            (render_set (Relset.full n))));
  let edge_str (e : Query.edge) =
    Printf.sprintf "rel%d.col%d = rel%d.col%d" e.Query.l.Query.rel
      e.Query.l.Query.col e.Query.r.Query.rel e.Query.r.Query.col
  in
  let rec walk node =
    match node with
    | Plan.Scan s ->
      let rel = s.Plan.scan_rel in
      if rel < 0 || rel >= n then
        add
          (err ~code:"scan-rel-range"
             (Printf.sprintf "scan of relation index %d out of range" rel))
      else begin
        (match s.Plan.access with
         | Plan.Seq_scan -> ()
         | Plan.Index_scan { col; key } ->
           let table = q.Query.rels.(rel).Query.table in
           (match Catalog.index catalog ~table ~col with
            | None ->
              add
                (err ~code:"no-such-index"
                   (Printf.sprintf
                      "index scan of %s (%s) uses column %d, which has no \
                       index"
                      (Query.rel_alias q rel) table col))
            | Some _ -> ());
           let keyed =
             List.exists
               (fun ({ Query.target; p } : Query.pred) ->
                 target.Query.rel = rel && target.Query.col = col
                 && p = Predicate.Cmp (Predicate.Eq, Value.Int key))
               q.Query.preds
           in
           if not keyed then
             add
               (err ~code:"index-key-mismatch"
                  (Printf.sprintf
                     "index scan of %s probes col%d = %d but the query has \
                      no such equality predicate"
                     (Query.rel_alias q rel) col key)));
        (match estimator with
         | Some est ->
           let fresh = Estimator.base_card est rel in
           if not (same_estimate s.Plan.scan_est fresh) then
             add
               (err ~code:"stale-estimate"
                  (Printf.sprintf
                     "scan of %s carries estimate %g but the estimator says \
                      %g"
                     (Query.rel_alias q rel) s.Plan.scan_est fresh))
         | None -> ())
      end;
      if not (Float.is_finite s.Plan.scan_cost) || s.Plan.scan_cost < 0.0 then
        add
          (err ~code:"cost-not-finite"
             (Printf.sprintf "scan of relation %d has cost %g" rel
                s.Plan.scan_cost))
    | Plan.Join j ->
      let outer_set = Plan.rel_set j.Plan.outer
      and inner_set = Plan.rel_set j.Plan.inner in
      let su = Relset.union outer_set inner_set in
      if not (Relset.is_empty (Relset.inter outer_set inner_set)) then
        add
          (err ~code:"overlapping-subtrees"
             (Printf.sprintf "join subtrees %s and %s overlap"
                (render_set outer_set) (render_set inner_set)));
      (* Edge sides: [l] must come from the outer subtree, [r] from the
         inner one. *)
      List.iter
        (fun (e : Query.edge) ->
          if
            not
              (Relset.mem e.Query.l.Query.rel outer_set
               && Relset.mem e.Query.r.Query.rel inner_set)
          then
            add
              (err ~code:"edge-outside-subtree"
                 (Printf.sprintf
                    "join of %s with %s carries edge %s whose columns are \
                     not available in its subtrees"
                    (render_set outer_set) (render_set inner_set)
                    (edge_str e))))
        j.Plan.join_edges;
      (* Edge completeness: exactly the query's crossing edges. *)
      if Relset.is_empty (Relset.inter outer_set inner_set) then begin
        let expected =
          List.sort compare (Query.edges_between q outer_set inner_set)
        in
        let actual = List.sort compare j.Plan.join_edges in
        if expected <> actual then begin
          let missing =
            List.filter (fun e -> not (List.mem e actual)) expected
          and extra =
            List.filter (fun e -> not (List.mem e expected)) actual
          in
          List.iter
            (fun e ->
              add
                (err ~code:"missing-join-edge"
                   (Printf.sprintf
                      "join of %s with %s drops the query's edge %s"
                      (render_set outer_set) (render_set inner_set)
                      (edge_str e))))
            missing;
          List.iter
            (fun e ->
              add
                (err ~code:"foreign-join-edge"
                   (Printf.sprintf
                      "join of %s with %s carries edge %s that is not a \
                       crossing edge of the query"
                      (render_set outer_set) (render_set inner_set)
                      (edge_str e))))
            extra
        end
      end;
      (* Index nested loop: single base inner with a real index, keyed by
         the first edge. *)
      (match j.Plan.algo with
       | Plan.Index_nl { inner_col } ->
         (match j.Plan.inner with
          | Plan.Scan s when s.Plan.scan_rel >= 0 && s.Plan.scan_rel < n ->
            let table = q.Query.rels.(s.Plan.scan_rel).Query.table in
            (match Catalog.index catalog ~table ~col:inner_col with
             | None ->
               add
                 (err ~code:"no-such-index"
                    (Printf.sprintf
                       "index nested loop probes %s.col%d, which has no index"
                       (Query.rel_alias q s.Plan.scan_rel) inner_col))
             | Some _ -> ());
            (match j.Plan.join_edges with
             | e :: _ when e.Query.r.Query.col = inner_col -> ()
             | e :: _ ->
               add
                 (err ~code:"inl-key-mismatch"
                    (Printf.sprintf
                       "index nested loop declares inner column %d but its \
                        first edge is %s"
                       inner_col (edge_str e)))
             | [] ->
               add
                 (err ~code:"inl-key-mismatch"
                    "index nested loop join has no join edges"))
          | _ ->
            add
              (err ~code:"inl-inner-not-base"
                 "index nested loop inner input is not a single base \
                  relation"))
       | Plan.Hash_join | Plan.Nested_loop | Plan.Merge_join -> ());
      (* Estimates. A corrupted plan can cover a disconnected subset the
         estimator refuses to price; the structural findings above already
         explain it, so record the refusal rather than aborting the lint. *)
      (match estimator with
       | Some est ->
         (match Estimator.card est su with
          | fresh ->
            if not (same_estimate j.Plan.join_est fresh) then
              add
                (err ~code:"stale-estimate"
                   (Printf.sprintf
                      "join %s carries estimate %g but the estimator says %g"
                      (render_set su) j.Plan.join_est fresh))
          | exception Invalid_argument _ ->
            add
              (err ~code:"estimate-unavailable"
                 (Printf.sprintf
                    "join %s covers a set the estimator cannot price"
                    (render_set su))))
       | None -> ());
      (* Costs: finite and monotone. The optimizer's index-nested-loop cost
         excludes the inner subtree (index probes replace scanning it). *)
      let cost = j.Plan.join_cost in
      if not (Float.is_finite cost) || cost < 0.0 then
        add
          (err ~code:"cost-not-finite"
             (Printf.sprintf "join %s has cost %g" (render_set su) cost))
      else begin
        let floor =
          match j.Plan.algo with
          | Plan.Index_nl _ -> Plan.cost j.Plan.outer
          | Plan.Hash_join | Plan.Nested_loop | Plan.Merge_join ->
            Plan.cost j.Plan.outer +. Plan.cost j.Plan.inner
        in
        if cost +. 1e-6 *. Float.max 1.0 floor < floor then
          add
            (err ~code:"cost-not-monotone"
               (Printf.sprintf
                  "join %s costs %g, less than its inputs' %g"
                  (render_set su) cost floor))
      end;
      walk j.Plan.outer;
      walk j.Plan.inner
  in
  walk plan;
  List.rev !findings
