module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Join_graph = Rdb_query.Join_graph

let err = Finding.error
let warn = Finding.warning

(* A predicate only NULL cells satisfy, next to one only non-NULL cells
   satisfy, is a contradiction; so are two point constraints that cannot
   hold together. Conservative: [false] when satisfiability is unclear. *)
let contradicts a b =
  let open Predicate in
  match (a, b) with
  | Cmp (Eq, va), Cmp (Eq, vb) -> not (Value.equal va vb)
  | Cmp (Eq, va), Cmp (Ne, vb) | Cmp (Ne, vb), Cmp (Eq, va) ->
    Value.equal va vb
  | Cmp (Eq, Value.Int x), Between (lo, hi)
  | Between (lo, hi), Cmp (Eq, Value.Int x) ->
    x < lo || x > hi
  | Between (a1, b1), Between (a2, b2) -> max a1 a2 > min b1 b2
  | Cmp (Eq, v), In_list vs | In_list vs, Cmp (Eq, v) ->
    not (List.exists (Value.equal v) vs)
  | Is_null, Is_not_null | Is_not_null, Is_null -> true
  | Is_null, (Cmp _ | Between _ | In_list _ | Like _)
  | (Cmp _ | Between _ | In_list _ | Like _), Is_null ->
    true
  | _ -> false

let check ~catalog (q : Query.t) =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let n = Query.n_rels q in
  if n = 0 then add (err ~code:"empty-query" "query has no relations");
  (* Alias resolution and uniqueness. *)
  let tables =
    Array.map (fun (r : Query.rel) -> Catalog.table catalog r.Query.table)
      q.Query.rels
  in
  Array.iteri
    (fun i t ->
      if t = None then
        add
          (err ~code:"unknown-table"
             (Printf.sprintf "alias %s references unknown table %s"
                (Query.rel_alias q i) q.Query.rels.(i).Query.table)))
    tables;
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (r : Query.rel) ->
      if Hashtbl.mem seen r.Query.alias then
        add (err ~code:"duplicate-alias" ("duplicate alias " ^ r.Query.alias))
      else Hashtbl.add seen r.Query.alias ())
    q.Query.rels;
  (* Column references: in range, with their resolved type. *)
  let col_ty (cr : Query.colref) =
    if cr.Query.rel < 0 || cr.Query.rel >= n then None
    else
      match tables.(cr.Query.rel) with
      | None -> None
      | Some tbl ->
        let schema = Table.schema tbl in
        if cr.Query.col < 0 || cr.Query.col >= Schema.arity schema then None
        else Some (Schema.column schema cr.Query.col).Schema.ty
  in
  let colref_str (cr : Query.colref) =
    if cr.Query.rel >= 0 && cr.Query.rel < n then
      Printf.sprintf "%s.col%d" (Query.rel_alias q cr.Query.rel) cr.Query.col
    else Printf.sprintf "rel%d.col%d" cr.Query.rel cr.Query.col
  in
  let check_colref what (cr : Query.colref) =
    if cr.Query.rel < 0 || cr.Query.rel >= n then begin
      add
        (err ~code:"bad-colref"
           (Printf.sprintf "%s: relation index %d out of range" what
              cr.Query.rel));
      false
    end
    else
      match tables.(cr.Query.rel) with
      | None -> false (* unknown-table already reported *)
      | Some tbl ->
        if
          cr.Query.col < 0
          || cr.Query.col >= Schema.arity (Table.schema tbl)
        then begin
          add
            (err ~code:"bad-colref"
               (Printf.sprintf "%s: column %d out of range for %s (%s)" what
                  cr.Query.col
                  (Query.rel_alias q cr.Query.rel)
                  q.Query.rels.(cr.Query.rel).Query.table));
          false
        end
        else true
  in
  (* Predicates: resolvable target, type-compatible literal. *)
  List.iter
    (fun ({ Query.target; p } : Query.pred) ->
      if check_colref "predicate" target then begin
        let ty = col_ty target in
        let where = colref_str target in
        let mismatch lit_ty =
          match ty with
          | Some t when t <> lit_ty ->
            add
              (err ~code:"predicate-type"
                 (Printf.sprintf
                    "predicate on %s compares a %s column with a %s literal"
                    where (Value.ty_to_string t) (Value.ty_to_string lit_ty)))
          | _ -> ()
        in
        match p with
        | Predicate.Cmp (_, v) ->
          (match Value.ty_of v with
           | None ->
             add
               (warn ~code:"null-comparison"
                  (Printf.sprintf
                     "predicate on %s compares against NULL and never holds"
                     where))
           | Some lt -> mismatch lt)
        | Predicate.Between (lo, hi) ->
          mismatch Value.Ty_int;
          if lo > hi then
            add
              (warn ~code:"empty-range"
                 (Printf.sprintf "BETWEEN %d AND %d on %s is always empty" lo
                    hi where))
        | Predicate.In_list [] ->
          add
            (warn ~code:"empty-in-list"
               (Printf.sprintf "IN () on %s is always empty" where))
        | Predicate.In_list vs ->
          List.iter
            (fun v ->
              match Value.ty_of v with
              | None ->
                add
                  (warn ~code:"null-comparison"
                     (Printf.sprintf "NULL in IN-list on %s never matches"
                        where))
              | Some lt -> mismatch lt)
            vs
        | Predicate.Like _ -> mismatch Value.Ty_str
        | Predicate.Is_null | Predicate.Is_not_null -> ()
      end)
    q.Query.preds;
  (* Duplicate and contradictory predicates, per column. *)
  let dup = Hashtbl.create 16 in
  List.iter
    (fun ({ Query.target; p } : Query.pred) ->
      if Hashtbl.mem dup (target, p) then
        add
          (warn ~code:"duplicate-predicate"
             (Printf.sprintf "predicate on %s appears more than once"
                (colref_str target)))
      else Hashtbl.add dup (target, p) ())
    q.Query.preds;
  let by_col = Hashtbl.create 16 in
  List.iter
    (fun ({ Query.target; p } : Query.pred) ->
      Hashtbl.replace by_col target
        (p :: (Option.value ~default:[] (Hashtbl.find_opt by_col target))))
    q.Query.preds;
  Hashtbl.fold (fun target ps acc -> (target, List.rev ps) :: acc) by_col []
  |> List.sort compare
  |> List.iter (fun ((target : Query.colref), ps) ->
         let rec pairs = function
           | [] -> ()
           | p :: rest ->
             List.iter
               (fun p' ->
                 if contradicts p p' then
                   add
                     (warn ~code:"contradictory-predicates"
                        (Printf.sprintf
                           "predicates on %s contradict each other; the \
                            query is always empty"
                           (colref_str target))))
               rest;
             pairs rest
         in
         pairs ps);
  (* Join edges: resolvable, integer-typed, non-degenerate, no duplicates. *)
  let edge_ok = ref true in
  let edge_seen = Hashtbl.create 16 in
  List.iter
    (fun ({ Query.l; r } : Query.edge) ->
      let ok_l = check_colref "join edge" l
      and ok_r = check_colref "join edge" r in
      if not (ok_l && ok_r) then edge_ok := false
      else begin
        (match (col_ty l, col_ty r) with
         | Some tl, Some tr
           when tl <> Value.Ty_int || tr <> Value.Ty_int ->
           add
             (err ~code:"join-column-type"
                (Printf.sprintf "join edge %s = %s on non-integer column(s)"
                   (colref_str l) (colref_str r)))
         | _ -> ());
        if l = r then
          add
            (warn ~code:"trivial-join-edge"
               (Printf.sprintf "join edge equates %s with itself"
                  (colref_str l)))
        else if l.Query.rel = r.Query.rel then
          add
            (warn ~code:"self-join-edge"
               (Printf.sprintf
                  "join edge %s = %s stays within one relation and does not \
                   connect the join graph"
                  (colref_str l) (colref_str r)));
        let key = if l <= r then (l, r) else (r, l) in
        if Hashtbl.mem edge_seen key then
          add
            (warn ~code:"duplicate-join-edge"
               (Printf.sprintf "join edge %s = %s appears more than once"
                  (colref_str l) (colref_str r)))
        else Hashtbl.add edge_seen key ()
      end)
    q.Query.edges;
  (* Aggregates. *)
  List.iter
    (function
      | Query.Count_star -> ()
      | Query.Count_col cr | Query.Min_col cr | Query.Max_col cr ->
        ignore (check_colref "aggregate" cr)
      | Query.Sum_col cr ->
        if check_colref "aggregate" cr && col_ty cr <> Some Value.Ty_int then
          add
            (err ~code:"sum-type"
               (Printf.sprintf "SUM(%s) requires an integer column"
                  (colref_str cr))))
    q.Query.select;
  (* Connectivity — only when every edge endpoint resolved, else the graph
     itself is ill-defined and already reported. *)
  if n > 0 && !edge_ok then begin
    let graph = Join_graph.make q in
    match Join_graph.components graph (Relset.full n) with
    | [] | [ _ ] -> ()
    | comps ->
      let render c =
        "{"
        ^ String.concat ","
            (List.map (Query.rel_alias q) (Relset.to_list c))
        ^ "}"
      in
      add
        (err ~code:"disconnected-join-graph"
           (Printf.sprintf "join graph is disconnected; components: %s"
              (String.concat " | " (List.map render comps))))
  end;
  List.rev !findings
