(** Static resource certification: an abstract interpretation of physical
    plans that turns sound cardinality intervals into sound end-to-end
    bounds on what a plan may consume before it runs.

    The fifth analysis layer (after lint, verify, sensitivity, racecheck).
    Where {!Sensitivity} asks "which estimate does the plan's *optimality*
    depend on", this pass asks "how much memory and work can the plan cost
    us if the estimates are wrong" — the question a multi-tenant server
    must answer before admitting a query, because the paper's failure mode
    (a mis-estimated low join exploding at runtime, §V-D) is precisely a
    resource blow-up the optimizer's point estimates hid.

    Certified quantities, all in the executor's own deterministic units so
    every bound is dynamically checkable against an actual run:

    - {b peak resident memory} in row-slots ([Rdb_exec.Executor.result.peak_rows]):
      live intermediates are [rows * width] slots, a hash join's build side
      stays resident while it runs, a merge join holds one key cell per row
      on each side, and along a left-deep pipeline the outer intermediate
      is live while the inner subtree executes. Corner evaluation of these
      (monotone) recurrences over the cardinality intervals yields the
      exact interval image, as for {!Rdb_cost.Interval}.
    - {b total work units} ([Rdb_exec.Executor.result.work]): mirrors of the
      executor's [spend] arithmetic — scans, build+probe+emit, index-probe
      fan-out bounded by MCV max-frequency, sort and cross-product terms.
    - {b worst-case replan count} for a re-opt-enabled execution, plus an
      abstract simulation of [Rdb_core.Reopt]'s trigger/materialize/replan
      loop that detects oscillation (the same plan shape re-planned twice —
      thrashing) and materializations the bounds prove useless (no
      admissible actual changes the DP choice, so the paid temp table
      cannot improve the plan).

    Soundness contract: [cert_mem]/[cert_work]/[cert_out] are sound for a
    non-adaptive execution of the certified plan whenever [bounds] is sound
    (contains the true cardinality of every relation subset). The default
    [bounds] is the trivial cross-product bound; real callers pass
    [Rdb_verify.Card_bound.interval], and [Rdb_core.Session.certify] wires
    exactly that. The transition simulation additionally narrows plausible
    actuals with the trigger's Q-error envelope — its products
    ([reopt_report]) describe the worst-case *trajectory* of the abstract
    loop, while [cert_replans_hi] is the unconditional structural bound
    (each materialization removes at least one relation). *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query
module Estimator := Rdb_card.Estimator
module Interval := Rdb_cost.Interval
module Plan := Rdb_plan.Plan
module Search_space := Rdb_plan.Search_space
module Json := Rdb_obs.Json

type bounds = Relset.t -> float * float
(** Sound interval on the true cardinality of a relation subset of the
    query: the true row count must lie within [[lo, hi]]. *)

val trivial_bounds : catalog:Catalog.t -> Query.t -> bounds
(** [[0, product of member table row counts]] — sound for any query, and
    the fallback when no verifier context is available. *)

type transition = {
  tr_set : Relset.t;            (** the join the trigger materializes *)
  tr_aliases : string list;
  tr_est : float;               (** the plan's estimate for the set *)
  tr_interval : float * float;  (** plausible actuals at this step *)
  tr_assumed : float;           (** worst-Q-error corner taken as the
                                    confirmed cardinality *)
  tr_temp_slots_hi : float;     (** hi bound on the temp table's cells:
                                    rows hi x needed-column bound *)
  tr_shape_before : string;
  tr_shape_after : string;      (** {!Plan.shape} after the pinned replan *)
  tr_useless : bool;            (** no admissible actual in [tr_interval]
                                    changes the DP choice — the bounds
                                    prove the materialization cannot
                                    improve the plan *)
}

type reopt_report = {
  ro_threshold : float;
  ro_transitions : transition list;  (** in simulation order *)
  ro_predicted_replans : int;        (** length of the trajectory *)
  ro_stable : bool;   (** the loop reached a state with no possible trigger
                          within the replan bound *)
  ro_thrashing : (string * int * int) option;
      (** [(shape, i, j)]: the plan shape at step [i] was departed and
          re-planned back into at step [j] — the loop oscillates *)
  ro_temp_slots_hi : float;  (** total temp-table cells along the
                                 trajectory, all live simultaneously at the
                                 final execution *)
}

type cert = {
  cert_shape : string;       (** {!Plan.shape} of the certified plan *)
  cert_mem : Interval.t;     (** peak resident row-slots *)
  cert_work : Interval.t;    (** executor work units *)
  cert_out : Interval.t;     (** rows into the aggregates *)
  cert_replans_hi : int;     (** structural worst case on re-opt steps:
                                 min(max_steps, relations - 1) *)
  cert_reopt : reopt_report option;  (** the transition simulation, when
                                         requested *)
}

val certify :
  ?bounds:bounds ->
  ?transitions:bool ->
  ?threshold:float ->
  ?min_actual_rows:int ->
  ?max_steps:int ->
  ?space:Search_space.t ->
  ?cost_params:Rdb_cost.Cost_model.params ->
  catalog:Catalog.t ->
  estimator:Estimator.t ->
  Query.t ->
  Plan.t ->
  cert
(** Certify a plan. [bounds] defaults to {!trivial_bounds} (sound but very
    loose — pass the verifier's intervals). [transitions] (default [false];
    each simulated step costs up to three DP replans) runs the re-opt
    transition analysis with trigger [threshold] (default 32, the paper's
    sweet spot), [min_actual_rows] as in [Rdb_core.Trigger], and at most
    [max_steps] (default 32, mirroring [Rdb_core.Reopt.run]) simulated
    steps. [space] reuses a prebuilt search space across the replans. *)

val detect_oscillation : string list -> (string * int * int) option
(** [(shape, i, j)] when the [i]-th shape of the sequence reappears at
    position [j] after an intervening different shape — the thrashing
    detector, exposed for the seeded-mutant test. *)

val findings : ?budget:float -> Query.t -> cert -> Finding.t list
(** Severity-tagged findings:
    - [resource-cert-invalid] (error): the certificate's own intervals are
      malformed (lo > hi, negative bounds) — an analyzer or bounds bug;
    - [resource-over-budget] (error, only when [budget] is given): the
      certified peak-memory hi-bound exceeds the budget — the admission
      controller's reason for rejecting the plan;
    - [resource-thrashing] (warning): the transition simulation re-planned
      into an already-visited shape;
    - [resource-useless-materialization] (warning): a simulated step's
      bounds prove no admissible actual changes the DP choice;
    - [resource-certificate] (info): the one-line certificate summary. *)

val check :
  ?bounds:bounds ->
  ?budget:float ->
  ?transitions:bool ->
  ?threshold:float ->
  ?space:Search_space.t ->
  ?cost_params:Rdb_cost.Cost_model.params ->
  catalog:Catalog.t ->
  estimator:Estimator.t ->
  Query.t ->
  Plan.t ->
  Finding.t list
(** [certify] followed by [findings] — the shape the optimizer hook and the
    [reoptdb] sweeps consume. *)

val to_json : cert -> Json.t
(** The certificate as strict JSON, shared by [reoptdb resources --json]
    and the server's [\resources] command. *)

val mem_hi : cert -> float
(** [cert.cert_mem.hi] — the admission controller's comparison key. *)
