(** Plan-robustness analysis: interval abstract interpretation of the cost
    model, with a static prediction of the re-optimization trigger.

    The paper's central finding is that plans are fragile — one bad estimate
    at a low join flips the optimizer into a disastrous plan, and the
    re-optimizer only discovers this at runtime by paying for a
    materialization. This pass asks the question *before* execution: given
    an envelope of how wrong each cardinality estimate may be, (a) which
    join would trip [Rdb_core.Reopt.find_trigger] (predicted statically,
    including its fewest-relations / deepest / post-order tie-break), and
    (b) which join's estimate, moved to a corner of its envelope, makes the
    DPccp optimizer choose a different plan — the joins whose estimates the
    plan's optimality actually depends on.

    The analyzer never executes a query: everything it knows about true
    cardinalities arrives through the {!envelope} it is given — a Q-error
    envelope [[est/q, est·q]], the symbolic verifier's sound
    [Rdb_verify.Card_bound] intervals, or (in tests) the oracle's exact
    counts as degenerate point intervals. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query
module Estimator := Rdb_card.Estimator
module Interval := Rdb_cost.Interval
module Plan := Rdb_plan.Plan
module Search_space := Rdb_plan.Search_space

type envelope = Relset.t -> est:float -> float * float
(** Where the true cardinality of a relation subset may lie, given the
    optimizer's point estimate for it. Must contain values [>= 0] with
    [lo <= hi]. *)

val q_envelope : float -> envelope
(** [[est/q, est·q]] — the factor-[q] error model of the paper's trigger
    (§V-A). Raises [Invalid_argument] when [q < 1]. *)

val point_envelope : (Relset.t -> float) -> envelope
(** Degenerate intervals from exact cardinalities (e.g.
    [Rdb_card.Oracle.true_card]); the configuration under which the static
    trigger prediction must coincide with the dynamic trigger. *)

val of_intervals : (Relset.t -> float * float) -> envelope
(** Adapt an interval source that ignores the estimate, e.g.
    [Rdb_verify.Card_bound.interval]. *)

val intersect : envelope -> envelope -> envelope
(** Pointwise intersection; contradictory envelopes collapse to the point
    estimate clamped into both. *)

(** {1 Per-node interval interpretation} *)

type node = {
  node_set : Relset.t;
  node_est : float;              (** the optimizer's point estimate *)
  node_interval : float * float; (** envelope on the node's true rows *)
  node_cost : Interval.t;        (** subtree cost over the envelope *)
  node_exact_cost : float;
      (** the node's cost re-derived from the cost model at the point
          estimates (children's recorded costs + operator formula); must
          equal the recorded cost on an uncorrupted plan *)
  node_is_join : bool;
}

type prediction = {
  pred_set : Relset.t;
  pred_aliases : string list;
  pred_est : float;
  pred_interval : float * float;
  pred_q_error : float;  (** worst-case Q-error within the interval *)
  pred_certain : bool;
      (** every admissible actual trips the trigger, not just a corner *)
}

type fragility = {
  frag_set : Relset.t;
  frag_aliases : string list;
  frag_est : float;
  frag_interval : float * float;
  frag_q_error : float;  (** worst-case Q-error within the interval *)
  frag_trips : bool;
      (** some admissible actual makes the re-optimization trigger fire *)
  frag_flips : (float * string) option;
      (** a corner estimate at which re-running the DP chose a structurally
          different plan, with the new plan's {!Plan.shape} — [None] when
          the plan choice is stable across this join's corners (or corner
          replanning was disabled / rationed away for this node) *)
}

type report = {
  threshold : float;
  plan_shape : string;
  root_cost : Interval.t;
  nodes : node list;            (** post-order *)
  predicted : prediction option;
  fragilities : fragility list; (** join nodes, post-order *)
  cost_mismatches : (Relset.t * float * float) list;
      (** (set, recorded cost, recomputed cost) for nodes whose recorded
          cost disagrees with the cost model — plan corruption *)
}

val predict_trigger :
  ?min_actual_rows:int ->
  envelope:envelope ->
  threshold:float ->
  Query.t ->
  Plan.t ->
  prediction option
(** The join [Rdb_core.Reopt.find_trigger] would materialize, predicted
    statically: a join is a candidate when some actual inside its envelope
    interval fires the trigger, and candidates are ranked exactly as the
    dynamic trigger ranks them — fewest relations, then deepest in the
    tree, then post-order position. Under {!point_envelope} of the true
    cardinalities this reproduces the dynamic choice exactly. *)

val analyze :
  ?envelope:envelope ->
  ?threshold:float ->
  ?min_actual_rows:int ->
  ?corner_replans:bool ->
  ?corner_limit:int ->
  ?space:Search_space.t ->
  ?cost_params:Rdb_cost.Cost_model.params ->
  catalog:Catalog.t ->
  estimator:Estimator.t ->
  Query.t ->
  Plan.t ->
  report
(** Full analysis of a chosen plan. [envelope] defaults to
    [q_envelope threshold]; [threshold] defaults to 32 (the paper's sweet
    spot). [corner_replans] (default true) re-runs the DPccp optimizer with
    one join subset pinned to each corner of its envelope — via a fresh
    estimator whose bound hook overrides exactly that subset — and diffs
    the chosen plan against the original ({!Plan.same_shape}).
    [corner_limit] rations the replans to the joins with the largest
    worst-case Q-error (the inline hook and the lint sweep cap this; the
    [fragility] sweep does not). [space] reuses a prebuilt search space
    across the replans. *)

val fragile_sets : report -> Relset.t list
(** The relation subsets of joins whose corner estimates flipped the
    DP-chosen plan ([frag_flips <> None]) — the joins a feedback
    correction must not be allowed to move (see
    [Rdb_core.Feedback.gate]). *)

val findings : Query.t -> report -> Finding.t list
(** Severity-tagged findings:
    - [interval-cost-mismatch] (error): a node's recorded cost disagrees
      with the cost model applied to its own estimates — the plan was
      costed by something other than the model, or corrupted after costing;
    - [fragile-join] (warning): an estimation error inside the envelope
      flips the DP-optimal plan *and* would trip the re-optimizer — the
      plan depends on an estimate the engine itself considers suspect;
    - [reopt-blind-spot] (warning): the envelope flips the plan at a corner
      the trigger can never see (worst-case Q-error below the threshold) —
      re-optimization would not rescue this plan;
    - [predicted-reopt-trigger] (info): the static trigger prediction;
    - [plan-robust] (info): no corner of the envelope changes the plan and
      no trigger is predicted. *)

val check :
  ?envelope:envelope ->
  ?threshold:float ->
  ?min_actual_rows:int ->
  ?corner_replans:bool ->
  ?corner_limit:int ->
  ?space:Search_space.t ->
  ?cost_params:Rdb_cost.Cost_model.params ->
  catalog:Catalog.t ->
  estimator:Estimator.t ->
  Query.t ->
  Plan.t ->
  Finding.t list
(** [analyze] followed by [findings] — the shape the optimizer hook chain
    and the [reoptdb lint] sweep consume. *)
