let int name = { Schema.name; ty = Value.Ty_int }
let str name = { Schema.name; ty = Value.Ty_str }

(* Integrity constraints mirror the real IMDB schema and are honored by
   Imdb_gen: every [id] is a sequential primary key, every foreign key
   except cast_info.person_role_id is generated NOT NULL and referentially
   intact. The verifier's cardinality bounds rely on these declarations;
   test_verify re-validates them against generated data. *)
let dim cols = Schema.make ~unique:[ "id" ] ~not_null:[ "id" ] cols

let fact ~fks cols =
  let fk_cols = List.map (fun (c, _, _) -> c) fks in
  Schema.make ~unique:[ "id" ] ~not_null:("id" :: fk_cols) ~fks cols

let tables =
  [
    ("kind_type", dim [ int "id"; str "kind" ]);
    ("info_type", dim [ int "id"; str "info" ]);
    ("company_type", dim [ int "id"; str "kind" ]);
    ("role_type", dim [ int "id"; str "role" ]);
    ("keyword", dim [ int "id"; str "keyword" ]);
    ("company_name", dim [ int "id"; str "name"; str "country_code" ]);
    ("name", dim [ int "id"; str "name"; str "gender" ]);
    ("char_name", dim [ int "id"; str "name" ]);
    ( "aka_name",
      fact
        ~fks:[ ("person_id", "name", "id") ]
        [ int "id"; int "person_id"; str "name" ] );
    ( "title",
      fact
        ~fks:[ ("kind_id", "kind_type", "id") ]
        [ int "id"; str "title"; int "kind_id"; int "production_year" ] );
    ( "movie_keyword",
      fact
        ~fks:[ ("movie_id", "title", "id"); ("keyword_id", "keyword", "id") ]
        [ int "id"; int "movie_id"; int "keyword_id" ] );
    ( "movie_companies",
      fact
        ~fks:
          [ ("movie_id", "title", "id");
            ("company_id", "company_name", "id");
            ("company_type_id", "company_type", "id") ]
        [ int "id"; int "movie_id"; int "company_id"; int "company_type_id" ] );
    ( "cast_info",
      (* person_role_id is the one nullable foreign key (~12% NULL). *)
      Schema.make
        ~unique:[ "id" ]
        ~not_null:[ "id"; "person_id"; "movie_id"; "role_id" ]
        ~fks:
          [ ("person_id", "name", "id");
            ("movie_id", "title", "id");
            ("person_role_id", "char_name", "id");
            ("role_id", "role_type", "id") ]
        [ int "id"; int "person_id"; int "movie_id"; int "person_role_id"; int "role_id" ] );
    ( "movie_info",
      fact
        ~fks:[ ("movie_id", "title", "id"); ("info_type_id", "info_type", "id") ]
        [ int "id"; int "movie_id"; int "info_type_id"; str "info" ] );
    ( "movie_info_idx",
      fact
        ~fks:[ ("movie_id", "title", "id"); ("info_type_id", "info_type", "id") ]
        [ int "id"; int "movie_id"; int "info_type_id"; str "info" ] );
  ]

let schema name =
  match List.assoc_opt name tables with
  | Some s -> s
  | None -> invalid_arg ("Imdb_schema.schema: unknown table " ^ name)

let indexed_columns name =
  let all =
    [
      ("kind_type", [ "id" ]);
      ("info_type", [ "id" ]);
      ("company_type", [ "id" ]);
      ("role_type", [ "id" ]);
      ("keyword", [ "id" ]);
      ("company_name", [ "id" ]);
      ("name", [ "id" ]);
      ("char_name", [ "id" ]);
      ("aka_name", [ "id"; "person_id" ]);
      ("title", [ "id"; "kind_id" ]);
      ("movie_keyword", [ "id"; "movie_id"; "keyword_id" ]);
      ("movie_companies", [ "id"; "movie_id"; "company_id"; "company_type_id" ]);
      ("cast_info", [ "id"; "person_id"; "movie_id"; "person_role_id"; "role_id" ]);
      ("movie_info", [ "id"; "movie_id"; "info_type_id" ]);
      ("movie_info_idx", [ "id"; "movie_id"; "info_type_id" ]);
    ]
  in
  match List.assoc_opt name all with
  | Some cols -> cols
  | None -> invalid_arg ("Imdb_schema.indexed_columns: unknown table " ^ name)

let kind_names =
  [| "movie"; "tv_series"; "episode"; "video"; "short"; "documentary"; "video_game" |]

let role_names =
  [| "actor"; "actress"; "producer"; "writer"; "cinematographer"; "composer";
     "costume_designer"; "director"; "editor"; "miscellaneous"; "production_designer";
     "guest" |]

let company_type_names =
  [| "production_companies"; "distributors"; "special_effects"; "miscellaneous" |]

let n_info_types = 40

let info_type_name id =
  match id with
  | 1 -> "genres"
  | 2 -> "rating-class"
  | 39 -> "rating"
  | 40 -> "votes"
  | i when i >= 1 && i <= n_info_types -> Printf.sprintf "info_%d" i
  | i -> invalid_arg (Printf.sprintf "info_type_name: %d" i)
