(** The dynamic-programming plan optimizer: bushy plans over DPccp's
    search space, no cartesian products, access-path selection (sequential
    vs. equality index scan) and join-algorithm selection (hash join,
    index nested loop, nested loop) — the architecture of the paper's
    PostgreSQL 10 baseline with foreign-key indexes added. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query
module Estimator := Rdb_card.Estimator

type stats = {
  pairs_considered : int;
  subsets_planned : int;
  plan_ms : float;  (** wall time of the DP, the paper's "planning time" *)
}

type lint_hook =
  catalog:Catalog.t -> estimator:Estimator.t -> Query.t -> Plan.t -> unit

val lint_hook : lint_hook option ref
(** Debug-mode invariant checker invoked on every plan {!plan} and
    {!plan_robust} return, when linting is enabled (the [?lint] argument,
    or the [RDB_LINT=1] environment variable when the argument is absent).
    Installed by [Rdb_analysis.Debug.install] — a hook rather than a direct
    call so the plan layer does not depend on the analysis library that
    checks it. The hook is expected to raise on error-severity findings. *)

val verify_hook : lint_hook option ref
(** Like {!lint_hook}, but for the symbolic plan verifier: checks the
    chosen plan's estimates against sound cardinality bounds. Enabled by
    the [?verify] argument or [RDB_VERIFY=1]; installed by
    [Rdb_verify.Debug.install]. Runs after {!lint_hook}. *)

val sensitivity_hook : lint_hook option ref
(** Third analysis layer: the plan-robustness analyzer
    ([Rdb_analysis.Sensitivity]) — cardinality intervals propagated through
    the cost model, a static prediction of the re-optimization trigger, and
    a consistency recomputation of every node's cost. Enabled by the
    [?sensitivity] argument, or by [RDB_SENSITIVITY] set to anything but
    [0]/[false] (a numeric value is read as the Q-error envelope factor,
    e.g. [RDB_SENSITIVITY=32]); installed by [Rdb_analysis.Debug.install].
    Runs after {!verify_hook}. *)

val resource_hook : lint_hook option ref
(** Fifth analysis layer: the static resource certifier
    ([Rdb_analysis.Resource]) — sound peak-memory/work intervals and the
    re-plan transition analysis, run against every chosen plan. Enabled by
    the [?resource] argument, or by [RDB_RESOURCE] set to anything but
    [0]/[false]; installed by [Rdb_analysis.Debug.install]. Runs after
    {!sensitivity_hook}. *)

val plan :
  ?lint:bool ->
  ?verify:bool ->
  ?sensitivity:bool ->
  ?resource:bool ->
  ?space:Search_space.t ->
  ?cost_params:Rdb_cost.Cost_model.params ->
  catalog:Catalog.t ->
  estimator:Estimator.t ->
  Query.t ->
  Plan.t * stats
(** Cheapest plan for the query under the estimator's cardinalities.
    [space] lets callers reuse the enumerated search space across estimator
    configurations. Raises [Invalid_argument] if the join graph is
    disconnected (cartesian products are not supported, as in the paper's
    workload); the message names the disconnected components by alias.
    [lint] (default: [RDB_LINT=1] in the environment) runs the installed
    {!lint_hook} on the chosen plan before returning it; [verify]
    (default: [RDB_VERIFY=1]) likewise runs the installed {!verify_hook}. *)

val plan_robust :
  ?lint:bool ->
  ?verify:bool ->
  ?sensitivity:bool ->
  ?resource:bool ->
  ?space:Search_space.t ->
  ?cost_params:Rdb_cost.Cost_model.params ->
  uncertainty:float ->
  catalog:Catalog.t ->
  estimator:Estimator.t ->
  Query.t ->
  Plan.t * stats
(** Rio-style proactive planning (paper reference [8]): every join
    estimate is treated as an interval — the point estimate scaled by
    [uncertainty^(k-1)] down and up for a k-relation subset, modelling
    error growth with join depth — and the chosen plan minimizes its
    *worst-case* cost across the pessimistic/point/optimistic scenarios.
    Trades peak performance for resistance to the under-estimation
    disasters re-optimization would otherwise have to repair. *)

val best_cost_of_sets :
  ?space:Search_space.t ->
  ?cost_params:Rdb_cost.Cost_model.params ->
  catalog:Catalog.t ->
  estimator:Estimator.t ->
  Query.t ->
  (Relset.t -> Plan.t option)
(** Expose the full DP table (best plan per connected subset); used by
    tests to check optimality against exhaustive enumeration and by the
    re-optimizer to plan sub-queries. *)
