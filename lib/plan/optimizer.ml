module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Predicate = Rdb_query.Predicate
module Estimator = Rdb_card.Estimator
module Cost_model = Rdb_cost.Cost_model

type stats = {
  pairs_considered : int;
  subsets_planned : int;
  plan_ms : float;
}

let now_ms () = Sys.time () *. 1000.0

type lint_hook =
  catalog:Catalog.t -> estimator:Estimator.t -> Query.t -> Plan.t -> unit

let lint_hook : lint_hook option ref = ref None

let lint_enabled ?lint () =
  match lint with
  | Some b -> b
  | None -> (match Sys.getenv_opt "RDB_LINT" with
             | Some ("1" | "true") -> true
             | Some _ | None -> false)

let run_lint_hook ~lint ~catalog ~estimator q plan =
  if lint_enabled ?lint () then
    match !lint_hook with
    | Some hook -> hook ~catalog ~estimator q plan
    | None -> ()

let verify_hook : lint_hook option ref = ref None

let verify_enabled ?verify () =
  match verify with
  | Some b -> b
  | None -> (match Sys.getenv_opt "RDB_VERIFY" with
             | Some ("1" | "true") -> true
             | Some _ | None -> false)

let run_verify_hook ~verify ~catalog ~estimator q plan =
  if verify_enabled ?verify () then
    match !verify_hook with
    | Some hook -> hook ~catalog ~estimator q plan
    | None -> ()

let sensitivity_hook : lint_hook option ref = ref None

let sensitivity_enabled ?sensitivity () =
  match sensitivity with
  | Some b -> b
  | None -> (match Sys.getenv_opt "RDB_SENSITIVITY" with
             | Some ("" | "0" | "false") | None -> false
             | Some _ -> true)

let run_sensitivity_hook ~sensitivity ~catalog ~estimator q plan =
  if sensitivity_enabled ?sensitivity () then
    match !sensitivity_hook with
    | Some hook -> hook ~catalog ~estimator q plan
    | None -> ()

let resource_hook : lint_hook option ref = ref None

let resource_enabled ?resource () =
  match resource with
  | Some b -> b
  | None -> (match Sys.getenv_opt "RDB_RESOURCE" with
             | Some ("" | "0" | "false") | None -> false
             | Some _ -> true)

let run_resource_hook ~resource ~catalog ~estimator q plan =
  if resource_enabled ?resource () then
    match !resource_hook with
    | Some hook -> hook ~catalog ~estimator q plan
    | None -> ()

(* Cartesian products are unsupported (as in the paper's workload); a
   disconnected join graph is a query bug, so name the components to make
   the report actionable. *)
let check_connected graph (q : Query.t) =
  let n = Query.n_rels q in
  if n = 0 then invalid_arg "Optimizer: query with no relations";
  let full = Relset.full n in
  if not (Join_graph.is_connected graph full) then begin
    let render c =
      "{"
      ^ String.concat "," (List.map (Query.rel_alias q) (Relset.to_list c))
      ^ "}"
    in
    let comps = Join_graph.components graph full in
    invalid_arg
      (Printf.sprintf
         "Optimizer: join graph of %s is disconnected (cartesian product); \
          components: %s"
         q.Query.name
         (String.concat " | " (List.map render comps)))
  end

(* Cheapest access path for a single relation: sequential scan, or an
   equality index scan seeded by one of its own predicates. *)
let scan_plan ~cp ~catalog ~estimator (q : Query.t) rel =
  let table = Catalog.table_exn catalog q.Query.rels.(rel).Query.table in
  let preds = Query.preds_of_cols q rel in
  let est = Estimator.base_card estimator rel in
  let seq_cost =
    Cost_model.seq_scan cp
      ~rows:(float_of_int (Table.nrows table))
      ~npreds:(List.length preds)
  in
  let best = ref (Plan.Seq_scan, seq_cost) in
  List.iter
    (fun (col, p) ->
      match p with
      | Predicate.Cmp (Predicate.Eq, Value.Int key) ->
        (match Catalog.index catalog ~table:(Table.name table) ~col with
         | Some _ ->
           let sel = Estimator.pred_selectivity estimator ~rel ~col p in
           let matches = Float.max 1.0 (Estimator.table_rows estimator rel *. sel) in
           let cost =
             Cost_model.index_scan cp ~matches ~npreds:(List.length preds - 1)
           in
           if cost < snd !best then
             best := (Plan.Index_scan { col; key }, cost)
         | None -> ())
      | _ -> ())
    preds;
  let access, cost = !best in
  Plan.Scan { Plan.scan_rel = rel; access; scan_est = est; scan_cost = cost }

(* Index-nested-loop applies when the inner side is a single base relation
   with a hash index on one of the connecting join columns. *)
let inl_inner_col ~catalog (q : Query.t) inner_plan edges =
  match inner_plan with
  | Plan.Scan { Plan.scan_rel; _ } ->
    let table_name = q.Query.rels.(scan_rel).Query.table in
    List.find_map
      (fun e ->
        let col = e.Query.r.Query.col in
        match Catalog.index catalog ~table:table_name ~col with
        | Some _ -> Some col
        | None -> None)
      edges
  | Plan.Join _ -> None

let join_candidates ~cp ~catalog (q : Query.t) ~outer ~inner ~edges ~est =
  let outer_rows = Plan.est_rows outer and inner_rows = Plan.est_rows inner in
  let outer_cost = Plan.cost outer and inner_cost = Plan.cost inner in
  let hash =
    ( Plan.Hash_join,
      outer_cost +. inner_cost
      +. Cost_model.hash_join cp ~build:inner_rows ~probe:outer_rows ~out:est )
  in
  let nl =
    ( Plan.Nested_loop,
      outer_cost +. inner_cost
      +. Cost_model.nested_loop cp ~outer:outer_rows ~inner:inner_rows ~out:est )
  in
  let merge =
    ( Plan.Merge_join,
      outer_cost +. inner_cost
      +. Cost_model.merge_join cp ~outer:outer_rows ~inner:inner_rows ~out:est )
  in
  let inl =
    match inl_inner_col ~catalog q inner edges with
    | Some inner_col ->
      let inner_rel =
        match inner with
        | Plan.Scan s -> s.Plan.scan_rel
        | Plan.Join _ -> assert false
      in
      let npreds =
        List.length (Query.preds_of q inner_rel) + List.length edges - 1
      in
      [ ( Plan.Index_nl { inner_col },
          outer_cost +. Cost_model.index_nested_loop cp ~outer:outer_rows ~out:est ~npreds ) ]
    | None -> []
  in
  hash :: nl :: merge :: inl

let dp ?space ?(cost_params = Cost_model.default) ~catalog ~estimator (q : Query.t) =
  let cp = cost_params in
  let graph = Join_graph.make q in
  let n = Query.n_rels q in
  check_connected graph q;
  let space =
    match space with Some s -> s | None -> Search_space.build graph
  in
  let start = now_ms () in
  let best : (Relset.t, Plan.t) Hashtbl.t = Hashtbl.create 256 in
  for rel = 0 to n - 1 do
    Hashtbl.replace best (Relset.singleton rel)
      (scan_plan ~cp ~catalog ~estimator q rel)
  done;
  let pairs = ref 0 in
  Search_space.iter space (fun s1 s2 ->
      incr pairs;
      let su = Relset.union s1 s2 in
      let p1 = Hashtbl.find best s1 and p2 = Hashtbl.find best s2 in
      let est = Estimator.card estimator su in
      let consider ~outer ~inner ~edges =
        List.iter
          (fun (algo, cost) ->
            let better =
              match Hashtbl.find_opt best su with
              | Some current -> cost < Plan.cost current
              | None -> true
            in
            if better then
              Hashtbl.replace best su
                (Plan.Join
                   {
                     Plan.algo;
                     outer;
                     inner;
                     join_est = est;
                     join_cost = cost;
                     join_edges = edges;
                   }))
          (join_candidates ~cp ~catalog q ~outer ~inner ~edges ~est)
      in
      let edges12 = Query.edges_between q s1 s2 in
      let edges21 =
        List.map (fun { Query.l; r } -> { Query.l = r; r = l }) edges12
      in
      consider ~outer:p1 ~inner:p2 ~edges:edges12;
      consider ~outer:p2 ~inner:p1 ~edges:edges21);
  let elapsed = now_ms () -. start in
  Rdb_obs.Metrics.incr "plan.built";
  Rdb_obs.Metrics.incr ~by:!pairs "plan.dp_pairs";
  Rdb_obs.Metrics.observe "plan.ms" elapsed;
  ( best,
    {
      pairs_considered = !pairs;
      subsets_planned = Hashtbl.length best;
      plan_ms = elapsed;
    } )

let plan ?lint ?verify ?sensitivity ?resource ?space ?cost_params ~catalog
    ~estimator q =
  let best, stats = dp ?space ?cost_params ~catalog ~estimator q in
  match Hashtbl.find_opt best (Relset.full (Query.n_rels q)) with
  | Some p ->
    run_lint_hook ~lint ~catalog ~estimator q p;
    run_verify_hook ~verify ~catalog ~estimator q p;
    run_sensitivity_hook ~sensitivity ~catalog ~estimator q p;
    run_resource_hook ~resource ~catalog ~estimator q p;
    (p, stats)
  | None -> invalid_arg "Optimizer: no plan found for full relation set"

(* Rio-style robust DP: plans carry one cost per scenario; scenarios scale
   every k-relation join estimate by gamma^(k-1) for gamma in
   {1/u, 1, u}. Selection minimizes the worst-case cost. *)
let dp_robust ?space ?(cost_params = Cost_model.default) ~uncertainty ~catalog
    ~estimator (q : Query.t) =
  let cp = cost_params in
  let graph = Join_graph.make q in
  let n = Query.n_rels q in
  check_connected graph q;
  let space =
    match space with Some s -> s | None -> Search_space.build graph
  in
  let start = now_ms () in
  let gammas = [| 1.0 /. uncertainty; 1.0; uncertainty |] in
  let n_scen = Array.length gammas in
  let scenario_est su i =
    let k = Relset.cardinal su in
    Float.max 1.0
      (Estimator.card estimator su *. (gammas.(i) ** float_of_int (k - 1)))
  in
  (* best plan per subset, with its per-scenario cost vector *)
  let best : (Relset.t, Plan.t * float array) Hashtbl.t = Hashtbl.create 256 in
  for rel = 0 to n - 1 do
    let p = scan_plan ~cp ~catalog ~estimator q rel in
    Hashtbl.replace best (Relset.singleton rel)
      (p, Array.make n_scen (Plan.cost p))
  done;
  let worst costs = Array.fold_left Float.max neg_infinity costs in
  let pairs = ref 0 in
  Search_space.iter space (fun s1 s2 ->
      incr pairs;
      let su = Relset.union s1 s2 in
      let p1, c1 = Hashtbl.find best s1 and p2, c2 = Hashtbl.find best s2 in
      let point_est = Estimator.card estimator su in
      let consider ~outer ~inner ~outer_costs ~inner_costs ~o_set ~i_set ~edges =
        let algo_cost i algo =
          let o_rows = scenario_est o_set i and i_rows = scenario_est i_set i in
          let out = scenario_est su i in
          match algo with
          | Plan.Hash_join ->
            outer_costs.(i) +. inner_costs.(i)
            +. Cost_model.hash_join cp ~build:i_rows ~probe:o_rows ~out
          | Plan.Nested_loop ->
            outer_costs.(i) +. inner_costs.(i)
            +. Cost_model.nested_loop cp ~outer:o_rows ~inner:i_rows ~out
          | Plan.Merge_join ->
            outer_costs.(i) +. inner_costs.(i)
            +. Cost_model.merge_join cp ~outer:o_rows ~inner:i_rows ~out
          | Plan.Index_nl _ ->
            let inner_rel =
              match inner with
              | Plan.Scan s -> s.Plan.scan_rel
              | Plan.Join _ -> assert false
            in
            let npreds =
              List.length (Query.preds_of q inner_rel) + List.length edges - 1
            in
            outer_costs.(i)
            +. Cost_model.index_nested_loop cp ~outer:o_rows ~out ~npreds
        in
        let algos =
          Plan.Hash_join :: Plan.Nested_loop :: Plan.Merge_join
          ::
          (match inl_inner_col ~catalog q inner edges with
           | Some inner_col -> [ Plan.Index_nl { inner_col } ]
           | None -> [])
        in
        List.iter
          (fun algo ->
            let costs = Array.init n_scen (fun i -> algo_cost i algo) in
            let better =
              match Hashtbl.find_opt best su with
              | Some (_, current) -> worst costs < worst current
              | None -> true
            in
            if better then
              Hashtbl.replace best su
                ( Plan.Join
                    {
                      Plan.algo;
                      outer;
                      inner;
                      join_est = point_est;
                      join_cost = costs.(1);
                      join_edges = edges;
                    },
                  costs ))
          algos
      in
      let edges12 = Query.edges_between q s1 s2 in
      let edges21 =
        List.map (fun { Query.l; r } -> { Query.l = r; r = l }) edges12
      in
      consider ~outer:p1 ~inner:p2 ~outer_costs:c1 ~inner_costs:c2 ~o_set:s1
        ~i_set:s2 ~edges:edges12;
      consider ~outer:p2 ~inner:p1 ~outer_costs:c2 ~inner_costs:c1 ~o_set:s2
        ~i_set:s1 ~edges:edges21);
  let elapsed = now_ms () -. start in
  Rdb_obs.Metrics.incr "plan.built";
  Rdb_obs.Metrics.incr ~by:!pairs "plan.dp_pairs";
  Rdb_obs.Metrics.observe "plan.ms" elapsed;
  ( best,
    {
      pairs_considered = !pairs;
      subsets_planned = Hashtbl.length best;
      plan_ms = elapsed;
    } )

let plan_robust ?lint ?verify ?sensitivity ?resource ?space ?cost_params
    ~uncertainty ~catalog ~estimator q =
  let best, stats =
    dp_robust ?space ?cost_params ~uncertainty ~catalog ~estimator q
  in
  match Hashtbl.find_opt best (Relset.full (Query.n_rels q)) with
  | Some (p, _) ->
    run_lint_hook ~lint ~catalog ~estimator q p;
    run_verify_hook ~verify ~catalog ~estimator q p;
    run_sensitivity_hook ~sensitivity ~catalog ~estimator q p;
    run_resource_hook ~resource ~catalog ~estimator q p;
    (p, stats)
  | None -> invalid_arg "Optimizer: no robust plan found"

let best_cost_of_sets ?space ?cost_params ~catalog ~estimator q =
  let best, _ = dp ?space ?cost_params ~catalog ~estimator q in
  fun s -> Hashtbl.find_opt best s
