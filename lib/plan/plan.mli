(** Physical plan trees: scans with an access path, binary joins with an
    algorithm, each node carrying the optimizer's cardinality estimate and
    cost. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query

type scan_access =
  | Seq_scan
  | Index_scan of { col : int; key : int }
      (** Equality lookup [col = key] through a hash index; the relation's
          remaining predicates are applied as residual filters. *)

type join_algo =
  | Hash_join
      (** Build on the inner (right) input, probe with the outer. *)
  | Index_nl of { inner_col : int }
      (** For each outer row, probe the inner base relation's index on
          [inner_col]. The inner input must be a single base relation. *)
  | Nested_loop
      (** Materialized inner, scanned per outer row. *)
  | Merge_join
      (** Sort both inputs on the join key(s), then merge. *)

type t =
  | Scan of scan
  | Join of join

and scan = {
  scan_rel : int;
  access : scan_access;
  scan_est : float;
  scan_cost : float;
}

and join = {
  algo : join_algo;
  outer : t;
  inner : t;
  join_est : float;
  join_cost : float;
  join_edges : Query.edge list;
      (** Connecting equi-join conditions, oriented with [l] on the outer
          side. The first edge is the index key for [Index_nl]. *)
}

val rel_set : t -> Relset.t
(** Relations covered by the subtree. *)

val est_rows : t -> float
val cost : t -> float

val joins_bottom_up : t -> join list
(** All join nodes, deepest-first (post-order); the order in which the
    re-optimizer looks for the "lowest" mis-estimated join. *)

val scans : t -> scan list

val n_joins : t -> int

val algo_name : join_algo -> string

val same_shape : t -> t -> bool
(** Structural equality of the physical plan choice — relations, access
    paths, join algorithms and tree shape — ignoring the recorded estimates
    and costs. The sensitivity analyzer uses this to decide whether a
    perturbed estimate changed the DP-optimal plan. *)

val shape : Query.t -> t -> string
(** Compact s-expression of the plan choice, e.g.
    [(HJ (INL t mk@c1) ci)] — the same equivalence as {!same_shape},
    rendered for reports. *)
