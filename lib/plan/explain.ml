module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate

let colref_name (q : Query.t) (cr : Query.colref) catalog_name =
  ignore catalog_name;
  Printf.sprintf "%s.c%d" (Query.rel_alias q cr.Query.rel) cr.Query.col

let render ?actuals ?notes (q : Query.t) plan =
  let buf = Buffer.create 256 in
  let actual_str set =
    match actuals with
    | None -> ""
    | Some f ->
      (match f set with
       | Some rows -> Printf.sprintf " (actual rows=%d)" rows
       | None -> "")
  in
  let notes_str set =
    match notes with
    | None -> ""
    | Some f ->
      String.concat "" (List.map (fun note -> " " ^ note) (f set))
  in
  let rec go indent node =
    let pad = String.make (indent * 2) ' ' in
    match node with
    | Plan.Scan s ->
      let rel = q.Query.rels.(s.Plan.scan_rel) in
      let access =
        match s.Plan.access with
        | Plan.Seq_scan -> "Seq Scan"
        | Plan.Index_scan { col; key } ->
          Printf.sprintf "Index Scan (c%d = %d)" col key
      in
      let preds = Query.preds_of_cols q s.Plan.scan_rel in
      let preds_str =
        if preds = [] then ""
        else
          " filter: "
          ^ String.concat " AND "
              (List.map
                 (fun (col, p) ->
                   Predicate.to_sql ~col:(Printf.sprintf "c%d" col) p)
                 preds)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s on %s %s  (est rows=%.0f cost=%.1f)%s%s%s\n" pad
           access rel.Query.table rel.Query.alias s.Plan.scan_est
           s.Plan.scan_cost
           (actual_str (Relset.singleton s.Plan.scan_rel))
           preds_str
           (notes_str (Relset.singleton s.Plan.scan_rel)))
    | Plan.Join j ->
      let set = Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner) in
      let conds =
        String.concat " AND "
          (List.map
             (fun { Query.l; r } ->
               Printf.sprintf "%s = %s" (colref_name q l "") (colref_name q r ""))
             j.Plan.join_edges)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s on %s  (est rows=%.0f cost=%.1f)%s%s\n" pad
           (Plan.algo_name j.Plan.algo)
           conds j.Plan.join_est j.Plan.join_cost (actual_str set)
           (notes_str set));
      go (indent + 1) j.Plan.outer;
      go (indent + 1) j.Plan.inner
  in
  go 0 plan;
  Buffer.contents buf
