(** EXPLAIN / EXPLAIN ANALYZE rendering of plan trees. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query

val render :
  ?actuals:(Relset.t -> int option) ->
  ?notes:(Relset.t -> string list) ->
  Query.t ->
  Plan.t ->
  string
(** Multi-line tree. When [actuals] is given, each node also shows the true
    row count for its relation set — the paper's EXPLAIN ANALYZE view that
    drives the re-optimization trigger. [notes] appends arbitrary
    annotations to each node's line, keyed by the node's relation set
    (sets are unique within one plan tree); [Rdb_core.Explain_analyze]
    uses it to splice executed actuals, Q-errors, adaptive switches and
    the re-opt trigger marker into the rendering. *)
