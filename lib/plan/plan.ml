module Relset = Rdb_util.Relset
module Query = Rdb_query.Query

type scan_access =
  | Seq_scan
  | Index_scan of { col : int; key : int }

type join_algo =
  | Hash_join
  | Index_nl of { inner_col : int }
  | Nested_loop
  | Merge_join

type t =
  | Scan of scan
  | Join of join

and scan = {
  scan_rel : int;
  access : scan_access;
  scan_est : float;
  scan_cost : float;
}

and join = {
  algo : join_algo;
  outer : t;
  inner : t;
  join_est : float;
  join_cost : float;
  join_edges : Query.edge list;
}

let rec rel_set = function
  | Scan s -> Relset.singleton s.scan_rel
  | Join j -> Relset.union (rel_set j.outer) (rel_set j.inner)

let est_rows = function
  | Scan s -> s.scan_est
  | Join j -> j.join_est

let cost = function
  | Scan s -> s.scan_cost
  | Join j -> j.join_cost

let joins_bottom_up t =
  let rec go acc = function
    | Scan _ -> acc
    | Join j ->
      let acc = go acc j.outer in
      let acc = go acc j.inner in
      j :: acc
  in
  List.rev (go [] t)

let scans t =
  let rec go acc = function
    | Scan s -> s :: acc
    | Join j -> go (go acc j.inner) j.outer
  in
  List.rev (go [] t)

let n_joins t = List.length (joins_bottom_up t)

let algo_name = function
  | Hash_join -> "Hash Join"
  | Index_nl _ -> "Index Nested Loop"
  | Nested_loop -> "Nested Loop"
  | Merge_join -> "Merge Join"

let rec same_shape a b =
  match (a, b) with
  | Scan s1, Scan s2 -> s1.scan_rel = s2.scan_rel && s1.access = s2.access
  | Join j1, Join j2 ->
    j1.algo = j2.algo && same_shape j1.outer j2.outer
    && same_shape j1.inner j2.inner
  | Scan _, Join _ | Join _, Scan _ -> false

let shape q t =
  let buf = Buffer.create 64 in
  let rec go = function
    | Scan s ->
      Buffer.add_string buf (Query.rel_alias q s.scan_rel);
      (match s.access with
       | Seq_scan -> ()
       | Index_scan { col; _ } -> Buffer.add_string buf (Printf.sprintf "@c%d" col))
    | Join j ->
      Buffer.add_char buf '(';
      Buffer.add_string buf
        (match j.algo with
         | Hash_join -> "HJ"
         | Index_nl _ -> "INL"
         | Nested_loop -> "NL"
         | Merge_join -> "MJ");
      Buffer.add_char buf ' ';
      go j.outer;
      Buffer.add_char buf ' ';
      go j.inner;
      Buffer.add_char buf ')'
  in
  go t;
  Buffer.contents buf
