(** The instrumented cardinality estimator — the paper's modified
    PostgreSQL. One estimator serves one query; estimates are cached per
    relation subset, so each subset is estimated exactly once regardless of
    how many plans the enumerator considers (as in PostgreSQL's
    [PlannerInfo]).

    Modes:
    - [Default]: statistics + uniformity/independence assumptions.
    - [Perfect n]: true cardinalities for subsets of at most [n] relations
      (the paper's perfect-(n)); larger subsets use the default composition
      over the perfect inputs.
    - [Perfect_all]: perfect-(17) in the paper — every estimate true.
    - [Overrides]: selected subsets pinned to given values, the LEO-style
      selective-correction experiment of §IV-E.
    - [Feedback]: consult a correction source (typically
      [Rdb_core.Feedback.lookup], possibly gated) before the default
      composition. The probe happens once per memoized subset — lookup is
      demand-driven from the DP enumeration, never an eager sweep over
      every connected subset.
    - [Sampling]: index-based join sampling (§II-C's practical contender):
      estimates come from pushing a bounded row sample through the real
      joins. *)

module Relset = Rdb_util.Relset
module Db_stats := Rdb_stats.Db_stats
module Query := Rdb_query.Query

type mode =
  | Default
  | Perfect of int
  | Perfect_all
  | Overrides of (Relset.t, float) Hashtbl.t
  | Feedback of (Relset.t -> float option)
  | Sampling of Join_sample.t

type t

val create :
  ?log:Estimate_log.t ->
  ?bound:(Relset.t -> float -> float) ->
  mode:mode ->
  catalog:Catalog.t ->
  stats:Db_stats.t ->
  ?oracle:Oracle.t ->
  Query.t ->
  t
(** [oracle] is required by [Perfect _] and [Perfect_all]; raises
    [Invalid_argument] when missing. [bound], when given, is applied to
    every memoized estimate (subset, raw estimate) before the 1-row floor —
    the verifier's pessimistic clamp to its sound interval. *)

val mode : t -> mode

val db_stats : t -> Db_stats.t
(** The statistics snapshot the estimator was built over. *)

val oracle : t -> Oracle.t option
(** The true-cardinality oracle the estimator was built with, if any. The
    sensitivity analyzer uses it to rebuild an equivalent estimator with one
    subset's estimate pinned to a perturbed value. *)

val card : t -> Relset.t -> float
(** Estimated cardinality of a connected relation subset; always >= 1. *)

val base_card : t -> int -> float
(** Estimated cardinality of one relation after its predicates. *)

val edge_selectivity : t -> Query.edge -> float
(** Estimated selectivity of a single join edge (from base-column
    statistics). *)

val pred_selectivity : t -> rel:int -> col:int -> Rdb_query.Predicate.t -> float
(** Estimated selectivity of a single predicate; the optimizer uses this to
    size equality index scans. *)

val table_rows : t -> int -> float
(** Physical row count of a relation's table (before predicates). *)
