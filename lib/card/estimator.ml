module Relset = Rdb_util.Relset
module Db_stats = Rdb_stats.Db_stats
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph

type mode =
  | Default
  | Perfect of int
  | Perfect_all
  | Overrides of (Relset.t, float) Hashtbl.t
  | Feedback of (Relset.t -> float option)
  | Sampling of Join_sample.t

type t = {
  mode : mode;
  q : Query.t;
  graph : Join_graph.t;
  catalog : Catalog.t;
  stats : Db_stats.t;
  oracle : Oracle.t option;
  log : Estimate_log.t option;
  bound : (Relset.t -> float -> float) option;
      (* sound-interval clamp (the verifier's "pessimistic" mode): applied
         to every memoized estimate before the 1-row floor *)
  memo : (Relset.t, float) Hashtbl.t;
  implied : (Query.colref, Value.t) Hashtbl.t;
      (* equality constants propagated through join equivalence classes,
         as PostgreSQL's equivalence-class machinery does: a predicate
         [c.id = 1] restricts every column joined (transitively) to c.id *)
}

(* Propagate [col = const] predicates to every column reachable through
   equi-join edges. The join clauses inside such a class become implied
   (selectivity 1): both sides are already restricted to the constant. *)
let compute_implied (q : Query.t) =
  let parent : (Query.colref, Query.colref) Hashtbl.t = Hashtbl.create 16 in
  let rec find cr =
    match Hashtbl.find_opt parent cr with
    | None -> cr
    | Some p ->
      let root = find p in
      if root <> p then Hashtbl.replace parent cr root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then
      if ra < rb then Hashtbl.replace parent rb ra else Hashtbl.replace parent ra rb
  in
  List.iter (fun { Query.l; r } -> union l r) q.Query.edges;
  let const_of_root : (Query.colref, Value.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ({ Query.target; p } : Query.pred) ->
      match p with
      | Rdb_query.Predicate.Cmp (Rdb_query.Predicate.Eq, (Value.Int _ as v)) ->
        Hashtbl.replace const_of_root (find target) v
      | _ -> ())
    q.Query.preds;
  let implied = Hashtbl.create 16 in
  let members = Hashtbl.create 16 in
  List.iter
    (fun { Query.l; r } ->
      Hashtbl.replace members l ();
      Hashtbl.replace members r ())
    q.Query.edges;
  Hashtbl.iter
    (fun cr () ->
      match Hashtbl.find_opt const_of_root (find cr) with
      | Some v -> Hashtbl.replace implied cr v
      | None -> ())
    members;
  implied

let create ?log ?bound ~mode ~catalog ~stats ?oracle q =
  (match mode, oracle with
   | (Perfect _ | Perfect_all), None ->
     invalid_arg "Estimator.create: perfect modes require an oracle"
   | _ -> ());
  {
    mode;
    q;
    graph = Join_graph.make q;
    catalog;
    stats;
    oracle;
    log;
    bound;
    memo = Hashtbl.create 64;
    implied = compute_implied q;
  }

let mode t = t.mode
let db_stats t = t.stats
let oracle t = t.oracle

let col_stats t rel col =
  let table = Catalog.table_exn t.catalog t.q.Query.rels.(rel).Query.table in
  Db_stats.col_or_trivial t.stats table col

let implied_preds t rel =
  let explicit = Query.preds_of_cols t.q rel in
  Hashtbl.fold
    (fun (cr : Query.colref) v acc ->
      if cr.Query.rel <> rel then acc
      else begin
        let p = Rdb_query.Predicate.Cmp (Rdb_query.Predicate.Eq, v) in
        (* skip when the query already states this exact restriction *)
        if List.exists (fun (col, p') -> col = cr.Query.col && p' = p) explicit
        then acc
        else (cr.Query.col, p) :: acc
      end)
    t.implied []

(* Combined selectivity of a relation's predicates. Pairs covered by
   column-group statistics (CORDS / CREATE STATISTICS) use the joint MCV
   distribution; everything else falls back to the independence product. *)
let combined_selectivity t rel preds =
  let table_name = t.q.Query.rels.(rel).Query.table in
  let single (col, p) = Selectivity.of_pred (col_stats t rel col) p in
  let rec go acc = function
    | [] -> acc
    | (col, p) :: rest ->
      let grouped =
        List.find_map
          (fun (col', p') ->
            match
              Rdb_stats.Db_stats.group t.stats ~table:table_name
                ~cols:(col, col')
            with
            | Some g -> Some (col', p', g)
            | None -> None)
          rest
      in
      (match grouped with
       | Some (col', p', g) ->
         let rest' = List.filter (fun (c, _) -> c <> col') rest in
         let independent = single (col, p) *. single (col', p') in
         let lo_pred, hi_pred = if col <= col' then (p, p') else (p', p) in
         let sel =
           Rdb_stats.Group_stats.joint_selectivity g
             (Rdb_query.Predicate.eval lo_pred)
             (Rdb_query.Predicate.eval hi_pred)
             ~independent
         in
         go (acc *. sel) rest'
       | None -> go (acc *. single (col, p)) rest)
  in
  go 1.0 preds

let base_default t rel =
  let stats_preds = Query.preds_of_cols t.q rel @ implied_preds t rel in
  let table = Catalog.table_exn t.catalog t.q.Query.rels.(rel).Query.table in
  let rows = float_of_int (Table.nrows table) in
  Float.max 1.0 (rows *. combined_selectivity t rel stats_preds)

let edge_selectivity t { Query.l; r } =
  Join_sel.eq_join
    (col_stats t l.Query.rel l.Query.col)
    (col_stats t r.Query.rel r.Query.col)

let oracle_exn t =
  match t.oracle with
  | Some o -> o
  | None -> assert false

(* The default composition: peel the canonical removable relation and apply
   independent per-edge selectivities, so perfect sub-estimates propagate
   upward exactly as the paper's perfect-(n) does. *)
let rec card t s =
  match Hashtbl.find_opt t.memo s with
  | Some v -> v
  | None ->
    let v = compute t s in
    let v = match t.bound with Some f -> f s v | None -> v in
    let v = Float.max 1.0 v in
    Hashtbl.replace t.memo s v;
    (match t.log with
     | Some log -> Estimate_log.record log ~size:(Relset.cardinal s)
     | None -> ());
    v

and compute t s =
  let size = Relset.cardinal s in
  match t.mode with
  | Perfect n when size <= n -> float_of_int (Oracle.true_card (oracle_exn t) s)
  | Perfect_all -> float_of_int (Oracle.true_card (oracle_exn t) s)
  | Overrides overrides when Hashtbl.mem overrides s -> Hashtbl.find overrides s
  | Feedback lookup -> (
    (* Demand-driven: one store probe per memoized subset, so feedback
       costs O(DP work), never an eager sweep of every connected subset.
       Corrections compose upward through compute_default exactly like
       perfect-(n) sub-estimates do. *)
    match lookup s with
    | Some v -> v
    | None -> compute_default t s)
  | Sampling js -> Float.max 1.0 (Join_sample.card js s)
  | Default | Perfect _ | Overrides _ -> compute_default t s

and compute_default t s =
  if Relset.cardinal s = 1 then base_default t (Relset.min_elt s)
  else begin
    let r = Join_graph.removable t.graph s in
    let rest = Relset.remove r s in
    let connecting = Query.edges_between t.q rest (Relset.singleton r) in
    let sel =
      List.fold_left
        (fun acc e ->
          (* A join clause whose equivalence class is pinned to a constant
             is implied by the base restrictions on both sides. *)
          if Hashtbl.mem t.implied e.Query.l then acc
          else acc *. edge_selectivity t e)
        1.0 connecting
    in
    card t rest *. card t (Relset.singleton r) *. sel
  end

let base_card t rel = card t (Relset.singleton rel)

let pred_selectivity t ~rel ~col p = Selectivity.of_pred (col_stats t rel col) p

let table_rows t rel =
  let table = Catalog.table_exn t.catalog t.q.Query.rels.(rel).Query.table in
  float_of_int (Table.nrows table)
