(** Exception-flow analysis: the error-path twin of {!Lockcheck}.

    Per-function summaries [{raises; handles; releases}] are computed by a
    syntactic facts pass and iterated to fixpoint over the name-based call
    graph; an intraprocedural walker then threads live/protected resource
    sets and enclosing catch masks through every function body and checks
    leak-on-raise, spawn-escape, and designated-handler discipline.

    Calibration: unknown calls are assumed non-raising, a short primitive
    table is assumed raising, and [Fun.protect]/[Mutex.protect]/[@releases]
    are the recognized sound release shapes. *)

type located = Lockcheck.located = {
  lfile : string;
  lline : int;
  lfinding : Rdb_analysis.Finding.t;
}

type sinfo = {
  si_raises : string list;  (** named constructors that may escape *)
  si_any : bool;  (** may also raise something unnamed *)
  si_handles : string list;  (** constructors named by its handlers *)
  si_releases : string list;  (** caller resources released on all paths *)
}

type handler_entry = { hsuffix : string; hexns : string list }
(** [hexns] may only be caught in files whose path ends with [hsuffix]. *)

val control_exns : string list
(** Control exceptions under designated-handler discipline:
    [Work_budget_exceeded], [Deadline_exceeded], [Over_budget],
    [Verify_failed]. *)

val default_handlers : handler_entry list
(** The registry-pinned handler sites (the harness layers that record
    capped cells). *)

val default_pinned : string list
(** Serving-stack files that must be present in the analyzed tree. *)

type result = {
  items : located list;
  summaries : (string * sinfo) list;  (** ["base.fn"] -> summary, sorted *)
  resources : int;  (** tracked acquisition sites *)
}

val check :
  ?handlers:handler_entry list ->
  ?pinned:string list ->
  Model.file list ->
  result
(** Pass [~handlers:[] ~pinned:[]] for synthetic trees. *)
