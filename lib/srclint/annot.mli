(** Concurrency-discipline annotations embedded in OCaml comments.

    The convention mirrors the paper's thesis applied to our own source:
    declare the locking discipline statically so violations are caught at
    build time instead of waiting for a runtime surprise. Directives live in
    ordinary comments, either trailing the declaration they describe or on
    the line immediately above it:

    - [(* @guarded_by <lock> *)] — this mutable field / ref / container is
      only accessed while [<lock>] is held.
    - [(* @confined <reason> *)] — this state is domain-local or
      single-owner; no lock is required (reason is mandatory).
    - [(* @requires <lock> *)] — callers of this function must already hold
      [<lock>]; the body is analyzed with the lock held.
    - [(* @acquires <lock> *)] — summary hint: this function may acquire
      [<lock>] (normally inferred; useful for externals).
    - [(* @with_lock <lock> *)] — this function runs its closure arguments
      with [<lock>] held (a [Mutex.protect]-style wrapper).
    - [(* @race_ok <reason> *)] — suppress findings on this line and the
      next (pre-publication initialization, etc.; reason is mandatory).
    - [(* @lock_order <a> < <b> *)] — [<a>] must be acquired before [<b>];
      chains [a < b < c] are allowed.

    Exception-flow directives (consumed by {!Exnflow}):

    - [(* @releases <name> *)] — this function releases the resource bound
      to [<name>] in its caller (an fd/channel ident, or a lock name) on
      every exit path, including raising ones; callers may treat a call as
      a release point.
    - [(* @cleanup_ok <reason> *)] — the resource acquired on this line (or
      the next) is cleaned up by a mechanism the walker cannot see; reason
      is mandatory.
    - [(* @swallow_ok <reason> *)] — the catch-all handler or spawn head on
      this line (or the next) intentionally swallows/defers exceptions;
      reason is mandatory. Does NOT bless control-exception handlers —
      those are registry-pinned only.

    Lock names are short ([mu]) for locks of the same file, or qualified
    with the defining file's basename ([pool.mu]) across files. *)

type directive =
  | Guarded_by of string
  | Confined of string
  | Requires of string
  | Acquires of string
  | With_lock of string
  | Race_ok of string
  | Lock_order of string * string
  | Releases of string
  | Cleanup_ok of string
  | Swallow_ok of string

type t = { line : int; directive : directive }

type error = { eline : int; etext : string }

val scan : string -> t list * error list
(** [scan source] extracts directives from the comments of [source]
    (handles nested comments and string/char literals). Malformed or
    unknown [@...] directives are returned as errors. *)
