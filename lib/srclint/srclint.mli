(** Entry point of the source-level concurrency analyzer: the fourth
    static-analysis layer (query -> plan -> sensitivity -> source). Loads
    [.ml] files, runs {!Lockcheck} and {!Registry}, and renders a stable,
    deterministically sorted report suitable for CI diffs. *)

type item = {
  file : string;
  line : int;
  finding : Rdb_analysis.Finding.t;
}

type report = {
  files : string list;  (** analyzed paths, sorted *)
  locks : string list;  (** qualified lock names, sorted *)
  states : int;  (** number of declared/detected shared-state names *)
  edges : (string * string) list;  (** lock acquisition-order graph *)
  items : item list;  (** findings: errors first, then file/line *)
}

val analyze_files :
  ?registry:Registry.entry list -> string list -> report
(** Analyze exactly these files. [registry] defaults to
    {!Registry.default}; pass [~registry:[]] for synthetic trees. *)

val analyze_tree : ?registry:Registry.entry list -> root:string -> unit -> report
(** Analyze every [.ml] under [root] (skips [_build]/[.git]). *)

val ml_files_under : string -> string list

val find_default_root : unit -> string option
(** Walk up from the cwd looking for the repo root (identified by
    [lib/util/pool.ml]); returns the [lib] directory to analyze. *)

val errors : report -> item list

val exit_code : report -> int
(** 0 clean, 1 if any error-severity finding. *)

val render : report -> string

val to_json : report -> Rdb_obs.Json.t

(** {1 Exception-flow report ([reoptdb exnflow])} *)

type exn_report = {
  xfiles : string list;  (** analyzed paths, sorted *)
  xresources : int;  (** tracked acquisition sites *)
  xfunctions : int;  (** functions with a summary *)
  xsummaries : (string * Exnflow.sinfo) list;  (** ["base.fn"], sorted *)
  xitems : item list;  (** findings: errors first, then file/line *)
}

val analyze_exnflow_files :
  ?handlers:Exnflow.handler_entry list ->
  ?pinned:string list ->
  string list ->
  exn_report
(** Defaults to {!Exnflow.default_handlers} / {!Exnflow.default_pinned};
    pass [~handlers:[] ~pinned:[]] for synthetic trees. *)

val analyze_exnflow_tree :
  ?handlers:Exnflow.handler_entry list ->
  ?pinned:string list ->
  root:string ->
  unit ->
  exn_report

val exn_errors : exn_report -> item list

val exn_exit_code : exn_report -> int

val render_exnflow : exn_report -> string

val exnflow_to_json : exn_report -> Rdb_obs.Json.t
