(* Comment scanner + directive parser for the concurrency discipline.
   Hand-rolled rather than [Lexer.comments ()] so it works on any source
   string without compiler-libs state, and survives files that use the
   full comment grammar (nesting, strings-in-comments). *)

type directive =
  | Guarded_by of string
  | Confined of string
  | Requires of string
  | Acquires of string
  | With_lock of string
  | Race_ok of string
  | Lock_order of string * string
  | Releases of string
  | Cleanup_ok of string
  | Swallow_ok of string

type t = { line : int; directive : directive }

type error = { eline : int; etext : string }

(* ---- comment extraction ---- *)

type comment = { cline : int; ctext : string }

let comments (src : string) : comment list =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then src.[!i + k] else '\000' in
  let bump () =
    if src.[!i] = '\n' then incr line;
    incr i
  in
  (* Skip a string literal whose opening quote is at [!i]. *)
  let skip_string () =
    bump ();
    let fin = ref false in
    while (not !fin) && !i < n do
      match src.[!i] with
      | '\\' ->
        bump ();
        if !i < n then bump ()
      | '"' ->
        bump ();
        fin := true
      | _ -> bump ()
    done
  in
  while !i < n do
    match src.[!i] with
    | '"' -> skip_string ()
    | '\'' ->
      (* char literal vs type variable: ['a'] / ['\n'] are literals,
         ['a] in [('a, 'b) t] is not. *)
      if peek 1 = '\\' then begin
        bump ();
        bump ();
        while !i < n && src.[!i] <> '\'' do
          bump ()
        done;
        if !i < n then bump ()
      end
      else if peek 2 = '\'' then begin
        bump ();
        bump ();
        bump ()
      end
      else bump ()
    | '(' when peek 1 = '*' ->
      let start_line = !line in
      let buf = Buffer.create 64 in
      bump ();
      bump ();
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        if src.[!i] = '(' && peek 1 = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          bump ();
          bump ()
        end
        else if src.[!i] = '*' && peek 1 = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          bump ();
          bump ()
        end
        else if src.[!i] = '"' then begin
          (* strings inside comments must balance; content is irrelevant
             to directives, so just copy it through. *)
          let s0 = !i in
          skip_string ();
          Buffer.add_string buf (String.sub src s0 (!i - s0))
        end
        else begin
          Buffer.add_char buf src.[!i];
          bump ()
        end
      done;
      out := { cline = start_line; ctext = Buffer.contents buf } :: !out
    | _ -> bump ()
  done;
  List.rev !out

(* ---- directive parsing ---- *)

let is_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '\'')
       s

let known =
  [ "@guarded_by"; "@confined"; "@requires"; "@acquires"; "@with_lock";
    "@race_ok"; "@lock_order"; "@releases"; "@cleanup_ok"; "@swallow_ok" ]

let is_directive_tok t = String.length t > 1 && t.[0] = '@'

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* Parse the token stream of one comment line. *)
let parse_line line toks =
  let dirs = ref [] and errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := { eline = line; etext = s } :: !errs) fmt in
  let dir d = dirs := { line; directive = d } :: !dirs in
  let rec reason_of acc = function
    (* free-text reason: everything up to the next directive token *)
    | t :: rest when not (is_directive_tok t) -> reason_of (t :: acc) rest
    | rest -> (String.concat " " (List.rev acc), rest)
  in
  let rec chain_of first = function
    (* [a < b < c] -> edges (a,b) (b,c) *)
    | "<" :: nxt :: rest when is_name nxt ->
      dir (Lock_order (first, nxt));
      chain_of nxt rest
    | rest -> rest
  in
  let rec go = function
    | [] -> ()
    | "@guarded_by" :: rest -> one (fun l -> Guarded_by l) "@guarded_by" rest
    | "@requires" :: rest -> one (fun l -> Requires l) "@requires" rest
    | "@acquires" :: rest -> one (fun l -> Acquires l) "@acquires" rest
    | "@with_lock" :: rest -> one (fun l -> With_lock l) "@with_lock" rest
    | "@releases" :: rest -> one (fun l -> Releases l) "@releases" rest
    | "@confined" :: rest -> reasoned (fun r -> Confined r) "@confined" rest
    | "@race_ok" :: rest -> reasoned (fun r -> Race_ok r) "@race_ok" rest
    | "@cleanup_ok" :: rest -> reasoned (fun r -> Cleanup_ok r) "@cleanup_ok" rest
    | "@swallow_ok" :: rest -> reasoned (fun r -> Swallow_ok r) "@swallow_ok" rest
    | "@lock_order" :: first :: (("<" :: _) as rest) when is_name first ->
      go (chain_of first rest)
    | "@lock_order" :: rest ->
      err "@lock_order expects '<a> < <b>'";
      go rest
    | t :: rest when is_directive_tok t && not (List.mem t known) ->
      (* only flag plausible directive tokens, not stray '@' art *)
      if String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_') (String.sub t 1 (String.length t - 1))
      then err "unknown concurrency directive %s" t;
      go rest
    | _ :: rest -> go rest
  and one mk name = function
    | l :: rest when is_name l ->
      dir (mk l);
      go rest
    | rest ->
      err "%s expects a lock name" name;
      go rest
  and reasoned mk name rest =
    let reason, rest = reason_of [] rest in
    if reason = "" then err "%s requires a reason" name else dir (mk reason);
    go rest
  in
  go toks;
  (List.rev !dirs, List.rev !errs)

(* A directive must LEAD its comment line (several may follow on the same
   line); prose that merely mentions one mid-sentence is ignored. A leading
   token that looks like a directive but is unknown is an error — that is
   how typos like [@guardedby] surface instead of rotting silently. *)
let line_is_directive = function
  | [] -> false
  | t :: _ ->
    is_directive_tok t
    && String.for_all
         (fun c -> (c >= 'a' && c <= 'z') || c = '_')
         (String.sub t 1 (String.length t - 1))

let scan src =
  let dirs = ref [] and errs = ref [] in
  List.iter
    (fun c ->
      List.iteri
        (fun off lntext ->
          if String.length lntext > 0 && String.contains lntext '@' then begin
            let toks = split_ws lntext in
            if line_is_directive toks then begin
              let ds, es = parse_line (c.cline + off) toks in
              dirs := List.rev_append ds !dirs;
              errs := List.rev_append es !errs
            end
          end)
        (String.split_on_char '\n' c.ctext))
    (comments src);
  (List.rev !dirs, List.rev !errs)
