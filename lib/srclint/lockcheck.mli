(** The concurrency checker proper: walks every function body of every file
    with an abstract held-lock set, checks guarded-state accesses, spawn
    captures, blocking-under-lock and lock contracts, and builds the global
    lock-acquisition-order graph for cycle / declared-order analysis.

    Interprocedural reasoning is by name-based summaries (may-acquire /
    may-block) computed to a fixpoint over the call graph; everything else is
    intraprocedural over the parsetree. *)

type edge = { efrom : string; eto : string; efile : string; eline : int }
(** [efrom] was held at [efile:eline] when [eto] was acquired. *)

type located = {
  lfile : string;
  lline : int;
  lfinding : Rdb_analysis.Finding.t;
}

type result = { items : located list; edges : edge list }
(** [edges] is the deduplicated acquisition-order graph (first site wins). *)

val diverges : Ppxlib.expression -> bool
(** Does this expression always raise/fail (so its branch never merges)?
    Shared with {!Exnflow}'s branch-merge logic. *)

val check : Model.file list -> result
