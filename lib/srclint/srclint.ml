module Finding = Rdb_analysis.Finding
module Json = Rdb_obs.Json

type item = { file : string; line : int; finding : Finding.t }

type report = {
  files : string list;
  locks : string list;
  states : int;
  edges : (string * string) list;
  items : item list;
}

let sev_rank = function
  | Finding.Error -> 0
  | Finding.Warning -> 1
  | Finding.Info -> 2

let sort_items items =
  List.sort
    (fun a b ->
      compare
        (sev_rank a.finding.Finding.severity, a.file, a.line,
         a.finding.Finding.code, a.finding.Finding.message)
        (sev_rank b.finding.Finding.severity, b.file, b.line,
         b.finding.Finding.code, b.finding.Finding.message))
    items

let analyze_models ?(registry = Registry.default) (models : Model.file list) =
  let r = Lockcheck.check models in
  let reg = Registry.check registry models in
  let items =
    List.map
      (fun (l : Lockcheck.located) ->
        { file = l.lfile; line = l.lline; finding = l.lfinding })
      (reg @ r.items)
    |> sort_items
  in
  let locks =
    List.concat_map
      (fun (f : Model.file) ->
        Hashtbl.fold
          (fun short _ acc -> Model.qualify f.base short :: acc)
          f.locks [])
      models
    |> List.sort_uniq compare
  in
  let states =
    List.fold_left
      (fun acc (f : Model.file) -> acc + Hashtbl.length f.states)
      0 models
  in
  { files = List.sort compare (List.map (fun (f : Model.file) -> f.path) models);
    locks;
    states;
    edges =
      List.map (fun (e : Lockcheck.edge) -> (e.efrom, e.eto)) r.edges
      |> List.sort_uniq compare;
    items }

let analyze_files ?registry paths =
  analyze_models ?registry (List.map Model.load (List.sort compare paths))

let ml_files_under root =
  let out = ref [] in
  let rec go dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
      Array.sort compare entries;
      Array.iter
        (fun name ->
          if name <> "_build" && name <> ".git" then begin
            let p = Filename.concat dir name in
            if Sys.is_directory p then go p
            else if Filename.check_suffix name ".ml" then out := p :: !out
          end)
        entries
  in
  if Sys.file_exists root && Sys.is_directory root then go root;
  List.rev !out

let analyze_tree ?registry ~root () =
  analyze_files ?registry (ml_files_under root)

let find_default_root () =
  let rec up dir n =
    if n > 8 then None
    else if Sys.file_exists (Filename.concat dir "lib/util/pool.ml") then
      Some (Filename.concat dir "lib")
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up (Sys.getcwd ()) 0

let errors r =
  List.filter (fun i -> i.finding.Finding.severity = Finding.Error) r.items

let exit_code r = if errors r <> [] then 1 else 0

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "racecheck: %d files, %d locks, %d states, %d lock-order edges\n"
       (List.length r.files) (List.length r.locks) r.states
       (List.length r.edges));
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d: %s\n" i.file i.line
           (Finding.to_string i.finding)))
    r.items;
  let errs = List.length (errors r) in
  Buffer.add_string b
    (Printf.sprintf "racecheck: %d findings (%d errors)\n"
       (List.length r.items) errs);
  Buffer.contents b

(* ---- exception-flow report (reoptdb exnflow) ---- *)

type exn_report = {
  xfiles : string list;
  xresources : int;
  xfunctions : int;
  xsummaries : (string * Exnflow.sinfo) list;
  xitems : item list;
}

let analyze_exnflow_models ?handlers ?pinned (models : Model.file list) =
  let r = Exnflow.check ?handlers ?pinned models in
  (* parse / annotation problems surface here too: exnflow shares the
     directive grammar with racecheck, so a bad @cleanup_ok must fail both *)
  let hygiene =
    List.concat_map
      (fun (f : Model.file) ->
        let parse =
          match f.parse_error with
          | Some msg ->
            [ { file = f.path; line = 1;
                finding =
                  Finding.error ~code:"src-parse-error"
                    (Printf.sprintf "could not parse: %s" msg) } ]
          | None -> []
        in
        parse
        @ List.map
            (fun (i : Model.issue) ->
              let mk =
                match i.isev with
                | `Error -> Finding.error ~code:"src-bad-annotation"
                | `Warning -> Finding.warning ~code:"src-dangling-annotation"
              in
              { file = f.path; line = i.iline; finding = mk i.itext })
            f.issues)
      models
  in
  let items =
    hygiene
    @ List.map
        (fun (l : Exnflow.located) ->
          { file = l.lfile; line = l.lline; finding = l.lfinding })
        r.items
    |> sort_items
  in
  { xfiles =
      List.sort compare (List.map (fun (f : Model.file) -> f.path) models);
    xresources = r.resources;
    xfunctions = List.length r.summaries;
    xsummaries = r.summaries;
    xitems = items }

let analyze_exnflow_files ?handlers ?pinned paths =
  analyze_exnflow_models ?handlers ?pinned
    (List.map Model.load (List.sort compare paths))

let analyze_exnflow_tree ?handlers ?pinned ~root () =
  analyze_exnflow_files ?handlers ?pinned (ml_files_under root)

let exn_errors r =
  List.filter (fun i -> i.finding.Finding.severity = Finding.Error) r.xitems

let exn_exit_code r = if exn_errors r <> [] then 1 else 0

let render_exnflow r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "exnflow: %d files, %d functions summarized, %d tracked acquisitions\n"
       (List.length r.xfiles) r.xfunctions r.xresources);
  List.iter
    (fun i ->
      Buffer.add_string b
        (Printf.sprintf "%s:%d: %s\n" i.file i.line
           (Finding.to_string i.finding)))
    r.xitems;
  Buffer.add_string b
    (Printf.sprintf "exnflow: %d findings (%d errors)\n"
       (List.length r.xitems)
       (List.length (exn_errors r)));
  Buffer.contents b

let exnflow_to_json r =
  Json.Obj
    [ ("files", Json.Int (List.length r.xfiles));
      ("functions", Json.Int r.xfunctions);
      ("resources", Json.Int r.xresources);
      ( "findings",
        Json.List
          (List.map
             (fun i ->
               Json.Obj
                 [ ("file", Json.Str i.file);
                   ("line", Json.Int i.line);
                   ( "severity",
                     Json.Str
                       (Finding.severity_name i.finding.Finding.severity) );
                   ("code", Json.Str i.finding.Finding.code);
                   ("message", Json.Str i.finding.Finding.message) ])
             r.xitems) );
      ("errors", Json.Int (List.length (exn_errors r))) ]

let to_json r =
  Json.Obj
    [ ("files", Json.Int (List.length r.files));
      ("locks", Json.List (List.map (fun l -> Json.Str l) r.locks));
      ("states", Json.Int r.states);
      ( "edges",
        Json.List
          (List.map
             (fun (a, b) ->
               Json.Obj [ ("from", Json.Str a); ("to", Json.Str b) ])
             r.edges) );
      ( "findings",
        Json.List
          (List.map
             (fun i ->
               Json.Obj
                 [ ("file", Json.Str i.file);
                   ("line", Json.Int i.line);
                   ( "severity",
                     Json.Str
                       (Finding.severity_name i.finding.Finding.severity) );
                   ("code", Json.Str i.finding.Finding.code);
                   ("message", Json.Str i.finding.Finding.message) ])
             r.items) );
      ("errors", Json.Int (List.length (errors r))) ]
