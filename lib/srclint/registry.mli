(** Checked registry of the known shared mutable state in the serving
    stack. Every entry must exist in the analyzed tree, every listed state
    must be declared there, and every auto-detected state in a registered
    file must carry a [@guarded_by]/[@confined] annotation — so new shared
    state cannot be added to these files without declaring its discipline. *)

type entry = { suffix : string; required : string list }
(** [suffix] matches the end of an analyzed path ([util/pool.ml]). *)

val default : entry list
(** The serving stack: pool, plan_cache, service, frontend, metrics, trace,
    runner. *)

val check : entry list -> Model.file list -> Lockcheck.located list
