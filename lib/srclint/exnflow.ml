(* Exception-flow analysis over the parsetree: the error-path twin of
   Lockcheck.

   A facts pass computes per-function summaries {raises; handles; releases}
   iterated to fixpoint over the name-based call graph; the walker then
   threads {live resources; protected resources; enclosing catch masks}
   through each function body in evaluation order and checks that

   (1) no resource acquired in a scope (fd, channel, held mutex, pool,
       registered temp table) is live and unprotected at a point where an
       exception can escape (leak-on-raise);
   (2) nothing can escape the closure handed to a spawn head — an uncaught
       exception in a domain/thread is an abort in OCaml 5;
   (3) control exceptions are only caught at registry-pinned handler sites,
       and bare [with _ ->] swallows are annotated.

   Like Lockcheck this is purely syntactic and calibrated rather than
   complete: unknown calls are assumed non-raising, a short table of
   primitives is assumed raising, and [Fun.protect]/[Mutex.protect]/
   [@releases] are the recognized sound release shapes. Closure literals in
   argument position run during the call and are analyzed inline with the
   caller's context; bound closures run later and are analyzed as their own
   functions from a fresh context. *)

open Ppxlib
module Finding = Rdb_analysis.Finding
module SS = Set.Make (String)

type located = Lockcheck.located = {
  lfile : string;
  lline : int;
  lfinding : Finding.t;
}

(* ---- escape sets and catch masks ---- *)

(* [known] exception constructor names that may escape; [any] a raise whose
   constructor the walker cannot name ([raise e], an unknown re-raise). *)
type eset = { known : SS.t; any : bool }

let e_empty = { known = SS.empty; any = false }

let e_known names = { known = SS.of_list names; any = false }

let e_any = { known = SS.empty; any = true }

let e_union a b = { known = SS.union a.known b.known; any = a.any || b.any }

let e_is_empty e = (not e.any) && SS.is_empty e.known

let e_subset a b = SS.subset a.known b.known && (b.any || not a.any)

let e_str e =
  let l = SS.elements e.known in
  let l = if e.any then l @ [ "<unknown>" ] else l in
  match l with [] -> "nothing" | l -> String.concat ", " l

(* What one handler set catches: [m_all] for a [_]/var case, else the named
   constructors. Guarded cases ([| e when p -> ...]) may decline, so they
   contribute nothing to the mask. *)
type mask = { m_all : bool; m_named : SS.t }

let m_none = { m_all = false; m_named = SS.empty }

let apply_mask m e =
  if m.m_all then e_empty else { e with known = SS.diff e.known m.m_named }

let apply_masks masks e = List.fold_left (fun acc m -> apply_mask m acc) e masks

(* ---- syntactic helpers (shared shapes with Lockcheck) ---- *)

let rec lid_last = function
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply (_, l) -> lid_last l

let last2 = function
  | Lident f -> ("", f)
  | Ldot (p, f) -> (lid_last p, f)
  | Lapply (_, l) -> ("", lid_last l)

let rec unconstrain (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e', _) -> unconstrain e'
  | _ -> e

let is_closure e =
  match (unconstrain e).pexp_desc with Pexp_function _ -> true | _ -> false

let pat_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let children (e : expression) : expression list =
  let acc = ref [] in
  let depth = ref 0 in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression x =
        if !depth = 0 then begin
          incr depth;
          super#expression x;
          decr depth
        end
        else acc := x :: !acc
    end
  in
  it#expression e;
  List.rev !acc

let pat_vars (p : pattern) =
  let acc = ref SS.empty in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
          acc := SS.add txt !acc
        | _ -> ());
        super#pattern p
    end
  in
  it#pattern p;
  !acc

(* constructor names a handler pattern can catch *)
let rec pat_catches (p : pattern) : mask =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> { m_all = true; m_named = SS.empty }
  | Ppat_alias (p, _) | Ppat_exception p | Ppat_constraint (p, _)
  | Ppat_open (_, p) ->
    pat_catches p
  | Ppat_or (a, b) ->
    let ma = pat_catches a and mb = pat_catches b in
    { m_all = ma.m_all || mb.m_all; m_named = SS.union ma.m_named mb.m_named }
  | Ppat_construct ({ txt; _ }, _) ->
    { m_all = false; m_named = SS.singleton (lid_last txt) }
  | _ -> m_none

(* a catch-all whose top-level shape is [_]: a var at least records the
   exception for reporting; [_] cannot even do that *)
let rec pat_is_wildcard (p : pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_exception p | Ppat_constraint (p, _)
  | Ppat_open (_, p) ->
    pat_is_wildcard p
  | Ppat_or (a, b) -> pat_is_wildcard a || pat_is_wildcard b
  | _ -> false

let mask_of_cases cases =
  List.fold_left
    (fun acc c ->
      if c.pc_guard <> None then acc
      else
        let m = pat_catches c.pc_lhs in
        { m_all = acc.m_all || m.m_all;
          m_named = SS.union acc.m_named m.m_named })
    m_none cases

let case_line c = c.pc_lhs.ppat_loc.loc_start.pos_lnum

let is_exception_case c =
  match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false

(* does a handler body re-raise (or raise something of its own)? *)
let reraises (e : expression) =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression x =
        (match x.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
          match last2 txt with
          | ( ("" | "Stdlib"),
              ("raise" | "raise_notrace" | "failwith" | "invalid_arg") )
          | "Printexc", "raise_with_backtrace" ->
            found := true
          | _ -> ())
        | _ -> ());
        super#expression x
    end
  in
  it#expression e;
  !found

(* ---- the raising-primitive table ---- *)

(* Unix functions modeled as raising [Unix_error]. A blanket (Unix, _)
   would drown the tree in noise from [gettimeofday]-style calls that never
   raise in practice; this is the fallible-syscall subset the repo uses. *)
let unix_raising =
  [ "socket"; "accept"; "bind"; "listen"; "connect"; "shutdown"; "close";
    "read"; "write"; "recv"; "send"; "recvfrom"; "sendto"; "select";
    "openfile"; "setsockopt"; "pipe"; "dup"; "dup2"; "waitpid"; "wait";
    "system"; "mkdir"; "unlink"; "rename"; "stat"; "lstat"; "fstat";
    "truncate"; "ftruncate" ]

let prim_raises = function
  | "Unix", f when List.mem f unix_raising -> e_known [ "Unix_error" ]
  | "Unix", "inet_addr_of_string" -> e_known [ "Failure" ]
  | ( ("" | "Stdlib"),
      ( "open_in" | "open_in_bin" | "open_in_gen" | "open_out"
      | "open_out_bin" | "open_out_gen" ) ) ->
    e_known [ "Sys_error" ]
  | ("In_channel" | "Out_channel"), ("open_bin" | "open_text" | "open_gen") ->
    e_known [ "Sys_error" ]
  | ( ("" | "Stdlib"),
      ( "input_line" | "input_char" | "input_byte" | "input_binary_int"
      | "really_input" | "really_input_string" | "input_value" ) ) ->
    e_known [ "End_of_file"; "Sys_error" ]
  | ( ("" | "Stdlib"),
      ( "output_string" | "output_char" | "output_bytes" | "output_byte"
      | "output_substring" | "output_binary_int" | "output_value" | "flush"
      | "close_in" | "close_out" | "seek_in" | "seek_out" ) )
  | "Printf", "fprintf" ->
    e_known [ "Sys_error" ]
  | ("" | "Stdlib"), "failwith" -> e_known [ "Failure" ]
  | ("" | "Stdlib"), "invalid_arg" -> e_known [ "Invalid_argument" ]
  | ("Hashtbl" | "List"), "find" | "List", "assoc" | "Sys", "getenv" ->
    e_known [ "Not_found" ]
  | "Option", "get" -> e_known [ "Invalid_argument" ]
  | _ -> e_empty

(* [raise e] / [raise (C x)] / [Printexc.raise_with_backtrace e bt] *)
let raise_arg_eset args =
  match args with
  | (_, a) :: _ -> (
    match (unconstrain a).pexp_desc with
    | Pexp_construct ({ txt; _ }, _) -> e_known [ lid_last txt ]
    | _ -> e_any)
  | [] -> e_any

let is_raise_head = function
  | ("" | "Stdlib"), ("raise" | "raise_notrace") -> true
  | "Printexc", "raise_with_backtrace" -> true
  | _ -> false

(* ---- acquisition / release / spawn heads ---- *)

(* Spawn heads: closures handed to another domain/thread, plus the pool
   entry points (a pool task's escape surfaces at [await] on a different
   domain — by design it must be recorded into the future, not thrown). *)
let spawn_heads =
  [ ("Domain", "spawn"); ("Thread", "create"); ("Pool", "submit");
    ("Pool", "map"); ("Pool", "run") ]

let is_spawn p = List.mem p spawn_heads

type rkind = Rfd | Rchan | Rlock | Rpool | Rtable

let kind_str = function
  | Rfd -> "file descriptor"
  | Rchan -> "channel"
  | Rlock -> "held lock"
  | Rpool -> "pool"
  | Rtable -> "temp table"

(* [let x = HEAD args] acquires a resource bound to [x] *)
let acq_head = function
  | "Unix", ("socket" | "accept" | "openfile") -> Some Rfd
  | ( ("" | "Stdlib"),
      ( "open_in" | "open_in_bin" | "open_in_gen" | "open_out"
      | "open_out_bin" | "open_out_gen" ) ) ->
    Some Rchan
  | ("In_channel" | "Out_channel"), ("open_bin" | "open_text" | "open_gen") ->
    Some Rchan
  | "Pool", "create" -> Some Rpool
  | _ -> None

(* [HEAD x] (or [Catalog.drop_table cat x]) releases the binding [x] *)
let rel_head = function
  | "Unix", "close" -> true
  | ( ("" | "Stdlib"),
      ("close_in" | "close_in_noerr" | "close_out" | "close_out_noerr") ) ->
    true
  | ("In_channel" | "Out_channel"), "close" -> true
  | "Pool", "shutdown" -> true
  | "Catalog", "drop_table" -> true
  | _ -> false

let ident_arg (e : expression) =
  match (unconstrain e).pexp_desc with
  | Pexp_ident { txt = Lident n; _ } -> Some n
  | _ -> None

(* the released binding of a release-head application, if trackable *)
let released_of p args =
  let arg =
    match (p, args) with
    | ("Catalog", "drop_table"), _ :: (_, re) :: _ -> Some re
    | _, (_, re) :: _ -> Some re
    | _, [] -> None
  in
  match arg with Some re -> ident_arg re | None -> None

let lock_id (f : Model.file) me =
  match (unconstrain me).pexp_desc with
  | Pexp_field (_, { txt; _ }) | Pexp_ident { txt; _ } ->
    let n = lid_last txt in
    if Hashtbl.mem f.Model.locks n then
      Some ("lock:" ^ Model.qualify f.Model.base n)
    else None
  | _ -> None

let pretty_res r =
  if String.length r > 5 && String.sub r 0 5 = "lock:" then
    String.sub r 5 (String.length r - 5)
  else r

(* ---- control exceptions and the designated-handler registry ---- *)

let control_exns =
  [ "Work_budget_exceeded"; "Deadline_exceeded"; "Over_budget";
    "Verify_failed" ]

type handler_entry = { hsuffix : string; hexns : string list }

(* The only places allowed to consume a control exception: the harness
   catches budget/deadline aborts to record a capped cell. The serving
   stack converts aborts into responses via result types, not handlers. *)
let default_handlers =
  [ { hsuffix = "harness/runner.ml"; hexns = [ "Work_budget_exceeded" ] };
    { hsuffix = "harness/experiments.ml"; hexns = [ "Work_budget_exceeded" ] }
  ]

(* Serving-stack files that must be present (and hence analyzed to zero
   errors) for the gate to mean anything. *)
let default_pinned =
  [ "util/pool.ml"; "server/service.ml"; "server/frontend.ml";
    "server/plan_cache.ml"; "core/feedback.ml"; "obs/trace.ml";
    "obs/metrics.ml"; "exec/executor.ml"; "core/reopt.ml" ]

let norm p = String.map (fun c -> if c = '\\' then '/' else c) p

(* ---- interprocedural summaries ---- *)

type summary = {
  mutable s_raises : eset;  (* may escape a call, after own handlers *)
  mutable s_handles : SS.t;  (* constructors named by its handlers *)
  mutable s_releases : SS.t;  (* caller resources it releases on all paths *)
  mutable s_calls : ((string * string) * mask list) list;
}

type sinfo = {
  si_raises : string list;
  si_any : bool;
  si_handles : string list;
  si_releases : string list;
}

let resolve (f : Model.file) txt =
  match last2 txt with
  | "", n -> (f.Model.base, n)
  | m, n -> (String.lowercase_ascii m, n)

(* The facts pass: one traversal per function body recording direct raises
   (filtered through the masks enclosing each site), handled constructor
   names, released resource idents, and callee mentions for the fixpoint.
   Closure arguments of spawn heads run elsewhere and are excluded; closure
   literals in plain argument position run during the call and are walked
   inline. Bound closures are their own summaries. *)
let rec facts (f : Model.file) sm masks (e : expression) =
  match e.pexp_desc with
  | Pexp_try (b, cases) ->
    facts f sm (mask_of_cases cases :: masks) b;
    List.iter
      (fun c ->
        sm.s_handles <- SS.union sm.s_handles (pat_catches c.pc_lhs).m_named;
        (match c.pc_guard with Some g -> facts f sm masks g | None -> ());
        facts f sm masks c.pc_rhs)
      cases
  | Pexp_match (s, cases) ->
    let exn_cases, val_cases = List.partition is_exception_case cases in
    facts f sm
      (if exn_cases = [] then masks else mask_of_cases exn_cases :: masks)
      s;
    List.iter
      (fun c ->
        if is_exception_case c then
          sm.s_handles <-
            SS.union sm.s_handles (pat_catches c.pc_lhs).m_named;
        (match c.pc_guard with Some g -> facts f sm masks g | None -> ());
        facts f sm masks c.pc_rhs)
      (exn_cases @ val_cases)
  | Pexp_assert _ ->
    sm.s_raises <-
      e_union sm.s_raises (apply_masks masks (e_known [ "Assert_failure" ]))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
    let p = last2 txt in
    if is_raise_head p then
      sm.s_raises <-
        e_union sm.s_raises (apply_masks masks (raise_arg_eset args))
    else if is_spawn p then
      (* function-position arguments run on another domain *)
      List.iter
        (fun (_, a) ->
          if not (is_closure a || ident_arg a <> None) then facts f sm masks a)
        args
    else begin
      (match args with
      | (_, me) :: _ when p = ("Mutex", "unlock") -> (
        match lock_id f me with
        | Some l -> sm.s_releases <- SS.add l sm.s_releases
        | None -> ())
      | _ when rel_head p -> (
        match released_of p args with
        | Some n -> sm.s_releases <- SS.add n sm.s_releases
        | None -> ())
      | _ -> ());
      let pr = prim_raises p in
      if not (e_is_empty pr) then
        sm.s_raises <- e_union sm.s_raises (apply_masks masks pr)
      else if p <> ("Mutex", "unlock") && not (rel_head p) then
        sm.s_calls <- (resolve f txt, masks) :: sm.s_calls;
      List.iter (fun (_, a) -> facts_arg f sm masks a) args
    end
  | Pexp_function _ ->
    (* a closure literal outside argument position (bound, stored): its
       body runs later, in an unknown context — not at this site *)
    ()
  | _ -> List.iter (facts f sm masks) (children e)

and facts_arg f sm masks a =
  if is_closure a then facts_fn f sm masks a else facts f sm masks a

(* descend through a function literal's parameter spine into its body *)
and facts_fn f sm masks (e : expression) =
  match (unconstrain e).pexp_desc with
  | Pexp_function (_, _, Pfunction_body b) -> facts_fn f sm masks b
  | Pexp_function (_, _, Pfunction_cases (cases, _, _)) ->
    List.iter (fun c -> facts f sm masks c.pc_rhs) cases
  | _ -> facts f sm masks e

let bindings_of (f : Model.file) : (string * expression) list =
  let out = ref [] in
  let add vb =
    match pat_name vb.pvb_pat with
    | Some txt -> out := (txt, vb.pvb_expr) :: !out
    | None -> ()
  in
  let rec item (it : structure_item) =
    match it.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter add vbs
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
      List.iter item sub
    | _ -> ()
  in
  List.iter item f.Model.structure;
  let locals =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_let (_, vbs, _) ->
          List.iter (fun vb -> if is_closure vb.pvb_expr then add vb) vbs
        | _ -> ());
        super#expression e
    end
  in
  locals#structure f.Model.structure;
  List.rev !out

let build_summaries (files : Model.file list) =
  let tbl : (string * string, summary) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Model.file) ->
      List.iter
        (fun (name, body) ->
          let sm =
            match Hashtbl.find_opt tbl (f.base, name) with
            | Some sm -> sm
            | None ->
              let sm =
                { s_raises = e_empty; s_handles = SS.empty;
                  s_releases = SS.empty; s_calls = [] }
              in
              Hashtbl.replace tbl (f.base, name) sm;
              sm
          in
          facts_fn f sm [] body;
          match Hashtbl.find_opt f.funs name with
          | Some fa ->
            List.iter
              (fun r ->
                let r =
                  if Hashtbl.mem f.locks r then
                    "lock:" ^ Model.qualify f.base r
                  else r
                in
                sm.s_releases <- SS.add r sm.s_releases)
              fa.Model.freleases
          | None -> ())
        (bindings_of f))
    files;
  (* fixpoint: a call's contribution is the callee's escape set filtered
     through the masks enclosing the call site *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ sm ->
        List.iter
          (fun (key, masks) ->
            List.iter
              (fun c ->
                if c != sm then begin
                  let contrib = apply_masks masks c.s_raises in
                  if not (e_subset contrib sm.s_raises) then begin
                    sm.s_raises <- e_union sm.s_raises contrib;
                    changed := true
                  end
                end)
              (Hashtbl.find_all tbl key))
          sm.s_calls)
      tbl
  done;
  tbl

(* may-escape of a closure literal handed to a spawn head, through the
   fixpointed summaries *)
let may_escape tbl (f : Model.file) (e : expression) : eset =
  let sm =
    { s_raises = e_empty; s_handles = SS.empty; s_releases = SS.empty;
      s_calls = [] }
  in
  facts_fn f sm [] e;
  List.fold_left
    (fun acc (key, masks) ->
      List.fold_left
        (fun acc (c : summary) -> e_union acc (apply_masks masks c.s_raises))
        acc (Hashtbl.find_all tbl key))
    sm.s_raises sm.s_calls

(* ---- the walker ---- *)

type rinfo = { rline : int; rkind : rkind }

type run = { mutable items : located list; mutable nres : int }

type ctx = {
  cfile : Model.file;
  summaries : (string * string, summary) Hashtbl.t;
  allowed : SS.t;  (* control exns this file may catch *)
  run : run;
  rtbl : (string, rinfo) Hashtbl.t;  (* live resource ident -> info *)
  reported : (string * int, unit) Hashtbl.t;
  handled : SS.t ref;  (* constructors this file's handlers name *)
}

(* res: live resource ids; prot: subset covered by an enclosing
   Fun.protect/@releases shape; masks: enclosing handler sets *)
type env = { res : SS.t; prot : SS.t; masks : mask list; shadow : SS.t }

let emit ctx line sev code fmt =
  Printf.ksprintf
    (fun msg ->
      let f =
        match sev with
        | `E -> Finding.error ~code msg
        | `W -> Finding.warning ~code msg
      in
      ctx.run.items <-
        { lfile = ctx.cfile.Model.path; lline = line; lfinding = f }
        :: ctx.run.items)
    fmt

let summaries_of ctx txt =
  Hashtbl.find_all ctx.summaries (resolve ctx.cfile txt)

(* An exception can escape at [line] carrying [es]: every live, unprotected
   resource leaks. Reported once, at the acquisition site, so a single
   @cleanup_ok there covers all raise points of the scope. *)
let leak_check ctx env line es =
  let esc = apply_masks env.masks es in
  if not (e_is_empty esc) then
    SS.iter
      (fun r ->
        if not (SS.mem r env.prot) then
          match Hashtbl.find_opt ctx.rtbl r with
          | None -> ()
          | Some info ->
            if
              (not (Model.cleanup_suppressed ctx.cfile info.rline))
              && not (Hashtbl.mem ctx.reported (r, info.rline))
            then begin
              Hashtbl.replace ctx.reported (r, info.rline) ();
              emit ctx info.rline `E "src-exn-leak"
                "%s %s acquired here may leak: %s can escape at line %d \
                 before it is released (use Fun.protect/Mutex.protect, \
                 release in every handler, or annotate @cleanup_ok)"
                (kind_str info.rkind) (pretty_res r) (e_str esc) line
            end)
      env.res

let acquire ctx env name kind line =
  ctx.run.nres <- ctx.run.nres + 1;
  Hashtbl.replace ctx.rtbl name { rline = line; rkind = kind };
  { env with res = SS.add name env.res }

let release env name = { env with res = SS.remove name env.res }

(* handler-discipline checks for one try/match-exception case *)
let case_checks ctx c =
  let line = case_line c in
  let m = pat_catches c.pc_lhs in
  ctx.handled := SS.union !(ctx.handled) m.m_named;
  SS.iter
    (fun name ->
      if List.mem name control_exns && not (SS.mem name ctx.allowed) then
        emit ctx line `E "src-control-exn-handler"
          "control exception %s caught outside its registry-pinned handler \
           sites (it must reach the designated layer to keep abort \
           semantics observable)"
          name)
    m.m_named;
  if
    pat_is_wildcard c.pc_lhs
    && c.pc_guard = None
    && (not (reraises c.pc_rhs))
    && not (Model.swallow_suppressed ctx.cfile line)
  then
    emit ctx line `E "src-bare-swallow"
      "catch-all [_] swallows every exception (including control \
       exceptions); name the expected ones, re-raise, or annotate \
       @swallow_ok"

(* releases performed by a [~finally] argument (a literal closure is
   scanned for release heads; a named local function contributes its
   summary, which includes any @releases annotation) *)
let finally_releases ctx fin =
  match ident_arg fin with
  | Some n -> (
    match Hashtbl.find_opt ctx.summaries (ctx.cfile.Model.base, n) with
    | Some sm -> sm.s_releases
    | None -> SS.empty)
  | None ->
    let acc = ref SS.empty in
    let it =
      object
        inherit Ast_traverse.iter as super

        method! expression x =
          (match x.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
            let p = last2 txt in
            match args with
            | (_, me) :: _ when p = ("Mutex", "unlock") -> (
              match lock_id ctx.cfile me with
              | Some l -> acc := SS.add l !acc
              | None -> ())
            | _ when rel_head p -> (
              match released_of p args with
              | Some n -> acc := SS.add n !acc
              | None -> ())
            | _ -> (
              match p with
              | "", n -> (
                (* calling a local helper releases what it releases *)
                match
                  Hashtbl.find_opt ctx.summaries (ctx.cfile.Model.base, n)
                with
                | Some sm -> acc := SS.union !acc sm.s_releases
                | None -> ())
              | _ -> ()))
          | _ -> ());
          super#expression x
      end
    in
    it#expression fin;
    !acc

let rec walk ctx env (e : expression) : env =
  let line = e.pexp_loc.loc_start.pos_lnum in
  match e.pexp_desc with
  | Pexp_sequence (a, b) -> walk ctx (walk ctx env a) b
  | Pexp_let (_, vbs, body) ->
    let env =
      List.fold_left
        (fun acc vb ->
          let rhs = unconstrain vb.pvb_expr in
          match (pat_name vb.pvb_pat, rhs.pexp_desc) with
          | ( Some n,
              Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) )
            when acq_head (last2 txt) <> None ->
            let kind =
              match acq_head (last2 txt) with Some k -> k | None -> Rfd
            in
            let acc =
              List.fold_left (fun a (_, x) -> walk_arg ctx a x) acc args
            in
            acquire ctx acc n kind rhs.pexp_loc.loc_start.pos_lnum
          | _, Pexp_function _ ->
            (* bound closure: analyzed as its own function by walk_file *)
            acc
          | _ -> walk ctx acc vb.pvb_expr)
        env vbs
    in
    let shadow =
      List.fold_left
        (fun acc vb -> SS.union acc (pat_vars vb.pvb_pat))
        env.shadow vbs
    in
    walk ctx { env with shadow } body
  | Pexp_ifthenelse (c, t, f) ->
    let envc = walk ctx env c in
    let et = walk ctx envc t in
    let ef = match f with Some f -> walk ctx envc f | None -> envc in
    let exits =
      (if Lockcheck.diverges t then [] else [ et.res ])
      @
      match f with
      | Some f when Lockcheck.diverges f -> []
      | _ -> [ ef.res ]
    in
    (match exits with
    | [] -> et
    | h :: rest -> { envc with res = List.fold_left SS.inter h rest })
  | Pexp_match (s, cases) ->
    let exn_cases, val_cases = List.partition is_exception_case cases in
    ignore val_cases;
    let env0 =
      walk ctx
        (if exn_cases = [] then env
         else { env with masks = mask_of_cases exn_cases :: env.masks })
        s
    in
    let env0 = { env0 with masks = env.masks } in
    List.iter (case_checks ctx) exn_cases;
    (* a scrutinee that is an acquisition head binds its resource in the
       value cases: [match Unix.accept l with fd, _ -> ...] *)
    let acq =
      match (unconstrain s).pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
        acq_head (last2 txt)
      | _ -> None
    in
    let exits =
      List.filter_map
        (fun c ->
          let vars = pat_vars c.pc_lhs in
          let entry =
            if is_exception_case c then
              { env with shadow = SS.union env.shadow vars }
            else
              let e0 = { env0 with shadow = SS.union env0.shadow vars } in
              match (acq, SS.min_elt_opt vars) with
              | Some k, Some v -> acquire ctx e0 v k (case_line c)
              | _ -> e0
          in
          let e1 =
            match c.pc_guard with Some g -> walk ctx entry g | None -> entry
          in
          let ex = walk ctx e1 c.pc_rhs in
          if Lockcheck.diverges c.pc_rhs then None else Some ex.res)
        cases
    in
    (match exits with
    | [] -> env0
    | h :: rest -> { env0 with res = List.fold_left SS.inter h rest })
  | Pexp_try (b, cases) ->
    let envb = walk ctx { env with masks = mask_of_cases cases :: env.masks } b in
    List.iter (case_checks ctx) cases;
    (* handlers run with the environment at try entry: a resource acquired
       and leaked inside the body is already reported at its raise site *)
    let exits =
      List.filter_map
        (fun c ->
          let entry =
            { env with shadow = SS.union env.shadow (pat_vars c.pc_lhs) }
          in
          let e1 =
            match c.pc_guard with Some g -> walk ctx entry g | None -> entry
          in
          let ex = walk ctx e1 c.pc_rhs in
          if Lockcheck.diverges c.pc_rhs then None else Some ex.res)
        cases
    in
    let body_exit = { envb with masks = env.masks } in
    (match exits with
    | [] -> body_exit
    | h :: rest ->
      { body_exit with
        res = List.fold_left SS.inter (SS.inter body_exit.res h) rest })
  | Pexp_while (c, b) ->
    let env' = walk ctx env c in
    ignore (walk ctx env' b);
    env
  | Pexp_for (pat, a, b, _, body) ->
    let env' = walk ctx (walk ctx env a) b in
    ignore
      (walk ctx
         { env' with shadow = SS.union env'.shadow (pat_vars pat) }
         body);
    env'
  | Pexp_assert _ ->
    leak_check ctx env line (e_known [ "Assert_failure" ]);
    env
  | Pexp_function _ ->
    (* stray closure literal (stored in a record, returned): its body runs
       later, from a fresh context *)
    walk_fn ctx
      { res = SS.empty; prot = SS.empty; masks = []; shadow = env.shadow }
      e;
    env
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
    apply ctx env ~line txt args
  | Pexp_apply (head, args) ->
    let env = walk ctx env head in
    List.fold_left (fun acc (_, a) -> walk_arg ctx acc a) env args
  | _ -> List.fold_left (walk ctx) env (children e)

(* a closure literal in argument position runs during the call: walk its
   body with the caller's live resources and masks *)
and walk_arg ctx env a =
  if is_closure a then begin
    walk_fn ctx env a;
    env
  end
  else walk ctx env a

(* walk the body of a function literal (possibly nested / cases form) *)
and walk_fn ctx env (e : expression) =
  match (unconstrain e).pexp_desc with
  | Pexp_function (params, _, body) ->
    let shadow =
      List.fold_left
        (fun acc p ->
          match p.pparam_desc with
          | Pparam_val (_, d, pat) ->
            (match d with Some d -> ignore (walk ctx env d) | None -> ());
            SS.union acc (pat_vars pat)
          | Pparam_newtype _ -> acc)
        env.shadow params
    in
    let benv = { env with shadow } in
    (match body with
    | Pfunction_body b -> walk_fn ctx benv b
    | Pfunction_cases (cases, _, _) ->
      List.iter
        (fun c ->
          let entry =
            { benv with shadow = SS.union benv.shadow (pat_vars c.pc_lhs) }
          in
          let e1 =
            match c.pc_guard with Some g -> walk ctx entry g | None -> entry
          in
          ignore (walk ctx e1 c.pc_rhs))
        cases)
  | _ -> ignore (walk ctx env e)

and apply ctx env ~line txt args =
  let walk_args env =
    List.fold_left (fun acc (_, a) -> walk_arg ctx acc a) env args
  in
  let p = last2 txt in
  match (p, args) with
  | ("Mutex", "lock"), (_, me) :: _ -> (
    let env = walk_args env in
    match lock_id ctx.cfile me with
    | None -> env
    | Some l -> acquire ctx env l Rlock line)
  | ("Mutex", "unlock"), (_, me) :: _ -> (
    let env = walk_args env in
    match lock_id ctx.cfile me with
    | None -> env
    | Some l -> release env l)
  | ("Mutex", "protect"), (_, me) :: rest ->
    (* sound shape: the lock is released on every exit, raising or not *)
    let env = walk ctx env me in
    List.fold_left (fun acc (_, a) -> walk_arg ctx acc a) env rest
  | ("Fun", "protect"), _ ->
    let fin =
      List.find_map
        (fun (lbl, a) ->
          match lbl with Labelled "finally" -> Some a | _ -> None)
        args
    in
    let rel =
      match fin with Some f -> finally_releases ctx f | None -> SS.empty
    in
    (match fin with Some f -> ignore (walk_arg ctx env f) | None -> ());
    let inner = { env with prot = SS.union env.prot rel } in
    List.iter
      (fun (lbl, a) ->
        match lbl with Nolabel -> ignore (walk_arg ctx inner a) | _ -> ())
      args;
    { env with res = SS.diff env.res rel }
  | p, _ when is_spawn p ->
    (* nothing may escape the spawned closure *)
    List.iter
      (fun (_, a) ->
        let es =
          if is_closure a then may_escape ctx.summaries ctx.cfile a
          else
            match ident_arg a with
            | Some n -> (
              match
                Hashtbl.find_opt ctx.summaries (ctx.cfile.Model.base, n)
              with
              | Some sm -> sm.s_raises
              | None -> e_empty)
            | None -> e_empty
        in
        if
          (not (e_is_empty es))
          && not (Model.swallow_suppressed ctx.cfile line)
        then
          emit ctx line `E "src-spawn-escape"
            "%s.%s closure may raise %s uncaught: an escaping exception \
             aborts the domain/thread (catch inside the closure, or \
             annotate @swallow_ok where the head records it)"
            (fst p) (snd p) (e_str es);
        (* leaks inside the closure are checked from a fresh context *)
        if is_closure a then
          walk_fn ctx
            { res = SS.empty; prot = SS.empty; masks = [];
              shadow = env.shadow }
            a)
      args;
    List.fold_left
      (fun acc (_, a) ->
        if is_closure a || ident_arg a <> None then acc else walk ctx acc a)
      env args
  | _ ->
    let env = walk_args env in
    (* direct release by head *)
    let env =
      if rel_head p then
        match released_of p args with
        | Some n -> release env n
        | None -> env
      else env
    in
    let sums = summaries_of ctx txt in
    (* releases by callee summary are optimistic: a releasing callee is
       assumed to release on its raising paths too (that is what @releases
       asserts; [Pool.await] genuinely does) *)
    let srel =
      List.fold_left (fun acc s -> SS.union acc s.s_releases) SS.empty sums
    in
    let env = { env with res = SS.diff env.res srel } in
    (* temp-table registration: [Catalog.add_table cat t] makes [t] live *)
    let env =
      match (p, args) with
      | ("Catalog", "add_table"), _ :: (_, te) :: _ -> (
        match ident_arg te with
        | Some n -> acquire ctx env n Rtable line
        | None -> env)
      | _ -> env
    in
    let es =
      List.fold_left
        (fun acc s -> e_union acc s.s_raises)
        (prim_raises p) sums
    in
    let es =
      if is_raise_head p then e_union es (raise_arg_eset args) else es
    in
    if not (e_is_empty es) then leak_check ctx env line es;
    env

let walk_file ctx =
  List.iter
    (fun (_name, body) ->
      Hashtbl.reset ctx.rtbl;
      let env0 =
        { res = SS.empty; prot = SS.empty; masks = []; shadow = SS.empty }
      in
      if is_closure body then walk_fn ctx env0 body
      else ignore (walk ctx env0 body))
    (bindings_of ctx.cfile)

(* ---- registry + entry point ---- *)

type result = {
  items : located list;
  summaries : (string * sinfo) list;
  resources : int;
}

let registry_findings handlers pinned (files : Model.file list) =
  let items = ref [] in
  let emit file line code msg =
    items :=
      { lfile = file; lline = line; lfinding = Finding.error ~code msg }
      :: !items
  in
  let present suffix =
    List.exists
      (fun (f : Model.file) -> String.ends_with ~suffix (norm f.path))
      files
  in
  List.iter
    (fun suffix ->
      if not (present suffix) then
        emit suffix 0 "src-registry-missing-file"
          (Printf.sprintf
             "pinned serving-stack file %s not found in analyzed tree" suffix))
    pinned;
  List.iter
    (fun h ->
      if not (present h.hsuffix) then
        emit h.hsuffix 0 "src-registry-missing-file"
          (Printf.sprintf
             "designated-handler file %s not found in analyzed tree"
             h.hsuffix))
    handlers;
  !items

let check ?(handlers = default_handlers) ?(pinned = default_pinned)
    (files : Model.file list) : result =
  let run = { items = []; nres = 0 } in
  let summaries = build_summaries files in
  let handled_tbl : (string, SS.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (f : Model.file) ->
      let allowed =
        List.fold_left
          (fun acc h ->
            if String.ends_with ~suffix:h.hsuffix (norm f.Model.path) then
              SS.union acc (SS.of_list h.hexns)
            else acc)
          SS.empty handlers
      in
      let handled = ref SS.empty in
      let ctx =
        { cfile = f; summaries; allowed; run; rtbl = Hashtbl.create 8;
          reported = Hashtbl.create 8; handled }
      in
      walk_file ctx;
      Hashtbl.replace handled_tbl (norm f.Model.path) !handled)
    files;
  (* a registered handler entry that no longer catches its exception is
     stale: the abort would sail past the layer the registry promises *)
  let stale =
    List.concat_map
      (fun h ->
        Hashtbl.fold
          (fun path handled acc ->
            if String.ends_with ~suffix:h.hsuffix path then
              List.filter_map
                (fun x ->
                  if SS.mem x handled then None
                  else
                    Some
                      { lfile = path; lline = 0;
                        lfinding =
                          Finding.warning ~code:"src-stale-handler"
                            (Printf.sprintf
                               "registry expects %s to be caught in %s but \
                                no handler names it"
                               x h.hsuffix) })
                h.hexns
              @ acc
            else acc)
          handled_tbl [])
      handlers
  in
  run.items <- stale @ registry_findings handlers pinned files @ run.items;
  let sinfos =
    Hashtbl.fold
      (fun (base, name) sm acc ->
        ( base ^ "." ^ name,
          { si_raises = SS.elements sm.s_raises.known;
            si_any = sm.s_raises.any;
            si_handles = SS.elements sm.s_handles;
            si_releases = SS.elements sm.s_releases } )
        :: acc)
      summaries []
    |> List.sort compare
  in
  { items = run.items; summaries = sinfos; resources = run.nres }
