module Finding = Rdb_analysis.Finding

type entry = { suffix : string; required : string list }

let default =
  [ { suffix = "util/pool.ml";
      required = [ "deques"; "rr"; "stop"; "domains"; "state" ] };
    { suffix = "server/plan_cache.ml";
      required = [ "tbl"; "tick"; "plan"; "epoch"; "last_use"; "hits" ] };
    { suffix = "server/service.ml";
      required = [ "generation"; "closed"; "clone_slot" ] };
    { suffix = "server/frontend.ml"; required = [ "fds" ] };
    { suffix = "obs/metrics.ml"; required = [ "shards"; "c"; "s" ] };
    { suffix = "obs/trace.ml"; required = [ "sink"; "depth_key" ] };
    { suffix = "harness/runner.ml"; required = [ "prepared"; "cache" ] } ]

let norm p = String.map (fun c -> if c = '\\' then '/' else c) p

let check entries (files : Model.file list) : Lockcheck.located list =
  let items = ref [] in
  let emit file line code msg =
    items :=
      { Lockcheck.lfile = file; lline = line;
        lfinding = Finding.error ~code msg }
      :: !items
  in
  List.iter
    (fun e ->
      match
        List.find_opt
          (fun (f : Model.file) ->
            String.ends_with ~suffix:e.suffix (norm f.path))
          files
      with
      | None ->
        emit e.suffix 0 "src-registry-missing-file"
          (Printf.sprintf "registered file %s not found in analyzed tree"
             e.suffix)
      | Some f ->
        List.iter
          (fun name ->
            if not (Hashtbl.mem f.states name) then
              emit f.path 0 "src-registry-missing-state"
                (Printf.sprintf
                   "registered state %s not declared in %s (renamed or \
                    removed? update the registry)"
                   name e.suffix))
          e.required;
        (* the safety net: no shared state in a registered file may be
           left undeclared *)
        Hashtbl.iter
          (fun _ (st : Model.state) ->
            if st.sguard = Model.Unannotated then
              emit f.path st.sline "src-unannotated-state"
                (Printf.sprintf
                   "state %s in registered file %s lacks \
                    @guarded_by/@confined"
                   st.sname e.suffix))
          f.states)
    entries;
  !items
