(* Held-lock-set abstract interpretation over the parsetree.

   The walker threads an environment (set of qualified locks known held +
   are-we-inside-a-spawned-closure flag) through each expression in
   evaluation order; branches are merged by intersection (a lock is held
   after [if]/[match] only if every branch exits holding it), loops are
   assumed lock-balanced, and closures are analyzed at their definition
   site with the definition-time held set — except closures passed to
   spawn points, which start from the empty set on a fresh domain/thread. *)

open Ppxlib
module Finding = Rdb_analysis.Finding
module SS = Set.Make (String)

type edge = { efrom : string; eto : string; efile : string; eline : int }

type located = { lfile : string; lline : int; lfinding : Finding.t }

type result = { items : located list; edges : edge list }

(* ---- small syntactic helpers ---- *)

let rec lid_last = function
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply (_, l) -> lid_last l

(* last module component + value name: [Rdb_util.Pool.submit] -> (Pool, submit) *)
let last2 = function
  | Lident f -> ("", f)
  | Ldot (p, f) -> (lid_last p, f)
  | Lapply (_, l) -> ("", lid_last l)

let rec unconstrain (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e', _) -> unconstrain e'
  | _ -> e

let is_closure e =
  match (unconstrain e).pexp_desc with Pexp_function _ -> true | _ -> false

(* Calls that hand a closure to another domain/thread. Name-based so the
   check also fires on sources analyzed without their Pool counterpart. *)
let spawn_heads =
  [ ("Domain", "spawn"); ("Thread", "create"); ("Pool", "submit");
    ("Pool", "map"); ("Pool", "run") ]

let is_spawn p = List.mem p spawn_heads

(* Primitives that can block the calling domain. [Mutex.lock] is excluded —
   it feeds the lock-order graph instead. Channel *output* is excluded by
   design: Trace deliberately writes under its sink mutex. *)
let blocking_heads =
  [ ("Unix", "read"); ("Unix", "write"); ("Unix", "accept");
    ("Unix", "connect"); ("Unix", "select"); ("Unix", "sleep");
    ("Unix", "sleepf"); ("Unix", "recv"); ("Unix", "send");
    ("Unix", "recvfrom"); ("Unix", "sendto"); ("Unix", "waitpid");
    ("Unix", "wait"); ("Unix", "system"); ("Thread", "join");
    ("Thread", "delay"); ("Domain", "join"); ("Pool", "await");
    ("Pool", "map"); ("Pool", "run"); ("Condition", "wait");
    ("", "input_line"); ("", "really_input"); ("", "really_input_string") ]

let is_blocking p = List.mem p blocking_heads

(* For interprocedural summaries only: [Condition.wait] blocks but releases
   the mutex it is given, so a callee built around it (a worker loop) is not
   "blocking under the lock" for its caller — the direct special case
   already validates each wait site. *)
let is_summary_blocking p = is_blocking p && p <> ("Condition", "wait")

let blocking_name (m, f) = if m = "" then f else m ^ "." ^ f

(* Depth-1 child expressions, for AST constructors with no special rule. *)
let children (e : expression) : expression list =
  let acc = ref [] in
  let depth = ref 0 in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression x =
        if !depth = 0 then begin
          incr depth;
          super#expression x;
          decr depth
        end
        else acc := x :: !acc
    end
  in
  it#expression e;
  List.rev !acc

let lock_of_expr (f : Model.file) e =
  match (unconstrain e).pexp_desc with
  | Pexp_field (_, { txt; _ }) | Pexp_ident { txt; _ } ->
    let n = lid_last txt in
    if Hashtbl.mem f.Model.locks n then Some (Model.qualify f.Model.base n)
    else None
  | _ -> None

(* ---- interprocedural summaries ---- *)

type summary = {
  mutable s_block : bool;
  mutable s_acq : SS.t;
  mutable s_callees : (string * string) list;  (* resolved (file base, name) *)
}

(* Syntactic facts of one function body: blocking-primitive occurrences,
   direct lock acquisitions, callee candidates. Closure arguments of spawn
   points run on another domain, so their contents are excluded. *)
let rec facts (f : Model.file) sm (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    let m, n = last2 txt in
    if is_summary_blocking (m, n) then sm.s_block <- true;
    let b = if m = "" then f.Model.base else String.lowercase_ascii m in
    sm.s_callees <- (b, n) :: sm.s_callees
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
    match last2 txt with
    | ("Mutex", "lock") | ("Mutex", "protect") ->
      (match args with
      | (_, me) :: rest ->
        (match lock_of_expr f me with
        | Some l -> sm.s_acq <- SS.add l sm.s_acq
        | None -> ());
        List.iter (fun (_, a) -> facts f sm a) rest
      | [] -> ())
    | p when is_spawn p -> if is_summary_blocking p then sm.s_block <- true
    | p ->
      if is_summary_blocking p then sm.s_block <- true
      else begin
        let m, n = p in
        let b = if m = "" then f.Model.base else String.lowercase_ascii m in
        sm.s_callees <- (b, n) :: sm.s_callees
      end;
      List.iter (fun (_, a) -> facts f sm a) args)
  | _ -> List.iter (facts f sm) (children e)

(* Every named binding whose body we can summarize: toplevel and local. *)
let bindings_of (f : Model.file) : (string * expression) list =
  let out = ref [] in
  let add vb =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> out := (txt, vb.pvb_expr) :: !out
    | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) ->
      out := (txt, vb.pvb_expr) :: !out
    | _ -> ()
  in
  let rec item (it : structure_item) =
    match it.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter add vbs
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
      List.iter item sub
    | _ -> ()
  in
  List.iter item f.Model.structure;
  let locals =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_let (_, vbs, _) ->
          List.iter (fun vb -> if is_closure vb.pvb_expr then add vb) vbs
        | _ -> ());
        super#expression e
    end
  in
  locals#structure f.Model.structure;
  List.rev !out

let build_summaries (files : Model.file list) =
  let tbl : (string * string, summary) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Model.file) ->
      List.iter
        (fun (name, body) ->
          let sm =
            match Hashtbl.find_opt tbl (f.base, name) with
            | Some sm -> sm
            | None ->
              let sm = { s_block = false; s_acq = SS.empty; s_callees = [] } in
              Hashtbl.replace tbl (f.base, name) sm;
              sm
          in
          facts f sm body;
          (match Hashtbl.find_opt f.funs name with
          | Some fa ->
            sm.s_acq <- SS.union sm.s_acq (SS.of_list fa.facquires);
            sm.s_acq <- SS.union sm.s_acq (SS.of_list fa.fwith_lock)
          | None -> ());
          sm.s_callees <- List.sort_uniq compare sm.s_callees)
        (bindings_of f))
    files;
  (* fixpoint: propagate may-block / may-acquire over the call graph *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ sm ->
        List.iter
          (fun key ->
            List.iter
              (fun c ->
                if c != sm then begin
                  if c.s_block && not sm.s_block then begin
                    sm.s_block <- true;
                    changed := true
                  end;
                  if not (SS.subset c.s_acq sm.s_acq) then begin
                    sm.s_acq <- SS.union sm.s_acq c.s_acq;
                    changed := true
                  end
                end)
              (Hashtbl.find_all tbl key))
          sm.s_callees)
      tbl
  done;
  tbl

(* ---- the walker ---- *)

(* [shadow] holds names rebound by enclosing lets / parameters / case
   patterns: a bare identifier that is shadowed can no longer denote a
   shared-state binding, so it is exempt from guarded-access checks. *)
type env = { held : SS.t; spawn : bool; shadow : SS.t }

type run = { mutable items : located list; mutable raw_edges : edge list }

type ctx = {
  cfile : Model.file;
  models : (string, Model.file) Hashtbl.t;  (* base -> file(s) *)
  summaries : (string * string, summary) Hashtbl.t;
  run : run;
}

let emit ctx line sev code fmt =
  Printf.ksprintf
    (fun msg ->
      let f =
        match sev with
        | `E -> Finding.error ~code msg
        | `W -> Finding.warning ~code msg
      in
      ctx.run.items <-
        { lfile = ctx.cfile.Model.path; lline = line; lfinding = f }
        :: ctx.run.items)
    fmt

let held_str held = String.concat ", " (SS.elements held)

let add_edges ctx line held ~to_:l =
  SS.iter
    (fun h ->
      if h <> l then
        ctx.run.raw_edges <-
          { efrom = h; eto = l; efile = ctx.cfile.Model.path; eline = line }
          :: ctx.run.raw_edges)
    held

let resolve_key ctx txt =
  match last2 txt with
  | "", n -> (ctx.cfile.Model.base, n)
  | m, n -> (String.lowercase_ascii m, n)

let fannots_of ctx txt : Model.fannot list =
  match last2 txt with
  | "", n -> (
    match Hashtbl.find_opt ctx.cfile.Model.funs n with
    | Some fa -> [ fa ]
    | None -> [])
  | m, n ->
    Hashtbl.find_all ctx.models (String.lowercase_ascii m)
    |> List.filter_map (fun (f : Model.file) -> Hashtbl.find_opt f.funs n)

let summaries_of ctx txt =
  Hashtbl.find_all ctx.summaries (resolve_key ctx txt)

let pat_vars (p : pattern) =
  let acc = ref SS.empty in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
          acc := SS.add txt !acc
        | _ -> ());
        super#pattern p
    end
  in
  it#pattern p;
  !acc

(* [ident] marks a bare-identifier mention: those cannot denote record
   fields and are exempt when the name is shadowed by a local binding. *)
let check_state_access ?(ident = false) ctx env ~line ~write name =
  match Hashtbl.find_opt ctx.cfile.Model.states name with
  | Some st when ident && (SS.mem name env.shadow || st.Model.skind = Model.Field)
    ->
    ()
  | None -> ()
  | Some st -> (
    match st.Model.sguard with
    | Model.Confined | Model.Unannotated -> ()
    | Model.Guarded l ->
      if not (SS.mem l env.held) then
        if Model.suppressed ctx.cfile line then ()
        else if env.spawn then
          emit ctx line `E "src-domain-capture"
            "closure passed to another domain captures %s (guarded by %s) \
             without acquiring it"
            name l
        else
          emit ctx line `E "src-unguarded-access"
            "%s to %s (guarded by %s) without holding %s"
            (if write then "write" else "access")
            name l l)

(* blocking checks for any mention of a name while locks are held *)
let check_blocking ctx env ~line txt =
  if not (SS.is_empty env.held) then begin
    let p = last2 txt in
    if is_blocking p then
      emit ctx line `E "src-blocking-under-lock"
        "blocking call %s while holding %s" (blocking_name p)
        (held_str env.held)
    else if List.exists (fun s -> s.s_block) (summaries_of ctx txt) then
      emit ctx line `E "src-blocking-under-lock"
        "call to %s may block (transitively) while holding %s"
        (blocking_name p) (held_str env.held)
  end

(* Branches that cannot return normally (raise, failwith, assert false)
   must not participate in the held-set merge: [if bad then (unlock; fail)]
   still holds the lock on the fall-through path. *)
let divergent_heads =
  [ ("", "raise"); ("", "raise_notrace"); ("", "failwith");
    ("", "invalid_arg"); ("Stdlib", "raise"); ("Stdlib", "failwith");
    ("Stdlib", "invalid_arg"); ("Printexc", "raise_with_backtrace") ]

let rec diverges (e : expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    List.mem (last2 txt) divergent_heads
  | Pexp_assert
      { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
    true
  | Pexp_sequence (_, b) | Pexp_let (_, _, b) -> diverges b
  | Pexp_constraint (b, _) -> diverges b
  | Pexp_ifthenelse (_, t, Some f) -> diverges t && diverges f
  | Pexp_match (_, cases) ->
    cases <> [] && List.for_all (fun c -> diverges c.pc_rhs) cases
  | _ -> false

let rec walk ctx env (e : expression) : env =
  let line = e.pexp_loc.loc_start.pos_lnum in
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
    check_blocking ctx env ~line txt;
    (match txt with
    | Lident n -> check_state_access ~ident:true ctx env ~line ~write:false n
    | _ -> ());
    env
  | Pexp_field (b, { txt; _ }) ->
    let env = walk ctx env b in
    check_state_access ctx env ~line ~write:false (lid_last txt);
    env
  | Pexp_setfield (b, { txt; _ }, v) ->
    let env = walk ctx env b in
    let env = walk ctx env v in
    check_state_access ctx env ~line ~write:true (lid_last txt);
    env
  | Pexp_sequence (a, b) -> walk ctx (walk ctx env a) b
  | Pexp_let (_, vbs, body) ->
    let env =
      List.fold_left
        (fun acc vb ->
          (* a local function carrying a lock precondition (@requires) is
             analyzed with that precondition held *)
          let acc' =
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = n; _ } when is_closure vb.pvb_expr -> (
              match Hashtbl.find_opt ctx.cfile.Model.funs n with
              | Some fa ->
                { acc with held = SS.union acc.held (SS.of_list fa.frequires) }
              | None -> acc)
            | _ -> acc
          in
          ignore (walk ctx acc' vb.pvb_expr);
          acc)
        env vbs
    in
    let shadow =
      List.fold_left
        (fun acc vb -> SS.union acc (pat_vars vb.pvb_pat))
        env.shadow vbs
    in
    walk ctx { env with shadow } body
  | Pexp_ifthenelse (c, t, f) ->
    let envc = walk ctx env c in
    let et = walk ctx envc t in
    let ef = match f with Some f -> walk ctx envc f | None -> envc in
    let exits =
      (if diverges t then [] else [ et.held ])
      @
      match f with
      | Some f when diverges f -> []
      | _ -> [ ef.held ]
    in
    (match exits with
    | [] -> et (* both branches diverge: the join is unreachable *)
    | h :: rest -> { envc with held = List.fold_left SS.inter h rest })
  | Pexp_match (s, cases) ->
    let env0 = walk ctx env s in
    merge_cases ctx env0 cases
  | Pexp_try (s, cases) ->
    let envb = walk ctx env s in
    let envh = merge_cases ctx env cases in
    { env with held = SS.inter envb.held envh.held }
  | Pexp_while (c, b) ->
    let env' = walk ctx env c in
    ignore (walk ctx env' b);
    env
  | Pexp_for (pat, a, b, _, body) ->
    let env' = walk ctx (walk ctx env a) b in
    ignore
      (walk ctx
         { env' with shadow = SS.union env'.shadow (pat_vars pat) }
         body);
    env'
  | Pexp_function (params, _, body) ->
    let shadow =
      List.fold_left
        (fun acc p ->
          match p.pparam_desc with
          | Pparam_val (_, d, pat) ->
            (match d with Some d -> ignore (walk ctx env d) | None -> ());
            SS.union acc (pat_vars pat)
          | Pparam_newtype _ -> acc)
        env.shadow params
    in
    let benv = { env with shadow } in
    (match body with
    | Pfunction_body b -> ignore (walk ctx benv b)
    | Pfunction_cases (cases, _, _) -> ignore (merge_cases ctx benv cases));
    env
  | Pexp_record (fields, base) ->
    (* building a record is not an access to the (new) fields; [{ b with .. }]
       reads of unnamed fields of [b] are not modeled *)
    let env = match base with Some b -> walk ctx env b | None -> env in
    List.fold_left (fun acc (_, fe) -> walk ctx acc fe) env fields
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, args) ->
    apply ctx env ~line ~head_line:pexp_loc.loc_start.pos_lnum txt args
  | Pexp_apply (head, args) ->
    let env = walk ctx env head in
    List.fold_left (fun acc (_, a) -> walk ctx acc a) env args
  | _ -> List.fold_left (walk ctx) env (children e)

and merge_cases ctx env0 cases =
  let exits =
    List.filter_map
      (fun c ->
        let envp =
          { env0 with shadow = SS.union env0.shadow (pat_vars c.pc_lhs) }
        in
        let e1 =
          match c.pc_guard with Some g -> walk ctx envp g | None -> envp
        in
        let ex = walk ctx e1 c.pc_rhs in
        if diverges c.pc_rhs then None else Some ex)
      cases
  in
  match exits with
  | [] -> env0
  | first :: rest ->
    { env0 with
      held = List.fold_left (fun acc e -> SS.inter acc e.held) first.held rest
    }

and apply ctx env ~line ~head_line txt args =
  let walk_args env =
    List.fold_left (fun acc (_, a) -> walk ctx acc a) env args
  in
  match (last2 txt, args) with
  | ("Mutex", "lock"), (_, me) :: _ -> (
    let env = walk_args env in
    match lock_of_expr ctx.cfile me with
    | None -> env
    | Some l ->
      if SS.mem l env.held then begin
        emit ctx line `E "src-recursive-lock"
          "Mutex.lock on %s which is already held" l;
        env
      end
      else begin
        add_edges ctx line env.held ~to_:l;
        { env with held = SS.add l env.held }
      end)
  | ("Mutex", "unlock"), (_, me) :: _ -> (
    let env = walk_args env in
    match lock_of_expr ctx.cfile me with
    | None -> env
    | Some l -> { env with held = SS.remove l env.held })
  | ("Mutex", "try_lock"), (_, me) :: _ -> (
    (* records the ordering edge but conservatively does not assume held *)
    let env = walk_args env in
    match lock_of_expr ctx.cfile me with
    | None -> env
    | Some l ->
      add_edges ctx line env.held ~to_:l;
      env)
  | ("Mutex", "protect"), (_, me) :: rest -> (
    let env = walk ctx env me in
    match lock_of_expr ctx.cfile me with
    | None -> List.fold_left (fun acc (_, a) -> walk ctx acc a) env rest
    | Some l ->
      if SS.mem l env.held then
        emit ctx line `E "src-recursive-lock"
          "Mutex.protect on %s which is already held" l;
      add_edges ctx line env.held ~to_:l;
      let inner = { env with held = SS.add l env.held } in
      List.iter (fun (_, a) -> ignore (walk ctx inner a)) rest;
      env)
  | ("Condition", "wait"), [ (_, ce); (_, me) ] -> (
    let env = walk ctx (walk ctx env ce) me in
    match lock_of_expr ctx.cfile me with
    | None -> env
    | Some l ->
      if not (SS.mem l env.held) then
        emit ctx line `E "src-condition-wait"
          "Condition.wait with %s not held" l;
      let others = SS.remove l env.held in
      if not (SS.is_empty others) then
        emit ctx line `E "src-blocking-under-lock"
          "Condition.wait releases only %s while still holding %s" l
          (held_str others);
      env)
  | ("Fun", "protect"), _ -> (
    (* [Fun.protect ~finally body]: body runs now, finally on exit; locks
       unlocked in [finally] are released on every path out *)
    let finally =
      List.find_map
        (fun (lbl, a) ->
          match lbl with Labelled "finally" -> Some a | _ -> None)
        args
    in
    let unlocked =
      match finally with
      | None -> SS.empty
      | Some fin ->
        let acc = ref SS.empty in
        let it =
          object
            inherit Ast_traverse.iter as super

            method! expression x =
              (match x.pexp_desc with
              | Pexp_apply
                  ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, me) :: _)
                when last2 txt = ("Mutex", "unlock") -> (
                match lock_of_expr ctx.cfile me with
                | Some l -> acc := SS.add l !acc
                | None -> ())
              | _ -> ());
              super#expression x
          end
        in
        it#expression fin;
        !acc
    in
    let body =
      List.find_map
        (fun (lbl, a) -> match lbl with Nolabel -> Some a | _ -> None)
        args
    in
    (match finally with
    | Some fin -> ignore (walk ctx env fin)
    | None -> ());
    match body with
    | None -> { env with held = SS.diff env.held unlocked }
    | Some b ->
      let eb = walk ctx env b in
      { env with held = SS.diff eb.held unlocked })
  | (p, _) when is_spawn p ->
    (* closure literals run on another domain: empty held set, capture
       checks on; other arguments are evaluated here *)
    let env' =
      List.fold_left
        (fun acc (_, a) ->
          if is_closure a then begin
            ignore (walk ctx { env with held = SS.empty; spawn = true } a);
            acc
          end
          else walk ctx acc a)
        env args
    in
    if is_blocking p && not (SS.is_empty env.held) then
      emit ctx line `E "src-blocking-under-lock"
        "blocking call %s while holding %s" (blocking_name p)
        (held_str env.held);
    (* the spawn primitive itself may take locks on the calling thread
       (Pool.submit enqueues under the pool mutex) *)
    List.iter
      (fun s ->
        SS.iter
          (fun a ->
            if not (SS.mem a env.held) then add_edges ctx line env.held ~to_:a)
          s.s_acq)
      (summaries_of ctx txt);
    env'
  | (_, fname), _ ->
    check_blocking ctx env ~line:head_line txt;
    (match txt with
    | Lident n -> check_state_access ~ident:true ctx env ~line ~write:false n
    | _ -> ());
    (* [state := v] — flag the write on the ref itself; the bare-ident
       LHS is consumed here so the argument walk below does not also
       report it as a read *)
    let args =
      match (fname, args) with
      | ( ":=",
          (_, { pexp_desc = Pexp_ident { txt = Lident n; _ }; _ }) :: rest ) ->
        check_state_access ~ident:true ctx env ~line ~write:true n;
        rest
      | _ -> args
    in
    let fas = fannots_of ctx txt in
    (* lock preconditions (@requires): caller must already hold them *)
    List.iter
      (fun (fa : Model.fannot) ->
        List.iter
          (fun l ->
            if not (SS.mem l env.held) then
              emit ctx line `E "src-requires-violation"
                "call to %s requires %s which is not held" fname l)
          fa.frequires)
      fas;
    let with_locks =
      List.concat_map (fun (fa : Model.fannot) -> fa.fwith_lock) fas
    in
    let env' =
      if with_locks = [] then
        List.fold_left (fun acc (_, a) -> walk ctx acc a) env args
      else begin
        (* a @with_lock wrapper: closure arguments run with the lock held *)
        List.iter (fun l -> add_edges ctx line env.held ~to_:l) with_locks;
        let inner =
          { env with held = SS.union env.held (SS.of_list with_locks) }
        in
        List.fold_left
          (fun acc (_, a) ->
            if is_closure a then begin
              ignore (walk ctx inner a);
              acc
            end
            else walk ctx acc a)
          env args
      end
    in
    (* summary effects: lock-order edges through the callee *)
    List.iter
      (fun s ->
        SS.iter
          (fun a ->
            if not (SS.mem a env'.held) then
              add_edges ctx line env'.held ~to_:a)
          s.s_acq)
      (summaries_of ctx txt);
    env'

let walk_file ctx =
  let rec item (it : structure_item) =
    match it.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          let held0 =
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt = n; _ } -> (
              match Hashtbl.find_opt ctx.cfile.Model.funs n with
              | Some fa -> SS.of_list fa.frequires
              | None -> SS.empty)
            | _ -> SS.empty
          in
          ignore
            (walk ctx
               { held = held0; spawn = false; shadow = SS.empty }
               vb.pvb_expr))
        vbs
    | Pstr_eval (e, _) ->
      ignore
        (walk ctx { held = SS.empty; spawn = false; shadow = SS.empty } e)
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
      List.iter item sub
    | _ -> ()
  in
  List.iter item ctx.cfile.Model.structure

(* ---- lock-order graph analysis ---- *)

let dedup_edges raw =
  let seen = Hashtbl.create 32 in
  List.fold_left
    (fun acc e ->
      if Hashtbl.mem seen (e.efrom, e.eto) then acc
      else begin
        Hashtbl.replace seen (e.efrom, e.eto) ();
        e :: acc
      end)
    [] (List.rev raw)
  |> List.rev

(* strongly connected components (Tarjan); nodes sorted for determinism *)
let sccs nodes adj =
  let index = Hashtbl.create 16 and low = Hashtbl.create 16 in
  let onstack = Hashtbl.create 16 in
  let stack = ref [] and counter = ref 0 and out = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace onstack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strong w;
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find low w))
        end
        else if Hashtbl.mem onstack w then
          Hashtbl.replace low v
            (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (try Hashtbl.find adj v with Not_found -> []);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let comp = ref [] in
      let fin = ref false in
      while not !fin do
        match !stack with
        | [] -> fin := true
        | w :: rest ->
          stack := rest;
          Hashtbl.remove onstack w;
          comp := w :: !comp;
          if w = v then fin := true
      done;
      out := List.sort compare !comp :: !out
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  List.rev !out

let order_findings run (files : Model.file list) edges =
  let items = ref [] in
  let emit_at file line sev code msg =
    let f =
      match sev with
      | `E -> Finding.error ~code msg
      | `W -> Finding.warning ~code msg
    in
    items := { lfile = file; lline = line; lfinding = f } :: !items
  in
  (* observed-cycle detection *)
  let adj = Hashtbl.create 16 in
  let nodes = ref SS.empty in
  List.iter
    (fun e ->
      nodes := SS.add e.efrom (SS.add e.eto !nodes);
      Hashtbl.replace adj e.efrom
        (e.eto :: (try Hashtbl.find adj e.efrom with Not_found -> [])))
    edges;
  List.iter
    (fun comp ->
      match comp with
      | [] | [ _ ] -> ()
      | _ ->
        let inside =
          List.filter
            (fun e -> List.mem e.efrom comp && List.mem e.eto comp)
            edges
        in
        let site =
          List.fold_left
            (fun best e ->
              match best with
              | None -> Some e
              | Some b ->
                if (e.efile, e.eline) < (b.efile, b.eline) then Some e
                else best)
            None inside
        in
        let file, line =
          match site with Some e -> (e.efile, e.eline) | None -> ("", 0)
        in
        emit_at file line `E "src-lock-order-cycle"
          (Printf.sprintf
             "potential deadlock: lock acquisition cycle between %s"
             (String.concat " <-> " comp)))
    (sccs (SS.elements !nodes) adj);
  (* declared-order transitive closure *)
  let declared = Hashtbl.create 16 in
  let decl_line = Hashtbl.create 16 in
  List.iter
    (fun (f : Model.file) ->
      List.iter
        (fun (a, b, line) ->
          Hashtbl.replace declared (a, b) ();
          if not (Hashtbl.mem decl_line (a, b)) then
            Hashtbl.replace decl_line (a, b) (f.path, line))
        f.orders)
    files;
  let changed = ref true in
  while !changed do
    changed := false;
    let pairs = Hashtbl.fold (fun k () acc -> k :: acc) declared [] in
    List.iter
      (fun (a, b) ->
        List.iter
          (fun (b', c) ->
            if b = b' && not (Hashtbl.mem declared (a, c)) then begin
              Hashtbl.replace declared (a, c) ();
              (match Hashtbl.find_opt decl_line (a, b) with
              | Some loc -> Hashtbl.replace decl_line (a, c) loc
              | None -> ());
              changed := true
            end)
          pairs)
      pairs
  done;
  (* contradictions among declarations *)
  let reported = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (a, b) () ->
      if a < b && Hashtbl.mem declared (b, a) && not (Hashtbl.mem reported (a, b))
      then begin
        Hashtbl.replace reported (a, b) ();
        let file, line =
          match Hashtbl.find_opt decl_line (a, b) with
          | Some loc -> loc
          | None -> ("", 0)
        in
        emit_at file line `E "src-lock-order-contradiction"
          (Printf.sprintf
             "@lock_order declarations order %s and %s both ways" a b)
      end)
    declared;
  (* observed edges against declared order *)
  List.iter
    (fun e ->
      if Hashtbl.mem declared (e.eto, e.efrom) then
        emit_at e.efile e.eline `E "src-lock-order-violation"
          (Printf.sprintf
             "acquired %s while holding %s, but @lock_order declares %s < %s"
             e.eto e.efrom e.eto e.efrom))
    edges;
  run.items <- !items @ run.items

(* ---- annotation hygiene across the whole set ---- *)

let stale_findings run (files : Model.file list) all_locks =
  let items = ref [] in
  let stale (f : Model.file) line l =
    if not (SS.mem l all_locks) then
      items :=
        { lfile = f.path; lline = line;
          lfinding =
            Finding.error ~code:"src-stale-annotation"
              (Printf.sprintf "annotation names unknown lock %s" l) }
        :: !items
  in
  List.iter
    (fun (f : Model.file) ->
      Hashtbl.iter
        (fun _ (st : Model.state) ->
          match st.sguard with
          | Model.Guarded l -> stale f st.sline l
          | Model.Confined | Model.Unannotated -> ())
        f.states;
      Hashtbl.iter
        (fun _ (fa : Model.fannot) ->
          List.iter (stale f fa.floc)
            (fa.frequires @ fa.facquires @ fa.fwith_lock))
        f.funs;
      List.iter
        (fun (a, b, line) ->
          stale f line a;
          stale f line b)
        f.orders)
    files;
  run.items <- !items @ run.items

(* ---- entry point ---- *)

let check (files : Model.file list) : result =
  let run = { items = []; raw_edges = [] } in
  let models = Hashtbl.create 16 in
  List.iter (fun (f : Model.file) -> Hashtbl.add models f.Model.base f) files;
  let all_locks =
    List.fold_left
      (fun acc (f : Model.file) ->
        Hashtbl.fold
          (fun short _ acc -> SS.add (Model.qualify f.base short) acc)
          f.locks acc)
      SS.empty files
  in
  let summaries = build_summaries files in
  List.iter
    (fun (f : Model.file) ->
      (match f.parse_error with
      | Some msg ->
        run.items <-
          { lfile = f.path; lline = 1;
            lfinding =
              Finding.error ~code:"src-parse-error"
                (Printf.sprintf "could not parse: %s" msg) }
          :: run.items
      | None -> ());
      List.iter
        (fun (i : Model.issue) ->
          let mk =
            match i.isev with
            | `Error -> Finding.error ~code:"src-bad-annotation"
            | `Warning -> Finding.warning ~code:"src-dangling-annotation"
          in
          run.items <-
            { lfile = f.path; lline = i.iline; lfinding = mk i.itext }
            :: run.items)
        f.issues)
    files;
  stale_findings run files all_locks;
  List.iter
    (fun (f : Model.file) ->
      walk_file { cfile = f; models; summaries; run })
    files;
  let edges = dedup_edges run.raw_edges in
  order_findings run files edges;
  { items = run.items; edges }
