(** Per-file concurrency model extracted from the parsetree + annotations:
    which names are locks, which are shared state (and under which guard),
    which functions carry lock contracts, and where suppressions apply. *)

type guard =
  | Guarded of string  (** qualified lock name, e.g. [pool.mu] *)
  | Confined  (** domain-local / single-owner; no lock needed *)
  | Unannotated  (** auto-detected shared state with no annotation yet *)

type skind = Field | Top | Local

type state = {
  sname : string;
  skind : skind;
  sline : int;
  mutable sguard : guard;
}

type lock = { lshort : string; lline : int }

type fannot = {
  floc : int;
  mutable frequires : string list;  (** qualified *)
  mutable facquires : string list;  (** qualified *)
  mutable fwith_lock : string list;  (** qualified *)
  mutable freleases : string list;  (** raw: resource idents or lock names *)
}

type issue = { iline : int; itext : string; isev : [ `Error | `Warning ] }

type file = {
  path : string;  (** as passed to [load] *)
  base : string;  (** lowercased module basename, used to qualify locks *)
  structure : Ppxlib.structure;  (** empty when [parse_error] is set *)
  locks : (string, lock) Hashtbl.t;  (** short name -> lock *)
  states : (string, state) Hashtbl.t;
  funs : (string, fannot) Hashtbl.t;
  race_ok : (int, unit) Hashtbl.t;  (** lines carrying @race_ok *)
  cleanup_ok : (int, unit) Hashtbl.t;  (** lines carrying @cleanup_ok *)
  swallow_ok : (int, unit) Hashtbl.t;  (** lines carrying @swallow_ok *)
  orders : (string * string * int) list;  (** qualified a-before-b + line *)
  issues : issue list;  (** bad/dangling annotations *)
  parse_error : string option;
}

val qualify : string -> string -> string
(** [qualify base name] is [name] if already dotted, else [base.name]. *)

val of_source : path:string -> string -> file
(** Parse and extract; never raises (syntax errors land in [parse_error]). *)

val load : string -> file
(** [of_source] over the contents of a file on disk. *)

val suppressed : file -> int -> bool
(** Is line [n] covered by a [@race_ok] on the same or previous line? *)

val cleanup_suppressed : file -> int -> bool
(** Is line [n] covered by a [@cleanup_ok] on the same or previous line? *)

val swallow_suppressed : file -> int -> bool
(** Is line [n] covered by a [@swallow_ok] on the same or previous line? *)
