(* Extract the concurrency-relevant model of one source file: lock
   declarations, shared-state declarations (auto-detected + annotated),
   function lock contracts, @race_ok lines and @lock_order edges. Purely
   syntactic — no type checking — so it stays robust across the tree. *)

module Directive = Annot
open Ppxlib

type guard = Guarded of string | Confined | Unannotated

type skind = Field | Top | Local

type state = {
  sname : string;
  skind : skind;
  sline : int;
  mutable sguard : guard;
}

type lock = { lshort : string; lline : int }

type fannot = {
  floc : int;
  mutable frequires : string list;
  mutable facquires : string list;
  mutable fwith_lock : string list;
  mutable freleases : string list;
}

type issue = { iline : int; itext : string; isev : [ `Error | `Warning ] }

type file = {
  path : string;
  base : string;
  structure : structure;
  locks : (string, lock) Hashtbl.t;
  states : (string, state) Hashtbl.t;
  funs : (string, fannot) Hashtbl.t;
  race_ok : (int, unit) Hashtbl.t;
  cleanup_ok : (int, unit) Hashtbl.t;
  swallow_ok : (int, unit) Hashtbl.t;
  orders : (string * string * int) list;
  issues : issue list;
  parse_error : string option;
}

let qualify base name = if String.contains name '.' then name else base ^ "." ^ name

let rec lid_last = function
  | Lident s -> s
  | Ldot (_, s) -> s
  | Lapply (_, l) -> lid_last l

let rec lid_str = function
  | Lident s -> s
  | Ldot (l, s) -> lid_str l ^ "." ^ s
  | Lapply (a, _) -> lid_str a

(* Containers whose contents are shared mutable state even without
   [mutable]: a field holding one of these is auto-detected. *)
let container_suffixes =
  [ "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t"; "Bytes.t" ]

let container_heads = [ "ref"; "array"; "bytes" ]

type tyclass = Tmutex | Texempt | Tcontainer | Tother

let classify_type (ct : core_type) =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) ->
    let full = lid_str txt and last = lid_last txt in
    if String.ends_with ~suffix:"Mutex.t" full then Tmutex
    else if
      String.ends_with ~suffix:"Atomic.t" full
      || String.ends_with ~suffix:"Condition.t" full
      || String.ends_with ~suffix:"Semaphore.Counting.t" full
      || String.ends_with ~suffix:"Semaphore.Binary.t" full
    then Texempt
    else if
      List.exists (fun s -> String.ends_with ~suffix:s full) container_suffixes
      || List.mem last container_heads
    then Tcontainer
    else Tother
  | _ -> Tother

(* ---- declaration sites (annotation attachment targets) ---- *)

type decl = {
  dname : string;
  dline : int;
  dstate : skind option;  (* None: cannot carry @guarded_by *)
  dauto : bool;  (* auto-detected shared state *)
  dfun : bool;  (* can carry @requires/@acquires/@with_lock *)
}

let pat_name (p : pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

let rec unconstrain (e : expression) =
  match e.pexp_desc with
  | Pexp_constraint (e', _) -> unconstrain e'
  | _ -> e

type bindclass = Bmutex | Bref | Bplain

let classify_bind (e : expression) =
  match (unconstrain e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    let full = lid_str txt in
    if String.ends_with ~suffix:"Mutex.create" full then Bmutex
    else if full = "ref" || String.ends_with ~suffix:"Stdlib.ref" full then Bref
    else Bplain
  | _ -> Bplain

(* ---- extraction ---- *)

let of_source ~path src =
  let base =
    String.lowercase_ascii (Filename.remove_extension (Filename.basename path))
  in
  let locks = Hashtbl.create 8 in
  let states = Hashtbl.create 16 in
  let funs = Hashtbl.create 8 in
  let race_ok = Hashtbl.create 4 in
  let cleanup_ok = Hashtbl.create 4 in
  let swallow_ok = Hashtbl.create 4 in
  let orders = ref [] in
  let issues = ref [] in
  let issue sev line fmt =
    Printf.ksprintf
      (fun s -> issues := { iline = line; itext = s; isev = sev } :: !issues)
      fmt
  in
  let dirs, derrs = Directive.scan src in
  List.iter
    (fun (e : Directive.error) -> issue `Error e.eline "%s" e.etext)
    derrs;
  let structure, parse_error =
    let lexbuf = Lexing.from_string src in
    Lexing.set_filename lexbuf path;
    match Parse.implementation lexbuf with
    | str -> (str, None)
    | exception e -> ([], Some (Printexc.to_string e))
  in
  let decls : (int, decl) Hashtbl.t = Hashtbl.create 32 in
  let add_decl d = Hashtbl.add decls d.dline d in
  let add_lock name line =
    if not (Hashtbl.mem locks name) then
      Hashtbl.replace locks name { lshort = name; lline = line }
  in
  let add_auto_state name kind line =
    if not (Hashtbl.mem states name) then
      Hashtbl.replace states name
        { sname = name; skind = kind; sline = line; sguard = Unannotated }
  in
  let add_bind ~top (vb : value_binding) =
    match pat_name vb.pvb_pat with
    | None -> ()
    | Some name ->
      let line = vb.pvb_loc.loc_start.pos_lnum in
      let kind = if top then Top else Local in
      (match classify_bind vb.pvb_expr with
      | Bmutex -> add_lock name line
      | Bref ->
        if top then add_auto_state name Top line;
        add_decl
          { dname = name; dline = line; dstate = Some kind; dauto = top;
            dfun = true }
      | Bplain ->
        add_decl
          { dname = name; dline = line; dstate = Some kind; dauto = false;
            dfun = true })
  in
  let add_field (ld : label_declaration) =
    let name = ld.pld_name.txt in
    let line = ld.pld_loc.loc_start.pos_lnum in
    match classify_type ld.pld_type with
    | Tmutex -> add_lock name line
    | Texempt -> ()
    | Tcontainer ->
      add_auto_state name Field line;
      add_decl
        { dname = name; dline = line; dstate = Some Field; dauto = true;
          dfun = false }
    | Tother ->
      let auto = ld.pld_mutable = Mutable in
      if auto then add_auto_state name Field line;
      add_decl
        { dname = name; dline = line; dstate = Some Field; dauto = auto;
          dfun = false }
  in
  let rec add_item (it : structure_item) =
    match it.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter (add_bind ~top:true) vbs
    | Pstr_type (_, tds) ->
      List.iter
        (fun td ->
          match td.ptype_kind with
          | Ptype_record lds -> List.iter add_field lds
          | _ -> ())
        tds
    | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
      List.iter add_item sub
    | _ -> ()
  in
  List.iter add_item structure;
  (* local bindings (nested lets): locks and annotatable decls *)
  let local_collect =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_let (_, vbs, _) -> List.iter (add_bind ~top:false) vbs
        | _ -> ());
        super#expression e
    end
  in
  local_collect#structure structure;
  (* ---- attach directives ---- *)
  let find_decl line pred =
    match List.find_opt pred (Hashtbl.find_all decls line) with
    | Some d -> Some d
    | None -> List.find_opt pred (Hashtbl.find_all decls (line + 1))
  in
  let attach_state line guard label =
    match find_decl line (fun d -> d.dstate <> None) with
    | None -> issue `Warning line "dangling %s: no state declaration here" label
    | Some d -> (
      match Hashtbl.find_opt states d.dname with
      | Some st ->
        if st.sguard <> Unannotated then
          issue `Error line "state %s annotated twice" d.dname
        else st.sguard <- guard
      | None ->
        let kind = match d.dstate with Some k -> k | None -> Field in
        Hashtbl.replace states d.dname
          { sname = d.dname; skind = kind; sline = d.dline; sguard = guard })
  in
  let fannot_of line label =
    match find_decl line (fun d -> d.dfun) with
    | None ->
      issue `Warning line "dangling %s: no function definition here" label;
      None
    | Some d -> (
      match Hashtbl.find_opt funs d.dname with
      | Some fa -> Some fa
      | None ->
        let fa =
          { floc = d.dline; frequires = []; facquires = []; fwith_lock = [];
            freleases = [] }
        in
        Hashtbl.replace funs d.dname fa;
        Some fa)
  in
  List.iter
    (fun (d : Directive.t) ->
      let q n = qualify base n in
      match d.directive with
      | Directive.Guarded_by l -> attach_state d.line (Guarded (q l)) "@guarded_by"
      | Directive.Confined _ -> attach_state d.line Confined "@confined"
      | Directive.Requires l -> (
        match fannot_of d.line "@requires" with
        | Some fa -> fa.frequires <- q l :: fa.frequires
        | None -> ())
      | Directive.Acquires l -> (
        match fannot_of d.line "@acquires" with
        | Some fa -> fa.facquires <- q l :: fa.facquires
        | None -> ())
      | Directive.With_lock l -> (
        match fannot_of d.line "@with_lock" with
        | Some fa -> fa.fwith_lock <- q l :: fa.fwith_lock
        | None -> ())
      | Directive.Releases l -> (
        (* NOT qualified: releases name resources by their binding ident
           (an fd, a channel), or a lock as [lock_name]; qualification of
           lock ids happens in the exception-flow pass. *)
        match fannot_of d.line "@releases" with
        | Some fa -> fa.freleases <- l :: fa.freleases
        | None -> ())
      | Directive.Race_ok _ -> Hashtbl.replace race_ok d.line ()
      | Directive.Cleanup_ok _ -> Hashtbl.replace cleanup_ok d.line ()
      | Directive.Swallow_ok _ -> Hashtbl.replace swallow_ok d.line ()
      | Directive.Lock_order (a, b) ->
        if a = b then issue `Error d.line "@lock_order %s < %s is circular" a b
        else orders := (q a, q b, d.line) :: !orders)
    dirs;
  { path; base; structure; locks; states; funs; race_ok; cleanup_ok;
    swallow_ok; orders = List.rev !orders; issues = List.rev !issues;
    parse_error }

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      of_source ~path (really_input_string ic n))

let near tbl line = Hashtbl.mem tbl line || Hashtbl.mem tbl (line - 1)

let suppressed f line = near f.race_ok line

let cleanup_suppressed f line = near f.cleanup_ok line

let swallow_suppressed f line = near f.swallow_ok line
