(** Database-wide statistics store: the result of ANALYZE, keyed by table
    name. Kept separate from the catalog so storage does not depend on
    statistics. *)

type t

val create : unit -> t

val copy : t -> t
(** A shallow copy: fresh maps over the same (immutable) per-column and
    group statistics. Lets a concurrent session reuse an ANALYZE without
    re-running it, while temp-table statistics stay private to the copy. *)

val set : t -> table:string -> Col_stats.t array -> unit

val get : t -> table:string -> Col_stats.t array option

val col : t -> table:string -> col:int -> Col_stats.t option

val col_or_trivial : t -> Table.t -> int -> Col_stats.t
(** Statistics for a column, or {!Col_stats.trivial} sized to the live
    table when the table was never analyzed. *)

val set_group : t -> table:string -> Group_stats.t -> unit
(** Register column-group statistics (a "CREATE STATISTICS"). *)

val group : t -> table:string -> cols:(int * int) -> Group_stats.t option
(** Group statistics for a column pair, order-insensitive. *)

val groups_of : t -> table:string -> Group_stats.t list

val drop : t -> table:string -> unit
