type t = {
  columns : (string, Col_stats.t array) Hashtbl.t;
  groups : (string * int * int, Group_stats.t) Hashtbl.t;
}

let create () = { columns = Hashtbl.create 32; groups = Hashtbl.create 8 }

let copy t = { columns = Hashtbl.copy t.columns; groups = Hashtbl.copy t.groups }

let set t ~table cols = Hashtbl.replace t.columns table cols

let get t ~table = Hashtbl.find_opt t.columns table

let normalize (a, b) = if a <= b then (a, b) else (b, a)

let set_group t ~table g =
  let a, b = normalize (Group_stats.cols g) in
  Hashtbl.replace t.groups (table, a, b) g

let group t ~table ~cols =
  let a, b = normalize cols in
  Hashtbl.find_opt t.groups (table, a, b)

let groups_of t ~table =
  Hashtbl.fold
    (fun (tname, _, _) g acc -> if String.equal tname table then g :: acc else acc)
    t.groups []

let col t ~table ~col =
  match get t ~table with
  | Some arr when col < Array.length arr -> Some arr.(col)
  | Some _ | None -> None

let col_or_trivial t table c =
  match col t ~table:(Table.name table) ~col:c with
  | Some s -> s
  | None -> Col_stats.trivial ~row_count:(Table.nrows table)

let drop t ~table =
  Hashtbl.remove t.columns table;
  let keys =
    Hashtbl.fold
      (fun ((tname, _, _) as key) _ acc ->
        if String.equal tname table then key :: acc else acc)
      t.groups []
  in
  List.iter (Hashtbl.remove t.groups) keys
