module Query = Rdb_query.Query
module Session = Rdb_core.Session
module Reopt = Rdb_core.Reopt
module Trigger = Rdb_core.Trigger
module Estimator = Rdb_card.Estimator
module Optimizer = Rdb_plan.Optimizer
module Plan = Rdb_plan.Plan
module Executor = Rdb_exec.Executor
module Cqnf = Rdb_verify.Cqnf
module Card_bound = Rdb_verify.Card_bound
module Finding = Rdb_analysis.Finding
module Resource = Rdb_analysis.Resource
module Pool = Rdb_util.Pool
module Metrics = Rdb_obs.Metrics
module Trace = Rdb_obs.Trace
module Json = Rdb_obs.Json

type cached = Hit | Revalidated | Miss

let cached_name = function
  | Hit -> "hit"
  | Revalidated -> "revalidated"
  | Miss -> "miss"

type response = {
  r_aggs : Value.t list;
  r_rows : int;
  r_cached : cached;
  r_plan_ms : float;
  r_exec_ms : float;
  r_reopt_steps : int;
}

type config = {
  jobs : int;
  cache_capacity : int;
  reopt : float option;
  revalidate : bool;
  work_budget : int option;
  deadline_ms : float option;
  mem_budget : float option;
  downgrade : bool;
}

let default_config =
  {
    jobs = 1;
    cache_capacity = 256;
    reopt = None;
    revalidate = false;
    work_budget = Some 200_000_000;
    deadline_ms = None;
    mem_budget = None;
    downgrade = false;
  }

type t = {
  id : int;
  config : config;
  parent : Session.t;
  state_mu : Mutex.t;  (* guards parent mutation, [generation], [closed] *)
  (* @guarded_by state_mu *)
  mutable generation : int;
  (* @guarded_by state_mu *)
  mutable closed : bool;
  pool : Pool.t;
  serial_mu : Mutex.t;  (* serializes inline execution when jobs = 1 *)
  cache : Plan_cache.t;
  next_request : int Atomic.t;
}

(* Inline (jobs = 1) submission enqueues into the pool while serialized,
   and stats movement bumps metrics counters under the state lock. *)
(* @lock_order service.serial_mu < pool.mu *)
(* @lock_order service.state_mu < metrics.smu *)

let service_ids = Atomic.make 0

let create ?(config = default_config) parent =
  if config.jobs < 1 then invalid_arg "Service.create: jobs must be >= 1";
  (* the cache constructor validates its capacity and can raise: run it
     before [Pool.create] spawns worker domains, which a raise between
     spawn and return would strand with no pool handle to shut down *)
  let cache = Plan_cache.create ~capacity:config.cache_capacity in
  {
    id = Atomic.fetch_and_add service_ids 1;
    config;
    parent;
    state_mu = Mutex.create ();
    generation = 0;
    closed = false;
    pool = Pool.create config.jobs;
    serial_mu = Mutex.create ();
    cache;
    next_request = Atomic.make 0;
  }

let cache t = t.cache
let jobs t = t.config.jobs
let config t = t.config

let generation t = Mutex.protect t.state_mu (fun () -> t.generation)

(* ---- per-domain session clones ----

   Each pool worker executes against its own [Session.with_stats_of] clone:
   shared immutable tables and statistics values, private temp-table
   namespace, private catalog/stats maps — so re-optimization
   materializations on one worker never touch another. The clone is keyed
   by (service id, generation); a stats refresh bumps the generation and
   every worker rebuilds its clone (and thereby sees the new statistics and
   modification counters) on its next request. *)

type slot = { slot_service : int; slot_generation : int; slot_session : Session.t }

(* @confined domain-local storage: each domain touches only its own slot *)
let clone_slot : slot option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let local_session t =
  let slot = Domain.DLS.get clone_slot in
  Mutex.protect t.state_mu (fun () ->
      let gen = t.generation in
      match !slot with
      | Some s when s.slot_service = t.id && s.slot_generation = gen ->
        s.slot_session
      | _ ->
        let sess = Session.with_stats_of t.parent in
        slot :=
          Some
            { slot_service = t.id; slot_generation = gen; slot_session = sess };
        sess)

(* ---- the request pipeline ---- *)

let now_ms () = Unix.gettimeofday () *. 1000.0

let epoch_of catalog (q : Query.t) =
  Array.to_list (Array.map (fun (r : Query.rel) -> r.Query.table) q.Query.rels)
  |> List.sort_uniq String.compare
  |> List.map (fun name -> (name, Catalog.mod_count catalog name))

(* Revalidation: the counters moved, but if every estimate recorded in the
   cached plan still lies inside the symbolic verifier's sound bounds under
   the *current* statistics, the plan cannot be provably wrong — keep it
   (LRU position and epoch refreshed) instead of paying a replan. *)
let revalidates sess canonical plan =
  let bounds =
    Card_bound.create ~catalog:(Session.catalog sess)
      ~stats:(Session.stats sess) canonical
  in
  not (Finding.has_errors (Card_bound.check_plan bounds plan))

let execute_plan t sess ?deadline_ms canonical plan =
  let deadline_ms =
    match deadline_ms with Some _ -> deadline_ms | None -> t.config.deadline_ms
  in
  let res =
    Executor.execute ?work_budget:t.config.work_budget ?deadline_ms
      ~catalog:(Session.catalog sess) ~query:canonical plan
  in
  (* Cache hits bypass Session.execute, so feed the feedback store here:
     the canonical query is exactly what was executed, and the store is
     shared across every worker clone. A later stats refresh bumps the
     modification counters and retires what was learned. *)
  (match Session.feedback sess with
   | Some fb -> Rdb_core.Feedback.observe fb ~catalog:(Session.catalog sess) canonical res
   | None -> ());
  res

(* ---- admission control ----

   With a memory budget configured, every plan the service would run is
   held against its resource certificate ([Rdb_analysis.Resource]): a
   certified peak over the budget is rejected outright, or — with
   [downgrade] — executed through the re-optimization loop instead, which
   pipelines through materialized temp tables and re-plans from true
   cardinalities, the paper's remedy for exactly the plans whose estimated
   footprint cannot be trusted. Certificates are computed once per miss
   and travel with the cached plan, so hits decide admission without
   planning. *)

exception Over_budget of string

(* The exception crosses [handle]'s Printexc boundary on its way to the
   frontend's ERR line — print it as its message, not the constructor. *)
let () =
  Printexc.register_printer (function
    | Over_budget msg -> Some msg
    | _ -> None)

let admission t (cert : Resource.cert option) =
  match (t.config.mem_budget, cert) with
  | None, _ -> `Admit
  | Some _, None ->
    (* Only entries inserted by pre-certificate code lack one; nothing can
       be proved about them, so they pass. *)
    `Admit
  | Some budget, Some cert ->
    let hi = Resource.mem_hi cert in
    if hi <= budget then `Admit
    else if t.config.downgrade then `Downgrade
    else
      `Reject
        (Printf.sprintf
           "over-budget: certified peak %.0f row-slots exceeds memory \
            budget %.0f"
           hi budget)

let count_admitted t =
  if Option.is_some t.config.mem_budget then Metrics.incr "serve.admitted"

(* The re-optimizing execution path: run the loop, write the improved plan
   (replanned with the first materialized sub-join's now-known true
   cardinality pinned, [Estimator.Overrides]) back to the cache with a
   fresh certificate — so the next hit starts from what the re-optimizer
   learned instead of re-triggering. *)
let reopt_execute t sess ?deadline_ms ~prepared ~key ~cqnf ~epoch ~threshold
    canonical =
  let outcome =
    Reopt.run ?work_budget:t.config.work_budget ?deadline_ms
      ~initial:prepared sess ~trigger:(Trigger.create threshold)
      ~mode:Estimator.Default canonical
  in
  let plan =
    match outcome.Reopt.steps with
    | [] -> outcome.Reopt.final_plan
    | first :: _ ->
      (* [materialized_set] of the first step is in the canonical query's
         own numbering (later steps renumber), and [temp_rows] is its true
         cardinality — pin it and replan. *)
      let overrides = Hashtbl.create 4 in
      Hashtbl.replace overrides first.Reopt.materialized_set
        (float_of_int (max 1 first.Reopt.temp_rows));
      let estimator =
        Estimator.create ~mode:(Estimator.Overrides overrides)
          ~catalog:(Session.catalog sess) ~stats:(Session.stats sess)
          canonical
      in
      let plan, _ =
        Optimizer.plan ~space:(Session.space prepared)
          ~cost_params:(Session.cost_params sess)
          ~catalog:(Session.catalog sess) ~estimator canonical
      in
      Metrics.incr "cache.writebacks";
      (* Reopt.run has already recorded the materialized true
         cardinalities into the session's feedback store (re-keyed to
         the canonical query), so the write-back is persistent: future
         *similar* queries — not just this cached form — start from
         them. Count those write-backs distinctly. *)
      if Option.is_some (Session.feedback sess) then
        Metrics.incr "feedback.writebacks";
      plan
  in
  let cert = Session.certify prepared plan in
  Plan_cache.insert t.cache ~key ~cqnf ~canonical ~plan ~cert ~epoch ();
  ( outcome.Reopt.final_exec,
    outcome.Reopt.total_plan_ms,
    outcome.Reopt.total_exec_ms,
    List.length outcome.Reopt.steps )

(* The Q-error threshold of a downgraded execution: the configured re-opt
   threshold when the service already re-optimizes, an aggressive default
   otherwise — a downgrade exists to re-plan from true cardinalities, not
   to run the rejected plan as-is. *)
let downgrade_threshold t =
  match t.config.reopt with Some th -> th | None -> 2.0

(* A miss plans the canonical query, certifies the plan, and caches both. *)
let plan_and_execute t sess ?deadline_ms ~key ~cqnf ~epoch canonical =
  let prepared = Session.prepare sess canonical in
  let deadline_ms =
    match deadline_ms with Some _ -> deadline_ms | None -> t.config.deadline_ms
  in
  match t.config.reopt with
  | None ->
    let plan, pstats, estimator =
      Session.plan prepared ~mode:Estimator.Default
    in
    let cert = Session.certify ~estimator prepared plan in
    (* Cache even a rejected plan: planning cost is sunk, the certificate
       rides along, and the next request under a laxer budget — or the
       next rejection — resolves from the cache. *)
    Plan_cache.insert t.cache ~key ~cqnf ~canonical ~plan ~cert ~epoch ();
    (match admission t (Some cert) with
     | `Reject msg ->
       Metrics.incr "serve.rejected";
       raise (Over_budget msg)
     | `Downgrade ->
       Metrics.incr "serve.downgraded";
       reopt_execute t sess ?deadline_ms ~prepared ~key ~cqnf ~epoch
         ~threshold:(downgrade_threshold t) canonical
     | `Admit ->
       count_admitted t;
       let res =
         Session.execute ?work_budget:t.config.work_budget ?deadline_ms
           prepared plan
       in
       (res, pstats.Optimizer.plan_ms, res.Executor.elapsed_ms, 0))
  | Some threshold ->
    (match t.config.mem_budget with
     | Some _ ->
       (* Budgeted: the re-opt loop's first materialization already
          executes part of the default plan, so admission must hold the
          *initial* plan's certificate against the budget before any
          execution starts. *)
       let plan, _, estimator = Session.plan prepared ~mode:Estimator.Default in
       let cert = Session.certify ~estimator prepared plan in
       (match admission t (Some cert) with
        | `Reject msg ->
          Plan_cache.insert t.cache ~key ~cqnf ~canonical ~plan ~cert ~epoch ();
          Metrics.incr "serve.rejected";
          raise (Over_budget msg)
        | (`Admit | `Downgrade) as d ->
          (* Re-optimizing execution already is the downgraded mode. *)
          (match d with
           | `Admit -> count_admitted t
           | `Downgrade -> Metrics.incr "serve.downgraded");
          reopt_execute t sess ?deadline_ms ~prepared ~key ~cqnf ~epoch
            ~threshold canonical)
     | None ->
       reopt_execute t sess ?deadline_ms ~prepared ~key ~cqnf ~epoch
         ~threshold canonical)

let process t sess ?deadline_ms (q : Query.t) =
  let catalog = Session.catalog sess in
  let cqnf = Cqnf.of_query ~catalog q in
  let key = Cqnf.fingerprint cqnf in
  let epoch = epoch_of catalog q in
  let miss () =
    Metrics.incr "cache.misses";
    let canonical = Cqnf.to_query ~name:q.Query.name cqnf in
    let res, plan_ms, exec_ms, steps =
      plan_and_execute t sess ?deadline_ms ~key ~cqnf ~epoch canonical
    in
    (res, Miss, plan_ms, exec_ms, steps)
  in
  (* A cached entry's certificate decides admission without planning; a
     downgraded hit re-prepares and runs the re-opt loop instead of the
     cached plan. *)
  let cached_admit label canonical plan cert =
    match admission t cert with
    | `Reject msg ->
      Metrics.incr "serve.rejected";
      raise (Over_budget msg)
    | `Downgrade ->
      Metrics.incr "serve.downgraded";
      let prepared = Session.prepare sess canonical in
      let res, plan_ms, exec_ms, steps =
        reopt_execute t sess ?deadline_ms ~prepared ~key ~cqnf ~epoch
          ~threshold:(downgrade_threshold t) canonical
      in
      (res, label, plan_ms, exec_ms, steps)
    | `Admit ->
      count_admitted t;
      let res = execute_plan t sess ?deadline_ms canonical plan in
      (res, label, 0.0, res.Executor.elapsed_ms, 0)
  in
  let res, cached, plan_ms, exec_ms, steps =
    match Plan_cache.lookup t.cache ~key ~cqnf ~epoch with
    | Plan_cache.Hit (canonical, plan, cert) ->
      Metrics.incr "cache.hits";
      cached_admit Hit canonical plan cert
    | Plan_cache.Stale (canonical, plan, cert) ->
      if t.config.revalidate && revalidates sess canonical plan then begin
        Plan_cache.refresh t.cache ~key ~plan:None ~epoch;
        Metrics.incr "cache.hits";
        Metrics.incr "cache.revalidations";
        cached_admit Revalidated canonical plan cert
      end
      else begin
        Plan_cache.remove t.cache ~key;
        Metrics.incr "cache.invalidations";
        miss ()
      end
    | Plan_cache.Miss -> miss ()
  in
  Metrics.observe "serve.plan_ms" plan_ms;
  Metrics.observe "serve.exec_ms" exec_ms;
  {
    r_aggs = res.Executor.aggs;
    r_rows = res.Executor.out_rows;
    r_cached = cached;
    r_plan_ms = plan_ms;
    r_exec_ms = exec_ms;
    r_reopt_steps = steps;
  }

let handle t ?deadline_ms source =
  let t0 = now_ms () in
  Metrics.incr "serve.requests";
  match
    Trace.span "serve.request" (fun () ->
        let sess = local_session t in
        let q =
          match source with
          | `Bound q -> q
          | `Sql sql ->
            let name =
              Printf.sprintf "r%d" (Atomic.fetch_and_add t.next_request 1)
            in
            (match
               Rdb_sql.Binder.bind (Session.catalog sess) ~name
                 (Rdb_sql.Parser.parse sql)
             with
             | Ok q -> q
             | Error msg -> failwith msg)
        in
        process t sess ?deadline_ms q)
  with
  | resp ->
    Metrics.observe "serve.ms" (now_ms () -. t0);
    Ok resp
  | exception e ->
    Metrics.observe "serve.ms" (now_ms () -. t0);
    Metrics.incr "serve.errors";
    Error (Printexc.to_string e)

let submit_source t ?deadline_ms source =
  let closed = Mutex.protect t.state_mu (fun () -> t.closed) in
  if closed then invalid_arg "Service.submit: service is shut down";
  if Pool.jobs t.pool = 1 then
    (* A 1-job pool runs the task inline on the submitting thread; several
       socket threads can submit concurrently, so serialize them — worker
       domains provide the real parallelism when [jobs > 1]. *)
    Mutex.protect t.serial_mu (fun () ->
        Pool.submit t.pool (fun () -> handle t ?deadline_ms source))
  else Pool.submit t.pool (fun () -> handle t ?deadline_ms source)

let submit t ?deadline_ms sql = submit_source t ?deadline_ms (`Sql sql)

let submit_bound t ?deadline_ms q = submit_source t ?deadline_ms (`Bound q)

let query t ?deadline_ms sql = Pool.await (submit t ?deadline_ms sql)

let query_bound t ?deadline_ms q = Pool.await (submit_bound t ?deadline_ms q)

(* The [\resources] frontend command: the admission configuration, the
   admission counters, and every cached entry's certificate, one JSON
   object. *)
let resources_json t =
  let snap = Metrics.snapshot () in
  Json.Obj
    [
      ( "budget",
        match t.config.mem_budget with
        | Some b -> Json.Float b
        | None -> Json.Null );
      ("downgrade", Json.Bool t.config.downgrade);
      ("admitted", Json.Int (Metrics.counter snap "serve.admitted"));
      ("rejected", Json.Int (Metrics.counter snap "serve.rejected"));
      ("downgraded", Json.Int (Metrics.counter snap "serve.downgraded"));
      ( "entries",
        Json.List
          (List.map
             (fun (key, (canonical : Query.t), _plan, _epoch, hits, cert) ->
               Json.Obj
                 [
                   ("key", Json.Str key);
                   ("query", Json.Str canonical.Query.name);
                   ("hits", Json.Int hits);
                   ( "cert",
                     match cert with
                     | Some c -> Resource.to_json c
                     | None -> Json.Null );
                 ])
             (Plan_cache.entries t.cache)) );
    ]

(* ---- statistics movement ---- *)

let refresh_stats t ?buckets ?mcv_slots () =
  Mutex.protect t.state_mu (fun () ->
      Session.analyze ?buckets ?mcv_slots t.parent;
      t.generation <- t.generation + 1;
      Metrics.incr "serve.stats_refreshes")

let touch_table t name =
  Mutex.protect t.state_mu (fun () ->
      Catalog.touch (Session.catalog t.parent) name;
      t.generation <- t.generation + 1)

let shutdown t =
  Mutex.protect t.state_mu (fun () -> t.closed <- true);
  Pool.shutdown t.pool
