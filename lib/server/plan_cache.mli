(** The server's plan cache: a bounded, mutex-protected LRU map from the
    CQNF canonical-form fingerprint ({!Rdb_verify.Cqnf.fingerprint}) to a
    planned canonical query. Keying on the canonical form makes the cache
    semantic: alias-renamed or syntactically reshuffled — but equivalent —
    queries share one entry, so a hit skips DPccp entirely and replays the
    cached plan against the cached canonical query.

    Every entry carries the table modification counters
    ({!Catalog.mod_count}) it was planned against; a lookup whose current
    counters differ reports [Stale], and the service decides between
    invalidation (drop + replan) and revalidation (prove the cached plan's
    estimates still lie inside the symbolic verifier's sound bounds).

    The cache records [cache.insertions], [cache.evictions] and the
    never-expected [cache.key_collisions] in the metrics registry; the
    service layer records hits/misses/invalidations/revalidations so that
    [cache.hits + cache.misses = serve.requests] holds exactly. *)

module Cqnf := Rdb_verify.Cqnf
module Query := Rdb_query.Query
module Plan := Rdb_plan.Plan
module Resource := Rdb_analysis.Resource

type t

type lookup =
  | Hit of Query.t * Plan.t * Resource.cert option
      (** Same canonical form, same epoch: execute directly. The cached
          resource certificate (when the service certified at insertion)
          lets admission control decide without re-planning. *)
  | Stale of Query.t * Plan.t * Resource.cert option
      (** Same canonical form, but a table's modification counter moved. *)
  | Miss

val create : capacity:int -> t
(** [capacity >= 1] or [Invalid_argument]. *)

val capacity : t -> int
val size : t -> int

val lookup :
  t -> key:string -> cqnf:Cqnf.t -> epoch:(string * int) list -> lookup
(** [cqnf] is compared with {!Rdb_verify.Cqnf.equal} against the stored
    form — a fingerprint collision (never expected; counted as
    [cache.key_collisions]) reports [Miss] rather than serving another
    query's plan. A [Hit] or [Stale] refreshes the entry's LRU position. *)

val insert :
  t ->
  key:string ->
  cqnf:Cqnf.t ->
  canonical:Query.t ->
  plan:Plan.t ->
  ?cert:Resource.cert ->
  epoch:(string * int) list ->
  unit ->
  unit
(** Add (or refresh, when two workers raced on the same miss) an entry,
    evicting the least recently used entry when at capacity. [cert] is the
    plan's resource certificate; it travels with the plan, so a later hit
    can make its admission decision from the cache alone. *)

val refresh : t -> key:string -> plan:Plan.t option -> epoch:(string * int) list -> unit
(** Revalidation / re-optimization write-back: update the entry's epoch
    and, when given, replace its plan. No-op when the entry was evicted. *)

val remove : t -> key:string -> unit

val plan_of : t -> key:string -> Plan.t option

val entries :
  t ->
  (string * Query.t * Plan.t * (string * int) list * int * Resource.cert option)
  list
(** Snapshot of (key, canonical query, plan, epoch, hits, certificate),
    sorted by key — the stress test walks it to prove no torn entry
    exists, and the [\resources] frontend command reports it. *)
