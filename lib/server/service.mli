(** The concurrent query service: a long-running, in-process API over one
    database session, executing requests on a {!Rdb_util.Pool} of worker
    domains with a shared CQNF-keyed {!Plan_cache}.

    Every worker plans and executes against its own
    {!Rdb_core.Session.with_stats_of} clone (shared immutable tables and
    statistics values, private temp-table namespace), rebuilt whenever a
    stats refresh bumps the service generation. A cache hit replays the
    cached plan against the cached canonical query — no [prepare], no
    DPccp ([plan.dp_pairs] stays flat across hits, the property
    bench-serve asserts).

    Invalidation: cache entries carry the {!Catalog.mod_count} table
    modification counters they were planned against; {!refresh_stats}
    (re-ANALYZE) and {!touch_table} bump counters, and a subsequent lookup
    on a stale entry either drops it (default, counted as
    [cache.invalidations]) or — with [revalidate] — keeps it when the
    symbolic verifier's sound cardinality bounds under the new statistics
    cannot refute the plan (counted as [cache.revalidations]).

    With [reopt] set, a miss runs the full mid-query re-optimization loop;
    when re-optimization replaced the plan, an improved plan for the
    canonical query — replanned with the materialized sub-join's true
    cardinality pinned — is written back to the cache
    ([cache.writebacks]).

    With [mem_budget] set, every plan is held against its static resource
    certificate before execution: admitted requests count
    [serve.admitted], over-budget ones either fail with an [over-budget:]
    error ([serve.rejected]) or — with [downgrade] — run through the
    re-optimization loop instead ([serve.downgraded]). Certificates are
    computed on every miss and cached with the plan, so hits decide
    admission without planning.

    Metrics (registry of {!Rdb_obs.Metrics}): [serve.requests],
    [serve.errors], [serve.stats_refreshes], the [serve.ms] /
    [serve.plan_ms] / [serve.exec_ms] distributions, the
    [serve.admitted] / [serve.rejected] / [serve.downgraded] admission
    counters, and [cache.hits], [cache.misses], [cache.invalidations],
    [cache.revalidations], [cache.writebacks]. Every request that reaches the cache decision
    counts exactly one of [cache.hits] / [cache.misses] (a parse or bind
    failure counts neither), so on an error-free run
    [cache.hits + cache.misses = serve.requests] holds exactly — the
    stress test's consistency invariant. *)

module Query := Rdb_query.Query
module Session := Rdb_core.Session
module Pool := Rdb_util.Pool

type cached = Hit | Revalidated | Miss

val cached_name : cached -> string

type response = {
  r_aggs : Value.t list;   (** one value per aggregate in the SELECT list *)
  r_rows : int;            (** rows feeding the aggregates *)
  r_cached : cached;
  r_plan_ms : float;       (** 0 on a hit: planning skipped entirely *)
  r_exec_ms : float;
  r_reopt_steps : int;
}

type config = {
  jobs : int;              (** worker domains; 1 = inline, serialized *)
  cache_capacity : int;    (** LRU bound of the plan cache *)
  reopt : float option;    (** Q-error threshold enabling re-optimization *)
  revalidate : bool;       (** try bound-revalidation before invalidating *)
  work_budget : int option;
  deadline_ms : float option;
  mem_budget : float option;
      (** admission control: reject (or downgrade) any plan whose certified
          peak memory ({!Rdb_analysis.Resource.mem_hi}, row-slots) exceeds
          this — the certificate is a sound upper bound, so every admitted
          non-adaptive execution provably stays within budget *)
  downgrade : bool;
      (** with [mem_budget]: instead of rejecting an over-budget plan, run
          the query through the re-optimization loop (threshold [reopt],
          or 2.0 when re-optimization is off) — materializing sub-joins
          and re-planning from their true cardinalities rather than
          trusting the footprint of a plan built on estimates *)
}

val default_config : config
(** jobs 1, capacity 256, no re-optimization, invalidate (no revalidation),
    work budget 2e8, no deadline, no memory budget. *)

type t

val create : ?config:config -> Session.t -> t
(** Wrap an analyzed session. The session's catalog and statistics must not
    be mutated behind the service's back — go through {!refresh_stats} /
    {!touch_table}, which bump the generation every worker clone watches. *)

val submit : t -> ?deadline_ms:float -> string -> (response, string) result Pool.future
(** Parse, bind, and enqueue one SQL text. The future never carries an
    exception: parse, bind and execution failures come back as [Error] —
    a failing request must not wedge the caller. [deadline_ms] overrides
    the config's per-request deadline. Raises [Invalid_argument] after
    {!shutdown}. *)

val query : t -> ?deadline_ms:float -> string -> (response, string) result
(** [Pool.await] of {!submit}. *)

val submit_bound : t -> ?deadline_ms:float -> Query.t -> (response, string) result Pool.future
(** {!submit} for an already-bound query (tests, bench-serve). *)

val query_bound : t -> ?deadline_ms:float -> Query.t -> (response, string) result

val refresh_stats : t -> ?buckets:int -> ?mcv_slots:int -> unit -> unit
(** Re-ANALYZE every table (bumping its modification counter) and bump the
    service generation: every worker rebuilds its session clone on its
    next request, and every cached plan becomes stale. *)

val touch_table : t -> string -> unit
(** Bump one table's modification counter (and the generation) without
    changing statistics — staleness without material movement, the
    revalidation path's test case. *)

val cache : t -> Plan_cache.t
val jobs : t -> int
val config : t -> config
val generation : t -> int

val resources_json : t -> Rdb_obs.Json.t
(** The admission-control report behind the frontend's [\resources]
    command: the configured budget and downgrade knob, the
    [serve.admitted] / [serve.rejected] / [serve.downgraded] counters, and
    every cached entry's resource certificate
    ({!Rdb_analysis.Resource.to_json}; [null] for entries without one). *)

val shutdown : t -> unit
(** Reject new submissions, drain in-flight requests, join the workers.
    Idempotent and thread-safe (see {!Rdb_util.Pool.shutdown}). *)
