module Metrics = Rdb_obs.Metrics
module Json = Rdb_obs.Json

(* Line-oriented SQL-over-socket frontend.

   One request per line. Plain lines are SQL; lines starting with a
   backslash are commands:

     \quit       close this connection
     \cache      one-line cache statistics
     \metrics    the whole metrics registry as one JSON line
     \resources  admission budget, counters, cached certificates (JSON)
     \refresh    re-ANALYZE every table (bumps every modification counter)
     \shutdown   stop accepting, drain, and return from [serve]

   Responses are single lines:

     OK hit|revalidated|miss plan=<ms> exec=<ms> rows=<n> steps=<k> aggs=<v1>,<v2>,...
     ERR <message>

   Connections are handled on system threads (not domains): a handler
   spends its life blocked on socket reads or on a pool future, so threads
   are the right weight, and the worker domains of the service pool provide
   the actual query parallelism. *)

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let respond service oc line =
  match Service.query service line with
  | Ok r ->
    Printf.fprintf oc "OK %s plan=%.3fms exec=%.3fms rows=%d steps=%d aggs=%s\n"
      (Service.cached_name r.Service.r_cached)
      r.Service.r_plan_ms r.Service.r_exec_ms r.Service.r_rows
      r.Service.r_reopt_steps
      (one_line
         (String.concat "," (List.map Value.to_string r.Service.r_aggs)))
  | Error msg -> Printf.fprintf oc "ERR %s\n" (one_line msg)

let handle_line service ~stop oc line =
  match String.trim line with
  | "" -> true
  | "\\quit" -> Printf.fprintf oc "OK bye\n"; false
  | "\\shutdown" ->
    Printf.fprintf oc "OK shutting down\n";
    flush oc;
    stop ();
    false
  | "\\cache" ->
    let c = Service.cache service in
    Printf.fprintf oc "OK cache size=%d capacity=%d generation=%d\n"
      (Plan_cache.size c) (Plan_cache.capacity c)
      (Service.generation service);
    true
  | "\\metrics" ->
    Printf.fprintf oc "%s\n" (Json.to_string (Metrics.to_json (Metrics.snapshot ())));
    true
  | "\\resources" ->
    Printf.fprintf oc "%s\n" (Json.to_string (Service.resources_json service));
    true
  | "\\refresh" ->
    Service.refresh_stats service ();
    Printf.fprintf oc "OK refreshed generation=%d\n" (Service.generation service);
    true
  | line when line.[0] = '\\' ->
    Printf.fprintf oc "ERR unknown command %s\n" (one_line line);
    true
  | sql -> respond service oc sql; true

(* Open connection fds, owned by whoever removes them: a handler closing
   its own connection and [stop] closing every live one race only on the
   registry mutex, so each fd is closed exactly once and a recycled
   descriptor number is never closed twice. *)
type registry = {
  rmu : Mutex.t;
  (* @guarded_by rmu *)
  mutable fds : Unix.file_descr list;
}

let register reg fd =
  Mutex.protect reg.rmu (fun () -> reg.fds <- fd :: reg.fds)

let claim reg fd =
  Mutex.protect reg.rmu (fun () ->
      let mine = List.memq fd reg.fds in
      if mine then reg.fds <- List.filter (fun f -> not (f == fd)) reg.fds;
      mine)

let claim_all reg =
  Mutex.protect reg.rmu (fun () ->
      let fds = reg.fds in
      reg.fds <- [];
      fds)

let handle_connection service ~stop ~reg fd =
  (* Whatever kills this handler — clean EOF, a broken pipe, or a handler
     exception — the connection fd must be handed back exactly once. *)
  Fun.protect
    ~finally:(fun () ->
      if claim reg fd then (try Unix.close fd with Unix.Unix_error _ -> ()))
    (fun () ->
      let ic = Unix.in_channel_of_descr fd
      and oc = Unix.out_channel_of_descr fd in
      Metrics.incr "serve.connections";
      let rec loop () =
        match input_line ic with
        | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
        | line ->
          let continue =
            match handle_line service ~stop oc line with
            | c -> (
              try
                flush oc;
                c
              with Sys_error _ | Unix.Unix_error _ -> false)
            | exception (Sys_error _ | Unix.Unix_error _) -> false
            | exception e ->
              (* A handler error (service already shut down, malformed
                 internal state, ...) must not kill the thread silently:
                 answer on the wire if we still can, then drop just this
                 connection. *)
              Metrics.incr "serve.handler_errors";
              (try
                 Printf.fprintf oc "ERR internal %s\n"
                   (one_line (Printexc.to_string e));
                 flush oc
               with Sys_error _ | Unix.Unix_error _ -> ());
              false
          in
          if continue then loop ()
      in
      loop ())

let serve ?(host = "127.0.0.1") ~port service =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let reg = { rmu = Mutex.create (); fds = [] } in
  let stop_mu = Mutex.create () in
  (* @guarded_by stop_mu *)
  let stopping = ref false in
  let stop () =
    let first =
      Mutex.protect stop_mu (fun () ->
          let f = not !stopping in
          stopping := true;
          f)
    in
    if first then begin
      (* [shutdown] on the listener wakes a thread blocked in accept(2)
         (plain [close] does not) — the accept loop's clean exit path —
         and closing every live connection unblocks its handler thread so
         the final join cannot hang. *)
      (try Unix.shutdown listener Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      (try Unix.close listener with Unix.Unix_error _ -> ());
      List.iter
        (fun fd ->
          (* [shutdown] (unlike [close]) interrupts a handler blocked in a
             read on this connection. *)
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ())
        (claim_all reg)
    end
  in
  let threads_mu = Mutex.create () in
  (* @guarded_by threads_mu *)
  let threads = ref [] in
  let rec accept_loop () =
    match Unix.accept listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    | exception Unix.Unix_error _ -> ()
    | fd, _peer ->
      register reg fd;
      let th =
        Thread.create (fun () -> handle_connection service ~stop ~reg fd) ()
      in
      Mutex.protect threads_mu (fun () -> threads := th :: !threads);
      accept_loop ()
  in
  (* bind/listen run inside the protect: an EADDRINUSE here must close the
     listener (via [stop]) instead of leaking it to the caller's retry loop *)
  Fun.protect ~finally:stop (fun () ->
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener addr;
      Unix.listen listener 16;
      accept_loop ());
  let to_join =
    Mutex.protect threads_mu (fun () ->
        let ts = !threads in
        threads := [];
        ts)
  in
  List.iter Thread.join to_join

let port_of_env ?(default = 7878) var =
  match Sys.getenv_opt var with
  | None -> default
  | Some s -> (try int_of_string (String.trim s) with Failure _ -> default)
