module Cqnf = Rdb_verify.Cqnf
module Query = Rdb_query.Query
module Plan = Rdb_plan.Plan
module Resource = Rdb_analysis.Resource
module Metrics = Rdb_obs.Metrics

type entry = {
  key : string;
  cqnf : Cqnf.t;
  canonical : Query.t;
  (* @guarded_by mu *)
  mutable plan : Plan.t;
  (* @guarded_by mu *)
  mutable cert : Resource.cert option;
  (* @guarded_by mu *)
  mutable epoch : (string * int) list;
  (* @guarded_by mu *)
  mutable last_use : int;
  (* @guarded_by mu *)
  mutable hits : int;
}

type t = {
  mu : Mutex.t;
  capacity : int;
  (* @guarded_by mu *)
  tbl : (string, entry) Hashtbl.t;
  (* @guarded_by mu *)
  mutable tick : int;
}

type lookup =
  | Hit of Query.t * Plan.t * Resource.cert option
  | Stale of Query.t * Plan.t * Resource.cert option
  | Miss

let create ~capacity =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  { mu = Mutex.create (); capacity; tbl = Hashtbl.create 64; tick = 0 }

(* Metrics counters are bumped while the cache lock is held, never the
   other way around. *)
(* @lock_order plan_cache.mu < metrics.smu *)

(* @with_lock mu *)
let locked t f = Mutex.protect t.mu f

let capacity t = t.capacity

let size t = locked t (fun () -> Hashtbl.length t.tbl)

(* @requires mu *)
let touch_locked t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let lookup t ~key ~cqnf ~epoch =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> Miss
      | Some e when not (Cqnf.equal e.cqnf cqnf) ->
        (* The fingerprint is injective on canonical forms, so this branch
           is unreachable unless that invariant breaks; count it rather
           than silently serving another query's plan. *)
        Metrics.incr "cache.key_collisions";
        Miss
      | Some e ->
        touch_locked t e;
        if e.epoch = epoch then begin
          e.hits <- e.hits + 1;
          Hit (e.canonical, e.plan, e.cert)
        end
        else Stale (e.canonical, e.plan, e.cert))

let insert t ~key ~cqnf ~canonical ~plan ?cert ~epoch () =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
       | Some e ->
         (* Raced with another worker planning the same form: keep one
            entry, refreshed. *)
         e.plan <- plan;
         e.cert <- cert;
         e.epoch <- epoch;
         touch_locked t e
       | None ->
         if Hashtbl.length t.tbl >= t.capacity then begin
           (* Evict the least recently used entry to respect the bound. *)
           let victim =
             Hashtbl.fold
               (fun _ e acc ->
                 match acc with
                 | Some v when v.last_use <= e.last_use -> acc
                 | _ -> Some e)
               t.tbl None
           in
           match victim with
           | Some v ->
             Hashtbl.remove t.tbl v.key;
             Metrics.incr "cache.evictions"
           | None -> ()
         end;
         let e =
           { key; cqnf; canonical; plan; cert; epoch; last_use = 0; hits = 0 }
         in
         touch_locked t e;
         Hashtbl.replace t.tbl key e;
         Metrics.incr "cache.insertions"))

let refresh t ~key ~plan ~epoch =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> ()
      | Some e ->
        (match plan with Some p -> e.plan <- p | None -> ());
        e.epoch <- epoch;
        touch_locked t e)

let remove t ~key = locked t (fun () -> Hashtbl.remove t.tbl key)

let plan_of t ~key =
  locked t (fun () ->
      Option.map (fun e -> e.plan) (Hashtbl.find_opt t.tbl key))

let entries t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e acc ->
          (e.key, e.canonical, e.plan, e.epoch, e.hits, e.cert) :: acc)
        t.tbl []
      |> List.sort (fun (a, _, _, _, _, _) (b, _, _, _, _, _) -> compare a b))
