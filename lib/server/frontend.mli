(** Line-oriented SQL-over-socket frontend of the query service.

    One request per line; plain lines are SQL, backslash lines are
    commands ([\quit], [\cache], [\metrics], [\refresh], [\shutdown]).
    Responses are single lines:

    {v
    OK hit|revalidated|miss plan=<ms> exec=<ms> rows=<n> steps=<k> aggs=<v>,...
    ERR <message>
    v}

    Connections are served on system threads; query parallelism comes from
    the service's worker-domain pool, where the handler threads' requests
    are executed. *)

val serve : ?host:string -> port:int -> Service.t -> unit
(** Bind [host] (default 127.0.0.1) : [port], accept until a client sends
    [\shutdown], then close every live connection, join the handler
    threads, and return. The caller still owns the service (call
    {!Service.shutdown} afterwards). Raises [Unix.Unix_error] when the
    address is unavailable. *)

val port_of_env : ?default:int -> string -> int
(** Read a port from an environment variable, falling back on [default]
    (7878) when unset or malformed — CI convenience. *)
