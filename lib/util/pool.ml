type 'a state =
  | Pending
  | Value of 'a
  | Exn of exn * Printexc.raw_backtrace

type 'a future = {
  fmu : Mutex.t;
  fcond : Condition.t;
  (* @guarded_by fmu *)
  mutable state : 'a state;
}

type task = Task : (unit -> 'a) * 'a future -> task

type t = {
  size : int;
  mu : Mutex.t;  (* guards deques, rr and stop *)
  cond : Condition.t;
  (* @guarded_by mu *)
  deques : task list array;  (* head = newest (owner end), tail = steal end *)
  (* @guarded_by mu *)
  mutable rr : int;
  (* @guarded_by mu *)
  mutable stop : bool;
  (* @guarded_by mu *)
  mutable domains : unit Domain.t list;
}

let jobs t = t.size

let default_jobs () = Domain.recommended_domain_count ()

let fresh_future () =
  { fmu = Mutex.create (); fcond = Condition.create (); state = Pending }

let run_now f =
  try Value (f ()) with e -> Exn (e, Printexc.get_raw_backtrace ())

let fulfil fut result =
  Mutex.protect fut.fmu (fun () ->
      fut.state <- result;
      Condition.broadcast fut.fcond)

(* @requires mu *)
let pop_own t w =
  match t.deques.(w) with
  | task :: rest ->
    t.deques.(w) <- rest;
    Some task
  | [] -> None

(* @requires mu *)
let steal t w =
  let split_last l =
    match List.rev l with
    | [] -> None
    | last :: rev_init -> Some (last, List.rev rev_init)
  in
  let rec scan k =
    if k >= t.size then None
    else
      let victim = (w + k) mod t.size in
      match split_last t.deques.(victim) with
      | Some (task, rest) ->
        t.deques.(victim) <- rest;
        Some task
      | None -> scan (k + 1)
  in
  scan 1

let worker t w =
  Mutex.lock t.mu;
  let rec loop () =
    let next =
      match pop_own t w with Some _ as task -> task | None -> steal t w
    in
    match next with
    | Some (Task (f, fut)) ->
      Mutex.unlock t.mu;
      (* A task exception is routed through the future by [run_now]; the
         outer catch-all is defense in depth: nothing a task does may kill
         the worker domain, or its queued siblings would never be fulfilled
         and their submitters (the server's connection handlers) would
         block forever. *)
      (try fulfil fut (run_now f)
       with e ->
         (* @swallow_ok last-ditch fulfil failed; the worker must survive *)
         (try fulfil fut (Exn (e, Printexc.get_raw_backtrace ())) with _ -> ()));
      Mutex.lock t.mu;
      loop ()
    | None ->
      if t.stop then Mutex.unlock t.mu
      else begin
        Condition.wait t.cond t.mu;
        loop ()
      end
  in
  loop ()

let create size =
  if size < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      size;
      mu = Mutex.create ();
      cond = Condition.create ();
      deques = Array.make size [];
      rr = 0;
      stop = false;
      domains = [];
    }
  in
  if size > 1 then
    (* @race_ok written once before [t] escapes; [shutdown] re-reads under [mu] *)
    t.domains <- List.init size (fun w -> Domain.spawn (fun () -> worker t w));
  t

let submit t f =
  let fut = fresh_future () in
  if t.size <= 1 then begin
    let stopped = Mutex.protect t.mu (fun () -> t.stop) in
    if stopped then invalid_arg "Pool.submit: pool is shut down";
    (* @race_ok fresh future, not yet shared with any other domain *)
    fut.state <- run_now f;
    fut
  end
  else begin
    Mutex.protect t.mu (fun () ->
        if t.stop then invalid_arg "Pool.submit: pool is shut down";
        t.deques.(t.rr) <- Task (f, fut) :: t.deques.(t.rr);
        t.rr <- (t.rr + 1) mod t.size;
        Condition.broadcast t.cond);
    fut
  end

let await fut =
  Mutex.lock fut.fmu;
  let rec wait () =
    match fut.state with
    | Pending ->
      Condition.wait fut.fcond fut.fmu;
      wait ()
    | Value v ->
      Mutex.unlock fut.fmu;
      v
    | Exn (e, bt) ->
      Mutex.unlock fut.fmu;
      Printexc.raise_with_backtrace e bt
  in
  wait ()

let map t f arr =
  let futures = Array.map (fun x -> submit t (fun () -> f x)) arr in
  Array.map await futures

let run t thunks =
  let futures = List.map (submit t) thunks in
  List.map await futures

(* Thread-safe and idempotent: concurrent shutdowns (the accept loop and a
   signal handler, say) race on [stop] and on joining, so the domain list
   is claimed under the lock — exactly one caller joins each domain — and a
   worker that died of an internal error re-raises at its join, which must
   not wedge the caller: the exception is swallowed (task exceptions were
   already routed through their futures; only pool-internal failures are
   lost, and losing them beats hanging the server). *)
let shutdown t =
  let to_join =
    Mutex.protect t.mu (fun () ->
        t.stop <- true;
        Condition.broadcast t.cond;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  (* @swallow_ok worker died of a pool-internal error; losing it beats hanging *)
  List.iter (fun d -> try Domain.join d with _ -> ()) to_join

let with_pool size f =
  let t = create size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
