(** A small work-stealing pool of OCaml 5 domains.

    Built for the experiment runner's coarse-grained tasks (one task = one
    query planned and executed, milliseconds to seconds each): every worker
    owns a deque, submissions are dealt round-robin, an idle worker steals
    the oldest task of a busy peer. All deques hang off one pool lock —
    contention is irrelevant at this granularity and the single lock keeps
    the sleeping/waking protocol obviously correct.

    A pool of [jobs = 1] spawns no domains at all: tasks run inline on the
    submitting domain, in submission order, so a 1-job pool is
    observationally identical to direct execution (the invariant
    [test_pool.ml] pins down and the runner's determinism tests build on).

    Tasks must not submit to their own pool and then [await] the result —
    with every worker blocked in [await] the pool would deadlock. The
    experiment runner never nests. *)

type t

val create : int -> t
(** [create jobs] starts a pool of [jobs] workers. [jobs >= 1] or
    [Invalid_argument]. [jobs = 1] runs everything inline. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves to. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task finishes. An exception raised by the task is
    re-raised here, in the submitter, with the worker's backtrace. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Fork-join: submit one task per element, await them all. Results come
    back in input order regardless of which worker ran what and when; if
    several tasks failed, the lowest-index exception is re-raised. *)

val run : t -> (unit -> 'a) list -> 'a list
(** List flavour of {!map}. *)

val shutdown : t -> unit
(** Drain every queued task, then join the worker domains. Idempotent and
    thread-safe: concurrent calls race benignly — exactly one caller joins
    each worker — and a worker that died of an internal error never
    prevents shutdown from completing (its exception is swallowed; task
    exceptions always travel through their futures instead). *)

val with_pool : int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)
