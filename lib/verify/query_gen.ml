module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Prng = Rdb_util.Prng

(* Seeded random SPJ query generator over any catalog with declared foreign
   keys: join shapes follow the FK graph (in either direction, so chains,
   stars and self-joins all appear), predicate constants are sampled from
   the live column data. Deterministic given the Prng state; used by the
   property tests (parse/unparse fixpoint, canonicalization idempotence and
   alias invariance) and available to the differential harness. *)

type rule = { child : string; fk_col : int; parent : string; key_col : int }

type t = { catalog : Catalog.t; rules : rule list }

let create ~catalog =
  let rules =
    List.concat_map
      (fun tbl ->
        let schema = Table.schema tbl in
        List.filter_map
          (fun { Schema.fk_col; ref_table; ref_col } ->
            match Catalog.table catalog ref_table with
            | None -> None
            | Some parent ->
              (match Schema.find (Table.schema parent) ref_col with
               | None -> None
               | Some key_col ->
                 Some { child = Table.name tbl; fk_col; parent = ref_table; key_col }))
          (Schema.fks schema))
      (Catalog.tables catalog)
  in
  if rules = [] then
    invalid_arg "Query_gen.create: catalog declares no foreign keys";
  { catalog; rules }

let table_exn t name = Catalog.table_exn t.catalog name

(* A random non-NULL value of a column, when one exists. *)
let sample_value rng tbl col =
  let n = Table.nrows tbl in
  if n = 0 then None
  else begin
    let pick_int cells =
      let rec go tries =
        if tries = 0 then None
        else begin
          let v = cells.(Prng.int rng n) in
          if v = Column.null_int then go (tries - 1) else Some (Value.Int v)
        end
      in
      go 8
    in
    match Table.column tbl col with
    | Column.Ints cells -> pick_int cells
    | Column.Strs cells -> Some (Value.Str cells.(Prng.int rng n))
  end

let int_cols schema =
  List.filteri (fun _ _ -> true)
    (List.filter_map Fun.id
       (List.init (Schema.arity schema) (fun c ->
            if (Schema.column schema c).Schema.ty = Value.Ty_int then Some c
            else None)))

let str_cols schema =
  List.filter_map Fun.id
    (List.init (Schema.arity schema) (fun c ->
         if (Schema.column schema c).Schema.ty = Value.Ty_str then Some c
         else None))

let choose rng = function
  | [] -> None
  | l -> Some (List.nth l (Prng.int rng (List.length l)))

let rand_int_pred t rng table col =
  let tbl = table_exn t table in
  match sample_value rng tbl col with
  | Some (Value.Int v) ->
    (match Prng.int rng 5 with
     | 0 -> Some (Predicate.Cmp (Predicate.Eq, Value.Int v))
     | 1 ->
       let op =
         match Prng.int rng 4 with
         | 0 -> Predicate.Lt
         | 1 -> Predicate.Le
         | 2 -> Predicate.Gt
         | _ -> Predicate.Ge
       in
       Some (Predicate.Cmp (op, Value.Int v))
     | 2 ->
       (match sample_value rng tbl col with
        | Some (Value.Int w) -> Some (Predicate.Between (min v w, max v w))
        | _ -> None)
     | 3 ->
       let extra =
         List.filter_map
           (fun _ ->
             match sample_value rng tbl col with
             | Some (Value.Int w) -> Some (Value.Int w)
             | _ -> None)
           (List.init (1 + Prng.int rng 2) Fun.id)
       in
       Some (Predicate.In_list (Value.Int v :: extra))
     | _ ->
       Some (if Prng.int rng 4 = 0 then Predicate.Is_null else Predicate.Is_not_null))
  | _ -> None

let rand_str_pred t rng table col =
  let tbl = table_exn t table in
  match sample_value rng tbl col with
  | Some (Value.Str s) when String.length s >= 3 ->
    let len = String.length s in
    (match Prng.int rng 3 with
     | 0 -> Some (Predicate.Like (Predicate.Prefix (String.sub s 0 (2 + Prng.int rng 2))))
     | 1 ->
       let start = 1 + Prng.int rng (len - 2) in
       let l = min (1 + Prng.int rng 3) (len - start) in
       Some (Predicate.Like (Predicate.Contains (String.sub s start l)))
     | _ ->
       let l = 1 + Prng.int rng 2 in
       Some (Predicate.Like (Predicate.Suffix (String.sub s (len - l) l))))
  | _ -> None

let rand_preds t rng rel table =
  let schema = Table.schema (table_exn t table) in
  let one () =
    if Prng.int rng 4 = 0 then
      match choose rng (str_cols schema) with
      | Some col ->
        Option.map
          (fun p -> { Query.target = { Query.rel; col }; p })
          (rand_str_pred t rng table col)
      | None -> None
    else
      match choose rng (int_cols schema) with
      | Some col ->
        Option.map
          (fun p -> { Query.target = { Query.rel; col }; p })
          (rand_int_pred t rng table col)
      | None -> None
  in
  let first = if Prng.int rng 3 < 2 then one () else None in
  let second = if Prng.int rng 4 = 0 then one () else None in
  List.filter_map Fun.id [ first; second ]

let rand_aggs t rng (rels : Query.rel array) =
  let rand_colref ~int_only =
    let rel = Prng.int rng (Array.length rels) in
    let schema = Table.schema (table_exn t rels.(rel).Query.table) in
    let cols = if int_only then int_cols schema else int_cols schema @ str_cols schema in
    Option.map (fun col -> { Query.rel; col }) (choose rng cols)
  in
  let extra () =
    match Prng.int rng 4 with
    | 0 -> Option.map (fun cr -> Query.Count_col cr) (rand_colref ~int_only:true)
    | 1 -> Option.map (fun cr -> Query.Min_col cr) (rand_colref ~int_only:false)
    | 2 -> Option.map (fun cr -> Query.Max_col cr) (rand_colref ~int_only:false)
    | _ -> Option.map (fun cr -> Query.Sum_col cr) (rand_colref ~int_only:true)
  in
  Query.Count_star
  :: List.filter_map Fun.id
       [ (if Prng.bool rng then extra () else None);
         (if Prng.int rng 3 = 0 then extra () else None) ]

(* Grow a tree-connected query along the FK rules, starting from a random
   rule endpoint and attaching each new alias to an existing one. *)
let gen t rng ~name =
  let n = Prng.int_in rng 2 5 in
  let start =
    let r = List.nth t.rules (Prng.int rng (List.length t.rules)) in
    if Prng.bool rng then r.child else r.parent
  in
  let rels = ref [ start ] in
  let edges = ref [] in
  while List.length !rels < n do
    let len = List.length !rels in
    let ei = Prng.int rng len in
    let et = List.nth !rels ei in
    let candidates =
      List.concat_map
        (fun r ->
          (if r.child = et then [ (r.fk_col, r.parent, r.key_col) ] else [])
          @ (if r.parent = et then [ (r.key_col, r.child, r.fk_col) ] else []))
        t.rules
    in
    match candidates with
    | [] ->
      (* a dimension-only start with no rules touching it cannot happen:
         every start is a rule endpoint, and rules are bidirectional *)
      assert false
    | cs ->
      let ec, nt, nc = List.nth cs (Prng.int rng (List.length cs)) in
      rels := !rels @ [ nt ];
      edges :=
        { Query.l = { Query.rel = ei; col = ec };
          r = { Query.rel = len; col = nc } }
        :: !edges
  done;
  let rels =
    Array.of_list
      (List.mapi
         (fun idx tname -> { Query.alias = Printf.sprintf "%s_%d" tname idx; table = tname })
         !rels)
  in
  let preds =
    List.concat
      (List.mapi
         (fun idx (r : Query.rel) -> rand_preds t rng idx r.Query.table)
         (Array.to_list rels))
  in
  { Query.name; rels; preds; edges = List.rev !edges; select = rand_aggs t rng rels }

(* Rename every alias reversibly: structure identical, aliases fresh. *)
let rename_aliases (q : Query.t) =
  {
    q with
    Query.rels =
      Array.mapi
        (fun i (r : Query.rel) ->
          { r with Query.alias = Printf.sprintf "zz%d_%s" i r.Query.alias })
        q.Query.rels;
  }
