(** Debug-mode wiring: install the symbolic verifier as an invariant
    checker inside the planning pipeline, mirroring
    [Rdb_analysis.Debug] / [RDB_LINT].

    With [RDB_VERIFY=1] in the environment (or an explicit [~verify:true]
    argument at the call sites that take one), every plan returned by
    [Optimizer.plan]/[plan_robust] is checked against the sound cardinality
    bounds, every re-optimization rewrite step is proved equivalent to its
    original query, and error-severity findings raise {!Verify_failed}. *)

module Finding := Rdb_analysis.Finding

exception Verify_failed of Finding.t list
(** Carries the error-severity findings; the registered printer renders
    them one per line. *)

val enabled : unit -> bool
(** [RDB_VERIFY] is set to [1] or [true] in the environment. *)

val install : unit -> unit
(** Install the bound checker into [Rdb_plan.Optimizer.verify_hook].
    Idempotent; called by [Rdb_core.Session.create]. *)

val check_plan_exn :
  catalog:Catalog.t ->
  stats:Rdb_stats.Db_stats.t ->
  Rdb_query.Query.t ->
  Rdb_plan.Plan.t ->
  unit
(** Run {!Card_bound.check_plan}; raise {!Verify_failed} on errors. *)

val check_step_exn :
  catalog:Catalog.t ->
  original:Rdb_query.Query.t ->
  set:Rdb_util.Relset.t ->
  temp_cols:Rdb_query.Query.colref list ->
  temp_name:string ->
  Rdb_query.Query.t ->
  unit
(** Run {!Equiv.check_step}; raise {!Verify_failed} on errors. *)

val fail_on_errors : Finding.t list -> unit
