module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Db_stats = Rdb_stats.Db_stats
module Col_stats = Rdb_stats.Col_stats
module Mcv = Rdb_stats.Mcv
module Plan = Rdb_plan.Plan
module Finding = Rdb_analysis.Finding

(* Sound [lo, hi] row-count intervals for every sub-join of a query,
   propagated bottom-up from three kinds of ground truth:

   - exact table row counts and ANALYZE statistics (this engine's ANALYZE
     is a full scan: null fractions, MCV counts and max frequencies are
     exact, guarded by a row-count freshness check);
   - declared unique keys: joining through a unique column cannot multiply
     cardinality, and an equality predicate on it matches at most one row;
   - declared foreign keys: a NOT NULL foreign key into an unfiltered
     parent joins every child row exactly once, preserving lower bounds.

   Upper bounds use key absorption: ub(S) <= ub(S \ r) * dup(r), where
   dup(r) is the largest number of r-rows any single join-key value can
   match — 1 for a unique column, the exact MCV max frequency otherwise.
   When removing r disconnects the rest, components multiply. *)

type t = {
  catalog : Catalog.t;
  stats : Db_stats.t;
  q : Query.t;
  memo : (Relset.t, float * float) Hashtbl.t;
}

let create ~catalog ~stats q = { catalog; stats; q; memo = Hashtbl.create 64 }

let table_of t rel = Catalog.table_exn t.catalog t.q.Query.rels.(rel).Query.table

(* Statistics for a column, only when provably describing the live table. *)
let fresh_stats t rel col =
  let tbl = table_of t rel in
  match Db_stats.col t.stats ~table:(Table.name tbl) ~col with
  | Some s when s.Col_stats.row_count = Table.nrows tbl -> Some s
  | Some _ | None -> None

let schema_of t rel = Table.schema (table_of t rel)

let ri f = int_of_float (Float.round f)

let null_count (s : Col_stats.t) =
  ri (s.Col_stats.null_frac *. float_of_int s.Col_stats.row_count)

let non_null (s : Col_stats.t) = s.Col_stats.row_count - null_count s

(* ANALYZE builds MCVs with 100 slots everywhere in this codebase; a list
   shorter than that provably holds every value occurring >= 2 times. *)
let mcv_slots = 100

let mcv_count (s : Col_stats.t) f = ri (f *. float_of_int (non_null s))

(* Largest number of rows sharing one non-NULL value of the column. *)
let max_frequency (s : Col_stats.t) =
  match Mcv.entries s.Col_stats.mcv with
  | (_, f) :: _ -> mcv_count s f
  | [] ->
    (* no value occurs twice (MCV keeps everything with count >= 2) *)
    if non_null s > 0 then 1 else 0

(* Rows matching [col = v]. *)
let eq_count t rel col v =
  let rows = Table.nrows (table_of t rel) in
  if Schema.is_unique (schema_of t rel) col then min 1 rows
  else
    match fresh_stats t rel col with
    | None -> rows
    | Some s ->
      (match Mcv.frequency s.Col_stats.mcv v with
       | Some f -> mcv_count s f
       | None ->
         let entries = Mcv.entries s.Col_stats.mcv in
         if List.length entries < mcv_slots then
           (* untruncated: any value outside the list occurs at most once *)
           min 1 (non_null s)
         else
           (* truncated: bounded by the smallest kept frequency *)
           (match List.rev entries with
            | (_, f) :: _ -> mcv_count s f
            | [] -> assert false))

(* Rows a single predicate can keep. *)
let pred_bound t rel (col, (p : Predicate.t)) =
  let rows = Table.nrows (table_of t rel) in
  let stats = fresh_stats t rel col in
  let nn = match stats with Some s -> non_null s | None -> rows in
  let empty_range lo hi =
    match stats with
    | Some { Col_stats.min_val = Some mn; max_val = Some mx; _ } ->
      mx < lo || mn > hi
    | _ -> false
  in
  match p with
  | Predicate.Is_null ->
    (match stats with Some s -> null_count s | None -> rows)
  | Predicate.Is_not_null -> nn
  | Predicate.Cmp (Predicate.Eq, v) -> eq_count t rel col v
  | Predicate.In_list vs ->
    let vs = List.sort_uniq Value.compare vs in
    min nn (List.fold_left (fun acc v -> acc + eq_count t rel col v) 0 vs)
  | Predicate.Cmp (Predicate.Ne, _) -> nn
  | Predicate.Cmp (op, Value.Int v) ->
    let lo, hi =
      match op with
      | Predicate.Lt -> (min_int, v - 1)
      | Predicate.Le -> (min_int, v)
      | Predicate.Gt -> (v + 1, max_int)
      | Predicate.Ge -> (v, max_int)
      | Predicate.Eq | Predicate.Ne -> assert false
    in
    if lo > hi || empty_range lo hi then 0 else nn
  | Predicate.Cmp (_, _) -> nn
  | Predicate.Between (lo, hi) ->
    if lo > hi || empty_range lo hi then 0 else nn
  | Predicate.Like _ -> nn

let scan_interval t rel =
  let rows = Table.nrows (table_of t rel) in
  match Query.preds_of_cols t.q rel with
  | [] -> (float_of_int rows, float_of_int rows)
  | preds ->
    let hi =
      List.fold_left (fun acc cp -> min acc (pred_bound t rel cp)) rows preds
    in
    (0.0, float_of_int hi)

(* Connected components of [s] under the query's join edges. *)
let components t s =
  let rec grow comp frontier =
    match frontier with
    | [] -> comp
    | r :: rest ->
      let nbrs =
        List.filter_map
          (fun { Query.l; r = rr } ->
            let a = l.Query.rel and b = rr.Query.rel in
            if a = r && Relset.mem b s && not (Relset.mem b comp) then Some b
            else if b = r && Relset.mem a s && not (Relset.mem a comp) then
              Some a
            else None)
          t.q.Query.edges
      in
      let nbrs = List.sort_uniq compare nbrs in
      grow
        (List.fold_left (fun c b -> Relset.add b c) comp nbrs)
        (nbrs @ rest)
  in
  let rec split remaining acc =
    if Relset.is_empty remaining then List.rev acc
    else begin
      let seed = Relset.min_elt remaining in
      let comp = grow (Relset.singleton seed) [ seed ] in
      split (Relset.diff remaining comp) (comp :: acc)
    end
  in
  split s []

(* The connecting edge is a declared NOT NULL foreign key of [child_rel]
   into relation [r]'s unique key column: every child row joins exactly
   one r-row. *)
let fk_edge_safe t ~child_cr ~r_cr =
  let child_schema = schema_of t (child_cr : Query.colref).Query.rel in
  let r_rel = (r_cr : Query.colref).Query.rel in
  let r_schema = schema_of t r_rel in
  match Schema.fk_of child_schema child_cr.Query.col with
  | Some { Schema.ref_table; ref_col; _ } ->
    Schema.is_not_null child_schema child_cr.Query.col
    && ref_table = t.q.Query.rels.(r_rel).Query.table
    && (match Schema.find r_schema ref_col with
        | Some i -> i = r_cr.Query.col && Schema.is_unique r_schema i
        | None -> false)
  | None -> false

let rec interval t s =
  match Hashtbl.find_opt t.memo s with
  | Some iv -> iv
  | None ->
    let iv = compute t s in
    Hashtbl.replace t.memo s iv;
    iv

and compute t s =
  match Relset.cardinal s with
  | 0 -> invalid_arg "Card_bound.interval: empty set"
  | 1 -> scan_interval t (Relset.min_elt s)
  | _ ->
    let members = Relset.to_list s in
    (* Factors are floored at one row: the estimator clamps every subset
       estimate to >= 1 (as PostgreSQL does), so a provably-empty member
       still contributes one phantom row to its compositions. Mirroring
       that floor here only raises the bound — it stays a sound upper
       bound on the true cardinality — and keeps [estimate-exceeds-bound]
       findings indicative of real estimator violations rather than of
       the documented floor. *)
    let hi =
      List.fold_left
        (fun best r ->
          let rest = Relset.remove r s in
          let base =
            List.fold_left
              (fun acc comp -> acc *. Float.max 1.0 (snd (interval t comp)))
              1.0 (components t rest)
          in
          let _, hi_r = interval t (Relset.singleton r) in
          let connecting =
            Query.edges_between t.q rest (Relset.singleton r)
          in
          let dup =
            List.fold_left
              (fun acc { Query.l = _; r = r_cr } ->
                let d =
                  if Schema.is_unique (schema_of t r_cr.Query.rel) r_cr.Query.col
                  then 1.0
                  else
                    match fresh_stats t r_cr.Query.rel r_cr.Query.col with
                    | Some st -> float_of_int (max_frequency st)
                    | None -> hi_r
                in
                Float.min acc d)
              hi_r connecting
          in
          Float.min best (base *. Float.max 1.0 dup))
        infinity members
    in
    let lo =
      List.fold_left
        (fun best r ->
          let rest = Relset.remove r s in
          match components t rest with
          | [ _ ] when Query.preds_of_cols t.q r = [] ->
            (match Query.edges_between t.q rest (Relset.singleton r) with
             | [ { Query.l = child_cr; r = r_cr } ]
               when fk_edge_safe t ~child_cr ~r_cr ->
               Float.max best (fst (interval t rest))
             | _ -> best)
          | _ -> best)
        0.0 members
    in
    (Float.min lo hi, hi)

let upper t s = snd (interval t s)

let clamp t s v =
  let lo, hi = interval t s in
  Float.max lo (Float.min v hi)

(* ---- plan checking ---- *)

let render_set t s =
  "{"
  ^ String.concat "," (List.map (Query.rel_alias t.q) (Relset.to_list s))
  ^ "}"

(* Absolute slack of half a row plus relative epsilon: estimates that sit
   exactly on the bound (exact MCV counts reproduce the bound to the ulp)
   must not fire. The estimator also floors every estimate at 1.0, so an
   estimate of 1 against a provably-empty set is the floor, not an
   overestimate. *)
let above est bound = est > (Float.max bound 1.0 *. (1.0 +. 1e-6)) +. 0.5
let below est bound = est < (bound *. (1.0 -. 1e-6)) -. 0.5

let check_node t ~what s est =
  let lo, hi = interval t s in
  if above est hi then
    [ Finding.error ~code:"estimate-exceeds-bound"
        (Printf.sprintf
           "%s: %s %s estimates %.1f rows, above the provable upper bound \
            %.1f"
           t.q.Query.name what (render_set t s) est hi) ]
  else if below est lo then
    [ Finding.warning ~code:"estimate-below-bound"
        (Printf.sprintf
           "%s: %s %s estimates %.1f rows, below the provable lower bound \
            %.1f"
           t.q.Query.name what (render_set t s) est lo) ]
  else []

let check_plan t plan =
  let rec walk acc = function
    | Plan.Scan sc ->
      check_node t ~what:"scan" (Relset.singleton sc.Plan.scan_rel)
        sc.Plan.scan_est
      @ acc
    | Plan.Join j ->
      let acc = walk acc j.Plan.outer in
      let acc = walk acc j.Plan.inner in
      check_node t ~what:"join" (Plan.rel_set (Plan.Join j)) j.Plan.join_est
      @ acc
  in
  List.rev (walk [] plan)

(* ---- validating the constraint declarations against live data ---- *)

(* The bounds above are only as sound as the declared constraints; check
   them against the actual table contents (full scans, test/verify-sweep
   scale). *)
let check_constraints catalog =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  List.iter
    (fun tbl ->
      let name = Table.name tbl in
      let schema = Table.schema tbl in
      let nrows = Table.nrows tbl in
      let int_col c =
        match Table.column tbl c with
        | Column.Ints cells -> Some cells
        | Column.Strs _ -> None
      in
      let cell_null c row =
        match Table.column tbl c with
        | Column.Ints cells -> cells.(row) = Column.null_int
        | Column.Strs _ -> false
      in
      for c = 0 to Schema.arity schema - 1 do
        let cname = (Schema.column schema c).Schema.name in
        if Schema.is_not_null schema c then begin
          let nulls = ref 0 in
          for row = 0 to nrows - 1 do
            if cell_null c row then incr nulls
          done;
          if !nulls > 0 then
            add
              (Finding.error ~code:"constraint-not-null"
                 (Printf.sprintf "%s.%s declared NOT NULL but has %d NULLs"
                    name cname !nulls))
        end;
        if Schema.is_unique schema c then begin
          match int_col c with
          | None ->
            add
              (Finding.error ~code:"constraint-unique"
                 (Printf.sprintf
                    "%s.%s declared unique but is not an integer column"
                    name cname))
          | Some cells ->
            let seen = Hashtbl.create nrows in
            let dups = ref 0 in
            Array.iter
              (fun v ->
                if v <> Column.null_int then
                  if Hashtbl.mem seen v then incr dups
                  else Hashtbl.add seen v ())
              cells;
            if !dups > 0 then
              add
                (Finding.error ~code:"constraint-unique"
                   (Printf.sprintf
                      "%s.%s declared unique but has %d duplicate values"
                      name cname !dups))
        end;
        match Schema.fk_of schema c with
        | None -> ()
        | Some { Schema.ref_table; ref_col; _ } ->
          (match Catalog.table catalog ref_table with
           | None ->
             add
               (Finding.error ~code:"constraint-fk"
                  (Printf.sprintf "%s.%s references missing table %s" name
                     cname ref_table))
           | Some parent ->
             (match Schema.find (Table.schema parent) ref_col with
              | None ->
                add
                  (Finding.error ~code:"constraint-fk"
                     (Printf.sprintf "%s.%s references missing column %s.%s"
                        name cname ref_table ref_col))
              | Some pc ->
                (match int_col c, Table.column parent pc with
                 | Some child_cells, Column.Ints parent_cells ->
                   let domain = Hashtbl.create (Array.length parent_cells) in
                   Array.iter
                     (fun v ->
                       if v <> Column.null_int then Hashtbl.replace domain v ())
                     parent_cells;
                   let orphans = ref 0 in
                   Array.iter
                     (fun v ->
                       if v <> Column.null_int && not (Hashtbl.mem domain v)
                       then incr orphans)
                     child_cells;
                   if !orphans > 0 then
                     add
                       (Finding.error ~code:"constraint-fk"
                          (Printf.sprintf
                             "%s.%s has %d values missing from %s.%s" name
                             cname !orphans ref_table ref_col))
                 | _ ->
                   add
                     (Finding.error ~code:"constraint-fk"
                        (Printf.sprintf
                           "%s.%s foreign key must join integer columns" name
                           cname)))))
      done)
    (Catalog.tables catalog);
  List.rev !findings
