module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate

(* A conjunctive-query normal form for the engine's SPJ fragment.

   Every (relation occurrence, column) position is a variable; equi-join
   edges merge variables (transitive closure via union-find), so a chain
   [a.x = b.y, b.y = c.z] becomes one shared variable regardless of how the
   SQL spelled it. Atoms are full-arity — projected-away columns hold
   fresh singleton variables — which makes homomorphism checking a plain
   per-position unification. Aliases never enter the form, so it is
   alias-rename-invariant by construction. *)

type atom = { table : string; args : int array }

type sel =
  | S_star
  | S_count of int
  | S_min of int
  | S_max of int
  | S_sum of int

type t = {
  atoms : atom array;
  var_preds : Predicate.t list array;  (* reduced predicate set per variable *)
  select : sel array;
  n_vars : int;
  redundant_eqs : int;
}

(* ---- predicate implication (pairwise, sound but incomplete) ---- *)

(* Integer bounds implied by a predicate, as (lo, hi) inclusive. *)
let int_range = function
  | Predicate.Cmp (Predicate.Eq, Value.Int v) -> Some (v, v)
  | Predicate.Cmp (Predicate.Lt, Value.Int v) -> Some (min_int, v - 1)
  | Predicate.Cmp (Predicate.Le, Value.Int v) -> Some (min_int, v)
  | Predicate.Cmp (Predicate.Gt, Value.Int v) -> Some (v + 1, max_int)
  | Predicate.Cmp (Predicate.Ge, Value.Int v) -> Some (v, max_int)
  | Predicate.Between (lo, hi) -> Some (lo, hi)
  | _ -> None

let range_only = function
  | Predicate.Cmp ((Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge), _)
  | Predicate.Between _ -> true
  | _ -> false

(* [implies p q]: every non-NULL value satisfying [p] satisfies [q]. *)
let implies (p : Predicate.t) (q : Predicate.t) =
  if p = q then true
  else
    match p, q with
    | _, Predicate.Is_not_null ->
      (* every predicate except IS NULL rejects NULL *)
      p <> Predicate.Is_null
    | Predicate.Is_null, _ | _, Predicate.Is_null -> false
    | Predicate.Cmp (Predicate.Eq, v), _ -> Predicate.eval q v
    | Predicate.In_list vs, _ -> List.for_all (Predicate.eval q) vs
    | _, Predicate.Cmp (Predicate.Ne, v) ->
      (match int_range p, int_range q with
       | Some (lo, hi), _ ->
         (match v with Value.Int i -> i < lo || i > hi | _ -> false)
       | None, _ -> false)
    | _, _ when range_only q ->
      (match int_range p, int_range q with
       | Some (plo, phi), Some (qlo, qhi) -> qlo <= plo && phi <= qhi
       | _ -> false)
    | Predicate.Like (Predicate.Prefix a), Predicate.Like (Predicate.Prefix b) ->
      String.length b <= String.length a
      && String.sub a 0 (String.length b) = b
    | Predicate.Like (Predicate.Suffix a), Predicate.Like (Predicate.Suffix b) ->
      String.length b <= String.length a
      && String.sub a (String.length a - String.length b) (String.length b) = b
    | Predicate.Like (Predicate.Prefix a), Predicate.Like (Predicate.Contains b)
    | Predicate.Like (Predicate.Suffix a), Predicate.Like (Predicate.Contains b)
    | Predicate.Like (Predicate.Contains a), Predicate.Like (Predicate.Contains b)
      ->
      (* a contains b as a substring *)
      let la = String.length a and lb = String.length b in
      lb <= la
      && (let found = ref false in
          for i = 0 to la - lb do
            if (not !found) && String.sub a i lb = b then found := true
          done;
          !found)
    | _ -> false

(* Remove predicates implied by another kept predicate. Deterministic:
   process in sorted order, drop [q] when some other survivor implies it. *)
let reduce_preds preds =
  let preds = List.sort_uniq compare preds in
  let rec keep acc = function
    | [] -> List.rev acc
    | q :: rest ->
      let implied_elsewhere =
        List.exists (fun p -> p <> q && implies p q) (List.rev_append acc rest)
      in
      if implied_elsewhere then keep acc rest else keep (q :: acc) rest
  in
  keep [] preds

(* [preds_imply ps q]: the conjunction of [ps] implies [q] (pairwise test). *)
let preds_imply ps q = List.exists (fun p -> implies p q) ps

let preds_equivalent ps qs =
  List.for_all (preds_imply ps) qs && List.for_all (preds_imply qs) ps

(* ---- building the form ---- *)

module Uf = struct
  let create n = Array.init n Fun.id

  let rec find t i = if t.(i) = i then i else begin
    let r = find t t.(i) in
    t.(i) <- r;
    r
  end

  (* returns true when the union actually merged two classes *)
  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then false
    else begin
      if ra < rb then t.(rb) <- ra else t.(ra) <- rb;
      true
    end
end

let arity_of ~catalog (q : Query.t) rel =
  Schema.arity
    (Table.schema (Catalog.table_exn catalog q.Query.rels.(rel).Query.table))

let of_query_raw ~catalog (q : Query.t) =
  let n = Query.n_rels q in
  let arities = Array.init n (arity_of ~catalog q) in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- !total;
    total := !total + arities.(i)
  done;
  let pos (cr : Query.colref) = offsets.(cr.Query.rel) + cr.Query.col in
  let uf = Uf.create !total in
  let redundant = ref 0 in
  List.iter
    (fun { Query.l; r } ->
      if not (Uf.union uf (pos l) (pos r)) then incr redundant)
    q.Query.edges;
  (* dense variable ids per class root, in position order *)
  let var_of_root = Hashtbl.create 64 in
  let n_vars = ref 0 in
  let var_of_pos p =
    let root = Uf.find uf p in
    match Hashtbl.find_opt var_of_root root with
    | Some v -> v
    | None ->
      let v = !n_vars in
      incr n_vars;
      Hashtbl.add var_of_root root v;
      v
  in
  let atoms =
    Array.init n (fun i ->
        { table = q.Query.rels.(i).Query.table;
          args = Array.init arities.(i) (fun c -> var_of_pos (offsets.(i) + c)) })
  in
  let var_of_colref cr = atoms.(cr.Query.rel).args.(cr.Query.col) in
  let var_preds = Array.make !n_vars [] in
  List.iter
    (fun ({ Query.target; p } : Query.pred) ->
      let v = var_of_colref target in
      var_preds.(v) <- p :: var_preds.(v))
    q.Query.preds;
  Array.iteri (fun v ps -> var_preds.(v) <- reduce_preds ps) var_preds;
  let select =
    Array.of_list
      (List.map
         (function
           | Query.Count_star -> S_star
           | Query.Count_col cr -> S_count (var_of_colref cr)
           | Query.Min_col cr -> S_min (var_of_colref cr)
           | Query.Max_col cr -> S_max (var_of_colref cr)
           | Query.Sum_col cr -> S_sum (var_of_colref cr))
         q.Query.select)
  in
  {
    atoms;
    var_preds;
    select;
    n_vars = !n_vars;
    redundant_eqs = !redundant;
  }

(* ---- canonical renaming: WL-style color refinement ---- *)

(* Colors are dense integers recomputed per round by sorting structural
   keys, so the result depends only on the structure of the form, never on
   hashes or on input numbering (except as a final stable tie-break). *)

let select_role t v =
  let roles = ref [] in
  Array.iteri
    (fun i s ->
      let tag k = roles := (i, k) :: !roles in
      match s with
      | S_star -> ()
      | S_count w -> if w = v then tag 0
      | S_min w -> if w = v then tag 1
      | S_max w -> if w = v then tag 2
      | S_sum w -> if w = v then tag 3)
    t.select;
  List.rev !roles

let dense_ids keys =
  (* assign each distinct key a dense id by sorted order *)
  let sorted = List.sort_uniq compare keys in
  let tbl = Hashtbl.create (List.length sorted) in
  List.iteri (fun i k -> Hashtbl.add tbl k i) sorted;
  tbl

let canon t =
  let nv = t.n_vars and na = Array.length t.atoms in
  (* initial var colors: predicates + select roles *)
  let init_keys =
    List.init nv (fun v -> (t.var_preds.(v), select_role t v))
  in
  let tbl = dense_ids init_keys in
  let vcolor = Array.of_list (List.map (Hashtbl.find tbl) init_keys) in
  let acolor = Array.make na 0 in
  let rounds = nv + na + 2 in
  let refine () =
    (* atom colors from (table, arg var colors) *)
    let akeys =
      Array.to_list
        (Array.map
           (fun a -> (a.table, Array.to_list (Array.map (fun v -> vcolor.(v)) a.args)))
           t.atoms)
    in
    let atbl = dense_ids akeys in
    List.iteri (fun i k -> acolor.(i) <- Hashtbl.find atbl k) akeys;
    (* var colors from (old color, sorted occurrence multiset) *)
    let occs = Array.make nv [] in
    Array.iteri
      (fun i a ->
        Array.iteri (fun c v -> occs.(v) <- (acolor.(i), c) :: occs.(v)) a.args)
      t.atoms;
    let vkeys =
      List.init nv (fun v -> (vcolor.(v), List.sort compare occs.(v)))
    in
    let vtbl = dense_ids vkeys in
    let changed = ref false in
    List.iteri
      (fun v k ->
        let c = Hashtbl.find vtbl k in
        if vcolor.(v) <> c then changed := true;
        vcolor.(v) <- c)
      vkeys;
    !changed
  in
  let rec iterate i = if i < rounds && refine () then iterate (i + 1) in
  ignore (refine ());
  iterate 0;
  (* order atoms by final color, stable on the input index *)
  let order = Array.init na Fun.id in
  Array.sort
    (fun i j ->
      match Int.compare acolor.(i) acolor.(j) with
      | 0 -> Int.compare i j
      | d -> d)
    order;
  (* renumber vars by first occurrence scanning atoms in canonical order,
     then select positions (covers vars used only in aggregates) *)
  let rename = Array.make nv (-1) in
  let next = ref 0 in
  let touch v =
    if rename.(v) < 0 then begin
      rename.(v) <- !next;
      incr next
    end
  in
  Array.iter (fun i -> Array.iter touch t.atoms.(i).args) order;
  Array.iter
    (function
      | S_star -> ()
      | S_count v | S_min v | S_max v | S_sum v -> touch v)
    t.select;
  (* vars unreachable from atoms and select cannot exist by construction *)
  assert (!next = nv);
  let atoms =
    Array.map
      (fun i ->
        let a = t.atoms.(i) in
        { a with args = Array.map (fun v -> rename.(v)) a.args })
      order
  in
  let var_preds = Array.make nv [] in
  Array.iteri (fun v ps -> var_preds.(rename.(v)) <- ps) t.var_preds;
  let select =
    Array.map
      (function
        | S_star -> S_star
        | S_count v -> S_count rename.(v)
        | S_min v -> S_min rename.(v)
        | S_max v -> S_max rename.(v)
        | S_sum v -> S_sum rename.(v))
      t.select
  in
  { t with atoms; var_preds; select }

let of_query ~catalog q = canon (of_query_raw ~catalog q)

let equal a b =
  a.atoms = b.atoms && a.var_preds = b.var_preds && a.select = b.select
  && a.n_vars = b.n_vars

let redundancy t = t.redundant_eqs

(* ---- back to a Query.t (for the normalize fixpoint property) ---- *)

let to_query ~name t =
  let rels =
    Array.mapi
      (fun i a -> { Query.alias = Printf.sprintf "v%d" i; table = a.table })
      t.atoms
  in
  (* first occurrence of each var, scanning atoms in order *)
  let first = Array.make t.n_vars None in
  let occs = Array.make t.n_vars [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun c v ->
          let cr = { Query.rel = i; col = c } in
          if first.(v) = None then first.(v) <- Some cr;
          occs.(v) <- cr :: occs.(v))
        a.args)
    t.atoms;
  let first_exn v =
    match first.(v) with
    | Some cr -> cr
    | None -> invalid_arg "Cqnf.to_query: aggregate variable not in any atom"
  in
  let edges =
    Array.to_list occs
    |> List.concat_map (fun crs ->
           match List.rev crs with
           | [] | [ _ ] -> []
           | anchor :: rest ->
             List.map (fun cr -> { Query.l = anchor; r = cr }) rest)
  in
  let preds =
    List.concat
      (List.init t.n_vars (fun v ->
           List.map
             (fun p -> { Query.target = first_exn v; p })
             t.var_preds.(v)))
  in
  let select =
    Array.to_list
      (Array.map
         (function
           | S_star -> Query.Count_star
           | S_count v -> Query.Count_col (first_exn v)
           | S_min v -> Query.Min_col (first_exn v)
           | S_max v -> Query.Max_col (first_exn v)
           | S_sum v -> Query.Sum_col (first_exn v))
         t.select)
  in
  { Query.name; rels; preds; edges; select }

let normalize ~catalog (q : Query.t) =
  to_query ~name:q.Query.name (of_query ~catalog q)

(* ---- fingerprint: an injective string rendering of the canonical form ----

   The server's plan cache keys entries on this string, so two forms must
   produce the same fingerprint exactly when [equal] holds (redundant_eqs
   excluded, like [equal]). Every constructor is tagged and every string is
   length-prefixed, so no two distinct forms can collide by concatenation
   ambiguity. Equality of fingerprints of canonical forms is therefore the
   same relation as [equal] — the property test_server pins down in both
   directions. *)

let fingerprint t =
  let buf = Buffer.create 256 in
  let str s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  let int i = Buffer.add_string buf (string_of_int i); Buffer.add_char buf ';' in
  let value = function
    | Value.Null -> Buffer.add_char buf 'n'
    | Value.Int i -> Buffer.add_char buf 'i'; int i
    | Value.Str s -> Buffer.add_char buf 's'; str s
  in
  let op (o : Predicate.op) =
    Buffer.add_char buf
      (match o with
       | Predicate.Eq -> '=' | Predicate.Ne -> '!' | Predicate.Lt -> '<'
       | Predicate.Le -> 'l' | Predicate.Gt -> '>' | Predicate.Ge -> 'g')
  in
  let pred = function
    | Predicate.Cmp (o, v) -> Buffer.add_char buf 'C'; op o; value v
    | Predicate.Between (lo, hi) -> Buffer.add_char buf 'B'; int lo; int hi
    | Predicate.In_list vs ->
      Buffer.add_char buf 'I';
      int (List.length vs);
      List.iter value vs
    | Predicate.Like (Predicate.Prefix s) -> Buffer.add_char buf 'P'; str s
    | Predicate.Like (Predicate.Suffix s) -> Buffer.add_char buf 'S'; str s
    | Predicate.Like (Predicate.Contains s) -> Buffer.add_char buf 'K'; str s
    | Predicate.Is_null -> Buffer.add_char buf 'U'
    | Predicate.Is_not_null -> Buffer.add_char buf 'N'
  in
  int t.n_vars;
  int (Array.length t.atoms);
  Array.iter
    (fun a ->
      str a.table;
      int (Array.length a.args);
      Array.iter int a.args)
    t.atoms;
  Array.iter
    (fun ps ->
      int (List.length ps);
      List.iter pred ps)
    t.var_preds;
  int (Array.length t.select);
  Array.iter
    (function
      | S_star -> Buffer.add_char buf '*'
      | S_count v -> Buffer.add_char buf 'c'; int v
      | S_min v -> Buffer.add_char buf 'm'; int v
      | S_max v -> Buffer.add_char buf 'M'; int v
      | S_sum v -> Buffer.add_char buf '+'; int v)
    t.select;
  Buffer.contents buf
