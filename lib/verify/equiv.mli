(** Rewrite-equivalence prover: conjunctive-query containment and
    equivalence by homomorphism search (decidable for the engine's
    select-project-join fragment), and its application to re-optimization
    rewrite steps.

    Set containment follows the classic tableau argument: [Q1 ⊆ Q2] iff a
    homomorphism maps [Q2]'s canonical form into [Q1]'s. Because the
    engine's queries aggregate over the join result (COUNT/SUM are
    bag-sensitive), a rewrite step is only accepted as proved when the two
    forms are isomorphic — a bijective homomorphism with mutually-implying
    predicate sets — which is exactly bag equivalence for this fragment. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query
module Finding := Rdb_analysis.Finding

type verdict =
  | Bag_equal  (** isomorphic: equal under bag semantics — fully proved *)
  | Set_equal
      (** mutually contained but not proved isomorphic: equal as sets only;
          aggregates over duplicates may still differ *)
  | Not_equal of string

val hom : from_:Cqnf.t -> into:Cqnf.t -> bool
(** A homomorphism from [from_] into [into] exists (atoms to same-table
    atoms, positional variable unification, [into]'s predicates imply
    [from_]'s, select lists correspond). Proves [into ⊆ from_]. *)

val iso : Cqnf.t -> Cqnf.t -> bool
(** A bijective homomorphism with per-variable predicate equivalence:
    bag equivalence. *)

val contained : sub:Cqnf.t -> super:Cqnf.t -> bool
(** [sub ⊆ super] as sets of result tuples. *)

val equivalence : Cqnf.t -> Cqnf.t -> verdict

val inline_step :
  original:Query.t ->
  set:Relset.t ->
  temp_cols:Query.colref list ->
  temp_name:string ->
  Query.t ->
  Query.t
(** Undo a [Reopt.rewrite]: substitute the temp table's definition (the
    set's relations, internal edges and predicates) back into the rewritten
    query, producing a query over the original relation array. Raises
    {!Shape} when the rewritten query does not have the shape
    [kept relations + one temp table]. *)

exception Shape of string

val check_step :
  catalog:Catalog.t ->
  original:Query.t ->
  set:Relset.t ->
  temp_cols:Query.colref list ->
  temp_name:string ->
  Query.t ->
  Finding.t list
(** Verify one re-optimization step: inline the temp-table definition back
    and prove the result equivalent to the original ([rewrite-proved] info
    on success; [rewrite-not-equivalent] / [rewrite-bag-equivalence] /
    [rewrite-shape] errors otherwise), and reject rewrites that introduce
    duplicated or redundant join clauses ([rewrite-duplicate-edge],
    [rewrite-redundant-edge] errors) — semantically harmless but
    selectivity-corrupting, the exact PR 2 bug class. *)
