(** Seeded random SPJ query generator over any catalog with declared
    foreign keys. Join shapes follow the FK graph in either direction;
    predicate constants are sampled from the live column data, so generated
    queries mix empty and non-empty results. Deterministic for a given
    {!Rdb_util.Prng} state. *)

module Query := Rdb_query.Query

type t

val create : catalog:Catalog.t -> t
(** Derive the join rules from the schemas' foreign-key declarations.
    Raises [Invalid_argument] when the catalog declares none. *)

val gen : t -> Rdb_util.Prng.t -> name:string -> Query.t
(** One random tree-connected query of 2–5 relation occurrences (self-joins
    included), with 0–2 sampled predicates per relation and a COUNT-star-led
    aggregate list — the shape of the engine's whole SPJ fragment. *)

val rename_aliases : Query.t -> Query.t
(** A structure-preserving alias renaming, for the alias-invariance
    property test. *)
