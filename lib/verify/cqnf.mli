(** Conjunctive-query normal form for the engine's select-project-join
    fragment.

    Every (relation occurrence, column) position is a variable; equi-join
    edges merge variables via transitive closure, per-variable predicate
    sets are subsumption-reduced, and a WL-style color refinement assigns a
    canonical variable numbering and atom order. Aliases never enter the
    form, so canonicalization is alias-rename-invariant by construction;
    it is also idempotent (see the property tests). *)

module Query := Rdb_query.Query
module Predicate := Rdb_query.Predicate

type atom = { table : string; args : int array }
(** Full-arity atom: [args.(c)] is the variable at column [c]. Columns not
    constrained anywhere hold fresh singleton variables. *)

type sel =
  | S_star
  | S_count of int
  | S_min of int
  | S_max of int
  | S_sum of int

type t = {
  atoms : atom array;
  var_preds : Predicate.t list array;
  select : sel array;
  n_vars : int;
  redundant_eqs : int;
      (** input equality constraints beyond a spanning forest of the
          variable classes: duplicated edges, self-edges and cycle-closing
          edges. Harmless semantically, but each one double-counts its
          selectivity in the estimator. *)
}

val of_query : catalog:Catalog.t -> Query.t -> t
(** Build and canonicalize. The catalog supplies table arities; raises if a
    referenced table is missing (validate the query first). *)

val canon : t -> t
(** Canonical renaming (idempotent); [of_query] already applies it. *)

val equal : t -> t -> bool
(** Structural equality of canonical forms — a sound (but, for automorphic
    twin atoms, incomplete) equivalence fast-path; [redundant_eqs] is
    ignored. *)

val redundancy : t -> int

val fingerprint : t -> string
(** An injective string rendering of the canonical form: on canonical
    forms, fingerprint equality is exactly {!equal} ([redundant_eqs]
    excluded). The server's plan cache uses it as the key under which
    alias-renamed and syntactically reshuffled — but equivalent — queries
    share one cached plan. *)

val to_query : name:string -> t -> Query.t
(** Reconstruct a query: fresh [v<i>] aliases, one spanning star of edges
    per shared variable, predicates attached to the variable's first
    occurrence. *)

val normalize : catalog:Catalog.t -> Query.t -> Query.t
(** [to_query (of_query q)] — the canonicalization as a query-to-query
    rewrite. Idempotent and alias-rename-invariant. *)

val implies : Predicate.t -> Predicate.t -> bool
(** [implies p q]: every non-NULL value satisfying [p] satisfies [q].
    Sound, pairwise, incomplete. *)

val preds_imply : Predicate.t list -> Predicate.t -> bool

val preds_equivalent : Predicate.t list -> Predicate.t list -> bool

val reduce_preds : Predicate.t list -> Predicate.t list
(** Sort, dedupe, and drop predicates implied by another survivor. *)
