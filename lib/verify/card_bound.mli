(** Sound cardinality-bound propagation: [lo, hi] row-count intervals for
    every sub-join, derived only from facts the engine can prove —
    exact ANALYZE statistics (guarded by a row-count freshness check),
    declared unique keys (joining through one cannot multiply cardinality;
    equality on one matches at most one row) and declared NOT NULL foreign
    keys into unfiltered parents (which preserve lower bounds).

    Upper bounds use key absorption with exact MCV max frequencies:
    [ub(S) <= ub(S \ r) * dup(r)] minimized over every peeling choice,
    with disconnected remainders bounded by component products. Factors in
    multi-relation compositions are floored at one row, mirroring the
    estimator's own 1-row floor: the floor only raises the bound, so the
    true cardinality of any sub-join still provably lies inside the
    interval (the soundness tests check this against the brute-force
    oracle). *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query
module Db_stats := Rdb_stats.Db_stats
module Plan := Rdb_plan.Plan
module Finding := Rdb_analysis.Finding

type t
(** Per-query context; intervals are memoized per relation subset. *)

val create : catalog:Catalog.t -> stats:Db_stats.t -> Query.t -> t

val interval : t -> Relset.t -> float * float
(** [lo, hi] bounds on the rows of the sub-join over the set (its
    relations, their predicates, and every internal edge). Raises
    [Invalid_argument] on the empty set. *)

val upper : t -> Relset.t -> float

val clamp : t -> Relset.t -> float -> float
(** Clamp a point estimate into the interval — the "pessimistic" estimator
    mode. Sound bounds never move a true cardinality, only estimates. *)

val check_plan : t -> Plan.t -> Finding.t list
(** Compare every plan node's point estimate against the node's interval:
    [estimate-exceeds-bound] errors (the estimate is provably impossible),
    [estimate-below-bound] warnings. Tolerates the estimator's 1-row floor
    and half-a-row rounding slack. *)

val check_constraints : Catalog.t -> Finding.t list
(** Validate every declared unique / NOT NULL / foreign-key constraint
    against the actual table contents (full scans) — the bounds above are
    only as sound as these declarations. *)
