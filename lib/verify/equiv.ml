module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Finding = Rdb_analysis.Finding

(* Containment and equivalence of conjunctive queries by homomorphism
   search — decidable for the engine's select-project-join fragment.

   [hom ~from_ ~into] finds a mapping of [from_]'s atoms onto [into]'s
   atoms (same table, per-position variable unification) such that [into]'s
   predicates imply [from_]'s on every mapped variable, and select lists
   correspond positionally. Its existence proves every tuple of [into]
   satisfies [from_]: set-containment [into ⊆ from_].

   Mutual containment proves set equivalence. Our queries aggregate over
   the join result (COUNT/SUM are bag-sensitive), so [check_step] demands
   the stronger bag equivalence: an isomorphism — a bijective homomorphism
   whose matched variables carry mutually-implying predicate sets. *)

type verdict =
  | Bag_equal
  | Set_equal
  | Not_equal of string

(* Map each atom of [from_] to a distinct atom of [into] when [injective];
   unify args positionally into [h]. [pred_check] runs once a full mapping
   exists; it can reject and force backtracking. *)
let atom_search ~injective ~(from_ : Cqnf.t) ~(into : Cqnf.t) ~pred_check =
  let nf = Array.length from_.Cqnf.atoms in
  let ni = Array.length into.Cqnf.atoms in
  if injective && nf <> ni then false
  else begin
    let h = Array.make from_.Cqnf.n_vars (-1) in
    let used = Array.make ni false in
    let rec assign i =
      if i = nf then pred_check h
      else begin
        let a = from_.Cqnf.atoms.(i) in
        let try_target j =
          let b = into.Cqnf.atoms.(j) in
          if b.Cqnf.table <> a.Cqnf.table then false
          else if injective && used.(j) then false
          else begin
            (* unify a.args against b.args; record bindings for undo *)
            let bound = ref [] in
            let ok = ref true in
            Array.iteri
              (fun c v ->
                if !ok then begin
                  let w = b.Cqnf.args.(c) in
                  if h.(v) = -1 then begin
                    h.(v) <- w;
                    bound := v :: !bound
                  end
                  else if h.(v) <> w then ok := false
                end)
              a.Cqnf.args;
            let result =
              if !ok then begin
                used.(j) <- true;
                let r = assign (i + 1) in
                used.(j) <- false;
                r
              end
              else false
            in
            if not result then List.iter (fun v -> h.(v) <- -1) !bound;
            result
          end
        in
        let rec try_all j = j < ni && (try_target j || try_all (j + 1)) in
        try_all 0
      end
    in
    assign 0
  end

(* Positional select-list correspondence under the variable map. *)
let select_matches h (from_ : Cqnf.t) (into : Cqnf.t) =
  Array.length from_.Cqnf.select = Array.length into.Cqnf.select
  && Array.for_all2
       (fun sf si ->
         match sf, si with
         | Cqnf.S_star, Cqnf.S_star -> true
         | Cqnf.S_count v, Cqnf.S_count w
         | Cqnf.S_min v, Cqnf.S_min w
         | Cqnf.S_max v, Cqnf.S_max w
         | Cqnf.S_sum v, Cqnf.S_sum w -> h.(v) = w
         | _ -> false)
       from_.Cqnf.select into.Cqnf.select

let hom ~(from_ : Cqnf.t) ~(into : Cqnf.t) =
  atom_search ~injective:false ~from_ ~into ~pred_check:(fun h ->
      select_matches h from_ into
      && Array.for_all Fun.id
           (Array.mapi
              (fun v ps ->
                h.(v) = -1 (* variable only in select; select_matches covers it *)
                || List.for_all
                     (Cqnf.preds_imply into.Cqnf.var_preds.(h.(v)))
                     ps)
              from_.Cqnf.var_preds))

let iso (a : Cqnf.t) (b : Cqnf.t) =
  atom_search ~injective:true ~from_:a ~into:b ~pred_check:(fun h ->
      select_matches h a b
      && Array.for_all Fun.id
           (Array.mapi
              (fun v ps ->
                h.(v) = -1
                || Cqnf.preds_equivalent ps b.Cqnf.var_preds.(h.(v)))
              a.Cqnf.var_preds))

let contained ~sub ~super = hom ~from_:super ~into:sub

let equivalence (a : Cqnf.t) (b : Cqnf.t) =
  if Cqnf.equal a b || iso a b then Bag_equal
  else begin
    let ab = contained ~sub:a ~super:b in
    let ba = contained ~sub:b ~super:a in
    match ab, ba with
    | true, true -> Set_equal
    | true, false -> Not_equal "first query strictly contained in second"
    | false, true -> Not_equal "second query strictly contained in first"
    | false, false -> Not_equal "no containment in either direction"
  end

(* ---- re-optimization step inlining ---- *)

exception Shape of string

(* Undo [Reopt.rewrite]: map every reference into the rewritten query back
   to the original's numbering — kept relations through the keep-list,
   temp-table columns through [temp_cols] (the class representative each
   exposed column stands for) — and re-attach the constraints that were
   folded into the materialization (the set's internal edges and
   predicates). The result is a query over the original relation array
   whose equivalence to the original is exactly the correctness of the
   step. *)
let inline_step ~(original : Query.t) ~set ~temp_cols ~temp_name
    (q' : Query.t) =
  let n = Query.n_rels original in
  let keep =
    Array.of_list
      (List.filter (fun i -> not (Relset.mem i set)) (List.init n Fun.id))
  in
  let temp_idx = Array.length keep in
  if Query.n_rels q' <> temp_idx + 1 then
    raise
      (Shape
         (Printf.sprintf "rewritten query has %d relations, expected %d"
            (Query.n_rels q') (temp_idx + 1)));
  if q'.Query.rels.(temp_idx).Query.table <> temp_name then
    raise
      (Shape
         (Printf.sprintf "relation %d is %s, expected temp table %s" temp_idx
            q'.Query.rels.(temp_idx).Query.table temp_name));
  Array.iteri
    (fun i orig_idx ->
      if q'.Query.rels.(i).Query.table <> original.Query.rels.(orig_idx).Query.table
      then
        raise
          (Shape
             (Printf.sprintf "kept relation %d is %s, expected %s" i
                q'.Query.rels.(i).Query.table
                original.Query.rels.(orig_idx).Query.table)))
    keep;
  let temp_cols = Array.of_list temp_cols in
  let back (cr : Query.colref) =
    if cr.Query.rel = temp_idx then begin
      if cr.Query.col < 0 || cr.Query.col >= Array.length temp_cols then
        raise
          (Shape
             (Printf.sprintf "temp column %d out of range (%d exposed)"
                cr.Query.col (Array.length temp_cols)));
      temp_cols.(cr.Query.col)
    end
    else { cr with Query.rel = keep.(cr.Query.rel) }
  in
  let inside (cr : Query.colref) = Relset.mem cr.Query.rel set in
  {
    Query.name = original.Query.name ^ "~inlined";
    rels = original.Query.rels;
    preds =
      List.filter (fun (p : Query.pred) -> inside p.Query.target)
        original.Query.preds
      @ List.map
          (fun ({ Query.target; p } : Query.pred) ->
            { Query.target = back target; p })
          q'.Query.preds;
    edges =
      List.filter
        (fun { Query.l; r } -> inside l && inside r)
        original.Query.edges
      @ List.map
          (fun { Query.l; r } -> { Query.l = back l; r = back r })
          q'.Query.edges;
    select =
      List.map
        (function
          | Query.Count_star -> Query.Count_star
          | Query.Count_col cr -> Query.Count_col (back cr)
          | Query.Min_col cr -> Query.Min_col (back cr)
          | Query.Max_col cr -> Query.Max_col (back cr)
          | Query.Sum_col cr -> Query.Sum_col (back cr))
        q'.Query.select;
  }

(* Exact duplicates among the rewritten query's edges (same unordered
   column pair) — the PR 2 [Reopt.rewrite] bug: two crossing edges whose
   inside endpoints collapse to one temp column reappear as the same clause
   twice and double-count its selectivity. *)
let duplicate_edges (q : Query.t) =
  let seen = Hashtbl.create 16 in
  let dups = ref 0 in
  List.iter
    (fun { Query.l; r } ->
      let key = if l <= r then (l, r) else (r, l) in
      if Hashtbl.mem seen key then incr dups else Hashtbl.add seen key ())
    q.Query.edges;
  !dups

let check_step ~catalog ~(original : Query.t) ~set ~temp_cols ~temp_name
    (q' : Query.t) =
  match inline_step ~original ~set ~temp_cols ~temp_name q' with
  | exception Shape msg ->
    [ Finding.error ~code:"rewrite-shape"
        (Printf.sprintf "%s: rewrite does not have the expected shape: %s"
           original.Query.name msg) ]
  | inlined ->
    let cq_orig = Cqnf.of_query ~catalog original in
    let cq_inl = Cqnf.of_query ~catalog inlined in
    let structural =
      (let d = duplicate_edges q' in
       if d > 0 then
         [ Finding.error ~code:"rewrite-duplicate-edge"
             (Printf.sprintf
                "%s: rewrite introduced %d duplicated join clause(s) on %s \
                 (each double-counts its selectivity)"
                original.Query.name d temp_name) ]
       else [])
      @
      (let before = Cqnf.redundancy cq_orig in
       let after = Cqnf.redundancy cq_inl in
       if after > before then
         [ Finding.error ~code:"rewrite-redundant-edge"
             (Printf.sprintf
                "%s: rewrite raised redundant equality constraints from %d \
                 to %d"
                original.Query.name before after) ]
       else [])
    in
    let semantic =
      match equivalence cq_orig cq_inl with
      | Bag_equal ->
        [ Finding.info ~code:"rewrite-proved"
            (Printf.sprintf
               "%s: step %s proved equivalent to the original (bag \
                semantics, isomorphism)"
               original.Query.name temp_name) ]
      | Set_equal ->
        [ Finding.error ~code:"rewrite-bag-equivalence"
            (Printf.sprintf
               "%s: step %s is set-equivalent but not proved bag-equivalent \
                — aggregates may differ"
               original.Query.name temp_name) ]
      | Not_equal reason ->
        [ Finding.error ~code:"rewrite-not-equivalent"
            (Printf.sprintf "%s: step %s is not equivalent to the original: %s"
               original.Query.name temp_name reason) ]
    in
    structural @ semantic
