module Finding = Rdb_analysis.Finding

exception Verify_failed of Finding.t list

let () =
  Printexc.register_printer (function
    | Verify_failed fs ->
      Some (Printf.sprintf "Verify_failed:\n%s" (Finding.render fs))
    | _ -> None)

let enabled () =
  match Sys.getenv_opt "RDB_VERIFY" with
  | Some ("1" | "true") -> true
  | Some _ | None -> false

let fail_on_errors findings =
  match Finding.errors findings with
  | [] -> ()
  | errs -> raise (Verify_failed errs)

let check_plan_exn ~catalog ~stats q plan =
  let ctx = Card_bound.create ~catalog ~stats q in
  fail_on_errors (Card_bound.check_plan ctx plan)

let check_step_exn ~catalog ~original ~set ~temp_cols ~temp_name q' =
  fail_on_errors
    (Equiv.check_step ~catalog ~original ~set ~temp_cols ~temp_name q')

let install () =
  Rdb_plan.Optimizer.verify_hook :=
    Some
      (fun ~catalog ~estimator q plan ->
        check_plan_exn ~catalog
          ~stats:(Rdb_card.Estimator.db_stats estimator)
          q plan)
