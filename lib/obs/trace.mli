(** Nested timed spans over the whole pipeline (parse/bind → plan →
    re-optimization steps → execute), with a pluggable sink.

    The sink is resolved from the [RDB_TRACE] environment variable on
    first use: unset or empty disables tracing entirely (spans cost one
    mutexed read), ["stderr"] pretty-prints indented span lines, and any
    other value is a path written as JSON-lines — one object per span
    with [name], [kind], [domain], [depth], [start_ms], [dur_ms] and
    optional string [attrs]. Emission is serialized process-wide; span
    nesting depth is tracked per domain, so the pool's workers trace
    concurrently without interleaving. *)

type sink =
  | Null
  | Stderr
  | Jsonl of out_channel

val set_sink : sink -> unit
(** Override the environment-resolved sink (tests, embedders). A
    previously installed [Jsonl] channel is closed. *)

val enabled : unit -> bool

val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], recording a span around it (also when [f]
    raises). With the [Null] sink this is exactly [f ()]. *)

val event : ?attrs:(string * string) list -> string -> unit
(** A zero-duration point record at the current depth. *)

val flush : unit -> unit
