type stat = { count : int; sum : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;
  stats : (string * stat) list;
}

(* Domain-sharded registry, in the same spirit as the worker-private labs
   of [Rdb_harness.Runner]: each domain mutates only its own shard (one
   uncontended mutex per update, so TSan-clean), and readers merge every
   shard under the shard mutexes. The global lock is only taken to
   register a new domain's shard or to enumerate them. *)
type shard = {
  smu : Mutex.t;
  (* @guarded_by smu *)
  c : (string, int) Hashtbl.t;
  (* @guarded_by smu *)
  s : (string, stat) Hashtbl.t;
}

let registry_mu = Mutex.create ()

(* @guarded_by registry_mu *)
let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let sh = { smu = Mutex.create (); c = Hashtbl.create 16; s = Hashtbl.create 16 } in
      Mutex.protect registry_mu (fun () -> shards := sh :: !shards);
      sh)

(* @with_lock smu *)
let with_shard f =
  let sh = Domain.DLS.get shard_key in
  Mutex.protect sh.smu (fun () -> f sh)

(* @acquires smu *)
let incr ?(by = 1) name =
  with_shard (fun sh ->
      Hashtbl.replace sh.c name
        (by + Option.value ~default:0 (Hashtbl.find_opt sh.c name)))

(* @acquires smu *)
let observe name v =
  with_shard (fun sh ->
      let merged =
        match Hashtbl.find_opt sh.s name with
        | None -> { count = 1; sum = v; min = v; max = v }
        | Some t ->
          {
            count = t.count + 1;
            sum = t.sum +. v;
            min = Float.min t.min v;
            max = Float.max t.max v;
          }
      in
      Hashtbl.replace sh.s name merged)

let all_shards () = Mutex.protect registry_mu (fun () -> !shards)

(* @acquires smu *)
let snapshot () =
  let c : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let s : (string, stat) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun sh ->
      Mutex.protect sh.smu (fun () ->
          Hashtbl.iter
            (fun k v ->
              Hashtbl.replace c k
                (v + Option.value ~default:0 (Hashtbl.find_opt c k)))
            sh.c;
          Hashtbl.iter
            (fun k v ->
              let merged =
                match Hashtbl.find_opt s k with
                | None -> v
                | Some t ->
                  {
                    count = t.count + v.count;
                    sum = t.sum +. v.sum;
                    min = Float.min t.min v.min;
                    max = Float.max t.max v.max;
                  }
              in
              Hashtbl.replace s k merged)
            sh.s))
    (all_shards ());
  let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  { counters = sorted c; stats = sorted s }

(* @acquires smu *)
let reset () =
  List.iter
    (fun sh ->
      Mutex.protect sh.smu (fun () ->
          Hashtbl.reset sh.c;
          Hashtbl.reset sh.s))
    (all_shards ())

let counter snap name =
  Option.value ~default:0 (List.assoc_opt name snap.counters)

let diff_counters ~after ~before =
  List.filter_map
    (fun (k, v) ->
      let d = v - counter before k in
      if d = 0 then None else Some (k, d))
    after.counters

let to_json snap =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters) );
      ( "stats",
        Json.Obj
          (List.map
             (fun (k, (v : stat)) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int v.count);
                     ("sum", Json.Float v.sum);
                     ("min", Json.Float v.min);
                     ("max", Json.Float v.max);
                   ] ))
             snap.stats) );
    ]
