(** A dependency-free JSON value type: enough to render the trace sink's
    JSON-lines records and the metrics reports, plus a strict parser used
    by tests and the CI smoke job to validate what was written. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. NaN and infinite floats become [null]
    (JSON has no literal for them). *)

val parse_opt : string -> t option
(** Strict parse of one complete JSON value (surrounding whitespace
    allowed); [None] on any syntax error or trailing garbage. *)

val is_valid : string -> bool
(** [is_valid s] is [Option.is_some (parse_opt s)]. *)
