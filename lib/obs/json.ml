type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  (* JSON has no inf/nan literals; map them to null rather than emit an
     unparseable document. *)
  if Float.is_nan f || Float.abs f = infinity then
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.6g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* A minimal recursive-descent parser, used to validate the JSON this
   module (and the trace sink) emits — tests and the CI smoke job check
   well-formedness without an external JSON dependency. *)

exception Bad of int

let parse_opt s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail () = raise (Bad !pos) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c = if peek () = Some c then advance () else fail () in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail ();
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail ());
        (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail ();
           let hex = String.sub s !pos 4 in
           String.iter
             (function
               | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
               | _ -> fail ())
             hex;
           let cp = int_of_string ("0x" ^ hex) in
           (* decode to UTF-8 (surrogates pass through unpaired — this
              parser only validates, it need not reject lone halves) *)
           if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
           else if cp < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
             Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
             Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
           end;
           pos := !pos + 4
         | _ -> fail ());
        go ()
      | c when Char.code c < 0x20 -> fail ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail ()
    in
    (* integer part: '0' or [1-9][0-9]* — no leading zeros *)
    (match peek () with
     | Some '0' -> advance ()
     | Some ('1' .. '9') -> digits ()
     | _ -> fail ());
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with Some f -> Float f | None -> fail ()
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None ->
        (* magnitude beyond OCaml's int *)
        (match float_of_string_opt text with
         | Some f -> Float f
         | None -> fail ())
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail ()
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail ()
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail ();
    v
  with
  | v -> Some v
  | exception Bad _ -> None

let is_valid s = Option.is_some (parse_opt s)
