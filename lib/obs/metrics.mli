(** A domain-safe metrics registry: named monotonic counters and simple
    value distributions (count/sum/min/max), updated from any domain.

    The registry is sharded per domain — every update touches only the
    calling domain's shard under its own (uncontended) mutex, and
    {!snapshot} merges all shards — so the pool's workers record freely
    and the totals are exact at pool join, consistent with the
    determinism story of [Rdb_util.Pool] / [Rdb_harness.Runner].

    The pipeline records: [plan.built], [plan.dp_pairs] and the
    [plan.ms] distribution from the optimizer; [exec.queries],
    [exec.work], [exec.switches], [exec.budget_aborts] and
    [exec.deadline_aborts] from the executor; [reopt.steps] and
    [reopt.temp_rows] from the re-optimization loop. *)

type stat = { count : int; sum : float; min : float; max : float }

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  stats : (string * stat) list;    (** sorted by name *)
}

val incr : ?by:int -> string -> unit
val observe : string -> float -> unit

val snapshot : unit -> snapshot
(** Merge every domain's shard. Safe to call concurrently with updates;
    each shard is read atomically. *)

val reset : unit -> unit
(** Zero every shard (tests, per-run reports). *)

val counter : snapshot -> string -> int
(** Counter value in a snapshot, 0 when absent. *)

val diff_counters : after:snapshot -> before:snapshot -> (string * int) list
(** Counter deltas between two snapshots, omitting zero deltas — the
    per-experiment metrics block of the bench report. *)

val to_json : snapshot -> Json.t
