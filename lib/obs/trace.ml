type sink =
  | Null
  | Stderr
  | Jsonl of out_channel

(* One process-wide sink, resolved from RDB_TRACE on first use. All
   emission happens under [mu]: spans are coarse (plan / re-opt step /
   grid cell), so serializing the writes costs nothing measurable and
   keeps the JSON-lines file sane when the pool's domains trace
   concurrently. *)
let mu = Mutex.create ()

(* @guarded_by mu *)
let sink : sink option ref = ref None
let t0 = Unix.gettimeofday ()

let resolve_env () =
  match Sys.getenv_opt "RDB_TRACE" with
  | None | Some "" -> Null
  | Some "stderr" -> Stderr
  | Some path -> Jsonl (open_out path)

(* @with_lock mu *)
let with_mu f = Mutex.protect mu f

let current () =
  with_mu (fun () ->
      match !sink with
      | Some s -> s
      | None ->
        let s = resolve_env () in
        sink := Some s;
        s)

(* @requires mu *)
let close_current () =
  match !sink with
  | Some (Jsonl oc) -> close_out oc
  | Some (Null | Stderr) | None -> ()

let set_sink s =
  with_mu (fun () ->
      close_current ();
      sink := Some s)

let enabled () = match current () with Null -> false | Stderr | Jsonl _ -> true

let flush () =
  with_mu (fun () ->
      match !sink with
      | Some (Jsonl oc) -> Stdlib.flush oc
      | Some (Null | Stderr) | None -> ())

(* Span nesting depth is per-domain state: domains trace independently
   and the pretty-printer's indentation / the JSON depth field must not
   interleave across them. *)
(* @confined per-domain nesting depth via domain-local storage *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let record ~kind ~name ~depth ~start_ms ~dur_ms ~attrs =
  let domain = (Domain.self () :> int) in
  match current () with
  | Null -> ()
  | Stderr ->
    with_mu (fun () ->
        Printf.eprintf "[trace] %s%-*s %s %.3fms%s\n%!"
          (String.make (2 * depth) ' ')
          (Int.max 1 (24 - (2 * depth)))
          name kind dur_ms
          (match attrs with
           | [] -> ""
           | attrs ->
             "  "
             ^ String.concat " "
                 (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs)))
  | Jsonl oc ->
    let line =
      Json.to_string
        (Json.Obj
           ([
              ("name", Json.Str name);
              ("kind", Json.Str kind);
              ("domain", Json.Int domain);
              ("depth", Json.Int depth);
              ("start_ms", Json.Float start_ms);
              ("dur_ms", Json.Float dur_ms);
            ]
           @
           match attrs with
           | [] -> []
           | attrs ->
             [ ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)) ]))
    in
    with_mu (fun () ->
        output_string oc line;
        output_char oc '\n';
        Stdlib.flush oc)

let span ?(attrs = []) name f =
  match current () with
  | Null -> f ()
  | Stderr | Jsonl _ ->
    let d = Domain.DLS.get depth_key in
    let depth = !d in
    d := depth + 1;
    let start = Unix.gettimeofday () in
    let finish () =
      d := depth;
      record ~kind:"span" ~name ~depth
        ~start_ms:((start -. t0) *. 1000.0)
        ~dur_ms:((Unix.gettimeofday () -. start) *. 1000.0)
        ~attrs
    in
    (match f () with
     | v -> finish (); v
     | exception e ->
       finish ();
       raise e)

let event ?(attrs = []) name =
  match current () with
  | Null -> ()
  | Stderr | Jsonl _ ->
    let now = Unix.gettimeofday () in
    record ~kind:"event" ~name
      ~depth:!(Domain.DLS.get depth_key)
      ~start_ms:((now -. t0) *. 1000.0)
      ~dur_ms:0.0 ~attrs
