(** The query's join graph: relations as vertices, equi-join edges. Used by
    the optimizer (DPccp enumeration forbids cartesian products exactly as
    the paper's PostgreSQL baseline does), by the cardinality oracle (which
    materializes connected sub-joins) and by Table I (which counts the
    estimates an optimizer must make). *)

module Relset = Rdb_util.Relset

type t

val make : Query.t -> t

val n : t -> int

val neighbors_of : t -> int -> Relset.t
(** Vertices adjacent to a single vertex. *)

val neighbors : t -> Relset.t -> Relset.t
(** Vertices adjacent to (but outside) the set. *)

val is_connected : t -> Relset.t -> bool
(** The empty set is not connected; singletons are. *)

val components : t -> Relset.t -> Relset.t list
(** Connected components of the induced subgraph on the given set, ordered
    by smallest member. A connected set yields one component. *)

val removable : t -> Relset.t -> int
(** The largest-index relation whose removal keeps the (connected) set
    connected. This is the canonical decomposition both the estimator and
    the true-cardinality oracle peel subsets with, so that a perfect
    estimate for [S ∖ {r}] propagates into the estimate of [S] exactly as
    in the paper's perfect-(n) construction. Raises [Invalid_argument] on
    sets that are not connected or are empty. *)

val connected_subsets : t -> Relset.t list
(** Every connected subset, each exactly once, ordered by cardinality
    (ties broken arbitrarily but deterministically). For JOB-like graphs
    this is the set of sub-joins an estimator may be asked about. *)

val count_by_size : t -> int array
(** [count_by_size g].(k) = number of connected subsets with k relations
    (index 0 unused). Feeds Table I. *)

val to_dot : Query.t -> string
(** GraphViz rendering of the join graph (Figures 3 and 4). *)
