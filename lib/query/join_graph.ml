module Relset = Rdb_util.Relset

type t = { n : int; adj : Relset.t array }

let make (q : Query.t) =
  let n = Query.n_rels q in
  let adj = Array.make n Relset.empty in
  List.iter
    (fun { Query.l; r } ->
      if l.Query.rel <> r.Query.rel then begin
        adj.(l.Query.rel) <- Relset.add r.Query.rel adj.(l.Query.rel);
        adj.(r.Query.rel) <- Relset.add l.Query.rel adj.(r.Query.rel)
      end)
    q.Query.edges;
  { n; adj }

let n t = t.n

let neighbors_of t i = t.adj.(i)

let neighbors t s =
  Relset.diff (Relset.fold (fun i acc -> Relset.union t.adj.(i) acc) s Relset.empty) s

let is_connected t s =
  if Relset.is_empty s then false
  else begin
    let seed = Relset.singleton (Relset.min_elt s) in
    let rec grow frontier =
      let next = Relset.inter (Relset.union frontier (neighbors t frontier)) s in
      if Relset.equal next frontier then frontier else grow next
    in
    Relset.equal (grow seed) s
  end

let components t s =
  let rec grow frontier =
    let next = Relset.inter (Relset.union frontier (neighbors t frontier)) s in
    if Relset.equal next frontier then frontier else grow next
  in
  let rec peel rest acc =
    if Relset.is_empty rest then List.rev acc
    else
      let c = grow (Relset.singleton (Relset.min_elt rest)) in
      peel (Relset.diff rest c) (c :: acc)
  in
  peel s []

let removable t s =
  let rec scan = function
    | [] -> invalid_arg "Join_graph.removable: no removable relation"
    | i :: rest ->
      let s' = Relset.remove i s in
      if Relset.cardinal s = 1 || is_connected t s' then i else scan rest
  in
  scan (List.rev (Relset.to_list s))

(* EnumerateCsg of Moerkotte & Neumann (DPccp): every connected subgraph is
   produced exactly once. [x] is the exclusion set preventing duplicate
   emission. *)
let iter_connected_subsets t f =
  let rec enumerate_rec s x =
    let candidates = Relset.diff (neighbors t s) x in
    if not (Relset.is_empty candidates) then
      Relset.iter_subsets candidates (fun s' ->
          let s2 = Relset.union s s' in
          f s2;
          enumerate_rec s2 (Relset.union x candidates))
  in
  for i = t.n - 1 downto 0 do
    let s = Relset.singleton i in
    f s;
    enumerate_rec s (Relset.below (i + 1))
  done

let connected_subsets t =
  let acc = ref [] in
  iter_connected_subsets t (fun s -> acc := s :: !acc);
  List.sort
    (fun a b ->
      match Int.compare (Relset.cardinal a) (Relset.cardinal b) with
      | 0 -> Relset.compare a b
      | d -> d)
    !acc

let count_by_size t =
  let counts = Array.make (t.n + 1) 0 in
  iter_connected_subsets t (fun s ->
      let k = Relset.cardinal s in
      counts.(k) <- counts.(k) + 1);
  counts

let to_dot (q : Query.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" q.Query.name);
  Array.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s (%s)\"];\n" r.Query.alias
           r.Query.alias r.Query.table))
    q.Query.rels;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun { Query.l; r } ->
      let a = Int.min l.Query.rel r.Query.rel
      and b = Int.max l.Query.rel r.Query.rel in
      if not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.add seen (a, b) ();
        Buffer.add_string buf
          (Printf.sprintf "  %s -- %s;\n"
             (Query.rel_alias q l.Query.rel)
             (Query.rel_alias q r.Query.rel))
      end)
    q.Query.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
