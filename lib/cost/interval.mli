(** Closed floating-point intervals, and the interval extension of every
    {!Cost_model} operator.

    Every cost formula in {!Cost_model} is monotone (non-decreasing) in each
    of its cardinality inputs for non-negative parameters — a property the
    test suite checks — so the tightest sound interval extension is corner
    evaluation: the formula at all-lower-endpoints and at
    all-upper-endpoints. The sensitivity analyzer relies on this to
    propagate cardinality uncertainty through a plan tree and obtain exact
    per-node cost intervals rather than over-approximations. *)

type t = { lo : float; hi : float }

val point : float -> t
(** Degenerate interval [v, v]. *)

val make : float -> float -> t
(** Interval between the two values, in either order. *)

val add : t -> t -> t

val union : t -> t -> t
(** Smallest interval containing both. *)

val contains : t -> float -> bool
(** Within the interval, with half-a-row absolute plus 1e-9 relative slack
    (interval recomputation replays the optimizer's float expressions, which
    may associate differently). *)

val width : t -> float
(** [hi - lo]. *)

val ratio : t -> float
(** [hi / lo] with both endpoints floored at one row — the Q-error-flavoured
    spread of the interval. Always [>= 1]. *)

val to_string : t -> string
(** Compact rendering ["[lo, hi]"], integers when small, scientific
    otherwise. *)

(** {1 Interval cost operators}

    Mirrors of the {!Cost_model} formulas; each result is the exact image of
    the input box under the (monotone) formula. *)

val seq_scan : Cost_model.params -> rows:t -> npreds:int -> t
val index_scan : Cost_model.params -> matches:t -> npreds:int -> t
val hash_join : Cost_model.params -> build:t -> probe:t -> out:t -> t
val index_nested_loop : Cost_model.params -> outer:t -> out:t -> npreds:int -> t
val nested_loop : Cost_model.params -> outer:t -> inner:t -> out:t -> t
val sort : Cost_model.params -> rows:t -> t
val merge_join : Cost_model.params -> outer:t -> inner:t -> out:t -> t
