type t = { lo : float; hi : float }

let point v = { lo = v; hi = v }
let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let union a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let contains iv v =
  let slack x = (Float.abs x *. 1e-9) +. 0.5 in
  v >= iv.lo -. slack iv.lo && v <= iv.hi +. slack iv.hi

let width iv = iv.hi -. iv.lo

let ratio iv = Float.max 1.0 iv.hi /. Float.max 1.0 iv.lo

let to_string iv =
  let one v =
    if Float.abs v < 1e7 && Float.equal (Float.round v) v then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.3g" v
  in
  Printf.sprintf "[%s, %s]" (one iv.lo) (one iv.hi)

(* Corner evaluation: each Cost_model formula is monotone non-decreasing in
   every cardinality argument, so the all-lo and all-hi corners are the
   exact extrema of the formula over the input box. *)

let seq_scan p ~rows ~npreds =
  { lo = Cost_model.seq_scan p ~rows:rows.lo ~npreds;
    hi = Cost_model.seq_scan p ~rows:rows.hi ~npreds }

let index_scan p ~matches ~npreds =
  { lo = Cost_model.index_scan p ~matches:matches.lo ~npreds;
    hi = Cost_model.index_scan p ~matches:matches.hi ~npreds }

let hash_join p ~build ~probe ~out =
  { lo = Cost_model.hash_join p ~build:build.lo ~probe:probe.lo ~out:out.lo;
    hi = Cost_model.hash_join p ~build:build.hi ~probe:probe.hi ~out:out.hi }

let index_nested_loop p ~outer ~out ~npreds =
  { lo = Cost_model.index_nested_loop p ~outer:outer.lo ~out:out.lo ~npreds;
    hi = Cost_model.index_nested_loop p ~outer:outer.hi ~out:out.hi ~npreds }

let nested_loop p ~outer ~inner ~out =
  { lo = Cost_model.nested_loop p ~outer:outer.lo ~inner:inner.lo ~out:out.lo;
    hi = Cost_model.nested_loop p ~outer:outer.hi ~inner:inner.hi ~out:out.hi }

let sort p ~rows =
  { lo = Cost_model.sort p ~rows:rows.lo; hi = Cost_model.sort p ~rows:rows.hi }

let merge_join p ~outer ~inner ~out =
  { lo = Cost_model.merge_join p ~outer:outer.lo ~inner:inner.lo ~out:out.lo;
    hi = Cost_model.merge_join p ~outer:outer.hi ~inner:inner.hi ~out:out.hi }
