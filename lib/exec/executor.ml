module Relset = Rdb_util.Relset
module Int_vec = Rdb_util.Int_vec
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Plan = Rdb_plan.Plan
module Metrics = Rdb_obs.Metrics

type node_obs = {
  obs_set : Relset.t;
  obs_est : float;
  obs_actual : int;
  obs_label : string;
}

type result = {
  aggs : Value.t list;
  out_rows : int;
  work : int;
  peak_rows : int;
  elapsed_ms : float;
  observations : node_obs list;
  switches : int;
}

exception Work_budget_exceeded of { spent : int; elapsed_ms : float }

(* An intermediate relation: [width] base-table row ids per tuple, one per
   member of [rels] (in that order). *)
type inter = { rels : int array; width : int; data : int array; nrows : int }

type ctx = {
  catalog : Catalog.t;
  q : Query.t;
  tables : Table.t array;
  mutable work : int;
  budget : int option;
  deadline_ms : float option;
  mutable next_deadline_check : int;
  mutable deadline_stride : int;
  start : float;
  mutable obs : node_obs list;
  adaptive : bool;
  mutable switches : int;
  (* Resident row-slots (one rowid or key cell each): live intermediates
     plus the transient per-operator structures (hash build table, merge
     key arrays). [peak] is the high-water mark, updated at operator
     boundaries — the dynamic side of [Rdb_analysis.Resource]'s certified
     memory interval, so the two must charge identical quantities. *)
  mutable resident : int;
  mutable peak : int;
}

(* The deadline clock is read on a geometric schedule: the first check
   fires after [initial_deadline_stride] work units so that millisecond
   deadlines bite even on cheap plans, then the stride doubles up to
   [max_deadline_stride] so the gettimeofday call stays negligible on the
   plans the budget actually exists for. *)
let initial_deadline_stride = 1_024
let max_deadline_stride = 4_000_000

let now () = Unix.gettimeofday ()

let elapsed_ms ctx = (now () -. ctx.start) *. 1000.0

let spend ctx n =
  ctx.work <- ctx.work + n;
  (match ctx.budget with
   | Some b when ctx.work > b ->
     Metrics.incr "exec.budget_aborts";
     raise (Work_budget_exceeded { spent = ctx.work; elapsed_ms = elapsed_ms ctx })
   | Some _ | None -> ());
  match ctx.deadline_ms with
  | Some limit when ctx.work >= ctx.next_deadline_check ->
    ctx.deadline_stride <- Int.min (2 * ctx.deadline_stride) max_deadline_stride;
    ctx.next_deadline_check <- ctx.work + ctx.deadline_stride;
    let e = elapsed_ms ctx in
    if e > limit then begin
      Metrics.incr "exec.deadline_aborts";
      raise (Work_budget_exceeded { spent = ctx.work; elapsed_ms = e })
    end
  | Some _ | None -> ()

let slots inter = inter.nrows * inter.width

let alloc ctx n =
  ctx.resident <- ctx.resident + n;
  if ctx.resident > ctx.peak then ctx.peak <- ctx.resident

let release ctx n = ctx.resident <- ctx.resident - n

let pos_of_rel inter rel =
  let rec scan i =
    if i >= inter.width then invalid_arg "Executor: relation not in intermediate"
    else if inter.rels.(i) = rel then i
    else scan (i + 1)
  in
  scan 0

let observe ctx node inter label =
  ctx.obs <-
    {
      obs_set = Plan.rel_set node;
      obs_est = Plan.est_rows node;
      obs_actual = inter.nrows;
      obs_label = label;
    }
    :: ctx.obs

(* Predicate evaluation against one base-table row. *)
let row_satisfies ctx rel row =
  let tbl = ctx.tables.(rel) in
  List.for_all
    (fun (col, p) ->
      match Table.column tbl col with
      | Column.Ints cells -> Predicate.eval_int p cells.(row)
      | Column.Strs cells -> Predicate.eval_str p cells.(row))
    (Query.preds_of_cols ctx.q rel)

let scan_node ctx (s : Plan.scan) =
  let rel = s.Plan.scan_rel in
  let tbl = ctx.tables.(rel) in
  let out = Int_vec.create ~capacity:1024 () in
  (match s.Plan.access with
   | Plan.Seq_scan ->
     let n = Table.nrows tbl in
     spend ctx n;
     for row = 0 to n - 1 do
       if row_satisfies ctx rel row then Int_vec.push out row
     done
   | Plan.Index_scan { col; key } ->
     (match Catalog.index ctx.catalog ~table:(Table.name tbl) ~col with
      | None -> invalid_arg "Executor: index scan without index"
      | Some index ->
        let candidates = Hash_index.lookup index key in
        spend ctx (Array.length candidates);
        Array.iter
          (fun row -> if row_satisfies ctx rel row then Int_vec.push out row)
          candidates));
  let data = Int_vec.to_array out in
  { rels = [| rel |]; width = 1; data; nrows = Array.length data }

(* The value of (rel, col) for tuple [i] of an intermediate. *)
let cell ctx inter pos col i =
  let rowid = inter.data.((i * inter.width) + pos) in
  Table.int_cell ctx.tables.(inter.rels.(pos)) ~row:rowid ~col

let concat_rels a b = Array.append a.rels b.rels

let hash_join ctx (j : Plan.join) outer inner =
  let edges = j.Plan.join_edges in
  let okeys =
    Array.of_list
      (List.map (fun e -> (pos_of_rel outer e.Query.l.Query.rel, e.Query.l.Query.col)) edges)
  in
  let ikeys =
    Array.of_list
      (List.map (fun e -> (pos_of_rel inner e.Query.r.Query.rel, e.Query.r.Query.col)) edges)
  in
  let out = Int_vec.create ~capacity:4096 () in
  let emitted = ref 0 in
  let emit obase ibase =
    for c = 0 to outer.width - 1 do
      Int_vec.push out outer.data.(obase + c)
    done;
    for c = 0 to inner.width - 1 do
      Int_vec.push out inner.data.(ibase + c)
    done;
    incr emitted
  in
  (match okeys, ikeys with
   | [| (opos, ocol) |], [| (ipos, icol) |] ->
     let index = Hashtbl.create (Int.max 16 inner.nrows) in
     spend ctx inner.nrows;
     for i = 0 to inner.nrows - 1 do
       let key = cell ctx inner ipos icol i in
       if key <> Column.null_int then
         Hashtbl.replace index key
           ((i * inner.width)
            :: Option.value ~default:[] (Hashtbl.find_opt index key))
     done;
     spend ctx outer.nrows;
     for i = 0 to outer.nrows - 1 do
       let key = cell ctx outer opos ocol i in
       if key <> Column.null_int then
         match Hashtbl.find_opt index key with
         | Some bases ->
           spend ctx (List.length bases);
           List.iter (fun ibase -> emit (i * outer.width) ibase) bases
         | None -> ()
     done
   | _ ->
     let keys_of inter keys i =
       Array.map (fun (pos, col) -> cell ctx inter pos col i) keys
     in
     let index = Hashtbl.create (Int.max 16 inner.nrows) in
     spend ctx inner.nrows;
     for i = 0 to inner.nrows - 1 do
       let key = keys_of inner ikeys i in
       if not (Array.exists (fun v -> v = Column.null_int) key) then
         Hashtbl.replace index key
           ((i * inner.width)
            :: Option.value ~default:[] (Hashtbl.find_opt index key))
     done;
     spend ctx outer.nrows;
     for i = 0 to outer.nrows - 1 do
       let key = keys_of outer okeys i in
       if not (Array.exists (fun v -> v = Column.null_int) key) then
         match Hashtbl.find_opt index key with
         | Some bases ->
           spend ctx (List.length bases);
           List.iter (fun ibase -> emit (i * outer.width) ibase) bases
         | None -> ()
     done);
  let data = Int_vec.to_array out in
  {
    rels = concat_rels outer inner;
    width = outer.width + inner.width;
    data;
    nrows = !emitted;
  }

let index_nl ctx (j : Plan.join) outer inner_rel inner_col =
  let edges = j.Plan.join_edges in
  let key_edge, other_edges =
    match
      List.partition (fun e -> e.Query.r.Query.col = inner_col) edges
    with
    | e :: more, others -> (e, more @ others)
    | [], _ -> invalid_arg "Executor: index NL without key edge"
  in
  let tbl = ctx.tables.(inner_rel) in
  let index =
    match Catalog.index ctx.catalog ~table:(Table.name tbl) ~col:inner_col with
    | Some i -> i
    | None -> invalid_arg "Executor: index NL without index"
  in
  let opos_key = pos_of_rel outer key_edge.Query.l.Query.rel in
  let ocol_key = key_edge.Query.l.Query.col in
  let others =
    Array.of_list
      (List.map
         (fun e ->
           (pos_of_rel outer e.Query.l.Query.rel, e.Query.l.Query.col, e.Query.r.Query.col))
         other_edges)
  in
  let out = Int_vec.create ~capacity:4096 () in
  let emitted = ref 0 in
  spend ctx outer.nrows;
  for i = 0 to outer.nrows - 1 do
    let key = cell ctx outer opos_key ocol_key i in
    if key <> Column.null_int then begin
      let candidates = Hash_index.lookup index key in
      spend ctx (Array.length candidates);
      Array.iter
        (fun row ->
          let edges_ok =
            Array.for_all
              (fun (opos, ocol, icol) ->
                let ov = cell ctx outer opos ocol i in
                let iv = Table.int_cell tbl ~row ~col:icol in
                ov <> Column.null_int && ov = iv)
              others
          in
          if edges_ok && row_satisfies ctx inner_rel row then begin
            for c = 0 to outer.width - 1 do
              Int_vec.push out outer.data.((i * outer.width) + c)
            done;
            Int_vec.push out row;
            incr emitted
          end)
        candidates
    end
  done;
  let data = Int_vec.to_array out in
  {
    rels = Array.append outer.rels [| inner_rel |];
    width = outer.width + 1;
    data;
    nrows = !emitted;
  }

let merge_join ctx (j : Plan.join) outer inner =
  let edges = j.Plan.join_edges in
  let okeys =
    Array.of_list
      (List.map (fun e -> (pos_of_rel outer e.Query.l.Query.rel, e.Query.l.Query.col)) edges)
  in
  let ikeys =
    Array.of_list
      (List.map (fun e -> (pos_of_rel inner e.Query.r.Query.rel, e.Query.r.Query.col)) edges)
  in
  let extract inter keys =
    spend ctx inter.nrows;
    Array.init inter.nrows (fun i ->
        Array.map (fun (pos, col) -> cell ctx inter pos col i) keys)
  in
  let okey = extract outer okeys and ikey = extract inner ikeys in
  let non_null keys =
    let out = Int_vec.create ~capacity:1024 () in
    Array.iteri
      (fun i key ->
        if not (Array.exists (fun v -> v = Column.null_int) key) then
          Int_vec.push out i)
      keys;
    Int_vec.to_array out
  in
  let cmp_key (a : int array) (b : int array) =
    let rec go i =
      if i >= Array.length a then 0
      else
        match Int.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
    in
    go 0
  in
  let oidx = non_null okey and iidx = non_null ikey in
  let sort_cost n =
    let rec bits v acc = if v <= 1 then acc else bits (v lsr 1) (acc + 1) in
    n * (1 + bits n 0)
  in
  spend ctx (sort_cost (Array.length oidx));
  spend ctx (sort_cost (Array.length iidx));
  Array.sort (fun a b -> cmp_key okey.(a) okey.(b)) oidx;
  Array.sort (fun a b -> cmp_key ikey.(a) ikey.(b)) iidx;
  let out = Int_vec.create ~capacity:4096 () in
  let emitted = ref 0 in
  let emit oi ii =
    for c = 0 to outer.width - 1 do
      Int_vec.push out outer.data.((oi * outer.width) + c)
    done;
    for c = 0 to inner.width - 1 do
      Int_vec.push out inner.data.((ii * inner.width) + c)
    done;
    incr emitted
  in
  let no = Array.length oidx and ni = Array.length iidx in
  let i = ref 0 and k = ref 0 in
  while !i < no && !k < ni do
    let c = cmp_key okey.(oidx.(!i)) ikey.(iidx.(!k)) in
    if c < 0 then incr i
    else if c > 0 then incr k
    else begin
      (* equal-key groups: emit the cross product *)
      let key = okey.(oidx.(!i)) in
      let i_end = ref !i in
      while !i_end < no && cmp_key okey.(oidx.(!i_end)) key = 0 do incr i_end done;
      let k_end = ref !k in
      while !k_end < ni && cmp_key ikey.(iidx.(!k_end)) key = 0 do incr k_end done;
      spend ctx ((!i_end - !i) * (!k_end - !k));
      for a = !i to !i_end - 1 do
        for b = !k to !k_end - 1 do
          emit oidx.(a) iidx.(b)
        done
      done;
      i := !i_end;
      k := !k_end
    end
  done;
  let data = Int_vec.to_array out in
  {
    rels = concat_rels outer inner;
    width = outer.width + inner.width;
    data;
    nrows = !emitted;
  }

let nested_loop ctx (j : Plan.join) outer inner =
  let edges = j.Plan.join_edges in
  let conds =
    Array.of_list
      (List.map
         (fun e ->
           ( pos_of_rel outer e.Query.l.Query.rel,
             e.Query.l.Query.col,
             pos_of_rel inner e.Query.r.Query.rel,
             e.Query.r.Query.col ))
         edges)
  in
  let out = Int_vec.create ~capacity:4096 () in
  let emitted = ref 0 in
  for i = 0 to outer.nrows - 1 do
    spend ctx inner.nrows;
    for k = 0 to inner.nrows - 1 do
      let ok =
        Array.for_all
          (fun (opos, ocol, ipos, icol) ->
            let ov = cell ctx outer opos ocol i in
            ov <> Column.null_int && ov = cell ctx inner ipos icol k)
          conds
      in
      if ok then begin
        for c = 0 to outer.width - 1 do
          Int_vec.push out outer.data.((i * outer.width) + c)
        done;
        for c = 0 to inner.width - 1 do
          Int_vec.push out inner.data.((k * inner.width) + c)
        done;
        incr emitted
      end
    done
  done;
  let data = Int_vec.to_array out in
  {
    rels = concat_rels outer inner;
    width = outer.width + inner.width;
    data;
    nrows = !emitted;
  }

(* Cuttlefish-style adaptive operator selection (paper SS II-D): once the
   outer input's true size is known, a nested-loop-family join whose outer
   blew through its estimate is demoted to a hash join. Join ORDER stays
   fixed -- the limitation the paper notes for adaptive processing. *)
let adaptive_switch_factor = 8.0

let rec exec ctx node =
  match node with
  | Plan.Scan s ->
    let inter = scan_node ctx s in
    alloc ctx (slots inter);
    observe ctx node inter "Scan";
    inter
  | Plan.Join j ->
    let outer = exec ctx j.Plan.outer in
    let algo =
      match j.Plan.algo with
      | (Plan.Index_nl _ | Plan.Nested_loop)
        when ctx.adaptive
             && float_of_int outer.nrows
                > adaptive_switch_factor *. Plan.est_rows j.Plan.outer ->
        ctx.switches <- ctx.switches + 1;
        Metrics.incr "exec.switches";
        Plan.Hash_join
      | algo -> algo
    in
    let j = { j with Plan.algo } in
    (* Charge the operator's transient structures and the two inputs for
       the duration of the join, then keep only the output resident. The
       hash build table holds one entry per inner row; a merge join
       extracts one key cell per row on each side. *)
    let joined aux inner =
      alloc ctx aux;
      let inter =
        match j.Plan.algo with
        | Plan.Hash_join -> hash_join ctx j outer inner
        | Plan.Nested_loop -> nested_loop ctx j outer inner
        | Plan.Merge_join -> merge_join ctx j outer inner
        | Plan.Index_nl _ -> invalid_arg "Executor: index NL is not blocking"
      in
      alloc ctx (slots inter);
      release ctx (aux + slots outer + slots inner);
      inter
    in
    let inter =
      match j.Plan.algo with
      | Plan.Hash_join ->
        let inner = exec ctx j.Plan.inner in
        joined inner.nrows inner
      | Plan.Nested_loop ->
        let inner = exec ctx j.Plan.inner in
        joined 0 inner
      | Plan.Merge_join ->
        let inner = exec ctx j.Plan.inner in
        joined (outer.nrows + inner.nrows) inner
      | Plan.Index_nl { inner_col } ->
        let inner_rel =
          match j.Plan.inner with
          | Plan.Scan s -> s.Plan.scan_rel
          | Plan.Join _ -> invalid_arg "Executor: index NL over a join"
        in
        let inter = index_nl ctx j outer inner_rel inner_col in
        alloc ctx (slots inter);
        release ctx (slots outer);
        inter
    in
    observe ctx node inter (Plan.algo_name j.Plan.algo);
    inter

let make_ctx ?work_budget ?deadline_ms ?(adaptive = false) ~catalog ~query () =
  {
    catalog;
    q = query;
    tables =
      Array.map
        (fun (r : Query.rel) -> Catalog.table_exn catalog r.Query.table)
        query.Query.rels;
    work = 0;
    budget = work_budget;
    deadline_ms;
    next_deadline_check = initial_deadline_stride;
    deadline_stride = initial_deadline_stride;
    start = now ();
    obs = [];
    adaptive;
    switches = 0;
    resident = 0;
    peak = 0;
  }

let eval_aggs ctx inter =
  let fold_col (cr : Query.colref) init f =
    let pos = pos_of_rel inter cr.Query.rel in
    let tbl = ctx.tables.(inter.rels.(pos)) in
    let acc = ref init in
    for i = 0 to inter.nrows - 1 do
      let rowid = inter.data.((i * inter.width) + pos) in
      acc := f !acc (Table.value tbl ~row:rowid ~col:cr.Query.col)
    done;
    !acc
  in
  let extreme cr keep =
    fold_col cr Value.Null (fun best v ->
        if Value.is_null v then best
        else
          match best with
          | Value.Null -> v
          | b -> if keep (Value.compare v b) then v else b)
  in
  List.map
    (fun agg ->
      match agg with
      | Query.Count_star -> Value.Int inter.nrows
      | Query.Count_col cr ->
        Value.Int
          (fold_col cr 0 (fun acc v -> if Value.is_null v then acc else acc + 1))
      | Query.Min_col cr -> extreme cr (fun c -> c < 0)
      | Query.Max_col cr -> extreme cr (fun c -> c > 0)
      | Query.Sum_col cr ->
        Value.Int
          (fold_col cr 0 (fun acc v ->
               match v with
               | Value.Int i -> acc + i
               | Value.Null -> acc
               | Value.Str _ -> invalid_arg "SUM over a string column")))
    ctx.q.Query.select

let execute ?work_budget ?deadline_ms ?adaptive ~catalog ~query plan =
  let ctx = make_ctx ?work_budget ?deadline_ms ?adaptive ~catalog ~query () in
  let inter = exec ctx plan in
  let aggs = eval_aggs ctx inter in
  Metrics.incr "exec.queries";
  Metrics.incr ~by:ctx.work "exec.work";
  Metrics.observe "exec.peak_rows" (float_of_int ctx.peak);
  {
    aggs;
    out_rows = inter.nrows;
    work = ctx.work;
    peak_rows = ctx.peak;
    elapsed_ms = elapsed_ms ctx;
    observations = List.rev ctx.obs;
    switches = ctx.switches;
  }

type materialization = {
  mat_rows : Value.t array list;
  mat_work : int;
  mat_peak_rows : int;
  mat_elapsed_ms : float;
}

let materialize ?work_budget ?deadline_ms ~catalog ~query ~cols plan =
  let ctx = make_ctx ?work_budget ?deadline_ms ~catalog ~query () in
  let inter = exec ctx plan in
  (* The projected temp-table rows are resident alongside the final
     intermediate while they are built: one slot per projected cell. *)
  alloc ctx (inter.nrows * List.length cols);
  let sources =
    Array.of_list
      (List.map (fun (cr : Query.colref) -> (pos_of_rel inter cr.Query.rel, cr.Query.col)) cols)
  in
  let rows = ref [] in
  for i = inter.nrows - 1 downto 0 do
    let row =
      Array.map
        (fun (pos, col) ->
          let rowid = inter.data.((i * inter.width) + pos) in
          Table.value ctx.tables.(inter.rels.(pos)) ~row:rowid ~col)
        sources
    in
    rows := row :: !rows
  done;
  Metrics.incr ~by:ctx.work "exec.work";
  { mat_rows = !rows; mat_work = ctx.work; mat_peak_rows = ctx.peak;
    mat_elapsed_ms = elapsed_ms ctx }
