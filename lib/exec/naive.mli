(** The differential-testing oracle: a brute-force evaluator that computes
    query results from first principles — filter each relation by its
    predicates, then enumerate the cross product and keep the tuples on
    which every equi-join edge holds. No indexes, no statistics, no plan:
    nothing the optimizer or executor could get wrong is consulted, so any
    disagreement with {!Executor} is a bug in the engine under test.

    Enumeration walks relations in a connectivity order and prunes partial
    tuples as soon as a bound edge fails — the same result set as the
    literal cross-product-then-filter, reachable at test scale. Join
    semantics mirror the executor's: a NULL join key matches nothing. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query

type result = {
  aggs : Value.t list;  (** one value per aggregate, as {!Executor.result} *)
  out_rows : int;       (** tuples feeding the aggregates *)
}

val run : catalog:Catalog.t -> Query.t -> result
(** Evaluate the whole query. *)

val count : catalog:Catalog.t -> Query.t -> Relset.t -> int
(** Rows of the sub-join over the given relations: their predicates plus
    every edge internal to the set — exactly what a plan node covering the
    set must produce ([obs_actual]), since the optimizer attaches all
    crossing edges to each join. *)

val agrees :
  catalog:Catalog.t -> Query.t -> Executor.result -> (unit, string) Stdlib.result
(** Cross-check an executor result against the oracle: aggregates,
    [out_rows], and the [obs_actual] of every observed plan node. [Error]
    carries a human-readable description of the first mismatch. *)
