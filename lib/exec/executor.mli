(** The query executor: materializing, instrumented evaluation of physical
    plans. Intermediate results are vectors of base-table row ids, one per
    participating relation, so joins only ever shuffle integers and column
    values are fetched from the columnar base tables on demand.

    Every node records its true output cardinality — the information
    [EXPLAIN ANALYZE] gives the paper's re-optimization simulation — plus
    deterministic "work units" (rows scanned, probes, emits) that tests use
    instead of wall time. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query
module Plan := Rdb_plan.Plan

type node_obs = {
  obs_set : Relset.t;   (** relations covered by the node *)
  obs_est : float;      (** the optimizer's estimate *)
  obs_actual : int;     (** true rows produced *)
  obs_label : string;   (** operator name, for EXPLAIN ANALYZE output *)
}

type result = {
  aggs : Value.t list;   (** one value per aggregate in the SELECT list *)
  out_rows : int;        (** rows feeding the aggregates *)
  work : int;            (** deterministic work units *)
  peak_rows : int;       (** peak resident row-slots, see below *)
  elapsed_ms : float;    (** wall-clock execution time *)
  observations : node_obs list;  (** post-order, deepest join first *)
  switches : int;        (** adaptive operator demotions performed *)
}
(** [peak_rows] is the high-water mark of resident "row-slots" (one
    base-table rowid or extracted key cell each), sampled at operator
    boundaries: live intermediates are [nrows * width] slots, a hash join
    additionally holds one build-table entry per inner row while it runs,
    and a merge join one key cell per row on each side. This is the
    deterministic memory analog of [work], and the quantity
    [Rdb_analysis.Resource] certificates bound: certified executions
    (non-adaptive — a demotion changes the operator mix underneath the
    certificate) must observe [peak_rows] within the certified interval. *)

exception Work_budget_exceeded of { spent : int; elapsed_ms : float }
(** Raised when the optional work budget runs out: the executor's guard
    against catastrophic plans that would otherwise run for hours (the
    paper's >100x regressions, §V-D). *)

val execute :
  ?work_budget:int ->
  ?deadline_ms:float ->
  ?adaptive:bool ->
  catalog:Catalog.t ->
  query:Query.t ->
  Plan.t ->
  result
(** [work_budget] and [deadline_ms] both abort via
    {!Work_budget_exceeded}: the former deterministically, the latter by
    wall clock — checked on a geometric schedule starting after ~1k work
    units (so millisecond deadlines bite even on cheap plans) and backing
    off to every ~4M units. [adaptive] (default false)
    enables Cuttlefish-style runtime operator switching (§II-D): a
    nested-loop-family join whose outer input exceeds its estimate 8x is
    demoted to a hash join — join order stays fixed, the very limitation
    the paper contrasts with re-optimization. *)

type materialization = {
  mat_rows : Value.t array list;  (** row-major projection *)
  mat_work : int;
  mat_peak_rows : int;  (** as {!result.peak_rows}, including the projected
                            cells built alongside the final intermediate *)
  mat_elapsed_ms : float;
}

val materialize :
  ?work_budget:int ->
  ?deadline_ms:float ->
  catalog:Catalog.t ->
  query:Query.t ->
  cols:Query.colref list ->
  Plan.t ->
  materialization
(** Execute a plan and project its output onto the given column references
    — the body of the re-optimizer's [CREATE TEMPORARY TABLE]. *)
