module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate

type result = {
  aggs : Value.t list;
  out_rows : int;
}

let rel_table catalog (q : Query.t) rel =
  Catalog.table_exn catalog q.Query.rels.(rel).Query.table

(* Row ids of one relation surviving its own predicates. *)
let filtered_rows catalog q rel =
  let tbl = rel_table catalog q rel in
  let preds = Query.preds_of_cols q rel in
  let survives row =
    List.for_all
      (fun (col, p) ->
        match Table.column tbl col with
        | Column.Ints cells -> Predicate.eval_int p cells.(row)
        | Column.Strs cells -> Predicate.eval_str p cells.(row))
      preds
  in
  let out = ref [] in
  for row = Table.nrows tbl - 1 downto 0 do
    if survives row then out := row :: !out
  done;
  Array.of_list !out

(* A connectivity order over the set: start at the smallest filtered
   relation, repeatedly append a relation joined to the ones already
   placed (smallest first), falling back to any remaining relation when
   the set is disconnected. Pure pruning — the enumerated tuple set is
   the filtered cross product either way. *)
let enum_order (q : Query.t) s nrows_of =
  let joined_to bound i =
    List.exists
      (fun { Query.l; r } ->
        (l.Query.rel = i && Relset.mem r.Query.rel bound)
        || (r.Query.rel = i && Relset.mem l.Query.rel bound))
      q.Query.edges
  in
  let smallest = function
    | [] -> None
    | c :: rest ->
      Some (List.fold_left (fun b i -> if nrows_of i < nrows_of b then i else b) c rest)
  in
  match Relset.to_list s with
  | [] -> []
  | members ->
    let start = Option.get (smallest members) in
    let rec grow bound acc remaining =
      match remaining with
      | [] -> List.rev acc
      | _ ->
        let connected, rest = List.partition (joined_to bound) remaining in
        let next =
          match smallest connected with
          | Some i -> i
          | None -> Option.get (smallest rest)
        in
        grow (Relset.add next bound) (next :: acc)
          (List.filter (fun i -> i <> next) remaining)
    in
    grow (Relset.singleton start)  [ start ]
      (List.filter (fun i -> i <> start) members)

(* Enumerate every joined tuple of the sub-query over [s], calling
   [f chosen] with [chosen.(rel)] the row id bound for each member. *)
let iter_tuples catalog (q : Query.t) s f =
  let n = Query.n_rels q in
  let tables = Array.init n (rel_table catalog q) in
  let rows = Array.make n [||] in
  Relset.iter (fun rel -> rows.(rel) <- filtered_rows catalog q rel) s;
  let order = enum_order q s (fun rel -> Array.length rows.(rel)) in
  (* Per level: the edges internal to [s] connecting the level's relation
     to relations placed earlier, as (own column, other endpoint). *)
  let levels =
    let rec build bound = function
      | [] -> []
      | rel :: rest ->
        let checks =
          List.filter_map
            (fun { Query.l; r } ->
              if l.Query.rel = rel && Relset.mem r.Query.rel bound then
                Some (l.Query.col, r)
              else if r.Query.rel = rel && Relset.mem l.Query.rel bound then
                Some (r.Query.col, l)
              else None)
            q.Query.edges
        in
        (rel, checks) :: build (Relset.add rel bound) rest
    in
    build Relset.empty order
  in
  let chosen = Array.make n (-1) in
  let rec go = function
    | [] -> f chosen
    | (rel, checks) :: deeper ->
      Array.iter
        (fun row ->
          let ok =
            List.for_all
              (fun (col, (other : Query.colref)) ->
                let mine = Table.int_cell tables.(rel) ~row ~col in
                let theirs =
                  Table.int_cell tables.(other.Query.rel)
                    ~row:chosen.(other.Query.rel) ~col:other.Query.col
                in
                mine <> Column.null_int
                && theirs <> Column.null_int
                && mine = theirs)
              checks
          in
          if ok then begin
            chosen.(rel) <- row;
            go deeper;
            chosen.(rel) <- -1
          end)
        rows.(rel)
  in
  go levels

let count ~catalog q s =
  let n = ref 0 in
  iter_tuples catalog q s (fun _ -> incr n);
  !n

let run ~catalog (q : Query.t) =
  let tables = Array.init (Query.n_rels q) (rel_table catalog q) in
  let value_of chosen (cr : Query.colref) =
    Table.value tables.(cr.Query.rel) ~row:chosen.(cr.Query.rel) ~col:cr.Query.col
  in
  (* One mutable accumulator per aggregate, same semantics as the
     executor: COUNT(col) skips NULLs, MIN/MAX skip NULLs, SUM skips
     NULLs and requires integers. *)
  let out_rows = ref 0 in
  let extremes = Hashtbl.create 4 in
  let ints = Hashtbl.create 4 in
  List.iteri
    (fun i agg ->
      match agg with
      | Query.Min_col _ | Query.Max_col _ -> Hashtbl.replace extremes i (ref Value.Null)
      | Query.Count_star | Query.Count_col _ | Query.Sum_col _ ->
        Hashtbl.replace ints i (ref 0))
    q.Query.select;
  iter_tuples catalog q (Query.all_rels q) (fun chosen ->
      incr out_rows;
      List.iteri
        (fun i agg ->
          match agg with
          | Query.Count_star -> incr (Hashtbl.find ints i)
          | Query.Count_col cr ->
            if not (Value.is_null (value_of chosen cr)) then
              incr (Hashtbl.find ints i)
          | Query.Sum_col cr ->
            (match value_of chosen cr with
             | Value.Int v ->
               let acc = Hashtbl.find ints i in
               acc := !acc + v
             | Value.Null -> ()
             | Value.Str _ -> invalid_arg "Naive: SUM over a string column")
          | Query.Min_col cr | Query.Max_col cr ->
            let v = value_of chosen cr in
            if not (Value.is_null v) then begin
              let best = Hashtbl.find extremes i in
              let keep =
                match agg with Query.Min_col _ -> ( < ) | _ -> ( > )
              in
              match !best with
              | Value.Null -> best := v
              | b -> if keep (Value.compare v b) 0 then best := v
            end)
        q.Query.select);
  let aggs =
    List.mapi
      (fun i agg ->
        match agg with
        | Query.Min_col _ | Query.Max_col _ -> !(Hashtbl.find extremes i)
        | Query.Count_star | Query.Count_col _ | Query.Sum_col _ ->
          Value.Int !(Hashtbl.find ints i))
      q.Query.select
  in
  { aggs; out_rows = !out_rows }

let agrees ~catalog q (res : Executor.result) =
  let expected = run ~catalog q in
  if res.Executor.out_rows <> expected.out_rows then
    Error
      (Printf.sprintf "%s: out_rows %d (executor) vs %d (oracle)"
         q.Query.name res.Executor.out_rows expected.out_rows)
  else if
    not (List.equal Value.equal res.Executor.aggs expected.aggs)
  then
    Error
      (Printf.sprintf "%s: aggregates [%s] (executor) vs [%s] (oracle)"
         q.Query.name
         (String.concat "; " (List.map Value.to_string res.Executor.aggs))
         (String.concat "; " (List.map Value.to_string expected.aggs)))
  else
    List.fold_left
      (fun acc (obs : Executor.node_obs) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let actual = count ~catalog q obs.Executor.obs_set in
          if actual <> obs.Executor.obs_actual then
            Error
              (Printf.sprintf
                 "%s: node %s over {%s}: %d rows (executor) vs %d (oracle)"
                 q.Query.name obs.Executor.obs_label
                 (String.concat ","
                    (List.map string_of_int (Relset.to_list obs.Executor.obs_set)))
                 obs.Executor.obs_actual actual)
          else Ok ())
      (Ok ()) res.Executor.observations
