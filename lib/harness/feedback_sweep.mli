(** The feedback sweep — a Table-V-style comparison of LEO-style
    cardinality correction against the paper's §IV-E warning.

    Two learning passes run first (the default workload, then a
    re-optimizing pass whose materializations pay for true cardinalities),
    after which the store is frozen and the workload is measured under
    {default, naive feedback, gated feedback, perfect-(n)}. Naive feedback
    serves every fresh correction — the configuration the paper shows
    picking worse plans on partially-corrected queries; gated feedback
    suppresses corrections that could move a flip-fragile join.

    The report also accounts for planning work: DPccp pair counts must be
    identical across estimation modes (enumeration is estimate-
    independent), and the number of store probes during naive planning is
    bounded by the DP work — the guard against the old eager
    every-connected-subset sweep. *)

type row = {
  fs_query : string;
  fs_rels : int;
  fs_default : Runner.measurement;
  fs_naive : Runner.measurement;
  fs_gated : Runner.measurement;
  fs_perfect : Runner.measurement;
}

type report = {
  fr_perfect_n : int;
  fr_reopt_learn : float;    (** Q-error trigger of the re-opt learning pass *)
  fr_store_size : int;       (** corrections remembered after learning *)
  fr_rows : row list;        (** one per query, workload order *)
  fr_naive_regressions : (string * float) list;
      (** queries where naive feedback is materially worse than default,
          with the work ratio *)
  fr_naive_improvements : (string * float) list;
  fr_gated_regressions : (string * float) list;
      (** must be empty: the gate's whole point *)
  fr_gated_improvements : (string * float) list;
  fr_default_pairs : int;    (** DPccp pairs planning the workload *)
  fr_naive_pairs : int;
  fr_gated_pairs : int;
  fr_naive_lookups : int;    (** store probes during naive planning *)
  fr_lookup_bound : int;     (** [2*pairs + 2*rels]: demand-driven ceiling *)
}

val material_ratio : float
val material_floor : int
(** "Materially worse" means: capped when the baseline finished, or
    [>= material_ratio] times the baseline's work with an absolute gap of
    at least [material_floor] units. *)

val materially_worse : Runner.measurement -> Runner.measurement -> bool
val work_ratio : Runner.measurement -> Runner.measurement -> float

val run : ?jobs:int -> ?perfect_n:int -> ?reopt_learn:float -> Runner.lab -> report
(** Learn, freeze, measure. [perfect_n] (default 4) sizes the perfect-(n)
    yardstick; [reopt_learn] (default 32) is the learning pass's trigger
    threshold. *)
