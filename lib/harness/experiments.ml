module Relset = Rdb_util.Relset
module Pretty = Rdb_util.Pretty
module Stat_utils = Rdb_util.Stat_utils
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Estimator = Rdb_card.Estimator
module Estimate_log = Rdb_card.Estimate_log
module Oracle = Rdb_card.Oracle
module Plan = Rdb_plan.Plan
module Optimizer = Rdb_plan.Optimizer
module Executor = Rdb_exec.Executor
module Session = Rdb_core.Session
module Reopt = Rdb_core.Reopt
module Unparse = Rdb_sql.Unparse

let fmt_total ms = Printf.sprintf "%.2f" (ms /. 1000.0)

(* ---- Table I ---- *)

let table1 lab =
  let log = Estimate_log.create () in
  List.iter
    (fun q ->
      let prepared = Runner.prepared_of lab q in
      let estimator =
        Estimator.create ~log ~mode:Estimator.Default
          ~catalog:(Session.catalog (Runner.session lab))
          ~stats:(Session.stats (Runner.session lab))
          q
      in
      ignore
        (Optimizer.plan ~space:(Session.space prepared)
           ~catalog:(Session.catalog (Runner.session lab))
           ~estimator q))
    (Runner.queries lab);
  let rows =
    List.map
      (fun (size, count) -> [ string_of_int size; string_of_int count ])
      (Estimate_log.counts log)
  in
  Pretty.heading "Table I: cardinality estimates on joins of N tables"
  ^ "\n"
  ^ Pretty.table ~headers:[ "# tables in join"; "# estimates" ] rows
  ^ Printf.sprintf "\ntotal estimates: %d\n" (Estimate_log.total log)

(* ---- relative-runtime buckets (Tables II and VI) ---- *)

let bucket_labels =
  [ "0.1 - 0.8"; "0.8 - 1.2"; "1.2 - 2.0"; "2.0 - 5.0"; "> 5.0" ]

let bucket_of ratio =
  if ratio < 0.8 then 0
  else if ratio < 1.2 then 1
  else if ratio < 2.0 then 2
  else if ratio < 5.0 then 3
  else 4

let relative_table lab ~config ~title =
  let perfect = Runner.run_workload lab Runner.Perfect_all in
  let subject = Runner.run_workload lab config in
  let counts = Array.make 5 0 in
  List.iter2
    (fun (s : Runner.measurement) (p : Runner.measurement) ->
      (* Floor very fast queries so ratios stay meaningful. *)
      let ratio =
        Float.max 0.05 s.Runner.m_exec_ms /. Float.max 0.05 p.Runner.m_exec_ms
      in
      let b = bucket_of ratio in
      counts.(b) <- counts.(b) + 1)
    subject perfect;
  let rows =
    List.mapi
      (fun i label -> [ label; string_of_int counts.(i) ])
      bucket_labels
  in
  Pretty.heading title ^ "\n"
  ^ Pretty.table ~headers:[ "relative runtime"; "number of queries" ] rows
  ^ "\n"

let table2 lab =
  relative_table lab ~config:Runner.Default
    ~title:
      "Table II: JOB query execution time with PostgreSQL-style estimation relative to perfect-(17)"

let table6 lab =
  relative_table lab ~config:(Runner.Reopt 32.0)
    ~title:
      "Table VI: JOB query execution time with re-optimization relative to perfect-(17)"

(* ---- Table III ---- *)

let table3 () =
  let rows =
    List.map
      (fun (size, count) -> [ string_of_int size; string_of_int count ])
      (Rdb_imdb.Job_queries.distribution ())
  in
  Pretty.heading "Table III: number of queries with a given number of tables"
  ^ "\n"
  ^ Pretty.table ~headers:[ "# tables"; "# queries" ] rows
  ^ "\n"

(* ---- Figure 1 ---- *)

let fig1_configs =
  [
    Runner.Default;
    Runner.Perfect 3;
    Runner.Perfect 4;
    Runner.Reopt 32.0;
    Runner.Perfect_all;
  ]

let top20_queries lab =
  let default = Runner.run_workload lab Runner.Default in
  let by_exec =
    List.sort
      (fun (a : Runner.measurement) b ->
        Float.compare b.Runner.m_exec_ms a.Runner.m_exec_ms)
      default
  in
  List.filteri (fun i _ -> i < 20) by_exec
  |> List.map (fun (m : Runner.measurement) -> m.Runner.m_query)

let fig1 lab =
  let top20 = top20_queries lab in
  let rows =
    List.map
      (fun config ->
        let ms =
          List.map
            (fun name -> Runner.run_query lab config (Runner.query lab name))
            top20
        in
        [
          Runner.config_name config;
          fmt_total (Runner.total_plan_ms ms);
          fmt_total (Runner.total_exec_ms ms);
          fmt_total (Runner.total_plan_ms ms +. Runner.total_exec_ms ms);
        ])
      fig1_configs
  in
  Pretty.heading
    "Figure 1: top-20 longest-running queries, planning + execution (seconds)"
  ^ "\n"
  ^ Printf.sprintf "top-20 queries (by default execution): %s\n"
      (String.concat " " top20)
  ^ Pretty.table
      ~headers:[ "configuration"; "plan (s)"; "exec (s)"; "total (s)" ]
      rows
  ^ "\n"

(* ---- Figure 2 ---- *)

let max_rels lab =
  List.fold_left
    (fun acc q -> Int.max acc (Query.n_rels q))
    0 (Runner.queries lab)

let perfect_config lab n =
  if n = 0 then Runner.Default
  else if n >= max_rels lab then Runner.Perfect_all
  else Runner.Perfect n

let fig2 lab =
  let points =
    List.map
      (fun n ->
        let ms = Runner.run_workload lab (perfect_config lab n) in
        ( (if n = 0 then "default" else Printf.sprintf "perfect-%d" n),
          (Runner.total_plan_ms ms +. Runner.total_exec_ms ms) /. 1000.0 ))
      (List.init (max_rels lab + 1) Fun.id)
  in
  Pretty.heading
    "Figure 2: total planning + execution (s) with perfect-(n) estimates"
  ^ "\n"
  ^ Pretty.series ~title:"seconds by estimate quality" points
  ^ "\n"

(* ---- Figures 3 and 4 ---- *)

let fig3_4 lab =
  let dot name =
    let q = Runner.query lab name in
    Printf.sprintf "join graph of %s:\n%s" name
      (Join_graph.to_dot q)
  in
  Pretty.heading "Figures 3 and 4: join graphs of 6d and 18a (GraphViz)"
  ^ "\n" ^ dot "6d" ^ "\n" ^ dot "18a"

(* ---- Tables IV/V + the Nasdaq skew example ---- *)

let skew_example () =
  let prng = Rdb_util.Prng.create 7 in
  let n_companies = 2000 and n_trades = 200_000 in
  let symbols =
    Array.init n_companies (fun i ->
        if i = 0 then "APPL"
        else if i = 1 then "GOOG"
        else Printf.sprintf "S%04d" i)
  in
  let catalog = Catalog.create () in
  let company_schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.Ty_int };
        { Schema.name = "symbol"; ty = Value.Ty_str };
        { Schema.name = "company"; ty = Value.Ty_str };
      ]
  in
  Catalog.add_table catalog
    (Table.create ~name:"company" ~schema:company_schema
       [|
         Column.Ints (Array.init n_companies (fun i -> i + 1));
         Column.Strs symbols;
         Column.Strs (Array.map (fun s -> s ^ " Inc.") symbols);
       |]);
  let zipf = Rdb_util.Zipf.create ~n:n_companies ~s:1.1 in
  let company_id =
    Array.init n_trades (fun _ -> Rdb_util.Zipf.sample zipf prng + 1)
  in
  let trades_schema =
    Schema.make
      [
        { Schema.name = "company_id"; ty = Value.Ty_int };
        { Schema.name = "shares"; ty = Value.Ty_int };
      ]
  in
  Catalog.add_table catalog
    (Table.create ~name:"trades" ~schema:trades_schema
       [|
         Column.Ints company_id;
         Column.Ints (Array.init n_trades (fun _ -> 10 * (1 + Rdb_util.Prng.int prng 1000)));
       |]);
  Catalog.add_index catalog ~table:"company" ~col:0;
  Catalog.add_index catalog ~table:"trades" ~col:0;
  let session = Session.create catalog in
  Session.analyze session;
  let sql =
    "SELECT COUNT(*) FROM company AS c, trades AS tr \
     WHERE c.symbol = 'APPL' AND c.id = tr.company_id;"
  in
  let q =
    match
      Rdb_sql.Binder.bind catalog ~name:"nasdaq" (Rdb_sql.Parser.parse sql)
    with
    | Ok q -> q
    | Error msg -> invalid_arg msg
  in
  let prepared = Session.prepare session q in
  let estimator =
    Estimator.create ~mode:Estimator.Default ~catalog
      ~stats:(Session.stats session) q
  in
  let full = Relset.full 2 in
  let est = Estimator.card estimator full in
  let actual = Oracle.true_card (Session.oracle prepared) full in
  Pretty.heading "Tables IV/V + §IV-C: skew across a join (Nasdaq example)"
  ^ "\n"
  ^ Printf.sprintf
      "companies: %d rows (APPL is the most traded)\ntrades: %d rows, Zipf-distributed volume\n\n%s\n\nestimated join cardinality: %.0f rows\nactual join cardinality:    %d rows\nunder-estimation factor:    %.0fx\n"
      n_companies n_trades sql est actual
      (float_of_int actual /. Float.max 1.0 est)

(* ---- Figure 5: LEO-style iterative improvement ---- *)

let fig5_threshold = 32.0

let fig5_one lab name =
  let q = Runner.query lab name in
  let prepared = Runner.prepared_of lab q in
  let session = Runner.session lab in

  let oracle = Session.oracle prepared in
  Oracle.ensure_up_to oracle (Query.n_rels q);
  let overrides : (Relset.t, float) Hashtbl.t = Hashtbl.create 32 in
  let perfect =
    Runner.run_query lab Runner.Perfect_all q
  in
  let rec subtree_sets plan acc =
    match plan with
    | Plan.Scan s -> Relset.singleton s.Plan.scan_rel :: acc
    | Plan.Join j ->
      let set = Plan.rel_set plan in
      subtree_sets j.Plan.outer (subtree_sets j.Plan.inner (set :: acc))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "query %s (perfect plan executes in %s):\n" name
       (Pretty.ms perfect.Runner.m_exec_ms));
  let rec iterate i =
    if i > 40 then ()
    else begin
      let estimator =
        Estimator.create ~mode:(Estimator.Overrides overrides)
          ~catalog:(Session.catalog session) ~stats:(Session.stats session)
          ~oracle q
      in
      let plan, _ =
        Optimizer.plan ~space:(Session.space prepared)
          ~catalog:(Session.catalog session) ~estimator q
      in
      let exec_ms =
        try
          (Session.execute ~work_budget:60_000_000 prepared plan)
            .Executor.elapsed_ms
        with Executor.Work_budget_exceeded { elapsed_ms; _ } -> elapsed_ms
      in
      Buffer.add_string buf
        (Printf.sprintf "  corrections=%-3d exec=%s\n" i (Pretty.ms exec_ms));
      (* Lowest join whose (possibly overridden) estimate is still off by
         the threshold: pin it and its whole subtree to the truth. *)
      let candidate =
        List.fold_left
          (fun best (j : Plan.join) ->
            let set =
              Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner)
            in
            let est = j.Plan.join_est in
            let actual = float_of_int (Oracle.true_card oracle set) in
            if Stat_utils.q_error ~est ~actual >= fig5_threshold then
              match best with
              | None -> Some (j, set)
              | Some (_, bset) ->
                if Relset.cardinal set < Relset.cardinal bset then Some (j, set)
                else best
            else best)
          None (Plan.joins_bottom_up plan)
      in
      match candidate with
      | None -> ()
      | Some (j, set) ->
        ignore set;
        let sets = subtree_sets (Plan.Join j) [] in
        List.iter
          (fun s ->
            Hashtbl.replace overrides s
              (float_of_int (Oracle.true_card oracle s)))
          sets;
        iterate (i + 1)
    end
  in
  iterate 0;
  Buffer.contents buf

let fig5 lab =
  Pretty.heading
    "Figure 5: iterative (LEO-style) estimate correction on 16b, 25c, 30a"
  ^ "\n"
  ^ String.concat "\n" (List.map (fig5_one lab) [ "16b"; "25c"; "30a" ])

(* ---- Figure 6 ---- *)

let fig6 lab =
  let name = "16b" in
  let q = Runner.query lab name in
  let session = Runner.session lab in
  let catalog = Session.catalog session in
  let outcome =
    Reopt.run ~cleanup:false ~initial:(Runner.prepared_of lab q) session
      ~trigger:(Rdb_core.Trigger.create 32.0) ~mode:Estimator.Default q
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Pretty.heading "Figure 6: the re-optimization rewrite, as SQL");
  Buffer.add_string buf "\n-- Original query\n";
  Buffer.add_string buf
    (Option.value ~default:"" (Rdb_imdb.Job_queries.sql_of name));
  Buffer.add_string buf "\n";
  let rec steps q_before = function
    | [] -> ()
    | (step : Reopt.step) :: rest ->
      let cols = Reopt.needed_cols q_before step.Reopt.materialized_set in
      Buffer.add_string buf
        (Printf.sprintf
           "\n-- Re-optimization step: q-error %.0f at {%s} (%d rows materialized)\n"
           step.Reopt.trigger_q_error
           (String.concat ", " step.Reopt.materialized_aliases)
           step.Reopt.temp_rows);
      Buffer.add_string buf
        (Unparse.create_temp_table catalog q_before
           ~set:step.Reopt.materialized_set ~temp_name:step.Reopt.temp_name
           ~cols);
      Buffer.add_string buf "\n";
      steps step.Reopt.query_after rest
  in
  steps q outcome.Reopt.steps;
  Buffer.add_string buf "\n-- Final SELECT\n";
  Buffer.add_string buf (Unparse.query catalog outcome.Reopt.final_query);
  Buffer.add_string buf "\n";
  (* Drop the temp tables we kept alive for rendering. *)
  List.iter
    (fun (step : Reopt.step) ->
      Catalog.drop_table catalog step.Reopt.temp_name;
      Rdb_stats.Db_stats.drop (Session.stats session) ~table:step.Reopt.temp_name)
    outcome.Reopt.steps;
  Buffer.contents buf

(* ---- Figure 7 ---- *)

let fig7_thresholds = [ 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0 ]

let fig7 lab =
  let thresholds = fig7_thresholds in
  let row config =
    let ms = Runner.run_workload lab config in
    [
      Runner.config_name config;
      fmt_total (Runner.total_plan_ms ms);
      fmt_total (Runner.total_exec_ms ms);
      fmt_total (Runner.total_plan_ms ms +. Runner.total_exec_ms ms);
    ]
  in
  let rows =
    row Runner.Default
    :: List.map (fun thr -> row (Runner.Reopt thr)) thresholds
    @ [ row Runner.Perfect_all ]
  in
  Pretty.heading
    "Figure 7: whole-workload planning + execution across re-optimization thresholds"
  ^ "\n"
  ^ Pretty.table
      ~headers:[ "configuration"; "plan (s)"; "exec (s)"; "total (s)" ]
      rows
  ^ "\n"

(* ---- Figure 8 ---- *)

let fig8 lab =
  let n_max = max_rels lab in
  let rows =
    List.map
      (fun n ->
        let plain = Runner.run_workload lab (perfect_config lab n) in
        let reopt_config =
          if n = 0 then Runner.Reopt 32.0 else Runner.Perfect_reopt (n, 32.0)
        in
        let reopt = Runner.run_workload lab reopt_config in
        [
          (if n = 0 then "default" else Printf.sprintf "perfect-%d" n);
          fmt_total (Runner.total_exec_ms plain);
          fmt_total (Runner.total_exec_ms reopt);
        ])
      (List.init (n_max + 1) Fun.id)
  in
  Pretty.heading
    "Figure 8: total execution (s), perfect-(n) with and without re-optimization"
  ^ "\n"
  ^ Pretty.table
      ~headers:[ "estimates"; "exec (s)"; "exec + reopt-32 (s)" ]
      rows
  ^ "\n"

(* ---- Figure 9 ---- *)

let fig9 lab =
  let default = Runner.run_workload lab Runner.Default in
  let sorted =
    List.sort
      (fun (a : Runner.measurement) b ->
        Float.compare a.Runner.m_exec_ms b.Runner.m_exec_ms)
      default
  in
  let rows =
    List.map
      (fun (m : Runner.measurement) ->
        let q = Runner.query lab m.Runner.m_query in
        let reopt = Runner.run_query lab (Runner.Reopt 32.0) q in
        let perfect = Runner.run_query lab Runner.Perfect_all q in
        [
          m.Runner.m_query;
          Printf.sprintf "%.1f%s" m.Runner.m_exec_ms
            (if m.Runner.m_capped then "+" else "");
          Printf.sprintf "%.1f" reopt.Runner.m_exec_ms;
          Printf.sprintf "%.1f" perfect.Runner.m_exec_ms;
        ])
      sorted
  in
  Pretty.heading
    "Figure 9: per-query execution (ms), ordered by default execution time"
  ^ "\n"
  ^ Pretty.table
      ~headers:[ "query"; "default"; "reopt-32"; "perfect" ]
      rows
  ^ "\n('+' marks executions cut off by the runaway-work budget)\n"


(* ---- CORDS ablation (paper SS IV-B) ---- *)

(* The paper's age/salary example: same-table correlation is fixable with
   column-group statistics, but a correlation sitting across a join edge
   ("join-crossing") is invisible to them. *)
let cords_ablation () =
  let prng = Rdb_util.Prng.create 99 in
  let n = 50_000 in
  let ages = Array.init n (fun _ -> 20 + Rdb_util.Prng.int prng 45) in
  (* salary band is (almost) a function of age: strong correlation *)
  let bands =
    Array.map
      (fun age ->
        if Rdb_util.Prng.float prng 1.0 < 0.9 then (age - 20) / 9
        else Rdb_util.Prng.int prng 5)
      ages
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog
    (Table.create ~name:"employee"
       ~schema:
         (Schema.make
            [
              { Schema.name = "id"; ty = Value.Ty_int };
              { Schema.name = "age"; ty = Value.Ty_int };
              { Schema.name = "salary_band"; ty = Value.Ty_int };
            ])
       [|
         Column.Ints (Array.init n (fun i -> i + 1));
         Column.Ints ages;
         Column.Ints bands;
       |]);
  (* bonus lives in another table: the same correlation, one join away *)
  Catalog.add_table catalog
    (Table.create ~name:"compensation"
       ~schema:
         (Schema.make
            [
              { Schema.name = "employee_id"; ty = Value.Ty_int };
              { Schema.name = "bonus_band"; ty = Value.Ty_int };
            ])
       [|
         Column.Ints (Array.init n (fun i -> i + 1));
         Column.Ints (Array.copy bands);
       |]);
  Catalog.add_index catalog ~table:"employee" ~col:0;
  Catalog.add_index catalog ~table:"compensation" ~col:0;
  let session = Session.create catalog in
  Session.analyze session;
  let stats = Session.stats session in
  let emp = Catalog.table_exn catalog "employee" in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Pretty.heading "CORDS ablation: column-group statistics vs join-crossing correlation");
  (* discovery *)
  let findings = Rdb_stats.Cords.discover ~threshold:0.2 emp in
  Buffer.add_string buf "\ndiscovered correlated pairs in employee:\n";
  List.iter
    (fun (f : Rdb_stats.Cords.finding) ->
      Buffer.add_string buf
        (Printf.sprintf "  (col %d, col %d) strength %.1f\n" f.Rdb_stats.Cords.col_a
           f.Rdb_stats.Cords.col_b f.Rdb_stats.Cords.strength))
    findings;
  let estimate sql =
    let q =
      match Rdb_sql.Binder.bind catalog ~name:"cords" (Rdb_sql.Parser.parse sql) with
      | Ok q -> q
      | Error e -> invalid_arg e
    in
    let prepared = Session.prepare session q in
    let estimator =
      Estimator.create ~mode:Estimator.Default ~catalog ~stats q
    in
    let full = Relset.full (Query.n_rels q) in
    let est = Estimator.card estimator full in
    let actual = Oracle.true_card (Session.oracle prepared) full in
    (est, actual)
  in
  let same_table =
    "SELECT COUNT(*) FROM employee AS e \
     WHERE e.age >= 56 AND e.salary_band = 4;"
  in
  let crossing =
    "SELECT COUNT(*) FROM employee AS e, compensation AS c \
     WHERE e.age >= 56 AND c.bonus_band = 4 AND e.id = c.employee_id;"
  in
  let est0, actual0 = estimate same_table in
  Buffer.add_string buf
    (Printf.sprintf
       "\nsame-table correlated predicates (independence assumption):\n  est %.0f vs actual %d (%.0fx off)\n"
       est0 actual0 (float_of_int actual0 /. Float.max 1.0 est0));
  (* create the column-group statistics CORDS recommends *)
  Rdb_stats.Db_stats.set_group stats ~table:"employee"
    (Rdb_stats.Group_stats.build ~slots:300 emp 1 2);
  let est1, actual1 = estimate same_table in
  Buffer.add_string buf
    (Printf.sprintf
       "same-table with column-group statistics:\n  est %.0f vs actual %d (%.1fx off) -- fixed\n"
       est1 actual1
       (Rdb_util.Stat_utils.q_error ~est:est1 ~actual:(float_of_int actual1)));
  let est2, actual2 = estimate crossing in
  Buffer.add_string buf
    (Printf.sprintf
       "\nthe SAME correlation across a join edge (paper: CORDS cannot see it):\n  est %.0f vs actual %d (%.0fx off) -- still wrong\n"
       est2 actual2 (float_of_int actual2 /. Float.max 1.0 est2));
  Buffer.contents buf


(* ---- sampling-based estimation (SS II-C) ---- *)

let sampling_configs =
  [
    Runner.Default;
    Runner.Sampling_est 128;
    Runner.Sampling_est 512;
    Runner.Sampling_est 2048;
    Runner.Reopt 32.0;
    Runner.Perfect_all;
  ]

let sampling lab =
  let rows =
    List.map
      (fun config ->
        let ms = Runner.run_workload lab config in
        [
          Runner.config_name config;
          fmt_total (Runner.total_plan_ms ms);
          fmt_total (Runner.total_exec_ms ms);
          fmt_total (Runner.total_plan_ms ms +. Runner.total_exec_ms ms);
        ])
      sampling_configs
  in
  Pretty.heading
    "Sampling ablation: index-based join sampling vs default, re-opt and perfect"
  ^ "\n"
  ^ Pretty.table
      ~headers:[ "configuration"; "plan (s)"; "exec (s)"; "total (s)" ]
      rows
  ^ "\n(planning time includes the sampling probes -- the cost SS II-C warns about)\n"


(* ---- Rio-style proactive planning (SS V / conclusion) ---- *)

let robust_configs =
  [
    Runner.Default;
    Runner.Robust 2.0;
    Runner.Robust 4.0;
    Runner.Robust 8.0;
    Runner.Reopt 32.0;
    Runner.Perfect_all;
  ]

let robust lab =
  let rows =
    List.map
      (fun config ->
        let ms = Runner.run_workload lab config in
        [
          Runner.config_name config;
          fmt_total (Runner.total_plan_ms ms);
          fmt_total (Runner.total_exec_ms ms);
          fmt_total (Runner.total_plan_ms ms +. Runner.total_exec_ms ms);
        ])
      robust_configs
  in
  Pretty.heading
    "Robust-planning ablation: Rio-style worst-case plans vs default, re-opt, perfect"
  ^ "\n"
  ^ Pretty.table
      ~headers:[ "configuration"; "plan (s)"; "exec (s)"; "total (s)" ]
      rows
  ^ "\n(robust plans hedge against under-estimates at plan time; re-optimization repairs them at run time)\n"


(* ---- q-error growth with join size (SS IV) ---- *)

let qerror lab =
  let by_size : (int, float list ref) Hashtbl.t = Hashtbl.create 18 in
  List.iter
    (fun q ->
      let prepared = Runner.prepared_of lab q in
      let oracle = Session.oracle prepared in
      Oracle.ensure_up_to oracle (Query.n_rels q);
      let estimator =
        Estimator.create ~mode:Estimator.Default
          ~catalog:(Session.catalog (Runner.session lab))
          ~stats:(Session.stats (Runner.session lab))
          q
      in
      let graph = Join_graph.make q in
      List.iter
        (fun s ->
          let est = Estimator.card estimator s in
          let actual = float_of_int (Oracle.true_card oracle s) in
          let err = Stat_utils.q_error ~est ~actual in
          let size = Relset.cardinal s in
          match Hashtbl.find_opt by_size size with
          | Some l -> l := err :: !l
          | None -> Hashtbl.add by_size size (ref [ err ]))
        (Join_graph.connected_subsets graph))
    (Runner.queries lab);
  let sizes =
    Hashtbl.fold (fun k _ acc -> k :: acc) by_size [] |> List.sort Int.compare
  in
  let rows =
    List.map
      (fun size ->
        let errs = !(Hashtbl.find by_size size) in
        [
          string_of_int size;
          string_of_int (List.length errs);
          Printf.sprintf "%.1f" (Stat_utils.percentile 50.0 errs);
          Printf.sprintf "%.1f" (Stat_utils.percentile 95.0 errs);
          Printf.sprintf "%.0f" (Stat_utils.percentile 100.0 errs);
        ])
      sizes
  in
  Pretty.heading
    "Q-error of the default estimator by join size (SS IV: errors grow with joins)"
  ^ "\n"
  ^ Pretty.table
      ~headers:[ "# tables"; "# estimates"; "median"; "p95"; "max" ]
      rows
  ^ "\n"

(* ---- LEO feedback loop (SS IV-E) ---- *)

let leo lab =
  let feedback = Rdb_core.Feedback.create () in
  let catalog = Session.catalog (Runner.session lab) in
  let run_pass ~learn ~use =
    List.fold_left
      (fun acc q ->
        let prepared = Runner.prepared_of lab q in
        let mode =
          if use then Session.feedback_mode prepared feedback
          else Estimator.Default
        in
        let plan, _, _ = Session.plan prepared ~mode in
        let exec_ms =
          try
            let res =
              (* learn:false — this experiment's private store, not the
                 session's, decides what is remembered per pass. *)
              Session.execute ~work_budget:60_000_000 ~deadline_ms:4_000.0
                ~learn:false prepared plan
            in
            if learn then Rdb_core.Feedback.observe feedback ~catalog q res;
            res.Executor.elapsed_ms
          with Executor.Work_budget_exceeded { elapsed_ms; _ } -> elapsed_ms
        in
        acc +. exec_ms)
      0.0 (Runner.queries lab)
  in
  let pass1 = run_pass ~learn:true ~use:false in
  let pass2 = run_pass ~learn:true ~use:true in
  let pass3 = run_pass ~learn:true ~use:true in
  let perfect =
    Runner.total_exec_ms (Runner.run_workload lab Runner.Perfect_all)
  in
  Pretty.heading "LEO-style feedback loop (SS IV-E): learning from executions"
  ^ "\n"
  ^ Pretty.series ~title:"workload execution (s) per pass"
      [
        ("pass 1 (default, learning)", pass1 /. 1000.0);
        ("pass 2 (learned overrides)", pass2 /. 1000.0);
        ("pass 3 (learned overrides)", pass3 /. 1000.0);
        ("perfect-(17)", perfect /. 1000.0);
      ]
  ^ Printf.sprintf "\n%d sub-join cardinalities remembered\n"
      (Rdb_core.Feedback.size feedback)


(* ---- persistent feedback store, naive vs gated (SS IV-E / SS V) ---- *)

let feedback_exp lab =
  let r = Feedback_sweep.run lab in
  let total get =
    List.fold_left
      (fun acc row -> acc +. (get row).Runner.m_exec_ms)
      0.0 r.Feedback_sweep.fr_rows
    /. 1000.0
  in
  let count_list name = function
    | [] -> Printf.sprintf "%s: none" name
    | l ->
      Printf.sprintf "%s: %s" name
        (String.concat ", "
           (List.map (fun (q, ratio) -> Printf.sprintf "%s (%.1fx)" q ratio) l))
  in
  Pretty.heading
    "Feedback corrections, naive vs fragility-gated (SS IV-E: corrections can hurt)"
  ^ "\n"
  ^ Pretty.series ~title:"workload execution (s) per estimation mode"
      [
        ("default", total (fun row -> row.Feedback_sweep.fs_default));
        ("naive feedback", total (fun row -> row.Feedback_sweep.fs_naive));
        ("gated feedback", total (fun row -> row.Feedback_sweep.fs_gated));
        ( Printf.sprintf "perfect-(%d)" r.Feedback_sweep.fr_perfect_n,
          total (fun row -> row.Feedback_sweep.fs_perfect) );
      ]
  ^ "\n"
  ^ count_list "naive materially worse"
      r.Feedback_sweep.fr_naive_regressions
  ^ "\n"
  ^ count_list "gated materially worse"
      r.Feedback_sweep.fr_gated_regressions
  ^ "\n"
  ^ Printf.sprintf
      "%d corrections remembered; dp pairs default/naive/gated %d/%d/%d; \
       %d store probes (bound %d)\n"
      r.Feedback_sweep.fr_store_size r.Feedback_sweep.fr_default_pairs
      r.Feedback_sweep.fr_naive_pairs r.Feedback_sweep.fr_gated_pairs
      r.Feedback_sweep.fr_naive_lookups r.Feedback_sweep.fr_lookup_bound

(* ---- adaptive operator selection (SS II-D) ---- *)

let adaptive_configs =
  [ Runner.Default; Runner.Adaptive; Runner.Reopt 32.0; Runner.Perfect_all ]

let adaptive lab =
  let rows =
    List.map
      (fun config ->
        let ms = Runner.run_workload lab config in
        [
          Runner.config_name config;
          fmt_total (Runner.total_exec_ms ms);
        ])
      adaptive_configs
  in
  Pretty.heading
    "Adaptive-execution ablation: runtime operator switching vs re-optimization"
  ^ "\n"
  ^ Pretty.table ~headers:[ "configuration"; "exec (s)" ] rows
  ^ "\n(operator switching cannot change join order -- SS II-D's limitation -- so it recovers\n only part of what re-optimization does)\n"

(* ---- driver ---- *)

(* The grid of (config, query) cells an experiment will measure — what a
   multi-domain prewarm can compute ahead of time. Experiments whose cost
   is not in workload cells (planning-only sweeps, self-contained demos)
   have nothing to prewarm. *)
let grid_configs lab name =
  let n_max = max_rels lab in
  let perfect_sweep = List.init (n_max + 1) (perfect_config lab) in
  match name with
  | "table2" -> [ Runner.Perfect_all; Runner.Default ]
  | "table6" -> [ Runner.Perfect_all; Runner.Reopt 32.0 ]
  | "fig2" -> perfect_sweep
  | "fig5" -> [ Runner.Perfect_all ]
  | "fig7" ->
    (Runner.Default :: List.map (fun thr -> Runner.Reopt thr) fig7_thresholds)
    @ [ Runner.Perfect_all ]
  | "fig8" ->
    perfect_sweep
    @ Runner.Reopt 32.0
      :: List.filter_map
           (fun n -> if n = 0 then None else Some (Runner.Perfect_reopt (n, 32.0)))
           (List.init (n_max + 1) Fun.id)
  | "fig9" -> [ Runner.Default; Runner.Reopt 32.0; Runner.Perfect_all ]
  | "sampling" -> sampling_configs
  | "robust" -> robust_configs
  | "adaptive" -> adaptive_configs
  | _ -> []

let prewarm ~jobs lab name =
  if jobs > 1 then
    match name with
    | "fig1" ->
      (* fig1 measures only the top-20 queries by default execution, so
         the default workload must land first to pick them. *)
      ignore (Runner.run_grid ~jobs lab [ Runner.Default ]);
      let top20 = List.map (Runner.query lab) (top20_queries lab) in
      ignore (Runner.run_grid ~jobs ~queries:top20 lab fig1_configs)
    | "feedback" ->
      (* The sweep orders its own phases (learn before freeze before
         measure); the cheap re-run inside [feedback_exp] then hits the
         measurement cache. *)
      ignore (Feedback_sweep.run ~jobs lab)
    | name ->
      (match grid_configs lab name with
       | [] -> ()
       | configs -> ignore (Runner.run_grid ~jobs lab configs))

let named =
  [
    ("table1", `Lab table1);
    ("table2", `Lab table2);
    ("table3", `Unit table3);
    ("table6", `Lab table6);
    ("fig1", `Lab fig1);
    ("fig2", `Lab fig2);
    ("fig3_4", `Lab fig3_4);
    ("skew", `Unit skew_example);
    ("fig5", `Lab fig5);
    ("fig6", `Lab fig6);
    ("fig7", `Lab fig7);
    ("fig8", `Lab fig8);
    ("fig9", `Lab fig9);
    ("cords", `Unit cords_ablation);
    ("sampling", `Lab sampling);
    ("robust", `Lab robust);
    ("qerror", `Lab qerror);
    ("leo", `Lab leo);
    ("feedback", `Lab feedback_exp);
    ("adaptive", `Lab adaptive);
  ]

let names = List.map fst named

let run ?(jobs = 1) lab name =
  match List.assoc_opt name named with
  | Some (`Lab f) ->
    Rdb_obs.Trace.span "experiment" ~attrs:[ ("name", name) ] (fun () ->
        prewarm ~jobs lab name;
        f lab)
  | Some (`Unit f) ->
    Rdb_obs.Trace.span "experiment" ~attrs:[ ("name", name) ] f
  | None -> invalid_arg ("Experiments.run: unknown experiment " ^ name)

let all ?jobs lab =
  String.concat "\n\n" (List.map (fun name -> run ?jobs lab name) names)
