module Query = Rdb_query.Query
module Session = Rdb_core.Session
module Feedback = Rdb_core.Feedback
module Estimator = Rdb_card.Estimator
module Optimizer = Rdb_plan.Optimizer
module Metrics = Rdb_obs.Metrics

type row = {
  fs_query : string;
  fs_rels : int;
  fs_default : Runner.measurement;
  fs_naive : Runner.measurement;
  fs_gated : Runner.measurement;
  fs_perfect : Runner.measurement;
}

type report = {
  fr_perfect_n : int;
  fr_reopt_learn : float;
  fr_store_size : int;
  fr_rows : row list;
  fr_naive_regressions : (string * float) list;
  fr_naive_improvements : (string * float) list;
  fr_gated_regressions : (string * float) list;
  fr_gated_improvements : (string * float) list;
  fr_default_pairs : int;
  fr_naive_pairs : int;
  fr_gated_pairs : int;
  fr_naive_lookups : int;
  fr_lookup_bound : int;
}

(* "Materially worse": a capped run where the baseline finished, or at
   least 1.5x the baseline's deterministic work with an absolute gap big
   enough that tiny queries can't trip it on noise-scale differences. *)
let material_ratio = 1.5
let material_floor = 50_000

let work_ratio (m : Runner.measurement) (d : Runner.measurement) =
  float_of_int m.Runner.m_work /. float_of_int (max 1 d.Runner.m_work)

let materially_worse (m : Runner.measurement) (d : Runner.measurement) =
  if m.Runner.m_capped then not d.Runner.m_capped
  else
    (not d.Runner.m_capped)
    && work_ratio m d >= material_ratio
    && m.Runner.m_work - d.Runner.m_work >= material_floor

let materially_better (m : Runner.measurement) (d : Runner.measurement) =
  materially_worse d m

(* Planning-work accounting: plan every query once per mode and sum the
   DPccp pair counter. Enumeration is estimate-independent, so feedback
   modes must enumerate exactly as many pairs as the default — the
   regression this guards against is an eager subset sweep creeping back
   into the lookup path. *)
let count_pairs lab mode_of =
  List.fold_left
    (fun acc q ->
      let prepared = Runner.prepared_of lab q in
      let _plan, pstats, _ = Session.plan prepared ~mode:(mode_of prepared) in
      acc + pstats.Optimizer.pairs_considered)
    0 (Runner.queries lab)

let run ?(jobs = 1) ?(perfect_n = 4) ?(reopt_learn = 32.0) lab =
  let fb = Runner.feedback lab in
  Feedback.set_frozen fb false;
  (* Learning passes: the plain default workload, then a re-optimizing
     pass whose materializations pay for — and remember — true
     cardinalities of exactly the sub-joins the default estimator gets
     most wrong. *)
  ignore (Runner.run_grid ~jobs lab [ Runner.Default ]);
  ignore (Runner.run_grid ~jobs lab [ Runner.Reopt reopt_learn ]);
  (* Freeze before anything plans from the store: measured plan choices
     must depend only on what the learning passes recorded, never on the
     order measurement cells execute in. *)
  Feedback.set_frozen fb true;
  let default_pairs = count_pairs lab (fun _ -> Estimator.Default) in
  let before_naive = Metrics.snapshot () in
  let naive_pairs =
    count_pairs lab (fun prepared -> Session.feedback_mode prepared fb)
  in
  let after_naive = Metrics.snapshot () in
  let naive_lookups =
    Metrics.counter after_naive "feedback.lookups"
    - Metrics.counter before_naive "feedback.lookups"
  in
  let total_rels =
    List.fold_left (fun acc q -> acc + Query.n_rels q) 0 (Runner.queries lab)
  in
  (* Each memoized subset probes the store at most once; the memo holds
     at most one entry per enumerated pair plus the base relations. *)
  let lookup_bound = (2 * naive_pairs) + (2 * total_rels) in
  let gated_pairs =
    count_pairs lab (fun prepared -> Session.feedback_mode ~gated:true prepared fb)
  in
  let cells =
    Runner.run_grid ~jobs lab
      [
        Runner.Default;
        Runner.Feedback_naive;
        Runner.Feedback_gated;
        Runner.Perfect perfect_n;
      ]
  in
  let of_config c =
    match List.assoc_opt c cells with
    | Some ms -> ms
    | None -> assert false
  in
  let rows =
    List.map
      (fun (d, n, (g, p)) ->
        {
          fs_query = d.Runner.m_query;
          fs_rels = d.Runner.m_rels;
          fs_default = d;
          fs_naive = n;
          fs_gated = g;
          fs_perfect = p;
        })
      (List.combine (of_config Runner.Default)
         (List.combine (of_config Runner.Feedback_naive)
            (List.combine (of_config Runner.Feedback_gated)
               (of_config (Runner.Perfect perfect_n))))
       |> List.map (fun (d, (n, gp)) -> (d, n, gp)))
  in
  let classify get =
    List.fold_left
      (fun (worse, better) r ->
        let m = get r in
        if materially_worse m r.fs_default then
          ((r.fs_query, work_ratio m r.fs_default) :: worse, better)
        else if materially_better m r.fs_default then
          (worse, (r.fs_query, work_ratio m r.fs_default) :: better)
        else (worse, better))
      ([], []) rows
    |> fun (w, b) -> (List.rev w, List.rev b)
  in
  let naive_worse, naive_better = classify (fun r -> r.fs_naive) in
  let gated_worse, gated_better = classify (fun r -> r.fs_gated) in
  {
    fr_perfect_n = perfect_n;
    fr_reopt_learn = reopt_learn;
    fr_store_size = Feedback.size fb;
    fr_rows = rows;
    fr_naive_regressions = naive_worse;
    fr_naive_improvements = naive_better;
    fr_gated_regressions = gated_worse;
    fr_gated_improvements = gated_better;
    fr_default_pairs = default_pairs;
    fr_naive_pairs = naive_pairs;
    fr_gated_pairs = gated_pairs;
    fr_naive_lookups = naive_lookups;
    fr_lookup_bound = lookup_bound;
  }
