module Query = Rdb_query.Query
module Session = Rdb_core.Session
module Trigger = Rdb_core.Trigger
module Reopt = Rdb_core.Reopt
module Estimator = Rdb_card.Estimator
module Oracle = Rdb_card.Oracle
module Executor = Rdb_exec.Executor
module Optimizer = Rdb_plan.Optimizer

type config =
  | Default
  | Perfect of int
  | Perfect_all
  | Reopt of float
  | Perfect_reopt of int * float
  | Sampling_est of int
  | Robust of float
  | Adaptive
  | Feedback_naive
  | Feedback_gated

let config_name = function
  | Default -> "default"
  | Perfect n -> Printf.sprintf "perfect-%d" n
  | Perfect_all -> "perfect-all"
  | Reopt thr -> Printf.sprintf "reopt-%g" thr
  | Perfect_reopt (n, thr) -> Printf.sprintf "perfect-%d+reopt-%g" n thr
  | Sampling_est size -> Printf.sprintf "sampling-%d" size
  | Robust u -> Printf.sprintf "robust-%g" u
  | Adaptive -> "adaptive"
  | Feedback_naive -> "feedback-naive"
  | Feedback_gated -> "feedback-gated"

type measurement = {
  m_query : string;
  m_rels : int;
  m_plan_ms : float;
  m_exec_ms : float;
  m_work : int;
  m_capped : bool;
  m_steps : int;
}

type lab = {
  session : Session.t;
  queries : Query.t list;
  (* @confined each lab is private to one domain; grid sharding clones it *)
  prepared : (string, Session.prepared) Hashtbl.t;
  (* @confined each lab is private to one domain; grid sharding clones it *)
  cache : (string * string, measurement) Hashtbl.t;
  work_budget : int;
  deadline_ms : float;
  scale : float;
}

let create_lab ?(seed = 42) ?(scale = 1.0) ?(work_budget = 60_000_000)
    ?(deadline_ms = 4_000.0) () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~seed ~scale () in
  (* Every lab carries a feedback store: executions learn true
     cardinalities as they run, and the feedback configurations below
     plan from what has been learned. Estimation is unaffected unless a
     feedback configuration is asked for. *)
  let session = Session.create ~feedback:(Rdb_core.Feedback.create ()) catalog in
  Session.analyze session;
  let queries = Rdb_imdb.Job_queries.all catalog in
  {
    session;
    queries;
    prepared = Hashtbl.create 128;
    cache = Hashtbl.create 1024;
    work_budget;
    deadline_ms;
    scale;
  }

let session lab = lab.session
let queries lab = lab.queries
let scale lab = lab.scale

let query lab name =
  match List.find_opt (fun q -> String.equal q.Query.name name) lab.queries with
  | Some q -> q
  | None -> invalid_arg ("Runner.query: unknown query " ^ name)

let prepared_of lab q =
  match Hashtbl.find_opt lab.prepared q.Query.name with
  | Some p -> p
  | None ->
    let p = Session.prepare lab.session q in
    Hashtbl.replace lab.prepared q.Query.name p;
    p

let feedback lab =
  match Session.feedback lab.session with
  | Some fb -> fb
  | None -> invalid_arg "Runner.feedback: lab has no feedback store"

let mode_of_config lab q = function
  | Default | Reopt _ | Robust _ | Adaptive -> Estimator.Default
  | Feedback_naive -> Session.feedback_mode (prepared_of lab q) (feedback lab)
  | Feedback_gated ->
    Session.feedback_mode ~gated:true (prepared_of lab q) (feedback lab)
  | Sampling_est size ->
    Estimator.Sampling
      (Rdb_card.Join_sample.create ~sample_size:size
         (Session.catalog lab.session) q)
  | Perfect n ->
    Oracle.ensure_up_to (Session.oracle (prepared_of lab q)) n;
    Estimator.Perfect n
  | Perfect_all ->
    Oracle.ensure_up_to (Session.oracle (prepared_of lab q)) (Query.n_rels q);
    Estimator.Perfect_all
  | Perfect_reopt (n, _) ->
    Oracle.ensure_up_to (Session.oracle (prepared_of lab q)) n;
    Estimator.Perfect n

let measure_plain lab config q =
  let prepared = prepared_of lab q in
  let mode = mode_of_config lab q config in
  let plan, pstats, _ =
    match config with
    | Robust u -> Session.plan_robust ~uncertainty:u prepared ~mode
    | _ -> Session.plan prepared ~mode
  in
  try
    let adaptive = match config with Adaptive -> true | _ -> false in
    let res =
      Session.execute ~work_budget:lab.work_budget
        ~deadline_ms:lab.deadline_ms ~adaptive prepared plan
    in
    {
      m_query = q.Query.name;
      m_rels = Query.n_rels q;
      m_plan_ms = pstats.Optimizer.plan_ms;
      m_exec_ms = res.Executor.elapsed_ms;
      m_work = res.Executor.work;
      m_capped = false;
      m_steps = 0;
    }
  with Executor.Work_budget_exceeded { spent; elapsed_ms } ->
    {
      m_query = q.Query.name;
      m_rels = Query.n_rels q;
      m_plan_ms = pstats.Optimizer.plan_ms;
      m_exec_ms = elapsed_ms;
      m_work = spent;
      m_capped = true;
      m_steps = 0;
    }

let measure_reopt lab config q threshold =
  let prepared = prepared_of lab q in
  let mode = mode_of_config lab q config in
  let trigger = Trigger.create threshold in
  try
    let outcome =
      Reopt.run ~work_budget:lab.work_budget ~deadline_ms:lab.deadline_ms
        ~initial:prepared lab.session ~trigger ~mode q
    in
    {
      m_query = q.Query.name;
      m_rels = Query.n_rels q;
      m_plan_ms = outcome.Reopt.total_plan_ms;
      m_exec_ms = outcome.Reopt.total_exec_ms;
      m_work = outcome.Reopt.total_work;
      m_capped = false;
      m_steps = List.length outcome.Reopt.steps;
    }
  with Executor.Work_budget_exceeded { spent; elapsed_ms } ->
    {
      m_query = q.Query.name;
      m_rels = Query.n_rels q;
      m_plan_ms = 0.0;
      m_exec_ms = elapsed_ms;
      m_work = spent;
      m_capped = true;
      m_steps = 0;
    }

let run_query lab config q =
  let key = (config_name config, q.Query.name) in
  match Hashtbl.find_opt lab.cache key with
  | Some m -> m
  | None ->
    let m =
      Rdb_obs.Trace.span "runner.cell"
        ~attrs:[ ("config", config_name config); ("query", q.Query.name) ]
        (fun () ->
          (* A budget blowup anywhere in a cell — including the paths
             outside measure_*'s own guards, like planning-time sampling
             probes — must cap that one cell, never abort the whole
             sweep. *)
          try
            match config with
            | Default | Perfect _ | Perfect_all | Sampling_est _ | Robust _
            | Adaptive | Feedback_naive | Feedback_gated ->
              measure_plain lab config q
            | Reopt thr | Perfect_reopt (_, thr) ->
              measure_reopt lab config q thr
          with Executor.Work_budget_exceeded { spent; elapsed_ms } ->
            {
              m_query = q.Query.name;
              m_rels = Query.n_rels q;
              m_plan_ms = 0.0;
              m_exec_ms = elapsed_ms;
              m_work = spent;
              m_capped = true;
              m_steps = 0;
            })
    in
    Hashtbl.replace lab.cache key m;
    m

let run_workload lab config =
  List.map (fun q -> run_query lab config q) lab.queries

(* ---- domain-parallel grid driving ---- *)

(* A worker's private lab: a cloned session over the shared immutable
   tables and statistics (no re-ANALYZE), fresh prepared/measurement
   caches. Clones exist because cells mutate their session: Reopt.run
   creates temp tables and Session caches per-query oracles. *)
let clone_lab lab =
  {
    session = Session.with_stats_of lab.session;
    queries = lab.queries;
    prepared = Hashtbl.create 128;
    cache = Hashtbl.create 256;
    work_budget = lab.work_budget;
    deadline_ms = lab.deadline_ms;
    scale = lab.scale;
  }

let run_grid ?(jobs = 1) ?queries lab configs =
  let queries = match queries with Some qs -> qs | None -> lab.queries in
  let todo =
    List.concat_map
      (fun config ->
        List.filter_map
          (fun q ->
            if Hashtbl.mem lab.cache (config_name config, q.Query.name) then
              None
            else Some (config, q))
          queries)
      configs
  in
  (match todo with
   | [] -> ()
   | _ when jobs <= 1 ->
     List.iter (fun (config, q) -> ignore (run_query lab config q)) todo
   | _ ->
     (* Shard cells across the pool. Every measurement that matters is
        deterministic (work units, caps, re-opt steps), each cell runs on
        a domain-private lab, and the merge below is keyed by
        (config, query) — so the grid is byte-identical to the sequential
        run regardless of worker count or scheduling (wall-clock fields
        aside). *)
     let mu = Mutex.create () in
     (* @guarded_by mu *)
     let labs : (int, lab) Hashtbl.t = Hashtbl.create jobs in
     let worker_lab () =
       let id = (Domain.self () :> int) in
       Mutex.protect mu (fun () ->
           match Hashtbl.find_opt labs id with
           | Some l -> l
           | None ->
             let l = clone_lab lab in
             Hashtbl.replace labs id l;
             l)
     in
     let results =
       Rdb_util.Pool.with_pool jobs (fun pool ->
           (* a cell exception is recorded in its future, not lost:
              @swallow_ok Pool.map re-raises it at the await, on this domain *)
           Rdb_util.Pool.map pool
             (fun (config, q) ->
               ( (config_name config, q.Query.name),
                 run_query (worker_lab ()) config q ))
             (Array.of_list todo))
     in
     Array.iter (fun (key, m) -> Hashtbl.replace lab.cache key m) results);
  List.map
    (fun config ->
      (config, List.map (fun q -> run_query lab config q) queries))
    configs

let total_exec_ms ms = List.fold_left (fun acc m -> acc +. m.m_exec_ms) 0.0 ms
let total_plan_ms ms = List.fold_left (fun acc m -> acc +. m.m_plan_ms) 0.0 ms
