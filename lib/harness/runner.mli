(** The experiment runner: one "lab" holds the generated database, the 113
    bound queries, and caches — per-query prepared contexts (oracle +
    search space) and per-(configuration, query) measurements — so the
    experiment suite never repeats work across figures. *)

module Query := Rdb_query.Query
module Session := Rdb_core.Session

type lab

val create_lab :
  ?seed:int -> ?scale:float -> ?work_budget:int -> ?deadline_ms:float ->
  unit -> lab
(** Generate the database (default scale 1.0, seed 42), ANALYZE it, and
    bind the workload. [work_budget] (default [60_000_000] work units) and
    [deadline_ms] (default 4s) cap catastrophic plan executions. The lab's
    session carries a feedback store, so every executed cell contributes
    true cardinalities the feedback configurations can plan from. *)

val session : lab -> Session.t
val queries : lab -> Query.t list
val query : lab -> string -> Query.t
val prepared_of : lab -> Query.t -> Session.prepared
val scale : lab -> float

val feedback : lab -> Rdb_core.Feedback.t
(** The lab session's feedback store. *)

type config =
  | Default                        (** PostgreSQL-style estimates *)
  | Perfect of int                 (** the paper's perfect-(n) *)
  | Perfect_all                    (** perfect-(17): every estimate true *)
  | Reopt of float                 (** re-optimization at a Q-error threshold *)
  | Perfect_reopt of int * float   (** perfect-(n) plus re-optimization *)
  | Sampling_est of int            (** index-based join sampling, given sample size *)
  | Robust of float                (** Rio-style worst-case planning, given uncertainty *)
  | Adaptive                       (** runtime operator switching (Cuttlefish-style) *)
  | Feedback_naive                 (** every fresh feedback correction served (LEO) *)
  | Feedback_gated                 (** corrections gated by fragility analysis *)

val config_name : config -> string

type measurement = {
  m_query : string;
  m_rels : int;          (** relations in the query *)
  m_plan_ms : float;     (** planning incl. re-planning *)
  m_exec_ms : float;     (** execution incl. temp-table materialization *)
  m_work : int;          (** deterministic work units *)
  m_capped : bool;       (** work budget ran out (runaway plan) *)
  m_steps : int;         (** re-optimization steps taken *)
}

val run_query : lab -> config -> Query.t -> measurement
(** Plan and execute one query under a configuration; cached. A
    {!Rdb_exec.Executor.Work_budget_exceeded} anywhere inside the cell is
    caught and recorded as [m_capped = true] — one runaway cell never
    aborts a sweep. *)

val run_workload : lab -> config -> measurement list
(** All 113 queries (cached per query). *)

val run_grid :
  ?jobs:int -> ?queries:Query.t list -> lab -> config list ->
  (config * measurement list) list
(** Evaluate every (config, query) cell — [queries] defaults to the whole
    workload — sharding the cells across [jobs] domains (default 1 =
    sequential, in the caller). Each worker domain drives a private lab
    cloned via {!Rdb_core.Session.with_stats_of} (shared immutable tables
    and statistics, private temp-table namespace and caches); results are
    merged into the parent lab's measurement cache keyed by
    (config, query), and returned in [configs] × [queries] order. All
    deterministic measurement fields ([m_work], [m_capped], [m_steps],
    [m_rels]) are byte-identical to the sequential run regardless of
    worker count or scheduling; only the wall-clock fields vary. *)

val total_exec_ms : measurement list -> float
val total_plan_ms : measurement list -> float
