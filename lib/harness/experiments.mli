(** One function per table/figure of the paper. Each returns a printable
    report whose rows/series mirror what the paper plots; EXPERIMENTS.md
    records the shape comparison. All functions share the lab's caches, so
    running the whole suite costs little more than its most expensive
    member. *)

val table1 : Runner.lab -> string
(** Number of cardinality estimates on joins of N tables, summed over the
    workload (the estimates the default optimizer actually requests). *)

val table2 : Runner.lab -> string
(** Histogram of per-query execution time relative to perfect-(17), with
    PostgreSQL-style estimation. *)

val table3 : unit -> string
(** Queries per relation count — a static property of the workload. *)

val table6 : Runner.lab -> string
(** Histogram of per-query execution time relative to perfect-(17), after
    re-optimization at threshold 32. *)

val fig1 : Runner.lab -> string
(** Planning + execution of the top-20 longest-running queries under
    default, perfect-(3), perfect-(4), re-optimization, perfect-(17). *)

val fig2 : Runner.lab -> string
(** Whole-workload planning + execution for perfect-(n), n = 0..17. *)

val fig3_4 : Runner.lab -> string
(** GraphViz join graphs of the 6d and 18a analogs. *)

val skew_example : unit -> string
(** Tables IV/V and the Nasdaq skew mis-estimate of §IV-C, on a
    self-contained companies/trades database. *)

val fig5 : Runner.lab -> string
(** LEO-style iterative estimate correction on 16b, 25c, 30a: execution
    time per correction step vs the perfect-plan time. *)

val fig6 : Runner.lab -> string
(** The re-optimization rewrite, shown as SQL: original query, temp-table
    creations, final SELECT. *)

val fig7 : Runner.lab -> string
(** Re-optimization threshold sweep (2..256) vs default and perfect. *)

val fig8 : Runner.lab -> string
(** perfect-(n) with and without re-optimization, n = 0..17. *)

val fig9 : Runner.lab -> string
(** Per-query execution time: default vs re-optimized vs perfect, ordered
    by default execution time. *)

val all : ?jobs:int -> Runner.lab -> string
(** Every experiment, in paper order. *)

val names : string list
(** Experiment selector names accepted by {!run}. *)

val run : ?jobs:int -> Runner.lab -> string -> string
(** Run one experiment by name; raises [Invalid_argument] for unknown
    names. With [jobs > 1] the experiment's (config, query) grid is first
    computed in parallel through {!Runner.run_grid} — the report itself is
    then assembled from the lab's cache, so its deterministic content is
    identical to a sequential run. *)

val cords_ablation : unit -> string
(** §IV-B ablation: CORDS-discovered column-group statistics fix same-table
    correlated predicates but cannot see the identical correlation one join
    edge away. *)

val sampling : Runner.lab -> string
(** §II-C ablation: planning + execution when the estimator is index-based
    join sampling, at several sample sizes, vs default / re-opt / perfect. *)

val robust : Runner.lab -> string
(** Rio-style ablation (§V / conclusion): proactive worst-case planning vs
    reactive re-optimization. *)

val qerror : Runner.lab -> string
(** §IV evidence: median/p95/max Q-error of the default estimator per join
    size over every connected sub-join in the workload. *)

val leo : Runner.lab -> string
(** §IV-E: a LEO-style feedback loop — execute, remember true
    cardinalities, re-plan future passes with them. *)

val feedback_exp : Runner.lab -> string
(** §IV-E done right: the {!Feedback_sweep} comparison of naive vs
    fragility-gated corrections against default and perfect-(n). *)

val adaptive : Runner.lab -> string
(** §II-D ablation: Cuttlefish-style runtime operator switching, which
    cannot repair join order, vs re-optimization, which can. *)
