(** Mid-query re-optimization — the paper's contribution (§V).

    The simulated scheme: plan the query; find the lowest join operator
    whose true cardinality differs from the estimate by at least the
    trigger's Q-error threshold; execute that sub-join and materialize it
    as a temporary table ([CREATE TEMPORARY TABLE … AS SELECT …]); ANALYZE
    the temp table; rewrite the remainder of the query with the temp table
    substituted for the materialized relations; re-plan; repeat until no
    join trips the trigger; execute the final SELECT.

    Accounting mirrors §V: planning time is the initial plan plus every
    re-plan of the SELECT (temp-table creation is not re-planned — its plan
    is the already-chosen subtree); execution time is the sum of the
    materializations and the final execution. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query
module Plan := Rdb_plan.Plan
module Executor := Rdb_exec.Executor

type step = {
  materialized_set : Relset.t;
      (** relation indexes materialized, in the pre-step query's numbering *)
  materialized_aliases : string list;
  temp_name : string;
  temp_rows : int;
  trigger_q_error : float;
  trigger_est : float;
  mat_ms : float;    (** execution time of the temp-table creation *)
  mat_work : int;
  replan_ms : float; (** planning time of the rewritten SELECT *)
  query_after : Query.t;
}

type outcome = {
  steps : step list;
  final_query : Query.t;
  final_plan : Plan.t;
  final_exec : Executor.result;
  initial_plan_ms : float;
  total_plan_ms : float;   (** initial plan + every re-plan *)
  total_exec_ms : float;   (** materializations + final execution *)
  total_work : int;
  peak_rows : int;
      (** peak resident row-slots across the whole run: each phase's
          executor peak plus the temp-table cells of every earlier step,
          still live until cleanup — the re-opt analog of
          [Executor.result.peak_rows] *)
}

val run :
  ?lint:bool ->
  ?verify:bool ->
  ?work_budget:int ->
  ?deadline_ms:float ->
  ?cleanup:bool ->
  ?max_steps:int ->
  ?initial:Session.prepared ->
  ?feedback:Feedback.t ->
  Session.t ->
  trigger:Trigger.t ->
  mode:Rdb_card.Estimator.mode ->
  Query.t ->
  outcome
(** Run the full re-optimization loop. [mode] is the estimator used for
    (re-)planning, so re-optimization composes with perfect-(n) as in
    Figure 8. [cleanup] (default true) drops the temporary tables from the
    catalog afterwards; [~cleanup:false] keeps them only for a run that
    returns — an aborted run always drops its temps, since the caller
    never learns their names. [max_steps] (default 32) bounds the loop.
    [feedback] (default: the session's store, if any) receives every
    observed true cardinality — each step's materialized row count and the
    final execution's per-node observations — re-keyed against the
    *original* query: rewrites renumber relations and splice in temp
    tables, so the loop composes a per-relation origin map across steps
    and records every observation under a base-table signature.
    [lint] (default: the [RDB_LINT=1] environment check) lints every plan
    and every rewritten query (with its temp table substituted); error
    findings raise [Rdb_analysis.Debug.Lint_failed].
    [verify] (default: [RDB_VERIFY=1]) additionally proves each rewrite
    step equivalent to its pre-step query — the temp table inlined back,
    both conjunctive normal forms isomorphic — and checks every plan's
    estimates against sound cardinality bounds; error findings raise
    [Rdb_verify.Debug.Verify_failed]. *)

val find_trigger :
  Session.prepared ->
  Plan.t ->
  Trigger.t ->
  (Plan.join * Relset.t * float * float) option
(** The join the trigger selects for materialization, with its relation
    set, estimate and Q-error — fewest relations first, ties broken by
    tree depth (deepest wins), then by post-order position, so the choice
    is deterministic even when several joins of the same size trip.
    [None] when no join trips. Exposed for EXPLAIN ANALYZE (which marks
    this join) and for the tie-break regression tests. *)

val rewrite :
  Query.t ->
  set:Relset.t ->
  temp_name:string ->
  temp_cols:Query.colref list ->
  Query.t
(** The pure query rewrite: replace the relations of [set] by a temp table
    exposing [temp_cols] (one column per listed reference, in order).
    Exposed for tests and the Figure 6 example. *)

val needed_cols : Query.t -> Relset.t -> Query.colref list
(** The columns a materialization of [set] must expose: one representative
    per equivalence class (under the set's internal equi-join edges) of the
    columns referenced by crossing join edges or aggregates. *)
