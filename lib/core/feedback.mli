(** LEO-style execution feedback (paper §IV-E, reference [35]): remember
    the true cardinalities observed while executing plans and reuse them
    when planning future queries whose sub-joins look the same.

    Sub-joins are keyed by a normalized signature — member tables, their
    predicates, and the internal join edges, every component
    length-prefixed so the key is injective — and each entry carries the
    [(table, Catalog.mod_count)] epochs of its member tables at observe
    time: ANALYZE or ingest bumping a counter makes the correction stale,
    and stale corrections are dropped on lookup rather than served.

    The store is mutex-protected and deliberately shared across
    [Session.with_stats_of] clones, so parallel grid workers and server
    domains learn into one knowledge base; values are true cardinalities,
    so concurrent writers always agree.

    The paper's warning applies: partially corrected estimates can pick
    worse plans than the original. {!gate} implements the defensive
    policy — never serve a correction that feeds a flip-fragile join —
    and the [reoptdb feedback] sweep quantifies both behaviours. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query

type t

val create : unit -> t

val signature : Query.t -> Relset.t -> string
(** The normalized, injective signature of a sub-join; exposed for
    tests. *)

val observe : t -> catalog:Catalog.t -> Query.t -> Rdb_exec.Executor.result -> unit
(** Record every executed node's true cardinality, stamped with the
    member tables' current modification counters. The query must be the
    one the executed plan was built from — observations index its
    relations. For re-optimized executions use [Reopt.run]'s feedback
    wiring, which maps rewritten-query observations back to
    original-query signatures. *)

val observe_card : t -> catalog:Catalog.t -> Query.t -> Relset.t -> int -> unit
(** Record one sub-join cardinality directly. *)

val lookup : t -> catalog:Catalog.t -> Query.t -> Relset.t -> float option
(** The remembered true cardinality for this sub-join, if still fresh.
    An entry whose member-table epochs no longer match the catalog is
    dropped and not served. *)

val gate :
  fragile:Relset.t list ->
  (Relset.t -> float option) ->
  Relset.t ->
  float option
(** [gate ~fragile lookup] wraps a lookup with the fragility gating
    policy: corrections on a set that is a subset of (or equal to) any
    flip-fragile join are suppressed, because a partial correction
    feeding a fragile join is exactly how selective feedback flips plans
    for the worse. *)

val set_frozen : t -> bool -> unit
(** While frozen the store ignores observations; lookups still work.
    Measurement sweeps freeze after the learning passes so plan choices
    cannot depend on execution order. *)

val size : t -> int
(** Number of remembered sub-join cardinalities. *)

val entries : t -> (string * float) list
(** [(signature, value)] pairs, sorted; for tests and reports. *)

val clear : t -> unit

val to_json : t -> Rdb_obs.Json.t
val of_json : Rdb_obs.Json.t -> t option

val save : t -> string -> unit
(** Write the store as one JSON document. *)

val load : string -> t option
(** Read a store written by {!save}; [None] on a missing or malformed
    file. *)
