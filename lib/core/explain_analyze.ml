module Relset = Rdb_util.Relset
module Stat_utils = Rdb_util.Stat_utils
module Plan = Rdb_plan.Plan
module Explain = Rdb_plan.Explain
module Executor = Rdb_exec.Executor

let render ?trigger ?(bounds = false) prepared plan (res : Executor.result) =
  let q = Session.query prepared in
  let bound_interval =
    if not bounds then fun _ -> None
    else begin
      let session = Session.session prepared in
      let ctx =
        Rdb_verify.Card_bound.create
          ~catalog:(Session.catalog session)
          ~stats:(Session.stats session) q
      in
      fun set ->
        let lo, hi = Rdb_verify.Card_bound.interval ctx set in
        Some (Printf.sprintf "bounds=[%.0f, %.0f]" lo hi)
    end
  in
  (* Relation sets are unique within one plan tree, so they key both the
     executor's observations and the planned join algorithms. *)
  let obs_tbl : (Relset.t, Executor.node_obs) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (o : Executor.node_obs) -> Hashtbl.replace obs_tbl o.Executor.obs_set o)
    res.Executor.observations;
  let planned : (Relset.t, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (j : Plan.join) ->
      let set =
        Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner)
      in
      Hashtbl.replace planned set (Plan.algo_name j.Plan.algo))
    (Plan.joins_bottom_up plan);
  let trigger_hit =
    match trigger with
    | None -> None
    | Some t ->
      (match Reopt.find_trigger prepared plan t with
       | Some (_, set, _, q_err) -> Some (set, q_err)
       | None -> None)
  in
  let notes set =
    let bound_note = Option.to_list (bound_interval set) in
    match Hashtbl.find_opt obs_tbl set with
    | None -> bound_note @ [ "(not executed)" ]
    | Some o ->
      let actual = float_of_int o.Executor.obs_actual in
      let base =
        Printf.sprintf "(actual rows=%d q-error=%.1f)" o.Executor.obs_actual
          (Stat_utils.q_error ~est:o.Executor.obs_est ~actual)
      in
      let switch =
        match Hashtbl.find_opt planned set with
        | Some name when not (String.equal name o.Executor.obs_label) ->
          [ Printf.sprintf "[adaptive switch: %s -> %s]" name o.Executor.obs_label ]
        | Some _ | None -> []
      in
      let trig =
        match trigger_hit with
        | Some (tset, q_err) when Relset.equal tset set ->
          [ Printf.sprintf "<= re-opt trigger (q-error %.0f)" q_err ]
        | Some _ | None -> []
      in
      (base :: bound_note) @ switch @ trig
  in
  Explain.render ~notes q plan
  ^ Printf.sprintf
      "\n%d rows into aggregates | work %d | peak %d row-slots | exec %.2fms \
       | adaptive switches %d\n"
      res.Executor.out_rows res.Executor.work res.Executor.peak_rows
      res.Executor.elapsed_ms res.Executor.switches
