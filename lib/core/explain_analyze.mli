(** EXPLAIN ANALYZE rendering: the plan tree annotated with what actually
    happened when it ran — per-operator actual rows and Q-error from the
    executor's observations, adaptive operator switches (planned vs
    executed algorithm), and, when a trigger is supplied, a marker on the
    join the re-optimizer would materialize (chosen exactly as
    {!Reopt.find_trigger} does: fewest relations, then deepest, then
    post-order). A totals line (rows, work units, execution time,
    switches) follows the tree. *)

module Plan := Rdb_plan.Plan
module Executor := Rdb_exec.Executor

val render :
  ?trigger:Trigger.t ->
  ?bounds:bool ->
  Session.prepared ->
  Plan.t ->
  Executor.result ->
  string
(** [render ?trigger prepared plan res] — [res] must come from executing
    [plan] (its observations are keyed by the plan's relation sets).
    [bounds] (default false) additionally prints the symbolic verifier's
    sound cardinality interval ([Rdb_verify.Card_bound.interval]) next to
    each node's estimated and actual rows. *)
