(** A session bundles the database (catalog + statistics + cost model) and
    provides prepared per-query contexts that share the expensive artifacts
    — the true-cardinality oracle and the DPccp search space — across every
    estimator configuration the experiments sweep over. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query
module Db_stats := Rdb_stats.Db_stats
module Estimator := Rdb_card.Estimator
module Oracle := Rdb_card.Oracle
module Estimate_log := Rdb_card.Estimate_log
module Plan := Rdb_plan.Plan
module Optimizer := Rdb_plan.Optimizer
module Search_space := Rdb_plan.Search_space
module Executor := Rdb_exec.Executor

type t

val create :
  ?cost_params:Rdb_cost.Cost_model.params -> ?feedback:Feedback.t ->
  Catalog.t -> t
(** Wrap a populated catalog. Statistics start empty: call {!analyze}.
    [feedback], when given, makes every {!execute} record observed true
    cardinalities into the store (LEO-style learning); planning only
    consults it under {!feedback_mode}. *)

val with_stats_of : t -> t
(** A fresh session for another domain of the parallel runner: shallow
    copies of the parent's catalog and statistics (table, index and
    per-column statistic values are shared — all immutable once built),
    the same cost parameters, and a private temp-table counter. The clone
    skips re-running ANALYZE, and re-optimization temp tables it creates
    never touch the parent, so clones are safe to drive concurrently as
    long as the parent's base tables are not mutated underneath them. *)

val catalog : t -> Catalog.t
val stats : t -> Db_stats.t
val cost_params : t -> Rdb_cost.Cost_model.params

val feedback : t -> Feedback.t option
(** The session's feedback store, shared with {!with_stats_of} clones. *)

val analyze : ?buckets:int -> ?mcv_slots:int -> t -> unit
(** ANALYZE every table (the paper's maximum statistics target). *)

val analyze_table : t -> string -> unit
(** ANALYZE one table; used for temp tables during re-optimization. *)

val fresh_temp_name : t -> string

type prepared

val prepare : t -> Query.t -> prepared
(** Validates the query and builds its shared oracle and search space.
    Raises [Invalid_argument] when validation fails. *)

val query : prepared -> Query.t
val oracle : prepared -> Oracle.t
val space : prepared -> Search_space.t
val session : prepared -> t

val plan :
  ?lint:bool ->
  ?verify:bool ->
  ?sensitivity:bool ->
  ?pessimistic:bool ->
  ?log:Estimate_log.t ->
  prepared ->
  mode:Estimator.mode ->
  Plan.t * Optimizer.stats * Estimator.t
(** Optimize under the given estimation mode. [lint] (default: the
    [RDB_LINT=1] environment check) runs the installed invariant checker on
    the chosen plan; error findings raise
    [Rdb_analysis.Debug.Lint_failed]. [verify] (default: [RDB_VERIFY=1])
    likewise checks the plan's estimates against the symbolic verifier's
    sound cardinality bounds and raises [Rdb_verify.Debug.Verify_failed].
    [sensitivity] (default: the [RDB_SENSITIVITY] environment check) runs
    the plan-robustness analyzer's inline checks on the chosen plan.
    [pessimistic] (default false) clamps every estimate to the verifier's
    sound interval before costing — changing only plan choice, never
    results. *)

val plan_robust :
  ?lint:bool ->
  ?verify:bool ->
  ?sensitivity:bool ->
  ?pessimistic:bool ->
  ?log:Estimate_log.t ->
  uncertainty:float ->
  prepared ->
  mode:Estimator.mode ->
  Plan.t * Optimizer.stats * Estimator.t
(** Rio-style proactive planning: minimize worst-case cost over an
    uncertainty interval that widens with join depth. *)

val certify :
  ?transitions:bool ->
  ?threshold:float ->
  ?max_steps:int ->
  ?estimator:Estimator.t ->
  prepared ->
  Plan.t ->
  Rdb_analysis.Resource.cert
(** Certify a plan's resource envelope ([Rdb_analysis.Resource.certify])
    with the verifier's sound cardinality intervals as bounds — certified
    hi-bounds dominate any non-adaptive execution's observed
    [Executor.result.peak_rows] and [work]. [transitions] (default false)
    additionally simulates the re-opt replan loop (thrashing and
    useless-materialization detection). [estimator] defaults to a fresh
    [Default]-mode estimator; pass the one that produced the plan so the
    transition simulation replans under the same estimation mode. *)

val execute :
  ?work_budget:int -> ?deadline_ms:float -> ?adaptive:bool -> ?learn:bool ->
  prepared -> Plan.t -> Executor.result
(** [learn] (default true) records the execution's observed cardinalities
    into the session's feedback store, when one is attached. [Reopt.run]
    passes [false] and instead re-keys observations against the original
    query — a rewritten query's relation indices point at temp tables,
    and learning them verbatim would mis-key the store. *)

val feedback_mode : ?gated:bool -> prepared -> Feedback.t -> Estimator.mode
(** An estimation mode that consults the feedback store before the
    default composition. [gated] (default false) validates the corrected
    plan with [Rdb_analysis.Sensitivity]: corrected subsets get point
    envelopes (their values are observed true cardinalities), all others
    the factor-32 error model, and the corrected plan is accepted only
    when no corner of the unconfirmed envelopes flips the DP choice —
    i.e. the plan's shape does not pivot on any estimate the store has
    not confirmed, the exact failure mode of the paper's
    corrections-can-hurt result (§IV-E). A rejected plan is retried with
    the corrections at or under the unconfirmed pivots dropped
    ([Feedback.gate]); if the re-validation also fails, the mode degrades
    to [Default] for this query. Gated mode pays up to two sensitivity
    analyses (with corner replans) at planning time. *)
