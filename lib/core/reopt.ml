module Relset = Rdb_util.Relset
module Stat_utils = Rdb_util.Stat_utils
module Query = Rdb_query.Query
module Oracle = Rdb_card.Oracle
module Plan = Rdb_plan.Plan
module Executor = Rdb_exec.Executor
module Trace = Rdb_obs.Trace
module Metrics = Rdb_obs.Metrics

type step = {
  materialized_set : Relset.t;
  materialized_aliases : string list;
  temp_name : string;
  temp_rows : int;
  trigger_q_error : float;
  trigger_est : float;
  mat_ms : float;
  mat_work : int;
  replan_ms : float;
  query_after : Query.t;
}

type outcome = {
  steps : step list;
  final_query : Query.t;
  final_plan : Plan.t;
  final_exec : Executor.result;
  initial_plan_ms : float;
  total_plan_ms : float;
  total_exec_ms : float;
  total_work : int;
  peak_rows : int;
}

(* Union-find over column references, used to collapse columns that the
   materialized sub-join's internal equi-joins force to be equal: the temp
   table then exposes a single column per class, as in the paper's Fig. 6
   where one movie_id column replaces k.id/mk.keyword_id chains. *)
module Colref_uf = struct
  type t = (Query.colref, Query.colref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find t cr =
    match Hashtbl.find_opt t cr with
    | None -> cr
    | Some parent ->
      let root = find t parent in
      if root <> parent then Hashtbl.replace t cr root;
      root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then
      (* Deterministic representative: smallest (rel, col). *)
      if ra < rb then Hashtbl.replace t rb ra else Hashtbl.replace t ra rb
end

let inside set (cr : Query.colref) = Relset.mem cr.Query.rel set

let needed_cols (q : Query.t) set =
  let uf = Colref_uf.create () in
  List.iter
    (fun { Query.l; r } ->
      if inside set l && inside set r then Colref_uf.union uf l r)
    q.Query.edges;
  let referenced = ref [] in
  let add cr = referenced := Colref_uf.find uf cr :: !referenced in
  List.iter
    (fun { Query.l; r } ->
      if inside set l && not (inside set r) then add l;
      if inside set r && not (inside set l) then add r)
    q.Query.edges;
  List.iter
    (function
      | Query.Count_star -> ()
      | Query.Count_col cr | Query.Min_col cr | Query.Max_col cr
      | Query.Sum_col cr ->
        if inside set cr then add cr)
    q.Query.select;
  let cols = List.sort_uniq compare !referenced in
  match cols with
  | [] ->
    (* Nothing outside needs a column — e.g. the whole query was
       materialized under a COUNT aggregate. Expose one arbitrary column so
       the temp table has a schema. *)
    let rel = Relset.min_elt set in
    [ { Query.rel; col = 0 } ]
  | _ -> cols

let rewrite (q : Query.t) ~set ~temp_name ~temp_cols =
  let n = Query.n_rels q in
  let uf = Colref_uf.create () in
  List.iter
    (fun { Query.l; r } ->
      if inside set l && inside set r then Colref_uf.union uf l r)
    q.Query.edges;
  let keep =
    List.filter (fun i -> not (Relset.mem i set)) (List.init n Fun.id)
  in
  let remap = Array.make n (-1) in
  List.iteri (fun new_idx old_idx -> remap.(old_idx) <- new_idx) keep;
  let temp_idx = List.length keep in
  let temp_pos cr =
    let canonical = Colref_uf.find uf cr in
    let rec scan i = function
      | [] -> invalid_arg "Reopt.rewrite: column not materialized"
      | c :: rest -> if c = canonical then i else scan (i + 1) rest
    in
    scan 0 temp_cols
  in
  let map_colref (cr : Query.colref) =
    if inside set cr then { Query.rel = temp_idx; col = temp_pos cr }
    else { Query.rel = remap.(cr.Query.rel); col = cr.Query.col }
  in
  let rels =
    Array.append
      (Array.of_list (List.map (fun i -> q.Query.rels.(i)) keep))
      [| { Query.alias = temp_name; table = temp_name } |]
  in
  let preds =
    List.filter_map
      (fun ({ Query.target; p } : Query.pred) ->
        if inside set target then None
        else Some { Query.target = map_colref target; p })
      q.Query.preds
  in
  let edges =
    List.filter_map
      (fun { Query.l; r } ->
        if inside set l && inside set r then None
        else
          let l = map_colref l and r = map_colref r in
          (* Orient crossing edges with the temp table on the left: two
             original edges whose inside endpoints collapse to the same
             temp column reappear with opposite orientations, and a
             duplicated join condition double-counts its selectivity. *)
          if r.Query.rel = temp_idx && l.Query.rel <> temp_idx then
            Some { Query.l = r; r = l }
          else Some { Query.l; r })
      q.Query.edges
  in
  (* Crossing edges collapsed to the same temp column against the same
     outside column become duplicates; keep one of each. *)
  let edges = List.sort_uniq compare edges in
  let select =
    List.map
      (function
        | Query.Count_star -> Query.Count_star
        | Query.Count_col cr -> Query.Count_col (map_colref cr)
        | Query.Min_col cr -> Query.Min_col (map_colref cr)
        | Query.Max_col cr -> Query.Max_col (map_colref cr)
        | Query.Sum_col cr -> Query.Sum_col (map_colref cr))
      q.Query.select
  in
  { Query.name = q.Query.name ^ "+"; rels; preds; edges; select }

(* The lowest join operator whose Q-error trips the trigger: fewest
   relations first, ties broken by the deeper node in the plan tree, and a
   remaining tie (equal size at equal depth, necessarily in disjoint
   subtrees) by post-order position — a deterministic choice however many
   joins of the same size trip. *)
let find_trigger prepared plan (trigger : Trigger.t) =
  let oracle = Session.oracle prepared in
  let best = ref None in
  let rec walk depth node =
    match node with
    | Plan.Scan _ -> ()
    | Plan.Join j ->
      (* Post-order: children first, so at equal (size, depth) the first
         candidate considered — kept by the strict comparisons below — is
         the post-order-earliest one. *)
      walk (depth + 1) j.Plan.outer;
      walk (depth + 1) j.Plan.inner;
      let set = Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner) in
      let est = j.Plan.join_est in
      let actual = float_of_int (Oracle.true_card oracle set) in
      if Trigger.fires trigger ~est ~actual then begin
        let size = Relset.cardinal set in
        let better =
          match !best with
          | None -> true
          | Some (_, prev_set, _, _, prev_depth) ->
            let prev_size = Relset.cardinal prev_set in
            size < prev_size || (size = prev_size && depth > prev_depth)
        in
        if better then
          best := Some (j, set, est, Stat_utils.q_error ~est ~actual, depth)
      end
  in
  walk 0 plan;
  Option.map (fun (j, set, est, q_err, _depth) -> (j, set, est, q_err)) !best

let temp_schema session (q : Query.t) temp_cols =
  let catalog = Session.catalog session in
  Schema.make
    (List.mapi
       (fun i (cr : Query.colref) ->
         let tbl = Catalog.table_exn catalog q.Query.rels.(cr.Query.rel).Query.table in
         let src = Schema.column (Table.schema tbl) cr.Query.col in
         { Schema.name = Printf.sprintf "c%d" i; ty = src.Schema.ty })
       temp_cols)

let run ?lint ?verify ?work_budget ?deadline_ms ?(cleanup = true)
    ?(max_steps = 32) ?initial ?feedback session ~trigger ~mode q0 =
  let lint =
    match lint with Some b -> b | None -> Rdb_analysis.Debug.enabled ()
  in
  let verify =
    match verify with Some b -> b | None -> Rdb_verify.Debug.enabled ()
  in
  let feedback =
    match feedback with Some _ as fb -> fb | None -> Session.feedback session
  in
  (* Rewrites renumber relations and splice in temp tables, so an
     observation on the rewritten query must not be keyed against it
     verbatim: [origin.(i)] is the set of q0's relations that rewritten
     relation [i] stands for, composed across steps. A temp relation maps
     to the union of the origins of what it materialized, so every
     observation — including each step's own temp_rows — lands on an
     original-query signature over base tables. *)
  let map_set origin s =
    Relset.fold (fun i acc -> Relset.union origin.(i) acc) s Relset.empty
  in
  let learn_card origin set rows =
    match feedback with
    | None -> ()
    | Some fb ->
      Feedback.observe_card fb ~catalog:(Session.catalog session) q0
        (map_set origin set) rows
  in
  let learn_exec origin (res : Executor.result) =
    match feedback with
    | None -> ()
    | Some fb ->
      List.iter
        (fun (obs : Executor.node_obs) ->
          Feedback.observe_card fb ~catalog:(Session.catalog session) q0
            (map_set origin obs.Executor.obs_set)
            obs.Executor.obs_actual)
        res.Executor.observations
  in
  let temp_names = ref [] in
  (* Observed peak resident row-slots across the whole re-opt run: every
     phase (materialization or final execution) runs with the temp tables
     of earlier steps still live — one cell per row per column, the same
     unit as [Executor.result.peak_rows] — so the run's peak is the max
     over phases of (live temp cells + the phase executor's peak). *)
  let live_slots = ref 0 in
  let peak = ref 0 in
  let rec loop q origin steps plan_times step_count =
    let prepared =
      match initial with
      | Some p when step_count = 0 && Session.query p == q -> p
      | Some _ | None -> Session.prepare session q
    in
    let plan, pstats, _estimator =
      if step_count = 0 then Session.plan ~lint prepared ~mode
      else
        Trace.span "reopt.replan"
          ~attrs:[ ("query", q.Query.name) ]
          (fun () -> Session.plan ~lint prepared ~mode)
    in
    let plan_times = pstats.Rdb_plan.Optimizer.plan_ms :: plan_times in
    let trigger_hit =
      if step_count >= max_steps then None else find_trigger prepared plan trigger
    in
    match trigger_hit with
    | None ->
      let final_exec =
        Trace.span "reopt.execute"
          ~attrs:[ ("query", q.Query.name) ]
          (fun () ->
            (* learn:false — the session would key observations against
               the rewritten query; learn_exec re-keys them below. *)
            Session.execute ?work_budget ?deadline_ms ~learn:false prepared
              plan)
      in
      learn_exec origin final_exec;
      peak := Int.max !peak (!live_slots + final_exec.Executor.peak_rows);
      (q, plan, final_exec, List.rev steps, List.rev plan_times)
    | Some (jnode, set, est, q_err) ->
      let temp_cols = needed_cols q set in
      let aliases = List.map (Query.rel_alias q) (Relset.to_list set) in
      let mat =
        Trace.span "reopt.materialize"
          ~attrs:
            [ ("query", q.Query.name); ("set", String.concat "," aliases) ]
          (fun () ->
            Executor.materialize ?work_budget ?deadline_ms
              ~catalog:(Session.catalog session) ~query:q ~cols:temp_cols
              (Plan.Join jnode))
      in
      peak := Int.max !peak (!live_slots + mat.Executor.mat_peak_rows);
      let temp_name = Session.fresh_temp_name session in
      temp_names := temp_name :: !temp_names;
      let schema = temp_schema session q temp_cols in
      let table =
        Table.of_rows ~name:temp_name ~schema mat.Executor.mat_rows
      in
      (* registered in temp_names just above, so the outer match drops it:
         @cleanup_ok cleanup_temps runs on both exits of [run] below *)
      Catalog.add_table (Session.catalog session) table;
      live_slots := !live_slots + (Table.nrows table * List.length temp_cols);
      Trace.span "reopt.analyze"
        ~attrs:[ ("table", temp_name) ]
        (fun () -> Session.analyze_table session temp_name);
      Metrics.incr "reopt.steps";
      Metrics.incr ~by:(Table.nrows table) "reopt.temp_rows";
      let q' = rewrite q ~set ~temp_name ~temp_cols in
      (* The rewrite is exactly where silent invariant breakage (dangling
         aliases, predicates on materialized-away columns) turns into wrong
         answers: re-lint the rewritten query with the temp table bound. *)
      if lint then
        Rdb_analysis.Debug.check_query_exn
          ~catalog:(Session.catalog session) q';
      (* Symbolic proof that the rewrite preserved the query: inline the
         temp table back and require isomorphism between the conjunctive
         normal forms (bag equivalence — these are COUNT/SUM queries). *)
      if verify then
        Rdb_verify.Debug.check_step_exn ~catalog:(Session.catalog session)
          ~original:q ~set ~temp_cols ~temp_name q';
      let step =
        {
          materialized_set = set;
          materialized_aliases = aliases;
          temp_name;
          temp_rows = Table.nrows table;
          trigger_q_error = q_err;
          trigger_est = est;
          mat_ms = mat.Executor.mat_elapsed_ms;
          mat_work = mat.Executor.mat_work;
          replan_ms = 0.0;
          query_after = q';
        }
      in
      (* The materialization just paid for a true cardinality; remember it
         under the original query's signature. *)
      learn_card origin set (Table.nrows table);
      let keep =
        List.filter
          (fun i -> not (Relset.mem i set))
          (List.init (Query.n_rels q) Fun.id)
      in
      let origin' =
        Array.append
          (Array.of_list (List.map (fun i -> origin.(i)) keep))
          [| map_set origin set |]
      in
      loop q' origin' (step :: steps) plan_times (step_count + 1)
  in
  let cleanup_temps () =
    List.iter
      (fun name ->
        Catalog.drop_table (Session.catalog session) name;
        Rdb_stats.Db_stats.drop (Session.stats session) ~table:name)
      !temp_names
  in
  match loop q0 (Array.init (Query.n_rels q0) Relset.singleton) [] [] 0 with
  | final_query, final_plan, final_exec, steps, plan_times ->
    if cleanup then cleanup_temps ();
    (* plan_times.(0) planned the original query; plan_times.(i) planned
       the SELECT that step i's rewrite produced. The loop plans exactly
       once per iteration and runs one iteration more than it steps, so
       the tails zip one-to-one. *)
    let steps =
      match plan_times with
      | [] -> assert false
      | _initial :: replans ->
        assert (List.compare_lengths replans steps = 0);
        List.map2 (fun s ms -> { s with replan_ms = ms }) steps replans
    in
    let mat_ms = List.fold_left (fun acc s -> acc +. s.mat_ms) 0.0 steps in
    let mat_work = List.fold_left (fun acc s -> acc + s.mat_work) 0 steps in
    {
      steps;
      final_query;
      final_plan;
      final_exec;
      initial_plan_ms =
        (match plan_times with ms :: _ -> ms | [] -> 0.0);
      total_plan_ms = List.fold_left ( +. ) 0.0 plan_times;
      total_exec_ms = mat_ms +. final_exec.Executor.elapsed_ms;
      total_work = mat_work + final_exec.Executor.work;
      peak_rows = !peak;
    }
  | exception e ->
    (* Unconditional even under ~cleanup:false: that flag means "let the
       caller inspect the temps of a *successful* run"; an aborted run
       (budget blown mid-materialization, verify failure) returns no step
       list, so the caller has no way to learn the temp names and the
       tables would be stranded in the catalog forever. *)
    cleanup_temps ();
    raise e
