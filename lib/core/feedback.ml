module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Executor = Rdb_exec.Executor
module Metrics = Rdb_obs.Metrics
module J = Rdb_obs.Json

type entry = {
  value : float;
  epochs : (string * int) list;
      (* member tables with their Catalog.mod_count at observe time,
         sorted by table name; any bump makes the entry stale *)
}

type t = {
  mu : Mutex.t;
  (* @guarded_by mu *)
  tbl : (string, entry) Hashtbl.t;
  (* @guarded_by mu *)
  mutable frozen : bool;
}

let create () =
  { mu = Mutex.create (); tbl = Hashtbl.create 256; frozen = false }

(* Metrics counters are only ever bumped outside the store lock. *)

(* @with_lock mu *)
let locked t f = Mutex.protect t.mu f

(* ---- canonical sub-join signatures ---- *)

(* Every variable-length component is length-prefixed before
   concatenation, so the encoding is injective no matter which characters
   appear inside predicate constants: "3:abc" can only ever be read back
   as the three bytes "abc". The previous encoding joined components with
   bare "|" / ";" / "||" separators, and [Predicate.to_sql] embeds raw
   [Value.to_string] output — a string constant containing a separator
   collided distinct sub-joins into one key and cross-contaminated their
   corrections. *)
let frame s = Printf.sprintf "%d:%s" (String.length s) s

(* Alias-independent rendering of one relation: table name plus its sorted
   predicates over positional column names. *)
let rel_signature (q : Query.t) rel =
  let preds =
    Query.preds_of_cols q rel
    |> List.map (fun (col, p) ->
           Predicate.to_sql ~col:(Printf.sprintf "c%d" col) p)
    |> List.sort String.compare
  in
  frame q.Query.rels.(rel).Query.table
  ^ String.concat "" (List.map frame preds)

let signature (q : Query.t) s =
  let members =
    Relset.to_list s |> List.map (rel_signature q) |> List.sort String.compare
  in
  let edges =
    Query.edges_within q s
    |> List.map (fun { Query.l; r } ->
           let side (cr : Query.colref) =
             frame (rel_signature q cr.Query.rel)
             ^ frame (string_of_int cr.Query.col)
           in
           let a = side l and b = side r in
           if String.compare a b <= 0 then frame a ^ frame b
           else frame b ^ frame a)
    |> List.sort String.compare
  in
  "m"
  ^ frame (String.concat "" (List.map frame members))
  ^ "e"
  ^ frame (String.concat "" (List.map frame edges))

(* ---- staleness epochs ---- *)

let epochs_of ~catalog (q : Query.t) s =
  Relset.to_list s
  |> List.map (fun i -> q.Query.rels.(i).Query.table)
  |> List.sort_uniq String.compare
  |> List.map (fun name -> (name, Catalog.mod_count catalog name))

let fresh ~catalog e =
  List.for_all
    (fun (name, mods) -> Catalog.mod_count catalog name = mods)
    e.epochs

(* ---- observation ---- *)

let observe_card t ~catalog q s card =
  let key = signature q s in
  let e = { value = float_of_int card; epochs = epochs_of ~catalog q s } in
  let recorded =
    locked t (fun () ->
        if t.frozen then false
        else begin
          Hashtbl.replace t.tbl key e;
          true
        end)
  in
  if recorded then Metrics.incr "feedback.observed"

let observe t ~catalog q (result : Executor.result) =
  List.iter
    (fun (obs : Executor.node_obs) ->
      observe_card t ~catalog q obs.Executor.obs_set obs.Executor.obs_actual)
    result.Executor.observations

let set_frozen t b = locked t (fun () -> t.frozen <- b)

(* ---- lookup ---- *)

let lookup t ~catalog q s =
  Metrics.incr "feedback.lookups";
  let key = signature q s in
  let r =
    locked t (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> `Miss
        | Some e when fresh ~catalog e -> `Hit e.value
        | Some _ ->
          (* A member table's mod_count moved since the observation:
             ANALYZE or ingest invalidated it. Drop rather than decay — a
             wrong "correction" is worse than none (§IV-E). *)
          Hashtbl.remove t.tbl key;
          `Stale)
  in
  match r with
  | `Hit v ->
    Metrics.incr "feedback.hits";
    Some v
  | `Stale ->
    Metrics.incr "feedback.stale_dropped";
    None
  | `Miss -> None

(* ---- gating ---- *)

let gate ~fragile lookup s =
  match lookup s with
  | None -> None
  | Some v ->
    (* A correction at or below a flip-fragile join feeds an estimate the
       plan's optimality pivots on while the surrounding estimates stay
       uncorrected — exactly the partial-correction mechanism the paper
       shows picking worse plans. Serve only corrections that cannot
       reach a fragile join from below. *)
    if List.exists (fun f -> Relset.subset s f) fragile then begin
      Metrics.incr "feedback.gate_blocked";
      None
    end
    else Some v

(* ---- introspection ---- *)

let size t = locked t (fun () -> Hashtbl.length t.tbl)

let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun k e acc -> (k, e.value) :: acc) t.tbl [])
  |> List.sort compare

let clear t = locked t (fun () -> Hashtbl.reset t.tbl)

(* ---- persistence ---- *)

let to_json t =
  let es =
    locked t (fun () ->
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.tbl [])
    |> List.sort compare
  in
  J.Obj
    [
      ("store", J.Str "feedback");
      ("version", J.Int 1);
      ( "entries",
        J.List
          (List.map
             (fun (k, e) ->
               J.Obj
                 [
                   ("key", J.Str k);
                   ("value", J.Float e.value);
                   ( "epochs",
                     J.List
                       (List.map
                          (fun (name, mods) ->
                            J.Obj
                              [
                                ("table", J.Str name); ("mods", J.Int mods);
                              ])
                          e.epochs) );
                 ])
             es) );
    ]

let of_json j =
  let num = function
    | J.Int i -> Some (float_of_int i)
    | J.Float f -> Some f
    | _ -> None
  in
  let epoch_of_json = function
    | J.Obj pf -> (
      match (List.assoc_opt "table" pf, List.assoc_opt "mods" pf) with
      | Some (J.Str name), Some (J.Int mods) -> Some (name, mods)
      | _ -> None)
    | _ -> None
  in
  (* @requires mu *)
  let entry_of_json t = function
    | J.Obj ef -> (
      match
        ( List.assoc_opt "key" ef,
          Option.bind (List.assoc_opt "value" ef) num,
          List.assoc_opt "epochs" ef )
      with
      | Some (J.Str key), Some value, Some (J.List eps) ->
        let eps = List.map epoch_of_json eps in
        if List.exists Option.is_none eps then false
        else begin
          Hashtbl.replace t.tbl key
            { value; epochs = List.filter_map Fun.id eps };
          true
        end
      | _ -> false)
    | _ -> false
  in
  match j with
  | J.Obj fields -> (
    match
      (List.assoc_opt "store" fields, List.assoc_opt "entries" fields)
    with
    | Some (J.Str "feedback"), Some (J.List es) ->
      let t = create () in
      if locked t (fun () -> List.for_all (entry_of_json t) es) then Some t
      else None
    | _ -> None)
  | _ -> None

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json t));
      output_char oc '\n')

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> None
  | contents -> Option.bind (J.parse_opt contents) of_json
