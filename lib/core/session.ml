module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Db_stats = Rdb_stats.Db_stats
module Analyze = Rdb_stats.Analyze
module Estimator = Rdb_card.Estimator
module Oracle = Rdb_card.Oracle
module Plan = Rdb_plan.Plan
module Optimizer = Rdb_plan.Optimizer
module Search_space = Rdb_plan.Search_space
module Executor = Rdb_exec.Executor
module Trace = Rdb_obs.Trace

type t = {
  catalog : Catalog.t;
  stats : Db_stats.t;
  cost_params : Rdb_cost.Cost_model.params;
  feedback : Feedback.t option;
  mutable temp_counter : int;
}

let create ?(cost_params = Rdb_cost.Cost_model.default) ?feedback catalog =
  (* Make RDB_LINT=1 / RDB_VERIFY=1 effective for every session-driven
     pipeline: the optimizer's hooks are refs precisely so the plan layer
     need not depend on the libraries that check it. *)
  Rdb_analysis.Debug.install ();
  Rdb_verify.Debug.install ();
  {
    catalog;
    stats = Db_stats.create ();
    cost_params;
    feedback;
    temp_counter = 0;
  }

let with_stats_of parent =
  {
    catalog = Catalog.copy parent.catalog;
    stats = Db_stats.copy parent.stats;
    cost_params = parent.cost_params;
    (* Deliberately shared, not copied: the store is mutex-protected and
       records true cardinalities, so parallel workers learning into one
       knowledge base always agree on values. *)
    feedback = parent.feedback;
    temp_counter = 0;
  }

let catalog t = t.catalog
let stats t = t.stats
let cost_params t = t.cost_params
let feedback t = t.feedback

(* ANALYZE moves the statistics a plan was costed against, so it counts as
   a modification of the table: the server's plan cache keys its staleness
   check on these counters. *)
let analyze ?buckets ?mcv_slots t =
  Analyze.all ?buckets ?mcv_slots t.catalog t.stats;
  List.iter
    (fun tbl -> Catalog.touch t.catalog (Table.name tbl))
    (Catalog.tables t.catalog)

let analyze_table t name =
  let tbl = Catalog.table_exn t.catalog name in
  Db_stats.set t.stats ~table:name (Analyze.table tbl);
  Catalog.touch t.catalog name

let fresh_temp_name t =
  t.temp_counter <- t.temp_counter + 1;
  Printf.sprintf "temp_%d" t.temp_counter

type prepared = {
  session : t;
  q : Query.t;
  oracle : Oracle.t;
  space : Search_space.t;
}

let prepare t q =
  Trace.span "session.prepare"
    ~attrs:[ ("query", q.Query.name) ]
    (fun () ->
      (match Query.validate t.catalog q with
       | Ok () -> ()
       | Error msg -> invalid_arg ("Session.prepare: " ^ msg));
      let graph = Join_graph.make q in
      {
        session = t;
        q;
        oracle = Oracle.create t.catalog q;
        space = Search_space.build graph;
      })

let query p = p.q
let oracle p = p.oracle
let space p = p.space
let session p = p.session

(* Pessimistic mode: clamp every memoized estimate to the verifier's sound
   [lo, hi] interval before it reaches the cost model. *)
let bound_of p ~pessimistic =
  if not pessimistic then None
  else begin
    let ctx =
      Rdb_verify.Card_bound.create ~catalog:p.session.catalog
        ~stats:p.session.stats p.q
    in
    Some
      (fun s v ->
        let v' = Rdb_verify.Card_bound.clamp ctx s v in
        if v' <> v then Rdb_obs.Metrics.incr "verify.clamped";
        v')
  end

let plan ?lint ?verify ?sensitivity ?(pessimistic = false) ?log p ~mode =
  Trace.span "session.plan"
    ~attrs:[ ("query", p.q.Query.name) ]
    (fun () ->
      let estimator =
        Estimator.create ?log ?bound:(bound_of p ~pessimistic) ~mode
          ~catalog:p.session.catalog ~stats:p.session.stats ~oracle:p.oracle
          p.q
      in
      let plan, stats =
        Optimizer.plan ?lint ?verify ?sensitivity ~space:p.space
          ~cost_params:p.session.cost_params ~catalog:p.session.catalog
          ~estimator p.q
      in
      (plan, stats, estimator))

let plan_robust ?lint ?verify ?sensitivity ?(pessimistic = false) ?log
    ~uncertainty p ~mode =
  Trace.span "session.plan_robust"
    ~attrs:[ ("query", p.q.Query.name) ]
    (fun () ->
      let estimator =
        Estimator.create ?log ?bound:(bound_of p ~pessimistic) ~mode
          ~catalog:p.session.catalog ~stats:p.session.stats ~oracle:p.oracle
          p.q
      in
      let plan, stats =
        Optimizer.plan_robust ?lint ?verify ?sensitivity ~space:p.space
          ~cost_params:p.session.cost_params ~uncertainty
          ~catalog:p.session.catalog ~estimator p.q
      in
      (plan, stats, estimator))

(* The resource certifier with the session's sound bounds: the verifier's
   cardinality intervals drive the memory/work corner evaluation, and the
   prepared search space is reused across the transition simulation's
   pinned replans. *)
let certify ?transitions ?threshold ?max_steps ?estimator p plan =
  Trace.span "session.certify"
    ~attrs:[ ("query", p.q.Query.name) ]
    (fun () ->
      let estimator =
        match estimator with
        | Some e -> e
        | None ->
          Estimator.create ~mode:Estimator.Default ~catalog:p.session.catalog
            ~stats:p.session.stats ~oracle:p.oracle p.q
      in
      let ctx =
        Rdb_verify.Card_bound.create ~catalog:p.session.catalog
          ~stats:p.session.stats p.q
      in
      Rdb_analysis.Resource.certify
        ~bounds:(Rdb_verify.Card_bound.interval ctx)
        ?transitions ?threshold ?max_steps ~space:p.space
        ~cost_params:p.session.cost_params ~catalog:p.session.catalog
        ~estimator p.q plan)

let execute ?work_budget ?deadline_ms ?adaptive ?(learn = true) p plan =
  Trace.span "session.execute"
    ~attrs:[ ("query", p.q.Query.name) ]
    (fun () ->
      let res =
        Executor.execute ?work_budget ?deadline_ms ?adaptive
          ~catalog:p.session.catalog ~query:p.q plan
      in
      (match p.session.feedback with
       | Some fb when learn ->
         Feedback.observe fb ~catalog:p.session.catalog p.q res
       | Some _ | None -> ());
      res)

(* Feedback estimation: consult the session's store before the default
   composition. Naive mode serves every fresh correction — the paper's
   §IV-E warning is that a *partially* corrected query mixes true and
   mis-estimated cardinalities, and the optimizer, now confidently wrong,
   pivots onto estimates that are still bad. Gated mode therefore
   validates at the plan level: plan with the corrections served, give
   every confirmed subset a point envelope (its correction is a true
   cardinality by construction) and every other subset the paper's
   factor-32 error model, and ask the robustness analyzer whether any
   corner of the unconfirmed envelopes flips the chosen plan. No flip
   means the plan's shape does not depend on any estimate the store has
   not confirmed — accept it. Otherwise drop the corrections at or under
   the unconfirmed pivots ({!Feedback.gate}) and re-validate the cheaper
   mix; if even that plan pivots on an unconfirmed estimate, the query
   keeps its uncorrected default plan. *)
let feedback_mode ?(gated = false) p fb =
  let catalog = p.session.catalog in
  let lookup s = Feedback.lookup fb ~catalog p.q s in
  if not gated then Estimator.Feedback lookup
  else begin
    (* Unconfirmed estimates may be wrong by the paper's factor 32 — but
       never outside the verifier's sound cardinality bounds, whose
       intersection keeps the gate from rejecting plans over errors that
       provably cannot happen. *)
    let unconfirmed =
      let bound_ctx =
        Rdb_verify.Card_bound.create ~catalog ~stats:p.session.stats p.q
      in
      Rdb_analysis.Sensitivity.intersect
        (Rdb_analysis.Sensitivity.q_envelope 32.0)
        (Rdb_analysis.Sensitivity.of_intervals
           (Rdb_verify.Card_bound.interval bound_ctx))
    in
    let unconfirmed_pivots eff_lookup =
      let mode = Estimator.Feedback eff_lookup in
      let chosen, _, estimator = plan p ~mode in
      let envelope set ~est =
        match eff_lookup set with
        | Some v -> (v, v)
        | None -> unconfirmed set ~est
      in
      let report =
        Rdb_analysis.Sensitivity.analyze ~envelope ~corner_replans:true
          ~corner_limit:max_int ~space:p.space
          ~cost_params:p.session.cost_params ~catalog ~estimator p.q chosen
      in
      Rdb_analysis.Sensitivity.fragile_sets report
    in
    match unconfirmed_pivots lookup with
    | [] -> Estimator.Feedback lookup
    | fragile ->
      let filtered = Feedback.gate ~fragile lookup in
      if unconfirmed_pivots filtered = [] then Estimator.Feedback filtered
      else Estimator.Default
  end
