type column = { name : string; ty : Value.ty }

type fk = { fk_col : int; ref_table : string; ref_col : string }

type t = {
  cols : column array;
  by_name : (string, int) Hashtbl.t;
  unique : bool array;
  not_null : bool array;
  fks : fk list;
}

let make ?(unique = []) ?(not_null = []) ?(fks = []) cols =
  let arr = Array.of_list cols in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add by_name c.name i)
    arr;
  let resolve what name =
    match Hashtbl.find_opt by_name name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Schema.make: %s names unknown column %s" what name)
  in
  let flags what names =
    let a = Array.make (Array.length arr) false in
    List.iter (fun name -> a.(resolve what name) <- true) names;
    a
  in
  let fks =
    List.map
      (fun (col, ref_table, ref_col) ->
        { fk_col = resolve "foreign key" col; ref_table; ref_col })
      fks
  in
  (let seen = Hashtbl.create 4 in
   List.iter
     (fun f ->
       if Hashtbl.mem seen f.fk_col then
         invalid_arg
           ("Schema.make: two foreign keys on column " ^ arr.(f.fk_col).name);
       Hashtbl.add seen f.fk_col ())
     fks);
  {
    cols = arr;
    by_name;
    unique = flags "unique constraint" unique;
    not_null = flags "not-null constraint" not_null;
    fks;
  }

let arity t = Array.length t.cols
let columns t = t.cols
let column t i = t.cols.(i)
let find t name = Hashtbl.find_opt t.by_name name
let find_exn t name =
  match find t name with Some i -> i | None -> raise Not_found

let is_unique t i = t.unique.(i)
let is_not_null t i = t.not_null.(i)
let fk_of t i = List.find_opt (fun f -> f.fk_col = i) t.fks
let fks t = t.fks

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun c -> c.name ^ " " ^ Value.ty_to_string c.ty)
             t.cols)))
