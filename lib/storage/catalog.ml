type t = {
  tables : (string, Table.t) Hashtbl.t;
  indexes : (string * int, Hash_index.t) Hashtbl.t;
  mods : (string, int) Hashtbl.t;
}

let create () =
  {
    tables = Hashtbl.create 32;
    indexes = Hashtbl.create 64;
    mods = Hashtbl.create 32;
  }

let copy t =
  {
    tables = Hashtbl.copy t.tables;
    indexes = Hashtbl.copy t.indexes;
    mods = Hashtbl.copy t.mods;
  }

let mod_count t name = Option.value ~default:0 (Hashtbl.find_opt t.mods name)

let touch t name = Hashtbl.replace t.mods name (mod_count t name + 1)

let add_table t table =
  Hashtbl.replace t.tables (Table.name table) table;
  touch t (Table.name table)

let table t name = Hashtbl.find_opt t.tables name

let table_exn t name =
  match table t name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Catalog: unknown table " ^ name)

let tables t =
  Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []
  |> List.sort (fun a b -> String.compare (Table.name a) (Table.name b))

let add_index t ~table:name ~col =
  let tbl = table_exn t name in
  Hashtbl.replace t.indexes (name, col) (Hash_index.build tbl ~col)

let index t ~table:name ~col = Hashtbl.find_opt t.indexes (name, col)

let indexes_on t name =
  Hashtbl.fold
    (fun (tname, col) _ acc -> if String.equal tname name then col :: acc else acc)
    t.indexes []
  |> List.sort Int.compare

let drop_table t name =
  Hashtbl.remove t.tables name;
  let cols = indexes_on t name in
  List.iter (fun col -> Hashtbl.remove t.indexes (name, col)) cols;
  touch t name
