(** Relation schemas: ordered, named, typed columns, plus optional declared
    integrity constraints (unique columns, foreign keys, not-null columns).

    Constraints are declarations, not enforced by the storage layer: the
    generators are expected to produce data satisfying them, the verifier's
    cardinality-bound analysis treats them as ground truth, and the test
    suite re-validates them against the actual data. *)

type column = { name : string; ty : Value.ty }

type fk = { fk_col : int; ref_table : string; ref_col : string }
(** [fk_col] (a position in this schema) references column [ref_col] of
    table [ref_table]. The referenced column is expected to be unique and
    every non-NULL value of [fk_col] is expected to appear in it. *)

type t

val make :
  ?unique:string list ->
  ?not_null:string list ->
  ?fks:(string * string * string) list ->
  column list ->
  t
(** Column names must be distinct; raises [Invalid_argument] otherwise.
    [unique] and [not_null] name columns of this schema; [fks] lists
    [(column, referenced table, referenced column)] triples. Constraint
    column names must resolve; the referenced table is checked lazily by
    consumers (it may not exist yet when the schema is built). *)

val arity : t -> int
val columns : t -> column array
val column : t -> int -> column

val find : t -> string -> int option
(** Position of a column by name. *)

val find_exn : t -> string -> int
(** Like {!find} but raises [Not_found]. *)

val is_unique : t -> int -> bool
(** The column was declared unique (no duplicate non-NULL values). *)

val is_not_null : t -> int -> bool
(** The column was declared free of NULLs. *)

val fk_of : t -> int -> fk option
(** The foreign-key declaration on a column, if any. *)

val fks : t -> fk list

val pp : Format.formatter -> t -> unit
