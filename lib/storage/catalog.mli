(** The catalog: named tables and their hash indexes. Statistics live in
    [Rdb_stats.Db_stats], keyed by table name, so that the storage layer
    does not depend on the statistics layer. *)

type t

val create : unit -> t

val copy : t -> t
(** A shallow copy: fresh name→table and index maps over the {e same}
    table and index values. Tables are immutable once built, so a copy is
    a safe, cheap way to give a concurrent session its own namespace —
    temp tables added to (or dropped from) the copy never touch the
    original. *)

val add_table : t -> Table.t -> unit
(** Registers (or replaces) a table under its own name. *)

val table : t -> string -> Table.t option
val table_exn : t -> string -> Table.t
val tables : t -> Table.t list
(** All tables, sorted by name. *)

val add_index : t -> table:string -> col:int -> unit
(** Build and register a hash index on an integer column. *)

val index : t -> table:string -> col:int -> Hash_index.t option

val indexes_on : t -> string -> int list
(** Indexed column positions of a table. *)

val drop_table : t -> string -> unit
(** Removes the table and its indexes; used to clean up temp tables. *)

val mod_count : t -> string -> int
(** Modification counter of a table name: bumped by {!add_table},
    {!drop_table} and {!touch}, and by ANALYZE through the session layer —
    so "the counter moved" means "plans built against this table's old
    data or statistics may be stale". 0 for a name never touched. Counters
    are per-catalog: a {!copy} starts from the parent's values and then
    evolves independently. *)

val touch : t -> string -> unit
(** Bump a table's modification counter without changing the table —
    the statistics layer (and tests) record stats movement this way. *)
