(** Counts the cardinality estimates an optimizer run asks for, bucketed by
    the number of relations joined. Reproduces Table I: the sheer volume of
    multi-way join estimates is the paper's argument for why "just fix the
    estimator" is a steep road. *)

type t

val create : unit -> t

val record : t -> size:int -> unit

val count : t -> size:int -> int

val counts : t -> (int * int) list
(** [(size, count)] pairs for sizes with a non-zero count, ascending. *)

val total : t -> int

val add_into : t -> into:t -> unit
(** Accumulate one log into another (per-query logs into a workload log). *)
