(** The true-cardinality oracle: for any connected set of relations [S] in a
    query, the exact number of rows produced by joining the members of [S]
    with all their base predicates applied.

    This is what the paper extracts from [EXPLAIN ANALYZE] (for the
    re-optimization trigger) and what it injects into the optimizer for the
    perfect-(n) experiments. Sub-joins are materialized bottom-up, projected
    onto their "boundary" join columns only, and cached; cardinalities are
    cached permanently, tuple buffers only while the next layer is built. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query

type t

val create : Catalog.t -> Query.t -> t

val query : t -> Query.t

val base_rows : t -> int -> int
(** Filtered cardinality of a single relation (its predicates applied). *)

val filtered_rowids : t -> int -> int array
(** Row ids of a relation surviving its predicates. Do not mutate. *)

val true_card : t -> Relset.t -> int
(** True cardinality of a connected, non-empty relation set. Computed on
    demand; raises [Invalid_argument] on disconnected or empty sets. *)

val ensure_up_to : t -> int -> unit
(** Precompute [true_card] for every connected subset of at most the given
    size, bottom-up, releasing intermediate tuple memory along the way. *)

val stats : t -> int * int
(** (number of cached cardinalities, rows materialized so far); for tests
    and diagnostics. *)

val uses_tree_engine : t -> bool
(** Whether the query's join-attribute class graph is a tree, enabling the
    factorized sum-product counting engine; non-tree queries fall back to
    bottom-up materialization of boundary projections. *)
