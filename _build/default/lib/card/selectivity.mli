(** Restriction selectivity estimation from column statistics, following
    PostgreSQL's formulas and — crucially for this paper — its simplifying
    assumptions: uniformity inside histogram buckets, independence between
    predicates, and fixed default selectivities for patterns it cannot
    analyze. These assumptions are exactly the error sources of §IV. *)

module Col_stats := Rdb_stats.Col_stats

val of_pred : Col_stats.t -> Rdb_query.Predicate.t -> float
(** Selectivity of one predicate on a column, in [\[0,1\]]. *)

val of_preds : Col_stats.t list -> Rdb_query.Predicate.t list -> float
(** Combined selectivity under the independence assumption (product),
    stats and predicates paired positionally. *)

val default_eq : float
(** Fallback equality selectivity when statistics offer nothing. *)

val default_range : float
(** PostgreSQL's DEFAULT_INEQ_SEL. *)

val default_match : float
(** PostgreSQL's DEFAULT_MATCH_SEL, used for LIKE patterns. *)
