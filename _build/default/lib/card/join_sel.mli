(** Equi-join selectivity, following PostgreSQL's [eqjoinsel_inner]: when
    both sides have MCV lists, match them against each other; the remaining
    mass joins under the uniformity assumption [1 / max(nd1, nd2)].

    MCV matching is why PostgreSQL predicts skewed joins correctly when the
    predicate is on the join column itself, yet fails when the skewed value
    is selected through another table — the paper's Nasdaq example
    (§IV-C). *)

module Col_stats := Rdb_stats.Col_stats

val eq_join : Col_stats.t -> Col_stats.t -> float
(** Selectivity of [l = r] given the two join columns' statistics. *)

val uniform : nd1:int -> nd2:int -> float
(** The fallback [1 / max(nd1, nd2)]. *)
