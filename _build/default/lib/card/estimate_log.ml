let max_size = 62

type t = int array

let create () = Array.make (max_size + 1) 0

let record t ~size =
  assert (size >= 1 && size <= max_size);
  t.(size) <- t.(size) + 1

let count t ~size = t.(size)

let counts t =
  let acc = ref [] in
  for size = max_size downto 1 do
    if t.(size) > 0 then acc := (size, t.(size)) :: !acc
  done;
  !acc

let total t = Array.fold_left ( + ) 0 t

let add_into t ~into =
  Array.iteri (fun i c -> into.(i) <- into.(i) + c) t
