(** Index-based join sampling — the style of cardinality estimation the
    paper cites as the strongest practical contender (Leis et al., CIDR'17,
    reference [4]): estimate a sub-join's cardinality by pushing a uniform
    sample of rows through the actual joins, using the catalog's hash
    indexes.

    Per relation subset the estimator keeps a bounded sample of join
    results plus a scale factor; extending a subset joins the parent's
    sample against the next relation and re-caps. Estimates reflect skew
    and cross-join correlation that statistics cannot see, at the price of
    real index probes during planning — the trade-off §II-C discusses. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query

type t

val create :
  ?seed:int -> ?sample_size:int -> Catalog.t -> Query.t -> t
(** Default sample size 512 rows per subset. *)

val card : t -> Relset.t -> float
(** Estimated cardinality of a connected subset (>= 0; 0 means the sample
    found no joining rows). Memoized per subset. *)

val probes : t -> int
(** Total rows touched while sampling so far — the planning-time cost the
    paper warns about. *)
