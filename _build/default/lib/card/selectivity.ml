module Col_stats = Rdb_stats.Col_stats
module Mcv = Rdb_stats.Mcv
module Histogram = Rdb_stats.Histogram
module Predicate = Rdb_query.Predicate

let default_eq = 0.005
let default_range = 0.3333333333333333
let default_match = 0.005

let clamp = Rdb_util.Stat_utils.clamp ~lo:0.0 ~hi:1.0

(* var = v: MCV frequency when listed, otherwise the non-MCV mass spread
   uniformly over the remaining distinct values (PostgreSQL's var_eq_const). *)
let eq_sel (s : Col_stats.t) v =
  match Mcv.frequency s.mcv v with
  | Some f -> f
  | None ->
    let others = s.n_distinct - Mcv.count s.mcv in
    if others <= 0 then default_eq
    else
      let remaining_mass =
        1.0 -. s.null_frac -. Mcv.total_fraction s.mcv
      in
      clamp (remaining_mass /. float_of_int others)

let range_sel (s : Col_stats.t) op v =
  match v, s.hist with
  | Value.Int i, Some hist ->
    let frac_le = Histogram.fraction_le hist i in
    let frac_lt = if i = min_int then 0.0 else Histogram.fraction_le hist (i - 1) in
    let base =
      match op with
      | Predicate.Lt -> frac_lt
      | Predicate.Le -> frac_le
      | Predicate.Gt -> 1.0 -. frac_le
      | Predicate.Ge -> 1.0 -. frac_lt
      | Predicate.Eq | Predicate.Ne -> assert false
    in
    clamp (base *. (1.0 -. s.null_frac))
  | _ -> default_range

let like_sel (s : Col_stats.t) shape =
  (* Sum the frequencies of matching MCVs; charge the non-MCV remainder the
     default pattern selectivity. Without string histograms this is the best
     a PostgreSQL-style estimator can do, and it is suitably fallible. *)
  let mcv_match =
    List.fold_left
      (fun acc (v, f) ->
        match v with
        | Value.Str str when Predicate.like_holds shape str -> acc +. f
        | Value.Str _ | Value.Int _ | Value.Null -> acc)
      0.0
      (Mcv.entries s.mcv)
  in
  let residual = 1.0 -. s.null_frac -. Mcv.total_fraction s.mcv in
  clamp (mcv_match +. (Float.max 0.0 residual *. default_match))

let of_pred (s : Col_stats.t) (p : Predicate.t) =
  match p with
  | Predicate.Cmp (Predicate.Eq, v) -> clamp (eq_sel s v)
  | Predicate.Cmp (Predicate.Ne, v) ->
    clamp (1.0 -. s.null_frac -. eq_sel s v)
  | Predicate.Cmp (((Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge) as op), v) ->
    range_sel s op v
  | Predicate.Between (lo, hi) ->
    (match s.hist with
     | Some hist ->
       clamp (Histogram.fraction_between hist ~lo ~hi *. (1.0 -. s.null_frac))
     | None -> clamp (default_range *. default_range))
  | Predicate.In_list vs ->
    clamp (List.fold_left (fun acc v -> acc +. eq_sel s v) 0.0 vs)
  | Predicate.Like shape -> like_sel s shape
  | Predicate.Is_null -> clamp s.null_frac
  | Predicate.Is_not_null -> clamp (1.0 -. s.null_frac)

let of_preds stats preds =
  List.fold_left2 (fun acc s p -> acc *. of_pred s p) 1.0 stats preds
