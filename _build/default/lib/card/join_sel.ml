module Col_stats = Rdb_stats.Col_stats
module Mcv = Rdb_stats.Mcv

let clamp = Rdb_util.Stat_utils.clamp ~lo:0.0 ~hi:1.0

let uniform ~nd1 ~nd2 = 1.0 /. float_of_int (Int.max 1 (Int.max nd1 nd2))

(* Port of PostgreSQL's eqjoinsel_inner. [matchprodfreq] covers MCVs present
   on both sides; unmatched MCV mass and the non-MCV remainder are assumed
   uniformly spread over the other side's unseen distinct values. *)
let eq_join (s1 : Col_stats.t) (s2 : Col_stats.t) =
  let mcv1 = Mcv.entries s1.mcv and mcv2 = Mcv.entries s2.mcv in
  match mcv1, mcv2 with
  | [], _ | _, [] ->
    clamp
      (uniform ~nd1:s1.n_distinct ~nd2:s2.n_distinct
       *. (1.0 -. s1.null_frac) *. (1.0 -. s2.null_frac))
  | _ ->
    let tbl2 = Hashtbl.create (List.length mcv2) in
    List.iter (fun (v, f) -> Hashtbl.replace tbl2 v f) mcv2;
    let matchprodfreq = ref 0.0 in
    let matchfreq1 = ref 0.0 and matchfreq2 = ref 0.0 in
    let nmatches = ref 0 in
    List.iter
      (fun (v, f1) ->
        match Hashtbl.find_opt tbl2 v with
        | Some f2 ->
          matchprodfreq := !matchprodfreq +. (f1 *. f2);
          matchfreq1 := !matchfreq1 +. f1;
          matchfreq2 := !matchfreq2 +. f2;
          incr nmatches
        | None -> ())
      mcv1;
    let nvalues1 = List.length mcv1 and nvalues2 = List.length mcv2 in
    let unmatchfreq1 = Float.max 0.0 (Mcv.total_fraction s1.mcv -. !matchfreq1) in
    let unmatchfreq2 = Float.max 0.0 (Mcv.total_fraction s2.mcv -. !matchfreq2) in
    let otherfreq1 =
      Float.max 0.0 (1.0 -. s1.null_frac -. Mcv.total_fraction s1.mcv)
    in
    let otherfreq2 =
      Float.max 0.0 (1.0 -. s2.null_frac -. Mcv.total_fraction s2.mcv)
    in
    let nd1 = s1.n_distinct and nd2 = s2.n_distinct in
    let totalsel1 =
      let sel = ref !matchprodfreq in
      if nd2 > nvalues2 then
        sel := !sel +. (unmatchfreq1 *. otherfreq2 /. float_of_int (nd2 - nvalues2));
      if nd2 > !nmatches then
        sel :=
          !sel
          +. (otherfreq1 *. (otherfreq2 +. unmatchfreq2)
              /. float_of_int (nd2 - !nmatches));
      !sel
    in
    let totalsel2 =
      let sel = ref !matchprodfreq in
      if nd1 > nvalues1 then
        sel := !sel +. (unmatchfreq2 *. otherfreq1 /. float_of_int (nd1 - nvalues1));
      if nd1 > !nmatches then
        sel :=
          !sel
          +. (otherfreq2 *. (otherfreq1 +. unmatchfreq1)
              /. float_of_int (nd1 - !nmatches));
      !sel
    in
    clamp (Float.min totalsel1 totalsel2)
