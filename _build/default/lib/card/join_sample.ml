module Relset = Rdb_util.Relset
module Prng = Rdb_util.Prng
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Predicate = Rdb_query.Predicate

(* A sampled intermediate: row ids per member relation (in [rels] order),
   such that the full sub-join is approximated by [nrows * scale] rows. *)
type node = {
  rels : int array;
  width : int;
  data : int array;
  nrows : int;
  scale : float;
}

type t = {
  catalog : Catalog.t;
  q : Query.t;
  graph : Join_graph.t;
  prng : Prng.t;
  sample_size : int;
  nodes : (Relset.t, node) Hashtbl.t;
  mutable probes : int;
}

let create ?(seed = 17) ?(sample_size = 512) catalog q =
  {
    catalog;
    q;
    graph = Join_graph.make q;
    prng = Prng.create seed;
    sample_size;
    nodes = Hashtbl.create 64;
    probes = 0;
  }

let rel_table t i = Catalog.table_exn t.catalog t.q.Query.rels.(i).Query.table

let pos_of node rel =
  let rec scan i =
    if i >= node.width then invalid_arg "Join_sample: relation not present"
    else if node.rels.(i) = rel then i
    else scan (i + 1)
  in
  scan 0

(* Reservoir-style cap: keep at most [sample_size] tuples, folding the
   discarded fraction into the scale factor. *)
let cap t node =
  if node.nrows <= t.sample_size then node
  else begin
    let keep = t.sample_size in
    let chosen = Array.init node.nrows Fun.id in
    Prng.shuffle t.prng chosen;
    let data = Array.make (keep * node.width) 0 in
    for i = 0 to keep - 1 do
      Array.blit node.data (chosen.(i) * node.width) data (i * node.width)
        node.width
    done;
    {
      node with
      data;
      nrows = keep;
      scale = node.scale *. (float_of_int node.nrows /. float_of_int keep);
    }
  end

let singleton t rel =
  let tbl = rel_table t rel in
  let preds = Query.preds_of_cols t.q rel in
  let out = Rdb_util.Int_vec.create ~capacity:256 () in
  let n = Table.nrows tbl in
  t.probes <- t.probes + n;
  for row = 0 to n - 1 do
    let ok =
      List.for_all
        (fun (col, p) ->
          match Table.column tbl col with
          | Column.Ints cells -> Predicate.eval_int p cells.(row)
          | Column.Strs cells -> Predicate.eval_str p cells.(row))
        preds
    in
    if ok then Rdb_util.Int_vec.push out row
  done;
  let data = Rdb_util.Int_vec.to_array out in
  cap t
    { rels = [| rel |]; width = 1; data; nrows = Array.length data; scale = 1.0 }

let extend t parent r =
  let s' = Relset.of_list (Array.to_list parent.rels) in
  let edges = Query.edges_between t.q s' (Relset.singleton r) in
  let tbl = rel_table t r in
  (* Prefer an indexed join column on r; otherwise build a small hash over
     r's filtered rows. *)
  let indexed =
    List.find_map
      (fun e ->
        match
          Catalog.index t.catalog ~table:(Table.name tbl) ~col:e.Query.r.Query.col
        with
        | Some index -> Some (e, index)
        | None -> None)
      edges
  in
  let preds = Query.preds_of_cols t.q r in
  let row_ok row =
    List.for_all
      (fun (col, p) ->
        match Table.column tbl col with
        | Column.Ints cells -> Predicate.eval_int p cells.(row)
        | Column.Strs cells -> Predicate.eval_str p cells.(row))
      preds
  in
  let out = Rdb_util.Int_vec.create ~capacity:256 () in
  let emitted = ref 0 in
  let check_other_edges base row =
    List.for_all
      (fun e ->
        let pos = pos_of parent e.Query.l.Query.rel in
        let ov =
          Table.int_cell (rel_table t parent.rels.(pos))
            ~row:parent.data.(base + pos)
            ~col:e.Query.l.Query.col
        in
        ov <> Column.null_int
        && ov = Table.int_cell tbl ~row ~col:e.Query.r.Query.col)
      edges
  in
  let emit base row =
    for c = 0 to parent.width - 1 do
      Rdb_util.Int_vec.push out parent.data.(base + c)
    done;
    Rdb_util.Int_vec.push out row;
    incr emitted
  in
  (match indexed with
   | Some (e, index) ->
     let opos = pos_of parent e.Query.l.Query.rel in
     for i = 0 to parent.nrows - 1 do
       let base = i * parent.width in
       let key =
         Table.int_cell (rel_table t parent.rels.(opos))
           ~row:parent.data.(base + opos)
           ~col:e.Query.l.Query.col
       in
       if key <> Column.null_int then begin
         let candidates = Hash_index.lookup index key in
         t.probes <- t.probes + Array.length candidates;
         Array.iter
           (fun row ->
             if row_ok row && check_other_edges base row then emit base row)
           candidates
       end
     done
   | None ->
     let n = Table.nrows tbl in
     t.probes <- t.probes + (parent.nrows * n);
     for i = 0 to parent.nrows - 1 do
       let base = i * parent.width in
       for row = 0 to n - 1 do
         if row_ok row && check_other_edges base row then emit base row
       done
     done);
  cap t
    {
      rels = Array.append parent.rels [| r |];
      width = parent.width + 1;
      data = Rdb_util.Int_vec.to_array out;
      nrows = !emitted;
      scale = parent.scale;
    }

let rec node_of t s =
  match Hashtbl.find_opt t.nodes s with
  | Some node -> node
  | None ->
    let node =
      if Relset.cardinal s = 1 then singleton t (Relset.min_elt s)
      else begin
        let r = Join_graph.removable t.graph s in
        extend t (node_of t (Relset.remove r s)) r
      end
    in
    Hashtbl.replace t.nodes s node;
    node

let card t s =
  if Relset.is_empty s then invalid_arg "Join_sample.card: empty set";
  let node = node_of t s in
  float_of_int node.nrows *. node.scale

let probes t = t.probes
