lib/card/join_sample.ml: Array Catalog Column Fun Hash_index Hashtbl List Rdb_query Rdb_util Table
