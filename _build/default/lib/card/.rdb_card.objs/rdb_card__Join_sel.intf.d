lib/card/join_sel.mli: Rdb_stats
