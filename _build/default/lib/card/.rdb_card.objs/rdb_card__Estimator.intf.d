lib/card/estimator.mli: Catalog Estimate_log Hashtbl Join_sample Oracle Rdb_query Rdb_stats Rdb_util
