lib/card/estimate_log.ml: Array
