lib/card/join_sample.mli: Catalog Rdb_query Rdb_util
