lib/card/join_sel.ml: Float Hashtbl Int List Rdb_stats Rdb_util
