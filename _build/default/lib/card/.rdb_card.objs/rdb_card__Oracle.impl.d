lib/card/oracle.ml: Array Catalog Column Float Fun Hashtbl Int List Option Rdb_query Rdb_util Table
