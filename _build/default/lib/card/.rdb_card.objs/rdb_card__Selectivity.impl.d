lib/card/selectivity.ml: Float List Rdb_query Rdb_stats Rdb_util Value
