lib/card/estimator.ml: Array Catalog Estimate_log Float Hashtbl Join_sample Join_sel List Oracle Rdb_query Rdb_stats Rdb_util Selectivity Table Value
