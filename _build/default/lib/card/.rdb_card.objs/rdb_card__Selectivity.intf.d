lib/card/selectivity.mli: Rdb_query Rdb_stats
