lib/card/estimate_log.mli:
