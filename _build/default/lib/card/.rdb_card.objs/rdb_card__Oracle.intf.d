lib/card/oracle.mli: Catalog Rdb_query Rdb_util
