module Relset = Rdb_util.Relset
module Int_vec = Rdb_util.Int_vec
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Predicate = Rdb_query.Predicate

(* ------------------------------------------------------------------ *)
(* Two engines compute true cardinalities.

   The fast path applies when the query's join-attribute "class graph" is
   a tree: union the column references that its equi-join edges equate
   into classes; if the bipartite relation/class graph is acyclic (true
   for every JOB-shaped query, whose cycles only re-state the same
   equality), the cardinality of any connected relation subset factorizes,
   and we evaluate it by sum-product message passing over per-class count
   vectors — no intermediate result is ever materialized, so even the
   billion-row unfiltered sub-joins the perfect-(n) oracle must price are
   counted in milliseconds.

   The fallback materializes each sub-join bottom-up, projected onto its
   boundary join columns. It is exact for arbitrary (cyclic-class)
   queries but pays the full intermediate sizes. *)
(* ------------------------------------------------------------------ *)

(* A materialized sub-join (fallback engine): [width] cells per tuple,
   holding the values of the boundary columns [cols]. *)
type inter = {
  cols : (int * int) array;
  width : int;
  data : int array;
  inter_rows : int;
}

(* message maps: join-key value -> number of consistent join tuples *)
type msg_map = (int, float) Hashtbl.t

type t = {
  catalog : Catalog.t;
  q : Query.t;
  graph : Join_graph.t;
  cards : (Relset.t, int) Hashtbl.t;
  tuples : (Relset.t, inter) Hashtbl.t;
  filtered : int array option array;
  mutable ensured : int;
  mutable materialized_rows : int;
  (* class-tree machinery *)
  tree : bool;                         (* class graph is acyclic *)
  ports : (int * int) list array;      (* per rel: (class, col) pairs *)
  msg_single_memo : (Relset.t * int, msg_map) Hashtbl.t;
  msg_set_memo : (Relset.t * int, msg_map) Hashtbl.t;
}

(* ---- class analysis ---- *)

(* Union-find over the column references appearing in join edges. *)
let analyze_classes (q : Query.t) =
  let parent : (Query.colref, Query.colref) Hashtbl.t = Hashtbl.create 32 in
  let rec find cr =
    match Hashtbl.find_opt parent cr with
    | None -> cr
    | Some p ->
      let root = find p in
      if root <> p then Hashtbl.replace parent cr root;
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then if ra < rb then Hashtbl.replace parent rb ra
      else Hashtbl.replace parent ra rb
  in
  List.iter (fun { Query.l; r } -> union l r) q.Query.edges;
  (* Assign dense ids to class roots. *)
  let ids : (Query.colref, int) Hashtbl.t = Hashtbl.create 16 in
  let id_of root =
    match Hashtbl.find_opt ids root with
    | Some i -> i
    | None ->
      let i = Hashtbl.length ids in
      Hashtbl.add ids root i;
      i
  in
  let n = Query.n_rels q in
  let ports = Array.make n [] in
  let add_port (cr : Query.colref) =
    let cls = id_of (find cr) in
    let entry = (cls, cr.Query.col) in
    if not (List.mem entry ports.(cr.Query.rel)) then
      ports.(cr.Query.rel) <- entry :: ports.(cr.Query.rel)
  in
  List.iter
    (fun { Query.l; r } ->
      add_port l;
      add_port r)
    q.Query.edges;
  (* A relation whose two different columns land in one class would break
     the single-column-per-port invariant; treat as non-tree. *)
  let single_col_ports =
    Array.for_all
      (fun ps ->
        let classes = List.map fst ps in
        List.length classes = List.length (List.sort_uniq compare classes))
      ports
  in
  (* Acyclicity of the bipartite relation/class graph via union-find over
     nodes: relations are 0..n-1, classes are n, n+1, ... *)
  let n_classes = Hashtbl.length ids in
  let uf = Array.init (n + n_classes) Fun.id in
  let rec root i = if uf.(i) = i then i else begin uf.(i) <- root uf.(i); uf.(i) end in
  let acyclic = ref single_col_ports in
  Array.iteri
    (fun rel ps ->
      List.iter
        (fun (cls, _) ->
          let a = root rel and b = root (n + cls) in
          if a = b then acyclic := false else uf.(a) <- b)
        ps)
    ports;
  (!acyclic, ports)

let create catalog q =
  let tree, ports = analyze_classes q in
  {
    catalog;
    q;
    graph = Join_graph.make q;
    cards = Hashtbl.create 256;
    tuples = Hashtbl.create 64;
    filtered = Array.make (Query.n_rels q) None;
    ensured = 0;
    materialized_rows = 0;
    tree;
    ports;
    msg_single_memo = Hashtbl.create 64;
    msg_set_memo = Hashtbl.create 64;
  }

let query t = t.q

let rel_table t i = Catalog.table_exn t.catalog t.q.Query.rels.(i).Query.table

let filtered_rowids t i =
  match t.filtered.(i) with
  | Some rows -> rows
  | None ->
    let tbl = rel_table t i in
    let preds = Query.preds_of_cols t.q i in
    let out = Int_vec.create ~capacity:1024 () in
    let n = Table.nrows tbl in
    let survives row =
      List.for_all
        (fun (col, p) ->
          match Table.column tbl col with
          | Column.Ints cells -> Predicate.eval_int p cells.(row)
          | Column.Strs cells -> Predicate.eval_str p cells.(row))
        preds
    in
    for row = 0 to n - 1 do
      if survives row then Int_vec.push out row
    done;
    let rows = Int_vec.to_array out in
    t.filtered.(i) <- Some rows;
    rows

let base_rows t i = Array.length (filtered_rowids t i)

(* ---- sum-product engine ---- *)

(* Relations of [s] adjacent through any class except [cut]. *)
let components_without t s ~cut =
  let adjacent a b =
    List.exists
      (fun (ca, _) ->
        ca <> cut && List.exists (fun (cb, _) -> cb = ca) t.ports.(b))
      t.ports.(a)
  in
  let remaining = ref s and comps = ref [] in
  while not (Relset.is_empty !remaining) do
    let seed = Relset.min_elt !remaining in
    let comp = ref (Relset.singleton seed) in
    let changed = ref true in
    while !changed do
      changed := false;
      Relset.iter
        (fun i ->
          if (not (Relset.mem i !comp))
             && Relset.fold (fun j acc -> acc || adjacent i j) !comp false
          then begin
            comp := Relset.add i !comp;
            changed := true
          end)
        !remaining
    done;
    comps := !comp :: !comps;
    remaining := Relset.diff !remaining !comp
  done;
  !comps

let port_col t rel cls = List.assoc_opt cls t.ports.(rel)

let touches_class t comp cls =
  Relset.fold
    (fun i acc -> acc || port_col t i cls <> None)
    comp false

(* Pointwise product of message maps, iterating the smallest. *)
let product_maps maps =
  match maps with
  | [] -> None
  | [ m ] -> Some m
  | _ ->
    let sorted =
      List.sort (fun a b -> Int.compare (Hashtbl.length a) (Hashtbl.length b)) maps
    in
    (match sorted with
     | smallest :: rest ->
       let out : msg_map = Hashtbl.create (Hashtbl.length smallest) in
       Hashtbl.iter
         (fun v w ->
           let acc = ref w in
           let alive =
             List.for_all
               (fun m ->
                 match Hashtbl.find_opt m v with
                 | Some w' -> acc := !acc *. w'; true
                 | None -> false)
               rest
           in
           if alive then Hashtbl.replace out v !acc)
         smallest;
       Some out
     | [] -> None)

(* msg_set (B, c): number of join tuples of B per value of class c, where
   B may split into several independent branches once c is cut. *)
let rec msg_set t b ~cls =
  match Hashtbl.find_opt t.msg_set_memo (b, cls) with
  | Some m -> m
  | None ->
    let comps = components_without t b ~cut:cls in
    let maps = List.map (fun comp -> msg_single t comp ~cls) comps in
    let m =
      match product_maps maps with
      | Some m -> m
      | None -> Hashtbl.create 1
    in
    Hashtbl.replace t.msg_set_memo (b, cls) m;
    m

(* msg_single (comp, c): comp stays connected with c cut, so exactly one
   relation in it (the hub) carries a port of class c. *)
and msg_single t comp ~cls =
  match Hashtbl.find_opt t.msg_single_memo (comp, cls) with
  | Some m -> m
  | None ->
    let hub =
      match
        List.filter (fun i -> port_col t i cls <> None) (Relset.to_list comp)
      with
      | [ h ] -> h
      | _ -> invalid_arg "Oracle: class graph is not a tree"
    in
    let out_col =
      match port_col t hub cls with Some c -> c | None -> assert false
    in
    let rest = Relset.remove hub comp in
    (* Branches of [rest], grouped by the hub port class they hang on. *)
    let branches =
      List.map
        (fun sub ->
          let attach =
            List.find_map
              (fun (c', _) ->
                if c' <> cls && touches_class t sub c' then Some c' else None)
              t.ports.(hub)
          in
          match attach with
          | Some c' -> (c', sub)
          | None -> invalid_arg "Oracle: dangling branch (not a tree)")
        (components_without t rest ~cut:(-1))
    in
    let constrained =
      List.filter_map
        (fun (c', col') ->
          if c' = cls then None
          else begin
            let subs =
              List.filter_map
                (fun (ca, sub) -> if ca = c' then Some sub else None)
                branches
            in
            match subs with
            | [] -> None
            | _ ->
              let union = List.fold_left Relset.union Relset.empty subs in
              Some (col', msg_set t union ~cls:c')
          end)
        t.ports.(hub)
    in
    let tbl = rel_table t hub in
    let m : msg_map = Hashtbl.create 1024 in
    Array.iter
      (fun row ->
        let v = Table.int_cell tbl ~row ~col:out_col in
        if v <> Column.null_int then begin
          let w = ref 1.0 in
          let alive =
            List.for_all
              (fun (col', map) ->
                let key = Table.int_cell tbl ~row ~col:col' in
                key <> Column.null_int
                &&
                match Hashtbl.find_opt map key with
                | Some w' -> w := !w *. w'; true
                | None -> false)
              constrained
          in
          if alive then
            Hashtbl.replace m v
              (!w +. Option.value ~default:0.0 (Hashtbl.find_opt m v))
        end)
      (filtered_rowids t hub);
    Hashtbl.replace t.msg_single_memo (comp, cls) m;
    m

(* Cardinality via the tree engine: anchor at the relation with the fewest
   filtered rows and multiply in the branch messages per row. *)
let card_tree t s =
  let members = Relset.to_list s in
  let anchor =
    List.fold_left
      (fun best i ->
        match best with
        | None -> Some i
        | Some b -> if base_rows t i < base_rows t b then Some i else best)
      None members
  in
  let anchor = match anchor with Some a -> a | None -> assert false in
  let rest = Relset.remove anchor s in
  let branches =
    List.map
      (fun sub ->
        let attach =
          List.find_map
            (fun (c', _) -> if touches_class t sub c' then Some c' else None)
            t.ports.(anchor)
        in
        match attach with
        | Some c' -> (c', sub)
        | None -> invalid_arg "Oracle: subset not connected through anchor")
      (components_without t rest ~cut:(-1))
  in
  let constrained =
    List.filter_map
      (fun (c', col') ->
        let subs =
          List.filter_map
            (fun (ca, sub) -> if ca = c' then Some sub else None)
            branches
        in
        match subs with
        | [] -> None
        | _ ->
          let union = List.fold_left Relset.union Relset.empty subs in
          Some (col', msg_set t union ~cls:c'))
      t.ports.(anchor)
  in
  let tbl = rel_table t anchor in
  let total = ref 0.0 in
  Array.iter
    (fun row ->
      let w = ref 1.0 in
      let alive =
        List.for_all
          (fun (col', map) ->
            let key = Table.int_cell tbl ~row ~col:col' in
            key <> Column.null_int
            &&
            match Hashtbl.find_opt map key with
            | Some w' -> w := !w *. w'; true
            | None -> false)
          constrained
      in
      if alive then total := !total +. !w)
    (filtered_rowids t anchor);
  !total

(* ---- materialization engine (fallback for non-tree class graphs) ---- *)

let boundary t s =
  let acc = ref [] in
  let consider (cr : Query.colref) other =
    if Relset.mem cr.Query.rel s && not (Relset.mem other s) then
      acc := (cr.Query.rel, cr.Query.col) :: !acc
  in
  List.iter
    (fun { Query.l; r } ->
      consider l r.Query.rel;
      consider r l.Query.rel)
    t.q.Query.edges;
  List.sort_uniq compare !acc |> Array.of_list

let singleton_inter t i =
  let s = Relset.singleton i in
  let cols = boundary t s in
  let rows = filtered_rowids t i in
  let tbl = rel_table t i in
  let width = Array.length cols in
  let data = Array.make (Array.length rows * width) 0 in
  Array.iteri
    (fun idx row ->
      Array.iteri
        (fun c (_, col) -> data.((idx * width) + c) <- Table.int_cell tbl ~row ~col)
        cols)
    rows;
  { cols; width; data; inter_rows = Array.length rows }

let pos_of inter (rel, col) =
  let rec scan i =
    if i >= Array.length inter.cols then
      invalid_arg "Oracle: column not in boundary projection"
    else if inter.cols.(i) = (rel, col) then i
    else scan (i + 1)
  in
  scan 0

let extend t s' inter' r =
  let s = Relset.add r s' in
  let edges = Query.edges_between t.q s' (Relset.singleton r) in
  assert (edges <> []);
  let key_pos = Array.of_list (List.map (fun e -> pos_of inter' (e.Query.l.Query.rel, e.Query.l.Query.col)) edges) in
  let key_cols = Array.of_list (List.map (fun e -> e.Query.r.Query.col) edges) in
  let tbl = rel_table t r in
  let r_rows = filtered_rowids t r in
  let out_cols = boundary t s in
  let width = Array.length out_cols in
  let out_sources =
    Array.map
      (fun (rel, col) ->
        if rel = r then -(col + 1) else pos_of inter' (rel, col))
      out_cols
  in
  let out = Int_vec.create ~capacity:4096 () in
  let rows = ref 0 in
  let emit tuple_base r_row =
    Array.iter
      (fun src ->
        if src < 0 then
          Int_vec.push out (Table.int_cell tbl ~row:r_row ~col:(-src - 1))
        else Int_vec.push out inter'.data.(tuple_base + src))
      out_sources;
    incr rows
  in
  (match key_cols with
   | [| kc |] ->
     let index = Hashtbl.create (Array.length r_rows) in
     Array.iter
       (fun row ->
         let key = Table.int_cell tbl ~row ~col:kc in
         if key <> Column.null_int then
           Hashtbl.replace index key
             (row :: Option.value ~default:[] (Hashtbl.find_opt index key)))
       r_rows;
     let kp = key_pos.(0) in
     for i = 0 to inter'.inter_rows - 1 do
       let base = i * inter'.width in
       let key = inter'.data.(base + kp) in
       if key <> Column.null_int then
         match Hashtbl.find_opt index key with
         | Some matches -> List.iter (emit base) matches
         | None -> ()
     done
   | _ ->
     let index = Hashtbl.create (Array.length r_rows) in
     Array.iter
       (fun row ->
         let key = Array.map (fun col -> Table.int_cell tbl ~row ~col) key_cols in
         if not (Array.exists (fun v -> v = Column.null_int) key) then
           Hashtbl.replace index key
             (row :: Option.value ~default:[] (Hashtbl.find_opt index key)))
       r_rows;
     for i = 0 to inter'.inter_rows - 1 do
       let base = i * inter'.width in
       let key = Array.map (fun p -> inter'.data.(base + p)) key_pos in
       if not (Array.exists (fun v -> v = Column.null_int) key) then
         match Hashtbl.find_opt index key with
         | Some matches -> List.iter (emit base) matches
         | None -> ()
     done);
  t.materialized_rows <- t.materialized_rows + !rows;
  { cols = out_cols; width; data = Int_vec.to_array out; inter_rows = !rows }

let rec tuples_of t s =
  match Hashtbl.find_opt t.tuples s with
  | Some inter -> inter
  | None ->
    let inter =
      if Relset.cardinal s = 1 then singleton_inter t (Relset.min_elt s)
      else begin
        let r = Join_graph.removable t.graph s in
        let s' = Relset.remove r s in
        extend t s' (tuples_of t s') r
      end
    in
    Hashtbl.replace t.tuples s inter;
    Hashtbl.replace t.cards s inter.inter_rows;
    inter

(* ---- public interface ---- *)

let compute_card t s =
  if t.tree then begin
    let v = card_tree t s in
    let card = int_of_float (Float.round v) in
    Hashtbl.replace t.cards s card;
    card
  end
  else begin
    let inter = tuples_of t s in
    let to_drop =
      Hashtbl.fold
        (fun set _ acc -> if Relset.cardinal set > 1 then set :: acc else acc)
        t.tuples []
    in
    List.iter (Hashtbl.remove t.tuples) to_drop;
    inter.inter_rows
  end

let true_card t s =
  if Relset.is_empty s then invalid_arg "Oracle.true_card: empty set";
  if not (Join_graph.is_connected t.graph s) then
    invalid_arg "Oracle.true_card: disconnected set";
  match Hashtbl.find_opt t.cards s with
  | Some card -> card
  | None -> compute_card t s

let ensure_up_to t size =
  if size > t.ensured then begin
    let subsets = Join_graph.connected_subsets t.graph in
    if t.tree then
      List.iter
        (fun s ->
          if Relset.cardinal s <= size && not (Hashtbl.mem t.cards s) then
            ignore (compute_card t s))
        subsets
    else begin
      let by_size = Array.make (Join_graph.n t.graph + 1) [] in
      List.iter
        (fun s ->
          let k = Relset.cardinal s in
          by_size.(k) <- s :: by_size.(k))
        subsets;
      let max_k = Int.min size (Join_graph.n t.graph) in
      for k = 1 to max_k do
        List.iter (fun s -> ignore (tuples_of t s)) by_size.(k);
        if k >= 2 then
          List.iter (fun s -> Hashtbl.remove t.tuples s) by_size.(k - 1)
      done;
      List.iter (fun s -> Hashtbl.remove t.tuples s) by_size.(max_k)
    end;
    (* The cards are what callers need; the message maps (tree engine) can
       be rebuilt on demand and would otherwise pin tens of MB per query. *)
    Hashtbl.reset t.msg_single_memo;
    Hashtbl.reset t.msg_set_memo;
    t.ensured <- size
  end

let stats t = (Hashtbl.length t.cards, t.materialized_rows)

let uses_tree_engine t = t.tree
