type params = {
  cpu_tuple_cost : float;
  cpu_operator_cost : float;
  cpu_index_tuple_cost : float;
  index_lookup_cost : float;
  hash_build_cost : float;
}

let default =
  {
    cpu_tuple_cost = 0.01;
    cpu_operator_cost = 0.0025;
    cpu_index_tuple_cost = 0.005;
    index_lookup_cost = 0.01;
    hash_build_cost = 0.015;
  }

let seq_scan params ~rows ~npreds =
  rows *. (params.cpu_tuple_cost +. (float_of_int npreds *. params.cpu_operator_cost))

let index_scan params ~matches ~npreds =
  params.index_lookup_cost
  +. (matches
      *. (params.cpu_index_tuple_cost
          +. (float_of_int npreds *. params.cpu_operator_cost)))

let hash_join params ~build ~probe ~out =
  (build *. params.hash_build_cost)
  +. (probe *. params.cpu_operator_cost)
  +. (out *. params.cpu_tuple_cost)

let index_nested_loop params ~outer ~out ~npreds =
  (outer *. params.index_lookup_cost)
  +. (out
      *. (params.cpu_index_tuple_cost
          +. (float_of_int npreds *. params.cpu_operator_cost)
          +. params.cpu_tuple_cost))

let nested_loop params ~outer ~inner ~out =
  (outer *. inner *. params.cpu_operator_cost) +. (out *. params.cpu_tuple_cost)

let sort params ~rows =
  let rows = Float.max 2.0 rows in
  2.0 *. rows *. (log rows /. log 2.0) *. params.cpu_operator_cost

let merge_join params ~outer ~inner ~out =
  sort params ~rows:outer
  +. sort params ~rows:inner
  +. ((outer +. inner) *. params.cpu_operator_cost)
  +. (out *. params.cpu_tuple_cost)
