(** The cost model: PostgreSQL-flavoured per-tuple CPU costs for an
    in-memory workload (the paper's setup caches all tables and indexes, so
    I/O terms are irrelevant; CPU terms decide between plans).

    The paper's point (§II-A) is that the cost model is *not* the weak
    link: costs are honest given the cardinalities, and garbage-in
    cardinalities produce garbage cost rankings. We therefore keep the
    model simple and correct, and let estimation errors do the damage.

    Every formula takes the parameter record explicitly so ablation
    benchmarks can sweep the constants. *)

type params = {
  cpu_tuple_cost : float;       (** emitting / materializing one tuple *)
  cpu_operator_cost : float;    (** one predicate or hash evaluation *)
  cpu_index_tuple_cost : float; (** fetching one tuple through an index *)
  index_lookup_cost : float;    (** one hash-index probe *)
  hash_build_cost : float;      (** inserting one tuple into a hash table *)
}

val default : params

val seq_scan : params -> rows:float -> npreds:int -> float
(** Scan [rows] physical rows, evaluating [npreds] predicates on each. *)

val index_scan : params -> matches:float -> npreds:int -> float
(** Equality index scan returning [matches] rows, with [npreds] residual
    predicates evaluated on each. *)

val hash_join : params -> build:float -> probe:float -> out:float -> float
(** Build a hash table on [build] rows, probe with [probe] rows, emit
    [out]. Input subtree costs are not included. *)

val index_nested_loop : params -> outer:float -> out:float -> npreds:int -> float
(** One index probe per outer row; [out] matches flow through [npreds]
    residual predicates. The under-estimation disaster mode: when [outer]
    and [out] are predicted tiny this looks unbeatable. *)

val nested_loop : params -> outer:float -> inner:float -> out:float -> float
(** Plain nested loop over a materialized inner. *)

val sort : params -> rows:float -> float
(** In-memory sort: [rows * log2 rows] comparison costs. *)

val merge_join : params -> outer:float -> inner:float -> out:float -> float
(** Sort both inputs, then a linear merge emitting [out] rows. *)
