module Relset = Rdb_util.Relset

type t = { pairs : (Relset.t * Relset.t) array }

let build graph =
  let acc = ref [] in
  Dpccp.iter_pairs graph (fun s1 s2 -> acc := (s1, s2) :: !acc);
  let pairs = Array.of_list !acc in
  let key (s1, s2) = Relset.cardinal (Relset.union s1 s2) in
  Array.sort (fun a b -> Int.compare (key a) (key b)) pairs;
  { pairs }

let iter t f = Array.iter (fun (s1, s2) -> f s1 s2) t.pairs

let n_pairs t = Array.length t.pairs
