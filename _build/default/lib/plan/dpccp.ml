module Relset = Rdb_util.Relset
module Join_graph = Rdb_query.Join_graph

(* Grow [s] into every connected superset reachable without touching [x],
   emitting each exactly once (EnumerateCsgRec). *)
let rec iter_csg_rec graph s x emit =
  let candidates = Relset.diff (Join_graph.neighbors graph s) x in
  if not (Relset.is_empty candidates) then
    Relset.iter_subsets candidates (fun s' ->
        let s2 = Relset.union s s' in
        emit s2;
        iter_csg_rec graph s2 (Relset.union x candidates) emit)

(* EnumerateCmp: all connected complements of [s1] that avoid the
   duplicate-suppression prefix. *)
let iter_cmp graph s1 f =
  let x = Relset.union (Relset.below (Relset.min_elt s1 + 1)) s1 in
  let n = Relset.diff (Join_graph.neighbors graph s1) x in
  let members = List.rev (Relset.to_list n) in
  List.iter
    (fun i ->
      let v = Relset.singleton i in
      f s1 v;
      let smaller_neighbors = Relset.inter n (Relset.below (i + 1)) in
      iter_csg_rec graph v (Relset.union x smaller_neighbors) (fun s2 -> f s1 s2))
    members

let iter_pairs graph f =
  let n = Join_graph.n graph in
  for i = n - 1 downto 0 do
    let v = Relset.singleton i in
    iter_cmp graph v f;
    iter_csg_rec graph v (Relset.below (i + 1)) (fun s1 -> iter_cmp graph s1 f)
  done

let count_pairs graph =
  let count = ref 0 in
  iter_pairs graph (fun _ _ -> incr count);
  !count
