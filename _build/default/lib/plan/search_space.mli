(** The materialized csg-cmp-pair list of one query's join graph, sorted so
    that every pair is seen only after all pairs composing its components.
    The search space depends only on the graph, never on statistics, so one
    instance is shared across every estimator configuration the experiments
    sweep over. *)

module Relset = Rdb_util.Relset
module Join_graph := Rdb_query.Join_graph

type t

val build : Join_graph.t -> t

val iter : t -> (Relset.t -> Relset.t -> unit) -> unit
(** Pairs in ascending order of [|s1 ∪ s2|]. *)

val n_pairs : t -> int
