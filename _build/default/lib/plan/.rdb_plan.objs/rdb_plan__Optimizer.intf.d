lib/plan/optimizer.mli: Catalog Plan Rdb_card Rdb_cost Rdb_query Rdb_util Search_space
