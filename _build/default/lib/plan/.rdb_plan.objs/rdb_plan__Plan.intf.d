lib/plan/plan.mli: Rdb_query Rdb_util
