lib/plan/search_space.ml: Array Dpccp Int Rdb_util
