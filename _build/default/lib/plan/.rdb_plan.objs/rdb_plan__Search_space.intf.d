lib/plan/search_space.mli: Rdb_query Rdb_util
