lib/plan/explain.ml: Array Buffer List Plan Printf Rdb_query Rdb_util String
