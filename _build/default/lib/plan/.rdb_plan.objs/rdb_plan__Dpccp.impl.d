lib/plan/dpccp.ml: List Rdb_query Rdb_util
