lib/plan/plan.ml: List Rdb_query Rdb_util
