lib/plan/optimizer.ml: Array Catalog Float Hashtbl List Plan Rdb_card Rdb_cost Rdb_query Rdb_util Search_space Sys Table Value
