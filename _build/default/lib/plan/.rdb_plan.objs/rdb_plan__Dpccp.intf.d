lib/plan/dpccp.mli: Rdb_query Rdb_util
