lib/plan/explain.mli: Plan Rdb_query Rdb_util
