(** EXPLAIN / EXPLAIN ANALYZE rendering of plan trees. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query

val render :
  ?actuals:(Relset.t -> int option) ->
  Query.t ->
  Plan.t ->
  string
(** Multi-line tree. When [actuals] is given, each node also shows the true
    row count for its relation set — the paper's EXPLAIN ANALYZE view that
    drives the re-optimization trigger. *)
