(** DPccp enumeration (Moerkotte & Neumann, 2006): generate every
    csg-cmp-pair — two disjoint connected subgraphs joined by at least one
    edge — exactly once. This is the plan space of a modern bushy
    dynamic-programming optimizer that forbids cartesian products, the
    paper's PostgreSQL baseline. *)

module Relset = Rdb_util.Relset
module Join_graph := Rdb_query.Join_graph

val iter_pairs : Join_graph.t -> (Relset.t -> Relset.t -> unit) -> unit
(** [iter_pairs g f] calls [f s1 s2] once per unordered csg-cmp pair, in an
    order where both components' best plans are already available when
    their union is considered (pairs for smaller unions may come after
    larger ones only if disjoint; the optimizer memoizes by subset, so only
    the "sub-pairs first" property matters, which EnumerateCsg/Cmp
    guarantees for the recursive structure used here). *)

val count_pairs : Join_graph.t -> int
(** Number of csg-cmp pairs: the classic complexity measure of the join
    ordering problem for a given graph shape. *)
