(** CORDS-style automatic discovery of correlated column pairs (paper
    reference [32]: Ilyas et al., SIGMOD 2004).

    The correlation signal is the total-variation distance between the
    joint value distribution and the product of the marginals: 0 for
    independent columns, approaching 1 for functional dependencies. *)

type finding = {
  col_a : int;
  col_b : int;
  strength : float;  (** total-variation distance, in [0, 1] *)
}

val correlation_strength : Table.t -> int -> int -> float

val discover : ?threshold:float -> Table.t -> finding list
(** All column pairs whose strength is at least [threshold] (default 0.1),
    strongest first. Unique-key columns correlate with everything under
    this measure (every pair is a functional dependency of the key), so
    callers typically skip key columns — or read the strengths and judge. *)
