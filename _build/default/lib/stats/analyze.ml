let column ?(buckets = 100) ?(mcv_slots = 100) tbl c =
  let col = Table.column tbl c in
  let n = Table.nrows tbl in
  match col with
  | Column.Ints cells ->
    let non_null = Array.to_list (Array.to_seq cells |> Seq.filter (fun v -> v <> Column.null_int) |> Array.of_seq) in
    let non_null_arr = Array.of_list non_null in
    let n_non_null = Array.length non_null_arr in
    let null_frac =
      if n = 0 then 0.0 else float_of_int (n - n_non_null) /. float_of_int n
    in
    let distinct = Hashtbl.create 1024 in
    Array.iter (fun v -> Hashtbl.replace distinct v ()) non_null_arr;
    let min_val = ref None and max_val = ref None in
    Array.iter
      (fun v ->
        (match !min_val with Some m when m <= v -> () | _ -> min_val := Some v);
        (match !max_val with Some m when m >= v -> () | _ -> max_val := Some v))
      non_null_arr;
    let values = List.map (fun v -> Value.Int v) non_null in
    {
      Col_stats.row_count = n;
      null_frac;
      n_distinct = Int.max 1 (Hashtbl.length distinct);
      min_val = !min_val;
      max_val = !max_val;
      mcv = Mcv.build ~slots:mcv_slots values;
      hist = Histogram.build ~buckets non_null_arr;
    }
  | Column.Strs cells ->
    let distinct = Hashtbl.create 1024 in
    Array.iter (fun v -> Hashtbl.replace distinct v ()) cells;
    let values = Array.to_list (Array.map (fun s -> Value.Str s) cells) in
    {
      Col_stats.row_count = n;
      null_frac = 0.0;
      n_distinct = Int.max 1 (Hashtbl.length distinct);
      min_val = None;
      max_val = None;
      mcv = Mcv.build ~slots:mcv_slots values;
      hist = None;
    }

let table ?buckets ?mcv_slots tbl =
  Array.init (Schema.arity (Table.schema tbl)) (fun c ->
      column ?buckets ?mcv_slots tbl c)

let all ?buckets ?mcv_slots catalog store =
  List.iter
    (fun tbl ->
      Db_stats.set store ~table:(Table.name tbl) (table ?buckets ?mcv_slots tbl))
    (Catalog.tables catalog)
