(** Per-column statistics, the PostgreSQL [pg_stats] analog: row count,
    NULL fraction, number of distinct values, min/max, most common values
    and an equi-depth histogram (integer columns only). *)

type t = {
  row_count : int;        (** rows in the table at ANALYZE time *)
  null_frac : float;      (** fraction of NULL cells *)
  n_distinct : int;       (** distinct non-NULL values *)
  min_val : int option;   (** smallest non-NULL value (int columns) *)
  max_val : int option;   (** largest non-NULL value (int columns) *)
  mcv : Mcv.t;            (** most common values *)
  hist : Histogram.t option;  (** equi-depth histogram (int columns) *)
}

val trivial : row_count:int -> t
(** Statistics claiming one distinct value and no detail; placeholder for
    columns that were never analyzed. *)

val non_null_rows : t -> float
(** Estimated number of non-NULL cells. *)

val pp : Format.formatter -> t -> unit
