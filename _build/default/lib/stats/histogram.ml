type t = { bounds : int array }

let build ?(buckets = 100) values =
  let n = Array.length values in
  if n = 0 then None
  else begin
    let sorted = Array.copy values in
    Array.sort Int.compare sorted;
    let nb = Int.min buckets n in
    let bounds = Array.make (nb + 1) 0 in
    (* Boundary i sits at sorted rank round(i * n / nb), so each bucket
       covers ~n/nb rows. *)
    for i = 0 to nb do
      let rank = i * (n - 1) / nb in
      bounds.(i) <- sorted.(rank)
    done;
    Some { bounds }
  end

let n_buckets t = Array.length t.bounds - 1

let bounds t = t.bounds

(* Fraction of a single bucket [lo, hi] that lies at or below v, assuming
   uniform spread inside the bucket. *)
let bucket_fraction_le lo hi v =
  if v < lo then 0.0
  else if v >= hi then 1.0
  else if hi = lo then 1.0
  else (float_of_int (v - lo) +. 1.0) /. (float_of_int (hi - lo) +. 1.0)

let fraction_le t v =
  let b = t.bounds in
  let nb = n_buckets t in
  if v < b.(0) then 0.0
  else if v >= b.(nb) then 1.0
  else begin
    (* Find the bucket containing v: largest i with b.(i) <= v. *)
    let lo = ref 0 and hi = ref (nb - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if b.(mid) <= v then lo := mid else hi := mid - 1
    done;
    let i = !lo in
    (float_of_int i +. bucket_fraction_le b.(i) b.(i + 1) v)
    /. float_of_int nb
  end

let fraction_between t ~lo ~hi =
  if hi < lo then 0.0
  else
    let below_lo = if lo = min_int then 0.0 else fraction_le t (lo - 1) in
    Float.max 0.0 (fraction_le t hi -. below_lo)

let eq_fraction t v =
  let b = t.bounds in
  let nb = n_buckets t in
  if v < b.(0) || v > b.(nb) then 0.0
  else begin
    let lo = ref 0 and hi = ref (nb - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if b.(mid) <= v then lo := mid else hi := mid - 1
    done;
    let i = !lo in
    let width = float_of_int (b.(i + 1) - b.(i)) +. 1.0 in
    1.0 /. float_of_int nb /. width
  end
