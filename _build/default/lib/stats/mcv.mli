(** Most-common-value lists: the values PostgreSQL stores alongside
    histograms, with their frequency as a fraction of the table. *)

type t

val build : ?slots:int -> Value.t list -> t
(** Count the (non-NULL) input values and keep the [slots] most frequent
    (default 100). A value must occur at least twice to be kept. *)

val empty : t

val entries : t -> (Value.t * float) list
(** Most frequent first. *)

val frequency : t -> Value.t -> float option
(** Frequency of a value if it is in the list. *)

val total_fraction : t -> float
(** Combined fraction of the table covered by MCVs. *)

val count : t -> int
(** Number of entries. *)
