type finding = { col_a : int; col_b : int; strength : float }

(* Total-variation distance between the joint distribution of (a, b) and
   the product of the marginals: 0 for independent columns, approaching 1
   for functional dependencies. Robust to the noise that defeats plain
   distinct-count ratios. *)
let correlation_strength table col_a col_b =
  let n = Table.nrows table in
  if n = 0 then 0.0
  else begin
    let nf = float_of_int n in
    let joint = Hashtbl.create 1024 in
    let ma = Hashtbl.create 256 and mb = Hashtbl.create 256 in
    let bump tbl key =
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    in
    for row = 0 to n - 1 do
      let va = Table.value table ~row ~col:col_a in
      let vb = Table.value table ~row ~col:col_b in
      bump joint (va, vb);
      bump ma va;
      bump mb vb
    done;
    let observed_abs_diff = ref 0.0 and observed_product_mass = ref 0.0 in
    Hashtbl.iter
      (fun (va, vb) c ->
        let p_ab = float_of_int c /. nf in
        let p_a = float_of_int (Hashtbl.find ma va) /. nf in
        let p_b = float_of_int (Hashtbl.find mb vb) /. nf in
        observed_abs_diff := !observed_abs_diff +. Float.abs (p_ab -. (p_a *. p_b));
        observed_product_mass := !observed_product_mass +. (p_a *. p_b))
      joint;
    (* pairs never observed contribute their product mass *)
    let unobserved = Float.max 0.0 (1.0 -. !observed_product_mass) in
    (!observed_abs_diff +. unobserved) /. 2.0
  end

let discover ?(threshold = 0.1) table =
  let arity = Schema.arity (Table.schema table) in
  let findings = ref [] in
  for a = 0 to arity - 1 do
    for b = a + 1 to arity - 1 do
      let strength = correlation_strength table a b in
      if strength >= threshold then
        findings := { col_a = a; col_b = b; strength } :: !findings
    done
  done;
  List.sort (fun x y -> Float.compare y.strength x.strength) !findings
