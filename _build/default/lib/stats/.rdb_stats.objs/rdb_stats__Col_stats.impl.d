lib/stats/col_stats.ml: Format Histogram Int Mcv
