lib/stats/group_stats.mli: Table Value
