lib/stats/db_stats.ml: Array Col_stats Group_stats Hashtbl List String Table
