lib/stats/cords.mli: Table
