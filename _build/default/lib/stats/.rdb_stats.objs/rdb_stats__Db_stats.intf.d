lib/stats/db_stats.mli: Col_stats Group_stats Table
