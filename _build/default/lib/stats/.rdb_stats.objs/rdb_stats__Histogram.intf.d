lib/stats/histogram.mli:
