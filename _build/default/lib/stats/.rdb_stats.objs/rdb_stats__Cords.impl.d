lib/stats/cords.ml: Float Hashtbl List Option Schema Table
