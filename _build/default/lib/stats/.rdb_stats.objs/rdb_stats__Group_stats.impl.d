lib/stats/group_stats.ml: Float Hashtbl Int List Option Rdb_util Table Value
