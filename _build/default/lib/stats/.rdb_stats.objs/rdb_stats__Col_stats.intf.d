lib/stats/col_stats.mli: Format Histogram Mcv
