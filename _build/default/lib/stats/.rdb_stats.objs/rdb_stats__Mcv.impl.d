lib/stats/mcv.ml: Hashtbl Int List Option Value
