lib/stats/analyze.mli: Catalog Col_stats Db_stats Table
