lib/stats/mcv.mli: Value
