lib/stats/histogram.ml: Array Float Int
