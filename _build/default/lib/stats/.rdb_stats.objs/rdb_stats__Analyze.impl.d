lib/stats/analyze.ml: Array Catalog Col_stats Column Db_stats Hashtbl Histogram Int List Mcv Schema Seq Table Value
