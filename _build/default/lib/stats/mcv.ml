type t = {
  entries : (Value.t * float) list;
  by_value : (Value.t, float) Hashtbl.t;
  total : float;
}

let empty = { entries = []; by_value = Hashtbl.create 1; total = 0.0 }

let build ?(slots = 100) values =
  let non_null = List.filter (fun v -> not (Value.is_null v)) values in
  let n = List.length non_null in
  if n = 0 then empty
  else begin
    let counts = Hashtbl.create 256 in
    List.iter
      (fun v ->
        Hashtbl.replace counts v
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
      non_null;
    let all = Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts [] in
    let frequent = List.filter (fun (_, c) -> c >= 2) all in
    let sorted =
      List.sort
        (fun (v1, c1) (v2, c2) ->
          match Int.compare c2 c1 with 0 -> Value.compare v1 v2 | d -> d)
        frequent
    in
    let top = List.filteri (fun i _ -> i < slots) sorted in
    let nf = float_of_int n in
    let entries = List.map (fun (v, c) -> (v, float_of_int c /. nf)) top in
    let by_value = Hashtbl.create (List.length entries) in
    List.iter (fun (v, f) -> Hashtbl.replace by_value v f) entries;
    let total = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 entries in
    { entries; by_value; total }
  end

let entries t = t.entries
let frequency t v = Hashtbl.find_opt t.by_value v
let total_fraction t = t.total
let count t = List.length t.entries
