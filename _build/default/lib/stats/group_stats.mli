(** Column-group (multi-column) statistics over a pair of columns of one
    table — what commercial systems let a DBA create to capture intra-table
    correlations, and what CORDS (paper reference [32]) discovers
    automatically. Holds the joint most-common-value list and the number of
    distinct value pairs. *)

type t

val build : ?slots:int -> Table.t -> int -> int -> t
(** Joint statistics over two columns (default 100 MCV slots). The pair is
    stored in canonical order: the smaller column index first; pair values
    and the predicates of {!joint_selectivity} follow that order. *)

val cols : t -> int * int
(** (smaller column index, larger column index). *)

val n_distinct_pairs : t -> int

val frequency : t -> Value.t * Value.t -> float option
(** Frequency of a joint value pair, when it is in the joint MCV list. *)

val entries : t -> (Value.t * Value.t * float) list
(** Most frequent first. *)

val total_fraction : t -> float

val joint_selectivity :
  t -> (Value.t -> bool) -> (Value.t -> bool) -> independent:float -> float
(** Selectivity of a conjunction of predicates on the two columns: the mass
    of joint MCVs satisfying both, plus the non-MCV remainder charged at the
    [independent] (product-rule) selectivity. *)
