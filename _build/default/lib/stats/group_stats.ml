type t = {
  cols : int * int;
  entries : (Value.t * Value.t * float) list;
  by_pair : (Value.t * Value.t, float) Hashtbl.t;
  n_distinct_pairs : int;
  total : float;
}

let build ?(slots = 100) table col_a col_b =
  (* Canonical order: the smaller column index is the pair's first slot. *)
  let col_a, col_b = if col_a <= col_b then (col_a, col_b) else (col_b, col_a) in
  let n = Table.nrows table in
  let counts = Hashtbl.create 1024 in
  for row = 0 to n - 1 do
    let pair = (Table.value table ~row ~col:col_a, Table.value table ~row ~col:col_b) in
    Hashtbl.replace counts pair
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts pair))
  done;
  let all = Hashtbl.fold (fun pair c acc -> (pair, c) :: acc) counts [] in
  let sorted =
    List.sort
      (fun ((va1, vb1), c1) ((va2, vb2), c2) ->
        match Int.compare c2 c1 with
        | 0 ->
          (match Value.compare va1 va2 with 0 -> Value.compare vb1 vb2 | d -> d)
        | d -> d)
      all
  in
  let top = List.filteri (fun i (_, c) -> i < slots && c >= 2) sorted in
  let nf = float_of_int (Int.max 1 n) in
  let entries = List.map (fun ((va, vb), c) -> (va, vb, float_of_int c /. nf)) top in
  let by_pair = Hashtbl.create (List.length entries) in
  List.iter (fun (va, vb, f) -> Hashtbl.replace by_pair (va, vb) f) entries;
  {
    cols = (col_a, col_b);
    entries;
    by_pair;
    n_distinct_pairs = Hashtbl.length counts;
    total = List.fold_left (fun acc (_, _, f) -> acc +. f) 0.0 entries;
  }

let cols t = t.cols
let n_distinct_pairs t = t.n_distinct_pairs
let frequency t pair = Hashtbl.find_opt t.by_pair pair
let entries t = t.entries
let total_fraction t = t.total

let joint_selectivity t sat_a sat_b ~independent =
  let matched =
    List.fold_left
      (fun acc (va, vb, f) -> if sat_a va && sat_b vb then acc +. f else acc)
      0.0 t.entries
  in
  let residual = Float.max 0.0 (1.0 -. t.total) in
  Rdb_util.Stat_utils.clamp ~lo:0.0 ~hi:1.0
    (matched +. (residual *. independent))
