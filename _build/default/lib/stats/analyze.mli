(** ANALYZE: scan a table and build per-column statistics. The paper sets
    PostgreSQL's [default_statistics_target] to its maximum; analogously we
    default to generous histogram/MCV sizes and scan the full table rather
    than a sample. *)

val column : ?buckets:int -> ?mcv_slots:int -> Table.t -> int -> Col_stats.t
(** Statistics for one column. *)

val table : ?buckets:int -> ?mcv_slots:int -> Table.t -> Col_stats.t array
(** Statistics for every column. *)

val all : ?buckets:int -> ?mcv_slots:int -> Catalog.t -> Db_stats.t -> unit
(** ANALYZE every table in the catalog into the given store. *)
