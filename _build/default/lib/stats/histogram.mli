(** Equi-depth histograms over integer columns, in the style of
    PostgreSQL's [histogram_bounds]: each bucket holds (approximately) the
    same number of rows, and range selectivity is estimated by linear
    interpolation inside the boundary buckets. *)

type t

val build : ?buckets:int -> int array -> t option
(** [build values] sorts a copy of [values] and produces an equi-depth
    histogram with at most [buckets] buckets (default 100). Returns [None]
    on an empty input. Values already excluding NULLs. *)

val n_buckets : t -> int

val bounds : t -> int array
(** The [n_buckets + 1] bucket boundaries, non-decreasing. *)

val fraction_le : t -> int -> float
(** Estimated fraction of values [<= v], in [\[0,1\]]. *)

val fraction_between : t -> lo:int -> hi:int -> float
(** Estimated fraction of values in the inclusive range, in [\[0,1\]]. *)

val eq_fraction : t -> int -> float
(** Uniformity-based estimate of the fraction equal to [v]: the mass of
    [v]'s bucket divided by the bucket's width. Used only as a fallback when
    a value is not in the MCV list. *)
