type t = {
  row_count : int;
  null_frac : float;
  n_distinct : int;
  min_val : int option;
  max_val : int option;
  mcv : Mcv.t;
  hist : Histogram.t option;
}

let trivial ~row_count =
  {
    row_count;
    null_frac = 0.0;
    n_distinct = Int.max 1 row_count;
    min_val = None;
    max_val = None;
    mcv = Mcv.empty;
    hist = None;
  }

let non_null_rows t = float_of_int t.row_count *. (1.0 -. t.null_frac)

let pp fmt t =
  Format.fprintf fmt
    "rows=%d null_frac=%.3f n_distinct=%d mcvs=%d hist=%s"
    t.row_count t.null_frac t.n_distinct (Mcv.count t.mcv)
    (match t.hist with
     | Some h -> string_of_int (Histogram.n_buckets h) ^ " buckets"
     | None -> "none")
