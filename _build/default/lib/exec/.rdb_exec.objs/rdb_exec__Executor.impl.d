lib/exec/executor.ml: Array Catalog Column Hash_index Hashtbl Int List Option Rdb_plan Rdb_query Rdb_util Table Unix Value
