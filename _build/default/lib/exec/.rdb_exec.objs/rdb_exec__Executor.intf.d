lib/exec/executor.mli: Catalog Rdb_plan Rdb_query Rdb_util Value
