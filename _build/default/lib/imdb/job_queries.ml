module Query = Rdb_query.Query
module Binder = Rdb_sql.Binder
module Parser = Rdb_sql.Parser

(* ---- table alias fragments ---- *)

let t_t = "title AS t"
let t_mk = "movie_keyword AS mk"
let t_mk2 = "movie_keyword AS mk2"
let t_k = "keyword AS k"
let t_k2 = "keyword AS k2"
let t_ci = "cast_info AS ci"
let t_n = "name AS n"
let t_an = "aka_name AS an"
let t_rt = "role_type AS rt"
let t_chn = "char_name AS chn"
let t_mc = "movie_companies AS mc"
let t_cn = "company_name AS cn"
let t_ct = "company_type AS ct"
let t_kt = "kind_type AS kt"
let t_mi = "movie_info AS mi"
let t_it1 = "info_type AS it1"
let t_midx = "movie_info_idx AS mi_idx"
let t_it2 = "info_type AS it2"

(* ---- join condition fragments ---- *)

let j_mk = [ "mk.movie_id = t.id"; "mk.keyword_id = k.id" ]
let j_mk2 = [ "mk2.movie_id = t.id"; "mk2.keyword_id = k2.id" ]
let j_ci = [ "ci.movie_id = t.id"; "ci.person_id = n.id" ]
let j_rt = [ "ci.role_id = rt.id" ]
let j_chn = [ "ci.person_role_id = chn.id" ]
let j_an = [ "an.person_id = n.id" ]
let j_mc = [ "mc.movie_id = t.id"; "mc.company_id = cn.id" ]
let j_ct = [ "mc.company_type_id = ct.id" ]
let j_kt = [ "t.kind_id = kt.id" ]
let j_mi = [ "mi.movie_id = t.id"; "mi.info_type_id = it1.id" ]
let j_midx = [ "mi_idx.movie_id = t.id"; "mi_idx.info_type_id = it2.id" ]

(* Redundant transitive equalities, as JOB queries spell them out; they
   make the join graphs cyclic. *)
let r_ci_mk = [ "ci.movie_id = mk.movie_id" ]
let r_ci_mc = [ "ci.movie_id = mc.movie_id" ]
let r_mc_mk = [ "mc.movie_id = mk.movie_id" ]
let r_mi_midx = [ "mi.movie_id = mi_idx.movie_id" ]

type family = {
  num : string;
  select : string;
  from : string list;
  joins : string list;
  variants : string list list;
}

let families =
  [
    (* 4 tables: 1 family x 3 variants *)
    {
      num = "1";
      select = "MIN(t.title)";
      from = [ t_t; t_mk; t_k; t_kt ];
      joins = j_mk @ j_kt;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "kt.kind = 'movie'" ];
          [ "k.keyword = 'kw_349'"; "kt.kind = 'movie'" ];
          [ "k.keyword IN ('kw_0', 'kw_1', 'kw_2')"; "kt.kind = 'episode'" ];
        ];
    };
    (* 5 tables: 5 families x 4 variants = 20 *)
    {
      num = "2";
      select = "MIN(t.title)";
      from = [ t_t; t_mi; t_it1; t_mk; t_k ];
      joins = j_mi @ j_mk;
      variants =
        [
          [ "it1.info = 'genres'"; "mi.info = 'action'"; "k.keyword = 'kw_0'" ];
          [ "it1.info = 'rating-class'"; "mi.info = 'new'";
            "t.production_year > 2005" ];
          [ "it1.info = 'rating-class'"; "mi.info = 'classic'";
            "t.production_year > 2005" ];
          [ "it1.info = 'info_7'"; "mi.info = 'v7_0'"; "k.keyword = 'kw_14'" ];
        ];
    };
    {
      num = "3";
      select = "MIN(t.title), MIN(cn.name)";
      from = [ t_t; t_mc; t_cn; t_ct; t_kt ];
      joins = j_mc @ j_ct @ j_kt;
      variants =
        [
          [ "cn.country_code = '[us]'"; "ct.kind = 'production_companies'";
            "kt.kind = 'movie'" ];
          [ "cn.country_code = '[de]'"; "ct.kind = 'distributors'";
            "kt.kind = 'movie'" ];
          [ "cn.name LIKE 'a%'"; "ct.kind = 'production_companies'";
            "kt.kind = 'short'" ];
          [ "cn.country_code = '[us]'"; "ct.kind = 'production_companies'";
            "kt.kind = 'documentary'"; "t.production_year > 2000" ];
        ];
    };
    {
      num = "4";
      select = "MIN(n.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_rt; t_chn ];
      joins = j_ci @ j_rt @ j_chn;
      variants =
        [
          [ "n.gender = 'f'"; "rt.role = 'actress'" ];
          [ "n.gender = 'm'"; "rt.role = 'actress'" ];
          [ "n.name LIKE '%Tim%'"; "rt.role = 'director'" ];
          [ "chn.name LIKE '%Man%'"; "n.gender = 'f'"; "rt.role = 'actress'" ];
        ];
    };
    {
      num = "5";
      select = "MIN(t.title)";
      from = [ t_t; t_midx; t_it2; t_mc; t_cn ];
      joins = j_midx @ j_mc;
      variants =
        [
          [ "it2.info = 'rating'"; "mi_idx.info = 'r9'";
            "cn.country_code = '[us]'" ];
          [ "it2.info = 'rating'"; "mi_idx.info = 'r0'";
            "cn.country_code = '[us]'" ];
          [ "it2.info = 'votes'"; "mi_idx.info = 'v9'";
            "cn.country_code = '[de]'" ];
          [ "it2.info = 'rating'"; "mi_idx.info = 'r9'"; "cn.name LIKE 'b%'" ];
        ];
    };
    {
      num = "6";
      select = "MIN(t.title), MIN(n.name)";
      from = [ t_t; t_mk; t_k; t_ci; t_n ];
      joins = j_mk @ j_ci @ r_ci_mk;
      variants =
        [
          [ "k.keyword = 'kw_313'"; "n.name LIKE 'a%'" ];
          [ "k.keyword = 'kw_3'"; "n.gender = 'f'" ];
          [ "k.keyword IN ('kw_7', 'kw_8')"; "n.name LIKE '%John%'" ];
          (* 6d: the paper's deep dive — a frequent keyword under the
             uniformity assumption, plus a prefix name predicate. *)
          [ "k.keyword = 'kw_0'"; "n.name LIKE 'x%'" ];
        ];
    };
    (* 6 tables: 1 family x 2 variants *)
    {
      num = "7";
      select = "MIN(t.title), MIN(cn.name)";
      from = [ t_t; t_mk; t_k; t_mc; t_cn; t_ct ];
      joins = j_mk @ j_mc @ j_ct @ r_mc_mk;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "cn.country_code = '[us]'";
            "ct.kind = 'production_companies'" ];
          [ "k.keyword = 'kw_200'"; "cn.country_code = '[de]'";
            "ct.kind = 'distributors'" ];
        ];
    };
    (* 7 tables: 4 families x 4 variants = 16 *)
    {
      num = "8";
      select = "MIN(n.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_mk; t_k; t_rt; t_kt ];
      joins = j_ci @ j_mk @ j_rt @ j_kt @ r_ci_mk;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "n.gender = 'f'"; "rt.role = 'actress'";
            "kt.kind = 'movie'" ];
          [ "k.keyword = 'kw_5'"; "rt.role = 'director'";
            "kt.kind = 'tv_series'" ];
          [ "n.name LIKE '%Tim%'"; "k.keyword IN ('kw_0', 'kw_6')";
            "rt.role = 'actor'"; "kt.kind = 'movie'" ];
          [ "k.keyword = 'kw_347'"; "n.gender = 'm'"; "rt.role = 'actor'";
            "kt.kind = 'movie'" ];
        ];
    };
    {
      num = "10";
      select = "MIN(t.title)";
      from = [ t_t; t_mi; t_it1; t_midx; t_it2; t_mk; t_k ];
      joins = j_mi @ j_midx @ j_mk @ r_mi_midx;
      variants =
        [
          [ "it1.info = 'rating-class'"; "mi.info = 'new'";
            "it2.info = 'rating'"; "mi_idx.info = 'r9'"; "k.keyword = 'kw_0'" ];
          [ "it1.info = 'genres'"; "mi.info = 'drama'"; "it2.info = 'votes'";
            "mi_idx.info = 'v9'"; "k.keyword = 'kw_1'" ];
          [ "it1.info = 'rating-class'"; "mi.info = 'classic'";
            "it2.info = 'rating'"; "mi_idx.info = 'r9'";
            "t.production_year > 2000" ];
          [ "it1.info = 'info_12'"; "mi.info = 'v12_1'"; "it2.info = 'rating'";
            "mi_idx.info = 'r5'"; "k.keyword = 'kw_50'" ];
        ];
    };
    {
      num = "11";
      select = "MIN(n.name), MIN(an.name)";
      from = [ t_t; t_ci; t_n; t_an; t_rt; t_chn; t_kt ];
      joins = j_ci @ j_an @ j_rt @ j_chn @ j_kt;
      variants =
        [
          [ "an.name LIKE '%John%'"; "n.gender = 'm'"; "rt.role = 'actor'";
            "kt.kind = 'movie'" ];
          [ "an.name LIKE '%Tim%'"; "rt.role = 'director'"; "kt.kind = 'movie'" ];
          [ "n.name LIKE 'b%'"; "chn.name LIKE '%Man%'"; "rt.role = 'actress'";
            "n.gender = 'f'"; "kt.kind = 'episode'" ];
          [ "an.name LIKE 'aka_a%'"; "rt.role = 'producer'";
            "kt.kind = 'documentary'" ];
        ];
    };
    {
      num = "18";
      select = "MIN(n.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_mi; t_midx; t_it1; t_it2 ];
      joins = j_ci @ j_mi @ j_midx @ r_mi_midx;
      variants =
        [
          (* 18a: the paper's deep dive — gender + LIKE on name, two
             info_type dimensions whose join sizes are underestimated. *)
          [ "n.gender = 'm'"; "n.name LIKE '%Tim%'";
            "it1.info = 'rating-class'"; "it2.info = 'rating'" ];
          [ "n.gender = 'f'"; "it1.info = 'genres'"; "mi.info = 'romance'";
            "it2.info = 'votes'"; "mi_idx.info = 'v9'" ];
          [ "n.name LIKE '%John%'"; "it1.info = 'rating-class'";
            "mi.info = 'new'"; "it2.info = 'rating'"; "mi_idx.info = 'r9'" ];
          [ "it1.info = 'info_20'"; "mi.info = 'v20_0'"; "it2.info = 'rating'";
            "mi_idx.info = 'r9'"; "n.gender = 'f'" ];
        ];
    };
    (* 8 tables: 4 families x 4 + 1 family x 5 = 21 *)
    {
      num = "12";
      select = "MIN(t.title), MIN(cn.name)";
      from = [ t_t; t_ci; t_n; t_mk; t_k; t_mc; t_cn; t_ct ];
      joins = j_ci @ j_mk @ j_mc @ j_ct @ r_ci_mc @ r_ci_mk @ r_mc_mk;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "cn.country_code = '[us]'"; "n.gender = 'f'" ];
          [ "k.keyword = 'kw_4'"; "ct.kind = 'production_companies'";
            "n.name LIKE '%Tim%'" ];
          [ "k.keyword = 'kw_341'"; "cn.country_code = '[it]'";
            "ct.kind = 'distributors'" ];
          [ "k.keyword IN ('kw_0', 'kw_1')"; "cn.country_code = '[us]'";
            "ct.kind = 'production_companies'"; "t.production_year > 2010" ];
        ];
    };
    {
      num = "13";
      select = "MIN(t.title)";
      from = [ t_t; t_mi; t_midx; t_it1; t_it2; t_kt; t_mk; t_k ];
      joins = j_mi @ j_midx @ j_kt @ j_mk @ r_mi_midx;
      variants =
        [
          [ "kt.kind = 'movie'"; "it1.info = 'genres'"; "mi.info = 'action'";
            "it2.info = 'rating'"; "mi_idx.info = 'r9'"; "k.keyword = 'kw_0'" ];
          [ "kt.kind = 'documentary'"; "it1.info = 'genres'";
            "mi.info = 'action'"; "it2.info = 'rating'"; "mi_idx.info = 'r9'" ];
          [ "kt.kind = 'movie'"; "it1.info = 'rating-class'";
            "mi.info = 'golden'"; "it2.info = 'votes'"; "mi_idx.info = 'v0'";
            "t.production_year BETWEEN 1950 AND 1979" ];
          [ "kt.kind = 'tv_series'"; "it1.info = 'info_5'";
            "it2.info = 'rating'"; "k.keyword = 'kw_8'" ];
        ];
    };
    {
      num = "14";
      select = "MIN(n.name), MIN(cn.name)";
      from = [ t_t; t_ci; t_n; t_rt; t_chn; t_mc; t_cn; t_ct ];
      joins = j_ci @ j_rt @ j_chn @ j_mc @ j_ct @ r_ci_mc;
      variants =
        [
          [ "rt.role = 'actress'"; "n.gender = 'f'";
            "cn.country_code = '[us]'"; "ct.kind = 'production_companies'" ];
          [ "rt.role = 'actor'"; "chn.name LIKE '%Man%'";
            "cn.country_code = '[us]'" ];
          [ "rt.role = 'writer'"; "n.name LIKE 'c%'"; "ct.kind = 'distributors'" ];
          [ "rt.role = 'actress'"; "n.gender = 'm'"; "cn.country_code = '[gb]'" ];
        ];
    };
    {
      num = "15";
      select = "MIN(t.title)";
      from = [ t_t; t_mk; t_k; t_mi; t_it1; t_mc; t_cn; t_kt ];
      joins = j_mk @ j_mi @ j_mc @ j_kt @ r_mc_mk;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "kt.kind = 'movie'"; "it1.info = 'genres'";
            "mi.info = 'action'"; "cn.country_code = '[us]'" ];
          [ "k.keyword = 'kw_70'"; "kt.kind = 'video'";
            "it1.info = 'rating-class'"; "mi.info = 'new'" ];
          [ "k.keyword = 'kw_1'"; "kt.kind = 'tv_series'";
            "it1.info = 'genres'"; "mi.info = 'drama'";
            "cn.country_code = '[jp]'" ];
          [ "t.title LIKE '%Dark%'"; "k.keyword = 'kw_0'";
            "it1.info = 'rating-class'"; "mi.info = 'new'"; "kt.kind = 'movie'" ];
        ];
    };
    {
      num = "16";
      select = "MIN(an.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_an; t_mk; t_k; t_mc; t_cn ];
      joins = j_ci @ j_an @ j_mk @ j_mc @ r_ci_mc @ r_ci_mk @ r_mc_mk;
      variants =
        [
          [ "k.keyword = 'kw_9'"; "n.name LIKE 'a%'" ];
          (* 16b: the paper's Fig. 5 worst case — 24 estimate corrections
             before a good plan. Hot keyword + selective name prefix. *)
          [ "k.keyword = 'kw_0'"; "n.name LIKE 'x%'";
            "cn.country_code = '[us]'" ];
          [ "k.keyword = 'kw_40'"; "cn.country_code = '[fr]'" ];
          [ "k.keyword IN ('kw_0', 'kw_2')"; "n.gender = 'f'" ];
          [ "k.keyword = 'kw_339'"; "n.name LIKE '%John%'";
            "cn.country_code = '[us]'" ];
        ];
    };
    (* 9 tables: 5 + 5 + 4 = 14 *)
    {
      num = "17";
      select = "MIN(n.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_rt; t_chn; t_mk; t_k; t_mc; t_cn ];
      joins = j_ci @ j_rt @ j_chn @ j_mk @ j_mc @ r_ci_mk @ r_ci_mc;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "rt.role = 'actress'"; "n.gender = 'f'";
            "cn.country_code = '[us]'" ];
          [ "k.keyword = 'kw_13'"; "rt.role = 'actor'";
            "chn.name LIKE '%Man%'" ];
          [ "k.keyword = 'kw_317'"; "rt.role = 'director'";
            "cn.country_code = '[de]'" ];
          [ "n.name LIKE '%Tim%'"; "k.keyword = 'kw_1'"; "rt.role = 'actor'" ];
          [ "k.keyword = 'kw_0'"; "rt.role = 'actress'"; "n.gender = 'm'";
            "cn.country_code = '[us]'" ];
        ];
    };
    {
      num = "19";
      select = "MIN(t.title)";
      from = [ t_t; t_mi; t_midx; t_it1; t_it2; t_mk; t_k; t_mc; t_cn ];
      joins = j_mi @ j_midx @ j_mk @ j_mc @ r_mi_midx @ r_mc_mk;
      variants =
        [
          [ "it1.info = 'genres'"; "mi.info = 'action'"; "it2.info = 'rating'";
            "mi_idx.info = 'r9'"; "k.keyword = 'kw_0'";
            "cn.country_code = '[us]'" ];
          [ "it1.info = 'rating-class'"; "mi.info = 'new'";
            "it2.info = 'votes'"; "mi_idx.info = 'v9'";
            "t.production_year > 2005" ];
          [ "it1.info = 'rating-class'"; "mi.info = 'classic'";
            "it2.info = 'rating'"; "mi_idx.info = 'r9'";
            "t.production_year > 2005"; "k.keyword = 'kw_3'" ];
          [ "it1.info = 'info_9'"; "it2.info = 'rating'";
            "k.keyword = 'kw_100'"; "cn.country_code = '[gb]'" ];
          [ "it1.info = 'genres'"; "mi.info = 'comedy'"; "it2.info = 'rating'";
            "mi_idx.info = 'r8'"; "cn.country_code = '[us]'";
            "k.keyword = 'kw_2'" ];
        ];
    };
    {
      num = "21";
      select = "MIN(an.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_an; t_mi; t_it1; t_mc; t_cn; t_ct ];
      joins = j_ci @ j_an @ j_mi @ j_mc @ j_ct @ r_ci_mc;
      variants =
        [
          [ "an.name LIKE '%John%'"; "it1.info = 'genres'"; "mi.info = 'drama'";
            "cn.country_code = '[us]'" ];
          [ "n.gender = 'f'"; "it1.info = 'rating-class'"; "mi.info = 'new'";
            "ct.kind = 'production_companies'" ];
          [ "an.name LIKE '%Tim%'"; "it1.info = 'rating-class'";
            "mi.info = 'classic'"; "t.production_year > 2000" ];
          [ "n.name LIKE 'd%'"; "it1.info = 'info_3'";
            "cn.country_code = '[ca]'"; "ct.kind = 'distributors'" ];
        ];
    };
    (* 10 tables: 4 + 3 = 7 *)
    {
      num = "30";
      select = "MIN(n.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_rt; t_chn; t_mk; t_k; t_mc; t_cn; t_ct ];
      joins =
        j_ci @ j_rt @ j_chn @ j_mk @ j_mc @ j_ct @ r_ci_mk @ r_ci_mc @ r_mc_mk;
      variants =
        [
          (* 30a: Fig. 5 — a few corrections find a good plan, further
             "improvement" makes it worse. *)
          [ "k.keyword = 'kw_0'"; "n.gender = 'm'"; "rt.role = 'actor'";
            "cn.country_code = '[us]'"; "ct.kind = 'production_companies'" ];
          [ "k.keyword = 'kw_6'"; "rt.role = 'actress'"; "n.gender = 'f'";
            "cn.country_code = '[us]'" ];
          [ "k.keyword = 'kw_337'"; "rt.role = 'producer'";
            "ct.kind = 'distributors'" ];
          [ "chn.name LIKE '%Man%'"; "k.keyword = 'kw_0'"; "rt.role = 'actor'";
            "cn.country_code = '[us]'" ];
        ];
    };
    {
      num = "25";
      select = "MIN(n.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_mi; t_midx; t_it1; t_it2; t_mk; t_k; t_kt ];
      joins = j_ci @ j_mi @ j_midx @ j_mk @ j_kt @ r_mi_midx @ r_ci_mk;
      variants =
        [
          [ "k.keyword = 'kw_12'"; "it1.info = 'genres'"; "mi.info = 'horror'";
            "it2.info = 'rating'"; "n.gender = 'm'" ];
          [ "k.keyword = 'kw_0'"; "it1.info = 'rating-class'";
            "mi.info = 'new'"; "it2.info = 'votes'"; "mi_idx.info = 'v9'";
            "kt.kind = 'movie'" ];
          (* 25c: Fig. 5 — hot keyword, correlated genre, rating and LIKE. *)
          [ "k.keyword = 'kw_0'"; "it1.info = 'genres'"; "mi.info = 'action'";
            "it2.info = 'rating'"; "mi_idx.info = 'r9'";
            "n.name LIKE '%Tim%'"; "kt.kind = 'movie'" ];
        ];
    };
    (* 11 tables: 5 + 5 = 10 *)
    {
      num = "22";
      select = "MIN(n.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_rt; t_chn; t_mk; t_k; t_mc; t_cn; t_ct; t_kt ];
      joins =
        j_ci @ j_rt @ j_chn @ j_mk @ j_mc @ j_ct @ j_kt @ r_ci_mk @ r_ci_mc
        @ r_mc_mk;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "kt.kind = 'movie'"; "rt.role = 'actress'";
            "n.gender = 'f'"; "cn.country_code = '[us]'";
            "ct.kind = 'production_companies'" ];
          [ "k.keyword = 'kw_25'"; "kt.kind = 'tv_series'"; "rt.role = 'actor'" ];
          [ "k.keyword = 'kw_343'"; "kt.kind = 'movie'"; "rt.role = 'director'";
            "cn.country_code = '[fr]'" ];
          [ "n.name LIKE '%John%'"; "k.keyword = 'kw_2'"; "kt.kind = 'movie'";
            "ct.kind = 'production_companies'" ];
          [ "k.keyword = 'kw_0'"; "kt.kind = 'video_game'"; "rt.role = 'actor'";
            "cn.country_code = '[us]'" ];
        ];
    };
    {
      num = "23";
      select = "MIN(t.title)";
      from = [ t_t; t_mi; t_midx; t_it1; t_it2; t_mk; t_k; t_mc; t_cn; t_ct; t_kt ];
      joins = j_mi @ j_midx @ j_mk @ j_mc @ j_ct @ j_kt @ r_mi_midx @ r_mc_mk;
      variants =
        [
          [ "it1.info = 'genres'"; "mi.info = 'action'"; "it2.info = 'rating'";
            "mi_idx.info = 'r9'"; "k.keyword = 'kw_0'"; "kt.kind = 'movie'";
            "cn.country_code = '[us]'" ];
          [ "it1.info = 'rating-class'"; "mi.info = 'modern'";
            "it2.info = 'votes'"; "mi_idx.info = 'v8'"; "kt.kind = 'movie'";
            "t.production_year BETWEEN 1980 AND 1999" ];
          [ "it1.info = 'genres'"; "mi.info = 'scifi'"; "it2.info = 'rating'";
            "mi_idx.info = 'r0'"; "kt.kind = 'movie'" ];
          [ "it1.info = 'info_11'"; "it2.info = 'rating'";
            "k.keyword = 'kw_33'"; "ct.kind = 'production_companies'";
            "cn.country_code = '[us]'" ];
          [ "it1.info = 'rating-class'"; "mi.info = 'new'";
            "it2.info = 'rating'"; "mi_idx.info = 'r9'"; "kt.kind = 'episode'";
            "k.keyword = 'kw_2'" ];
        ];
    };
    (* 12 tables: 4 + 4 + 3 = 11 *)
    {
      num = "24";
      select = "MIN(n.name), MIN(t.title)";
      from =
        [ t_t; t_ci; t_n; t_an; t_rt; t_chn; t_mk; t_k; t_mc; t_cn; t_ct; t_kt ];
      joins =
        j_ci @ j_an @ j_rt @ j_chn @ j_mk @ j_mc @ j_ct @ j_kt @ r_ci_mk
        @ r_ci_mc;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "kt.kind = 'movie'"; "n.gender = 'f'";
            "rt.role = 'actress'"; "cn.country_code = '[us]'" ];
          [ "an.name LIKE '%Tim%'"; "k.keyword = 'kw_1'"; "kt.kind = 'movie'";
            "rt.role = 'actor'"; "ct.kind = 'production_companies'" ];
          [ "k.keyword = 'kw_331'"; "kt.kind = 'documentary'";
            "rt.role = 'director'" ];
          [ "chn.name LIKE '%Man%'"; "k.keyword = 'kw_0'"; "kt.kind = 'movie'";
            "n.gender = 'm'"; "cn.country_code = '[us]'" ];
        ];
    };
    {
      num = "26";
      select = "MIN(t.title), MIN(n.name)";
      from =
        [ t_t; t_ci; t_n; t_mi; t_midx; t_it1; t_it2; t_mk; t_k; t_mc; t_cn; t_ct ];
      joins =
        j_ci @ j_mi @ j_midx @ j_mk @ j_mc @ j_ct @ r_mi_midx @ r_ci_mc
        @ r_ci_mk @ r_mc_mk;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "it1.info = 'genres'"; "mi.info = 'action'";
            "it2.info = 'rating'"; "mi_idx.info = 'r9'";
            "cn.country_code = '[us]'"; "n.gender = 'm'" ];
          [ "it1.info = 'rating-class'"; "mi.info = 'new'";
            "it2.info = 'votes'"; "mi_idx.info = 'v9'"; "k.keyword = 'kw_4'";
            "ct.kind = 'production_companies'" ];
          [ "k.keyword = 'kw_329'"; "it1.info = 'info_8'";
            "it2.info = 'rating'"; "cn.country_code = '[se]'" ];
          [ "k.keyword = 'kw_0'"; "it1.info = 'rating-class'";
            "mi.info = 'classic'"; "it2.info = 'rating'"; "mi_idx.info = 'r9'";
            "t.production_year > 2010" ];
        ];
    };
    {
      num = "27";
      select = "MIN(n.name), MIN(t.title)";
      from = [ t_t; t_ci; t_n; t_rt; t_chn; t_mi; t_it1; t_mk; t_k; t_mc; t_cn; t_kt ];
      joins = j_ci @ j_rt @ j_chn @ j_mi @ j_mk @ j_mc @ j_kt @ r_ci_mk;
      variants =
        [
          [ "rt.role = 'actress'"; "n.gender = 'f'"; "it1.info = 'genres'";
            "mi.info = 'romance'"; "k.keyword = 'kw_0'"; "kt.kind = 'movie'" ];
          [ "rt.role = 'actor'"; "chn.name LIKE '%Man%'";
            "it1.info = 'rating-class'"; "mi.info = 'new'";
            "k.keyword = 'kw_1'"; "cn.country_code = '[us]'" ];
          [ "rt.role = 'composer'"; "it1.info = 'info_15'";
            "k.keyword = 'kw_90'"; "kt.kind = 'movie'" ];
        ];
    };
    (* 14 tables: 3 + 3 = 6 *)
    {
      num = "28";
      select = "MIN(n.name), MIN(t.title)";
      from =
        [ t_t; t_ci; t_n; t_an; t_rt; t_chn; t_mi; t_it1; t_mk; t_k; t_mc;
          t_cn; t_ct; t_kt ];
      joins =
        j_ci @ j_an @ j_rt @ j_chn @ j_mi @ j_mk @ j_mc @ j_ct @ j_kt
        @ r_ci_mk @ r_ci_mc;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "kt.kind = 'movie'"; "rt.role = 'actress'";
            "n.gender = 'f'"; "it1.info = 'genres'"; "mi.info = 'romance'";
            "cn.country_code = '[us]'" ];
          [ "an.name LIKE '%John%'"; "k.keyword = 'kw_3'"; "kt.kind = 'movie'";
            "rt.role = 'actor'"; "it1.info = 'rating-class'"; "mi.info = 'new'" ];
          [ "k.keyword = 'kw_323'"; "kt.kind = 'tv_series'";
            "rt.role = 'writer'"; "it1.info = 'info_21'";
            "ct.kind = 'distributors'" ];
        ];
    };
    {
      num = "29";
      select = "MIN(n.name), MIN(t.title)";
      from =
        [ t_t; t_ci; t_n; t_rt; t_mi; t_midx; t_it1; t_it2; t_mk; t_k; t_mc;
          t_cn; t_ct; t_kt ];
      joins =
        j_ci @ j_rt @ j_mi @ j_midx @ j_mk @ j_mc @ j_ct @ j_kt @ r_mi_midx
        @ r_mc_mk @ r_ci_mk;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "kt.kind = 'movie'"; "it1.info = 'genres'";
            "mi.info = 'action'"; "it2.info = 'rating'"; "mi_idx.info = 'r9'";
            "rt.role = 'actor'"; "cn.country_code = '[us]'" ];
          [ "k.keyword = 'kw_7'"; "kt.kind = 'movie'";
            "it1.info = 'rating-class'"; "mi.info = 'modern'";
            "it2.info = 'votes'"; "mi_idx.info = 'v7'"; "rt.role = 'actress'";
            "n.gender = 'f'" ];
          [ "k.keyword = 'kw_333'"; "kt.kind = 'episode'";
            "it1.info = 'info_30'"; "it2.info = 'rating'"; "rt.role = 'guest'" ];
        ];
    };
    (* 17 tables: 1 family x 3 variants *)
    {
      num = "33";
      select = "MIN(n.name), MIN(t.title), MIN(cn.name)";
      from =
        [ t_t; t_ci; t_n; t_an; t_rt; t_chn; t_mi; t_midx; t_it1; t_it2;
          t_mk; t_k; t_mk2; t_k2; t_mc; t_cn; t_ct ];
      joins =
        j_ci @ j_an @ j_rt @ j_chn @ j_mi @ j_midx @ j_mk @ j_mk2 @ j_mc
        @ j_ct @ r_mi_midx @ r_ci_mk @ r_ci_mc @ r_mc_mk;
      variants =
        [
          [ "k.keyword = 'kw_0'"; "k2.keyword = 'kw_1'"; "n.gender = 'f'";
            "rt.role = 'actress'"; "it1.info = 'genres'"; "mi.info = 'romance'";
            "it2.info = 'rating'"; "mi_idx.info = 'r9'";
            "cn.country_code = '[us]'" ];
          [ "k.keyword = 'kw_2'"; "k2.keyword = 'kw_9'"; "rt.role = 'actor'";
            "it1.info = 'rating-class'"; "mi.info = 'new'";
            "it2.info = 'votes'"; "mi_idx.info = 'v9'";
            "ct.kind = 'production_companies'" ];
          [ "k.keyword = 'kw_300'"; "k2.keyword = 'kw_301'";
            "rt.role = 'director'"; "it1.info = 'info_18'";
            "it2.info = 'rating'"; "an.name LIKE '%Tim%'" ];
        ];
    };
  ]

let letter i = String.make 1 (Char.chr (Char.code 'a' + i))

let render f preds =
  Printf.sprintf "SELECT %s\nFROM %s\nWHERE %s;" f.select
    (String.concat ", " f.from)
    (String.concat "\n  AND " (f.joins @ preds))

let sql_with_size =
  List.concat_map
    (fun f ->
      List.mapi
        (fun i preds -> (f.num ^ letter i, render f preds, List.length f.from))
        f.variants)
    families

let sql = List.map (fun (name, text, _) -> (name, text)) sql_with_size

let sql_of name =
  List.find_map
    (fun (n, text) -> if String.equal n name then Some text else None)
    sql

let bind_one catalog name text =
  match Binder.bind catalog ~name (Parser.parse text) with
  | Ok q -> q
  | Error msg ->
    invalid_arg (Printf.sprintf "Job_queries: query %s failed to bind: %s" name msg)

let all catalog = List.map (fun (name, text) -> bind_one catalog name text) sql

let find catalog name =
  match sql_of name with
  | Some text -> bind_one catalog name text
  | None -> invalid_arg ("Job_queries.find: unknown query " ^ name)

let distribution () =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (_, _, size) ->
      Hashtbl.replace counts size
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts size)))
    sql_with_size;
  Hashtbl.fold (fun size count acc -> (size, count) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
