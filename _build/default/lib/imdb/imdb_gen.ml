module Prng = Rdb_util.Prng
module Zipf = Rdb_util.Zipf

type sizes = {
  titles : int;
  keywords : int;
  names : int;
  companies : int;
  chars : int;
  akas : int;
  movie_keywords : int;
  cast_infos : int;
  movie_companies : int;
  movie_infos : int;
  movie_info_idxs : int;
}

let scaled scale base = Int.max 50 (int_of_float (float_of_int base *. scale))

let sizes ~scale =
  {
    titles = scaled scale 12_000;
    keywords = scaled scale 4_000;
    names = scaled scale 25_000;
    companies = scaled scale 4_000;
    chars = scaled scale 15_000;
    akas = scaled scale 10_000;
    movie_keywords = scaled scale 60_000;
    cast_infos = scaled scale 100_000;
    movie_companies = scaled scale 25_000;
    movie_infos = scaled scale 50_000;
    movie_info_idxs = scaled scale 12_000;
  }

let letters = "abcdefghijklmnopqrstuvwxyz"

(* ---- small fixed dimension tables ---- *)

let dim_table name values =
  let n = Array.length values in
  Table.create ~name ~schema:(Imdb_schema.schema name)
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Strs (Array.copy values);
    |]

let kind_type_table () = dim_table "kind_type" Imdb_schema.kind_names
let role_type_table () = dim_table "role_type" Imdb_schema.role_names

let company_type_table () =
  dim_table "company_type" Imdb_schema.company_type_names

let info_type_table () =
  dim_table "info_type"
    (Array.init Imdb_schema.n_info_types (fun i ->
         Imdb_schema.info_type_name (i + 1)))

(* ---- entity tables ---- *)

(* Keyword ids interleave seven popularity-ordered groups:
   id = rank * 7 + group + 1, so "kw_0".."kw_6" are the hottest keyword of
   each group. The group correlates with the movie kind in movie_keyword. *)
let keyword_table s =
  let n = s.keywords in
  Table.create ~name:"keyword" ~schema:(Imdb_schema.schema "keyword")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Strs (Array.init n (fun i -> Printf.sprintf "kw_%d" i));
    |]

(* Popular companies (low id) are overwhelmingly US: a correlation between
   popularity and country invisible to per-column statistics. *)
let company_table prng s =
  let n = s.companies in
  let codes =
    [| "[de]"; "[fr]"; "[gb]"; "[it]"; "[jp]"; "[in]"; "[es]"; "[ca]"; "[au]"; "[se]"; "[nl]" |]
  in
  let country i =
    if i <= n / 4 then if Prng.float prng 1.0 < 0.85 then "[us]" else codes.(i mod 11)
    else if Prng.float prng 1.0 < 0.15 then "[us]"
    else codes.(i mod 11)
  in
  Table.create ~name:"company_name" ~schema:(Imdb_schema.schema "company_name")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Strs
        (Array.init n (fun i ->
             Printf.sprintf "%cco_%d inc" letters.[i mod 26] (i + 1)));
      Column.Strs (Array.init n (fun i -> country (i + 1)));
    |]

(* Planted substrings at controlled frequencies feed the LIKE
   experiments: ~2% of names contain "Tim", ~2.3% contain "John". *)
let person_name i =
  let letter = letters.[i mod 26] in
  let marker =
    if i mod 50 = 7 then "Tim" else if i mod 43 = 11 then "John" else ""
  in
  Printf.sprintf "%c%s_person_%d" letter marker i

let name_table prng s =
  let n = s.names in
  let gender _i = if Prng.float prng 1.0 < 0.45 then "f" else "m" in
  Table.create ~name:"name" ~schema:(Imdb_schema.schema "name")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Strs (Array.init n (fun i -> person_name (i + 1)));
      Column.Strs (Array.init n gender);
    |]

let char_table s =
  let n = s.chars in
  let char_name i =
    let marker = if i mod 29 = 5 then "Man" else "" in
    Printf.sprintf "%cchar_%s%d" letters.[i mod 26] marker i
  in
  Table.create ~name:"char_name" ~schema:(Imdb_schema.schema "char_name")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Strs (Array.init n (fun i -> char_name (i + 1)));
    |]

let aka_table prng s ~person_zipf =
  let n = s.akas in
  let person = Array.init n (fun _ -> Zipf.sample person_zipf prng + 1) in
  Table.create ~name:"aka_name" ~schema:(Imdb_schema.schema "aka_name")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Ints person;
      Column.Strs (Array.init n (fun i -> "aka_" ^ person_name (i + 1)));
    |]

(* Movie kinds are Zipf-skewed ("movie" dominates); production years skew
   recent. Both feed correlated predicates downstream. *)
let title_table prng s =
  let n = s.titles in
  let kind_zipf = Zipf.create ~n:7 ~s:0.9 in
  let year_zipf = Zipf.create ~n:120 ~s:0.8 in
  let kinds = Array.init n (fun _ -> Zipf.sample kind_zipf prng + 1) in
  let years = Array.init n (fun _ -> 2019 - Zipf.sample year_zipf prng) in
  let title i =
    let marker =
      if i mod 37 = 3 then "Dark" else if i mod 23 = 9 then "Love" else ""
    in
    Printf.sprintf "%c%s_film_%d" letters.[i mod 26] marker i
  in
  let table =
    Table.create ~name:"title" ~schema:(Imdb_schema.schema "title")
      [|
        Column.Ints (Array.init n (fun i -> i + 1));
        Column.Strs (Array.init n (fun i -> title (i + 1)));
        Column.Ints kinds;
        Column.Ints years;
      |]
  in
  (table, kinds, years)

(* ---- fact tables ---- *)

(* ---- movie fan-out distribution ---- *)

(* A bounded two-tier "blockbuster" distribution drives every fact table's
   movie_id: 10% of movies (ids with [id mod 10 = 4]) receive [tier_weight]x
   the row mass of the rest, in movie_keyword, cast_info, movie_companies,
   movie_info and movie_info_idx alike. Because the same movies are heavy
   everywhere, multi-fact join cardinalities exceed the independence
   estimate by a factor that grows exponentially with the number of facts
   joined — the paper's "errors increase exponentially with the number of
   joins" (§IV), with bounded (non-Zipf) tails so true intermediates stay
   finite. *)

module Movie_dist = struct
  type t = { titles : int; p_blockbuster_row : float }

  let tier_weight = 6.0

  let create titles =
    let share = 0.1 *. tier_weight /. ((0.9 *. 1.0) +. (0.1 *. tier_weight)) in
    { titles; p_blockbuster_row = share }

  let is_blockbuster id = id mod 10 = 4

  (* id in [1, titles] *)
  let sample t prng =
    if Prng.float prng 1.0 < t.p_blockbuster_row then begin
      let n_block = t.titles / 10 in
      if n_block = 0 then Prng.int_in prng 1 t.titles
      else begin
        let b = Prng.int prng n_block in
        (10 * b) + 4
      end
    end
    else begin
      (* uniform over the 9-of-10 non-blockbuster ids *)
      let decade_count = (t.titles + 9) / 10 in
      let rec draw () =
        let d = Prng.int prng decade_count in
        let pos = Prng.int prng 9 in
        let pos = if pos >= 3 then pos + 1 else pos in
        let id = (10 * d) + pos + 1 in
        if id > t.titles || is_blockbuster id then draw () else id
      in
      draw ()
    end
end



let movie_keyword_table prng s ~movie_dist ~kinds =
  let n = s.movie_keywords in
  let n_groups = 7 in
  let per_group = Int.max 1 (s.keywords / n_groups) in
  let group_zipf = Zipf.create ~n:per_group ~s:1.1 in
  let movie = Array.make n 0 and keyword = Array.make n 0 in
  for i = 0 to n - 1 do
    let m = Movie_dist.sample movie_dist prng in
    movie.(i) <- m;
    let kind = kinds.(m - 1) in
    let kw =
      if Prng.float prng 1.0 < 0.8 then begin
        (* keyword from the group matching the movie's kind *)
        let g = (kind - 1) mod n_groups in
        let rank = Zipf.sample group_zipf prng in
        Int.min s.keywords ((rank * n_groups) + g + 1)
      end
      else Prng.int_in prng 1 s.keywords
    in
    keyword.(i) <- kw
  done;
  Table.create ~name:"movie_keyword" ~schema:(Imdb_schema.schema "movie_keyword")
    [| Column.Ints (Array.init n (fun i -> i + 1)); Column.Ints movie; Column.Ints keyword |]

(* The cast: person activity is heavily skewed (stars), and the role
   correlates with the person's gender. ~12% of rows have no character. *)
let cast_info_table prng s ~movie_dist ~person_zipf ~genders =
  let n = s.cast_infos in
  let movie = Array.make n 0
  and person = Array.make n 0
  and person_role = Array.make n 0
  and role = Array.make n 0 in
  for i = 0 to n - 1 do
    movie.(i) <- Movie_dist.sample movie_dist prng;
    let p = Zipf.sample person_zipf prng + 1 in
    person.(i) <- p;
    let female = genders.(p - 1) in
    role.(i) <-
      (if female then if Prng.float prng 1.0 < 0.8 then 2 else Prng.int_in prng 1 12
       else if Prng.float prng 1.0 < 0.7 then 1
       else Prng.int_in prng 1 12);
    person_role.(i) <-
      (if Prng.float prng 1.0 < 0.12 then Column.null_int
       else Prng.int_in prng 1 s.chars)
  done;
  Table.create ~name:"cast_info" ~schema:(Imdb_schema.schema "cast_info")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Ints person;
      Column.Ints movie;
      Column.Ints person_role;
      Column.Ints role;
    |]

let movie_companies_table prng s ~movie_dist =
  let n = s.movie_companies in
  let company_zipf = Zipf.create ~n:s.companies ~s:1.1 in
  let movie = Array.make n 0 and company = Array.make n 0 and ctype = Array.make n 0 in
  for i = 0 to n - 1 do
    movie.(i) <- Movie_dist.sample movie_dist prng;
    company.(i) <- Zipf.sample company_zipf prng + 1;
    ctype.(i) <- (if Prng.float prng 1.0 < 0.9 then 1 else Prng.int_in prng 2 4)
  done;
  Table.create ~name:"movie_companies" ~schema:(Imdb_schema.schema "movie_companies")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Ints movie;
      Column.Ints company;
      Column.Ints ctype;
    |]

let genres =
  [| "action"; "drama"; "comedy"; "thriller"; "romance"; "scifi"; "war";
     "crime"; "fantasy"; "history"; "horror"; "music"; "mystery"; "sport";
     "western"; "family"; "adventure"; "animation"; "biography"; "musical"; "news" |]

(* info_type 1 (genres) correlates with the movie kind; info_type 2
   (rating-class) correlates with the production year: join-crossing
   correlations the estimator cannot see. *)
let movie_info_table prng s ~movie_dist ~kinds ~years =
  let n = s.movie_infos in
  let value_zipf = Zipf.create ~n:50 ~s:1.0 in
  let movie = Array.make n 0 and itype = Array.make n 0 in
  let info = Array.make n "" in
  for i = 0 to n - 1 do
    let m = Movie_dist.sample movie_dist prng in
    movie.(i) <- m;
    let it = Prng.int_in prng 1 (Imdb_schema.n_info_types - 2) in
    itype.(i) <- it;
    info.(i) <-
      (match it with
       | 1 ->
         let kind = kinds.(m - 1) in
         if Prng.float prng 1.0 < 0.8 then genres.(((kind - 1) * 3) mod 21)
         else genres.(Prng.int prng 21)
       | 2 ->
         let year = years.(m - 1) in
         if Prng.float prng 1.0 < 0.9 then
           if year >= 2000 then "new"
           else if year >= 1980 then "modern"
           else if year >= 1950 then "golden"
           else "classic"
         else Prng.choose prng [| "new"; "modern"; "golden"; "classic" |]
       | _ -> Printf.sprintf "v%d_%d" it (Zipf.sample value_zipf prng))
  done;
  Table.create ~name:"movie_info" ~schema:(Imdb_schema.schema "movie_info")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Ints movie;
      Column.Ints itype;
      Column.Strs info;
    |]

(* movie_info_idx holds ratings/votes whose value correlates with the
   movie's popularity rank (popular movies rate higher and gather more
   votes). *)
let movie_info_idx_table prng s ~movie_dist =
  let n = s.movie_info_idxs in
  let movie = Array.make n 0 and itype = Array.make n 0 in
  let info = Array.make n "" in
  for i = 0 to n - 1 do
    let m = Movie_dist.sample movie_dist prng in
    movie.(i) <- m;
    (* Ratings and vote buckets correlate with the blockbuster tier:
       selecting 'r9' rows selects the movies that are heavy in every other
       fact table. *)
    let level base =
      let noise = Prng.int_in prng (-1) 1 in
      Int.max 0 (Int.min 9 (base + noise))
    in
    let base =
      if Movie_dist.is_blockbuster m then 9 else Prng.int_in prng 0 7
    in
    if Prng.float prng 1.0 < 0.6 then begin
      itype.(i) <- Imdb_schema.n_info_types - 1;
      info.(i) <- Printf.sprintf "r%d" (level base)
    end
    else begin
      itype.(i) <- Imdb_schema.n_info_types;
      info.(i) <- Printf.sprintf "v%d" (level base)
    end
  done;
  Table.create ~name:"movie_info_idx" ~schema:(Imdb_schema.schema "movie_info_idx")
    [|
      Column.Ints (Array.init n (fun i -> i + 1));
      Column.Ints movie;
      Column.Ints itype;
      Column.Strs info;
    |]

let generate ?(seed = 42) ~scale () =
  let s = sizes ~scale in
  let root = Prng.create seed in
  let movie_dist = Movie_dist.create s.titles in
  let person_zipf = Zipf.create ~n:s.names ~s:0.5 in
  let catalog = Catalog.create () in
  let add t = Catalog.add_table catalog t in
  add (kind_type_table ());
  add (role_type_table ());
  add (company_type_table ());
  add (info_type_table ());
  add (keyword_table s);
  add (company_table (Prng.split root) s);
  let name_tbl = name_table (Prng.split root) s in
  add name_tbl;
  let genders =
    Array.init s.names (fun i ->
        Column.get_str (Table.column name_tbl 2) i = "f")
  in
  add (char_table s);
  add (aka_table (Prng.split root) s ~person_zipf);
  let title_tbl, kinds, years = title_table (Prng.split root) s in
  add title_tbl;
  add (movie_keyword_table (Prng.split root) s ~movie_dist ~kinds);
  add (cast_info_table (Prng.split root) s ~movie_dist ~person_zipf ~genders);
  add (movie_companies_table (Prng.split root) s ~movie_dist);
  add (movie_info_table (Prng.split root) s ~movie_dist ~kinds ~years);
  add (movie_info_idx_table (Prng.split root) s ~movie_dist);
  List.iter
    (fun (name, _) ->
      let schema = Table.schema (Catalog.table_exn catalog name) in
      List.iter
        (fun col_name ->
          Catalog.add_index catalog ~table:name
            ~col:(Schema.find_exn schema col_name))
        (Imdb_schema.indexed_columns name))
    Imdb_schema.tables;
  catalog
