lib/imdb/job_queries.ml: Char Hashtbl Int List Option Printf Rdb_query Rdb_sql String
