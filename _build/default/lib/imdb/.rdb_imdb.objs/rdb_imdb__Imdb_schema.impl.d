lib/imdb/imdb_schema.ml: List Printf Schema Value
