lib/imdb/imdb_schema.mli: Schema
