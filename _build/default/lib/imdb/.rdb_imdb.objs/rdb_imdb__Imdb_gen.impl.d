lib/imdb/imdb_gen.ml: Array Catalog Column Imdb_schema Int List Printf Rdb_util Schema String Table
