lib/imdb/imdb_gen.mli: Catalog
