lib/imdb/job_queries.mli: Catalog Rdb_query
