(** The JOB-analog workload: 113 select-project-join queries over the
    synthetic IMDB schema, grouped into families with a/b/c/... variants as
    in the Join Order Benchmark, and matching Table III of the paper
    exactly: 3 queries of 4 tables, 20 of 5, 2 of 6, 16 of 7, 21 of 8,
    14 of 9, 7 of 10, 10 of 11, 11 of 12, 6 of 14, and 3 of 17.

    Variants differ in predicate constants: some hit the planted skew and
    correlations (mis-estimated by orders of magnitude), others are benign,
    giving the same mix of well- and badly-planned queries the paper
    observes. Query names follow the families discussed in the paper:
    "6d", "18a", "16b", "25c", and "30a" are the analogs of its deep-dive
    queries. *)

module Query := Rdb_query.Query

val sql : (string * string) list
(** All (name, SQL text) pairs, in workload order. *)

val sql_of : string -> string option
(** SQL text of a query by name. *)

val all : Catalog.t -> Query.t list
(** Parse and bind every query. Raises [Invalid_argument] if any query
    fails to bind — the workload is validated against the catalog. *)

val find : Catalog.t -> string -> Query.t
(** One bound query by name. *)

val distribution : unit -> (int * int) list
(** [(n_tables, n_queries)] pairs, ascending — Table III. *)
