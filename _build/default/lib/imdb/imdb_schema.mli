(** The synthetic IMDB-like schema: the table shapes of the Join Order
    Benchmark's database, scaled down. Dimension tables (kind_type,
    info_type, company_type, role_type) are fixed-size; entity and fact
    tables scale with the generator's scale factor. *)

val tables : (string * Schema.t) list
(** All table schemas, keyed by name. *)

val schema : string -> Schema.t
(** Raises [Invalid_argument] for unknown names. *)

val indexed_columns : string -> string list
(** Column names that receive hash indexes: every surrogate id and foreign
    key, mirroring the paper's "we add foreign key indexes" setup. *)

val kind_names : string array
(** The seven title kinds; index = kind_id - 1. *)

val role_names : string array
(** The twelve cast roles; index = role_id - 1. *)

val company_type_names : string array

val n_info_types : int
(** Number of info_type rows. The last two ids are reserved for
    movie_info_idx ("rating", "votes"); 1 is "genres", 2 is
    "rating-class". *)

val info_type_name : int -> string
