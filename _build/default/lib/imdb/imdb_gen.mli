(** Deterministic generator for the synthetic IMDB database.

    The generator plants exactly the estimation hazards the paper blames
    for bad plans (§IV):

    - {b Skew}: keyword, company, person and movie popularity follow Zipf
      distributions, so equality predicates on frequent values blow
      through the uniformity assumption across joins (the Nasdaq example).
    - {b Join-crossing correlation}: keywords cluster on the movie kind
      their group matches; genres and rating classes depend on the movie's
      kind and year; company country depends on company popularity; cast
      role depends on the person's gender. None of these are visible to
      single-column statistics.
    - {b Pattern predicates}: names and titles carry planted substrings at
      controlled frequencies, so LIKE selectivities default to guesses.

    All randomness flows from the seed; equal seeds produce identical
    catalogs. *)

type sizes = {
  titles : int;
  keywords : int;
  names : int;
  companies : int;
  chars : int;
  akas : int;
  movie_keywords : int;
  cast_infos : int;
  movie_companies : int;
  movie_infos : int;
  movie_info_idxs : int;
}

val sizes : scale:float -> sizes
(** Row counts at a scale factor; [scale = 1.0] is the default benchmark
    size (fact tables 12k-100k rows — the whole point of the paper holds at
    laptop scale because only relative plan quality matters). *)

val generate : ?seed:int -> scale:float -> unit -> Catalog.t
(** Build all fifteen tables and their hash indexes. *)
