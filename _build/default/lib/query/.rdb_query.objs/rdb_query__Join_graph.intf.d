lib/query/join_graph.mli: Query Rdb_util
