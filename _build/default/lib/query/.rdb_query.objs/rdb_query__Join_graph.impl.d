lib/query/join_graph.ml: Array Buffer Hashtbl Int List Printf Query Rdb_util
