lib/query/query.ml: Array Catalog Hashtbl List Predicate Printf Rdb_util Result Schema Table Value
