lib/query/predicate.mli: Format Value
