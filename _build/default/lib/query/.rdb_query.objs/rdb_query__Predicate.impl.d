lib/query/predicate.ml: Column Format Int List Printf String Value
