lib/query/query.mli: Catalog Predicate Rdb_util
