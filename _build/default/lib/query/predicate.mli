(** Single-column restriction predicates: everything the JOB subset of SQL
    needs (comparisons, BETWEEN, IN, LIKE on constant patterns, NULL
    tests). *)

type op = Eq | Ne | Lt | Le | Gt | Ge

type like_shape =
  | Prefix of string    (** LIKE 'abc%' *)
  | Suffix of string    (** LIKE '%abc' *)
  | Contains of string  (** LIKE '%abc%' *)

type t =
  | Cmp of op * Value.t
  | Between of int * int
  | In_list of Value.t list
  | Like of like_shape
  | Is_null
  | Is_not_null

val like_holds : like_shape -> string -> bool
(** Does a string match the LIKE pattern? *)

val eval : t -> Value.t -> bool
(** Does a cell satisfy the predicate? SQL three-valued logic collapses to
    false: a NULL cell satisfies only [Is_null]. *)

val eval_int : t -> int -> bool
(** Fast path for raw integer cells ({!Column.null_int} encodes NULL). *)

val eval_str : t -> string -> bool
(** Fast path for string cells. *)

val to_sql : col:string -> t -> string
(** Render as a SQL condition on the given column expression. *)

val pp : col:string -> Format.formatter -> t -> unit
