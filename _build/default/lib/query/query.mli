(** The bound logical query: a select-project-join block in the shape of
    every JOB query — a set of aliased relations, conjunctive single-column
    predicates, equi-join edges, and MIN/COUNT aggregates. *)

type rel = { alias : string; table : string }

type colref = { rel : int; col : int }
(** [rel] indexes into {!field:t.rels}; [col] is a position in that
    relation's table schema. *)

type pred = { target : colref; p : Predicate.t }

type edge = { l : colref; r : colref }
(** An equi-join [l = r]. Join columns must be integer-typed. *)

type agg =
  | Count_star
  | Count_col of colref  (** non-NULL count *)
  | Min_col of colref
  | Max_col of colref
  | Sum_col of colref    (** integer column; NULLs skipped *)

type t = {
  name : string;
  rels : rel array;
  preds : pred list;
  edges : edge list;
  select : agg list;
}

val n_rels : t -> int

val preds_of : t -> int -> Predicate.t list
(** Predicates restricting a given relation, paired with columns. *)

val preds_of_cols : t -> int -> (int * Predicate.t) list
(** [(col, pred)] pairs restricting a given relation. *)

val edges_between : t -> Rdb_util.Relset.t -> Rdb_util.Relset.t -> edge list
(** Join edges with one endpoint in each (disjoint) set, oriented so that
    [l] falls in the first set. *)

val edges_within : t -> Rdb_util.Relset.t -> edge list
(** Edges with both endpoints inside the set. *)

val rel_alias : t -> int -> string

val validate : Catalog.t -> t -> (unit, string) result
(** Check every relation exists, every column index is in range, and every
    join column is integer-typed. *)

val all_rels : t -> Rdb_util.Relset.t
