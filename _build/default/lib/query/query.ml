module Relset = Rdb_util.Relset

type rel = { alias : string; table : string }

type colref = { rel : int; col : int }

type pred = { target : colref; p : Predicate.t }

type edge = { l : colref; r : colref }

type agg =
  | Count_star
  | Count_col of colref
  | Min_col of colref
  | Max_col of colref
  | Sum_col of colref

type t = {
  name : string;
  rels : rel array;
  preds : pred list;
  edges : edge list;
  select : agg list;
}

let n_rels t = Array.length t.rels

let preds_of_cols t rel =
  List.filter_map
    (fun { target; p } -> if target.rel = rel then Some (target.col, p) else None)
    t.preds

let preds_of t rel = List.map snd (preds_of_cols t rel)

let edges_between t s1 s2 =
  List.filter_map
    (fun e ->
      if Relset.mem e.l.rel s1 && Relset.mem e.r.rel s2 then Some e
      else if Relset.mem e.r.rel s1 && Relset.mem e.l.rel s2 then
        Some { l = e.r; r = e.l }
      else None)
    t.edges

let edges_within t s =
  List.filter (fun e -> Relset.mem e.l.rel s && Relset.mem e.r.rel s) t.edges

let rel_alias t i = t.rels.(i).alias

let all_rels t = Relset.full (n_rels t)

let validate catalog t =
  let check_colref what { rel; col } =
    if rel < 0 || rel >= n_rels t then
      Error (Printf.sprintf "%s: relation index %d out of range" what rel)
    else
      match Catalog.table catalog t.rels.(rel).table with
      | None -> Error (Printf.sprintf "%s: unknown table %s" what t.rels.(rel).table)
      | Some tbl ->
        if col < 0 || col >= Schema.arity (Table.schema tbl) then
          Error
            (Printf.sprintf "%s: column %d out of range for %s" what col
               t.rels.(rel).table)
        else Ok tbl
  in
  let ( let* ) = Result.bind in
  let rec check_preds = function
    | [] -> Ok ()
    | { target; p = _ } :: rest ->
      let* _ = check_colref "predicate" target in
      check_preds rest
  in
  let rec check_edges = function
    | [] -> Ok ()
    | { l; r } :: rest ->
      let* tl = check_colref "join edge" l in
      let* tr = check_colref "join edge" r in
      let ty cr tbl = (Schema.column (Table.schema tbl) cr.col).Schema.ty in
      if ty l tl <> Value.Ty_int || ty r tr <> Value.Ty_int then
        Error "join edge: join columns must be integer-typed"
      else check_edges rest
  in
  let rec check_aggs = function
    | [] -> Ok ()
    | Count_star :: rest -> check_aggs rest
    | (Count_col cr | Min_col cr | Max_col cr) :: rest ->
      let* _ = check_colref "aggregate" cr in
      check_aggs rest
    | Sum_col cr :: rest ->
      let* tbl = check_colref "aggregate" cr in
      if (Schema.column (Table.schema tbl) cr.col).Schema.ty <> Value.Ty_int
      then Error "SUM requires an integer column"
      else check_aggs rest
  in
  let duplicate_alias =
    let seen = Hashtbl.create 8 in
    Array.fold_left
      (fun acc r ->
        match acc with
        | Some _ -> acc
        | None ->
          if Hashtbl.mem seen r.alias then Some r.alias
          else begin Hashtbl.add seen r.alias (); None end)
      None t.rels
  in
  match duplicate_alias with
  | Some a -> Error ("duplicate alias " ^ a)
  | None ->
    let* () = check_preds t.preds in
    let* () = check_edges t.edges in
    check_aggs t.select
