type op = Eq | Ne | Lt | Le | Gt | Ge

type like_shape =
  | Prefix of string
  | Suffix of string
  | Contains of string

type t =
  | Cmp of op * Value.t
  | Between of int * int
  | In_list of Value.t list
  | Like of like_shape
  | Is_null
  | Is_not_null

let cmp_holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let string_contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else begin
    let rec scan i =
      if i + nl > hl then false
      else if String.sub hay i nl = needle then true
      else scan (i + 1)
    in
    scan 0
  end

let like_holds shape s =
  match shape with
  | Prefix p ->
    String.length s >= String.length p
    && String.sub s 0 (String.length p) = p
  | Suffix p ->
    let sl = String.length s and pl = String.length p in
    sl >= pl && String.sub s (sl - pl) pl = p
  | Contains p -> string_contains ~needle:p s

let eval t cell =
  match t, cell with
  | Is_null, Value.Null -> true
  | Is_null, _ -> false
  | Is_not_null, Value.Null -> false
  | Is_not_null, _ -> true
  | _, Value.Null -> false
  | Cmp (op, v), cell -> cmp_holds op (Value.compare cell v)
  | Between (lo, hi), Value.Int i -> i >= lo && i <= hi
  | Between _, Value.Str _ -> false
  | In_list vs, cell -> List.exists (Value.equal cell) vs
  | Like shape, Value.Str s -> like_holds shape s
  | Like _, Value.Int _ -> false

let eval_int t cell =
  if cell = Column.null_int then (match t with Is_null -> true | _ -> false)
  else
    match t with
    | Is_null -> false
    | Is_not_null -> true
    | Cmp (op, Value.Int v) -> cmp_holds op (Int.compare cell v)
    | Cmp (_, (Value.Null | Value.Str _)) -> false
    | Between (lo, hi) -> cell >= lo && cell <= hi
    | In_list vs -> List.exists (Value.equal (Value.Int cell)) vs
    | Like _ -> false

let eval_str t cell =
  match t with
  | Is_null -> false
  | Is_not_null -> true
  | Cmp (op, Value.Str v) -> cmp_holds op (String.compare cell v)
  | Cmp (_, (Value.Null | Value.Int _)) -> false
  | Between _ -> false
  | In_list vs -> List.exists (Value.equal (Value.Str cell)) vs
  | Like shape -> like_holds shape cell

let op_to_sql = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let to_sql ~col t =
  match t with
  | Cmp (op, v) -> Printf.sprintf "%s %s %s" col (op_to_sql op) (Value.to_string v)
  | Between (lo, hi) -> Printf.sprintf "%s BETWEEN %d AND %d" col lo hi
  | In_list vs ->
    Printf.sprintf "%s IN (%s)" col
      (String.concat ", " (List.map Value.to_string vs))
  | Like (Prefix p) -> Printf.sprintf "%s LIKE '%s%%'" col p
  | Like (Suffix p) -> Printf.sprintf "%s LIKE '%%%s'" col p
  | Like (Contains p) -> Printf.sprintf "%s LIKE '%%%s%%'" col p
  | Is_null -> col ^ " IS NULL"
  | Is_not_null -> col ^ " IS NOT NULL"

let pp ~col fmt t = Format.pp_print_string fmt (to_sql ~col t)
