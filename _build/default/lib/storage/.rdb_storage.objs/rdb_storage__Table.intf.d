lib/storage/table.mli: Column Format Schema Value
