lib/storage/column.mli: Value
