lib/storage/hash_index.ml: Array Column Hashtbl Option Table
