lib/storage/column.ml: Array List Value
