lib/storage/catalog.mli: Hash_index Table
