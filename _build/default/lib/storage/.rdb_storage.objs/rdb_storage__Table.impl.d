lib/storage/table.ml: Array Column Format List Schema
