lib/storage/catalog.ml: Hash_index Hashtbl Int List String Table
