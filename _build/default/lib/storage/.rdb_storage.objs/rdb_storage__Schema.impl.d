lib/storage/schema.ml: Array Format Hashtbl String Value
