lib/storage/hash_index.mli: Table
