lib/storage/value.ml: Format Int String
