type t =
  | Null
  | Int of int
  | Str of string

type ty = Ty_int | Ty_str

let ty_of = function
  | Null -> None
  | Int _ -> Some Ty_int
  | Str _ -> Some Ty_str

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1
  | Str x, Str y -> String.compare x y

let equal a b = compare a b = 0

let is_null = function Null -> true | Int _ | Str _ -> false

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Str s -> "'" ^ s ^ "'"

let pp fmt v = Format.pp_print_string fmt (to_string v)

let ty_to_string = function Ty_int -> "int" | Ty_str -> "text"
