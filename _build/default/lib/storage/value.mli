(** Scalar values. The engine is typed: a column holds either integers or
    strings. Join keys are always integers (surrogate ids), as in the
    IMDB/JOB schema. *)

type t =
  | Null
  | Int of int
  | Str of string

type ty = Ty_int | Ty_str

val ty_of : t -> ty option
(** [None] for [Null]. *)

val compare : t -> t -> int
(** Total order with [Null] lowest, integers before strings. *)

val equal : t -> t -> bool

val is_null : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val ty_to_string : ty -> string
