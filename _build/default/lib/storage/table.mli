(** In-memory columnar tables. Rows are addressed by dense row ids
    [0 .. nrows-1]; intermediate results elsewhere in the engine are vectors
    of row ids into base tables. *)

type t

val create : name:string -> schema:Schema.t -> Column.t array -> t
(** Columns must match the schema arity/types and share a length. *)

val name : t -> string
val schema : t -> Schema.t
val nrows : t -> int
val column : t -> int -> Column.t

val value : t -> row:int -> col:int -> Value.t

val int_cell : t -> row:int -> col:int -> int
(** Raw integer cell of an int column (NULL is {!Column.null_int}). *)

val row : t -> int -> Value.t array

val of_rows : name:string -> schema:Schema.t -> Value.t array list -> t
(** Build from row-major values, e.g. when materializing a temp table. *)

val pp_brief : Format.formatter -> t -> unit
