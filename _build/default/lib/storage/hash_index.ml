type t = {
  table : Table.t;
  col : int;
  buckets : (int, int array) Hashtbl.t;
}

let empty_rows : int array = [||]

(* Two passes: count per key, then fill fixed-size arrays. Avoids list
   cells for the multi-million-row fact tables. *)
let build table ~col =
  let column = Table.column table col in
  let n = Table.nrows table in
  let counts = Hashtbl.create 1024 in
  for row = 0 to n - 1 do
    let key = Column.get_int column row in
    if key <> Column.null_int then
      match Hashtbl.find_opt counts key with
      | Some c -> Hashtbl.replace counts key (c + 1)
      | None -> Hashtbl.add counts key 1
  done;
  let buckets = Hashtbl.create (Hashtbl.length counts) in
  Hashtbl.iter (fun key c -> Hashtbl.add buckets key (Array.make c (-1))) counts;
  let fill = Hashtbl.create (Hashtbl.length counts) in
  for row = 0 to n - 1 do
    let key = Column.get_int column row in
    if key <> Column.null_int then begin
      let pos = Option.value ~default:0 (Hashtbl.find_opt fill key) in
      (Hashtbl.find buckets key).(pos) <- row;
      Hashtbl.replace fill key (pos + 1)
    end
  done;
  { table; col; buckets }

let table t = t.table
let col t = t.col

let lookup t key =
  match Hashtbl.find_opt t.buckets key with
  | Some rows -> rows
  | None -> empty_rows

let count t key = Array.length (lookup t key)

let n_keys t = Hashtbl.length t.buckets
