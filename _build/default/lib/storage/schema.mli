(** Relation schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

val make : column list -> t
(** Column names must be distinct; raises [Invalid_argument] otherwise. *)

val arity : t -> int
val columns : t -> column array
val column : t -> int -> column

val find : t -> string -> int option
(** Position of a column by name. *)

val find_exn : t -> string -> int
(** Like {!find} but raises [Not_found]. *)

val pp : Format.formatter -> t -> unit
