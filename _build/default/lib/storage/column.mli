(** Physical column storage. Integer columns use [-min_int] as the NULL
    sentinel internally; accessors expose {!Value.t}. *)

type t =
  | Ints of int array
  | Strs of string array

val null_int : int
(** Sentinel representing NULL in integer columns. *)

val length : t -> int
val ty : t -> Value.ty

val get : t -> int -> Value.t

val get_int : t -> int -> int
(** Raw integer cell (may be {!null_int}); raises [Invalid_argument] on a
    string column. *)

val get_str : t -> int -> string
(** Raises [Invalid_argument] on an integer column. *)

val of_values : Value.ty -> Value.t list -> t
(** Build a column of the given type; values must match the type or be
    [Null] (strings use [""] to encode NULL, which the engine treats as a
    normal value — string columns in this system are never nullable). *)
