(** Hash index over an integer column of a base table, mapping key values to
    the row ids holding them. This is the engine's analog of the foreign-key
    indexes the paper adds to make access-path selection challenging. *)

type t

val build : Table.t -> col:int -> t
(** Index the given integer column. NULL cells are not indexed. *)

val table : t -> Table.t
val col : t -> int

val lookup : t -> int -> int array
(** Row ids whose cell equals the key; [||] when absent. The returned array
    must not be mutated. *)

val count : t -> int -> int
(** Number of matching rows, without materializing them. *)

val n_keys : t -> int
(** Number of distinct keys present. *)
