type t =
  | Ints of int array
  | Strs of string array

let null_int = min_int

let length = function
  | Ints a -> Array.length a
  | Strs a -> Array.length a

let ty = function Ints _ -> Value.Ty_int | Strs _ -> Value.Ty_str

let get t i =
  match t with
  | Ints a -> if a.(i) = null_int then Value.Null else Value.Int a.(i)
  | Strs a -> Value.Str a.(i)

let get_int t i =
  match t with
  | Ints a -> a.(i)
  | Strs _ -> invalid_arg "Column.get_int: string column"

let get_str t i =
  match t with
  | Strs a -> a.(i)
  | Ints _ -> invalid_arg "Column.get_str: int column"

let of_values ty values =
  match ty with
  | Value.Ty_int ->
    let conv = function
      | Value.Int i -> i
      | Value.Null -> null_int
      | Value.Str _ -> invalid_arg "Column.of_values: string in int column"
    in
    Ints (Array.of_list (List.map conv values))
  | Value.Ty_str ->
    let conv = function
      | Value.Str s -> s
      | Value.Null -> ""
      | Value.Int _ -> invalid_arg "Column.of_values: int in string column"
    in
    Strs (Array.of_list (List.map conv values))
