type t = {
  name : string;
  schema : Schema.t;
  cols : Column.t array;
  nrows : int;
}

let create ~name ~schema cols =
  let arity = Schema.arity schema in
  if Array.length cols <> arity then
    invalid_arg "Table.create: column count does not match schema";
  let nrows = if arity = 0 then 0 else Column.length cols.(0) in
  Array.iteri
    (fun i c ->
      if Column.length c <> nrows then
        invalid_arg "Table.create: ragged columns";
      if Column.ty c <> (Schema.column schema i).Schema.ty then
        invalid_arg "Table.create: column type mismatch")
    cols;
  { name; schema; cols; nrows }

let name t = t.name
let schema t = t.schema
let nrows t = t.nrows
let column t i = t.cols.(i)

let value t ~row ~col = Column.get t.cols.(col) row
let int_cell t ~row ~col = Column.get_int t.cols.(col) row

let row t i = Array.init (Array.length t.cols) (fun c -> Column.get t.cols.(c) i)

let of_rows ~name ~schema rows =
  let arity = Schema.arity schema in
  let cols =
    Array.init arity (fun c ->
        let ty = (Schema.column schema c).Schema.ty in
        Column.of_values ty (List.map (fun r -> r.(c)) rows))
  in
  create ~name ~schema cols

let pp_brief fmt t =
  Format.fprintf fmt "%s%a [%d rows]" t.name Schema.pp t.schema t.nrows
