type column = { name : string; ty : Value.ty }

type t = { cols : column array; by_name : (string, int) Hashtbl.t }

let make cols =
  let arr = Array.of_list cols in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add by_name c.name i)
    arr;
  { cols = arr; by_name }

let arity t = Array.length t.cols
let columns t = t.cols
let column t i = t.cols.(i)
let find t name = Hashtbl.find_opt t.by_name name
let find_exn t name =
  match find t name with Some i -> i | None -> raise Not_found

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun c -> c.name ^ " " ^ Value.ty_to_string c.ty)
             t.cols)))
