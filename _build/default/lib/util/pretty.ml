let table ~headers rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun m r -> Int.max m (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun m row -> match List.nth_opt row i with
        | Some cell -> Int.max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    let cells =
      List.mapi
        (fun i w ->
          let cell = Option.value ~default:"" (List.nth_opt row i) in
          cell ^ String.make (w - String.length cell) ' ')
        widths
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|"
  in
  String.concat "\n" (render_row headers :: rule :: List.map render_row rows)

let series ~title points =
  let max_v = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 points in
  let label_w =
    List.fold_left (fun m (l, _) -> Int.max m (String.length l)) 0 points
  in
  let bar v =
    if max_v <= 0.0 then ""
    else String.make (int_of_float (v /. max_v *. 40.0)) '#'
  in
  let line (label, v) =
    Printf.sprintf "  %-*s %12.2f  %s" label_w label v (bar v)
  in
  String.concat "\n" (title :: List.map line points)

let heading s =
  let rule = String.make (String.length s + 4) '=' in
  Printf.sprintf "%s\n= %s =\n%s" rule s rule

let ms v =
  if v >= 1000.0 then Printf.sprintf "%.2fs" (v /. 1000.0)
  else Printf.sprintf "%.2fms" v
