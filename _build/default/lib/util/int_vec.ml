type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 16) () = { data = Array.make (Int.max 1 capacity) 0; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (cap * 2) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  assert (i >= 0 && i < t.len);
  t.data.(i)

let set t i v =
  assert (i >= 0 && i < t.len);
  t.data.(i) <- v

let clear t = t.len <- 0

let unsafe_data t = t.data

let to_array t = Array.sub t.data 0 t.len
