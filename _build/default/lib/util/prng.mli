(** Deterministic pseudo-random number generator (SplitMix64).

    Every random choice in the system flows through a [Prng.t] so that data
    generation, workloads and tests are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing the current state. *)

val split : t -> t
(** [split t] derives a statistically independent child stream and advances
    [t]. Use to give sub-generators to independent components. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
