(** Growable array of ints; the workhorse buffer for materialized row ids
    and projected join tuples. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val set : t -> int -> int -> unit
val clear : t -> unit

val unsafe_data : t -> int array
(** The backing store; only indexes [< length] are meaningful. *)

val to_array : t -> int array
(** A fresh, exactly-sized copy. *)
