(** ASCII rendering of the tables and series that the experiment harness
    reports, in the same shape as the paper's tables and figures. *)

val table : headers:string list -> string list list -> string
(** Render rows as an aligned ASCII table with a header rule. *)

val series : title:string -> (string * float) list -> string
(** Render a named series of (label, value) points, one per line, with a
    proportional bar so figure shapes are visible in a terminal. *)

val heading : string -> string
(** A separator heading used between experiment sections. *)

val ms : float -> string
(** Format a duration given in milliseconds with a readable unit. *)
