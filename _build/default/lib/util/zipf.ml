type t = { n : int; cum : float array }

let create ~n ~s =
  assert (n > 0 && s >= 0.0);
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for k = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (k + 1) ** s));
    cum.(k) <- !total
  done;
  let z = !total in
  for k = 0 to n - 1 do
    cum.(k) <- cum.(k) /. z
  done;
  cum.(n - 1) <- 1.0;
  { n; cum }

let n t = t.n

(* Binary search for the first rank whose cumulative mass covers [u]. *)
let sample t prng =
  let u = Prng.float prng 1.0 in
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let cdf t k =
  assert (k >= 0 && k < t.n);
  t.cum.(k)

let pmf t k =
  assert (k >= 0 && k < t.n);
  if k = 0 then t.cum.(0) else t.cum.(k) -. t.cum.(k - 1)
