let q_error ~est ~actual =
  let est = Float.max est 1.0 and actual = Float.max actual 1.0 in
  Float.max (est /. actual) (actual /. est)

let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> 0.0
  | xs ->
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stat_utils.percentile: empty list"
  | _ ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Int.max 0 (Int.min (n - 1) (rank - 1)) in
    arr.(idx)

let clamp ~lo ~hi x = Float.max lo (Float.min hi x)
