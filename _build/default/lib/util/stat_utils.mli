(** Small numeric helpers shared by the estimator, the re-optimization
    trigger and the experiment reports. *)

val q_error : est:float -> actual:float -> float
(** The Q-error of Moerkotte et al. (paper reference [36]):
    [max (est/actual) (actual/est)], with both sides clamped to at least 1
    row so that empty results do not produce infinities. Always [>= 1.0]. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geometric_mean : float list -> float
(** Geometric mean; 0 for the empty list. Requires positive elements. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on the sorted
    list. Raises [Invalid_argument] on the empty list. *)

val sum : float list -> float

val clamp : lo:float -> hi:float -> float -> float
