type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  assert (bound > 0);
  (* Shift by 2 so the value fits in OCaml's 63-bit int without touching
     its sign bit. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
