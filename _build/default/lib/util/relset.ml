type t = int

let empty = 0
let is_empty s = s = 0

let singleton i =
  assert (i >= 0 && i < 62);
  1 lsl i

let add i s = s lor (singleton i)
let remove i s = s land lnot (singleton i)
let mem i s = s land (singleton i) <> 0
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

let subset a b = a land b = a
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let hash (s : t) = Hashtbl.hash s

let min_elt s =
  if s = 0 then invalid_arg "Relset.min_elt: empty set";
  (* Count trailing zeros via the isolated lowest bit. *)
  let low = s land (-s) in
  let rec go bit i = if bit = low then i else go (bit lsl 1) (i + 1) in
  go 1 0

let of_list l = List.fold_left (fun s i -> add i s) empty l

let iter f s =
  let rec go s =
    if s <> 0 then begin
      let low = s land (-s) in
      let rec idx bit i = if bit = low then i else idx (bit lsl 1) (i + 1) in
      f (idx 1 0);
      go (s land (s - 1))
    end
  in
  go s

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let full n =
  assert (n >= 0 && n < 62);
  (1 lsl n) - 1

let below i =
  assert (i >= 0 && i < 62);
  (1 lsl i) - 1

(* Standard sub-mask enumeration: visits every non-empty submask of [s]. *)
let iter_subsets s f =
  if s <> 0 then begin
    let sub = ref s in
    let continue = ref true in
    while !continue do
      f !sub;
      sub := (!sub - 1) land s;
      if !sub = 0 then continue := false
    done
  end

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (to_list s)))
