(** Sets of relation indexes, represented as bitsets in a native [int].

    Queries in the Join Order Benchmark have at most 17 relations; we
    support up to 62. Relation subsets are the currency of the optimizer:
    dynamic-programming tables, cardinality estimates and the
    re-optimization trigger are all keyed by [Relset.t]. *)

type t = private int

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val cardinal : t -> int
val subset : t -> t -> bool
(** [subset a b] is true when [a ⊆ b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val min_elt : t -> int
(** Smallest member. Raises [Invalid_argument] on the empty set. *)

val of_list : int list -> t
val to_list : t -> int list
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val full : int -> t
(** [full n] is [{0, .., n-1}]. *)

val below : int -> t
(** [below i] is [{0, .., i-1}]: the "forbidden" prefix used by the DPccp
    enumeration to avoid emitting a subgraph twice. *)

val iter_subsets : t -> (t -> unit) -> unit
(** Enumerate every non-empty subset of the given set, in an unspecified
    order. *)

val pp : Format.formatter -> t -> unit
