(** Zipfian distribution sampler.

    Models the skew the paper identifies as a primary source of cardinality
    estimation error (Section IV-C): a few values account for most of the
    mass, e.g. 40 stocks out of 4000 carrying 50% of NYSE volume. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] is a Zipf distribution over ranks [0 .. n-1] with
    exponent [s] (larger [s] = more skew). Requires [n > 0] and [s >= 0.0].
    Probability of rank [k] is proportional to [1 / (k+1)^s]. *)

val n : t -> int

val sample : t -> Prng.t -> int
(** Draw a rank in [\[0, n)]. Rank 0 is the most frequent. *)

val pmf : t -> int -> float
(** Probability of a given rank. *)

val cdf : t -> int -> float
(** Cumulative probability of ranks [0..k]. *)
