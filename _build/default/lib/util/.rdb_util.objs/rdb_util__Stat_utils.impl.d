lib/util/stat_utils.ml: Array Float Int List
