lib/util/relset.mli: Format
