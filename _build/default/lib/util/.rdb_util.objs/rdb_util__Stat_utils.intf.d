lib/util/stat_utils.mli:
