lib/util/pretty.ml: Float Int List Option Printf String
