lib/util/relset.ml: Format Hashtbl List Stdlib String
