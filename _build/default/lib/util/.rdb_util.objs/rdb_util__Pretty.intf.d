lib/util/pretty.mli:
