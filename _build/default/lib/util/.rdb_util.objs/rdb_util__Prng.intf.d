lib/util/prng.mli:
