lib/harness/experiments.mli: Runner
