lib/harness/runner.mli: Rdb_core Rdb_query
