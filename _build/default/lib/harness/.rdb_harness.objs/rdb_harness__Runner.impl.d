lib/harness/runner.ml: Hashtbl List Printf Rdb_card Rdb_core Rdb_exec Rdb_imdb Rdb_plan Rdb_query String
