module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Predicate = Rdb_query.Predicate
module Executor = Rdb_exec.Executor

type t = (string, float) Hashtbl.t

let create () : t = Hashtbl.create 256

(* Alias-independent rendering of one relation: table name plus its sorted
   predicates over positional column names. *)
let rel_signature (q : Query.t) rel =
  let preds =
    Query.preds_of_cols q rel
    |> List.map (fun (col, p) ->
           Predicate.to_sql ~col:(Printf.sprintf "c%d" col) p)
    |> List.sort String.compare
  in
  Printf.sprintf "%s[%s]" q.Query.rels.(rel).Query.table
    (String.concat ";" preds)

let signature (q : Query.t) s =
  let members =
    Relset.to_list s |> List.map (rel_signature q) |> List.sort String.compare
  in
  let edges =
    Query.edges_within q s
    |> List.map (fun { Query.l; r } ->
           let side (cr : Query.colref) =
             Printf.sprintf "%s.c%d" (rel_signature q cr.Query.rel) cr.Query.col
           in
           let a = side l and b = side r in
           if String.compare a b <= 0 then a ^ "=" ^ b else b ^ "=" ^ a)
    |> List.sort String.compare
  in
  String.concat "|" members ^ "||" ^ String.concat "|" edges

let observe_card t q s card =
  Hashtbl.replace t (signature q s) (float_of_int card)

let observe t q (result : Executor.result) =
  List.iter
    (fun (obs : Executor.node_obs) ->
      observe_card t q obs.Executor.obs_set obs.Executor.obs_actual)
    result.Executor.observations

let lookup t q s = Hashtbl.find_opt t (signature q s)

let overrides_for t q =
  let graph = Join_graph.make q in
  let overrides = Hashtbl.create 32 in
  List.iter
    (fun s ->
      match lookup t q s with
      | Some card -> Hashtbl.replace overrides s card
      | None -> ())
    (Join_graph.connected_subsets graph);
  overrides

let size t = Hashtbl.length t
