(** The re-optimization trigger: fire when a join's true cardinality
    deviates from the estimate by at least a Q-error threshold (the paper
    re-optimizes when the factor-[n] condition of §V-A holds; threshold 32
    is its sweet spot). *)

type t = {
  threshold : float;      (** minimum Q-error that triggers, >= 1 *)
  min_actual_rows : int;  (** ignore joins whose true size is below this;
                              0 reproduces the paper exactly *)
}

val create : ?min_actual_rows:int -> float -> t

val fires : t -> est:float -> actual:float -> bool

val q_error : est:float -> actual:float -> float
(** Re-exported {!Rdb_util.Stat_utils.q_error} for convenience. *)
