type t = { threshold : float; min_actual_rows : int }

let create ?(min_actual_rows = 0) threshold =
  if threshold < 1.0 then invalid_arg "Trigger.create: threshold must be >= 1";
  { threshold; min_actual_rows }

let q_error = Rdb_util.Stat_utils.q_error

let fires t ~est ~actual =
  actual >= float_of_int t.min_actual_rows
  && q_error ~est ~actual >= t.threshold
