(** LEO-style execution feedback (paper §IV-E, reference [35]): remember
    the true cardinalities observed while executing plans and reuse them
    when planning future queries whose sub-joins look the same.

    Sub-joins are keyed by a normalized signature — member tables, their
    predicates, and the internal join edges — so the knowledge transfers
    across queries that share structure, not just across repeated
    executions of one query. The paper's warning applies: partially
    corrected estimates can pick worse plans than the original; the [leo]
    experiment quantifies this. *)

module Relset = Rdb_util.Relset
module Query := Rdb_query.Query

type t

val create : unit -> t

val signature : Query.t -> Relset.t -> string
(** The normalized signature of a sub-join; exposed for tests. *)

val observe : t -> Query.t -> Rdb_exec.Executor.result -> unit
(** Record every executed node's true cardinality. *)

val observe_card : t -> Query.t -> Relset.t -> int -> unit
(** Record one sub-join cardinality directly. *)

val lookup : t -> Query.t -> Relset.t -> float option

val overrides_for : t -> Query.t -> (Relset.t, float) Hashtbl.t
(** Everything this store knows about the query's connected sub-joins, in
    the shape {!Rdb_card.Estimator.Overrides} consumes. *)

val size : t -> int
(** Number of remembered sub-join cardinalities. *)
