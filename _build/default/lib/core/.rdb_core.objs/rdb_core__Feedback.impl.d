lib/core/feedback.ml: Array Hashtbl List Printf Rdb_exec Rdb_query Rdb_util String
