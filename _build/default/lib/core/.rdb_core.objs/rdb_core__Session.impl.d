lib/core/session.ml: Catalog Printf Rdb_card Rdb_cost Rdb_exec Rdb_plan Rdb_query Rdb_stats Rdb_util
