lib/core/feedback.mli: Hashtbl Rdb_exec Rdb_query Rdb_util
