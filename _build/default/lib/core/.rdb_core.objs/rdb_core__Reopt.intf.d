lib/core/reopt.mli: Rdb_card Rdb_exec Rdb_plan Rdb_query Rdb_util Session Trigger
