lib/core/trigger.mli:
