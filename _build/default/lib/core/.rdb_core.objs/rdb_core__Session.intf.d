lib/core/session.mli: Catalog Rdb_card Rdb_cost Rdb_exec Rdb_plan Rdb_query Rdb_stats Rdb_util
