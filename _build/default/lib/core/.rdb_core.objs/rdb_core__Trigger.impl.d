lib/core/trigger.ml: Rdb_util
