lib/core/reopt.ml: Array Catalog Fun Hashtbl List Printf Rdb_card Rdb_exec Rdb_plan Rdb_query Rdb_stats Rdb_util Schema Session Table Trigger
