type token =
  | Ident of string
  | Int of int
  | Str of string
  | Kw of string
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Star
  | Semi
  | Op of string
  | Eof

exception Lex_error of string

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "AS"; "MIN"; "MAX"; "SUM"; "COUNT";
    "BETWEEN"; "IN"; "LIKE"; "IS"; "NULL"; "NOT" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then emit Eof
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | ',' -> emit Comma; go (i + 1)
      | '.' -> emit Dot; go (i + 1)
      | '(' -> emit Lparen; go (i + 1)
      | ')' -> emit Rparen; go (i + 1)
      | '*' -> emit Star; go (i + 1)
      | ';' -> emit Semi; go (i + 1)
      | '=' -> emit (Op "="); go (i + 1)
      | '<' ->
        if i + 1 < n && input.[i + 1] = '=' then begin emit (Op "<="); go (i + 2) end
        else if i + 1 < n && input.[i + 1] = '>' then begin emit (Op "<>"); go (i + 2) end
        else begin emit (Op "<"); go (i + 1) end
      | '>' ->
        if i + 1 < n && input.[i + 1] = '=' then begin emit (Op ">="); go (i + 2) end
        else begin emit (Op ">"); go (i + 1) end
      | '!' ->
        if i + 1 < n && input.[i + 1] = '=' then begin emit (Op "<>"); go (i + 2) end
        else raise (Lex_error "unexpected '!'")
      | '\'' ->
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error "unterminated string literal")
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            str (j + 1)
          end
        in
        let next = str (i + 1) in
        emit (Str (Buffer.contents buf));
        go next
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1]) ->
        let j = ref (i + 1) in
        while !j < n && is_digit input.[!j] do incr j done;
        emit (Int (int_of_string (String.sub input i (!j - i))));
        go !j
      | c when is_ident_start c ->
        let j = ref (i + 1) in
        while !j < n && is_ident_char input.[!j] do incr j done;
        let word = String.sub input i (!j - i) in
        let upper = String.uppercase_ascii word in
        if List.mem upper keywords then emit (Kw upper)
        else emit (Ident (String.lowercase_ascii word));
        go !j
      | c -> raise (Lex_error (Printf.sprintf "unexpected character %c" c))
  in
  go 0;
  List.rev !tokens
