(** Recursive-descent parser for the SQL subset:

    {v
    SELECT MIN(a.col) [, COUNT( * ) | MIN(...)]...
    FROM table [AS] alias [, ...]
    WHERE cond AND cond AND ... ;
    v}

    where a condition is [a.c <op> literal], [a.c BETWEEN n AND m],
    [a.c IN (lit, ...)], [a.c LIKE 'pattern'], [a.c IS [NOT] NULL] or an
    equi-join [a.c = b.d]. *)

exception Parse_error of string

val parse : string -> Ast.stmt
(** Raises {!Parse_error} or {!Lexer.Lex_error} on malformed input. *)
