(** Tokenizer for the SQL subset. Keywords are case-insensitive;
    identifiers are lower-cased. *)

type token =
  | Ident of string
  | Int of int
  | Str of string
  | Kw of string     (** upper-cased keyword: SELECT, FROM, ... *)
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Star
  | Semi
  | Op of string     (** =, <>, <, <=, >, >= *)
  | Eof

exception Lex_error of string

val tokenize : string -> token list
