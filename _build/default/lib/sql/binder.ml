module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate

let ( let* ) = Result.bind

let like_shape pattern =
  let n = String.length pattern in
  let starts = n > 0 && pattern.[0] = '%' in
  let ends = n > 0 && pattern.[n - 1] = '%' in
  let strip_start s = String.sub s 1 (String.length s - 1) in
  let strip_end s = String.sub s 0 (String.length s - 1) in
  let body =
    match starts, ends with
    | true, true when n >= 2 -> strip_end (strip_start pattern)
    | true, _ -> strip_start pattern
    | _, true -> strip_end pattern
    | false, false -> pattern
  in
  if String.contains body '%' then
    Error (Printf.sprintf "unsupported LIKE pattern %S (interior wildcard)" pattern)
  else
    match starts, ends with
    | true, true -> Ok (Predicate.Like (Predicate.Contains body))
    | true, false -> Ok (Predicate.Like (Predicate.Suffix body))
    | false, true -> Ok (Predicate.Like (Predicate.Prefix body))
    | false, false -> Ok (Predicate.Cmp (Predicate.Eq, Value.Str body))

let value_of_lit = function
  | Ast.L_int i -> Value.Int i
  | Ast.L_str s -> Value.Str s

let bind catalog ~name (stmt : Ast.stmt) =
  let rels =
    Array.of_list
      (List.map
         (fun (t : Ast.table_ref) ->
           { Query.alias = t.Ast.t_alias; table = t.Ast.t_name })
         stmt.Ast.from)
  in
  let alias_idx = Hashtbl.create 16 in
  let* () =
    let rec check i =
      if i >= Array.length rels then Ok ()
      else begin
        let alias = rels.(i).Query.alias in
        if Hashtbl.mem alias_idx alias then Error ("duplicate alias " ^ alias)
        else begin
          Hashtbl.add alias_idx alias i;
          check (i + 1)
        end
      end
    in
    check 0
  in
  let resolve (c : Ast.col) =
    match Hashtbl.find_opt alias_idx c.Ast.c_alias with
    | None -> Error ("unknown alias " ^ c.Ast.c_alias)
    | Some rel ->
      (match Catalog.table catalog rels.(rel).Query.table with
       | None -> Error ("unknown table " ^ rels.(rel).Query.table)
       | Some tbl ->
         (match Schema.find (Table.schema tbl) c.Ast.c_col with
          | None ->
            Error
              (Printf.sprintf "unknown column %s.%s" c.Ast.c_alias c.Ast.c_col)
          | Some col -> Ok { Query.rel; col }))
  in
  let cmp_op = function
    | Ast.Op_eq -> Predicate.Eq
    | Ast.Op_ne -> Predicate.Ne
    | Ast.Op_lt -> Predicate.Lt
    | Ast.Op_le -> Predicate.Le
    | Ast.Op_gt -> Predicate.Gt
    | Ast.Op_ge -> Predicate.Ge
  in
  let rec conds preds edges = function
    | [] -> Ok (List.rev preds, List.rev edges)
    | Ast.C_join (a, b) :: rest ->
      let* l = resolve a in
      let* r = resolve b in
      conds preds ({ Query.l; r } :: edges) rest
    | c :: rest ->
      let target_pred =
        match c with
        | Ast.C_cmp (col, op, lit) ->
          let* cr = resolve col in
          Ok (cr, Predicate.Cmp (cmp_op op, value_of_lit lit))
        | Ast.C_between (col, lo, hi) ->
          let* cr = resolve col in
          Ok (cr, Predicate.Between (lo, hi))
        | Ast.C_in (col, lits) ->
          let* cr = resolve col in
          Ok (cr, Predicate.In_list (List.map value_of_lit lits))
        | Ast.C_like (col, pattern) ->
          let* cr = resolve col in
          let* p = like_shape pattern in
          Ok (cr, p)
        | Ast.C_is_null col ->
          let* cr = resolve col in
          Ok (cr, Predicate.Is_null)
        | Ast.C_is_not_null col ->
          let* cr = resolve col in
          Ok (cr, Predicate.Is_not_null)
        | Ast.C_join _ -> assert false
      in
      let* target, p = target_pred in
      conds ({ Query.target; p } :: preds) edges rest
  in
  let* preds, edges = conds [] [] stmt.Ast.where in
  let rec selects acc = function
    | [] -> Ok (List.rev acc)
    | Ast.S_count_star :: rest -> selects (Query.Count_star :: acc) rest
    | Ast.S_count col :: rest ->
      let* cr = resolve col in
      selects (Query.Count_col cr :: acc) rest
    | Ast.S_min col :: rest ->
      let* cr = resolve col in
      selects (Query.Min_col cr :: acc) rest
    | Ast.S_max col :: rest ->
      let* cr = resolve col in
      selects (Query.Max_col cr :: acc) rest
    | Ast.S_sum col :: rest ->
      let* cr = resolve col in
      selects (Query.Sum_col cr :: acc) rest
  in
  let* select = selects [] stmt.Ast.select in
  let q = { Query.name; rels; preds; edges; select } in
  let* () = Query.validate catalog q in
  Ok q
