(** Semantic analysis: resolve a parsed statement against the catalog into
    the bound query IR. *)

module Query := Rdb_query.Query

val bind : Catalog.t -> name:string -> Ast.stmt -> (Query.t, string) result
(** Resolves aliases and column names, classifies conditions into
    restriction predicates and join edges, translates LIKE patterns, and
    validates the result. *)

val like_shape : string -> (Rdb_query.Predicate.t, string) result
(** Translate a raw LIKE pattern into a predicate: ['%x%'], ['x%'], ['%x']
    or a plain string (equality). Patterns with interior wildcards are
    rejected. *)
