exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let fail msg = raise (Parse_error msg)

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st else fail ("expected " ^ what)

let ident st =
  match peek st with
  | Lexer.Ident name -> advance st; name
  | _ -> fail "expected identifier"

let qualified_col st =
  let alias = ident st in
  expect st Lexer.Dot ".";
  let col = ident st in
  { Ast.c_alias = alias; c_col = col }

let literal st =
  match peek st with
  | Lexer.Int i -> advance st; Ast.L_int i
  | Lexer.Str s -> advance st; Ast.L_str s
  | _ -> fail "expected literal"

let select_item st =
  let col_arg () =
    expect st Lexer.Lparen "(";
    let col = qualified_col st in
    expect st Lexer.Rparen ")";
    col
  in
  match peek st with
  | Lexer.Kw "MIN" -> advance st; Ast.S_min (col_arg ())
  | Lexer.Kw "MAX" -> advance st; Ast.S_max (col_arg ())
  | Lexer.Kw "SUM" -> advance st; Ast.S_sum (col_arg ())
  | Lexer.Kw "COUNT" ->
    advance st;
    expect st Lexer.Lparen "(";
    (match peek st with
     | Lexer.Star ->
       advance st;
       expect st Lexer.Rparen ")";
       Ast.S_count_star
     | _ ->
       let col = qualified_col st in
       expect st Lexer.Rparen ")";
       Ast.S_count col)
  | _ -> fail "expected an aggregate: MIN/MAX/SUM/COUNT"

let table_ref st =
  let name = ident st in
  (match peek st with Lexer.Kw "AS" -> advance st | _ -> ());
  match peek st with
  | Lexer.Ident alias -> advance st; { Ast.t_name = name; t_alias = alias }
  | _ -> { Ast.t_name = name; t_alias = name }

let cmp_op_of = function
  | "=" -> Ast.Op_eq
  | "<>" -> Ast.Op_ne
  | "<" -> Ast.Op_lt
  | "<=" -> Ast.Op_le
  | ">" -> Ast.Op_gt
  | ">=" -> Ast.Op_ge
  | op -> fail ("unknown operator " ^ op)

let int_literal st =
  match peek st with
  | Lexer.Int i -> advance st; i
  | _ -> fail "expected integer literal"

let condition st =
  let col = qualified_col st in
  match peek st with
  | Lexer.Op op ->
    advance st;
    (match peek st with
     | Lexer.Ident _ ->
       if op <> "=" then fail "column-to-column comparison must use =";
       let rhs = qualified_col st in
       Ast.C_join (col, rhs)
     | _ -> Ast.C_cmp (col, cmp_op_of op, literal st))
  | Lexer.Kw "BETWEEN" ->
    advance st;
    let lo = int_literal st in
    expect st (Lexer.Kw "AND") "AND";
    let hi = int_literal st in
    Ast.C_between (col, lo, hi)
  | Lexer.Kw "IN" ->
    advance st;
    expect st Lexer.Lparen "(";
    let rec items acc =
      let l = literal st in
      match peek st with
      | Lexer.Comma -> advance st; items (l :: acc)
      | Lexer.Rparen -> advance st; List.rev (l :: acc)
      | _ -> fail "expected , or ) in IN list"
    in
    Ast.C_in (col, items [])
  | Lexer.Kw "LIKE" ->
    advance st;
    (match peek st with
     | Lexer.Str pattern -> advance st; Ast.C_like (col, pattern)
     | _ -> fail "expected string pattern after LIKE")
  | Lexer.Kw "IS" ->
    advance st;
    (match peek st with
     | Lexer.Kw "NULL" -> advance st; Ast.C_is_null col
     | Lexer.Kw "NOT" ->
       advance st;
       expect st (Lexer.Kw "NULL") "NULL";
       Ast.C_is_not_null col
     | _ -> fail "expected NULL or NOT NULL after IS")
  | _ -> fail "expected condition operator"

let parse input =
  let st = { toks = Lexer.tokenize input } in
  expect st (Lexer.Kw "SELECT") "SELECT";
  let rec select_items acc =
    let item = select_item st in
    match peek st with
    | Lexer.Comma -> advance st; select_items (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  let select = select_items [] in
  expect st (Lexer.Kw "FROM") "FROM";
  let rec tables acc =
    let t = table_ref st in
    match peek st with
    | Lexer.Comma -> advance st; tables (t :: acc)
    | _ -> List.rev (t :: acc)
  in
  let from = tables [] in
  let where =
    match peek st with
    | Lexer.Kw "WHERE" ->
      advance st;
      let rec conds acc =
        let c = condition st in
        match peek st with
        | Lexer.Kw "AND" -> advance st; conds (c :: acc)
        | _ -> List.rev (c :: acc)
      in
      conds []
    | _ -> []
  in
  (match peek st with Lexer.Semi -> advance st | _ -> ());
  (match peek st with
   | Lexer.Eof -> ()
   | _ -> fail "trailing tokens after statement");
  { Ast.select; from; where }
