(** Abstract syntax of the supported SQL subset: the select-project-join
    dialect every JOB query is written in. *)

type col = { c_alias : string; c_col : string }
(** A qualified column reference [alias.column]. *)

type lit =
  | L_int of int
  | L_str of string

type cmp_op = Op_eq | Op_ne | Op_lt | Op_le | Op_gt | Op_ge

type cond =
  | C_cmp of col * cmp_op * lit
  | C_between of col * int * int
  | C_in of col * lit list
  | C_like of col * string  (** raw pattern with [%] wildcards *)
  | C_is_null of col
  | C_is_not_null of col
  | C_join of col * col     (** equi-join *)

type select_item =
  | S_count_star
  | S_count of col
  | S_min of col
  | S_max of col
  | S_sum of col

type table_ref = { t_name : string; t_alias : string }

type stmt = {
  select : select_item list;
  from : table_ref list;
  where : cond list;  (** implicit conjunction *)
}
