(** Render a bound query back to SQL text, with real column names resolved
    through the catalog. Used to display the paper's Figure 6 rewrite: the
    original query versus the [CREATE TEMPORARY TABLE] + final SELECT
    sequence the re-optimizer produces. *)

module Query := Rdb_query.Query

val colref : Catalog.t -> Query.t -> Query.colref -> string
(** [alias.column] text for a column reference. *)

val query : Catalog.t -> Query.t -> string
(** A full SELECT statement. *)

val create_temp_table : Catalog.t -> Query.t -> set:Rdb_util.Relset.t ->
  temp_name:string -> cols:Query.colref list -> string
(** The [CREATE TEMPORARY TABLE name AS SELECT ...] statement materializing
    the given relation subset, projecting the listed columns. *)
