lib/sql/binder.mli: Ast Catalog Rdb_query
