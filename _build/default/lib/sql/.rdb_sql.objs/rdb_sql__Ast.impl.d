lib/sql/ast.ml:
