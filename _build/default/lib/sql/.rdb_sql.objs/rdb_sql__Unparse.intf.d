lib/sql/unparse.mli: Catalog Rdb_query Rdb_util
