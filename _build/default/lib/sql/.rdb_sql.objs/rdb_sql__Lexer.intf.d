lib/sql/lexer.mli:
