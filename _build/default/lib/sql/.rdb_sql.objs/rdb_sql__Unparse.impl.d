lib/sql/unparse.ml: Array Catalog Fun List Printf Rdb_query Rdb_util Schema String Table
