lib/sql/binder.ml: Array Ast Catalog Hashtbl List Printf Rdb_query Result Schema String Table Value
