lib/sql/ast.mli:
