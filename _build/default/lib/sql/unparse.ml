module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate

let col_name catalog (q : Query.t) (cr : Query.colref) =
  let tbl = Catalog.table_exn catalog q.Query.rels.(cr.Query.rel).Query.table in
  (Schema.column (Table.schema tbl) cr.Query.col).Schema.name

let colref catalog q (cr : Query.colref) =
  Printf.sprintf "%s.%s" (Query.rel_alias q cr.Query.rel) (col_name catalog q cr)

let select_list catalog q =
  match q.Query.select with
  | [] -> "*"
  | items ->
    String.concat ", "
      (List.map
         (function
           | Query.Count_star -> "COUNT(*)"
           | Query.Count_col cr ->
             Printf.sprintf "COUNT(%s)" (colref catalog q cr)
           | Query.Min_col cr ->
             Printf.sprintf "MIN(%s)" (colref catalog q cr)
           | Query.Max_col cr ->
             Printf.sprintf "MAX(%s)" (colref catalog q cr)
           | Query.Sum_col cr ->
             Printf.sprintf "SUM(%s)" (colref catalog q cr))
         items)

let from_list ?(only : Relset.t option) (q : Query.t) =
  let included i =
    match only with None -> true | Some s -> Relset.mem i s
  in
  String.concat ",\n  "
    (List.filter_map
       (fun i ->
         if included i then
           let r = q.Query.rels.(i) in
           Some
             (if String.equal r.Query.alias r.Query.table then r.Query.table
              else Printf.sprintf "%s AS %s" r.Query.table r.Query.alias)
         else None)
       (List.init (Query.n_rels q) Fun.id))

let where_clauses ?(only : Relset.t option) catalog (q : Query.t) =
  let included i =
    match only with None -> true | Some s -> Relset.mem i s
  in
  let preds =
    List.filter_map
      (fun ({ Query.target; p } : Query.pred) ->
        if included target.Query.rel then
          Some (Predicate.to_sql ~col:(colref catalog q target) p)
        else None)
      q.Query.preds
  in
  let edges =
    List.filter_map
      (fun { Query.l; r } ->
        if included l.Query.rel && included r.Query.rel then
          Some
            (Printf.sprintf "%s = %s" (colref catalog q l) (colref catalog q r))
        else None)
      q.Query.edges
  in
  preds @ edges

let query catalog q =
  let where = where_clauses catalog q in
  let where_str =
    if where = [] then "" else "\nWHERE " ^ String.concat "\n  AND " where
  in
  Printf.sprintf "SELECT %s\nFROM %s%s;" (select_list catalog q)
    (from_list q) where_str

let create_temp_table catalog q ~set ~temp_name ~cols =
  let projection =
    String.concat ", " (List.map (colref catalog q) cols)
  in
  let where = where_clauses ~only:set catalog q in
  let where_str =
    if where = [] then "" else "\nWHERE " ^ String.concat "\n  AND " where
  in
  Printf.sprintf "CREATE TEMPORARY TABLE %s AS\nSELECT %s\nFROM %s%s;"
    temp_name projection (from_list ~only:set q) where_str
