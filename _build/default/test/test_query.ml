module Relset = Rdb_util.Relset
module Predicate = Rdb_query.Predicate
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Predicate ---- *)

let test_pred_cmp () =
  let p = Predicate.Cmp (Predicate.Lt, Value.Int 5) in
  check Alcotest.bool "4 < 5" true (Predicate.eval p (Value.Int 4));
  check Alcotest.bool "5 < 5" false (Predicate.eval p (Value.Int 5));
  check Alcotest.bool "null never" false (Predicate.eval p Value.Null)

let test_pred_between_in () =
  let between = Predicate.Between (2, 4) in
  check Alcotest.bool "3 in [2,4]" true (Predicate.eval between (Value.Int 3));
  check Alcotest.bool "5 not in" false (Predicate.eval between (Value.Int 5));
  let inlist = Predicate.In_list [ Value.Int 1; Value.Str "x" ] in
  check Alcotest.bool "1 in list" true (Predicate.eval inlist (Value.Int 1));
  check Alcotest.bool "'x' in list" true (Predicate.eval inlist (Value.Str "x"));
  check Alcotest.bool "2 not in list" false (Predicate.eval inlist (Value.Int 2))

let test_pred_like () =
  let contains = Predicate.Like (Predicate.Contains "Tim") in
  check Alcotest.bool "middle" true (Predicate.eval contains (Value.Str "aTim_b"));
  check Alcotest.bool "absent" false (Predicate.eval contains (Value.Str "tom"));
  let prefix = Predicate.Like (Predicate.Prefix "ab") in
  check Alcotest.bool "prefix yes" true (Predicate.eval prefix (Value.Str "abc"));
  check Alcotest.bool "prefix no" false (Predicate.eval prefix (Value.Str "ba"));
  let suffix = Predicate.Like (Predicate.Suffix "yz") in
  check Alcotest.bool "suffix yes" true (Predicate.eval suffix (Value.Str "xyz"));
  check Alcotest.bool "suffix no" false (Predicate.eval suffix (Value.Str "zy"))

let test_pred_null_tests () =
  check Alcotest.bool "is_null on null" true (Predicate.eval Predicate.Is_null Value.Null);
  check Alcotest.bool "is_null on int" false (Predicate.eval Predicate.Is_null (Value.Int 0));
  check Alcotest.bool "is_not_null on str" true
    (Predicate.eval Predicate.Is_not_null (Value.Str ""))

let prop_eval_int_agrees =
  QCheck.Test.make ~name:"eval_int agrees with eval" ~count:500
    QCheck.(pair (int_range (-50) 50) (int_range (-50) 50))
    (fun (cell, bound) ->
      let preds =
        [
          Predicate.Cmp (Predicate.Eq, Value.Int bound);
          Predicate.Cmp (Predicate.Le, Value.Int bound);
          Predicate.Between (bound - 5, bound + 5);
          Predicate.Is_not_null;
        ]
      in
      List.for_all
        (fun p -> Predicate.eval_int p cell = Predicate.eval p (Value.Int cell))
        preds)

let prop_eval_str_agrees =
  QCheck.Test.make ~name:"eval_str agrees with eval" ~count:300
    QCheck.(pair small_string small_string)
    (fun (cell, pat) ->
      let preds =
        [
          Predicate.Cmp (Predicate.Eq, Value.Str pat);
          Predicate.Like (Predicate.Contains pat);
          Predicate.Like (Predicate.Prefix pat);
        ]
      in
      List.for_all
        (fun p -> Predicate.eval_str p cell = Predicate.eval p (Value.Str cell))
        preds)

let test_pred_to_sql () =
  check Alcotest.string "eq" "x = 3"
    (Predicate.to_sql ~col:"x" (Predicate.Cmp (Predicate.Eq, Value.Int 3)));
  check Alcotest.string "like" "x LIKE '%a%'"
    (Predicate.to_sql ~col:"x" (Predicate.Like (Predicate.Contains "a")))

(* ---- Query helpers ---- *)

(* A chain query t0 - t1 - t2 over synthetic tables. *)
let mk_catalog_and_query () =
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.Ty_int };
        { Schema.name = "fk"; ty = Value.Ty_int };
      ]
  in
  let cat = Catalog.create () in
  List.iter
    (fun name ->
      Catalog.add_table cat
        (Table.create ~name ~schema
           [| Column.Ints [| 1; 2 |]; Column.Ints [| 1; 1 |] |]))
    [ "t0"; "t1"; "t2" ];
  let colref rel col = { Query.rel; col } in
  let q =
    {
      Query.name = "chain";
      rels =
        [|
          { Query.alias = "a"; table = "t0" };
          { Query.alias = "b"; table = "t1" };
          { Query.alias = "c"; table = "t2" };
        |];
      preds =
        [ { Query.target = colref 0 0; p = Predicate.Cmp (Predicate.Eq, Value.Int 1) } ];
      edges =
        [
          { Query.l = colref 0 0; r = colref 1 1 };
          { Query.l = colref 1 0; r = colref 2 1 };
        ];
      select = [ Query.Count_star ];
    }
  in
  (cat, q)

let test_query_accessors () =
  let _, q = mk_catalog_and_query () in
  check Alcotest.int "n_rels" 3 (Query.n_rels q);
  check Alcotest.int "preds of 0" 1 (List.length (Query.preds_of q 0));
  check Alcotest.int "preds of 1" 0 (List.length (Query.preds_of q 1));
  check Alcotest.string "alias" "b" (Query.rel_alias q 1)

let test_edges_between () =
  let _, q = mk_catalog_and_query () in
  let s0 = Relset.of_list [ 0 ] and s12 = Relset.of_list [ 1; 2 ] in
  let edges = Query.edges_between q s0 s12 in
  check Alcotest.int "one crossing edge" 1 (List.length edges);
  (match edges with
   | [ { Query.l; r } ] ->
     check Alcotest.int "oriented l in s0" 0 l.Query.rel;
     check Alcotest.int "r in s12" 1 r.Query.rel
   | _ -> Alcotest.fail "unexpected");
  check Alcotest.int "within" 2
    (List.length (Query.edges_within q (Relset.full 3)))

let test_validate_ok () =
  let cat, q = mk_catalog_and_query () in
  check Alcotest.bool "valid" true (Result.is_ok (Query.validate cat q))

let test_validate_errors () =
  let cat, q = mk_catalog_and_query () in
  let bad_col =
    { q with Query.preds = [ { Query.target = { Query.rel = 0; col = 9 }; p = Predicate.Is_null } ] }
  in
  check Alcotest.bool "bad column" true (Result.is_error (Query.validate cat bad_col));
  let dup =
    { q with Query.rels = Array.map (fun r -> { r with Query.alias = "x" }) q.Query.rels }
  in
  check Alcotest.bool "duplicate alias" true (Result.is_error (Query.validate cat dup))

(* ---- Join_graph ---- *)

let test_graph_connectivity () =
  let _, q = mk_catalog_and_query () in
  let g = Join_graph.make q in
  check Alcotest.bool "full connected" true (Join_graph.is_connected g (Relset.full 3));
  check Alcotest.bool "0,2 disconnected" false
    (Join_graph.is_connected g (Relset.of_list [ 0; 2 ]));
  check Alcotest.bool "singleton connected" true
    (Join_graph.is_connected g (Relset.of_list [ 1 ]));
  check Alcotest.bool "empty not connected" false
    (Join_graph.is_connected g Relset.empty)

let test_graph_chain_subsets () =
  let _, q = mk_catalog_and_query () in
  let g = Join_graph.make q in
  (* chain of 3: subsets {0},{1},{2},{01},{12},{012} *)
  check Alcotest.int "6 connected subsets" 6
    (List.length (Join_graph.connected_subsets g));
  let counts = Join_graph.count_by_size g in
  check Alcotest.int "three singletons" 3 counts.(1);
  check Alcotest.int "two pairs" 2 counts.(2);
  check Alcotest.int "one triple" 1 counts.(3)

let test_removable_keeps_connectivity () =
  let _, q = mk_catalog_and_query () in
  let g = Join_graph.make q in
  let s = Relset.full 3 in
  let r = Join_graph.removable g s in
  check Alcotest.bool "still connected" true
    (Join_graph.is_connected g (Relset.remove r s))

(* Random connected graph vs brute-force subset enumeration. *)
let random_graph_query =
  let gen =
    QCheck.Gen.(
      int_range 2 7 >>= fun n ->
      (* random spanning tree + random extra edges *)
      let* extra = list_size (int_range 0 5) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      let* tree_parents =
        flatten_l (List.init (n - 1) (fun i -> int_range 0 i))
      in
      return (n, tree_parents, extra))
  in
  QCheck.make gen

let query_of_graph (n, tree_parents, extra) =
  let colref rel col = { Query.rel; col } in
  let tree_edges =
    List.mapi (fun i parent -> { Query.l = colref (i + 1) 0; r = colref parent 1 }) tree_parents
  in
  let extra_edges =
    List.filter_map
      (fun (a, b) ->
        if a = b then None else Some { Query.l = colref a 0; r = colref b 1 })
      extra
  in
  {
    Query.name = "rand";
    rels =
      Array.init n (fun i ->
          { Query.alias = Printf.sprintf "r%d" i; table = "t" });
    preds = [];
    edges = tree_edges @ extra_edges;
    select = [ Query.Count_star ];
  }

let brute_connected_subsets q =
  let g = Join_graph.make q in
  let n = Query.n_rels q in
  let acc = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let s = Relset.of_list (List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)) in
    if Join_graph.is_connected g s then acc := s :: !acc
  done;
  List.sort Relset.compare !acc

let prop_connected_subsets_complete =
  QCheck.Test.make ~name:"EnumerateCsg = brute force" ~count:100
    random_graph_query (fun spec ->
      let q = query_of_graph spec in
      let g = Join_graph.make q in
      let enumerated =
        List.sort Relset.compare (Join_graph.connected_subsets g)
      in
      enumerated = brute_connected_subsets q)

let prop_removable_connectivity =
  QCheck.Test.make ~name:"removable keeps connectivity" ~count:100
    random_graph_query (fun spec ->
      let q = query_of_graph spec in
      let g = Join_graph.make q in
      List.for_all
        (fun s ->
          Relset.cardinal s = 1
          ||
          let r = Join_graph.removable g s in
          Join_graph.is_connected g (Relset.remove r s))
        (Join_graph.connected_subsets g))

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_to_dot () =
  let _, q = mk_catalog_and_query () in
  let dot = Join_graph.to_dot q in
  check Alcotest.bool "mentions edge" true (contains ~needle:"a -- b" dot);
  check Alcotest.bool "mentions table" true (contains ~needle:"t0" dot)

let () =
  Alcotest.run "rdb_query"
    [
      ( "predicate",
        [
          Alcotest.test_case "cmp" `Quick test_pred_cmp;
          Alcotest.test_case "between/in" `Quick test_pred_between_in;
          Alcotest.test_case "like" `Quick test_pred_like;
          Alcotest.test_case "null tests" `Quick test_pred_null_tests;
          Alcotest.test_case "to_sql" `Quick test_pred_to_sql;
          qtest prop_eval_int_agrees;
          qtest prop_eval_str_agrees;
        ] );
      ( "query",
        [
          Alcotest.test_case "accessors" `Quick test_query_accessors;
          Alcotest.test_case "edges_between" `Quick test_edges_between;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "validate errors" `Quick test_validate_errors;
        ] );
      ( "join_graph",
        [
          Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
          Alcotest.test_case "chain subsets" `Quick test_graph_chain_subsets;
          Alcotest.test_case "removable" `Quick test_removable_keeps_connectivity;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
          qtest prop_connected_subsets_complete;
          qtest prop_removable_connectivity;
        ] );
    ]
