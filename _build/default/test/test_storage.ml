let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Value ---- *)

let arbitrary_value =
  QCheck.oneof
    [
      QCheck.always Value.Null;
      QCheck.map (fun i -> Value.Int i) QCheck.small_int;
      QCheck.map (fun s -> Value.Str s) QCheck.small_string;
    ]

let prop_compare_reflexive =
  QCheck.Test.make ~name:"Value.compare reflexive" ~count:200 arbitrary_value
    (fun v -> Value.compare v v = 0)

let prop_compare_antisymmetric =
  QCheck.Test.make ~name:"Value.compare antisymmetric" ~count:500
    (QCheck.pair arbitrary_value arbitrary_value)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_compare_transitive =
  QCheck.Test.make ~name:"Value.compare transitive" ~count:500
    (QCheck.triple arbitrary_value arbitrary_value arbitrary_value)
    (fun (a, b, c) ->
      if Value.compare a b <= 0 && Value.compare b c <= 0 then
        Value.compare a c <= 0
      else true)

let test_value_null_lowest () =
  check Alcotest.bool "null < int" true (Value.compare Value.Null (Value.Int min_int) < 0);
  check Alcotest.bool "null < str" true (Value.compare Value.Null (Value.Str "") < 0)

let test_value_to_string () =
  check Alcotest.string "int" "42" (Value.to_string (Value.Int 42));
  check Alcotest.string "str" "'x'" (Value.to_string (Value.Str "x"));
  check Alcotest.string "null" "NULL" (Value.to_string Value.Null)

(* ---- Schema ---- *)

let test_schema_lookup () =
  let s =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.Ty_int };
        { Schema.name = "name"; ty = Value.Ty_str };
      ]
  in
  check Alcotest.int "arity" 2 (Schema.arity s);
  check (Alcotest.option Alcotest.int) "find name" (Some 1) (Schema.find s "name");
  check (Alcotest.option Alcotest.int) "find missing" None (Schema.find s "zzz")

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.make: duplicate column id") (fun () ->
      ignore
        (Schema.make
           [
             { Schema.name = "id"; ty = Value.Ty_int };
             { Schema.name = "id"; ty = Value.Ty_int };
           ]))

(* ---- Column ---- *)

let test_column_null_sentinel () =
  let c = Column.Ints [| 1; Column.null_int; 3 |] in
  check Alcotest.bool "null cell" true (Value.is_null (Column.get c 1));
  check Alcotest.bool "non-null" false (Value.is_null (Column.get c 0))

let test_column_of_values_roundtrip () =
  let vals = [ Value.Int 1; Value.Null; Value.Int 7 ] in
  let c = Column.of_values Value.Ty_int vals in
  check Alcotest.int "length" 3 (Column.length c);
  List.iteri
    (fun i v -> check Alcotest.bool "roundtrip" true (Value.equal v (Column.get c i)))
    vals

let test_column_type_mismatch () =
  Alcotest.check_raises "string in int column"
    (Invalid_argument "Column.of_values: string in int column") (fun () ->
      ignore (Column.of_values Value.Ty_int [ Value.Str "x" ]))

(* ---- Table ---- *)

let mk_table () =
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.Ty_int };
        { Schema.name = "label"; ty = Value.Ty_str };
      ]
  in
  Table.create ~name:"t" ~schema
    [|
      Column.Ints [| 1; 2; 3 |];
      Column.Strs [| "a"; "b"; "c" |];
    |]

let test_table_accessors () =
  let t = mk_table () in
  check Alcotest.int "nrows" 3 (Table.nrows t);
  check Alcotest.string "name" "t" (Table.name t);
  check Alcotest.bool "value" true
    (Value.equal (Value.Str "b") (Table.value t ~row:1 ~col:1));
  check Alcotest.int "int_cell" 3 (Table.int_cell t ~row:2 ~col:0)

let test_table_ragged_rejected () =
  let schema =
    Schema.make
      [
        { Schema.name = "a"; ty = Value.Ty_int };
        { Schema.name = "b"; ty = Value.Ty_int };
      ]
  in
  Alcotest.check_raises "ragged" (Invalid_argument "Table.create: ragged columns")
    (fun () ->
      ignore
        (Table.create ~name:"bad" ~schema
           [| Column.Ints [| 1 |]; Column.Ints [| 1; 2 |] |]))

let test_table_of_rows_roundtrip () =
  let t = mk_table () in
  let rows = List.init 3 (Table.row t) in
  let t2 = Table.of_rows ~name:"t2" ~schema:(Table.schema t) rows in
  check Alcotest.int "same rows" (Table.nrows t) (Table.nrows t2);
  for row = 0 to 2 do
    for col = 0 to 1 do
      check Alcotest.bool "cell equal" true
        (Value.equal (Table.value t ~row ~col) (Table.value t2 ~row ~col))
    done
  done

(* ---- Hash_index ---- *)

let prop_hash_index_complete =
  QCheck.Test.make ~name:"index lookup = naive scan" ~count:200
    QCheck.(pair (list (int_range 0 20)) (int_range 0 20))
    (fun (cells, key) ->
      let arr = Array.of_list cells in
      let schema = Schema.make [ { Schema.name = "k"; ty = Value.Ty_int } ] in
      let t = Table.create ~name:"x" ~schema [| Column.Ints arr |] in
      let index = Hash_index.build t ~col:0 in
      let via_index = Array.to_list (Hash_index.lookup index key) |> List.sort Int.compare in
      let naive =
        List.filteri (fun _ _ -> true) (Array.to_list arr)
        |> List.mapi (fun i v -> (i, v))
        |> List.filter_map (fun (i, v) -> if v = key then Some i else None)
      in
      via_index = naive)

let test_hash_index_skips_null () =
  let schema = Schema.make [ { Schema.name = "k"; ty = Value.Ty_int } ] in
  let t =
    Table.create ~name:"x" ~schema
      [| Column.Ints [| 1; Column.null_int; 1 |] |]
  in
  let index = Hash_index.build t ~col:0 in
  check Alcotest.int "nulls not indexed" 0
    (Array.length (Hash_index.lookup index Column.null_int));
  check Alcotest.int "two ones" 2 (Hash_index.count index 1);
  check Alcotest.int "one key" 1 (Hash_index.n_keys index)

(* ---- Catalog ---- *)

let test_catalog_tables_and_indexes () =
  let cat = Catalog.create () in
  let t = mk_table () in
  Catalog.add_table cat t;
  check Alcotest.bool "table found" true (Catalog.table cat "t" <> None);
  Catalog.add_index cat ~table:"t" ~col:0;
  check Alcotest.bool "index found" true (Catalog.index cat ~table:"t" ~col:0 <> None);
  check (Alcotest.list Alcotest.int) "indexes_on" [ 0 ] (Catalog.indexes_on cat "t");
  Catalog.drop_table cat "t";
  check Alcotest.bool "dropped" true (Catalog.table cat "t" = None);
  check Alcotest.bool "index dropped" true (Catalog.index cat ~table:"t" ~col:0 = None)

let test_catalog_unknown () =
  let cat = Catalog.create () in
  Alcotest.check_raises "unknown table"
    (Invalid_argument "Catalog: unknown table nope") (fun () ->
      ignore (Catalog.table_exn cat "nope"))

let () =
  Alcotest.run "rdb_storage"
    [
      ( "value",
        [
          Alcotest.test_case "null lowest" `Quick test_value_null_lowest;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
          qtest prop_compare_reflexive;
          qtest prop_compare_antisymmetric;
          qtest prop_compare_transitive;
        ] );
      ( "schema",
        [
          Alcotest.test_case "lookup" `Quick test_schema_lookup;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate;
        ] );
      ( "column",
        [
          Alcotest.test_case "null sentinel" `Quick test_column_null_sentinel;
          Alcotest.test_case "of_values roundtrip" `Quick test_column_of_values_roundtrip;
          Alcotest.test_case "type mismatch" `Quick test_column_type_mismatch;
        ] );
      ( "table",
        [
          Alcotest.test_case "accessors" `Quick test_table_accessors;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected;
          Alcotest.test_case "of_rows roundtrip" `Quick test_table_of_rows_roundtrip;
        ] );
      ( "hash_index",
        [
          Alcotest.test_case "nulls skipped" `Quick test_hash_index_skips_null;
          qtest prop_hash_index_complete;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "tables and indexes" `Quick test_catalog_tables_and_indexes;
          Alcotest.test_case "unknown table" `Quick test_catalog_unknown;
        ] );
    ]
