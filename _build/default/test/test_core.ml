module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Estimator = Rdb_card.Estimator
module Plan = Rdb_plan.Plan
module Executor = Rdb_exec.Executor
module Session = Rdb_core.Session
module Trigger = Rdb_core.Trigger
module Reopt = Rdb_core.Reopt

let check = Alcotest.check

(* ---- Trigger ---- *)

let test_trigger_fires () =
  let t = Trigger.create 32.0 in
  check Alcotest.bool "33x fires" true (Trigger.fires t ~est:10.0 ~actual:330.0);
  check Alcotest.bool "under fires too" true (Trigger.fires t ~est:330.0 ~actual:10.0);
  check Alcotest.bool "10x does not" false (Trigger.fires t ~est:10.0 ~actual:100.0)

let test_trigger_min_rows () =
  let t = Trigger.create ~min_actual_rows:100 2.0 in
  check Alcotest.bool "small actual ignored" false (Trigger.fires t ~est:1.0 ~actual:50.0);
  check Alcotest.bool "large actual fires" true (Trigger.fires t ~est:1.0 ~actual:500.0)

let test_trigger_validation () =
  Alcotest.check_raises "threshold < 1"
    (Invalid_argument "Trigger.create: threshold must be >= 1") (fun () ->
      ignore (Trigger.create 0.5))

(* ---- Session ---- *)

let make_session scale =
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale () in
  let session = Session.create catalog in
  Session.analyze session;
  (catalog, session)

let test_session_prepare_validates () =
  let catalog, session = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "1a" in
  let bad = { q with Query.rels = [| { Query.alias = "x"; table = "nope" } |] } in
  check Alcotest.bool "prepare rejects" true
    (try ignore (Session.prepare session bad); false
     with Invalid_argument _ -> true)

let test_session_temp_names_fresh () =
  let _, session = make_session 0.01 in
  let a = Session.fresh_temp_name session in
  let b = Session.fresh_temp_name session in
  check Alcotest.bool "distinct" true (a <> b)

(* ---- needed_cols and rewrite ---- *)

let test_needed_cols_covers_crossing_edges () =
  let catalog, _ = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  (* rels: t=0 mk=1 k=2 ci=3 n=4. Materialize {mk, k}. *)
  let set = Relset.of_list [ 1; 2 ] in
  let cols = Reopt.needed_cols q set in
  check Alcotest.bool "non-empty" true (cols <> []);
  List.iter
    (fun (cr : Query.colref) ->
      check Alcotest.bool "inside set" true (Relset.mem cr.Query.rel set))
    cols

let test_needed_cols_dedups_equivalent () =
  let catalog, _ = make_session 0.02 in
  (* In 16b, ci/mk/mc movie_id columns are all equated; materializing
     {ci, mk, k} should expose a single movie column for the t/mc joins,
     not one per relation. *)
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  (* rels order in 16b: t ci n an mk k mc cn *)
  let set = Relset.of_list [ 1; 4; 5 ] in
  let cols = Reopt.needed_cols q set in
  (* ci brings person_id (to n) and person_role... only crossing classes:
     movie (one representative), person. *)
  let movie_cols =
    List.filter (fun (cr : Query.colref) -> cr.Query.rel = 1 || cr.Query.rel = 4) cols
  in
  check Alcotest.bool "at most 2 movie-ish cols + person" true
    (List.length movie_cols <= 2)

let test_rewrite_structure () =
  let catalog, _ = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let set = Relset.of_list [ 1; 2 ] in
  let cols = Reopt.needed_cols q set in
  let q' = Reopt.rewrite q ~set ~temp_name:"temp_x" ~temp_cols:cols in
  check Alcotest.int "two fewer rels, one temp" (Query.n_rels q - 1) (Query.n_rels q');
  check Alcotest.string "temp is last"
    "temp_x" q'.Query.rels.(Query.n_rels q' - 1).Query.alias;
  (* no predicate or edge may reference the removed relations *)
  List.iter
    (fun ({ Query.target; _ } : Query.pred) ->
      check Alcotest.bool "pred rel in range" true (target.Query.rel < Query.n_rels q'))
    q'.Query.preds;
  List.iter
    (fun { Query.l; r } ->
      check Alcotest.bool "edge rels in range" true
        (l.Query.rel < Query.n_rels q' && r.Query.rel < Query.n_rels q'))
    q'.Query.edges

(* ---- the full loop: semantic preservation ---- *)

let reopt_preserves_results name =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog name in
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
  let direct = Session.execute prepared plan in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 32.0) ~mode:Estimator.Default q
  in
  check Alcotest.int (name ^ " row count preserved") direct.Executor.out_rows
    outcome.Reopt.final_exec.Executor.out_rows;
  List.iter2
    (fun a b ->
      check Alcotest.bool (name ^ " aggregate preserved") true (Value.equal a b))
    direct.Executor.aggs outcome.Reopt.final_exec.Executor.aggs

let test_reopt_preserves_results () =
  List.iter reopt_preserves_results [ "1a"; "4b"; "6d"; "8a"; "16b"; "18a" ]

let test_reopt_cleanup () =
  let catalog, session = make_session 0.02 in
  let tables_before = List.map Table.name (Catalog.tables catalog) in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 2.0) ~mode:Estimator.Default q
  in
  check Alcotest.bool "took at least one step" true (outcome.Reopt.steps <> []);
  let tables_after = List.map Table.name (Catalog.tables catalog) in
  check (Alcotest.list Alcotest.string) "temp tables dropped" tables_before
    tables_after

let test_reopt_no_trigger_no_steps () =
  let catalog, session = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "1a" in
  (* With perfect estimates nothing can trip the trigger. *)
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 32.0) ~mode:Estimator.Perfect_all q
  in
  check Alcotest.int "no steps" 0 (List.length outcome.Reopt.steps)

let test_reopt_accounting () =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 4.0) ~mode:Estimator.Default q
  in
  let mat_total =
    List.fold_left (fun acc s -> acc +. s.Reopt.mat_ms) 0.0 outcome.Reopt.steps
  in
  check (Alcotest.float 0.001) "exec = materializations + final"
    (mat_total +. outcome.Reopt.final_exec.Executor.elapsed_ms)
    outcome.Reopt.total_exec_ms;
  check Alcotest.bool "plan time includes replans" true
    (outcome.Reopt.total_plan_ms >= outcome.Reopt.initial_plan_ms)

let test_reopt_max_steps () =
  let catalog, session = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  let outcome =
    Reopt.run ~max_steps:1 session ~trigger:(Trigger.create 2.0)
      ~mode:Estimator.Default q
  in
  check Alcotest.bool "at most one step" true (List.length outcome.Reopt.steps <= 1)

let test_reopt_composes_with_perfect () =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 32.0) ~mode:(Estimator.Perfect 2) q
  in
  (* still correct *)
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Perfect_all in
  let direct = Session.execute prepared plan in
  check Alcotest.int "rows agree" direct.Executor.out_rows
    outcome.Reopt.final_exec.Executor.out_rows


(* ---- Feedback (LEO) ---- *)

let test_feedback_signature_alias_independent () =
  let catalog, _ = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  (* rels: t mk k ci n; renaming aliases must not change signatures *)
  let q2 =
    { q with
      Query.rels =
        Array.map (fun r -> { r with Query.alias = r.Query.alias ^ "_x" }) q.Query.rels }
  in
  let s = Relset.of_list [ 1; 2 ] in
  check Alcotest.string "alias independent"
    (Rdb_core.Feedback.signature q s)
    (Rdb_core.Feedback.signature q2 s)

let test_feedback_signature_distinguishes_preds () =
  let catalog, _ = make_session 0.02 in
  let qa = Rdb_imdb.Job_queries.find catalog "6a" in
  let qd = Rdb_imdb.Job_queries.find catalog "6d" in
  (* the mk-k pair differs by the keyword predicate *)
  let s = Relset.of_list [ 1; 2 ] in
  check Alcotest.bool "different predicates differ" true
    (Rdb_core.Feedback.signature qa s <> Rdb_core.Feedback.signature qd s)

let test_feedback_learns_and_transfers () =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let feedback = Rdb_core.Feedback.create () in
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
  let res = Session.execute prepared plan in
  Rdb_core.Feedback.observe feedback q res;
  check Alcotest.bool "learned something" true (Rdb_core.Feedback.size feedback > 0);
  (* the full set's cardinality is now known exactly *)
  let full = Relset.full (Query.n_rels q) in
  (match Rdb_core.Feedback.lookup feedback q full with
   | Some v ->
     check (Alcotest.float 0.5) "full-set card learned"
       (float_of_int res.Executor.out_rows) v
   | None -> Alcotest.fail "full set not learned");
  let overrides = Rdb_core.Feedback.overrides_for feedback q in
  check Alcotest.bool "overrides non-empty" true (Hashtbl.length overrides > 0)

let () =
  Alcotest.run "rdb_core"
    [
      ( "trigger",
        [
          Alcotest.test_case "fires on q-error" `Quick test_trigger_fires;
          Alcotest.test_case "min rows guard" `Quick test_trigger_min_rows;
          Alcotest.test_case "validation" `Quick test_trigger_validation;
        ] );
      ( "session",
        [
          Alcotest.test_case "prepare validates" `Quick test_session_prepare_validates;
          Alcotest.test_case "fresh temp names" `Quick test_session_temp_names_fresh;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "needed_cols covers crossing edges" `Quick
            test_needed_cols_covers_crossing_edges;
          Alcotest.test_case "needed_cols dedups classes" `Quick
            test_needed_cols_dedups_equivalent;
          Alcotest.test_case "rewrite structure" `Quick test_rewrite_structure;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "alias-independent signatures" `Quick
            test_feedback_signature_alias_independent;
          Alcotest.test_case "predicates distinguish" `Quick
            test_feedback_signature_distinguishes_preds;
          Alcotest.test_case "learns and transfers" `Quick
            test_feedback_learns_and_transfers;
        ] );
      ( "reopt",
        [
          Alcotest.test_case "preserves results" `Slow test_reopt_preserves_results;
          Alcotest.test_case "cleans up temp tables" `Quick test_reopt_cleanup;
          Alcotest.test_case "perfect estimates never trigger" `Quick
            test_reopt_no_trigger_no_steps;
          Alcotest.test_case "time accounting" `Quick test_reopt_accounting;
          Alcotest.test_case "max steps" `Quick test_reopt_max_steps;
          Alcotest.test_case "composes with perfect-(n)" `Quick
            test_reopt_composes_with_perfect;
        ] );
    ]
