module Histogram = Rdb_stats.Histogram
module Mcv = Rdb_stats.Mcv
module Col_stats = Rdb_stats.Col_stats
module Analyze = Rdb_stats.Analyze
module Db_stats = Rdb_stats.Db_stats

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Histogram ---- *)

let test_histogram_empty () =
  check Alcotest.bool "empty input" true (Histogram.build [||] = None)

let test_histogram_bounds_sorted () =
  let values = Array.init 1000 (fun i -> (i * 37) mod 500) in
  match Histogram.build ~buckets:50 values with
  | None -> Alcotest.fail "expected histogram"
  | Some h ->
    let b = Histogram.bounds h in
    for i = 1 to Array.length b - 1 do
      if b.(i) < b.(i - 1) then Alcotest.fail "bounds not sorted"
    done

let prop_fraction_le_bounds =
  QCheck.Test.make ~name:"fraction_le in [0,1]" ~count:300
    QCheck.(pair (array_of_size (Gen.int_range 1 200) (int_range (-1000) 1000)) int)
    (fun (values, v) ->
      match Histogram.build values with
      | None -> true
      | Some h ->
        let f = Histogram.fraction_le h v in
        f >= 0.0 && f <= 1.0)

let prop_fraction_le_monotone =
  QCheck.Test.make ~name:"fraction_le monotone" ~count:300
    QCheck.(
      triple
        (array_of_size (Gen.int_range 1 200) (int_range (-1000) 1000))
        (int_range (-1100) 1100) (int_range 0 50))
    (fun (values, v, delta) ->
      match Histogram.build values with
      | None -> true
      | Some h -> Histogram.fraction_le h v <= Histogram.fraction_le h (v + delta))

let test_histogram_accuracy_uniform () =
  (* On uniform data with full-resolution buckets, range estimates should be
     near exact. *)
  let values = Array.init 10000 (fun i -> i mod 1000) in
  match Histogram.build ~buckets:100 values with
  | None -> Alcotest.fail "expected histogram"
  | Some h ->
    let est = Histogram.fraction_between h ~lo:0 ~hi:499 in
    check Alcotest.bool "within 5% of 0.5" true (Float.abs (est -. 0.5) < 0.05)

let test_histogram_extremes () =
  let values = [| 10; 20; 30 |] in
  match Histogram.build values with
  | None -> Alcotest.fail "expected histogram"
  | Some h ->
    check (Alcotest.float 1e-9) "below min" 0.0 (Histogram.fraction_le h 5);
    check (Alcotest.float 1e-9) "above max" 1.0 (Histogram.fraction_le h 100)

let prop_between_subadditive =
  QCheck.Test.make ~name:"fraction_between splits" ~count:200
    QCheck.(array_of_size (Gen.int_range 2 100) (int_range 0 100))
    (fun values ->
      match Histogram.build values with
      | None -> true
      | Some h ->
        let whole = Histogram.fraction_between h ~lo:0 ~hi:100 in
        let a = Histogram.fraction_between h ~lo:0 ~hi:50 in
        let b = Histogram.fraction_between h ~lo:51 ~hi:100 in
        Float.abs (whole -. (a +. b)) < 1e-6)

(* ---- Mcv ---- *)

let test_mcv_frequencies () =
  let values =
    List.concat
      [
        List.init 50 (fun _ -> Value.Str "hot");
        List.init 30 (fun _ -> Value.Str "warm");
        List.init 20 (fun i -> Value.Str (Printf.sprintf "cold%d" i));
      ]
  in
  let mcv = Mcv.build ~slots:5 values in
  check (Alcotest.float 1e-9) "hot freq" 0.5
    (Option.value ~default:0.0 (Mcv.frequency mcv (Value.Str "hot")));
  check (Alcotest.float 1e-9) "warm freq" 0.3
    (Option.value ~default:0.0 (Mcv.frequency mcv (Value.Str "warm")));
  (* singletons (appearing once) never make the list *)
  check (Alcotest.option (Alcotest.float 1e-9)) "cold absent" None
    (Mcv.frequency mcv (Value.Str "cold3"))

let test_mcv_total_le_one () =
  let values = List.init 100 (fun i -> Value.Int (i mod 7)) in
  let mcv = Mcv.build values in
  check Alcotest.bool "total <= 1" true (Mcv.total_fraction mcv <= 1.0 +. 1e-9)

let test_mcv_ignores_null () =
  let values = [ Value.Null; Value.Null; Value.Int 1; Value.Int 1 ] in
  let mcv = Mcv.build values in
  check (Alcotest.option (Alcotest.float 1e-9)) "null not counted" None
    (Mcv.frequency mcv Value.Null);
  (* frequency of 1 is relative to non-null count *)
  check (Alcotest.float 1e-9) "freq of 1" 1.0
    (Option.value ~default:0.0 (Mcv.frequency mcv (Value.Int 1)))

let prop_mcv_sorted_desc =
  QCheck.Test.make ~name:"mcv entries sorted by frequency" ~count:200
    QCheck.(list (int_range 0 10))
    (fun ints ->
      let mcv = Mcv.build (List.map (fun i -> Value.Int i) ints) in
      let rec sorted = function
        | (_, f1) :: ((_, f2) :: _ as rest) -> f1 >= f2 && sorted rest
        | _ -> true
      in
      sorted (Mcv.entries mcv))

(* ---- Analyze ---- *)

let mk_table () =
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.Ty_int };
        { Schema.name = "grp"; ty = Value.Ty_int };
        { Schema.name = "label"; ty = Value.Ty_str };
      ]
  in
  let n = 1000 in
  Table.create ~name:"facts" ~schema
    [|
      Column.Ints (Array.init n Fun.id);
      Column.Ints (Array.init n (fun i -> if i mod 10 = 0 then Column.null_int else i mod 5));
      Column.Strs (Array.init n (fun i -> if i mod 2 = 0 then "even" else "odd"));
    |]

let test_analyze_id_column () =
  let s = Analyze.column (mk_table ()) 0 in
  check Alcotest.int "rows" 1000 s.Col_stats.row_count;
  check Alcotest.int "distinct" 1000 s.Col_stats.n_distinct;
  check (Alcotest.float 1e-9) "no nulls" 0.0 s.Col_stats.null_frac;
  check (Alcotest.option Alcotest.int) "min" (Some 0) s.Col_stats.min_val;
  check (Alcotest.option Alcotest.int) "max" (Some 999) s.Col_stats.max_val

let test_analyze_group_column () =
  let s = Analyze.column (mk_table ()) 1 in
  check Alcotest.int "distinct groups" 5 s.Col_stats.n_distinct;
  check (Alcotest.float 1e-3) "null fraction" 0.1 s.Col_stats.null_frac

let test_analyze_string_column () =
  let s = Analyze.column (mk_table ()) 2 in
  check Alcotest.int "distinct labels" 2 s.Col_stats.n_distinct;
  check (Alcotest.float 1e-9) "even freq" 0.5
    (Option.value ~default:0.0 (Mcv.frequency s.Col_stats.mcv (Value.Str "even")))

let test_db_stats_roundtrip () =
  let t = mk_table () in
  let cat = Catalog.create () in
  Catalog.add_table cat t;
  let store = Db_stats.create () in
  Analyze.all cat store;
  check Alcotest.bool "stats present" true (Db_stats.get store ~table:"facts" <> None);
  (match Db_stats.col store ~table:"facts" ~col:0 with
   | Some s -> check Alcotest.int "rows via store" 1000 s.Col_stats.row_count
   | None -> Alcotest.fail "missing col stats");
  Db_stats.drop store ~table:"facts";
  check Alcotest.bool "dropped" true (Db_stats.get store ~table:"facts" = None)

let test_trivial_stats () =
  let t = mk_table () in
  let store = Db_stats.create () in
  let s = Db_stats.col_or_trivial store t 0 in
  check Alcotest.int "trivial row count" 1000 s.Col_stats.row_count


(* ---- Group_stats + Cords ---- *)

let correlated_table () =
  let n = 5000 in
  let a = Array.init n (fun i -> i mod 10) in
  let b = Array.map (fun v -> v / 2) a in  (* functional dependency a -> b *)
  Table.create ~name:"corr"
    ~schema:
      (Schema.make
         [
           { Schema.name = "a"; ty = Value.Ty_int };
           { Schema.name = "b"; ty = Value.Ty_int };
         ])
    [| Column.Ints a; Column.Ints b |]

let independent_table () =
  let n = 5000 in
  Table.create ~name:"indep"
    ~schema:
      (Schema.make
         [
           { Schema.name = "a"; ty = Value.Ty_int };
           { Schema.name = "b"; ty = Value.Ty_int };
         ])
    [| Column.Ints (Array.init n (fun i -> i mod 10));
       Column.Ints (Array.init n (fun i -> (i / 10) mod 7)) |]

let test_group_stats_joint () =
  let t = correlated_table () in
  let g = Rdb_stats.Group_stats.build t 0 1 in
  check Alcotest.int "10 distinct pairs" 10 (Rdb_stats.Group_stats.n_distinct_pairs g);
  (* P(a = 4 and b = 2) = 1/10 exactly *)
  let sel =
    Rdb_stats.Group_stats.joint_selectivity g
      (Value.equal (Value.Int 4))
      (Value.equal (Value.Int 2))
      ~independent:(0.1 *. 0.2)
  in
  check (Alcotest.float 1e-6) "joint exact" 0.1 sel;
  (* contradiction: a = 4 and b = 0 never co-occur *)
  let zero =
    Rdb_stats.Group_stats.joint_selectivity g
      (Value.equal (Value.Int 4))
      (Value.equal (Value.Int 0))
      ~independent:(0.1 *. 0.2)
  in
  check Alcotest.bool "contradiction near zero" true (zero < 0.01)

let test_group_stats_canonical_order () =
  let t = correlated_table () in
  let g = Rdb_stats.Group_stats.build t 1 0 in
  check (Alcotest.pair Alcotest.int Alcotest.int) "normalized" (0, 1)
    (Rdb_stats.Group_stats.cols g)

let test_cords_detects_fd () =
  let s = Rdb_stats.Cords.correlation_strength (correlated_table ()) 0 1 in
  check Alcotest.bool "fd is strong" true (s > 0.5)

let test_cords_independent_weak () =
  let s = Rdb_stats.Cords.correlation_strength (independent_table ()) 0 1 in
  check Alcotest.bool "independent is weak" true (s < 0.05)

let test_cords_discover () =
  let findings = Rdb_stats.Cords.discover ~threshold:0.5 (correlated_table ()) in
  check Alcotest.int "one pair" 1 (List.length findings)

let test_db_stats_groups () =
  let t = correlated_table () in
  let store = Db_stats.create () in
  Db_stats.set_group store ~table:"corr" (Rdb_stats.Group_stats.build t 0 1);
  check Alcotest.bool "lookup (0,1)" true
    (Db_stats.group store ~table:"corr" ~cols:(0, 1) <> None);
  check Alcotest.bool "lookup flipped" true
    (Db_stats.group store ~table:"corr" ~cols:(1, 0) <> None);
  check Alcotest.int "groups_of" 1 (List.length (Db_stats.groups_of store ~table:"corr"));
  Db_stats.drop store ~table:"corr";
  check Alcotest.bool "dropped with table" true
    (Db_stats.group store ~table:"corr" ~cols:(0, 1) = None)

let () =
  Alcotest.run "rdb_stats"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "bounds sorted" `Quick test_histogram_bounds_sorted;
          Alcotest.test_case "uniform accuracy" `Quick test_histogram_accuracy_uniform;
          Alcotest.test_case "extremes" `Quick test_histogram_extremes;
          qtest prop_fraction_le_bounds;
          qtest prop_fraction_le_monotone;
          qtest prop_between_subadditive;
        ] );
      ( "mcv",
        [
          Alcotest.test_case "frequencies" `Quick test_mcv_frequencies;
          Alcotest.test_case "total <= 1" `Quick test_mcv_total_le_one;
          Alcotest.test_case "ignores null" `Quick test_mcv_ignores_null;
          qtest prop_mcv_sorted_desc;
        ] );
      ( "group_stats",
        [
          Alcotest.test_case "joint selectivity" `Quick test_group_stats_joint;
          Alcotest.test_case "canonical order" `Quick test_group_stats_canonical_order;
          Alcotest.test_case "db_stats groups" `Quick test_db_stats_groups;
        ] );
      ( "cords",
        [
          Alcotest.test_case "detects FD" `Quick test_cords_detects_fd;
          Alcotest.test_case "independent weak" `Quick test_cords_independent_weak;
          Alcotest.test_case "discover" `Quick test_cords_discover;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "id column" `Quick test_analyze_id_column;
          Alcotest.test_case "group column" `Quick test_analyze_group_column;
          Alcotest.test_case "string column" `Quick test_analyze_string_column;
          Alcotest.test_case "db stats roundtrip" `Quick test_db_stats_roundtrip;
          Alcotest.test_case "trivial fallback" `Quick test_trivial_stats;
        ] );
    ]
