module Prng = Rdb_util.Prng
module Zipf = Rdb_util.Zipf
module Relset = Rdb_util.Relset
module Int_vec = Rdb_util.Int_vec
module Stat_utils = Rdb_util.Stat_utils
module Pretty = Rdb_util.Pretty

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_prng_split_independent () =
  let root = Prng.create 7 in
  let child = Prng.split root in
  let a = Prng.next_int64 child and b = Prng.next_int64 root in
  check Alcotest.bool "split streams differ" true (a <> b)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int stays in bounds" ~count:1000
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let prng = Prng.create seed in
      let v = Prng.int prng bound in
      v >= 0 && v < bound)

let prop_int_in_range =
  QCheck.Test.make ~name:"Prng.int_in stays in range" ~count:1000
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 1000))
    (fun (seed, lo, extent) ->
      let prng = Prng.create seed in
      let v = Prng.int_in prng lo (lo + extent) in
      v >= lo && v <= lo + extent)

let prop_float_bounds =
  QCheck.Test.make ~name:"Prng.float in [0, bound)" ~count:1000
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let prng = Prng.create seed in
      let v = Prng.float prng bound in
      v >= 0.0 && v < bound)

let test_shuffle_permutation () =
  let prng = Prng.create 99 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle prng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation"
    (Array.init 50 Fun.id) sorted

(* ---- Zipf ---- *)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:100 ~s:1.1 in
  let total = ref 0.0 in
  for k = 0 to 99 do
    total := !total +. Zipf.pmf z k
  done;
  check (Alcotest.float 1e-9) "pmf sums to 1" 1.0 !total

let test_zipf_cdf_monotone () =
  let z = Zipf.create ~n:50 ~s:0.8 in
  for k = 1 to 49 do
    if Zipf.cdf z k < Zipf.cdf z (k - 1) then
      Alcotest.fail "cdf not monotone"
  done

let test_zipf_rank0_most_frequent () =
  let z = Zipf.create ~n:20 ~s:1.0 in
  for k = 1 to 19 do
    if Zipf.pmf z k > Zipf.pmf z 0 then Alcotest.fail "rank 0 not maximal"
  done

let test_zipf_skew_increases_with_s () =
  let flat = Zipf.create ~n:100 ~s:0.1 and steep = Zipf.create ~n:100 ~s:2.0 in
  check Alcotest.bool "steeper s concentrates rank 0" true
    (Zipf.pmf steep 0 > Zipf.pmf flat 0)

let prop_zipf_samples_in_range =
  QCheck.Test.make ~name:"Zipf.sample in [0, n)" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let prng = Prng.create seed in
      let z = Zipf.create ~n ~s:1.2 in
      let v = Zipf.sample z prng in
      v >= 0 && v < n)

let test_zipf_uniform_when_s_zero () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for k = 0 to 9 do
    check (Alcotest.float 1e-9) "uniform pmf" 0.1 (Zipf.pmf z k)
  done

(* ---- Relset ---- *)

let set_of = Relset.of_list

let test_relset_basics () =
  let s = set_of [ 1; 3; 5 ] in
  check Alcotest.int "cardinal" 3 (Relset.cardinal s);
  check Alcotest.bool "mem 3" true (Relset.mem 3 s);
  check Alcotest.bool "not mem 2" false (Relset.mem 2 s);
  check Alcotest.int "min_elt" 1 (Relset.min_elt s);
  check (Alcotest.list Alcotest.int) "to_list sorted" [ 1; 3; 5 ]
    (Relset.to_list s)

let test_relset_ops () =
  let a = set_of [ 0; 1; 2 ] and b = set_of [ 2; 3 ] in
  check (Alcotest.list Alcotest.int) "union" [ 0; 1; 2; 3 ]
    (Relset.to_list (Relset.union a b));
  check (Alcotest.list Alcotest.int) "inter" [ 2 ]
    (Relset.to_list (Relset.inter a b));
  check (Alcotest.list Alcotest.int) "diff" [ 0; 1 ]
    (Relset.to_list (Relset.diff a b))

let test_relset_full_below () =
  check (Alcotest.list Alcotest.int) "full 3" [ 0; 1; 2 ]
    (Relset.to_list (Relset.full 3));
  check (Alcotest.list Alcotest.int) "below 2" [ 0; 1 ]
    (Relset.to_list (Relset.below 2))

let test_relset_subsets_count () =
  let s = set_of [ 0; 2; 4 ] in
  let count = ref 0 in
  Relset.iter_subsets s (fun sub ->
      incr count;
      if not (Relset.subset sub s) then Alcotest.fail "subset escapes");
  check Alcotest.int "2^3 - 1 non-empty subsets" 7 !count

let test_relset_empty_subsets () =
  let count = ref 0 in
  Relset.iter_subsets Relset.empty (fun _ -> incr count);
  check Alcotest.int "no subsets of empty" 0 !count

let small_set =
  QCheck.map
    (fun l -> set_of (List.map (fun i -> abs i mod 20) l))
    QCheck.(small_list small_int)

let prop_union_cardinal =
  QCheck.Test.make ~name:"|a∪b| = |a| + |b| - |a∩b|" ~count:500
    (QCheck.pair small_set small_set)
    (fun (a, b) ->
      Relset.cardinal (Relset.union a b)
      = Relset.cardinal a + Relset.cardinal b
        - Relset.cardinal (Relset.inter a b))

let prop_diff_disjoint =
  QCheck.Test.make ~name:"a∖b disjoint from b" ~count:500
    (QCheck.pair small_set small_set)
    (fun (a, b) -> Relset.is_empty (Relset.inter (Relset.diff a b) b))

let prop_fold_iter_agree =
  QCheck.Test.make ~name:"fold and to_list agree" ~count:500 small_set
    (fun s ->
      Relset.fold (fun _ acc -> acc + 1) s 0 = List.length (Relset.to_list s))

(* ---- Int_vec ---- *)

let test_int_vec_push_get () =
  let v = Int_vec.create ~capacity:2 () in
  for i = 0 to 99 do
    Int_vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Int_vec.length v);
  check Alcotest.int "get 7" 49 (Int_vec.get v 7);
  check Alcotest.int "to_array length" 100 (Array.length (Int_vec.to_array v))

let test_int_vec_clear () =
  let v = Int_vec.create () in
  Int_vec.push v 1;
  Int_vec.clear v;
  check Alcotest.int "cleared" 0 (Int_vec.length v)

(* ---- Stat_utils ---- *)

let test_q_error_symmetric () =
  check (Alcotest.float 1e-9) "over = under"
    (Stat_utils.q_error ~est:10.0 ~actual:100.0)
    (Stat_utils.q_error ~est:100.0 ~actual:10.0)

let test_q_error_floor () =
  check (Alcotest.float 1e-9) "clamps zero actual"
    (Stat_utils.q_error ~est:5.0 ~actual:0.0)
    5.0

let prop_q_error_ge_one =
  QCheck.Test.make ~name:"q_error >= 1" ~count:500
    QCheck.(pair (float_range 0.0 1e6) (float_range 0.0 1e6))
    (fun (est, actual) -> Stat_utils.q_error ~est ~actual >= 1.0)

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check (Alcotest.float 1e-9) "p50" 3.0 (Stat_utils.percentile 50.0 xs);
  check (Alcotest.float 1e-9) "p100" 5.0 (Stat_utils.percentile 100.0 xs)

let test_means () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stat_utils.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "geomean" 2.0
    (Stat_utils.geometric_mean [ 1.0; 2.0; 4.0 ] /. 1.0
     |> fun x -> Float.round (x *. 1e9) /. 1e9)

(* ---- Pretty ---- *)

let test_pretty_table () =
  let s = Pretty.table ~headers:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333" ] ] in
  check Alcotest.bool "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "|")

let test_pretty_ms () =
  check Alcotest.string "ms" "12.00ms" (Pretty.ms 12.0);
  check Alcotest.string "s" "1.50s" (Pretty.ms 1500.0)

let () =
  Alcotest.run "rdb_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
          qtest prop_int_in_bounds;
          qtest prop_int_in_range;
          qtest prop_float_bounds;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "pmf sums to 1" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "cdf monotone" `Quick test_zipf_cdf_monotone;
          Alcotest.test_case "rank 0 most frequent" `Quick test_zipf_rank0_most_frequent;
          Alcotest.test_case "skew grows with s" `Quick test_zipf_skew_increases_with_s;
          Alcotest.test_case "s=0 uniform" `Quick test_zipf_uniform_when_s_zero;
          qtest prop_zipf_samples_in_range;
        ] );
      ( "relset",
        [
          Alcotest.test_case "basics" `Quick test_relset_basics;
          Alcotest.test_case "set ops" `Quick test_relset_ops;
          Alcotest.test_case "full/below" `Quick test_relset_full_below;
          Alcotest.test_case "subset enumeration" `Quick test_relset_subsets_count;
          Alcotest.test_case "empty has no subsets" `Quick test_relset_empty_subsets;
          qtest prop_union_cardinal;
          qtest prop_diff_disjoint;
          qtest prop_fold_iter_agree;
        ] );
      ( "int_vec",
        [
          Alcotest.test_case "push/get/grow" `Quick test_int_vec_push_get;
          Alcotest.test_case "clear" `Quick test_int_vec_clear;
        ] );
      ( "stat_utils",
        [
          Alcotest.test_case "q_error symmetric" `Quick test_q_error_symmetric;
          Alcotest.test_case "q_error floors zeros" `Quick test_q_error_floor;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "means" `Quick test_means;
          qtest prop_q_error_ge_one;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "table" `Quick test_pretty_table;
          Alcotest.test_case "ms" `Quick test_pretty_ms;
        ] );
    ]
