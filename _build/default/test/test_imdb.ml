module Query = Rdb_query.Query
module Imdb_gen = Rdb_imdb.Imdb_gen
module Imdb_schema = Rdb_imdb.Imdb_schema
module Job_queries = Rdb_imdb.Job_queries

let check = Alcotest.check

let test_all_tables_present () =
  let catalog = Imdb_gen.generate ~scale:0.01 () in
  List.iter
    (fun (name, _) ->
      check Alcotest.bool (name ^ " present") true (Catalog.table catalog name <> None))
    Imdb_schema.tables

let test_sizes_scale () =
  let s1 = Imdb_gen.sizes ~scale:1.0 and s2 = Imdb_gen.sizes ~scale:0.5 in
  check Alcotest.int "titles halve" (s1.Imdb_gen.titles / 2) s2.Imdb_gen.titles;
  check Alcotest.int "cast halves" (s1.Imdb_gen.cast_infos / 2) s2.Imdb_gen.cast_infos

let table_fingerprint catalog name =
  let t = Catalog.table_exn catalog name in
  let acc = ref 0 in
  for row = 0 to Int.min 500 (Table.nrows t) - 1 do
    for col = 0 to Schema.arity (Table.schema t) - 1 do
      acc := (!acc * 31) + Hashtbl.hash (Table.value t ~row ~col)
    done
  done;
  (Table.nrows t, !acc)

let test_generator_deterministic () =
  let a = Imdb_gen.generate ~seed:7 ~scale:0.02 () in
  let b = Imdb_gen.generate ~seed:7 ~scale:0.02 () in
  List.iter
    (fun (name, _) ->
      check
        (Alcotest.pair Alcotest.int Alcotest.int)
        (name ^ " identical") (table_fingerprint a name) (table_fingerprint b name))
    Imdb_schema.tables

let test_generator_seed_changes_data () =
  let a = Imdb_gen.generate ~seed:1 ~scale:0.02 () in
  let b = Imdb_gen.generate ~seed:2 ~scale:0.02 () in
  let differs =
    List.exists
      (fun (name, _) -> table_fingerprint a name <> table_fingerprint b name)
      Imdb_schema.tables
  in
  check Alcotest.bool "different seeds differ" true differs

let test_fk_integrity () =
  let catalog = Imdb_gen.generate ~scale:0.02 () in
  let within ~fact ~col ~dim =
    let f = Catalog.table_exn catalog fact in
    let max_id = Table.nrows (Catalog.table_exn catalog dim) in
    let column = Table.column f col in
    for row = 0 to Table.nrows f - 1 do
      let v = Column.get_int column row in
      if v <> Column.null_int && (v < 1 || v > max_id) then
        Alcotest.fail (Printf.sprintf "%s.%d row %d: fk %d out of range" fact col row v)
    done
  in
  within ~fact:"movie_keyword" ~col:1 ~dim:"title";
  within ~fact:"movie_keyword" ~col:2 ~dim:"keyword";
  within ~fact:"cast_info" ~col:1 ~dim:"name";
  within ~fact:"cast_info" ~col:2 ~dim:"title";
  within ~fact:"cast_info" ~col:3 ~dim:"char_name";
  within ~fact:"cast_info" ~col:4 ~dim:"role_type";
  within ~fact:"movie_companies" ~col:1 ~dim:"title";
  within ~fact:"movie_companies" ~col:2 ~dim:"company_name";
  within ~fact:"movie_companies" ~col:3 ~dim:"company_type";
  within ~fact:"movie_info" ~col:1 ~dim:"title";
  within ~fact:"movie_info_idx" ~col:1 ~dim:"title";
  within ~fact:"aka_name" ~col:1 ~dim:"name"

let test_indexes_built () =
  let catalog = Imdb_gen.generate ~scale:0.01 () in
  List.iter
    (fun (name, _) ->
      let schema = Table.schema (Catalog.table_exn catalog name) in
      List.iter
        (fun col_name ->
          let col = Schema.find_exn schema col_name in
          check Alcotest.bool
            (Printf.sprintf "%s.%s indexed" name col_name)
            true
            (Catalog.index catalog ~table:name ~col <> None))
        (Imdb_schema.indexed_columns name))
    Imdb_schema.tables

let test_planted_skew () =
  let catalog = Imdb_gen.generate ~scale:0.1 () in
  let mk = Catalog.table_exn catalog "movie_keyword" in
  let kw_col = Table.column mk 2 in
  let n = Table.nrows mk in
  let count_of key =
    let c = ref 0 in
    for row = 0 to n - 1 do
      if Column.get_int kw_col row = key then incr c
    done;
    !c
  in
  (* keyword id 1 = hottest of group 0; a mid-rank keyword is far rarer *)
  let hot = count_of 1 and cold = count_of 301 in
  check Alcotest.bool
    (Printf.sprintf "hot keyword (%d) >> cold (%d)" hot cold)
    true
    (hot > 20 * Int.max 1 cold)

(* ---- workload ---- *)

let test_113_queries () =
  check Alcotest.int "113 queries" 113 (List.length Job_queries.sql)

let test_distribution_matches_table3 () =
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "Table III distribution"
    [ (4, 3); (5, 20); (6, 2); (7, 16); (8, 21); (9, 14); (10, 7); (11, 10);
      (12, 11); (14, 6); (17, 3) ]
    (Job_queries.distribution ())

let test_all_queries_bind () =
  let catalog = Imdb_gen.generate ~scale:0.01 () in
  let queries = Job_queries.all catalog in
  check Alcotest.int "all bound" 113 (List.length queries);
  List.iter
    (fun q ->
      check Alcotest.bool (q.Query.name ^ " validates") true
        (Result.is_ok (Query.validate catalog q)))
    queries

let test_query_names_unique () =
  let names = List.map fst Job_queries.sql in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_deep_dive_queries_exist () =
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " exists") true (Job_queries.sql_of name <> None))
    [ "6d"; "18a"; "16b"; "25c"; "30a" ]

let test_join_graphs_connected () =
  let catalog = Imdb_gen.generate ~scale:0.01 () in
  List.iter
    (fun q ->
      let g = Rdb_query.Join_graph.make q in
      check Alcotest.bool (q.Query.name ^ " connected") true
        (Rdb_query.Join_graph.is_connected g (Query.all_rels q)))
    (Job_queries.all catalog)

let test_queries_use_tree_oracle () =
  let catalog = Imdb_gen.generate ~scale:0.01 () in
  List.iter
    (fun q ->
      check Alcotest.bool (q.Query.name ^ " tree engine") true
        (Rdb_card.Oracle.uses_tree_engine (Rdb_card.Oracle.create catalog q)))
    (Job_queries.all catalog)

let () =
  Alcotest.run "rdb_imdb"
    [
      ( "generator",
        [
          Alcotest.test_case "all tables present" `Quick test_all_tables_present;
          Alcotest.test_case "sizes scale" `Quick test_sizes_scale;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_generator_seed_changes_data;
          Alcotest.test_case "foreign keys in range" `Quick test_fk_integrity;
          Alcotest.test_case "indexes built" `Quick test_indexes_built;
          Alcotest.test_case "planted keyword skew" `Quick test_planted_skew;
        ] );
      ( "workload",
        [
          Alcotest.test_case "113 queries" `Quick test_113_queries;
          Alcotest.test_case "Table III distribution" `Quick
            test_distribution_matches_table3;
          Alcotest.test_case "all queries bind" `Quick test_all_queries_bind;
          Alcotest.test_case "names unique" `Quick test_query_names_unique;
          Alcotest.test_case "deep-dive analogs exist" `Quick
            test_deep_dive_queries_exist;
          Alcotest.test_case "join graphs connected" `Quick test_join_graphs_connected;
          Alcotest.test_case "tree oracle everywhere" `Quick
            test_queries_use_tree_oracle;
        ] );
    ]
