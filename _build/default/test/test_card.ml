module Relset = Rdb_util.Relset
module Histogram = Rdb_stats.Histogram
module Mcv = Rdb_stats.Mcv
module Col_stats = Rdb_stats.Col_stats
module Analyze = Rdb_stats.Analyze
module Db_stats = Rdb_stats.Db_stats
module Predicate = Rdb_query.Predicate
module Query = Rdb_query.Query
module Join_graph = Rdb_query.Join_graph
module Selectivity = Rdb_card.Selectivity
module Join_sel = Rdb_card.Join_sel
module Oracle = Rdb_card.Oracle
module Estimator = Rdb_card.Estimator
module Estimate_log = Rdb_card.Estimate_log

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- Selectivity ---- *)

let stats_of_ints ints =
  let schema = Schema.make [ { Schema.name = "c"; ty = Value.Ty_int } ] in
  let t = Table.create ~name:"s" ~schema [| Column.Ints (Array.of_list ints) |] in
  Analyze.column t 0

let arbitrary_pred =
  QCheck.oneof
    [
      QCheck.map (fun v -> Predicate.Cmp (Predicate.Eq, Value.Int v)) QCheck.(int_range 0 50);
      QCheck.map (fun v -> Predicate.Cmp (Predicate.Lt, Value.Int v)) QCheck.(int_range 0 50);
      QCheck.map (fun v -> Predicate.Cmp (Predicate.Ge, Value.Int v)) QCheck.(int_range 0 50);
      QCheck.map (fun (a, b) -> Predicate.Between (Int.min a b, Int.max a b))
        QCheck.(pair (int_range 0 50) (int_range 0 50));
      QCheck.always Predicate.Is_null;
      QCheck.always Predicate.Is_not_null;
    ]

let prop_selectivity_in_unit =
  QCheck.Test.make ~name:"selectivity in [0,1]" ~count:500
    QCheck.(pair (list_of_size (Gen.int_range 1 100) (int_range 0 50)) arbitrary_pred)
    (fun (ints, p) ->
      let s = Selectivity.of_pred (stats_of_ints ints) p in
      s >= 0.0 && s <= 1.0)

let test_eq_selectivity_mcv () =
  (* 60% of the column is value 7; the MCV list must catch it. *)
  let ints = List.init 100 (fun i -> if i < 60 then 7 else i) in
  let s = Selectivity.of_pred (stats_of_ints ints) (Predicate.Cmp (Predicate.Eq, Value.Int 7)) in
  check (Alcotest.float 0.01) "hot value" 0.6 s

let test_eq_selectivity_rare () =
  let ints = List.init 1000 (fun i -> i) in
  let s = Selectivity.of_pred (stats_of_ints ints) (Predicate.Cmp (Predicate.Eq, Value.Int 5)) in
  check Alcotest.bool "about 1/1000" true (s > 0.0005 && s < 0.002)

let test_range_selectivity () =
  let ints = List.init 1000 (fun i -> i) in
  let s =
    Selectivity.of_pred (stats_of_ints ints)
      (Predicate.Cmp (Predicate.Lt, Value.Int 500))
  in
  check Alcotest.bool "about half" true (Float.abs (s -. 0.5) < 0.05)

let test_like_selectivity_uses_mcvs () =
  let strs =
    List.concat
      [
        List.init 40 (fun _ -> Value.Str "abc");
        List.init 60 (fun i -> Value.Str (Printf.sprintf "zq%d" i));
      ]
  in
  let stats =
    {
      (Col_stats.trivial ~row_count:100) with
      Col_stats.n_distinct = 61;
      mcv = Mcv.build strs;
    }
  in
  let s =
    Selectivity.of_pred stats (Predicate.Like (Predicate.Prefix "ab"))
  in
  check Alcotest.bool "catches hot mcv" true (s >= 0.4)

let test_independence_product () =
  let ints = List.init 100 Fun.id in
  let st = stats_of_ints ints in
  let p1 = Predicate.Cmp (Predicate.Lt, Value.Int 50) in
  let p2 = Predicate.Cmp (Predicate.Ge, Value.Int 0) in
  let combined = Selectivity.of_preds [ st; st ] [ p1; p2 ] in
  let expected = Selectivity.of_pred st p1 *. Selectivity.of_pred st p2 in
  check (Alcotest.float 1e-9) "product rule" expected combined

(* ---- Join_sel ---- *)

let test_join_sel_uniform_keys () =
  (* Unique keys both sides: selectivity ~ 1/n. *)
  let s1 = stats_of_ints (List.init 1000 Fun.id) in
  let s2 = stats_of_ints (List.init 500 Fun.id) in
  let sel = Join_sel.eq_join s1 s2 in
  check Alcotest.bool "about 1/1000" true (sel > 0.0005 && sel < 0.002)

let prop_join_sel_in_unit =
  QCheck.Test.make ~name:"join selectivity in [0,1]" ~count:200
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 80) (int_range 0 20))
        (list_of_size (Gen.int_range 1 80) (int_range 0 20)))
    (fun (a, b) ->
      let sel = Join_sel.eq_join (stats_of_ints a) (stats_of_ints b) in
      sel >= 0.0 && sel <= 1.0)

let test_join_sel_mcv_matching () =
  (* Both sides share a hot key: MCV matching multiplies the matched
     frequencies (0.5 x 0.3), far above the uniform 1/max(nd) guess --
     PostgreSQL's eqjoinsel_inner behaviour. *)
  let a = List.init 1000 (fun i -> if i < 500 then 1 else i mod 50) in
  let b = List.init 1000 (fun i -> if i < 300 then 1 else i mod 50) in
  let sel = Join_sel.eq_join (stats_of_ints a) (stats_of_ints b) in
  check Alcotest.bool "captures matched hot keys" true (sel > 0.1);
  let uniform = Join_sel.uniform ~nd1:50 ~nd2:50 in
  check Alcotest.bool "mcv-aware > uniform" true (sel > uniform)

(* ---- Oracle: tree engine vs executor, and vs materialization ---- *)

let small_catalog () = Rdb_imdb.Imdb_gen.generate ~scale:0.02 ()

let test_oracle_matches_execution () =
  let catalog = small_catalog () in
  let session = Rdb_core.Session.create catalog in
  Rdb_core.Session.analyze session;
  List.iter
    (fun name ->
      let q = Rdb_imdb.Job_queries.find catalog name in
      let prepared = Rdb_core.Session.prepare session q in
      let plan, _, _ =
        Rdb_core.Session.plan prepared ~mode:Estimator.Default
      in
      let res = Rdb_core.Session.execute prepared plan in
      let oracle = Rdb_core.Session.oracle prepared in
      check Alcotest.int
        (name ^ " full-set card")
        res.Rdb_exec.Executor.out_rows
        (Oracle.true_card oracle (Relset.full (Query.n_rels q))))
    [ "1a"; "2a"; "4b"; "6d"; "8c"; "18a" ]

let test_oracle_node_cards_match_execution () =
  (* Every per-node actual row count observed during execution must equal
     the oracle's prediction for that node's relation set. *)
  let catalog = small_catalog () in
  let session = Rdb_core.Session.create catalog in
  Rdb_core.Session.analyze session;
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  let prepared = Rdb_core.Session.prepare session q in
  let plan, _, _ = Rdb_core.Session.plan prepared ~mode:Estimator.Default in
  let res = Rdb_core.Session.execute prepared plan in
  let oracle = Rdb_core.Session.oracle prepared in
  List.iter
    (fun (obs : Rdb_exec.Executor.node_obs) ->
      check Alcotest.int "node actual = oracle"
        obs.Rdb_exec.Executor.obs_actual
        (Oracle.true_card oracle obs.Rdb_exec.Executor.obs_set))
    res.Rdb_exec.Executor.observations

let test_oracle_tree_engine_used () =
  let catalog = small_catalog () in
  let q = Rdb_imdb.Job_queries.find catalog "33a" in
  let oracle = Oracle.create catalog q in
  check Alcotest.bool "JOB queries use the tree engine" true
    (Oracle.uses_tree_engine oracle)

let test_oracle_fallback_on_cyclic_classes () =
  (* Join on two distinct column pairs -> two classes shared by the same
     relation pair -> cyclic class graph -> materialization engine. *)
  let schema =
    Schema.make
      [
        { Schema.name = "a"; ty = Value.Ty_int };
        { Schema.name = "b"; ty = Value.Ty_int };
      ]
  in
  let catalog = Catalog.create () in
  let mk name cells =
    Catalog.add_table catalog
      (Table.create ~name ~schema
         [|
           Column.Ints (Array.map fst cells);
           Column.Ints (Array.map snd cells);
         |])
  in
  mk "r1" [| (1, 1); (1, 2); (2, 2); (3, 3) |];
  mk "r2" [| (1, 1); (1, 2); (2, 2); (4, 4) |];
  let colref rel col = { Query.rel; col } in
  let q =
    {
      Query.name = "cyclic";
      rels =
        [| { Query.alias = "x"; table = "r1" }; { Query.alias = "y"; table = "r2" } |];
      preds = [];
      edges =
        [
          { Query.l = colref 0 0; r = colref 1 0 };
          { Query.l = colref 0 1; r = colref 1 1 };
        ];
      select = [ Query.Count_star ];
    }
  in
  let oracle = Oracle.create catalog q in
  check Alcotest.bool "fallback engine" false (Oracle.uses_tree_engine oracle);
  (* brute force: pairs with equal (a,b) on both sides *)
  check Alcotest.int "cyclic-class card" 3
    (Oracle.true_card oracle (Relset.full 2))

let test_oracle_rejects_bad_sets () =
  let catalog = small_catalog () in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let oracle = Oracle.create catalog q in
  Alcotest.check_raises "empty" (Invalid_argument "Oracle.true_card: empty set")
    (fun () -> ignore (Oracle.true_card oracle Relset.empty))

let test_oracle_base_rows () =
  let catalog = small_catalog () in
  (* keyword pred on 6d restricts k to exactly one row *)
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let oracle = Oracle.create catalog q in
  (* relation order in 6d: t, mk, k, ci, n *)
  check Alcotest.int "k filtered to one row" 1 (Oracle.base_rows oracle 2)

(* ---- Estimator ---- *)

let with_lab f =
  let catalog = small_catalog () in
  let session = Rdb_core.Session.create catalog in
  Rdb_core.Session.analyze session;
  f catalog session

let test_estimator_perfect_matches_oracle () =
  with_lab (fun catalog session ->
      let q = Rdb_imdb.Job_queries.find catalog "6d" in
      let prepared = Rdb_core.Session.prepare session q in
      let oracle = Rdb_core.Session.oracle prepared in
      Oracle.ensure_up_to oracle 3;
      let est =
        Estimator.create ~mode:(Estimator.Perfect 3) ~catalog
          ~stats:(Rdb_core.Session.stats session) ~oracle q
      in
      let graph = Join_graph.make q in
      List.iter
        (fun s ->
          if Relset.cardinal s <= 3 then
            check (Alcotest.float 0.5) "perfect-3 exact on small sets"
              (float_of_int (Oracle.true_card oracle s))
              (Estimator.card est s))
        (Join_graph.connected_subsets graph))

let test_estimator_default_misestimates_skew () =
  (* Needs enough keywords that the uniformity assumption is badly wrong. *)
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale:0.1 () in
  let session = Rdb_core.Session.create catalog in
  Rdb_core.Session.analyze session;
  (fun catalog session ->
      (* The planted hot keyword must be underestimated by the default
         estimator across the mk-k join: the paper's core phenomenon. *)
      let q = Rdb_imdb.Job_queries.find catalog "6d" in
      let prepared = Rdb_core.Session.prepare session q in
      let oracle = Rdb_core.Session.oracle prepared in
      let est =
        Estimator.create ~mode:Estimator.Default ~catalog
          ~stats:(Rdb_core.Session.stats session) ~oracle q
      in
      (* rels: t=0, mk=1, k=2, ci=3, n=4; {mk,k} is connected. *)
      let s = Relset.of_list [ 1; 2 ] in
      let estimate = Estimator.card est s in
      let actual = float_of_int (Oracle.true_card oracle s) in
      check Alcotest.bool "underestimated by > 10x" true
        (actual /. estimate > 10.0))
    catalog session

let test_estimator_overrides () =
  with_lab (fun catalog session ->
      let q = Rdb_imdb.Job_queries.find catalog "6d" in
      let overrides = Hashtbl.create 4 in
      let s = Relset.of_list [ 1; 2 ] in
      Hashtbl.replace overrides s 12345.0;
      let est =
        Estimator.create ~mode:(Estimator.Overrides overrides) ~catalog
          ~stats:(Rdb_core.Session.stats session) q
      in
      check (Alcotest.float 1e-9) "pinned" 12345.0 (Estimator.card est s))

let test_estimator_memoizes_and_logs () =
  with_lab (fun catalog session ->
      let q = Rdb_imdb.Job_queries.find catalog "6d" in
      let log = Estimate_log.create () in
      let est =
        Estimator.create ~log ~mode:Estimator.Default ~catalog
          ~stats:(Rdb_core.Session.stats session) q
      in
      let s = Relset.of_list [ 0; 1 ] in
      let v1 = Estimator.card est s in
      let v2 = Estimator.card est s in
      check (Alcotest.float 1e-9) "memoized" v1 v2;
      check Alcotest.int "logged once" 1 (Estimate_log.count log ~size:2))

let test_estimator_requires_oracle_for_perfect () =
  with_lab (fun catalog session ->
      let q = Rdb_imdb.Job_queries.find catalog "6d" in
      Alcotest.check_raises "perfect without oracle"
        (Invalid_argument "Estimator.create: perfect modes require an oracle")
        (fun () ->
          ignore
            (Estimator.create ~mode:Estimator.Perfect_all ~catalog
               ~stats:(Rdb_core.Session.stats session) q)))

let prop_estimator_cards_at_least_one =
  QCheck.Test.make ~name:"estimates >= 1 row" ~count:20
    QCheck.(int_range 0 112)
    (fun idx ->
      let catalog = small_catalog () in
      let session = Rdb_core.Session.create catalog in
      Rdb_core.Session.analyze session;
      let q = List.nth (Rdb_imdb.Job_queries.all catalog) idx in
      let est =
        Estimator.create ~mode:Estimator.Default ~catalog
          ~stats:(Rdb_core.Session.stats session) q
      in
      let graph = Join_graph.make q in
      List.for_all
        (fun s -> Estimator.card est s >= 1.0)
        (List.filteri (fun i _ -> i < 50) (Join_graph.connected_subsets graph)))


(* ---- Join_sample ---- *)

let test_join_sample_exact_when_small () =
  (* With a sample size far above every sub-join, sampling is exact. *)
  let catalog = small_catalog () in
  let session = Rdb_core.Session.create catalog in
  Rdb_core.Session.analyze session;
  let q = Rdb_imdb.Job_queries.find catalog "1a" in
  let prepared = Rdb_core.Session.prepare session q in
  let oracle = Rdb_core.Session.oracle prepared in
  let js = Rdb_card.Join_sample.create ~sample_size:1_000_000 catalog q in
  let graph = Join_graph.make q in
  List.iter
    (fun set ->
      check (Alcotest.float 0.5) "sampling exact when uncapped"
        (float_of_int (Oracle.true_card oracle set))
        (Rdb_card.Join_sample.card js set))
    (Join_graph.connected_subsets graph)

let test_join_sample_ballpark_when_capped () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale:0.1 () in
  let session = Rdb_core.Session.create catalog in
  Rdb_core.Session.analyze session;
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let prepared = Rdb_core.Session.prepare session q in
  let oracle = Rdb_core.Session.oracle prepared in
  let js = Rdb_card.Join_sample.create ~sample_size:256 catalog q in
  (* the skew-hit pair {mk, k}: sampling must land within ~4x where the
     default estimator is off by orders of magnitude *)
  let s = Relset.of_list [ 1; 2 ] in
  let actual = float_of_int (Oracle.true_card oracle s) in
  let sampled = Rdb_card.Join_sample.card js s in
  check Alcotest.bool
    (Printf.sprintf "sampled %.0f within 4x of actual %.0f" sampled actual)
    true
    (Rdb_util.Stat_utils.q_error ~est:(Float.max 1.0 sampled) ~actual <= 4.0);
  check Alcotest.bool "probes counted" true (Rdb_card.Join_sample.probes js > 0)

let test_estimator_sampling_mode () =
  let catalog = small_catalog () in
  let session = Rdb_core.Session.create catalog in
  Rdb_core.Session.analyze session;
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let js = Rdb_card.Join_sample.create ~sample_size:512 catalog q in
  let est =
    Estimator.create ~mode:(Estimator.Sampling js) ~catalog
      ~stats:(Rdb_core.Session.stats session) q
  in
  let v = Estimator.card est (Relset.of_list [ 0; 1 ]) in
  check Alcotest.bool "sampling mode produces estimates" true (v >= 1.0)

(* ---- group statistics flow through the estimator ---- *)

let test_estimator_uses_group_stats () =
  let n = 2000 in
  let a = Array.init n (fun i -> i mod 8) in
  let b = Array.map (fun v -> v mod 4) a in
  let catalog = Catalog.create () in
  Catalog.add_table catalog
    (Table.create ~name:"corr"
       ~schema:
         (Schema.make
            [
              { Schema.name = "a"; ty = Value.Ty_int };
              { Schema.name = "b"; ty = Value.Ty_int };
            ])
       [| Column.Ints a; Column.Ints b |]);
  let stats = Db_stats.create () in
  Analyze.all catalog stats;
  let colref rel col = { Query.rel; col } in
  let q =
    {
      Query.name = "g";
      rels = [| { Query.alias = "c"; table = "corr" } |];
      preds =
        [
          { Query.target = colref 0 0; p = Predicate.Cmp (Predicate.Eq, Value.Int 5) };
          { Query.target = colref 0 1; p = Predicate.Cmp (Predicate.Eq, Value.Int 1) };
        ];
      edges = [];
      select = [ Query.Count_star ];
    }
  in
  let card_with stats =
    let est = Estimator.create ~mode:Estimator.Default ~catalog ~stats q in
    Estimator.base_card est 0
  in
  let independent = card_with stats in
  Db_stats.set_group stats ~table:"corr"
    (Rdb_stats.Group_stats.build (Catalog.table_exn catalog "corr") 0 1);
  let grouped = card_with stats in
  (* a=5 implies b=1: true cardinality n/8; independence says n/32 *)
  check Alcotest.bool "independence underestimates" true (independent < 100.0);
  check (Alcotest.float 5.0) "group stats exact" (float_of_int (n / 8)) grouped

(* ---- Estimate_log ---- *)

let test_estimate_log () =
  let log = Estimate_log.create () in
  Estimate_log.record log ~size:2;
  Estimate_log.record log ~size:2;
  Estimate_log.record log ~size:5;
  check Alcotest.int "count 2" 2 (Estimate_log.count log ~size:2);
  check Alcotest.int "total" 3 (Estimate_log.total log);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "counts" [ (2, 2); (5, 1) ] (Estimate_log.counts log);
  let into = Estimate_log.create () in
  Estimate_log.add_into log ~into;
  Estimate_log.add_into log ~into;
  check Alcotest.int "merged" 6 (Estimate_log.total into)

let () =
  Alcotest.run "rdb_card"
    [
      ( "selectivity",
        [
          Alcotest.test_case "eq via mcv" `Quick test_eq_selectivity_mcv;
          Alcotest.test_case "eq rare value" `Quick test_eq_selectivity_rare;
          Alcotest.test_case "range via histogram" `Quick test_range_selectivity;
          Alcotest.test_case "like via mcvs" `Quick test_like_selectivity_uses_mcvs;
          Alcotest.test_case "independence product" `Quick test_independence_product;
          qtest prop_selectivity_in_unit;
        ] );
      ( "join_sel",
        [
          Alcotest.test_case "uniform keys" `Quick test_join_sel_uniform_keys;
          Alcotest.test_case "mcv matching" `Quick test_join_sel_mcv_matching;
          qtest prop_join_sel_in_unit;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "matches execution" `Quick test_oracle_matches_execution;
          Alcotest.test_case "node cards match execution" `Quick
            test_oracle_node_cards_match_execution;
          Alcotest.test_case "tree engine on JOB" `Quick test_oracle_tree_engine_used;
          Alcotest.test_case "fallback on cyclic classes" `Quick
            test_oracle_fallback_on_cyclic_classes;
          Alcotest.test_case "rejects bad sets" `Quick test_oracle_rejects_bad_sets;
          Alcotest.test_case "base rows" `Quick test_oracle_base_rows;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "perfect-(n) = oracle" `Quick
            test_estimator_perfect_matches_oracle;
          Alcotest.test_case "default misses planted skew" `Quick
            test_estimator_default_misestimates_skew;
          Alcotest.test_case "overrides pin estimates" `Quick test_estimator_overrides;
          Alcotest.test_case "memoizes and logs" `Quick test_estimator_memoizes_and_logs;
          Alcotest.test_case "perfect requires oracle" `Quick
            test_estimator_requires_oracle_for_perfect;
          qtest prop_estimator_cards_at_least_one;
        ] );
      ( "join_sample",
        [
          Alcotest.test_case "exact when uncapped" `Quick
            test_join_sample_exact_when_small;
          Alcotest.test_case "ballpark when capped" `Quick
            test_join_sample_ballpark_when_capped;
          Alcotest.test_case "estimator sampling mode" `Quick
            test_estimator_sampling_mode;
          Alcotest.test_case "estimator uses group stats" `Quick
            test_estimator_uses_group_stats;
        ] );
      ( "estimate_log",
        [ Alcotest.test_case "counting" `Quick test_estimate_log ] );
    ]
