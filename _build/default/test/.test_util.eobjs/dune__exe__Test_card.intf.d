test/test_card.mli:
