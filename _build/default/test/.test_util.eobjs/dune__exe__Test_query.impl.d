test/test_query.ml: Alcotest Array Catalog Column Fun List Printf QCheck QCheck_alcotest Rdb_query Rdb_util Result Schema String Table Value
