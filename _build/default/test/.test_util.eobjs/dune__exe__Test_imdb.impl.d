test/test_imdb.ml: Alcotest Catalog Column Hashtbl Int List Printf Rdb_card Rdb_imdb Rdb_query Result Schema String Table
