test/test_harness.ml: Alcotest Lazy List Rdb_harness String
