test/test_core.ml: Alcotest Array Catalog Hashtbl List Rdb_card Rdb_core Rdb_exec Rdb_imdb Rdb_plan Rdb_query Rdb_util Table Value
