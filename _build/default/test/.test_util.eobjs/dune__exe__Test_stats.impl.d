test/test_stats.ml: Alcotest Array Catalog Column Float Fun Gen List Option Printf QCheck QCheck_alcotest Rdb_stats Schema Table Value
