test/test_storage.ml: Alcotest Array Catalog Column Hash_index Int List QCheck QCheck_alcotest Schema Table Value
