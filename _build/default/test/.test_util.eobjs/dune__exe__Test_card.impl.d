test/test_card.ml: Alcotest Array Catalog Column Float Fun Gen Hashtbl Int List Printf QCheck QCheck_alcotest Rdb_card Rdb_core Rdb_exec Rdb_imdb Rdb_query Rdb_stats Rdb_util Schema Table Value
