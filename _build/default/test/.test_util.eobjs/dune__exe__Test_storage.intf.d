test/test_storage.mli:
