test/test_util.ml: Alcotest Array Float Fun Int List QCheck QCheck_alcotest Rdb_util String
