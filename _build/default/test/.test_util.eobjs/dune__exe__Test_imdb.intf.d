test/test_imdb.mli:
