test/test_exec.ml: Alcotest Array Catalog Column List QCheck QCheck_alcotest Rdb_exec Rdb_plan Rdb_query Rdb_util Schema Table Value
