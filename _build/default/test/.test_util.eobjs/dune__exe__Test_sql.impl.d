test/test_sql.ml: Alcotest List Rdb_card Rdb_core Rdb_exec Rdb_imdb Rdb_query Rdb_sql Result Value
