(* The paper's §IV-C Nasdaq example (Tables IV and V): a two-table schema
   where trading volume is Zipf-skewed across companies. Selecting a hot
   symbol through the join fools the uniformity assumption by orders of
   magnitude, while the same selection on the join column itself is
   estimated correctly from the MCV statistics.

   Run with:  dune exec examples/skew_demo.exe *)

module Session = Rdb_core.Session
module Estimator = Rdb_card.Estimator
module Oracle = Rdb_card.Oracle
module Relset = Rdb_util.Relset

let () =
  let prng = Rdb_util.Prng.create 2024 in
  let n_companies = 4000 and n_trades = 400_000 in

  (* companies: APPL and GOOG are the most traded (rank 0 and 1) *)
  let symbols =
    Array.init n_companies (fun i ->
        match i with
        | 0 -> "APPL"
        | 1 -> "GOOG"
        | _ -> Printf.sprintf "S%04d" i)
  in
  let catalog = Catalog.create () in
  Catalog.add_table catalog
    (Table.create ~name:"company"
       ~schema:
         (Schema.make
            [
              { Schema.name = "id"; ty = Value.Ty_int };
              { Schema.name = "symbol"; ty = Value.Ty_str };
              { Schema.name = "company"; ty = Value.Ty_str };
            ])
       [|
         Column.Ints (Array.init n_companies (fun i -> i + 1));
         Column.Strs symbols;
         Column.Strs (Array.map (fun s -> s ^ " Inc.") symbols);
       |]);
  let zipf = Rdb_util.Zipf.create ~n:n_companies ~s:1.1 in
  Catalog.add_table catalog
    (Table.create ~name:"trades"
       ~schema:
         (Schema.make
            [
              { Schema.name = "company_id"; ty = Value.Ty_int };
              { Schema.name = "shares"; ty = Value.Ty_int };
            ])
       [|
         Column.Ints
           (Array.init n_trades (fun _ -> Rdb_util.Zipf.sample zipf prng + 1));
         Column.Ints
           (Array.init n_trades (fun _ -> 10 * (1 + Rdb_util.Prng.int prng 1000)));
       |]);
  Catalog.add_index catalog ~table:"company" ~col:0;
  Catalog.add_index catalog ~table:"trades" ~col:0;

  let session = Session.create catalog in
  Session.analyze session;

  let run description sql =
    let q =
      match Rdb_sql.Binder.bind catalog ~name:"trades" (Rdb_sql.Parser.parse sql) with
      | Ok q -> q
      | Error e -> failwith e
    in
    let prepared = Session.prepare session q in
    let _, _, estimator = Session.plan prepared ~mode:Estimator.Default in
    let est = Rdb_card.Estimator.card estimator (Relset.full 2) in
    let actual = Oracle.true_card (Session.oracle prepared) (Relset.full 2) in
    Printf.printf "%s\n  %s\n  estimated %10.0f rows | actual %10d rows | off by %6.1fx\n\n"
      description sql est actual
      (Float.max (est /. float_of_int (max 1 actual))
         (float_of_int actual /. Float.max 1.0 est))
  in
  print_endline "== skew across a join (paper §IV-C) ==\n";
  run "predicate on the NON-join column (symbol) — uniformity assumption fails:"
    "SELECT COUNT(*) FROM company AS c, trades AS tr \
     WHERE c.symbol = 'APPL' AND c.id = tr.company_id;";
  run "predicate on the JOIN column (id) — MCV statistics save the estimate:"
    "SELECT COUNT(*) FROM company AS c, trades AS tr \
     WHERE c.id = 1 AND c.id = tr.company_id;"
