examples/iterative_demo.mli:
