examples/reopt_demo.ml: Catalog List Option Printf Rdb_card Rdb_core Rdb_exec Rdb_imdb Rdb_plan Rdb_sql Rdb_stats String Value
