examples/join_graphs.ml: List Rdb_imdb Rdb_query
