examples/skew_demo.ml: Array Catalog Column Float Printf Rdb_card Rdb_core Rdb_sql Rdb_util Schema Table Value
