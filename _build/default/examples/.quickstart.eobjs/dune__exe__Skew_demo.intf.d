examples/skew_demo.mli:
