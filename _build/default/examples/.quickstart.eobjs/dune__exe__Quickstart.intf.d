examples/quickstart.mli:
