examples/join_graphs.mli:
