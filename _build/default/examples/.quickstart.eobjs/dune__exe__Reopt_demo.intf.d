examples/reopt_demo.mli:
