(* The paper's §IV-E / Figure 5 experiment on one query: LEO-style
   selective correction of cardinality estimates. Each round pins the
   lowest badly-estimated join (and its whole subtree) to the true
   cardinalities and re-plans. The lesson: execution time is NOT monotone
   in the number of corrections — partially-corrected estimates can pick
   plans worse than the original.

   Run with:  dune exec examples/iterative_demo.exe *)

module Relset = Rdb_util.Relset
module Session = Rdb_core.Session
module Estimator = Rdb_card.Estimator
module Oracle = Rdb_card.Oracle
module Plan = Rdb_plan.Plan
module Optimizer = Rdb_plan.Optimizer
module Executor = Rdb_exec.Executor

let threshold = 32.0

let () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~seed:42 ~scale:0.3 () in
  let session = Session.create catalog in
  Session.analyze session;
  let q = Rdb_imdb.Job_queries.find catalog "30a" in
  let prepared = Session.prepare session q in
  let oracle = Session.oracle prepared in
  Oracle.ensure_up_to oracle (Rdb_query.Query.n_rels q);

  (* perfect baseline *)
  let perfect_plan, _, _ = Session.plan prepared ~mode:Estimator.Perfect_all in
  let perfect = Session.execute prepared perfect_plan in
  Printf.printf "query 30a; perfect-plan execution: %.1fms\n\n"
    perfect.Executor.elapsed_ms;

  let overrides : (Relset.t, float) Hashtbl.t = Hashtbl.create 32 in
  let rec subtree_sets plan acc =
    match plan with
    | Plan.Scan s -> Relset.singleton s.Plan.scan_rel :: acc
    | Plan.Join j ->
      subtree_sets j.Plan.outer
        (subtree_sets j.Plan.inner (Plan.rel_set plan :: acc))
  in
  let rec iterate round =
    if round > 30 then print_endline "stopping after 30 rounds"
    else begin
      let plan, _, _ =
        Session.plan prepared ~mode:(Estimator.Overrides overrides)
      in
      let res = Session.execute ~work_budget:60_000_000 prepared plan in
      Printf.printf "corrections %2d: execution %8.1fms  (%d joins corrected so far)\n"
        round res.Executor.elapsed_ms (Hashtbl.length overrides);
      let offender =
        List.fold_left
          (fun best (j : Plan.join) ->
            let set =
              Relset.union (Plan.rel_set j.Plan.outer) (Plan.rel_set j.Plan.inner)
            in
            let actual = float_of_int (Oracle.true_card oracle set) in
            if Rdb_util.Stat_utils.q_error ~est:j.Plan.join_est ~actual >= threshold
            then
              match best with
              | Some (_, bset) when Relset.cardinal bset <= Relset.cardinal set ->
                best
              | _ -> Some (j, set)
            else best)
          None (Plan.joins_bottom_up plan)
      in
      match offender with
      | None -> print_endline "no join off by 32x anymore; done"
      | Some (j, _) ->
        List.iter
          (fun s ->
            Hashtbl.replace overrides s (float_of_int (Oracle.true_card oracle s)))
          (subtree_sets (Plan.Join j) []);
        iterate (round + 1)
    end
  in
  iterate 0
