(* Emit the join graphs of the deep-dive queries (the paper's Figures 3
   and 4) as GraphViz DOT, ready for `dot -Tpng`.

   Run with:  dune exec examples/join_graphs.exe > graphs.dot *)

let () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale:0.01 () in
  List.iter
    (fun name ->
      let q = Rdb_imdb.Job_queries.find catalog name in
      print_endline ("// " ^ name);
      print_endline (Rdb_query.Join_graph.to_dot q))
    [ "6d"; "18a"; "16b"; "25c"; "30a"; "33a" ]
