(* Mid-query re-optimization, end to end (the paper's Figure 6):

   - plan query 16b with default estimates and show EXPLAIN ANALYZE,
   - run the re-optimization loop at threshold 32,
   - print every CREATE TEMPORARY TABLE the re-optimizer issues and the
     final rewritten SELECT,
   - compare wall-clock execution with and without re-optimization.

   Run with:  dune exec examples/reopt_demo.exe *)

module Session = Rdb_core.Session
module Reopt = Rdb_core.Reopt
module Trigger = Rdb_core.Trigger
module Estimator = Rdb_card.Estimator
module Oracle = Rdb_card.Oracle
module Executor = Rdb_exec.Executor
module Unparse = Rdb_sql.Unparse

let () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~seed:42 ~scale:0.3 () in
  let session = Session.create catalog in
  Session.analyze session;
  let name = "16b" in
  let q = Rdb_imdb.Job_queries.find catalog name in

  print_endline ("-- original query " ^ name ^ " --");
  print_endline (Option.value ~default:"" (Rdb_imdb.Job_queries.sql_of name));

  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
  let oracle = Session.oracle prepared in
  print_endline "\n-- default plan, estimates vs the truth --";
  print_string
    (Rdb_plan.Explain.render
       ~actuals:(fun set -> Some (Oracle.true_card oracle set))
       q plan);
  let direct = Session.execute prepared plan in
  Printf.printf "\ndirect execution: %.1fms\n" direct.Executor.elapsed_ms;

  let outcome =
    Reopt.run ~cleanup:false session ~trigger:(Trigger.create 32.0)
      ~mode:Estimator.Default q
  in
  print_endline "\n-- re-optimization --";
  let rec show q_before = function
    | [] -> ()
    | (step : Reopt.step) :: rest ->
      Printf.printf
        "\nstep: q-error %.0f on {%s}; materialized %d rows in %.1fms; re-planned in %.2fms\n"
        step.Reopt.trigger_q_error
        (String.concat ", " step.Reopt.materialized_aliases)
        step.Reopt.temp_rows step.Reopt.mat_ms step.Reopt.replan_ms;
      print_endline
        (Unparse.create_temp_table catalog q_before
           ~set:step.Reopt.materialized_set ~temp_name:step.Reopt.temp_name
           ~cols:(Reopt.needed_cols q_before step.Reopt.materialized_set));
      show step.Reopt.query_after rest
  in
  show q outcome.Reopt.steps;
  print_endline "\n-- final SELECT --";
  print_endline (Unparse.query catalog outcome.Reopt.final_query);
  Printf.printf
    "\nre-optimized: %d steps, planning %.2fms, execution %.1fms (direct was %.1fms)\n"
    (List.length outcome.Reopt.steps)
    outcome.Reopt.total_plan_ms outcome.Reopt.total_exec_ms
    direct.Executor.elapsed_ms;
  Printf.printf "results identical: %b\n"
    (List.for_all2 Value.equal direct.Executor.aggs
       outcome.Reopt.final_exec.Executor.aggs);
  (* drop the temp tables kept for rendering *)
  List.iter
    (fun (step : Reopt.step) ->
      Catalog.drop_table catalog step.Reopt.temp_name;
      Rdb_stats.Db_stats.drop (Session.stats session) ~table:step.Reopt.temp_name)
    outcome.Reopt.steps
