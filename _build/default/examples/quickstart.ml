(* Quickstart: generate the synthetic IMDB database, run a SQL query
   through the whole stack — parse, bind, optimize, EXPLAIN, execute —
   and compare the optimizer's estimates with the truth.

   Run with:  dune exec examples/quickstart.exe *)

module Session = Rdb_core.Session
module Estimator = Rdb_card.Estimator
module Oracle = Rdb_card.Oracle
module Executor = Rdb_exec.Executor

let () =
  (* 1. A database: 15 tables with planted skew and correlations, plus
     hash indexes on every id/foreign-key column. *)
  let catalog = Rdb_imdb.Imdb_gen.generate ~seed:42 ~scale:0.2 () in
  let session = Session.create catalog in

  (* 2. ANALYZE: equi-depth histograms + most-common-value lists. *)
  Session.analyze session;

  (* 3. Any select-project-join SQL in the supported dialect works. *)
  let sql =
    "SELECT MIN(t.title), COUNT(*)\n\
     FROM title AS t, movie_keyword AS mk, keyword AS k, kind_type AS kt\n\
     WHERE mk.movie_id = t.id AND mk.keyword_id = k.id AND t.kind_id = kt.id\n\
    \  AND k.keyword = 'kw_0' AND kt.kind = 'movie';"
  in
  print_endline "-- query --";
  print_endline sql;
  let query =
    match Rdb_sql.Binder.bind catalog ~name:"quickstart" (Rdb_sql.Parser.parse sql) with
    | Ok q -> q
    | Error msg -> failwith msg
  in

  (* 4. Optimize with the PostgreSQL-style estimator and explain. *)
  let prepared = Session.prepare session query in
  let plan, pstats, _estimator = Session.plan prepared ~mode:Estimator.Default in
  Printf.printf "\n-- plan (%d csg-cmp pairs considered, %.2fms) --\n"
    pstats.Rdb_plan.Optimizer.pairs_considered pstats.Rdb_plan.Optimizer.plan_ms;
  let oracle = Session.oracle prepared in
  let actuals set = Some (Oracle.true_card oracle set) in
  print_string (Rdb_plan.Explain.render ~actuals query plan);

  (* 5. Execute and report. *)
  let result = Session.execute prepared plan in
  Printf.printf "\n-- result (%d rows into aggregates, %.2fms) --\n"
    result.Executor.out_rows result.Executor.elapsed_ms;
  List.iter
    (fun v -> print_endline ("  " ^ Value.to_string v))
    result.Executor.aggs;

  (* 6. The point of the paper: the estimate for the skew-hit join is off
     by orders of magnitude even though every input statistic is fresh. *)
  print_endline "\n-- estimate vs truth per executed node --";
  List.iter
    (fun (o : Executor.node_obs) ->
      Printf.printf "  %-18s est %10.0f   actual %10d\n" o.Executor.obs_label
        o.Executor.obs_est o.Executor.obs_actual)
    result.Executor.observations
