(* The static-analysis passes must catch each corrupted-artifact class with
   the right severity — and stay silent on every clean query and plan the
   pipeline actually produces. *)

module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Estimator = Rdb_card.Estimator
module Plan = Rdb_plan.Plan
module Optimizer = Rdb_plan.Optimizer
module Session = Rdb_core.Session
module Reopt = Rdb_core.Reopt
module Trigger = Rdb_core.Trigger
module Finding = Rdb_analysis.Finding
module Query_lint = Rdb_analysis.Query_lint
module Plan_lint = Rdb_analysis.Plan_lint
module Debug = Rdb_analysis.Debug

let check = Alcotest.check

(* ---- fixtures ---- *)

let small_db () =
  let int name = { Schema.name; ty = Value.Ty_int } in
  let str name = { Schema.name; ty = Value.Ty_str } in
  let cat = Catalog.create () in
  let dim_n = 100 and fact_n = 2000 in
  Catalog.add_table cat
    (Table.create ~name:"dim"
       ~schema:(Schema.make [ int "id"; str "label" ])
       [|
         Column.Ints (Array.init dim_n (fun i -> i + 1));
         Column.Strs (Array.init dim_n (fun i -> Printf.sprintf "label%d" i));
       |]);
  Catalog.add_table cat
    (Table.create ~name:"fact"
       ~schema:(Schema.make [ int "id"; int "dim_id" ])
       [|
         Column.Ints (Array.init fact_n (fun i -> i + 1));
         Column.Ints (Array.init fact_n (fun i -> (i mod dim_n) + 1));
       |]);
  Catalog.add_index cat ~table:"dim" ~col:0;
  Catalog.add_index cat ~table:"fact" ~col:1;
  cat

let bind cat sql =
  match Rdb_sql.Binder.bind cat ~name:"q" (Rdb_sql.Parser.parse sql) with
  | Ok q -> q
  | Error e -> Alcotest.fail e

let join_sql = "SELECT COUNT(*) FROM dim AS d, fact AS f WHERE f.dim_id = d.id"

let plan_with_estimator cat q =
  let stats = Rdb_stats.Db_stats.create () in
  Rdb_stats.Analyze.all cat stats;
  let estimator =
    Estimator.create ~mode:Estimator.Default ~catalog:cat ~stats q
  in
  let plan, _ = Optimizer.plan ~lint:false ~catalog:cat ~estimator q in
  (plan, estimator)

let codes fs = List.sort_uniq compare (List.map (fun f -> f.Finding.code) fs)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let has_error code fs =
  List.exists (fun f -> f.Finding.code = code) (Finding.errors fs)

let has_warning code fs =
  List.exists
    (fun (f : Finding.t) ->
      f.Finding.code = code && f.Finding.severity = Finding.Warning)
    fs

(* A tiny IMDB instance shared by the workload-wide tests. *)
let imdb = lazy (Rdb_imdb.Imdb_gen.generate ~scale:0.02 ())

(* ---- Query_lint: clean inputs ---- *)

let test_job_queries_lint_clean () =
  let catalog = Lazy.force imdb in
  List.iter
    (fun (q : Query.t) ->
      let fs = Query_lint.check ~catalog q in
      check Alcotest.(list string) (q.Query.name ^ " clean") [] (codes fs))
    (Rdb_imdb.Job_queries.all catalog)

(* ---- Query_lint: corrupted queries ---- *)

let test_dangling_alias () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let rels = Array.copy q.Query.rels in
  rels.(1) <- { (rels.(1)) with Query.table = "vanished" };
  let fs = Query_lint.check ~catalog:cat { q with Query.rels } in
  check Alcotest.bool "unknown-table error" true (has_error "unknown-table" fs)

let test_duplicate_alias () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let rels = Array.copy q.Query.rels in
  rels.(1) <- { (rels.(1)) with Query.alias = q.Query.rels.(0).Query.alias };
  let fs = Query_lint.check ~catalog:cat { q with Query.rels } in
  check Alcotest.bool "duplicate-alias error" true
    (has_error "duplicate-alias" fs)

let test_predicate_column_out_of_range () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let bad =
    { Query.target = { Query.rel = 0; col = 99 };
      p = Predicate.Cmp (Predicate.Eq, Value.Int 1) }
  in
  let fs = Query_lint.check ~catalog:cat { q with Query.preds = [ bad ] } in
  check Alcotest.bool "bad-colref error" true (has_error "bad-colref" fs)

let test_predicate_type_mismatch () =
  let cat = small_db () in
  let q = bind cat join_sql in
  (* d.id is an integer column; compare it with a string literal. *)
  let bad =
    { Query.target = { Query.rel = 0; col = 0 };
      p = Predicate.Cmp (Predicate.Eq, Value.Str "oops") }
  in
  let fs = Query_lint.check ~catalog:cat { q with Query.preds = [ bad ] } in
  check Alcotest.bool "predicate-type error" true
    (has_error "predicate-type" fs);
  (* ... and LIKE on the integer column. *)
  let bad_like =
    { Query.target = { Query.rel = 0; col = 0 };
      p = Predicate.Like (Predicate.Prefix "x") }
  in
  let fs =
    Query_lint.check ~catalog:cat { q with Query.preds = [ bad_like ] }
  in
  check Alcotest.bool "LIKE on int error" true (has_error "predicate-type" fs)

let test_disconnected_join_graph_named () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let fs = Query_lint.check ~catalog:cat { q with Query.edges = [] } in
  (match Finding.by_code "disconnected-join-graph" (Finding.errors fs) with
   | [ f ] ->
     check Alcotest.bool "names both components" true
       (contains f.Finding.message ~needle:"{d}"
        && contains f.Finding.message ~needle:"{f}")
   | fs' ->
     Alcotest.failf "expected one disconnected finding, got %d"
       (List.length fs'))

let test_duplicate_and_contradictory_predicates () =
  let cat = small_db () in
  let q =
    bind cat (join_sql ^ " AND d.id = 1 AND d.id = 1")
  in
  let fs = Query_lint.check ~catalog:cat q in
  check Alcotest.bool "duplicate warning" true
    (has_warning "duplicate-predicate" fs);
  check Alcotest.bool "duplicates are not errors" false (Finding.has_errors fs);
  let q = bind cat (join_sql ^ " AND d.id = 1 AND d.id = 2") in
  let fs = Query_lint.check ~catalog:cat q in
  check Alcotest.bool "contradiction warning" true
    (has_warning "contradictory-predicates" fs);
  let q = bind cat (join_sql ^ " AND d.id BETWEEN 5 AND 3") in
  let fs = Query_lint.check ~catalog:cat q in
  check Alcotest.bool "empty range warning" true (has_warning "empty-range" fs);
  let q = bind cat (join_sql ^ " AND d.id BETWEEN 1 AND 4 AND d.id = 9") in
  let fs = Query_lint.check ~catalog:cat q in
  check Alcotest.bool "eq outside between warning" true
    (has_warning "contradictory-predicates" fs)

let test_duplicate_join_edge () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let fs =
    Query_lint.check ~catalog:cat
      { q with Query.edges = q.Query.edges @ q.Query.edges }
  in
  check Alcotest.bool "duplicate edge warning" true
    (has_warning "duplicate-join-edge" fs)

(* ---- Plan_lint: clean plans ---- *)

let test_clean_plan_lints_clean () =
  let cat = small_db () in
  let q = bind cat (join_sql ^ " AND d.id = 7") in
  let plan, estimator = plan_with_estimator cat q in
  let fs = Plan_lint.check ~catalog:cat ~estimator q plan in
  check Alcotest.(list string) "no findings" [] (codes fs)

(* ---- Plan_lint: corrupted plans ---- *)

(* The optimizer's plan for dim ⋈ fact, pulled apart for corruption. *)
let join_fixture () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let plan, estimator = plan_with_estimator cat q in
  match plan with
  | Plan.Join j -> (cat, q, estimator, j)
  | Plan.Scan _ -> Alcotest.fail "expected a join plan"

let test_swapped_subtree_relsets () =
  let cat, q, estimator, j = join_fixture () in
  (* Swap outer and inner without reorienting the edges: every edge now
     references columns on the wrong sides. *)
  let corrupted =
    Plan.Join { j with Plan.outer = j.Plan.inner; inner = j.Plan.outer }
  in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "edge sides error" true
    (has_error "edge-outside-subtree" fs)

let test_dropped_join_edge () =
  let cat, q, estimator, j = join_fixture () in
  let corrupted = Plan.Join { j with Plan.join_edges = [] } in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "missing edge error" true
    (has_error "missing-join-edge" fs)

let test_duplicated_relation_subtree () =
  let cat, q, estimator, j = join_fixture () in
  (* Replace the inner subtree with a copy of the outer: one relation now
     appears twice and the other not at all. *)
  let corrupted = Plan.Join { j with Plan.inner = j.Plan.outer } in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "overlap error" true
    (has_error "overlapping-subtrees" fs);
  check Alcotest.bool "root coverage error" true (has_error "root-relset" fs)

let test_wrong_index_scan () =
  let cat, q, estimator, j = join_fixture () in
  (* fact(col0) has no index, and the query has no f.id = 5 predicate. *)
  let corrupt_scan (node : Plan.t) =
    match node with
    | Plan.Scan s when q.Query.rels.(s.Plan.scan_rel).Query.table = "fact" ->
      Plan.Scan { s with Plan.access = Plan.Index_scan { col = 0; key = 5 } }
    | other -> other
  in
  let corrupted =
    Plan.Join
      { j with
        Plan.outer = corrupt_scan j.Plan.outer;
        inner = corrupt_scan j.Plan.inner }
  in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "no-such-index error" true (has_error "no-such-index" fs);
  check Alcotest.bool "key mismatch error" true
    (has_error "index-key-mismatch" fs)

let test_stale_index_key () =
  let cat = small_db () in
  let q = bind cat (join_sql ^ " AND d.id = 7") in
  let plan, estimator = plan_with_estimator cat q in
  (* The optimizer picks an index scan d.id = 7; corrupt the key to a value
     the query never asked for. *)
  let rec corrupt (node : Plan.t) =
    match node with
    | Plan.Scan ({ Plan.access = Plan.Index_scan is; _ } as s) ->
      Plan.Scan { s with Plan.access = Plan.Index_scan { is with key = 8 } }
    | Plan.Scan _ -> node
    | Plan.Join j ->
      Plan.Join
        { j with Plan.outer = corrupt j.Plan.outer; inner = corrupt j.Plan.inner }
  in
  let fs = Plan_lint.check ~catalog:cat ~estimator q (corrupt plan) in
  check Alcotest.bool "stale key caught" true
    (has_error "index-key-mismatch" fs)

let test_stale_estimate () =
  let cat, q, estimator, j = join_fixture () in
  let corrupted = Plan.Join { j with Plan.join_est = j.Plan.join_est *. 10.0 } in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "stale estimate error" true
    (has_error "stale-estimate" fs);
  (* Without an estimator the freshness check is skipped. *)
  let fs = Plan_lint.check ~catalog:cat q corrupted in
  check Alcotest.bool "skipped without estimator" false
    (has_error "stale-estimate" fs)

let test_corrupted_costs () =
  let cat, q, estimator, j = join_fixture () in
  let fs =
    Plan_lint.check ~catalog:cat ~estimator q
      (Plan.Join { j with Plan.join_cost = Float.nan })
  in
  check Alcotest.bool "nan cost error" true (has_error "cost-not-finite" fs);
  let fs =
    Plan_lint.check ~catalog:cat ~estimator q
      (Plan.Join { j with Plan.join_cost = 0.0 })
  in
  check Alcotest.bool "non-monotone cost error" true
    (has_error "cost-not-monotone" fs)

(* ---- pipeline wiring ---- *)

let test_workload_plans_lint_clean () =
  let catalog = Lazy.force imdb in
  let session = Session.create catalog in
  Session.analyze session;
  List.iter
    (fun name ->
      let q = Rdb_imdb.Job_queries.find catalog name in
      let prepared = Session.prepare session q in
      let plan, _, estimator =
        Session.plan ~lint:true prepared ~mode:Estimator.Default
      in
      let fs = Plan_lint.check ~catalog ~estimator q plan in
      check Alcotest.(list string) (name ^ " plan clean") [] (codes fs))
    [ "1a"; "6d"; "16b"; "18a"; "25c"; "30a" ]

let test_debug_hook_raises_on_corruption () =
  let cat, q, _, j = join_fixture () in
  let corrupted = Plan.Join { j with Plan.join_edges = [] } in
  check Alcotest.bool "raises Lint_failed" true
    (match Debug.check_plan_exn ~catalog:cat q corrupted with
     | () -> false
     | exception Debug.Lint_failed fs -> Finding.has_errors fs)

let test_reopt_lints_clean () =
  let catalog = Lazy.force imdb in
  let session = Session.create catalog in
  Session.analyze session;
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  (* ~lint:true checks every plan and every rewritten query in the loop;
     reaching the outcome means the whole trajectory lints clean. *)
  let outcome =
    Reopt.run ~lint:true session ~trigger:(Trigger.create 2.0)
      ~mode:Estimator.Default q
  in
  check Alcotest.bool "re-optimized" true (List.length outcome.Reopt.steps >= 1)

let test_rdb_lint_env_enables_hook () =
  Unix.putenv "RDB_LINT" "1";
  let finally () = Unix.putenv "RDB_LINT" "0" in
  Fun.protect ~finally (fun () ->
      let cat = small_db () in
      let q = bind cat join_sql in
      let session = Session.create cat in
      Session.analyze session;
      let prepared = Session.prepare session q in
      (* A clean plan passes through the installed hook without raising. *)
      let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
      check Alcotest.bool "planned under RDB_LINT=1" true
        (Relset.equal (Plan.rel_set plan) (Relset.full 2)))

let () =
  Alcotest.run "rdb_analysis"
    [
      ( "query_lint",
        [
          Alcotest.test_case "JOB workload lints clean" `Quick
            test_job_queries_lint_clean;
          Alcotest.test_case "dangling alias" `Quick test_dangling_alias;
          Alcotest.test_case "duplicate alias" `Quick test_duplicate_alias;
          Alcotest.test_case "predicate column out of range" `Quick
            test_predicate_column_out_of_range;
          Alcotest.test_case "predicate type mismatch" `Quick
            test_predicate_type_mismatch;
          Alcotest.test_case "disconnected graph names components" `Quick
            test_disconnected_join_graph_named;
          Alcotest.test_case "duplicate and contradictory predicates" `Quick
            test_duplicate_and_contradictory_predicates;
          Alcotest.test_case "duplicate join edge" `Quick
            test_duplicate_join_edge;
        ] );
      ( "plan_lint",
        [
          Alcotest.test_case "clean plan lints clean" `Quick
            test_clean_plan_lints_clean;
          Alcotest.test_case "swapped subtree relsets" `Quick
            test_swapped_subtree_relsets;
          Alcotest.test_case "dropped join edge" `Quick test_dropped_join_edge;
          Alcotest.test_case "duplicated relation subtree" `Quick
            test_duplicated_relation_subtree;
          Alcotest.test_case "wrong index" `Quick test_wrong_index_scan;
          Alcotest.test_case "stale index key" `Quick test_stale_index_key;
          Alcotest.test_case "stale estimate" `Quick test_stale_estimate;
          Alcotest.test_case "corrupted costs" `Quick test_corrupted_costs;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "workload plans lint clean" `Quick
            test_workload_plans_lint_clean;
          Alcotest.test_case "debug hook raises" `Quick
            test_debug_hook_raises_on_corruption;
          Alcotest.test_case "reopt trajectory lints clean" `Quick
            test_reopt_lints_clean;
          Alcotest.test_case "RDB_LINT env enables hook" `Quick
            test_rdb_lint_env_enables_hook;
        ] );
    ]
