(* The static-analysis passes must catch each corrupted-artifact class with
   the right severity — and stay silent on every clean query and plan the
   pipeline actually produces. *)

module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Estimator = Rdb_card.Estimator
module Plan = Rdb_plan.Plan
module Optimizer = Rdb_plan.Optimizer
module Session = Rdb_core.Session
module Reopt = Rdb_core.Reopt
module Trigger = Rdb_core.Trigger
module Finding = Rdb_analysis.Finding
module Query_lint = Rdb_analysis.Query_lint
module Plan_lint = Rdb_analysis.Plan_lint
module Debug = Rdb_analysis.Debug

let check = Alcotest.check

(* ---- fixtures ---- *)

let small_db () =
  let int name = { Schema.name; ty = Value.Ty_int } in
  let str name = { Schema.name; ty = Value.Ty_str } in
  let cat = Catalog.create () in
  let dim_n = 100 and fact_n = 2000 in
  Catalog.add_table cat
    (Table.create ~name:"dim"
       ~schema:(Schema.make [ int "id"; str "label" ])
       [|
         Column.Ints (Array.init dim_n (fun i -> i + 1));
         Column.Strs (Array.init dim_n (fun i -> Printf.sprintf "label%d" i));
       |]);
  Catalog.add_table cat
    (Table.create ~name:"fact"
       ~schema:(Schema.make [ int "id"; int "dim_id" ])
       [|
         Column.Ints (Array.init fact_n (fun i -> i + 1));
         Column.Ints (Array.init fact_n (fun i -> (i mod dim_n) + 1));
       |]);
  Catalog.add_index cat ~table:"dim" ~col:0;
  Catalog.add_index cat ~table:"fact" ~col:1;
  cat

let bind cat sql =
  match Rdb_sql.Binder.bind cat ~name:"q" (Rdb_sql.Parser.parse sql) with
  | Ok q -> q
  | Error e -> Alcotest.fail e

let join_sql = "SELECT COUNT(*) FROM dim AS d, fact AS f WHERE f.dim_id = d.id"

let plan_with_estimator cat q =
  let stats = Rdb_stats.Db_stats.create () in
  Rdb_stats.Analyze.all cat stats;
  let estimator =
    Estimator.create ~mode:Estimator.Default ~catalog:cat ~stats q
  in
  let plan, _ = Optimizer.plan ~lint:false ~catalog:cat ~estimator q in
  (plan, estimator)

let codes fs = List.sort_uniq compare (List.map (fun f -> f.Finding.code) fs)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let has_error code fs =
  List.exists (fun f -> f.Finding.code = code) (Finding.errors fs)

let has_warning code fs =
  List.exists
    (fun (f : Finding.t) ->
      f.Finding.code = code && f.Finding.severity = Finding.Warning)
    fs

(* A tiny IMDB instance shared by the workload-wide tests. *)
let imdb = lazy (Rdb_imdb.Imdb_gen.generate ~scale:0.02 ())

(* ---- Query_lint: clean inputs ---- *)

let test_job_queries_lint_clean () =
  let catalog = Lazy.force imdb in
  List.iter
    (fun (q : Query.t) ->
      let fs = Query_lint.check ~catalog q in
      check Alcotest.(list string) (q.Query.name ^ " clean") [] (codes fs))
    (Rdb_imdb.Job_queries.all catalog)

(* ---- Query_lint: corrupted queries ---- *)

let test_dangling_alias () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let rels = Array.copy q.Query.rels in
  rels.(1) <- { (rels.(1)) with Query.table = "vanished" };
  let fs = Query_lint.check ~catalog:cat { q with Query.rels } in
  check Alcotest.bool "unknown-table error" true (has_error "unknown-table" fs)

let test_duplicate_alias () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let rels = Array.copy q.Query.rels in
  rels.(1) <- { (rels.(1)) with Query.alias = q.Query.rels.(0).Query.alias };
  let fs = Query_lint.check ~catalog:cat { q with Query.rels } in
  check Alcotest.bool "duplicate-alias error" true
    (has_error "duplicate-alias" fs)

let test_predicate_column_out_of_range () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let bad =
    { Query.target = { Query.rel = 0; col = 99 };
      p = Predicate.Cmp (Predicate.Eq, Value.Int 1) }
  in
  let fs = Query_lint.check ~catalog:cat { q with Query.preds = [ bad ] } in
  check Alcotest.bool "bad-colref error" true (has_error "bad-colref" fs)

let test_predicate_type_mismatch () =
  let cat = small_db () in
  let q = bind cat join_sql in
  (* d.id is an integer column; compare it with a string literal. *)
  let bad =
    { Query.target = { Query.rel = 0; col = 0 };
      p = Predicate.Cmp (Predicate.Eq, Value.Str "oops") }
  in
  let fs = Query_lint.check ~catalog:cat { q with Query.preds = [ bad ] } in
  check Alcotest.bool "predicate-type error" true
    (has_error "predicate-type" fs);
  (* ... and LIKE on the integer column. *)
  let bad_like =
    { Query.target = { Query.rel = 0; col = 0 };
      p = Predicate.Like (Predicate.Prefix "x") }
  in
  let fs =
    Query_lint.check ~catalog:cat { q with Query.preds = [ bad_like ] }
  in
  check Alcotest.bool "LIKE on int error" true (has_error "predicate-type" fs)

let test_disconnected_join_graph_named () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let fs = Query_lint.check ~catalog:cat { q with Query.edges = [] } in
  (match Finding.by_code "disconnected-join-graph" (Finding.errors fs) with
   | [ f ] ->
     check Alcotest.bool "names both components" true
       (contains f.Finding.message ~needle:"{d}"
        && contains f.Finding.message ~needle:"{f}")
   | fs' ->
     Alcotest.failf "expected one disconnected finding, got %d"
       (List.length fs'))

let test_duplicate_and_contradictory_predicates () =
  let cat = small_db () in
  let q =
    bind cat (join_sql ^ " AND d.id = 1 AND d.id = 1")
  in
  let fs = Query_lint.check ~catalog:cat q in
  check Alcotest.bool "duplicate warning" true
    (has_warning "duplicate-predicate" fs);
  check Alcotest.bool "duplicates are not errors" false (Finding.has_errors fs);
  let q = bind cat (join_sql ^ " AND d.id = 1 AND d.id = 2") in
  let fs = Query_lint.check ~catalog:cat q in
  check Alcotest.bool "contradiction warning" true
    (has_warning "contradictory-predicates" fs);
  let q = bind cat (join_sql ^ " AND d.id BETWEEN 5 AND 3") in
  let fs = Query_lint.check ~catalog:cat q in
  check Alcotest.bool "empty range warning" true (has_warning "empty-range" fs);
  let q = bind cat (join_sql ^ " AND d.id BETWEEN 1 AND 4 AND d.id = 9") in
  let fs = Query_lint.check ~catalog:cat q in
  check Alcotest.bool "eq outside between warning" true
    (has_warning "contradictory-predicates" fs)

let test_duplicate_join_edge () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let fs =
    Query_lint.check ~catalog:cat
      { q with Query.edges = q.Query.edges @ q.Query.edges }
  in
  check Alcotest.bool "duplicate edge warning" true
    (has_warning "duplicate-join-edge" fs)

(* ---- Plan_lint: clean plans ---- *)

let test_clean_plan_lints_clean () =
  let cat = small_db () in
  let q = bind cat (join_sql ^ " AND d.id = 7") in
  let plan, estimator = plan_with_estimator cat q in
  let fs = Plan_lint.check ~catalog:cat ~estimator q plan in
  check Alcotest.(list string) "no findings" [] (codes fs)

(* ---- Plan_lint: corrupted plans ---- *)

(* The optimizer's plan for dim ⋈ fact, pulled apart for corruption. *)
let join_fixture () =
  let cat = small_db () in
  let q = bind cat join_sql in
  let plan, estimator = plan_with_estimator cat q in
  match plan with
  | Plan.Join j -> (cat, q, estimator, j)
  | Plan.Scan _ -> Alcotest.fail "expected a join plan"

let test_swapped_subtree_relsets () =
  let cat, q, estimator, j = join_fixture () in
  (* Swap outer and inner without reorienting the edges: every edge now
     references columns on the wrong sides. *)
  let corrupted =
    Plan.Join { j with Plan.outer = j.Plan.inner; inner = j.Plan.outer }
  in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "edge sides error" true
    (has_error "edge-outside-subtree" fs)

let test_dropped_join_edge () =
  let cat, q, estimator, j = join_fixture () in
  let corrupted = Plan.Join { j with Plan.join_edges = [] } in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "missing edge error" true
    (has_error "missing-join-edge" fs)

let test_duplicated_relation_subtree () =
  let cat, q, estimator, j = join_fixture () in
  (* Replace the inner subtree with a copy of the outer: one relation now
     appears twice and the other not at all. *)
  let corrupted = Plan.Join { j with Plan.inner = j.Plan.outer } in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "overlap error" true
    (has_error "overlapping-subtrees" fs);
  check Alcotest.bool "root coverage error" true (has_error "root-relset" fs)

let test_wrong_index_scan () =
  let cat, q, estimator, j = join_fixture () in
  (* fact(col0) has no index, and the query has no f.id = 5 predicate. *)
  let corrupt_scan (node : Plan.t) =
    match node with
    | Plan.Scan s when q.Query.rels.(s.Plan.scan_rel).Query.table = "fact" ->
      Plan.Scan { s with Plan.access = Plan.Index_scan { col = 0; key = 5 } }
    | other -> other
  in
  let corrupted =
    Plan.Join
      { j with
        Plan.outer = corrupt_scan j.Plan.outer;
        inner = corrupt_scan j.Plan.inner }
  in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "no-such-index error" true (has_error "no-such-index" fs);
  check Alcotest.bool "key mismatch error" true
    (has_error "index-key-mismatch" fs)

let test_stale_index_key () =
  let cat = small_db () in
  let q = bind cat (join_sql ^ " AND d.id = 7") in
  let plan, estimator = plan_with_estimator cat q in
  (* The optimizer picks an index scan d.id = 7; corrupt the key to a value
     the query never asked for. *)
  let rec corrupt (node : Plan.t) =
    match node with
    | Plan.Scan ({ Plan.access = Plan.Index_scan is; _ } as s) ->
      Plan.Scan { s with Plan.access = Plan.Index_scan { is with key = 8 } }
    | Plan.Scan _ -> node
    | Plan.Join j ->
      Plan.Join
        { j with Plan.outer = corrupt j.Plan.outer; inner = corrupt j.Plan.inner }
  in
  let fs = Plan_lint.check ~catalog:cat ~estimator q (corrupt plan) in
  check Alcotest.bool "stale key caught" true
    (has_error "index-key-mismatch" fs)

let test_stale_estimate () =
  let cat, q, estimator, j = join_fixture () in
  let corrupted = Plan.Join { j with Plan.join_est = j.Plan.join_est *. 10.0 } in
  let fs = Plan_lint.check ~catalog:cat ~estimator q corrupted in
  check Alcotest.bool "stale estimate error" true
    (has_error "stale-estimate" fs);
  (* Without an estimator the freshness check is skipped. *)
  let fs = Plan_lint.check ~catalog:cat q corrupted in
  check Alcotest.bool "skipped without estimator" false
    (has_error "stale-estimate" fs)

let test_corrupted_costs () =
  let cat, q, estimator, j = join_fixture () in
  let fs =
    Plan_lint.check ~catalog:cat ~estimator q
      (Plan.Join { j with Plan.join_cost = Float.nan })
  in
  check Alcotest.bool "nan cost error" true (has_error "cost-not-finite" fs);
  let fs =
    Plan_lint.check ~catalog:cat ~estimator q
      (Plan.Join { j with Plan.join_cost = 0.0 })
  in
  check Alcotest.bool "non-monotone cost error" true
    (has_error "cost-not-monotone" fs)

(* ---- pipeline wiring ---- *)

let test_workload_plans_lint_clean () =
  let catalog = Lazy.force imdb in
  let session = Session.create catalog in
  Session.analyze session;
  List.iter
    (fun name ->
      let q = Rdb_imdb.Job_queries.find catalog name in
      let prepared = Session.prepare session q in
      let plan, _, estimator =
        Session.plan ~lint:true prepared ~mode:Estimator.Default
      in
      let fs = Plan_lint.check ~catalog ~estimator q plan in
      check Alcotest.(list string) (name ^ " plan clean") [] (codes fs))
    [ "1a"; "6d"; "16b"; "18a"; "25c"; "30a" ]

let test_debug_hook_raises_on_corruption () =
  let cat, q, _, j = join_fixture () in
  let corrupted = Plan.Join { j with Plan.join_edges = [] } in
  check Alcotest.bool "raises Lint_failed" true
    (match Debug.check_plan_exn ~catalog:cat q corrupted with
     | () -> false
     | exception Debug.Lint_failed fs -> Finding.has_errors fs)

let test_reopt_lints_clean () =
  let catalog = Lazy.force imdb in
  let session = Session.create catalog in
  Session.analyze session;
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  (* ~lint:true checks every plan and every rewritten query in the loop;
     reaching the outcome means the whole trajectory lints clean. *)
  let outcome =
    Reopt.run ~lint:true session ~trigger:(Trigger.create 2.0)
      ~mode:Estimator.Default q
  in
  check Alcotest.bool "re-optimized" true (List.length outcome.Reopt.steps >= 1)

let test_rdb_lint_env_enables_hook () =
  Unix.putenv "RDB_LINT" "1";
  let finally () = Unix.putenv "RDB_LINT" "0" in
  Fun.protect ~finally (fun () ->
      let cat = small_db () in
      let q = bind cat join_sql in
      let session = Session.create cat in
      Session.analyze session;
      let prepared = Session.prepare session q in
      (* A clean plan passes through the installed hook without raising. *)
      let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
      check Alcotest.bool "planned under RDB_LINT=1" true
        (Relset.equal (Plan.rel_set plan) (Relset.full 2)))

(* ---- Sensitivity: interval abstract interpretation of the cost model ---- *)

module Sensitivity = Rdb_analysis.Sensitivity
module Interval = Rdb_cost.Interval
module Cost_model = Rdb_cost.Cost_model
module Oracle = Rdb_card.Oracle
module Card_bound = Rdb_verify.Card_bound
module Executor = Rdb_exec.Executor

let qtest = QCheck_alcotest.to_alcotest

(* Cardinalities as quarter-integers, so property inputs cover fractional
   estimates without wandering into float corner cases. *)
let card_arb = QCheck.map (fun i -> float_of_int i /. 4.0) QCheck.(int_range 0 4_000_000)
let delta_arb = QCheck.map (fun i -> float_of_int i /. 4.0) QCheck.(int_range 0 1_000_000)

let ( <=. ) x y = x <= y +. (1e-9 *. Float.max 1.0 (Float.abs y))

(* The property interval corner evaluation rests on: every operator cost is
   monotone non-decreasing in every cardinality input, checked one input at
   a time so a single non-monotone argument cannot hide behind the others. *)
let prop_cost_model_monotone =
  QCheck.Test.make ~name:"cost model monotone in every input cardinality"
    ~count:1000
    QCheck.(pair (pair (pair card_arb card_arb) (pair card_arb delta_arb))
              (int_range 0 5))
    (fun (((a, b), (c, d)), npreds) ->
      let cp = Cost_model.default in
      Cost_model.seq_scan cp ~rows:a ~npreds
      <=. Cost_model.seq_scan cp ~rows:(a +. d) ~npreds
      && Cost_model.index_scan cp ~matches:a ~npreds
         <=. Cost_model.index_scan cp ~matches:(a +. d) ~npreds
      && Cost_model.sort cp ~rows:a <=. Cost_model.sort cp ~rows:(a +. d)
      && Cost_model.hash_join cp ~build:a ~probe:b ~out:c
         <=. Cost_model.hash_join cp ~build:(a +. d) ~probe:b ~out:c
      && Cost_model.hash_join cp ~build:a ~probe:b ~out:c
         <=. Cost_model.hash_join cp ~build:a ~probe:(b +. d) ~out:c
      && Cost_model.hash_join cp ~build:a ~probe:b ~out:c
         <=. Cost_model.hash_join cp ~build:a ~probe:b ~out:(c +. d)
      && Cost_model.nested_loop cp ~outer:a ~inner:b ~out:c
         <=. Cost_model.nested_loop cp ~outer:(a +. d) ~inner:b ~out:c
      && Cost_model.nested_loop cp ~outer:a ~inner:b ~out:c
         <=. Cost_model.nested_loop cp ~outer:a ~inner:(b +. d) ~out:c
      && Cost_model.nested_loop cp ~outer:a ~inner:b ~out:c
         <=. Cost_model.nested_loop cp ~outer:a ~inner:b ~out:(c +. d)
      && Cost_model.merge_join cp ~outer:a ~inner:b ~out:c
         <=. Cost_model.merge_join cp ~outer:(a +. d) ~inner:b ~out:c
      && Cost_model.merge_join cp ~outer:a ~inner:b ~out:c
         <=. Cost_model.merge_join cp ~outer:a ~inner:(b +. d) ~out:c
      && Cost_model.merge_join cp ~outer:a ~inner:b ~out:c
         <=. Cost_model.merge_join cp ~outer:a ~inner:b ~out:(c +. d)
      && Cost_model.index_nested_loop cp ~outer:a ~out:c ~npreds
         <=. Cost_model.index_nested_loop cp ~outer:(a +. d) ~out:c ~npreds
      && Cost_model.index_nested_loop cp ~outer:a ~out:c ~npreds
         <=. Cost_model.index_nested_loop cp ~outer:a ~out:(c +. d) ~npreds)

(* The interval extension must bracket the point evaluation for any point
   inside the input box. *)
let prop_interval_brackets_point =
  QCheck.Test.make ~name:"interval cost brackets any point inside the box"
    ~count:1000
    QCheck.(pair (pair (pair card_arb delta_arb) (pair card_arb delta_arb))
              (pair card_arb delta_arb))
    (fun (((b_lo, b_d), (p_lo, p_d)), (o_lo, o_d)) ->
      let cp = Cost_model.default in
      let mid lo d = lo +. (d /. 2.0) in
      let iv =
        Interval.hash_join cp
          ~build:(Interval.make b_lo (b_lo +. b_d))
          ~probe:(Interval.make p_lo (p_lo +. p_d))
          ~out:(Interval.make o_lo (o_lo +. o_d))
      in
      Interval.contains iv
        (Cost_model.hash_join cp ~build:(mid b_lo b_d) ~probe:(mid p_lo p_d)
           ~out:(mid o_lo o_d)))

let test_interval_basics () =
  let iv = Interval.make 10.0 2.0 in
  check (Alcotest.float 0.0) "make normalizes lo" 2.0 iv.Interval.lo;
  check (Alcotest.float 0.0) "make normalizes hi" 10.0 iv.Interval.hi;
  check Alcotest.bool "contains endpoint" true (Interval.contains iv 10.0);
  check Alcotest.bool "contains interior" true (Interval.contains iv 5.0);
  check Alcotest.bool "excludes outside" false (Interval.contains iv 11.0);
  check (Alcotest.float 1e-9) "width" 8.0 (Interval.width iv);
  check (Alcotest.float 1e-9) "ratio" 5.0 (Interval.ratio iv);
  let u = Interval.union iv (Interval.point 20.0) in
  check (Alcotest.float 0.0) "union hi" 20.0 u.Interval.hi;
  check Alcotest.string "to_string" "[2, 10]" (Interval.to_string iv)

let test_plan_shape_and_same_shape () =
  let _cat, q, _estimator, j = join_fixture () in
  let p = Plan.Join j in
  check Alcotest.bool "same_shape reflexive" true (Plan.same_shape p p);
  let other_algo =
    match j.Plan.algo with
    | Plan.Hash_join -> Plan.Nested_loop
    | _ -> Plan.Hash_join
  in
  check Alcotest.bool "algo change detected" false
    (Plan.same_shape p (Plan.Join { j with Plan.algo = other_algo }));
  check Alcotest.bool "cost change ignored" true
    (Plan.same_shape p (Plan.Join { j with Plan.join_cost = 1e9 }));
  let s = Plan.shape q p in
  check Alcotest.bool "shape names both aliases" true
    (contains s ~needle:"d" && contains s ~needle:"f")

(* Fed the plan's own estimates as degenerate intervals, the interpreter
   must reproduce the recorded costs exactly: point envelope in, point
   interval out, and zero mismatches on optimizer-produced plans. *)
let test_point_envelope_consistent () =
  let catalog = Lazy.force imdb in
  let session = Session.create catalog in
  Session.analyze session;
  List.iter
    (fun name ->
      let q = Rdb_imdb.Job_queries.find catalog name in
      let prepared = Session.prepare session q in
      let plan, _, est = Session.plan prepared ~mode:Estimator.Default in
      let envelope _ ~est = (est, est) in
      let report =
        Sensitivity.analyze ~envelope ~corner_replans:false ~catalog
          ~estimator:est q plan
      in
      check Alcotest.int (name ^ ": no cost mismatches") 0
        (List.length report.Sensitivity.cost_mismatches);
      let c = Plan.cost plan in
      let tol = 1e-6 *. Float.max 1.0 c in
      check Alcotest.bool (name ^ ": root interval collapses to plan cost")
        true
        (Float.abs (report.Sensitivity.root_cost.Interval.lo -. c) <= tol
         && Float.abs (report.Sensitivity.root_cost.Interval.hi -. c) <= tol);
      check Alcotest.bool (name ^ ": no error findings") false
        (Finding.has_errors (Sensitivity.findings q report)))
    [ "1a"; "6d"; "16b"; "18a"; "25c"; "30a" ]

let test_cost_mismatch_detected () =
  let cat, q, estimator, j = join_fixture () in
  let corrupted = Plan.Join { j with Plan.join_cost = j.Plan.join_cost *. 2.0 } in
  let fs =
    Sensitivity.check ~corner_replans:false ~catalog:cat ~estimator q corrupted
  in
  check Alcotest.bool "interval-cost-mismatch error" true
    (has_error "interval-cost-mismatch" fs);
  (* ... and the uncorrupted plan passes the same check. *)
  let fs =
    Sensitivity.check ~corner_replans:false ~catalog:cat ~estimator q
      (Plan.Join j)
  in
  check Alcotest.bool "clean plan has no errors" false (Finding.has_errors fs)

(* With the oracle's true cardinalities as degenerate interval endpoints,
   the static prediction must reproduce Reopt.find_trigger exactly,
   tie-break included. *)
let test_predict_trigger_matches_find_trigger () =
  let catalog = Lazy.force imdb in
  let session = Session.create catalog in
  Session.analyze session;
  List.iter
    (fun name ->
      let q = Rdb_imdb.Job_queries.find catalog name in
      let prepared = Session.prepare session q in
      let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
      let oracle = Session.oracle prepared in
      let envelope =
        Sensitivity.point_envelope (fun s ->
            float_of_int (Oracle.true_card oracle s))
      in
      let static_pred =
        Sensitivity.predict_trigger ~envelope ~threshold:32.0 q plan
      in
      match (static_pred, Reopt.find_trigger prepared plan (Trigger.create 32.0)) with
      | None, None -> ()
      | Some p, Some (_, set, _, _) ->
        check Alcotest.bool (name ^ ": same join selected") true
          (Relset.equal p.Sensitivity.pred_set set);
        check Alcotest.bool (name ^ ": point interval is certain") true
          p.Sensitivity.pred_certain
      | Some _, None -> Alcotest.failf "%s: static predicts, dynamic silent" name
      | None, Some _ -> Alcotest.failf "%s: dynamic fires, static silent" name)
    [ "1a"; "6d"; "16b"; "18a"; "25c"; "30a" ]

(* Acceptance: across the whole workload at threshold 32, the static
   prediction (true cardinalities as interval endpoints, no execution on
   the analyzer's side) must agree with the dynamic trigger — the first
   join Reopt.run actually materializes — on at least 80% of the queries
   it can run to completion. *)
let test_static_prediction_acceptance () =
  let catalog = Lazy.force imdb in
  let session = Session.create catalog in
  Session.analyze session;
  let queries = Rdb_imdb.Job_queries.all catalog in
  let agree = ref 0 and total = ref 0 in
  List.iter
    (fun (q : Query.t) ->
      let prepared = Session.prepare session q in
      let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
      let oracle = Session.oracle prepared in
      let envelope =
        Sensitivity.point_envelope (fun s ->
            float_of_int (Oracle.true_card oracle s))
      in
      let static_pred =
        Sensitivity.predict_trigger ~envelope ~threshold:32.0 q plan
      in
      match
        Reopt.run ~work_budget:20_000_000 ~initial:prepared session
          ~trigger:(Trigger.create 32.0) ~mode:Estimator.Default q
      with
      | outcome ->
        incr total;
        let dynamic =
          match outcome.Reopt.steps with
          | [] -> None
          | s :: _ -> Some s.Reopt.materialized_set
        in
        (match (static_pred, dynamic) with
         | None, None -> incr agree
         | Some p, Some set when Relset.equal p.Sensitivity.pred_set set ->
           incr agree
         | _ -> ())
      | exception Executor.Work_budget_exceeded _ -> ())
    queries;
  check Alcotest.bool
    (Printf.sprintf "agreement %d/%d >= 80%%" !agree !total)
    true
    (!total >= 60 && float_of_int !agree >= 0.8 *. float_of_int !total)

(* Corner replans: joins whose estimate, moved inside the envelope, flips
   the DP-optimal plan — and the blind-spot split at the trigger
   threshold. *)
let test_corner_replans_flag_fragile_joins () =
  let catalog = Lazy.force imdb in
  let session = Session.create catalog in
  Session.analyze session;
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  let prepared = Session.prepare session q in
  let plan, _, est = Session.plan prepared ~mode:Estimator.Default in
  let envelope =
    let ctx = Card_bound.create ~catalog ~stats:(Session.stats session) q in
    Sensitivity.intersect
      (Sensitivity.q_envelope 64.0)
      (Sensitivity.of_intervals (Card_bound.interval ctx))
  in
  let report =
    Sensitivity.analyze ~envelope ~threshold:32.0 ~corner_replans:true
      ~space:(Session.space prepared) ~catalog ~estimator:est q plan
  in
  let flips =
    List.filter
      (fun (f : Sensitivity.fragility) -> f.Sensitivity.frag_flips <> None)
      report.Sensitivity.fragilities
  in
  check Alcotest.bool "some join flips the plan" true (flips <> []);
  let fs = Sensitivity.findings q report in
  check Alcotest.bool "fragile-join reported" true (has_warning "fragile-join" fs);
  check Alcotest.bool "blind spot reported" true
    (has_warning "reopt-blind-spot" fs);
  (* fragile vs blind-spot is exactly the trigger-visibility split *)
  List.iter
    (fun (f : Sensitivity.fragility) ->
      check Alcotest.bool "trips iff worst q-error over threshold"
        (f.Sensitivity.frag_q_error >= 32.0) f.Sensitivity.frag_trips)
    flips

let test_robust_plan_reports_robust () =
  let cat = small_db () in
  let q = bind cat (join_sql ^ " AND d.id = 7") in
  let plan, estimator = plan_with_estimator cat q in
  (* Two relations, one join order dominated by the index path: a tight
     envelope neither trips the trigger nor flips the plan. *)
  let report =
    Sensitivity.analyze ~envelope:(Sensitivity.q_envelope 1.5) ~threshold:32.0
      ~corner_replans:true ~catalog:cat ~estimator q plan
  in
  let fs = Sensitivity.findings q report in
  check Alcotest.(list string) "only plan-robust" [ "plan-robust" ] (codes fs)

let test_rdb_sensitivity_env () =
  let set v = Unix.putenv "RDB_SENSITIVITY" v in
  let finally () = set "0" in
  Fun.protect ~finally (fun () ->
      set "0";
      check Alcotest.(option (float 0.0)) "0 disables" None
        (Debug.sensitivity_threshold ());
      set "1";
      check Alcotest.(option (float 0.0)) "1 means default 32" (Some 32.0)
        (Debug.sensitivity_threshold ());
      set "true";
      check Alcotest.(option (float 0.0)) "true means default 32" (Some 32.0)
        (Debug.sensitivity_threshold ());
      set "8";
      check Alcotest.(option (float 0.0)) "numeric is the envelope factor"
        (Some 8.0)
        (Debug.sensitivity_threshold ());
      set "banana";
      check Alcotest.(option (float 0.0)) "garbage falls back to 32"
        (Some 32.0)
        (Debug.sensitivity_threshold ());
      (* With the hook enabled, clean plans pass through without raising. *)
      set "8";
      let cat = small_db () in
      let q = bind cat join_sql in
      let session = Session.create cat in
      Session.analyze session;
      let prepared = Session.prepare session q in
      let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
      check Alcotest.bool "planned under RDB_SENSITIVITY" true
        (Relset.equal (Plan.rel_set plan) (Relset.full 2)))

let () =
  Alcotest.run "rdb_analysis"
    [
      ( "query_lint",
        [
          Alcotest.test_case "JOB workload lints clean" `Quick
            test_job_queries_lint_clean;
          Alcotest.test_case "dangling alias" `Quick test_dangling_alias;
          Alcotest.test_case "duplicate alias" `Quick test_duplicate_alias;
          Alcotest.test_case "predicate column out of range" `Quick
            test_predicate_column_out_of_range;
          Alcotest.test_case "predicate type mismatch" `Quick
            test_predicate_type_mismatch;
          Alcotest.test_case "disconnected graph names components" `Quick
            test_disconnected_join_graph_named;
          Alcotest.test_case "duplicate and contradictory predicates" `Quick
            test_duplicate_and_contradictory_predicates;
          Alcotest.test_case "duplicate join edge" `Quick
            test_duplicate_join_edge;
        ] );
      ( "plan_lint",
        [
          Alcotest.test_case "clean plan lints clean" `Quick
            test_clean_plan_lints_clean;
          Alcotest.test_case "swapped subtree relsets" `Quick
            test_swapped_subtree_relsets;
          Alcotest.test_case "dropped join edge" `Quick test_dropped_join_edge;
          Alcotest.test_case "duplicated relation subtree" `Quick
            test_duplicated_relation_subtree;
          Alcotest.test_case "wrong index" `Quick test_wrong_index_scan;
          Alcotest.test_case "stale index key" `Quick test_stale_index_key;
          Alcotest.test_case "stale estimate" `Quick test_stale_estimate;
          Alcotest.test_case "corrupted costs" `Quick test_corrupted_costs;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "workload plans lint clean" `Quick
            test_workload_plans_lint_clean;
          Alcotest.test_case "debug hook raises" `Quick
            test_debug_hook_raises_on_corruption;
          Alcotest.test_case "reopt trajectory lints clean" `Quick
            test_reopt_lints_clean;
          Alcotest.test_case "RDB_LINT env enables hook" `Quick
            test_rdb_lint_env_enables_hook;
        ] );
      ( "sensitivity",
        [
          qtest prop_cost_model_monotone;
          qtest prop_interval_brackets_point;
          Alcotest.test_case "interval basics" `Quick test_interval_basics;
          Alcotest.test_case "plan shape and same_shape" `Quick
            test_plan_shape_and_same_shape;
          Alcotest.test_case "point envelope reproduces recorded costs"
            `Quick test_point_envelope_consistent;
          Alcotest.test_case "cost mismatch detected" `Quick
            test_cost_mismatch_detected;
          Alcotest.test_case "static trigger matches find_trigger" `Quick
            test_predict_trigger_matches_find_trigger;
          Alcotest.test_case "static vs dynamic trigger agreement >= 80%"
            `Quick test_static_prediction_acceptance;
          Alcotest.test_case "corner replans flag fragile joins" `Quick
            test_corner_replans_flag_fragile_joins;
          Alcotest.test_case "robust plan reports robust" `Quick
            test_robust_plan_reports_robust;
          Alcotest.test_case "RDB_SENSITIVITY env switch" `Quick
            test_rdb_sensitivity_env;
        ] );
    ]
