module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Estimator = Rdb_card.Estimator
module Plan = Rdb_plan.Plan
module Executor = Rdb_exec.Executor
module Session = Rdb_core.Session
module Trigger = Rdb_core.Trigger
module Reopt = Rdb_core.Reopt

let check = Alcotest.check

(* ---- Trigger ---- *)

let test_trigger_fires () =
  let t = Trigger.create 32.0 in
  check Alcotest.bool "33x fires" true (Trigger.fires t ~est:10.0 ~actual:330.0);
  check Alcotest.bool "under fires too" true (Trigger.fires t ~est:330.0 ~actual:10.0);
  check Alcotest.bool "10x does not" false (Trigger.fires t ~est:10.0 ~actual:100.0)

let test_trigger_min_rows () =
  let t = Trigger.create ~min_actual_rows:100 2.0 in
  check Alcotest.bool "small actual ignored" false (Trigger.fires t ~est:1.0 ~actual:50.0);
  check Alcotest.bool "large actual fires" true (Trigger.fires t ~est:1.0 ~actual:500.0)

let test_trigger_validation () =
  Alcotest.check_raises "threshold < 1"
    (Invalid_argument "Trigger.create: threshold must be >= 1") (fun () ->
      ignore (Trigger.create 0.5))

(* ---- Session ---- *)

let make_session scale =
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale () in
  let session = Session.create catalog in
  Session.analyze session;
  (catalog, session)

let test_session_prepare_validates () =
  let catalog, session = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "1a" in
  let bad = { q with Query.rels = [| { Query.alias = "x"; table = "nope" } |] } in
  check Alcotest.bool "prepare rejects" true
    (try ignore (Session.prepare session bad); false
     with Invalid_argument _ -> true)

let test_session_temp_names_fresh () =
  let _, session = make_session 0.01 in
  let a = Session.fresh_temp_name session in
  let b = Session.fresh_temp_name session in
  check Alcotest.bool "distinct" true (a <> b)

(* ---- needed_cols and rewrite ---- *)

let test_needed_cols_covers_crossing_edges () =
  let catalog, _ = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  (* rels: t=0 mk=1 k=2 ci=3 n=4. Materialize {mk, k}. *)
  let set = Relset.of_list [ 1; 2 ] in
  let cols = Reopt.needed_cols q set in
  check Alcotest.bool "non-empty" true (cols <> []);
  List.iter
    (fun (cr : Query.colref) ->
      check Alcotest.bool "inside set" true (Relset.mem cr.Query.rel set))
    cols

let test_needed_cols_dedups_equivalent () =
  let catalog, _ = make_session 0.02 in
  (* In 16b, ci/mk/mc movie_id columns are all equated; materializing
     {ci, mk, k} should expose a single movie column for the t/mc joins,
     not one per relation. *)
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  (* rels order in 16b: t ci n an mk k mc cn *)
  let set = Relset.of_list [ 1; 4; 5 ] in
  let cols = Reopt.needed_cols q set in
  (* ci brings person_id (to n) and person_role... only crossing classes:
     movie (one representative), person. *)
  let movie_cols =
    List.filter (fun (cr : Query.colref) -> cr.Query.rel = 1 || cr.Query.rel = 4) cols
  in
  check Alcotest.bool "at most 2 movie-ish cols + person" true
    (List.length movie_cols <= 2)

let test_rewrite_structure () =
  let catalog, _ = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let set = Relset.of_list [ 1; 2 ] in
  let cols = Reopt.needed_cols q set in
  let q' = Reopt.rewrite q ~set ~temp_name:"temp_x" ~temp_cols:cols in
  check Alcotest.int "two fewer rels, one temp" (Query.n_rels q - 1) (Query.n_rels q');
  check Alcotest.string "temp is last"
    "temp_x" q'.Query.rels.(Query.n_rels q' - 1).Query.alias;
  (* no predicate or edge may reference the removed relations *)
  List.iter
    (fun ({ Query.target; _ } : Query.pred) ->
      check Alcotest.bool "pred rel in range" true (target.Query.rel < Query.n_rels q'))
    q'.Query.preds;
  List.iter
    (fun { Query.l; r } ->
      check Alcotest.bool "edge rels in range" true
        (l.Query.rel < Query.n_rels q' && r.Query.rel < Query.n_rels q'))
    q'.Query.edges

(* ---- the full loop: semantic preservation ---- *)

let reopt_preserves_results name =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog name in
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
  let direct = Session.execute prepared plan in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 32.0) ~mode:Estimator.Default q
  in
  check Alcotest.int (name ^ " row count preserved") direct.Executor.out_rows
    outcome.Reopt.final_exec.Executor.out_rows;
  List.iter2
    (fun a b ->
      check Alcotest.bool (name ^ " aggregate preserved") true (Value.equal a b))
    direct.Executor.aggs outcome.Reopt.final_exec.Executor.aggs

let test_reopt_preserves_results () =
  List.iter reopt_preserves_results [ "1a"; "4b"; "6d"; "8a"; "16b"; "18a" ]

let test_reopt_cleanup () =
  let catalog, session = make_session 0.02 in
  let tables_before = List.map Table.name (Catalog.tables catalog) in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 2.0) ~mode:Estimator.Default q
  in
  check Alcotest.bool "took at least one step" true (outcome.Reopt.steps <> []);
  let tables_after = List.map Table.name (Catalog.tables catalog) in
  check (Alcotest.list Alcotest.string) "temp tables dropped" tables_before
    tables_after

let test_reopt_no_trigger_no_steps () =
  let catalog, session = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "1a" in
  (* With perfect estimates nothing can trip the trigger. *)
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 32.0) ~mode:Estimator.Perfect_all q
  in
  check Alcotest.int "no steps" 0 (List.length outcome.Reopt.steps)

let test_reopt_accounting () =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 4.0) ~mode:Estimator.Default q
  in
  let mat_total =
    List.fold_left (fun acc s -> acc +. s.Reopt.mat_ms) 0.0 outcome.Reopt.steps
  in
  check (Alcotest.float 0.001) "exec = materializations + final"
    (mat_total +. outcome.Reopt.final_exec.Executor.elapsed_ms)
    outcome.Reopt.total_exec_ms;
  check Alcotest.bool "plan time includes replans" true
    (outcome.Reopt.total_plan_ms >= outcome.Reopt.initial_plan_ms)

let test_reopt_max_steps () =
  let catalog, session = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  let outcome =
    Reopt.run ~max_steps:1 session ~trigger:(Trigger.create 2.0)
      ~mode:Estimator.Default q
  in
  check Alcotest.bool "at most one step" true (List.length outcome.Reopt.steps <= 1)

let test_reopt_composes_with_perfect () =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 32.0) ~mode:(Estimator.Perfect 2) q
  in
  (* still correct *)
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Perfect_all in
  let direct = Session.execute prepared plan in
  check Alcotest.int "rows agree" direct.Executor.out_rows
    outcome.Reopt.final_exec.Executor.out_rows


(* ---- find_trigger tie-break ---- *)

(* A hand-built playground where several joins of the same size trip the
   trigger at once, so the documented tie-break (fewest relations, then
   deepest in the tree, then post-order) is observable. Five chained
   tables with every key equal, so every sub-join's true cardinality dwarfs
   the hand-planted estimate of 1. *)

let chain_catalog n_tables rows_per_table =
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.Ty_int };
        { Schema.name = "k"; ty = Value.Ty_int };
      ]
  in
  let cat = Catalog.create () in
  for t = 0 to n_tables - 1 do
    Catalog.add_table cat
      (Table.create
         ~name:(Printf.sprintf "t%c" (Char.chr (Char.code 'a' + t)))
         ~schema
         [|
           Column.Ints (Array.init rows_per_table (fun i -> i));
           Column.Ints (Array.make rows_per_table 1);
         |])
  done;
  cat

let chain_query n_rels =
  let colref rel col = { Query.rel; col } in
  {
    Query.name = Printf.sprintf "chain%d" n_rels;
    rels =
      Array.init n_rels (fun i ->
          let c = Char.chr (Char.code 'a' + i) in
          { Query.alias = Printf.sprintf "%c" c;
            table = Printf.sprintf "t%c" c });
    preds = [];
    edges =
      List.init (n_rels - 1) (fun i ->
          { Query.l = colref i 1; r = colref (i + 1) 1 });
    select = [ Query.Count_star ];
  }

let scan rel =
  Plan.Scan
    { Plan.scan_rel = rel; access = Plan.Seq_scan; scan_est = 1.0; scan_cost = 1.0 }

let join outer inner edges =
  Plan.Join
    {
      Plan.algo = Plan.Hash_join;
      outer;
      inner;
      join_est = 1.0;
      join_cost = 1.0;
      join_edges = edges;
    }

let test_find_trigger_tiebreak_deepest () =
  (* plan: Join(Join(A,B), Join(Join(C,D), E)). With est=1 everywhere and
     10 rows per table (all keys equal), every join trips a 32x trigger.
     {A,B} and {C,D} are both 2-relation candidates; {C,D} sits deeper,
     so the tie-break must choose it — the old first-in-post-order
     behaviour returned {A,B}. *)
  let cat = chain_catalog 5 10 in
  let q = chain_query 5 in
  let session = Session.create cat in
  Session.analyze session;
  let prepared = Session.prepare session q in
  let edge i j = [ { Query.l = { Query.rel = i; col = 1 };
                     r = { Query.rel = j; col = 1 } } ] in
  let plan =
    join
      (join (scan 0) (scan 1) (edge 0 1))
      (join (join (scan 2) (scan 3) (edge 2 3)) (scan 4) (edge 3 4))
      (edge 1 2)
  in
  match Reopt.find_trigger prepared plan (Trigger.create 32.0) with
  | None -> Alcotest.fail "expected a tripping join"
  | Some (_, set, est, q_err) ->
    check (Alcotest.list Alcotest.int) "deepest 2-relation join wins" [ 2; 3 ]
      (Relset.to_list set);
    check (Alcotest.float 1e-9) "estimate carried" 1.0 est;
    check (Alcotest.float 1e-6) "q-error = actual/est" 100.0 q_err

let test_find_trigger_tiebreak_postorder () =
  (* equal size AND equal depth: Join(Join(A,B), Join(C,D)) — post-order
     position breaks the tie, so {A,B} (visited first) wins. *)
  let cat = chain_catalog 4 10 in
  let q = chain_query 4 in
  let session = Session.create cat in
  Session.analyze session;
  let prepared = Session.prepare session q in
  let edge i j = [ { Query.l = { Query.rel = i; col = 1 };
                     r = { Query.rel = j; col = 1 } } ] in
  let plan =
    join
      (join (scan 0) (scan 1) (edge 0 1))
      (join (scan 2) (scan 3) (edge 2 3))
      (edge 1 2)
  in
  match Reopt.find_trigger prepared plan (Trigger.create 32.0) with
  | None -> Alcotest.fail "expected a tripping join"
  | Some (_, set, _, _) ->
    check (Alcotest.list Alcotest.int) "post-order-first wins equal ties"
      [ 0; 1 ] (Relset.to_list set)

let test_find_trigger_smallest_first () =
  (* the size criterion still dominates depth: a deep 3-relation join must
     lose to a shallow 2-relation one *)
  let cat = chain_catalog 5 10 in
  let q = chain_query 5 in
  let session = Session.create cat in
  Session.analyze session;
  let prepared = Session.prepare session q in
  let edge i j = [ { Query.l = { Query.rel = i; col = 1 };
                     r = { Query.rel = j; col = 1 } } ] in
  (* Join(Join(Join(Join(A,B),C),D),E): the only 2-rel join {A,B} is also
     the deepest — but make the point with the trigger's min_actual_rows
     masking it: raise min_actual_rows above {A,B}'s 100 rows so the
     smallest *tripping* join is the 3-relation {A,B,C}. *)
  let plan =
    join
      (join (join (join (scan 0) (scan 1) (edge 0 1)) (scan 2) (edge 1 2))
         (scan 3) (edge 2 3))
      (scan 4) (edge 3 4)
  in
  match
    Reopt.find_trigger prepared plan (Trigger.create ~min_actual_rows:500 32.0)
  with
  | None -> Alcotest.fail "expected a tripping join"
  | Some (_, set, _, _) ->
    check (Alcotest.list Alcotest.int) "smallest tripping join" [ 0; 1; 2 ]
      (Relset.to_list set)

(* ---- replan_ms accounting ---- *)

let test_replan_ms_accounting () =
  (* every step carries the planning time of its own re-plan (they used to
     be backfilled with an O(n^2) List.nth_opt walk): the initial plan
     plus the per-step replans must reconstruct total_plan_ms exactly *)
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog "16b" in
  let outcome =
    Reopt.run session ~trigger:(Trigger.create 4.0) ~mode:Estimator.Default q
  in
  check Alcotest.bool "took steps" true (outcome.Reopt.steps <> []);
  let replans =
    List.fold_left (fun acc s -> acc +. s.Reopt.replan_ms) 0.0 outcome.Reopt.steps
  in
  check (Alcotest.float 0.001) "initial + replans = total"
    outcome.Reopt.total_plan_ms
    (outcome.Reopt.initial_plan_ms +. replans);
  List.iter
    (fun s ->
      check Alcotest.bool "replan time recorded" true (s.Reopt.replan_ms > 0.0))
    outcome.Reopt.steps

(* ---- EXPLAIN ANALYZE ---- *)

let test_explain_analyze_render () =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
  let res = Session.execute prepared plan in
  let out =
    Rdb_core.Explain_analyze.render ~trigger:(Trigger.create 32.0) prepared
      plan res
  in
  let contains needle =
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "actual rows annotated" true (contains "actual rows=");
  check Alcotest.bool "q-error annotated" true (contains "q-error=");
  check Alcotest.bool "trigger join flagged" true (contains "<= re-opt trigger");
  check Alcotest.bool "totals footer" true (contains "adaptive switches");
  check Alcotest.bool "bounds off by default" false (contains "bounds=[");
  (* --bounds column: the verifier's sound interval next to est/actual *)
  let out_b =
    Rdb_core.Explain_analyze.render ~bounds:true
      ~trigger:(Trigger.create 32.0) prepared plan res
  in
  let contains_b needle =
    let n = String.length needle and m = String.length out_b in
    let rec go i = i + n <= m && (String.sub out_b i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "bounds annotated" true (contains_b "bounds=[");
  (* the flagged join is the one find_trigger selects *)
  (match Reopt.find_trigger prepared plan (Trigger.create 32.0) with
   | None -> Alcotest.fail "6d default estimates should trip at 32x"
   | Some _ -> ());
  (* adaptive execution surfaces demotions in the render *)
  let res_a = Session.execute ~adaptive:true prepared plan in
  if res_a.Executor.switches > 0 then begin
    let out_a = Rdb_core.Explain_analyze.render prepared plan res_a in
    let contains_a needle =
      let n = String.length needle and m = String.length out_a in
      let rec go i = i + n <= m && (String.sub out_a i n = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "switch annotated" true (contains_a "adaptive switch:")
  end

(* ---- Feedback (LEO) ---- *)

let test_feedback_signature_alias_independent () =
  let catalog, _ = make_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  (* rels: t mk k ci n; renaming aliases must not change signatures *)
  let q2 =
    { q with
      Query.rels =
        Array.map (fun r -> { r with Query.alias = r.Query.alias ^ "_x" }) q.Query.rels }
  in
  let s = Relset.of_list [ 1; 2 ] in
  check Alcotest.string "alias independent"
    (Rdb_core.Feedback.signature q s)
    (Rdb_core.Feedback.signature q2 s)

let test_feedback_signature_distinguishes_preds () =
  let catalog, _ = make_session 0.02 in
  let qa = Rdb_imdb.Job_queries.find catalog "6a" in
  let qd = Rdb_imdb.Job_queries.find catalog "6d" in
  (* the mk-k pair differs by the keyword predicate *)
  let s = Relset.of_list [ 1; 2 ] in
  check Alcotest.bool "different predicates differ" true
    (Rdb_core.Feedback.signature qa s <> Rdb_core.Feedback.signature qd s)

let test_feedback_learns_and_transfers () =
  let catalog, session = make_session 0.05 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let feedback = Rdb_core.Feedback.create () in
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
  let res = Session.execute prepared plan in
  Rdb_core.Feedback.observe feedback ~catalog q res;
  check Alcotest.bool "learned something" true (Rdb_core.Feedback.size feedback > 0);
  (* the full set's cardinality is now known exactly *)
  let full = Relset.full (Query.n_rels q) in
  (match Rdb_core.Feedback.lookup feedback ~catalog q full with
   | Some v ->
     check (Alcotest.float 0.5) "full-set card learned"
       (float_of_int res.Executor.out_rows) v
   | None -> Alcotest.fail "full set not learned");
  (* planning under the feedback mode serves the correction through the
     estimator's memo — demand-driven, no eager subset sweep *)
  let mode = Session.feedback_mode prepared feedback in
  let _plan, _, est = Session.plan prepared ~mode in
  check (Alcotest.float 0.5) "estimator serves learned card"
    (Float.max 1.0 (float_of_int res.Executor.out_rows))
    (Rdb_card.Estimator.card est full)

(* A session created with a store learns from every [Session.execute];
   observations recorded before a table's mod_count moves are dropped the
   moment it does. *)
let make_feedback_session scale =
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale () in
  let feedback = Rdb_core.Feedback.create () in
  let session = Session.create ~feedback catalog in
  Session.analyze session;
  (catalog, session, feedback)

(* The pre-PR encoding, reproduced verbatim: members/predicates joined
   with bare "|" / ";" separators around raw Predicate.to_sql output. *)
let legacy_rel_signature (q : Query.t) rel =
  let preds =
    Query.preds_of_cols q rel
    |> List.map (fun (col, p) ->
           Rdb_query.Predicate.to_sql ~col:(Printf.sprintf "c%d" col) p)
    |> List.sort String.compare
  in
  Printf.sprintf "%s[%s]" q.Query.rels.(rel).Query.table
    (String.concat ";" preds)

let legacy_signature (q : Query.t) s =
  let members =
    Relset.to_list s
    |> List.map (legacy_rel_signature q)
    |> List.sort String.compare
  in
  String.concat "|" members ^ "||"

let handmade name rels preds =
  {
    Query.name;
    rels = Array.of_list rels;
    preds;
    edges = [];
    select = [ Query.Count_star ];
  }

let str_eq rel col s =
  {
    Query.target = { Query.rel; col };
    p = Rdb_query.Predicate.Cmp (Rdb_query.Predicate.Eq, Value.Str s);
  }

let test_feedback_signature_injective () =
  (* Two relations of [t], restricted to '' and 'a' — versus one relation
     of [t] whose string constant smuggles in the separators. Under the
     legacy separator-joined encoding both render to the same key; the
     length-prefixed encoding must keep them apart. *)
  let rel a = { Query.alias = a; table = "t" } in
  let q2 = handmade "two" [ rel "a"; rel "b" ] [ str_eq 0 0 ""; str_eq 1 0 "a" ] in
  let q1 = handmade "one" [ rel "a" ] [ str_eq 0 0 "']|t[c0 = 'a" ] in
  let s2 = Relset.of_list [ 0; 1 ] and s1 = Relset.of_list [ 0 ] in
  check Alcotest.string "legacy encoding collides (the bug)"
    (legacy_signature q2 s2) (legacy_signature q1 s1);
  check Alcotest.bool "length-prefixed encoding distinguishes" true
    (Rdb_core.Feedback.signature q2 s2 <> Rdb_core.Feedback.signature q1 s1);
  (* A second adversarial pair: one predicate whose constant embeds the
     legacy ";" pred separator vs two genuine predicates. *)
  let qa = handmade "semi" [ rel "a" ] [ str_eq 0 0 "x';c1 = 'y" ] in
  let qb = handmade "pair" [ rel "a" ] [ str_eq 0 0 "x"; str_eq 0 1 "y" ] in
  let s = Relset.of_list [ 0 ] in
  check Alcotest.string "legacy encoding collides on preds"
    (legacy_signature qa s) (legacy_signature qb s);
  check Alcotest.bool "length-prefixed preds distinguish" true
    (Rdb_core.Feedback.signature qa s <> Rdb_core.Feedback.signature qb s)

let test_feedback_staleness () =
  let catalog, _session, feedback = make_feedback_session 0.01 in
  let q = Rdb_imdb.Job_queries.find catalog "1a" in
  let s = Relset.of_list [ 0; 1 ] in
  Rdb_core.Feedback.observe_card feedback ~catalog q s 42;
  (match Rdb_core.Feedback.lookup feedback ~catalog q s with
   | Some v -> check (Alcotest.float 0.001) "served while fresh" 42.0 v
   | None -> Alcotest.fail "fresh entry not served");
  (* ingest/ANALYZE on a member table bumps its mod_count: the correction
     must no longer be served, and the entry is dropped *)
  Catalog.touch catalog q.Query.rels.(0).Query.table;
  check Alcotest.bool "stale entry not served" true
    (Rdb_core.Feedback.lookup feedback ~catalog q s = None);
  check Alcotest.int "stale entry dropped" 0 (Rdb_core.Feedback.size feedback)

let test_feedback_persistence_roundtrip () =
  let catalog, session, feedback = make_feedback_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "1a" in
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
  (* the session was created with the store: execute learns into it *)
  let _res = Session.execute prepared plan in
  check Alcotest.bool "session learned" true
    (Rdb_core.Feedback.size feedback > 0);
  let path = Filename.temp_file "rdb_feedback" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rdb_core.Feedback.save feedback path;
      match Rdb_core.Feedback.load path with
      | None -> Alcotest.fail "saved store failed to load"
      | Some loaded ->
        check Alcotest.int "same size" (Rdb_core.Feedback.size feedback)
          (Rdb_core.Feedback.size loaded);
        check Alcotest.bool "identical entries" true
          (Rdb_core.Feedback.entries feedback
          = Rdb_core.Feedback.entries loaded);
        (* identical lookups, epochs included *)
        let full = Relset.full (Query.n_rels q) in
        check Alcotest.bool "identical lookups" true
          (Rdb_core.Feedback.lookup loaded ~catalog q full
          = Rdb_core.Feedback.lookup feedback ~catalog q full))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_feedback_reopt_rekeys () =
  let catalog, session, feedback = make_feedback_session 0.02 in
  let q = Rdb_imdb.Job_queries.find catalog "6d" in
  let trigger = Trigger.create 2.0 in
  let outcome = Reopt.run session ~trigger ~mode:Estimator.Default q in
  check Alcotest.bool "re-opt stepped" true (outcome.Reopt.steps <> []);
  (* the first step's materialized set is in the original numbering: its
     paid-for true cardinality must be remembered under the original
     query's signature *)
  let step0 = List.hd outcome.Reopt.steps in
  (match
     Rdb_core.Feedback.lookup feedback ~catalog q
       step0.Reopt.materialized_set
   with
   | Some v ->
     check (Alcotest.float 0.5) "materialized card re-keyed"
       (float_of_int step0.Reopt.temp_rows) v
   | None -> Alcotest.fail "materialized set not learned");
  (* the final execution ran a rewritten query over temp tables, yet the
     full-set observation lands on the original query's full set *)
  let full = Relset.full (Query.n_rels q) in
  (match Rdb_core.Feedback.lookup feedback ~catalog q full with
   | Some v ->
     check (Alcotest.float 0.5) "final exec re-keyed"
       (float_of_int outcome.Reopt.final_exec.Executor.out_rows) v
   | None -> Alcotest.fail "full set not learned from re-opt run");
  (* no signature may mention a temp table: those keys are session-local
     garbage no later query could ever match *)
  List.iter
    (fun (key, _) ->
      check Alcotest.bool "no temp-table keys" false
        (contains_sub key "temp_"))
    (Rdb_core.Feedback.entries feedback)

let test_feedback_gate_blocks_fragile () =
  let tbl = Hashtbl.create 8 in
  let set l = Relset.of_list l in
  Hashtbl.replace tbl (set [ 0 ]) 10.0;
  Hashtbl.replace tbl (set [ 0; 1; 2 ]) 500.0;
  Hashtbl.replace tbl (set [ 3 ]) 7.0;
  Hashtbl.replace tbl (set [ 0; 3 ]) 70.0;
  let lookup s = Hashtbl.find_opt tbl s in
  let fragile = [ set [ 0; 1; 2 ] ] in
  let gated = Rdb_core.Feedback.gate ~fragile lookup in
  check Alcotest.bool "correction below a fragile join blocked" true
    (gated (set [ 0 ]) = None);
  check Alcotest.bool "correction on the fragile join itself blocked" true
    (gated (set [ 0; 1; 2 ]) = None);
  check Alcotest.bool "unrelated correction served" true
    (gated (set [ 3 ]) = Some 7.0);
  check Alcotest.bool "non-subset overlap served" true
    (gated (set [ 0; 3 ]) = Some 70.0);
  check Alcotest.bool "misses stay misses" true (gated (set [ 5 ]) = None)

let () =
  Alcotest.run "rdb_core"
    [
      ( "trigger",
        [
          Alcotest.test_case "fires on q-error" `Quick test_trigger_fires;
          Alcotest.test_case "min rows guard" `Quick test_trigger_min_rows;
          Alcotest.test_case "validation" `Quick test_trigger_validation;
        ] );
      ( "session",
        [
          Alcotest.test_case "prepare validates" `Quick test_session_prepare_validates;
          Alcotest.test_case "fresh temp names" `Quick test_session_temp_names_fresh;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "needed_cols covers crossing edges" `Quick
            test_needed_cols_covers_crossing_edges;
          Alcotest.test_case "needed_cols dedups classes" `Quick
            test_needed_cols_dedups_equivalent;
          Alcotest.test_case "rewrite structure" `Quick test_rewrite_structure;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "alias-independent signatures" `Quick
            test_feedback_signature_alias_independent;
          Alcotest.test_case "predicates distinguish" `Quick
            test_feedback_signature_distinguishes_preds;
          Alcotest.test_case "learns and transfers" `Quick
            test_feedback_learns_and_transfers;
          Alcotest.test_case "injective signatures" `Quick
            test_feedback_signature_injective;
          Alcotest.test_case "staleness on mod_count bump" `Quick
            test_feedback_staleness;
          Alcotest.test_case "persistence round-trip" `Quick
            test_feedback_persistence_roundtrip;
          Alcotest.test_case "re-opt observations re-keyed" `Quick
            test_feedback_reopt_rekeys;
          Alcotest.test_case "gate blocks fragile corrections" `Quick
            test_feedback_gate_blocks_fragile;
        ] );
      ( "find_trigger",
        [
          Alcotest.test_case "deepest wins among equal sizes" `Quick
            test_find_trigger_tiebreak_deepest;
          Alcotest.test_case "post-order breaks exact ties" `Quick
            test_find_trigger_tiebreak_postorder;
          Alcotest.test_case "size dominates depth" `Quick
            test_find_trigger_smallest_first;
        ] );
      ( "explain_analyze",
        [
          Alcotest.test_case "render annotations" `Quick
            test_explain_analyze_render;
        ] );
      ( "reopt",
        [
          Alcotest.test_case "preserves results" `Slow test_reopt_preserves_results;
          Alcotest.test_case "replan time per step" `Quick
            test_replan_ms_accounting;
          Alcotest.test_case "cleans up temp tables" `Quick test_reopt_cleanup;
          Alcotest.test_case "perfect estimates never trigger" `Quick
            test_reopt_no_trigger_no_steps;
          Alcotest.test_case "time accounting" `Quick test_reopt_accounting;
          Alcotest.test_case "max steps" `Quick test_reopt_max_steps;
          Alcotest.test_case "composes with perfect-(n)" `Quick
            test_reopt_composes_with_perfect;
        ] );
    ]
