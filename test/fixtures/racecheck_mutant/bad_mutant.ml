(* Deliberately broken: exercises the racecheck CLI's non-zero exit path.
   Never compiled — only parsed by the analyzer. *)

let mu = Mutex.create ()

(* @guarded_by mu *)
let counter = ref 0

let racy_bump () = counter := !counter + 1
