(* Seeded exception-flow mutants: the exnflow CLI must exit 1 here. *)

let leaky_channel path =
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  line

let swallow f = try f () with _ -> ()

let escape () =
  let d = Domain.spawn (fun () -> failwith "die") in
  Domain.join d
