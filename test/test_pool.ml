module Pool = Rdb_util.Pool

let check = Alcotest.check

(* Every submitted task runs exactly once, whatever the worker count. *)
let test_all_tasks_run_once () =
  List.iter
    (fun jobs ->
      let ran = Array.make 200 0 in
      let results =
        Pool.with_pool jobs (fun pool ->
            Pool.map pool
              (fun i ->
                ran.(i) <- ran.(i) + 1;
                i * i)
              (Array.init 200 Fun.id))
      in
      Array.iteri
        (fun i n ->
          check Alcotest.int (Printf.sprintf "jobs=%d task %d runs once" jobs i) 1 n)
        ran;
      Array.iteri
        (fun i r ->
          check Alcotest.int (Printf.sprintf "jobs=%d result %d" jobs i) (i * i) r)
        results)
    [ 1; 2; 4; 7 ]

(* Results come back in submission order, not completion order: make the
   early tasks the slow ones so eager workers finish the tail first. *)
let test_results_order_independent () =
  let spin n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc + i) mod 1000003
    done;
    !acc
  in
  let results =
    Pool.with_pool 4 (fun pool ->
        Pool.map pool
          (fun i ->
            ignore (spin (if i < 8 then 2_000_000 else 100));
            i)
          (Array.init 64 Fun.id))
  in
  Array.iteri
    (fun i r -> check Alcotest.int "in submission order" i r)
    results

(* An exception inside a worker re-raises at the submitter's await, and
   the surviving tasks still complete. *)
let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool jobs (fun pool ->
          let ok = Pool.submit pool (fun () -> 21 * 2) in
          let bad = Pool.submit pool (fun () -> failwith "boom") in
          let also_ok = Pool.submit pool (fun () -> "alive") in
          check Alcotest.int "before the failure" 42 (Pool.await ok);
          (match Pool.await bad with
           | _ -> Alcotest.fail "expected Failure to propagate"
           | exception Failure msg -> check Alcotest.string "message" "boom" msg);
          check Alcotest.string "after the failure" "alive" (Pool.await also_ok)))
    [ 1; 4 ]

(* A 1-job pool is direct execution: inline, on the submitting domain, in
   submission order — side effects are visible before await. *)
let test_jobs1_is_direct_execution () =
  let pool = Pool.create 1 in
  let trace = ref [] in
  let futures =
    List.map
      (fun i -> Pool.submit pool (fun () -> trace := i :: !trace; i))
      [ 0; 1; 2; 3 ]
  in
  check (Alcotest.list Alcotest.int) "ran inline, in order" [ 3; 2; 1; 0 ] !trace;
  check (Alcotest.list Alcotest.int) "await returns stored results" [ 0; 1; 2; 3 ]
    (List.map Pool.await futures);
  let direct = List.map (fun i -> i * 7) [ 1; 2; 3 ] in
  let pooled = Pool.run pool (List.map (fun i () -> i * 7) [ 1; 2; 3 ]) in
  check (Alcotest.list Alcotest.int) "matches direct execution" direct pooled;
  Pool.shutdown pool

let test_create_rejects_zero () =
  check Alcotest.bool "raises" true
    (try ignore (Pool.create 0); false with Invalid_argument _ -> true)

let test_submit_after_shutdown_rejected () =
  List.iter
    (fun jobs ->
      let pool = Pool.create jobs in
      check Alcotest.int "works before shutdown" 5
        (Pool.await (Pool.submit pool (fun () -> 5)));
      Pool.shutdown pool;
      Pool.shutdown pool;
      check Alcotest.bool "submit after shutdown raises" true
        (try ignore (Pool.submit pool (fun () -> 0)); false
         with Invalid_argument _ -> true))
    [ 1; 2 ]

(* Two domains racing to shut the same pool down: exactly one joins the
   workers, the other returns without raising — shutdown is idempotent
   and thread-safe, so a failing connection handler and the accept loop
   can both reach for it. *)
let test_concurrent_shutdown () =
  for _ = 1 to 20 do
    let pool = Pool.create 4 in
    let futures = List.init 32 (fun i -> Pool.submit pool (fun () -> i)) in
    let racers =
      List.init 3 (fun _ -> Domain.spawn (fun () -> Pool.shutdown pool))
    in
    Pool.shutdown pool;
    List.iter Domain.join racers;
    List.iteri
      (fun i fut -> check Alcotest.int "drained despite the race" i (Pool.await fut))
      futures
  done

(* A task that raises must not take its worker down with it: the pool
   keeps draining, and shutdown still joins cleanly. *)
let test_failing_task_never_wedges_shutdown () =
  let pool = Pool.create 2 in
  let bad = List.init 8 (fun _ -> Pool.submit pool (fun () -> failwith "die")) in
  let good = List.init 8 (fun i -> Pool.submit pool (fun () -> i * 3)) in
  Pool.shutdown pool;
  List.iter
    (fun fut ->
      match Pool.await fut with
      | _ -> Alcotest.fail "expected the task's failure"
      | exception Failure _ -> ())
    bad;
  List.iteri
    (fun i fut -> check Alcotest.int "survivors drained" (i * 3) (Pool.await fut))
    good

(* Shutdown drains tasks that are still queued. *)
let test_shutdown_drains () =
  let pool = Pool.create 2 in
  let futures = List.init 50 (fun i -> Pool.submit pool (fun () -> i + 1)) in
  Pool.shutdown pool;
  List.iteri
    (fun i fut -> check Alcotest.int "drained result" (i + 1) (Pool.await fut))
    futures

let () =
  Alcotest.run "rdb_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "tasks run exactly once" `Quick test_all_tasks_run_once;
          Alcotest.test_case "results order-independent" `Quick
            test_results_order_independent;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "jobs=1 is direct execution" `Quick
            test_jobs1_is_direct_execution;
          Alcotest.test_case "rejects jobs=0" `Quick test_create_rejects_zero;
          Alcotest.test_case "submit after shutdown" `Quick
            test_submit_after_shutdown_rejected;
          Alcotest.test_case "shutdown drains queue" `Quick test_shutdown_drains;
          Alcotest.test_case "concurrent shutdown is safe" `Quick
            test_concurrent_shutdown;
          Alcotest.test_case "failing task never wedges shutdown" `Quick
            test_failing_task_never_wedges_shutdown;
        ] );
    ]
