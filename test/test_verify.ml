(* The symbolic plan verifier, tested three ways:

   - property tests over seeded random SPJ queries: SQL
     unparse -> parse -> bind is a fixpoint, canonicalization is idempotent
     and alias-rename-invariant;
   - soundness: on generated IMDB data, no true sub-join cardinality ever
     exceeds the derived upper bound (or undercuts the lower bound), the
     declared key/FK constraints actually hold, and pessimistic clamping
     changes only plans, never query results;
   - regression: the pre-PR-3 Reopt.rewrite emitted duplicate join edges
     with opposite orientations; re-introducing that exact artifact in test
     scaffolding must be rejected by the prover, while the fixed rewrite is
     proved equivalent. *)

module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Join_graph = Rdb_query.Join_graph
module Session = Rdb_core.Session
module Reopt = Rdb_core.Reopt
module Estimator = Rdb_card.Estimator
module Naive = Rdb_exec.Naive
module Executor = Rdb_exec.Executor
module Prng = Rdb_util.Prng
module Relset = Rdb_util.Relset
module Finding = Rdb_analysis.Finding
module Cqnf = Rdb_verify.Cqnf
module Equiv = Rdb_verify.Equiv
module Card_bound = Rdb_verify.Card_bound
module Query_gen = Rdb_verify.Query_gen

let imdb ?(scale = 0.02) ?(seed = 11) () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~seed ~scale () in
  let session = Session.create catalog in
  Session.analyze session;
  (catalog, session)

(* ---- property tests over the seeded random query generator ---- *)

let n_gen_queries = 120

let gen_queries catalog =
  let g = Query_gen.create ~catalog in
  let rng = Prng.create 424242 in
  List.init n_gen_queries (fun i ->
      Query_gen.gen g rng ~name:(Printf.sprintf "g%03d" i))

let test_generator_valid () =
  let catalog, _ = imdb () in
  let qs = gen_queries catalog in
  List.iter
    (fun (q : Query.t) ->
      match Query.validate catalog q with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: generated invalid query: %s" q.Query.name e)
    qs;
  (* the FK-rule walk should produce self-join shapes too *)
  let has_self_join (q : Query.t) =
    let tables =
      List.sort compare
        (Array.to_list (Array.map (fun (r : Query.rel) -> r.Query.table) q.Query.rels))
    in
    let rec dup = function
      | a :: (b :: _ as rest) -> a = b || dup rest
      | _ -> false
    in
    dup tables
  in
  Alcotest.(check bool) "self-join shapes appear" true
    (List.exists has_self_join qs)

let test_sql_fixpoint () =
  let catalog, _ = imdb () in
  List.iter
    (fun (q : Query.t) ->
      let sql = Rdb_sql.Unparse.query catalog q in
      let q2 =
        match Rdb_sql.Binder.bind catalog ~name:q.Query.name (Rdb_sql.Parser.parse sql) with
        | Ok q2 -> q2
        | Error e -> Alcotest.failf "%s: reparse failed: %s\n%s" q.Query.name e sql
      in
      let sql2 = Rdb_sql.Unparse.query catalog q2 in
      if sql <> sql2 then
        Alcotest.failf "%s: unparse/parse not a fixpoint:\n%s\n%s" q.Query.name
          sql sql2;
      if not (Cqnf.equal (Cqnf.of_query ~catalog q) (Cqnf.of_query ~catalog q2))
      then Alcotest.failf "%s: reparse changed the canonical form" q.Query.name)
    (gen_queries catalog)

let test_canon_idempotent () =
  let catalog, _ = imdb () in
  List.iter
    (fun (q : Query.t) ->
      let f = Cqnf.of_query ~catalog q in
      if not (Cqnf.equal f (Cqnf.canon f)) then
        Alcotest.failf "%s: canon not idempotent" q.Query.name;
      let n1 = Cqnf.normalize ~catalog q in
      let n2 = Cqnf.normalize ~catalog n1 in
      if n1 <> { n2 with Query.name = n1.Query.name } then
        Alcotest.failf "%s: normalize not idempotent" q.Query.name;
      if not (Cqnf.equal f (Cqnf.of_query ~catalog n1)) then
        Alcotest.failf "%s: normalize changed the canonical form" q.Query.name)
    (gen_queries catalog)

let test_alias_invariance () =
  let catalog, _ = imdb () in
  List.iter
    (fun (q : Query.t) ->
      let renamed = Query_gen.rename_aliases q in
      if not (Cqnf.equal (Cqnf.of_query ~catalog q) (Cqnf.of_query ~catalog renamed))
      then
        Alcotest.failf "%s: alias renaming changed the canonical form"
          q.Query.name;
      (* and the renamed query is proved bag-equal, not merely set-equal *)
      match
        Equiv.equivalence (Cqnf.of_query ~catalog q)
          (Cqnf.of_query ~catalog renamed)
      with
      | Equiv.Bag_equal -> ()
      | Equiv.Set_equal | Equiv.Not_equal _ ->
        Alcotest.failf "%s: renamed query not proved bag-equal" q.Query.name)
    (gen_queries catalog)

(* ---- soundness of the cardinality bounds ---- *)

let connected_subsets (q : Query.t) =
  let n = Query.n_rels q in
  let graph = Join_graph.make q in
  let rec go i acc =
    if i = 1 lsl n then acc
    else begin
      let s =
        List.fold_left
          (fun s r -> if i land (1 lsl r) <> 0 then Relset.add r s else s)
          Relset.empty (List.init n Fun.id)
      in
      let acc =
        if not (Relset.is_empty s) && Join_graph.is_connected graph s then
          s :: acc
        else acc
      in
      go (i + 1) acc
    end
  in
  go 1 []

let small_job_queries catalog =
  List.filter
    (fun q -> Query.n_rels q <= 4)
    (Rdb_imdb.Job_queries.all catalog)

let test_bound_soundness () =
  let catalog, session = imdb () in
  let stats = Session.stats session in
  let checked = ref 0 in
  let check (q : Query.t) =
    let ctx = Card_bound.create ~catalog ~stats q in
    List.iter
      (fun s ->
        let lo, hi = Card_bound.interval ctx s in
        let actual = float_of_int (Naive.count ~catalog q s) in
        incr checked;
        if actual > hi +. 0.5 then
          Alcotest.failf "%s %s: true cardinality %.0f above upper bound %.1f"
            q.Query.name
            (String.concat "," (List.map (Query.rel_alias q) (Relset.to_list s)))
            actual hi;
        if actual < lo -. 0.5 then
          Alcotest.failf "%s %s: true cardinality %.0f below lower bound %.1f"
            q.Query.name
            (String.concat "," (List.map (Query.rel_alias q) (Relset.to_list s)))
            actual lo)
      (connected_subsets q)
  in
  List.iter check (small_job_queries catalog);
  (* and on generated queries, whose predicates hit sampled constants *)
  let rng = Prng.create 99 in
  ignore rng;
  List.iteri (fun i q -> if i mod 4 = 0 then check q) (gen_queries catalog);
  Alcotest.(check bool) "exercised many subsets" true (!checked > 300)

let test_constraints_hold () =
  let catalog, _ = imdb () in
  let findings = Card_bound.check_constraints catalog in
  if Finding.has_errors findings then
    Alcotest.failf "generated data violates declared constraints:\n%s"
      (Finding.render (Finding.errors findings))

let test_clamp_preserves_results () =
  let catalog, session = imdb () in
  List.iteri
    (fun i (q : Query.t) ->
      if i mod 3 = 0 then begin
        let prepared = Session.prepare session q in
        let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
        let clamped, _, _ =
          Session.plan ~pessimistic:true prepared ~mode:Estimator.Default
        in
        let a = Session.execute prepared plan in
        let b = Session.execute prepared clamped in
        if not (List.equal Value.equal a.Executor.aggs b.Executor.aggs) then
          Alcotest.failf "%s: pessimistic clamping changed the results"
            q.Query.name;
        if a.Executor.out_rows <> b.Executor.out_rows then
          Alcotest.failf "%s: pessimistic clamping changed out_rows %d -> %d"
            q.Query.name a.Executor.out_rows b.Executor.out_rows
      end)
    (small_job_queries catalog @ gen_queries catalog)

(* ---- the rewrite-equivalence prover on re-optimization steps ---- *)

(* A join triangle over the workload schema: t.id, mk.movie_id and
   ci.movie_id all in one equivalence class, closed by a redundant third
   edge — the shape on which the pre-PR-3 rewrite produced duplicates. *)
let triangle_query () =
  {
    Query.name = "tri";
    rels =
      [| { Query.alias = "t"; table = "title" };
         { Query.alias = "mk"; table = "movie_keyword" };
         { Query.alias = "ci"; table = "cast_info" } |];
    preds =
      [ { Query.target = { Query.rel = 2; col = 4 };
          p = Predicate.Between (1, 2) } ];
    edges =
      [ { Query.l = { Query.rel = 0; col = 0 };
          r = { Query.rel = 1; col = 1 } };
        { Query.l = { Query.rel = 0; col = 0 };
          r = { Query.rel = 2; col = 2 } };
        (* the cycle-closing edge, oriented ci -> mk *)
        { Query.l = { Query.rel = 2; col = 2 };
          r = { Query.rel = 1; col = 1 } } ];
    select = [ Query.Count_star ];
  }

let step_args () =
  let q = triangle_query () in
  let set = Relset.of_list [ 0; 1 ] in
  let temp_cols = Reopt.needed_cols q set in
  (q, set, temp_cols, "temp_tri")

let errors_with code findings =
  List.exists
    (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
    (Finding.by_code code findings)

let test_rewrite_proved () =
  let catalog, _ = imdb () in
  let q, set, temp_cols, temp_name = step_args () in
  let q' = Reopt.rewrite q ~set ~temp_name ~temp_cols in
  let findings = Equiv.check_step ~catalog ~original:q ~set ~temp_cols ~temp_name q' in
  if Finding.has_errors findings then
    Alcotest.failf "genuine rewrite rejected:\n%s" (Finding.render findings);
  Alcotest.(check bool) "step carries a rewrite-proved finding" true
    (Finding.by_code "rewrite-proved" findings <> [])

(* Re-introduce the exact pre-fix artifact: the crossing edge that collapsed
   onto the temp table reappears with the opposite orientation, surviving
   the rewrite's sort_uniq dedup. *)
let test_broken_rewrite_rejected () =
  let catalog, _ = imdb () in
  let q, set, temp_cols, temp_name = step_args () in
  let q' = Reopt.rewrite q ~set ~temp_name ~temp_cols in
  let temp_idx = Query.n_rels q' - 1 in
  let dup_edge =
    match
      List.find_opt
        (fun (e : Query.edge) -> e.Query.l.Query.rel = temp_idx)
        q'.Query.edges
    with
    | Some e -> { Query.l = e.Query.r; r = e.Query.l }
    | None -> Alcotest.fail "rewrite produced no temp-table edge"
  in
  let broken = { q' with Query.edges = q'.Query.edges @ [ dup_edge ] } in
  let findings =
    Equiv.check_step ~catalog ~original:q ~set ~temp_cols ~temp_name broken
  in
  Alcotest.(check bool) "duplicate-edge error reported" true
    (errors_with "rewrite-duplicate-edge" findings);
  (* note the original query itself contains the redundant cycle edge, so a
     redundancy *delta* alone cannot catch this — the duplicate check on the
     rewritten query is what fires *)
  Alcotest.(check int) "original already carries one redundant edge" 1
    (Cqnf.redundancy (Cqnf.of_query ~catalog q))

let test_tampered_rewrite_rejected () =
  let catalog, _ = imdb () in
  let q, set, temp_cols, temp_name = step_args () in
  let q' = Reopt.rewrite q ~set ~temp_name ~temp_cols in
  (* dropping the surviving predicate changes the query's meaning *)
  let tampered = { q' with Query.preds = [] } in
  let findings =
    Equiv.check_step ~catalog ~original:q ~set ~temp_cols ~temp_name tampered
  in
  Alcotest.(check bool) "not-equivalent error reported" true
    (errors_with "rewrite-not-equivalent" findings);
  (* and a wrong temp-table shape is a shape error, not a crash *)
  let misshapen =
    { q' with Query.rels = [| q'.Query.rels.(Query.n_rels q' - 1) |] }
  in
  let findings =
    Equiv.check_step ~catalog ~original:q ~set ~temp_cols ~temp_name misshapen
  in
  Alcotest.(check bool) "shape error reported" true
    (errors_with "rewrite-shape" findings)

let () =
  Alcotest.run "rdb_verify"
    [
      ( "properties",
        [
          Alcotest.test_case "generated queries validate; self-joins appear"
            `Quick test_generator_valid;
          Alcotest.test_case "SQL unparse/parse/bind fixpoint" `Quick
            test_sql_fixpoint;
          Alcotest.test_case "canonicalization idempotent" `Quick
            test_canon_idempotent;
          Alcotest.test_case "canonicalization alias-invariant" `Quick
            test_alias_invariance;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "declared constraints hold on generated data"
            `Quick test_constraints_hold;
          Alcotest.test_case "true cardinalities inside derived bounds" `Quick
            test_bound_soundness;
          Alcotest.test_case "pessimistic clamping preserves results" `Quick
            test_clamp_preserves_results;
        ] );
      ( "rewrites",
        [
          Alcotest.test_case "genuine rewrite step proved equivalent" `Quick
            test_rewrite_proved;
          Alcotest.test_case "pre-fix duplicate-edge rewrite rejected" `Quick
            test_broken_rewrite_rejected;
          Alcotest.test_case "tampered rewrite rejected" `Quick
            test_tampered_rewrite_rejected;
        ] );
    ]
