module Lexer = Rdb_sql.Lexer
module Parser = Rdb_sql.Parser
module Ast = Rdb_sql.Ast
module Binder = Rdb_sql.Binder
module Unparse = Rdb_sql.Unparse
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate

let check = Alcotest.check

(* ---- Lexer ---- *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "SELECT COUNT(*) FROM t WHERE a.b = 'x''y';" in
  check Alcotest.int "token count" 15 (List.length toks);
  (match toks with
   | Lexer.Kw "SELECT" :: Lexer.Kw "COUNT" :: Lexer.Lparen :: Lexer.Star :: _ -> ()
   | _ -> Alcotest.fail "unexpected token stream");
  check Alcotest.bool "escaped quote" true
    (List.exists (function Lexer.Str "x'y" -> true | _ -> false) toks)

let test_lexer_numbers_ops () =
  let toks = Lexer.tokenize "x.y >= -12 AND x.z <> 3" in
  check Alcotest.bool "negative int" true
    (List.exists (function Lexer.Int (-12) -> true | _ -> false) toks);
  check Alcotest.bool "ge op" true
    (List.exists (function Lexer.Op ">=" -> true | _ -> false) toks);
  check Alcotest.bool "ne op" true
    (List.exists (function Lexer.Op "<>" -> true | _ -> false) toks)

let test_lexer_case_insensitive_keywords () =
  let toks = Lexer.tokenize "select From wHeRe" in
  check Alcotest.int "three keywords" 4 (List.length toks);
  check Alcotest.bool "all keywords" true
    (List.for_all (function Lexer.Kw _ | Lexer.Eof -> true | _ -> false) toks)

let test_lexer_error () =
  Alcotest.check_raises "bad char" (Lexer.Lex_error "unexpected character #")
    (fun () -> ignore (Lexer.tokenize "a # b"))

(* ---- Parser ---- *)

let test_parser_basic () =
  let stmt =
    Parser.parse
      "SELECT MIN(t.title), COUNT(*) FROM title AS t, movie_keyword mk \
       WHERE t.id = mk.movie_id AND t.production_year > 2000 \
       AND t.title LIKE '%Dark%' AND t.kind_id IN (1, 2) \
       AND t.production_year BETWEEN 1990 AND 2010;"
  in
  check Alcotest.int "two select items" 2 (List.length stmt.Ast.select);
  check Alcotest.int "two tables" 2 (List.length stmt.Ast.from);
  check Alcotest.int "five conditions" 5 (List.length stmt.Ast.where);
  (match stmt.Ast.from with
   | [ t; mk ] ->
     check Alcotest.string "alias via AS" "t" t.Ast.t_alias;
     check Alcotest.string "alias without AS" "mk" mk.Ast.t_alias
   | _ -> Alcotest.fail "from list")

let test_parser_no_where () =
  let stmt = Parser.parse "SELECT COUNT(*) FROM title AS t" in
  check Alcotest.int "no conditions" 0 (List.length stmt.Ast.where)

let test_parser_is_null () =
  let stmt =
    Parser.parse
      "SELECT COUNT(*) FROM t AS a WHERE a.x IS NULL AND a.y IS NOT NULL"
  in
  match stmt.Ast.where with
  | [ Ast.C_is_null _; Ast.C_is_not_null _ ] -> ()
  | _ -> Alcotest.fail "null tests not parsed"

let test_parser_errors () =
  let expect_fail sql =
    match Parser.parse sql with
    | exception Parser.Parse_error _ -> ()
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.fail ("accepted bad SQL: " ^ sql)
  in
  expect_fail "SELECT FROM t";
  expect_fail "SELECT COUNT(*) FROM";
  expect_fail "SELECT COUNT(*) FROM t WHERE";
  expect_fail "SELECT COUNT(*) FROM t AS a WHERE a.x <";
  expect_fail "SELECT COUNT(*) FROM t t2 t3";
  expect_fail "SELECT AVG(t.x) FROM t";
  expect_fail "SELECT MAX(*) FROM t"

(* ---- Binder ---- *)

let catalog () = Rdb_imdb.Imdb_gen.generate ~scale:0.01 ()

let bind sql =
  Binder.bind (catalog ()) ~name:"test" (Parser.parse sql)

let test_binder_ok () =
  match
    bind
      "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk, keyword AS k \
       WHERE mk.movie_id = t.id AND mk.keyword_id = k.id AND k.keyword = 'kw_0'"
  with
  | Ok q ->
    check Alcotest.int "three rels" 3 (Query.n_rels q);
    check Alcotest.int "two edges" 2 (List.length q.Query.edges);
    check Alcotest.int "one pred" 1 (List.length q.Query.preds)
  | Error msg -> Alcotest.fail msg

let test_binder_unknown_alias () =
  match bind "SELECT COUNT(*) FROM title AS t WHERE zz.id = 1" with
  | Error msg -> check Alcotest.bool "mentions alias" true (msg = "unknown alias zz")
  | Ok _ -> Alcotest.fail "bound bad alias"

let test_binder_unknown_column () =
  match bind "SELECT COUNT(*) FROM title AS t WHERE t.nope = 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bound bad column"

let test_binder_duplicate_alias () =
  match bind "SELECT COUNT(*) FROM title AS t, keyword AS t" with
  | Error msg -> check Alcotest.string "dup" "duplicate alias t" msg
  | Ok _ -> Alcotest.fail "bound duplicate alias"

let test_binder_string_join_rejected () =
  match
    bind
      "SELECT COUNT(*) FROM title AS t, name AS n WHERE t.title = n.name"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bound string join"

let test_like_shapes () =
  let shape pat =
    match Binder.like_shape pat with Ok p -> p | Error e -> Alcotest.fail e
  in
  (match shape "%x%" with
   | Predicate.Like (Predicate.Contains "x") -> ()
   | _ -> Alcotest.fail "contains");
  (match shape "x%" with
   | Predicate.Like (Predicate.Prefix "x") -> ()
   | _ -> Alcotest.fail "prefix");
  (match shape "%x" with
   | Predicate.Like (Predicate.Suffix "x") -> ()
   | _ -> Alcotest.fail "suffix");
  (match shape "x" with
   | Predicate.Cmp (Predicate.Eq, Value.Str "x") -> ()
   | _ -> Alcotest.fail "plain");
  check Alcotest.bool "interior rejected" true
    (Result.is_error (Binder.like_shape "a%b"))

(* ---- Unparse roundtrip ---- *)

let test_unparse_roundtrip () =
  let catalog = catalog () in
  let sql =
    "SELECT MIN(t.title) FROM title AS t, movie_keyword AS mk, keyword AS k \
     WHERE mk.movie_id = t.id AND mk.keyword_id = k.id \
     AND k.keyword = 'kw_0' AND t.production_year > 2000"
  in
  let q1 =
    match Binder.bind catalog ~name:"q" (Parser.parse sql) with
    | Ok q -> q
    | Error e -> Alcotest.fail e
  in
  let rendered = Unparse.query catalog q1 in
  let q2 =
    match Binder.bind catalog ~name:"q" (Parser.parse rendered) with
    | Ok q -> q
    | Error e -> Alcotest.fail ("reparse: " ^ e)
  in
  check Alcotest.bool "structurally equal" true (q1 = q2)

(* Unparse -> Parser -> Binder must be the identity on bound queries:
   anything less means the SQL we display is not the query we run. *)
let roundtrip_exactly catalog (q : Query.t) =
  let rendered = Unparse.query catalog q in
  match Binder.bind catalog ~name:q.Query.name (Parser.parse rendered) with
  | Ok q2 ->
    if q <> q2 then
      Alcotest.failf "roundtrip changed %s:\n%s" q.Query.name rendered
  | Error e -> Alcotest.fail (q.Query.name ^ ": " ^ e)

let test_unparse_all_job_queries_roundtrip () =
  let catalog = catalog () in
  List.iter (roundtrip_exactly catalog) (Rdb_imdb.Job_queries.all catalog)

let test_unparse_reopt_rewrites_roundtrip () =
  (* Every query the re-optimizer rewrites mid-flight must round-trip too,
     with its temp table substituted — the paper's Figure 6 display is
     only honest if the rewritten SQL re-binds to the rewritten query. *)
  let module Session = Rdb_core.Session in
  let module Reopt = Rdb_core.Reopt in
  let module Trigger = Rdb_core.Trigger in
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale:0.02 () in
  let session = Session.create catalog in
  Session.analyze session;
  let steps_seen = ref 0 in
  List.iter
    (fun q ->
      let outcome =
        Reopt.run ~work_budget:50_000_000 ~cleanup:false session
          ~trigger:(Trigger.create 8.0) ~mode:Rdb_card.Estimator.Default q
      in
      List.iter
        (fun (s : Reopt.step) ->
          incr steps_seen;
          roundtrip_exactly catalog s.Reopt.query_after)
        outcome.Reopt.steps;
      List.iter
        (fun (s : Reopt.step) ->
          Catalog.drop_table catalog s.Reopt.temp_name;
          Rdb_stats.Db_stats.drop (Session.stats session)
            ~table:s.Reopt.temp_name)
        outcome.Reopt.steps)
    (Rdb_imdb.Job_queries.all catalog);
  check Alcotest.bool "rewrites exercised" true (!steps_seen > 10)


let test_parser_aggregates () =
  let stmt =
    Parser.parse
      "SELECT MAX(t.production_year), SUM(t.id), COUNT(t.kind_id), MIN(t.title) FROM title AS t"
  in
  (match stmt.Ast.select with
   | [ Ast.S_max _; Ast.S_sum _; Ast.S_count _; Ast.S_min _ ] -> ()
   | _ -> Alcotest.fail "aggregate list not parsed")

let test_binder_aggregates_and_exec () =
  let catalog = catalog () in
  let sql =
    "SELECT COUNT(*), COUNT(t.id), MIN(t.production_year), \
     MAX(t.production_year), SUM(t.kind_id) FROM title AS t, kind_type AS kt \
     WHERE t.kind_id = kt.id AND kt.kind = 'movie'"
  in
  match Binder.bind catalog ~name:"aggq" (Parser.parse sql) with
  | Error e -> Alcotest.fail e
  | Ok q ->
    let session = Rdb_core.Session.create catalog in
    Rdb_core.Session.analyze session;
    let prepared = Rdb_core.Session.prepare session q in
    let plan, _, _ =
      Rdb_core.Session.plan prepared ~mode:Rdb_card.Estimator.Default
    in
    let res = Rdb_core.Session.execute prepared plan in
    (match res.Rdb_exec.Executor.aggs with
     | [ Value.Int count; Value.Int count_id; Value.Int mn; Value.Int mx;
         Value.Int sum ] ->
       check Alcotest.int "counts agree" count count_id;
       check Alcotest.bool "min <= max" true (mn <= mx);
       (* every surviving row has kind_id = 1 ('movie') *)
       check Alcotest.int "sum of kind ids" count sum
     | _ -> Alcotest.fail "unexpected aggregate shapes")

let test_binder_sum_requires_int () =
  match
    bind "SELECT SUM(t.title) FROM title AS t"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "SUM over string accepted"

let () =
  Alcotest.run "rdb_sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "numbers and ops" `Quick test_lexer_numbers_ops;
          Alcotest.test_case "case-insensitive keywords" `Quick
            test_lexer_case_insensitive_keywords;
          Alcotest.test_case "lex error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic statement" `Quick test_parser_basic;
          Alcotest.test_case "no where" `Quick test_parser_no_where;
          Alcotest.test_case "null tests" `Quick test_parser_is_null;
          Alcotest.test_case "rejects malformed" `Quick test_parser_errors;
          Alcotest.test_case "aggregates" `Quick test_parser_aggregates;
        ] );
      ( "binder",
        [
          Alcotest.test_case "binds valid query" `Quick test_binder_ok;
          Alcotest.test_case "unknown alias" `Quick test_binder_unknown_alias;
          Alcotest.test_case "unknown column" `Quick test_binder_unknown_column;
          Alcotest.test_case "duplicate alias" `Quick test_binder_duplicate_alias;
          Alcotest.test_case "string join rejected" `Quick
            test_binder_string_join_rejected;
          Alcotest.test_case "like shapes" `Quick test_like_shapes;
          Alcotest.test_case "aggregates bind and execute" `Quick
            test_binder_aggregates_and_exec;
          Alcotest.test_case "SUM requires int" `Quick test_binder_sum_requires_int;
        ] );
      ( "unparse",
        [
          Alcotest.test_case "roundtrip" `Quick test_unparse_roundtrip;
          Alcotest.test_case "all JOB queries roundtrip" `Quick
            test_unparse_all_job_queries_roundtrip;
          Alcotest.test_case "reopt rewrites roundtrip" `Quick
            test_unparse_reopt_rewrites_roundtrip;
        ] );
    ]
