module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Plan = Rdb_plan.Plan
module Executor = Rdb_exec.Executor

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* A two-table playground: left(id, k) and right(id, k), joined on k, with
   plans constructed by hand so each join algorithm is forced. *)

let db_of (left_cells : (int * int) list) (right_cells : (int * int) list) =
  let schema =
    Schema.make
      [
        { Schema.name = "id"; ty = Value.Ty_int };
        { Schema.name = "k"; ty = Value.Ty_int };
      ]
  in
  let cat = Catalog.create () in
  let add name cells =
    Catalog.add_table cat
      (Table.create ~name ~schema
         [|
           Column.Ints (Array.of_list (List.map fst cells));
           Column.Ints (Array.of_list (List.map snd cells));
         |])
  in
  add "left" left_cells;
  add "right" right_cells;
  Catalog.add_index cat ~table:"right" ~col:1;
  cat

let join_query ?(preds = []) () =
  let colref rel col = { Query.rel; col } in
  {
    Query.name = "j";
    rels =
      [|
        { Query.alias = "l"; table = "left" };
        { Query.alias = "r"; table = "right" };
      |];
    preds;
    edges = [ { Query.l = colref 0 1; r = colref 1 1 } ];
    select = [ Query.Count_star; Query.Min_col (colref 0 0) ];
  }

let scan rel est =
  Plan.Scan { Plan.scan_rel = rel; access = Plan.Seq_scan; scan_est = est; scan_cost = 1.0 }

let join algo (q : Query.t) =
  Plan.Join
    {
      Plan.algo;
      outer = scan 0 1.0;
      inner = scan 1 1.0;
      join_est = 1.0;
      join_cost = 1.0;
      join_edges = q.Query.edges;
    }

let naive_join_count left_cells right_cells =
  List.fold_left
    (fun acc (_, lk) ->
      acc
      + List.length (List.filter (fun (_, rk) -> rk = lk && lk <> Column.null_int) right_cells))
    0 left_cells

let run_with algo left_cells right_cells =
  let cat = db_of left_cells right_cells in
  let q = join_query () in
  Executor.execute ~catalog:cat ~query:q (join algo q)

let cells_gen =
  QCheck.(
    pair
      (small_list (pair (int_range 0 100) (int_range 0 10)))
      (small_list (pair (int_range 0 100) (int_range 0 10))))

let prop_join_algorithms_agree =
  QCheck.Test.make ~name:"hash = NL = index-NL = merge = naive count" ~count:300
    cells_gen (fun (l, r) ->
      let expected = naive_join_count l r in
      let rows algo = (run_with algo l r).Executor.out_rows in
      rows Plan.Hash_join = expected
      && rows Plan.Nested_loop = expected
      && rows Plan.Merge_join = expected
      && rows (Plan.Index_nl { inner_col = 1 }) = expected)

let prop_join_null_keys_never_match =
  QCheck.Test.make ~name:"NULL keys never join" ~count:100
    QCheck.(small_list (int_range 0 5))
    (fun ks ->
      let l = List.mapi (fun i k -> (i, if k = 0 then Column.null_int else k)) ks in
      let r = [ (1, Column.null_int); (2, 1); (3, 2) ] in
      let expected = naive_join_count l r in
      (run_with Plan.Hash_join l r).Executor.out_rows = expected)

let test_aggregates () =
  let l = [ (10, 1); (20, 1); (30, 2) ] in
  let r = [ (1, 1); (2, 9) ] in
  let res = run_with Plan.Hash_join l r in
  (match res.Executor.aggs with
   | [ Value.Int count; Value.Int min_id ] ->
     check Alcotest.int "count" 2 count;
     check Alcotest.int "min l.id among matches" 10 min_id
   | _ -> Alcotest.fail "unexpected aggregates");
  let empty = run_with Plan.Hash_join [ (1, 5) ] [ (1, 6) ] in
  (match empty.Executor.aggs with
   | [ Value.Int 0; Value.Null ] -> ()
   | _ -> Alcotest.fail "empty join aggregates")

let test_scan_predicates () =
  let cat = db_of [ (1, 1); (2, 2); (3, 1) ] [ (9, 1) ] in
  let q =
    join_query
      ~preds:
        [
          {
            Query.target = { Query.rel = 0; col = 0 };
            p = Predicate.Cmp (Predicate.Ge, Value.Int 2);
          };
        ]
      ()
  in
  let res = Executor.execute ~catalog:cat ~query:q (join Plan.Hash_join q) in
  check Alcotest.int "filtered join" 1 res.Executor.out_rows

let test_index_scan_access () =
  let cat = db_of [ (1, 1) ] [ (1, 3); (2, 3); (3, 4) ] in
  let q =
    {
      (join_query ()) with
      Query.preds =
        [
          {
            Query.target = { Query.rel = 1; col = 1 };
            p = Predicate.Cmp (Predicate.Eq, Value.Int 3);
          };
        ];
    }
  in
  let plan =
    Plan.Scan
      {
        Plan.scan_rel = 1;
        access = Plan.Index_scan { col = 1; key = 3 };
        scan_est = 1.0;
        scan_cost = 1.0;
      }
  in
  (* single-relation "query" for the scan: use rel 1 only via a count *)
  let q1 =
    {
      q with
      Query.rels = [| { Query.alias = "r"; table = "right" } |];
      preds =
        [
          {
            Query.target = { Query.rel = 0; col = 1 };
            p = Predicate.Cmp (Predicate.Eq, Value.Int 3);
          };
        ];
      edges = [];
      select = [ Query.Count_star ];
    }
  in
  let plan =
    match plan with
    | Plan.Scan s -> Plan.Scan { s with Plan.scan_rel = 0 }
    | p -> p
  in
  let res = Executor.execute ~catalog:cat ~query:q1 plan in
  check Alcotest.int "index scan rows" 2 res.Executor.out_rows

let test_observations () =
  let l = [ (1, 1); (2, 1) ] and r = [ (1, 1) ] in
  let res = run_with Plan.Hash_join l r in
  check Alcotest.int "three observations" 3 (List.length res.Executor.observations);
  let join_obs =
    List.find
      (fun (o : Executor.node_obs) -> Relset.cardinal o.Executor.obs_set = 2)
      res.Executor.observations
  in
  check Alcotest.int "join actual" 2 join_obs.Executor.obs_actual

let test_work_budget () =
  let l = List.init 1000 (fun i -> (i, 1)) in
  let r = List.init 1000 (fun i -> (i, 1)) in
  let cat = db_of l r in
  let q = join_query () in
  (try
     ignore
       (Executor.execute ~work_budget:100 ~catalog:cat ~query:q
          (join Plan.Nested_loop q));
     Alcotest.fail "expected budget exhaustion"
   with Executor.Work_budget_exceeded { spent; _ } ->
     check Alcotest.bool "spent beyond budget" true (spent > 100));
  (* without budget it completes *)
  let res = Executor.execute ~catalog:cat ~query:q (join Plan.Hash_join q) in
  check Alcotest.int "million rows" 1_000_000 res.Executor.out_rows

let test_work_deterministic () =
  let l = List.init 100 (fun i -> (i, i mod 5)) in
  let r = List.init 50 (fun i -> (i, i mod 5)) in
  let w1 = (run_with Plan.Hash_join l r).Executor.work in
  let w2 = (run_with Plan.Hash_join l r).Executor.work in
  check Alcotest.int "work deterministic" w1 w2

let test_materialize () =
  let cat = db_of [ (1, 1); (2, 2) ] [ (7, 1); (8, 1) ] in
  let q = join_query () in
  let mat =
    Executor.materialize ~catalog:cat ~query:q
      ~cols:[ { Query.rel = 0; col = 0 }; { Query.rel = 1; col = 0 } ]
      (join Plan.Hash_join q)
  in
  check Alcotest.int "two rows" 2 (List.length mat.Executor.mat_rows);
  List.iter
    (fun row ->
      check Alcotest.int "width" 2 (Array.length row);
      check Alcotest.bool "l.id is 1" true (Value.equal row.(0) (Value.Int 1)))
    mat.Executor.mat_rows

let test_deadline_checked_early () =
  (* Regression: the wall-clock deadline used to be consulted only every
     4M work units, so an expired deadline let cheap-but-slow plans run
     on. The check now starts after ~1k units and backs off
     geometrically. *)
  let l = List.init 3_000 (fun i -> (i, 1)) in
  let r = List.init 3_000 (fun i -> (i, 2)) in
  let cat = db_of l r in
  let q = join_query () in
  (try
     (* an already-expired deadline: scanning 3k rows crosses the initial
        1k-unit stride, where the clock is read and the run aborts *)
     ignore
       (Executor.execute ~deadline_ms:0.0 ~catalog:cat ~query:q
          (join Plan.Hash_join q));
     Alcotest.fail "expected deadline abort"
   with Executor.Work_budget_exceeded { spent; _ } ->
     check Alcotest.bool "aborted long before 4M units" true (spent < 100_000));
  (* plans cheaper than the initial stride never reach a clock check *)
  let tiny = db_of [ (1, 1) ] [ (2, 1) ] in
  let res =
    Executor.execute ~deadline_ms:0.0 ~catalog:tiny ~query:q
      (join Plan.Hash_join q)
  in
  check Alcotest.int "tiny plan completes" 1 res.Executor.out_rows;
  (* and a generous deadline does not fire on the big join either *)
  let res =
    Executor.execute ~deadline_ms:60_000.0 ~catalog:cat ~query:q
      (join Plan.Hash_join q)
  in
  check Alcotest.int "generous deadline completes" 0 res.Executor.out_rows

let test_observations_complete_and_true () =
  (* every plan node reports exactly one observation, and each actual
     matches the brute-force oracle's count for the node's relation set *)
  let module Naive = Rdb_exec.Naive in
  let l = List.init 40 (fun i -> (i, i mod 7)) in
  let r = List.init 25 (fun i -> (i, i mod 5)) in
  let cat = db_of l r in
  let q = join_query () in
  let plan = join Plan.Hash_join q in
  let res = Executor.execute ~catalog:cat ~query:q plan in
  let rec node_sets acc = function
    | Plan.Scan _ as node -> Plan.rel_set node :: acc
    | Plan.Join j as node ->
      Plan.rel_set node :: node_sets (node_sets acc j.Plan.outer) j.Plan.inner
  in
  let sets = node_sets [] plan in
  check Alcotest.int "one observation per node" (List.length sets)
    (List.length res.Executor.observations);
  List.iter
    (fun set ->
      match
        List.filter
          (fun (o : Executor.node_obs) -> Relset.equal o.Executor.obs_set set)
          res.Executor.observations
      with
      | [ o ] ->
        check Alcotest.int
          (Printf.sprintf "actual of {%s} matches oracle"
             (String.concat "," (List.map string_of_int (Relset.to_list set))))
          (Naive.count ~catalog:cat q set)
          o.Executor.obs_actual
      | obs ->
        Alcotest.failf "expected exactly one observation, got %d"
          (List.length obs))
    sets;
  match Naive.agrees ~catalog:cat q res with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_adaptive_switch_observed () =
  (* outer blows through its estimate 8x -> nested loop demoted to hash
     join; the demotion increments [switches] and the observation carries
     the executed operator's name *)
  let l = List.init 100 (fun i -> (i, i mod 3)) in
  let r = List.init 100 (fun i -> (i, i mod 3)) in
  let cat = db_of l r in
  let q = join_query () in
  let plan = join Plan.Nested_loop q in
  (* the hand-built scans estimate 1.0 rows; the outer actually has 100 *)
  let adaptive = Executor.execute ~adaptive:true ~catalog:cat ~query:q plan in
  check Alcotest.int "one switch" 1 adaptive.Executor.switches;
  let join_label res =
    (List.find
       (fun (o : Executor.node_obs) -> Relset.cardinal o.Executor.obs_set = 2)
       res.Executor.observations)
      .Executor.obs_label
  in
  check Alcotest.string "demoted operator observed" "Hash Join"
    (join_label adaptive);
  let static = Executor.execute ~catalog:cat ~query:q plan in
  check Alcotest.int "no switch without --adaptive" 0 static.Executor.switches;
  check Alcotest.string "planned operator observed" "Nested Loop"
    (join_label static);
  check Alcotest.int "same result either way" adaptive.Executor.out_rows
    static.Executor.out_rows

(* Multi-edge join (composite key) correctness. *)
let test_multi_edge_join () =
  let schema =
    Schema.make
      [
        { Schema.name = "a"; ty = Value.Ty_int };
        { Schema.name = "b"; ty = Value.Ty_int };
      ]
  in
  let cat = Catalog.create () in
  let add name cells =
    Catalog.add_table cat
      (Table.create ~name ~schema
         [|
           Column.Ints (Array.of_list (List.map fst cells));
           Column.Ints (Array.of_list (List.map snd cells));
         |])
  in
  add "x" [ (1, 1); (1, 2); (2, 2) ];
  add "y" [ (1, 1); (1, 2); (2, 1) ];
  let colref rel col = { Query.rel; col } in
  let q =
    {
      Query.name = "multi";
      rels =
        [| { Query.alias = "x"; table = "x" }; { Query.alias = "y"; table = "y" } |];
      preds = [];
      edges =
        [
          { Query.l = colref 0 0; r = colref 1 0 };
          { Query.l = colref 0 1; r = colref 1 1 };
        ];
      select = [ Query.Count_star ];
    }
  in
  let plan algo =
    Plan.Join
      {
        Plan.algo;
        outer = scan 0 1.0;
        inner = scan 1 1.0;
        join_est = 1.0;
        join_cost = 1.0;
        join_edges = q.Query.edges;
      }
  in
  let hash = Executor.execute ~catalog:cat ~query:q (plan Plan.Hash_join) in
  let nl = Executor.execute ~catalog:cat ~query:q (plan Plan.Nested_loop) in
  let merge = Executor.execute ~catalog:cat ~query:q (plan Plan.Merge_join) in
  (* matches: (1,1) and (1,2) *)
  check Alcotest.int "hash composite" 2 hash.Executor.out_rows;
  check Alcotest.int "nl composite" 2 nl.Executor.out_rows;
  check Alcotest.int "merge composite" 2 merge.Executor.out_rows

let () =
  Alcotest.run "rdb_exec"
    [
      ( "joins",
        [
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "scan predicates" `Quick test_scan_predicates;
          Alcotest.test_case "index scan access" `Quick test_index_scan_access;
          Alcotest.test_case "multi-edge join" `Quick test_multi_edge_join;
          qtest prop_join_algorithms_agree;
          qtest prop_join_null_keys_never_match;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "observations" `Quick test_observations;
          Alcotest.test_case "observations complete + oracle-true" `Quick
            test_observations_complete_and_true;
          Alcotest.test_case "adaptive switch observed" `Quick
            test_adaptive_switch_observed;
          Alcotest.test_case "work budget" `Quick test_work_budget;
          Alcotest.test_case "deadline checked early" `Quick
            test_deadline_checked_early;
          Alcotest.test_case "work deterministic" `Quick test_work_deterministic;
          Alcotest.test_case "materialize" `Quick test_materialize;
        ] );
    ]
