module Relset = Rdb_util.Relset
module Query = Rdb_query.Query
module Predicate = Rdb_query.Predicate
module Join_graph = Rdb_query.Join_graph
module Estimator = Rdb_card.Estimator
module Cost_model = Rdb_cost.Cost_model
module Plan = Rdb_plan.Plan
module Dpccp = Rdb_plan.Dpccp
module Search_space = Rdb_plan.Search_space
module Optimizer = Rdb_plan.Optimizer
module Explain = Rdb_plan.Explain

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ---- random join-graph generator (shared with test_query style) ---- *)

let random_graph_query =
  let gen =
    QCheck.Gen.(
      int_range 2 8 >>= fun n ->
      let* extra =
        list_size (int_range 0 6) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      in
      let* tree_parents = flatten_l (List.init (n - 1) (fun i -> int_range 0 i)) in
      return (n, tree_parents, extra))
  in
  QCheck.make gen

let query_of_graph (n, tree_parents, extra) =
  let colref rel col = { Query.rel; col } in
  let tree_edges =
    List.mapi
      (fun i parent -> { Query.l = colref (i + 1) 0; r = colref parent 1 })
      tree_parents
  in
  let extra_edges =
    List.filter_map
      (fun (a, b) ->
        if a = b then None else Some { Query.l = colref a 0; r = colref b 1 })
      extra
  in
  {
    Query.name = "rand";
    rels =
      Array.init n (fun i -> { Query.alias = Printf.sprintf "r%d" i; table = "t" });
    preds = [];
    edges = tree_edges @ extra_edges;
    select = [ Query.Count_star ];
  }

(* ---- Dpccp ---- *)

let brute_pair_count q =
  let g = Join_graph.make q in
  let n = Query.n_rels q in
  let sets =
    List.filter
      (fun s -> Join_graph.is_connected g s)
      (List.init ((1 lsl n) - 1) (fun m ->
           Relset.of_list
             (List.filter (fun i -> (m + 1) land (1 lsl i) <> 0) (List.init n Fun.id))))
  in
  let count = ref 0 in
  List.iter
    (fun s1 ->
      List.iter
        (fun s2 ->
          if
            Relset.is_empty (Relset.inter s1 s2)
            && Relset.compare s1 s2 < 0
            && Query.edges_between q s1 s2 <> []
          then incr count)
        sets)
    sets;
  !count

let prop_dpccp_pair_count =
  QCheck.Test.make ~name:"DPccp count = brute force" ~count:60
    random_graph_query (fun spec ->
      let q = query_of_graph spec in
      let g = Join_graph.make q in
      Dpccp.count_pairs g = brute_pair_count q)

let prop_dpccp_pairs_valid =
  QCheck.Test.make ~name:"DPccp pairs connected, disjoint, linked" ~count:60
    random_graph_query (fun spec ->
      let q = query_of_graph spec in
      let g = Join_graph.make q in
      let ok = ref true in
      Dpccp.iter_pairs g (fun s1 s2 ->
          if
            not
              (Join_graph.is_connected g s1
               && Join_graph.is_connected g s2
               && Relset.is_empty (Relset.inter s1 s2)
               && Query.edges_between q s1 s2 <> [])
          then ok := false);
      !ok)

let prop_dpccp_no_duplicates =
  QCheck.Test.make ~name:"DPccp pairs unique" ~count:60 random_graph_query
    (fun spec ->
      let q = query_of_graph spec in
      let g = Join_graph.make q in
      let seen = Hashtbl.create 64 in
      let dup = ref false in
      Dpccp.iter_pairs g (fun s1 s2 ->
          let key =
            if Relset.compare s1 s2 < 0 then (s1, s2) else (s2, s1)
          in
          if Hashtbl.mem seen key then dup := true;
          Hashtbl.add seen key ());
      not !dup)

let test_dpccp_chain_counts () =
  (* Chain of n relations has n(n-1)(n+1)/6 csg-cmp pairs. *)
  let chain n =
    query_of_graph (n, List.init (n - 1) Fun.id, [])
  in
  List.iter
    (fun n ->
      let expected = n * (n - 1) * (n + 1) / 6 in
      check Alcotest.int
        (Printf.sprintf "chain %d" n)
        expected
        (Dpccp.count_pairs (Join_graph.make (chain n))))
    [ 2; 3; 5; 8 ]

let test_search_space_sorted () =
  let q = query_of_graph (6, [ 0; 0; 1; 2; 3 ], [ (4, 5) ]) in
  let g = Join_graph.make q in
  let space = Search_space.build g in
  let last = ref 0 in
  Search_space.iter space (fun s1 s2 ->
      let size = Relset.cardinal (Relset.union s1 s2) in
      if size < !last then Alcotest.fail "not sorted by union size";
      last := size);
  check Alcotest.int "count matches" (Dpccp.count_pairs g)
    (Search_space.n_pairs space)

(* ---- Optimizer on a concrete small database ---- *)

let small_db () =
  let schema cols = Schema.make cols in
  let int name = { Schema.name; ty = Value.Ty_int } in
  let cat = Catalog.create () in
  (* dim(id), fact(id, dim_id) with skewed dim_id *)
  let dim_n = 100 and fact_n = 2000 in
  Catalog.add_table cat
    (Table.create ~name:"dim" ~schema:(schema [ int "id" ])
       [| Column.Ints (Array.init dim_n (fun i -> i + 1)) |]);
  Catalog.add_table cat
    (Table.create ~name:"fact" ~schema:(schema [ int "id"; int "dim_id" ])
       [|
         Column.Ints (Array.init fact_n (fun i -> i + 1));
         Column.Ints (Array.init fact_n (fun i -> (i mod dim_n) + 1));
       |]);
  Catalog.add_index cat ~table:"dim" ~col:0;
  Catalog.add_index cat ~table:"fact" ~col:1;
  cat

let bind cat sql =
  match Rdb_sql.Binder.bind cat ~name:"q" (Rdb_sql.Parser.parse sql) with
  | Ok q -> q
  | Error e -> Alcotest.fail e

let plan_query cat q =
  let stats = Rdb_stats.Db_stats.create () in
  let catalog = cat in
  Rdb_stats.Analyze.all catalog stats;
  let estimator = Estimator.create ~mode:Estimator.Default ~catalog ~stats q in
  Optimizer.plan ~catalog ~estimator q

let test_optimizer_covers_all_relations () =
  let cat = small_db () in
  let q =
    bind cat "SELECT COUNT(*) FROM dim AS d, fact AS f WHERE f.dim_id = d.id"
  in
  let plan, stats = plan_query cat q in
  check Alcotest.bool "covers both" true
    (Relset.equal (Plan.rel_set plan) (Relset.full 2));
  check Alcotest.bool "considered pairs" true (stats.Optimizer.pairs_considered >= 1)

let test_optimizer_rejects_cartesian () =
  let cat = small_db () in
  let q = bind cat "SELECT COUNT(*) FROM dim AS d, fact AS f" in
  Alcotest.check_raises "cartesian"
    (Invalid_argument
       "Optimizer: join graph of q is disconnected (cartesian product); \
        components: {d} | {f}")
    (fun () -> ignore (plan_query cat q))

let test_optimizer_index_scan_for_selective_eq () =
  let cat = small_db () in
  let q =
    bind cat
      "SELECT COUNT(*) FROM dim AS d, fact AS f WHERE f.dim_id = d.id AND d.id = 7"
  in
  let plan, _ = plan_query cat q in
  let scans = Plan.scans plan in
  let dim_scan = List.find (fun s -> s.Plan.scan_rel = 0) scans in
  (match dim_scan.Plan.access with
   | Plan.Index_scan { key = 7; _ } -> ()
   | Plan.Index_scan _ | Plan.Seq_scan ->
     Alcotest.fail "expected index scan on dim.id = 7")

(* DP finds the cost-minimal plan: compare against exhaustive enumeration
   over all join orders/algorithms with the same cost model. *)
let exhaustive_best_cost ~catalog ~estimator (q : Query.t) =
  let cp = Cost_model.default in
  let graph = Join_graph.make q in
  let rec best s =
    if Relset.cardinal s = 1 then begin
      let rel = Relset.min_elt s in
      let table = Catalog.table_exn catalog q.Query.rels.(rel).Query.table in
      let preds = Query.preds_of_cols q rel in
      let seq =
        Cost_model.seq_scan cp
          ~rows:(float_of_int (Table.nrows table))
          ~npreds:(List.length preds)
      in
      let index_options =
        List.filter_map
          (fun (col, p) ->
            match p with
            | Predicate.Cmp (Predicate.Eq, Value.Int _)
              when Catalog.index catalog ~table:(Table.name table) ~col <> None ->
              let sel = Estimator.pred_selectivity estimator ~rel ~col p in
              let matches =
                Float.max 1.0 (Estimator.table_rows estimator rel *. sel)
              in
              Some (Cost_model.index_scan cp ~matches ~npreds:(List.length preds - 1))
            | _ -> None)
          preds
      in
      List.fold_left Float.min seq index_options
    end
    else begin
      let out = Estimator.card estimator s in
      let costs = ref infinity in
      Relset.iter_subsets s (fun s1 ->
          let s2 = Relset.diff s s1 in
          if
            (not (Relset.is_empty s2))
            && Join_graph.is_connected graph s1
            && Join_graph.is_connected graph s2
            && Query.edges_between q s1 s2 <> []
          then begin
            let c1 = best s1 and c2 = best s2 in
            let r1 = Estimator.card estimator s1
            and r2 = Estimator.card estimator s2 in
            let edges = Query.edges_between q s1 s2 in
            let hash = c1 +. c2 +. Cost_model.hash_join cp ~build:r2 ~probe:r1 ~out in
            let nl = c1 +. c2 +. Cost_model.nested_loop cp ~outer:r1 ~inner:r2 ~out in
            let merge = c1 +. c2 +. Cost_model.merge_join cp ~outer:r1 ~inner:r2 ~out in
            let inl =
              if Relset.cardinal s2 = 1 then begin
                let inner_rel = Relset.min_elt s2 in
                let tname = q.Query.rels.(inner_rel).Query.table in
                let indexed =
                  List.exists
                    (fun e ->
                      Catalog.index catalog ~table:tname ~col:e.Query.r.Query.col
                      <> None)
                    edges
                in
                if indexed then
                  let npreds =
                    List.length (Query.preds_of q inner_rel) + List.length edges - 1
                  in
                  [ c1 +. Cost_model.index_nested_loop cp ~outer:r1 ~out ~npreds ]
                else []
              end
              else []
            in
            List.iter (fun c -> if c < !costs then costs := c) (hash :: nl :: merge :: inl)
          end);
      !costs
    end
  in
  best (Relset.full (Query.n_rels q))

let test_optimizer_optimal_vs_exhaustive () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale:0.02 () in
  let stats = Rdb_stats.Db_stats.create () in
  Rdb_stats.Analyze.all catalog stats;
  List.iter
    (fun name ->
      let q = Rdb_imdb.Job_queries.find catalog name in
      let estimator = Estimator.create ~mode:Estimator.Default ~catalog ~stats q in
      let plan, _ = Optimizer.plan ~catalog ~estimator q in
      let exhaustive = exhaustive_best_cost ~catalog ~estimator q in
      check (Alcotest.float 0.001) (name ^ " optimal") exhaustive (Plan.cost plan))
    [ "1a"; "1b"; "2a"; "3b"; "4a"; "5c"; "6d" ]

let test_best_cost_of_sets_exposes_dp () =
  let cat = small_db () in
  let q =
    bind cat "SELECT COUNT(*) FROM dim AS d, fact AS f WHERE f.dim_id = d.id"
  in
  let stats = Rdb_stats.Db_stats.create () in
  Rdb_stats.Analyze.all cat stats;
  let estimator = Estimator.create ~mode:Estimator.Default ~catalog:cat ~stats q in
  let lookup = Optimizer.best_cost_of_sets ~catalog:cat ~estimator q in
  check Alcotest.bool "singleton present" true (lookup (Relset.of_list [ 0 ]) <> None);
  check Alcotest.bool "full present" true (lookup (Relset.full 2) <> None);
  check Alcotest.bool "disconnected absent" true (lookup Relset.empty = None)

(* ---- Explain ---- *)

let test_explain_renders () =
  let cat = small_db () in
  let q =
    bind cat
      "SELECT COUNT(*) FROM dim AS d, fact AS f WHERE f.dim_id = d.id AND d.id = 3"
  in
  let plan, _ = plan_query cat q in
  let text = Explain.render q plan in
  check Alcotest.bool "mentions scan" true (String.length text > 20);
  let with_actuals = Explain.render ~actuals:(fun _ -> Some 42) q plan in
  check Alcotest.bool "longer with actuals" true
    (String.length with_actuals > String.length text)

let () =
  Alcotest.run "rdb_plan"
    [
      ( "dpccp",
        [
          Alcotest.test_case "chain counts" `Quick test_dpccp_chain_counts;
          qtest prop_dpccp_pair_count;
          qtest prop_dpccp_pairs_valid;
          qtest prop_dpccp_no_duplicates;
        ] );
      ( "search_space",
        [ Alcotest.test_case "sorted by union size" `Quick test_search_space_sorted ] );
      ( "optimizer",
        [
          Alcotest.test_case "covers all relations" `Quick
            test_optimizer_covers_all_relations;
          Alcotest.test_case "rejects cartesian" `Quick test_optimizer_rejects_cartesian;
          Alcotest.test_case "index scan for selective eq" `Quick
            test_optimizer_index_scan_for_selective_eq;
          Alcotest.test_case "optimal vs exhaustive" `Slow
            test_optimizer_optimal_vs_exhaustive;
          Alcotest.test_case "exposes DP table" `Quick test_best_cost_of_sets_exposes_dp;
        ] );
      ( "explain",
        [ Alcotest.test_case "renders" `Quick test_explain_renders ] );
    ]
