(* The source-level concurrency analyzer must catch each seeded mutant
   class — unguarded access, domain capture, blocking under a lock,
   lock-order cycles and declared-order violations, stale/missing
   annotations, @requires contract breaches — and stay silent on the
   repo's own annotated tree. *)

module Srclint = Rdb_srclint.Srclint
module Finding = Rdb_analysis.Finding

let check = Alcotest.check

(* ---- harness: analyze an in-memory synthetic tree ---- *)

let tmp_counter = ref 0

let write_tree sources =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "srclint_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.map
    (fun (name, src) ->
      let p = Filename.concat dir name in
      let oc = open_out p in
      output_string oc src;
      close_out oc;
      p)
    sources

let analyze sources =
  Srclint.analyze_files ~registry:[] (write_tree sources)

let codes report =
  List.map (fun (i : Srclint.item) -> i.finding.Finding.code) report.Srclint.items

let error_codes report =
  List.map
    (fun (i : Srclint.item) -> i.finding.Finding.code)
    (Srclint.errors report)

let has code report = List.mem code (codes report)

let assert_flags name code sources =
  let r = analyze sources in
  check Alcotest.bool
    (Printf.sprintf "%s: %s flagged (got: %s)" name code
       (String.concat ", " (codes r)))
    true (has code r);
  check Alcotest.int (name ^ ": exit code") 1 (Srclint.exit_code r)

(* ---- seeded mutants ---- *)

let mutant_unguarded_write () =
  assert_flags "unguarded write" "src-unguarded-access"
    [ ( "m.ml",
        {|
let mu = Mutex.create ()

(* @guarded_by mu *)
let counter = ref 0

let bump () = counter := !counter + 1
|} ) ]

let mutant_read_outside_lock () =
  (* the write is properly locked; a later bare read still races *)
  assert_flags "guarded read outside lock" "src-unguarded-access"
    [ ( "m.ml",
        {|
type t = { mu : Mutex.t; (* @guarded_by mu *) mutable n : int }

let set t v =
  Mutex.lock t.mu;
  t.n <- v;
  Mutex.unlock t.mu

let peek t = t.n
|} ) ]

let mutant_domain_capture () =
  assert_flags "capture into Pool.submit" "src-domain-capture"
    [ ( "m.ml",
        {|
let mu = Mutex.create ()

(* @guarded_by mu *)
let shared = Hashtbl.create 8

let leak pool =
  Rdb_util.Pool.submit pool (fun () -> Hashtbl.length shared)
|} ) ]

let mutant_cross_module_cycle () =
  (* m_one holds its own lock while calling into m_two, and vice versa:
     the acquisition cycle m_one.a -> m_two.c -> m_one.a spans both
     files and is only visible through the call summaries *)
  let r =
    analyze
      [ ( "m_one.ml",
          {|
let a = Mutex.create ()

let poke_a () =
  Mutex.lock a;
  Mutex.unlock a

let one_then_two () =
  Mutex.lock a;
  M_two.poke_c ();
  Mutex.unlock a
|} );
        ( "m_two.ml",
          {|
let c = Mutex.create ()

let poke_c () =
  Mutex.lock c;
  Mutex.unlock c

let two_then_one () =
  Mutex.lock c;
  M_one.poke_a ();
  Mutex.unlock c
|} )
      ]
  in
  check Alcotest.bool
    (Printf.sprintf "cross-module cycle flagged (got: %s)"
       (String.concat ", " (codes r)))
    true
    (has "src-lock-order-cycle" r);
  check Alcotest.int "cycle exit code" 1 (Srclint.exit_code r)

let mutant_blocking_under_lock () =
  assert_flags "Unix.read under lock" "src-blocking-under-lock"
    [ ( "m.ml",
        {|
let mu = Mutex.create ()

let slurp fd buf =
  Mutex.lock mu;
  let n = Unix.read fd buf 0 (Bytes.length buf) in
  Mutex.unlock mu;
  n
|} ) ]

let mutant_stale_annotation () =
  assert_flags "stale annotation" "src-stale-annotation"
    [ ( "m.ml",
        {|
(* @guarded_by renamed_away *)
let orphan = ref 0
|} ) ]

let mutant_declared_order_violation () =
  assert_flags "declared-order violation" "src-lock-order-violation"
    [ ( "m.ml",
        {|
(* @lock_order a < b *)
let a = Mutex.create ()
let b = Mutex.create ()

let backwards () =
  Mutex.lock b;
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock b
|} ) ]

let mutant_condition_wait () =
  assert_flags "Condition.wait without the mutex" "src-condition-wait"
    [ ( "m.ml",
        {|
let mu = Mutex.create ()
let cond = Condition.create ()

let broken_wait () = Condition.wait cond mu
|} ) ]

let mutant_requires_violation () =
  assert_flags "@requires breached" "src-requires-violation"
    [ ( "m.ml",
        {|
let mu = Mutex.create ()

(* @guarded_by mu *)
let items = ref []

(* @requires mu *)
let push_locked x = items := x :: !items

let push x = push_locked x
|} ) ]

let mutant_unknown_directive () =
  assert_flags "directive typo" "src-bad-annotation"
    [ ( "m.ml",
        {|
let mu = Mutex.create ()

(* @guardedby mu *)
let n = ref 0
|} ) ]

(* ---- non-findings: the analyzer must stay silent on sound patterns ---- *)

let clean_patterns () =
  let r =
    analyze
      [ ( "m.ml",
          {|
let mu = Mutex.create ()

(* @guarded_by mu *)
let counter = ref 0

let locked_bump () =
  Mutex.lock mu;
  incr counter;
  Mutex.unlock mu

let protected_bump () = Mutex.protect mu (fun () -> incr counter)

(* @race_ok single-threaded setup before any domain is spawned *)
let init () = counter := 0

let raising_branch bad =
  Mutex.lock mu;
  if bad then begin
    Mutex.unlock mu;
    failwith "bad"
  end;
  incr counter;
  Mutex.unlock mu

let shadowed () =
  Mutex.lock mu;
  let counter = !counter in
  Mutex.unlock mu;
  counter + 1
|} ) ]
  in
  check
    Alcotest.(list string)
    (Printf.sprintf "no errors on sound patterns (got: %s)"
       (String.concat ", " (error_codes r)))
    [] (error_codes r);
  check Alcotest.int "clean exit code" 0 (Srclint.exit_code r)

let race_ok_is_scoped () =
  (* the suppression covers its own and the next line only *)
  let r =
    analyze
      [ ( "m.ml",
          {|
let mu = Mutex.create ()

(* @guarded_by mu *)
let counter = ref 0

(* @race_ok setup *)
let init () = counter := 0

let still_flagged () = counter := 1
|} ) ]
  in
  check Alcotest.int
    (Printf.sprintf "one access still flagged (got: %s)"
       (String.concat ", " (error_codes r)))
    1
    (List.length
       (List.filter (fun c -> c = "src-unguarded-access") (error_codes r)))

(* ---- the real tree ---- *)

let real_tree_root () =
  match Srclint.find_default_root () with
  | Some root -> root
  | None -> Alcotest.fail "cannot locate lib/ from the test runtime dir"

let real_tree_is_clean () =
  let r = Srclint.analyze_tree ~root:(real_tree_root ()) () in
  let errs =
    List.map
      (fun (i : Srclint.item) ->
        Printf.sprintf "%s:%d %s" i.file i.line (Finding.to_string i.finding))
      (Srclint.errors r)
  in
  check Alcotest.(list string) "zero errors on the annotated tree" [] errs;
  check Alcotest.int "clean tree exit code" 0 (Srclint.exit_code r)

let real_tree_inventory () =
  let r = Srclint.analyze_tree ~root:(real_tree_root ()) () in
  List.iter
    (fun l ->
      check Alcotest.bool (l ^ " registered as a lock") true
        (List.mem l r.Srclint.locks))
    [ "pool.mu"; "pool.fmu"; "plan_cache.mu"; "service.state_mu";
      "service.serial_mu"; "metrics.smu"; "metrics.registry_mu"; "trace.mu";
      "frontend.rmu" ];
  check Alcotest.bool "inline submission orders serial_mu before pool.mu" true
    (List.mem ("service.serial_mu", "pool.mu") r.Srclint.edges);
  check Alcotest.bool "cache hits bump metrics under the cache lock" true
    (List.mem ("plan_cache.mu", "metrics.smu") r.Srclint.edges)

let () =
  Alcotest.run "rdb_srclint"
    [
      ( "mutants",
        [
          Alcotest.test_case "unguarded write" `Quick mutant_unguarded_write;
          Alcotest.test_case "read outside lock" `Quick
            mutant_read_outside_lock;
          Alcotest.test_case "domain capture" `Quick mutant_domain_capture;
          Alcotest.test_case "cross-module cycle" `Quick
            mutant_cross_module_cycle;
          Alcotest.test_case "blocking under lock" `Quick
            mutant_blocking_under_lock;
          Alcotest.test_case "stale annotation" `Quick mutant_stale_annotation;
          Alcotest.test_case "declared-order violation" `Quick
            mutant_declared_order_violation;
          Alcotest.test_case "condition wait" `Quick mutant_condition_wait;
          Alcotest.test_case "requires violation" `Quick
            mutant_requires_violation;
          Alcotest.test_case "unknown directive" `Quick
            mutant_unknown_directive;
        ] );
      ( "clean",
        [
          Alcotest.test_case "sound patterns" `Quick clean_patterns;
          Alcotest.test_case "race_ok scope" `Quick race_ok_is_scoped;
        ] );
      ( "tree",
        [
          Alcotest.test_case "zero errors" `Quick real_tree_is_clean;
          Alcotest.test_case "lock inventory and edges" `Quick
            real_tree_inventory;
        ] );
    ]
