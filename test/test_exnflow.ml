(* The exception-flow analyzer must catch each seeded mutant class —
   leak-on-raise (fds, channels, held locks), spawn-escape, misplaced
   control-exception handlers, bare swallows, re-raises that drop cleanup,
   out-of-scope annotations — stay silent on the sound shapes
   (Fun.protect, Mutex.protect, @releases, branch-complete releases), and
   report zero errors on the repo's own annotated tree. The regression
   cases pin the real error-path bugs this analyzer surfaced. *)

module Srclint = Rdb_srclint.Srclint
module Exnflow = Rdb_srclint.Exnflow
module Finding = Rdb_analysis.Finding
module Session = Rdb_core.Session
module Reopt = Rdb_core.Reopt
module Trigger = Rdb_core.Trigger
module Estimator = Rdb_card.Estimator
module Executor = Rdb_exec.Executor
module Service = Rdb_server.Service
module Frontend = Rdb_server.Frontend
module Metrics = Rdb_obs.Metrics

let check = Alcotest.check

(* ---- harness: analyze an in-memory synthetic tree ---- *)

let tmp_counter = ref 0

let write_tree sources =
  incr tmp_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "exnflow_test_%d_%d" (Unix.getpid ()) !tmp_counter)
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.map
    (fun (name, src) ->
      let p = Filename.concat dir name in
      let oc = open_out p in
      output_string oc src;
      close_out oc;
      p)
    sources

let analyze ?(handlers = []) sources =
  Srclint.analyze_exnflow_files ~handlers ~pinned:[] (write_tree sources)

let codes r =
  List.map (fun (i : Srclint.item) -> i.finding.Finding.code) r.Srclint.xitems

let error_codes r =
  List.map
    (fun (i : Srclint.item) -> i.finding.Finding.code)
    (Srclint.exn_errors r)

let has code r = List.mem code (codes r)

let assert_flags ?handlers name code sources =
  let r = analyze ?handlers sources in
  check Alcotest.bool
    (Printf.sprintf "%s: %s flagged (got: %s)" name code
       (String.concat ", " (codes r)))
    true (has code r);
  check Alcotest.int (name ^ ": exit code") 1 (Srclint.exn_exit_code r)

(* ---- seeded mutants ---- *)

let mutant_leaked_fd () =
  (* fstat can raise Unix_error with the descriptor still open *)
  assert_flags "fd leaked on raise" "src-exn-leak"
    [ ( "m.ml",
        {|
let size path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let st = Unix.fstat fd in
  Unix.close fd;
  st.Unix.st_size
|} ) ]

let mutant_leaked_channel () =
  (* the missing-~finally shape: input_line raises Sys_error mid-body *)
  assert_flags "channel leaked on raise" "src-exn-leak"
    [ ( "m.ml",
        {|
let first_line path =
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  line
|} ) ]

let mutant_lock_across_raise () =
  assert_flags "lock held across raise" "src-exn-leak"
    [ ( "m.ml",
        {|
let mu = Mutex.create ()
let n = ref 0

let bump () =
  Mutex.lock mu;
  if !n < 0 then failwith "negative";
  incr n;
  Mutex.unlock mu
|} ) ]

let mutant_spawn_escape () =
  assert_flags "exception escapes Domain.spawn" "src-spawn-escape"
    [ ( "m.ml",
        {|
let boom () =
  let d = Domain.spawn (fun () -> failwith "die") in
  Domain.join d
|} ) ]

let mutant_control_exn_handler () =
  (* with an empty registry no file may consume a control exception *)
  assert_flags "control exception caught off-registry"
    "src-control-exn-handler"
    [ ( "m.ml",
        {|
let quiet f =
  try f () with Rdb_exec.Executor.Work_budget_exceeded _ -> ()
|} ) ]

let mutant_control_exn_handler_registered () =
  (* the same handler is legal at its registry-pinned site *)
  let r =
    analyze
      ~handlers:[ { Exnflow.hsuffix = "ok.ml"; hexns = [ "Work_budget_exceeded" ] } ]
      [ ( "ok.ml",
          {|
let quiet f =
  try f () with Rdb_exec.Executor.Work_budget_exceeded _ -> ()
|} ) ]
  in
  check
    Alcotest.(list string)
    (Printf.sprintf "registered handler site is clean (got: %s)"
       (String.concat ", " (error_codes r)))
    [] (error_codes r)

let mutant_bare_swallow () =
  assert_flags "catch-all swallow" "src-bare-swallow"
    [ ("m.ml", {|
let swallow f = try f () with _ -> ()
|}) ]

let mutant_reraise_drops_cleanup () =
  (* catching and re-raising is not releasing: the channel still leaks,
     but a re-raise is not a swallow *)
  let r =
    analyze
      [ ( "m.ml",
          {|
let head path =
  let ic = open_in path in
  try really_input_string ic 4
  with e -> raise e
|} ) ]
  in
  check Alcotest.bool
    (Printf.sprintf "re-raise still leaks (got: %s)"
       (String.concat ", " (codes r)))
    true (has "src-exn-leak" r);
  check Alcotest.bool "re-raise is not a bare swallow" false
    (has "src-bare-swallow" r)

let mutant_annotation_out_of_scope () =
  (* @cleanup_ok covers its own and the next line only: three lines above
     the acquisition it suppresses nothing *)
  assert_flags "@cleanup_ok too far from the acquisition" "src-exn-leak"
    [ ( "m.ml",
        {|
(* @cleanup_ok dropped by a caller that does not exist *)
let unrelated = 1

let leaky path =
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  line
|} ) ]

(* ---- non-findings: the analyzer must stay silent on sound shapes ---- *)

let clean_patterns () =
  let r =
    analyze
      [ ( "m.ml",
          {|
let mu = Mutex.create ()
let n = ref 0

let protected () = Mutex.protect mu (fun () -> incr n)

let unlock_on_both () =
  Mutex.lock mu;
  if !n < 0 then begin
    Mutex.unlock mu;
    failwith "negative"
  end;
  incr n;
  Mutex.unlock mu

let with_file path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let release_on_both_exits path =
  let ic = open_in path in
  match input_line ic with
  | line ->
    close_in ic;
    line
  | exception (End_of_file | Sys_error _) ->
    close_in ic;
    ""

let lookup tbl k = try Some (Hashtbl.find tbl k) with Not_found -> None

(* @swallow_ok test helper; nothing downstream depends on the outcome *)
let swallowed f = try f () with _ -> ()
|} ) ]
  in
  check
    Alcotest.(list string)
    (Printf.sprintf "no errors on sound shapes (got: %s)"
       (String.concat ", " (error_codes r)))
    [] (error_codes r);
  check Alcotest.int "clean exit code" 0 (Srclint.exn_exit_code r)

let clean_releases_annotation () =
  (* the helper's release is invisible to the heuristics: only the
     @releases contract keeps the caller clean *)
  let r =
    analyze
      [ ( "m.ml",
          {|
(* @releases ic *)
let hand_back ic = ignore ic

let use path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> hand_back ic) (fun () -> input_line ic)
|} ) ]
  in
  check
    Alcotest.(list string)
    (Printf.sprintf "@releases trusted in ~finally (got: %s)"
       (String.concat ", " (error_codes r)))
    [] (error_codes r)

(* ---- the real tree ---- *)

let real_tree_root () =
  match Srclint.find_default_root () with
  | Some root -> root
  | None -> Alcotest.fail "cannot locate lib/ from the test runtime dir"

let real_tree_is_clean () =
  let r = Srclint.analyze_exnflow_tree ~root:(real_tree_root ()) () in
  let errs =
    List.map
      (fun (i : Srclint.item) ->
        Printf.sprintf "%s:%d %s" i.file i.line (Finding.to_string i.finding))
      (Srclint.exn_errors r)
  in
  check Alcotest.(list string) "zero errors on the annotated tree" [] errs;
  check Alcotest.int "clean tree exit code" 0 (Srclint.exn_exit_code r)

let real_tree_inventory () =
  let r = Srclint.analyze_exnflow_tree ~root:(real_tree_root ()) () in
  let find name =
    match List.assoc_opt name r.Srclint.xsummaries with
    | Some s -> s
    | None -> Alcotest.failf "no summary for %s" name
  in
  let spend = find "executor.spend" in
  check Alcotest.bool "executor.spend raises Work_budget_exceeded" true
    (List.mem "Work_budget_exceeded" spend.Exnflow.si_raises);
  let await = find "pool.await" in
  check Alcotest.bool "pool.await re-raises arbitrary task exceptions" true
    await.Exnflow.si_any;
  (* the unlock-before-raise lives in [await]'s local [wait] loop; its
     summary is what keeps the lock-leak check quiet without annotations *)
  let wait = find "pool.wait" in
  check Alcotest.bool "pool.await's wait loop releases the future lock" true
    (List.mem "lock:pool.fmu" wait.Exnflow.si_releases);
  let hc = find "frontend.handle_connection" in
  check
    Alcotest.(list string)
    "handle_connection lets nothing escape its thread" []
    hc.Exnflow.si_raises;
  check Alcotest.bool "handle_connection has no unknown escapes" false
    hc.Exnflow.si_any

(* ---- regressions: the real error-path bugs this analyzer surfaced ---- *)

let make_session ?(scale = 0.02) () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~scale () in
  let session = Session.create catalog in
  Session.analyze session;
  (catalog, session)

(* An aborted [Reopt.run] must drop its temp tables even under
   [~cleanup:false]: the caller never learns the names of an aborted
   run's temps, so keeping them would strand catalog entries forever. *)
let regression_reopt_abort_drops_temps () =
  let run_abort ~cleanup =
    let catalog, session = make_session () in
    let tables_before = List.map Table.name (Catalog.tables catalog) in
    let q = Rdb_imdb.Job_queries.find catalog "6d" in
    (* calibrate: a full run tells us how much work the final execution
       needs; just under that aborts after the temps are materialized *)
    let outcome =
      Reopt.run session ~trigger:(Trigger.create 2.0) ~mode:Estimator.Default q
    in
    check Alcotest.bool "calibration run took a step" true
      (outcome.Reopt.steps <> []);
    (* the budget is per executor call; aim it just under the single
       biggest call so every earlier materialization (and its temp-table
       registration) completes before the abort *)
    let works =
      List.map (fun s -> s.Reopt.mat_work) outcome.Reopt.steps
      @ [ outcome.Reopt.final_exec.Executor.work ]
    in
    let biggest = List.fold_left max 0 works in
    let first_at_max =
      let rec go i = function
        | [] -> -1
        | w :: _ when w = biggest -> i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 works
    in
    check Alcotest.bool "abort lands after the first materialization" true
      (first_at_max > 0);
    let budget = biggest - 1 in
    let catalog2, session2 = make_session () in
    let q2 = Rdb_imdb.Job_queries.find catalog2 "6d" in
    (match
       Reopt.run session2 ~cleanup ~work_budget:budget
         ~trigger:(Trigger.create 2.0) ~mode:Estimator.Default q2
     with
    | _ -> Alcotest.fail "expected the budget to abort the run"
    | exception Executor.Work_budget_exceeded _ -> ());
    let tables_after = List.map Table.name (Catalog.tables catalog2) in
    check
      (Alcotest.list Alcotest.string)
      (Printf.sprintf "no temp tables stranded (cleanup=%b)" cleanup)
      tables_before tables_after
  in
  run_abort ~cleanup:true;
  run_abort ~cleanup:false

(* [Service.create] validates the cache capacity before spawning pool
   domains, so a bad config fails fast instead of stranding workers. *)
let regression_service_create_validates_before_spawn () =
  let _, session = make_session ~scale:0.01 () in
  let config = { Service.default_config with cache_capacity = 0; jobs = 2 } in
  Alcotest.check_raises "capacity validated first"
    (Invalid_argument "Plan_cache.create: capacity must be >= 1") (fun () ->
      ignore (Service.create ~config session))

(* A handler exception (here: the service shut down under a live
   connection) must answer ERR internal on the wire and close just that
   connection; the server keeps accepting and shuts down cleanly. *)

let free_port () =
  let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close s)
    (fun () ->
      Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      match Unix.getsockname s with
      | Unix.ADDR_INET (_, port) -> port
      | _ -> assert false)

let connect ~port =
  let rec go tries =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
    | () -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.close fd;
      Thread.delay 0.05;
      go (tries - 1)
  in
  go 40

let regression_frontend_handler_error () =
  let _, session = make_session ~scale:0.01 () in
  let service = Service.create session in
  let port = free_port () in
  let server = Thread.create (fun () -> Frontend.serve ~port service) () in
  let before = Metrics.snapshot () in
  (* first client arrives after the service is already shut down: its
     query raises inside the handler *)
  let fd = connect ~port in
  Service.shutdown service;
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  output_string oc "SELECT COUNT(*) FROM title t\n";
  flush oc;
  let reply = input_line ic in
  check Alcotest.bool
    (Printf.sprintf "handler error answered on the wire (got: %s)" reply)
    true
    (String.length reply >= 12 && String.sub reply 0 12 = "ERR internal");
  (* the handler then drops only this connection *)
  check Alcotest.bool "connection closed after the error" true
    (match input_line ic with
    | _ -> false
    | exception End_of_file -> true);
  Unix.close fd;
  (* the accept loop survived: a second client can still shut it down *)
  let fd2 = connect ~port in
  let ic2 = Unix.in_channel_of_descr fd2
  and oc2 = Unix.out_channel_of_descr fd2 in
  output_string oc2 "\\shutdown\n";
  flush oc2;
  check Alcotest.string "clean shutdown" "OK shutting down" (input_line ic2);
  (try Unix.close fd2 with Unix.Unix_error _ -> ());
  Thread.join server;
  let after = Metrics.snapshot () in
  check Alcotest.bool "handler error counted" true
    (Metrics.counter after "serve.handler_errors"
     > Metrics.counter before "serve.handler_errors")

let () =
  Alcotest.run "rdb_exnflow"
    [
      ( "mutants",
        [
          Alcotest.test_case "leaked fd" `Quick mutant_leaked_fd;
          Alcotest.test_case "leaked channel" `Quick mutant_leaked_channel;
          Alcotest.test_case "lock across raise" `Quick mutant_lock_across_raise;
          Alcotest.test_case "spawn escape" `Quick mutant_spawn_escape;
          Alcotest.test_case "control handler off-registry" `Quick
            mutant_control_exn_handler;
          Alcotest.test_case "control handler on-registry" `Quick
            mutant_control_exn_handler_registered;
          Alcotest.test_case "bare swallow" `Quick mutant_bare_swallow;
          Alcotest.test_case "re-raise drops cleanup" `Quick
            mutant_reraise_drops_cleanup;
          Alcotest.test_case "annotation out of scope" `Quick
            mutant_annotation_out_of_scope;
        ] );
      ( "clean",
        [
          Alcotest.test_case "sound shapes" `Quick clean_patterns;
          Alcotest.test_case "releases annotation" `Quick
            clean_releases_annotation;
        ] );
      ( "tree",
        [
          Alcotest.test_case "zero errors" `Quick real_tree_is_clean;
          Alcotest.test_case "summary inventory" `Quick real_tree_inventory;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "reopt abort drops temps" `Slow
            regression_reopt_abort_drops_temps;
          Alcotest.test_case "service create validates first" `Quick
            regression_service_create_validates_before_spawn;
          Alcotest.test_case "frontend handler error" `Quick
            regression_frontend_handler_error;
        ] );
    ]
