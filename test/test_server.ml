module Query = Rdb_query.Query
module Estimator = Rdb_card.Estimator
module Plan = Rdb_plan.Plan
module Session = Rdb_core.Session
module Service = Rdb_server.Service
module Plan_cache = Rdb_server.Plan_cache
module Cqnf = Rdb_verify.Cqnf
module Query_gen = Rdb_verify.Query_gen
module Metrics = Rdb_obs.Metrics
module Job = Rdb_imdb.Job_queries
module Prng = Rdb_util.Prng

let check = Alcotest.check

let make_session ?(scale = 0.01) ?(seed = 42) () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~seed ~scale () in
  let session = Session.create catalog in
  Session.analyze session;
  (catalog, session)

let make_service ?scale ?seed ?(config = Service.default_config) () =
  let catalog, session = make_session ?scale ?seed () in
  (catalog, Service.create ~config session)

(* Cold-path oracle: plan and execute on a plain session, no cache. *)
let cold_run session q =
  let prepared = Session.prepare session q in
  let plan, _, _ = Session.plan prepared ~mode:Estimator.Default in
  Session.execute prepared plan

let delta before after key = Metrics.counter after key - Metrics.counter before key

let values =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Value.to_string v))
    Value.equal

let ok_response name = function
  | Ok (r : Service.response) -> r
  | Error e -> Alcotest.failf "%s: unexpected error %s" name e

(* ---- satellite 1: the cache key is the semantic identity ---- *)

(* Alias renaming never changes the key: the canonical form is
   alias-invariant, and the fingerprint is injective on it. *)
let test_key_alias_invariant () =
  let catalog, _ = make_session () in
  List.iter
    (fun q ->
      let c = Cqnf.of_query ~catalog q in
      let c' = Cqnf.of_query ~catalog (Query_gen.rename_aliases q) in
      check Alcotest.bool (q.Query.name ^ " equal forms") true (Cqnf.equal c c');
      check Alcotest.string (q.Query.name ^ " same fingerprint")
        (Cqnf.fingerprint c) (Cqnf.fingerprint c'))
    (Job.all catalog)

(* Both directions, on the whole JOB workload and on random queries:
   fingerprints collide exactly when the canonical forms are equal. *)
let test_key_injective () =
  let catalog, _ = make_session () in
  let forms =
    List.map
      (fun q -> (q.Query.name, Cqnf.of_query ~catalog q))
      (Job.all catalog)
  in
  List.iter
    (fun (n1, c1) ->
      List.iter
        (fun (n2, c2) ->
          let fp_eq = String.equal (Cqnf.fingerprint c1) (Cqnf.fingerprint c2) in
          check Alcotest.bool
            (Printf.sprintf "%s vs %s: fingerprint eq iff form eq" n1 n2)
            (Cqnf.equal c1 c2) fp_eq)
        forms)
    forms;
  (* Random conjunctive queries: same property, fresh structures. *)
  let gen = Query_gen.create ~catalog in
  let prng = Prng.create 7 in
  let qs =
    List.init 40 (fun i -> Query_gen.gen gen prng ~name:(Printf.sprintf "g%d" i))
  in
  let forms = List.map (fun q -> Cqnf.of_query ~catalog q) qs in
  List.iteri
    (fun i c1 ->
      List.iteri
        (fun j c2 ->
          if i < j then
            check Alcotest.bool
              (Printf.sprintf "gen %d vs %d" i j)
              (Cqnf.equal c1 c2)
              (String.equal (Cqnf.fingerprint c1) (Cqnf.fingerprint c2)))
        forms)
    forms

(* A cache hit must be observationally identical to a cold execution:
   same aggregates, same feeding row count — for the original query and
   for an alias-renamed variant served from the same entry. *)
let test_hit_matches_cold () =
  let catalog, service = make_service () in
  let _, oracle_session = make_session () in
  let queries = [ "1a"; "2a"; "3b"; "4a" ] in
  List.iter
    (fun name ->
      let q = Job.find catalog name in
      let cold = cold_run oracle_session q in
      let miss = ok_response name (Service.query_bound service q) in
      check Alcotest.bool (name ^ " first is a miss") true
        (miss.Service.r_cached = Service.Miss);
      let hit = ok_response name (Service.query_bound service q) in
      check Alcotest.bool (name ^ " second is a hit") true
        (hit.Service.r_cached = Service.Hit);
      let variant =
        ok_response name
          (Service.query_bound service (Query_gen.rename_aliases q))
      in
      check Alcotest.bool (name ^ " variant is a hit") true
        (variant.Service.r_cached = Service.Hit);
      List.iter
        (fun (r : Service.response) ->
          check (Alcotest.list values) (name ^ " aggregates") cold.Rdb_exec.Executor.aggs
            r.Service.r_aggs;
          check Alcotest.int (name ^ " rows") cold.Rdb_exec.Executor.out_rows
            r.Service.r_rows)
        [ miss; hit; variant ];
      check (Alcotest.float 1e-9) (name ^ " hit skips planning") 0.0
        hit.Service.r_plan_ms)
    queries;
  Service.shutdown service

(* Hits must not touch the optimizer: plan.dp_pairs and plan.built stay
   flat across a warmed workload replay. *)
let test_hits_skip_dpccp () =
  let catalog, service = make_service () in
  let qs = List.filteri (fun i _ -> i < 12) (Job.all catalog) in
  List.iter (fun q -> ignore (Service.query_bound service q)) qs;
  let before = Metrics.snapshot () in
  List.iter
    (fun q ->
      let r = ok_response q.Query.name (Service.query_bound service q) in
      check Alcotest.bool (q.Query.name ^ " hit") true
        (r.Service.r_cached = Service.Hit))
    qs;
  let after = Metrics.snapshot () in
  check Alcotest.int "dp_pairs flat" 0 (delta before after "plan.dp_pairs");
  check Alcotest.int "no plans built" 0 (delta before after "plan.built");
  check Alcotest.int "all hits" (List.length qs) (delta before after "cache.hits");
  check Alcotest.int "no misses" 0 (delta before after "cache.misses");
  Service.shutdown service

(* Parse and bind failures produce Error responses and count neither a
   hit nor a miss. *)
let test_errors_counted_apart () =
  let _, service = make_service () in
  let before = Metrics.snapshot () in
  (match Service.query service "not even sql" with
   | Ok _ -> Alcotest.fail "parse failure expected"
   | Error _ -> ());
  (match Service.query service "SELECT COUNT(*) FROM no_such_table x;" with
   | Ok _ -> Alcotest.fail "bind failure expected"
   | Error _ -> ());
  let after = Metrics.snapshot () in
  check Alcotest.int "two errors" 2 (delta before after "serve.errors");
  check Alcotest.int "no hits" 0 (delta before after "cache.hits");
  check Alcotest.int "no misses" 0 (delta before after "cache.misses");
  Service.shutdown service

(* ---- LRU bound ---- *)

let test_lru_bound_and_eviction () =
  let config = { Service.default_config with cache_capacity = 4 } in
  let catalog, service = make_service ~config () in
  let qs = List.filteri (fun i _ -> i < 8) (Job.all catalog) in
  let before = Metrics.snapshot () in
  List.iter (fun q -> ignore (Service.query_bound service q)) qs;
  let after = Metrics.snapshot () in
  check Alcotest.int "size bounded" 4 (Plan_cache.size (Service.cache service));
  check Alcotest.int "evictions" 4 (delta before after "cache.evictions");
  (* The most recent query survived; the first was evicted. *)
  let last = List.nth qs 7 and first = List.nth qs 0 in
  let r = ok_response "last" (Service.query_bound service last) in
  check Alcotest.bool "most recent still cached" true
    (r.Service.r_cached = Service.Hit);
  let r = ok_response "first" (Service.query_bound service first) in
  check Alcotest.bool "oldest evicted" true (r.Service.r_cached = Service.Miss);
  Service.shutdown service

(* ---- satellite 2: concurrency stress with a serial differential oracle ---- *)

let test_stress_matches_serial_oracle () =
  let config = { Service.default_config with jobs = 4; cache_capacity = 64 } in
  let catalog, service = make_service ~config () in
  let workload =
    Array.of_list (List.filteri (fun i _ -> i < 16) (Job.all catalog))
  in
  (* Serial oracle, computed before any concurrency. *)
  let _, oracle_session = make_session () in
  let oracle =
    Array.map
      (fun q ->
        let r = cold_run oracle_session q in
        (r.Rdb_exec.Executor.aggs, r.Rdb_exec.Executor.out_rows))
      workload
  in
  let clients = 4 and per_client = 40 in
  let before = Metrics.snapshot () in
  let mismatches = Atomic.make 0 and errors = Atomic.make 0 in
  let client c =
    let prng = Prng.create (100 + c) in
    for _ = 1 to per_client do
      let i = Prng.int prng (Array.length workload) in
      let q = workload.(i) in
      let q = if Prng.bool prng then Query_gen.rename_aliases q else q in
      match Service.query_bound service q with
      | Error _ -> Atomic.incr errors
      | Ok r ->
        let want_aggs, want_rows = oracle.(i) in
        if
          not
            (List.equal Value.equal want_aggs r.Service.r_aggs
             && want_rows = r.Service.r_rows)
        then Atomic.incr mismatches
    done
  in
  let domains = List.init clients (fun c -> Domain.spawn (fun () -> client c)) in
  (* Concurrent stats refreshes while the clients hammer the cache: every
     refresh invalidates the whole cache and bumps the generation. *)
  for _ = 1 to 3 do
    Service.refresh_stats service ();
    Unix.sleepf 0.02
  done;
  List.iter Domain.join domains;
  let after = Metrics.snapshot () in
  check Alcotest.int "no errors" 0 (Atomic.get errors);
  check Alcotest.int "every response matches the serial oracle" 0
    (Atomic.get mismatches);
  let requests = clients * per_client in
  check Alcotest.int "hits + misses = requests" requests
    (delta before after "cache.hits" + delta before after "cache.misses");
  check Alcotest.int "requests counted" requests
    (delta before after "serve.requests");
  check Alcotest.bool "cache stayed bounded" true
    (Plan_cache.size (Service.cache service) <= 64);
  (* No torn entry: every cached canonical query re-normalizes to the very
     key it is stored under, and its epoch names exactly its tables. *)
  List.iter
    (fun (key, canonical, _plan, epoch, _hits, _cert) ->
      let c = Cqnf.of_query ~catalog canonical in
      check Alcotest.string "entry key is its own fingerprint" key
        (Cqnf.fingerprint c);
      let tables =
        List.sort_uniq compare
          (Array.to_list
             (Array.map (fun (r : Query.rel) -> r.Query.table)
                canonical.Query.rels))
      in
      check (Alcotest.list Alcotest.string) "epoch covers the entry's tables"
        tables (List.map fst epoch))
    (Plan_cache.entries (Service.cache service));
  Service.shutdown service

(* ---- satellite 3: a failing request cannot wedge the service ---- *)

let test_failing_request_keeps_serving () =
  let config = { Service.default_config with jobs = 2 } in
  let catalog, service = make_service ~scale:0.02 ~config () in
  let heavy = Job.find catalog "16b" in
  (* An absurd deadline kills the request mid-execution inside a worker
     domain; the failure must come back as Error, and the pool must keep
     answering afterwards. *)
  (match Service.query_bound service ~deadline_ms:0.000001 heavy with
   | Ok _ -> Alcotest.fail "deadline should have killed the request"
   | Error _ -> ());
  let q = Job.find catalog "1a" in
  let r = ok_response "after failure" (Service.query_bound service q) in
  check Alcotest.bool "still serving" true (r.Service.r_rows >= 0);
  (* And a burst of failures interleaved with successes. *)
  let futures =
    List.init 12 (fun i ->
        if i mod 2 = 0 then Service.submit_bound service ~deadline_ms:0.000001 heavy
        else Service.submit_bound service q)
  in
  let failures, successes =
    List.partition Result.is_error (List.map Rdb_util.Pool.await futures)
  in
  check Alcotest.int "all deadline requests failed" 6 (List.length failures);
  check Alcotest.int "all normal requests survived" 6 (List.length successes);
  Service.shutdown service;
  Service.shutdown service

(* ---- satellite 4: invalidation and revalidation ---- *)

let test_invalidation_exactly_once () =
  let catalog, service = make_service () in
  let q = Job.find catalog "1a" in
  ignore (Service.query_bound service q);
  Service.touch_table service "movie_keyword";
  let before = Metrics.snapshot () in
  let r = ok_response "stale" (Service.query_bound service q) in
  check Alcotest.bool "stale entry replanned" true
    (r.Service.r_cached = Service.Miss);
  let after = Metrics.snapshot () in
  check Alcotest.int "exactly one invalidation" 1
    (delta before after "cache.invalidations");
  check Alcotest.int "counted as a miss" 1 (delta before after "cache.misses");
  (* The replacement entry is fresh: the same query now hits, with no
     further invalidation. *)
  let before = Metrics.snapshot () in
  let r = ok_response "replacement" (Service.query_bound service q) in
  check Alcotest.bool "replacement hits" true (r.Service.r_cached = Service.Hit);
  let after = Metrics.snapshot () in
  check Alcotest.int "no second invalidation" 0
    (delta before after "cache.invalidations");
  (* Touching a table the query never reads leaves the entry fresh. *)
  Service.touch_table service "aka_name";
  let r = ok_response "unrelated" (Service.query_bound service q) in
  check Alcotest.bool "unrelated table does not invalidate" true
    (r.Service.r_cached = Service.Hit);
  Service.shutdown service

(* When the statistics move materially, the replacement plan may differ
   from the invalidated one — and must differ for at least one workload
   query when the histogram resolution collapses from 64 buckets to 2. *)
let test_invalidated_plan_can_change () =
  let config = { Service.default_config with cache_capacity = 128 } in
  let catalog, service = make_service ~scale:0.02 ~config () in
  let qs = List.filteri (fun i _ -> i < 20) (Job.all catalog) in
  let cache = Service.cache service in
  let shapes_before =
    List.filter_map
      (fun q ->
        ignore (Service.query_bound service q);
        let c = Cqnf.of_query ~catalog q in
        let key = Cqnf.fingerprint c in
        Option.map
          (fun plan ->
            let canonical = Cqnf.to_query ~name:q.Query.name c in
            (q, key, Plan.shape canonical plan))
          (Plan_cache.plan_of cache ~key))
      qs
  in
  check Alcotest.bool "cached some plans" true (List.length shapes_before >= 10);
  (* Collapse every histogram to 2 buckets, drop the MCVs: materially
     different estimates, identical data (so results stay correct). *)
  Service.refresh_stats service ~buckets:2 ~mcv_slots:0 ();
  let changed = ref 0 in
  List.iter
    (fun (q, key, shape) ->
      let r = ok_response q.Query.name (Service.query_bound service q) in
      check Alcotest.bool (q.Query.name ^ " invalidated") true
        (r.Service.r_cached = Service.Miss);
      match Plan_cache.plan_of cache ~key with
      | None -> ()
      | Some plan ->
        let canonical =
          Cqnf.to_query ~name:q.Query.name (Cqnf.of_query ~catalog q)
        in
        if not (String.equal shape (Plan.shape canonical plan)) then incr changed)
    shapes_before;
  check Alcotest.bool "some replacement plan changed shape" true (!changed > 0);
  Service.shutdown service

(* The revalidation path: staleness without material movement keeps the
   cached plan when the verifier's sound bounds cannot refute it. *)
let test_revalidation_keeps_plan () =
  let config = { Service.default_config with revalidate = true } in
  let catalog, service = make_service ~config () in
  let q = Job.find catalog "1a" in
  ignore (Service.query_bound service q);
  Service.touch_table service "title";
  let before = Metrics.snapshot () in
  let r = ok_response "revalidated" (Service.query_bound service q) in
  check Alcotest.bool "kept the plan" true
    (r.Service.r_cached = Service.Revalidated);
  let after = Metrics.snapshot () in
  check Alcotest.int "one revalidation" 1
    (delta before after "cache.revalidations");
  check Alcotest.int "counted as a hit" 1 (delta before after "cache.hits");
  check Alcotest.int "no invalidation" 0
    (delta before after "cache.invalidations");
  (* And the revalidated entry is fresh again: the next lookup is a plain
     hit, no second revalidation. *)
  let before = Metrics.snapshot () in
  let r = ok_response "then hits" (Service.query_bound service q) in
  check Alcotest.bool "plain hit" true (r.Service.r_cached = Service.Hit);
  let after = Metrics.snapshot () in
  check Alcotest.int "no second revalidation" 0
    (delta before after "cache.revalidations");
  Service.shutdown service

(* ---- re-optimization write-back ---- *)

let test_reopt_write_back () =
  let config =
    { Service.default_config with reopt = Some 2.0; cache_capacity = 128 }
  in
  let catalog, service = make_service ~scale:0.02 ~config () in
  let before = Metrics.snapshot () in
  let stepped = ref 0 in
  List.iter
    (fun q ->
      match Service.query_bound service q with
      | Ok r -> if r.Service.r_reopt_steps > 0 then incr stepped
      | Error e -> Alcotest.failf "%s: %s" q.Query.name e)
    (List.filteri (fun i _ -> i < 15) (Job.all catalog));
  let after = Metrics.snapshot () in
  check Alcotest.bool "some query re-optimized" true (!stepped > 0);
  check Alcotest.bool "improved plans written back" true
    (delta before after "cache.writebacks" > 0);
  Service.shutdown service

(* ---- admission control ---- *)

module Resource = Rdb_analysis.Resource

(* The certified peak of a query's default plan, probed on a twin session
   (same scale and seed as the service's own, hence same statistics and
   certificates). *)
let cert_hi session q =
  let prepared = Session.prepare session q in
  let plan, _, estimator = Session.plan prepared ~mode:Estimator.Default in
  Resource.mem_hi (Session.certify ~estimator prepared plan)

(* A budget strictly between a light query's certified peak and a heavy
   one's: the light query must serve, the heavy one must be rejected —
   and rejected again from the cached certificate on the hit path — while
   the service keeps answering. *)
let test_admission_rejects_over_budget () =
  let catalog, twin = make_session ~scale:0.02 () in
  let light = Job.find catalog "1a" in
  let heavy = Job.find catalog "16b" in
  let light_hi = cert_hi twin light and heavy_hi = cert_hi twin heavy in
  check Alcotest.bool "heavy certifies above light" true (heavy_hi > light_hi);
  let budget = (light_hi +. heavy_hi) /. 2.0 in
  let config = { Service.default_config with mem_budget = Some budget } in
  let _, service = make_service ~scale:0.02 ~config () in
  let before = Metrics.snapshot () in
  (match Service.query_bound service light with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "light query rejected: %s" e);
  (match Service.query_bound service heavy with
   | Ok _ -> Alcotest.fail "over-budget query served"
   | Error msg ->
     check Alcotest.bool "error names the budget" true
       (String.length msg >= 11 && String.sub msg 0 11 = "over-budget"));
  (* Again: the plan and certificate are cached now, so the second
     rejection must come from the hit path. *)
  let hits_before = Metrics.snapshot () in
  (match Service.query_bound service heavy with
   | Ok _ -> Alcotest.fail "over-budget query served on hit"
   | Error _ -> ());
  let after = Metrics.snapshot () in
  check Alcotest.int "rejected hit counted as cache hit" 1
    (delta hits_before after "cache.hits");
  check Alcotest.int "two rejections" 2 (delta before after "serve.rejected");
  check Alcotest.bool "light query admitted" true
    (delta before after "serve.admitted" >= 1);
  (* The rest of the workload still serves. *)
  let r = ok_response "after rejections" (Service.query_bound service light) in
  check Alcotest.bool "still serving" true (r.Service.r_rows >= 0);
  let json = Rdb_obs.Json.to_string (Service.resources_json service) in
  check Alcotest.bool "resources report is strict JSON" true
    (Rdb_obs.Json.is_valid json);
  Service.shutdown service

let test_admission_downgrades () =
  let catalog, twin = make_session ~scale:0.02 () in
  let light = Job.find catalog "1a" in
  let heavy = Job.find catalog "16b" in
  let light_hi = cert_hi twin light and heavy_hi = cert_hi twin heavy in
  let budget = (light_hi +. heavy_hi) /. 2.0 in
  let config =
    { Service.default_config with mem_budget = Some budget; downgrade = true }
  in
  let _, service = make_service ~scale:0.02 ~config () in
  let before = Metrics.snapshot () in
  let r = ok_response "downgraded" (Service.query_bound service heavy) in
  let after = Metrics.snapshot () in
  check Alcotest.int "downgrade counted" 1
    (delta before after "serve.downgraded");
  check Alcotest.int "not rejected" 0 (delta before after "serve.rejected");
  (* The downgraded run must agree with a cold plain execution. *)
  let cold = cold_run twin heavy in
  check (Alcotest.list values) "downgraded aggregates match cold run"
    cold.Rdb_exec.Executor.aggs r.Service.r_aggs;
  Service.shutdown service

let () =
  Alcotest.run "rdb_server"
    [
      ( "cache-key",
        [
          Alcotest.test_case "alias renaming preserves the key" `Quick
            test_key_alias_invariant;
          Alcotest.test_case "fingerprint injective on canonical forms" `Slow
            test_key_injective;
        ] );
      ( "service",
        [
          Alcotest.test_case "hit matches cold execution" `Quick
            test_hit_matches_cold;
          Alcotest.test_case "hits skip DPccp" `Quick test_hits_skip_dpccp;
          Alcotest.test_case "errors counted apart" `Quick
            test_errors_counted_apart;
          Alcotest.test_case "LRU bound and eviction" `Quick
            test_lru_bound_and_eviction;
          Alcotest.test_case "reopt write-back" `Slow test_reopt_write_back;
        ] );
      ( "stress",
        [
          Alcotest.test_case "concurrent clients match serial oracle" `Slow
            test_stress_matches_serial_oracle;
          Alcotest.test_case "failing request keeps serving" `Quick
            test_failing_request_keeps_serving;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "invalidation exactly once" `Quick
            test_invalidation_exactly_once;
          Alcotest.test_case "material stats change replans differently" `Slow
            test_invalidated_plan_can_change;
          Alcotest.test_case "revalidation keeps the plan" `Quick
            test_revalidation_keeps_plan;
        ] );
      ( "admission",
        [
          Alcotest.test_case "over-budget rejected, cache-hit path included"
            `Quick test_admission_rejects_over_budget;
          Alcotest.test_case "downgrade runs the re-opt loop" `Quick
            test_admission_downgrades;
        ] );
    ]
