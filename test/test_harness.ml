module Runner = Rdb_harness.Runner
module Experiments = Rdb_harness.Experiments

let check = Alcotest.check

(* One tiny lab shared by the whole file: building it is the expensive
   part. *)
let lab = lazy (Runner.create_lab ~scale:0.02 ~work_budget:50_000_000 ())

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else scan (i + 1)
  in
  scan 0

let test_lab_binds_workload () =
  let lab = Lazy.force lab in
  check Alcotest.int "113 queries" 113 (List.length (Runner.queries lab))

let test_run_query_caches () =
  let lab = Lazy.force lab in
  let q = Runner.query lab "1a" in
  let m1 = Runner.run_query lab Runner.Default q in
  let m2 = Runner.run_query lab Runner.Default q in
  check Alcotest.bool "cached (physically equal)" true (m1 == m2)

let test_config_names () =
  check Alcotest.string "default" "default" (Runner.config_name Runner.Default);
  check Alcotest.string "perfect" "perfect-4" (Runner.config_name (Runner.Perfect 4));
  check Alcotest.string "reopt" "reopt-32" (Runner.config_name (Runner.Reopt 32.0));
  check Alcotest.string "combo" "perfect-3+reopt-32"
    (Runner.config_name (Runner.Perfect_reopt (3, 32.0)))

let test_measurements_sane () =
  let lab = Lazy.force lab in
  let q = Runner.query lab "6d" in
  let m = Runner.run_query lab Runner.Default q in
  check Alcotest.bool "positive exec" true (m.Runner.m_exec_ms >= 0.0);
  check Alcotest.bool "positive plan" true (m.Runner.m_plan_ms >= 0.0);
  check Alcotest.int "rels" 5 m.Runner.m_rels;
  let r = Runner.run_query lab (Runner.Reopt 2.0) q in
  check Alcotest.bool "reopt steps recorded" true (r.Runner.m_steps >= 1)

let test_perfect_beats_default_on_workload () =
  let lab = Lazy.force lab in
  let default = Runner.run_workload lab Runner.Default in
  let perfect = Runner.run_workload lab Runner.Perfect_all in
  check Alcotest.bool "perfect total <= default total" true
    (Runner.total_exec_ms perfect <= Runner.total_exec_ms default)

let test_table3_text () =
  let s = Experiments.table3 () in
  check Alcotest.bool "has 17-row" true (contains ~needle:"17" s);
  check Alcotest.bool "has counts" true (contains ~needle:"113" s || contains ~needle:"21" s)

let test_skew_example_underestimates () =
  let s = Experiments.skew_example () in
  check Alcotest.bool "reports underestimate" true
    (contains ~needle:"under-estimation factor" s)

let test_fig3_4_text () =
  let lab = Lazy.force lab in
  let s = Experiments.fig3_4 lab in
  check Alcotest.bool "6d graph" true (contains ~needle:"graph 6d" s);
  check Alcotest.bool "18a graph" true (contains ~needle:"graph 18a" s)

let test_fig6_text () =
  let lab = Lazy.force lab in
  let s = Experiments.fig6 lab in
  check Alcotest.bool "has CREATE TEMP" true
    (contains ~needle:"CREATE TEMPORARY TABLE" s);
  check Alcotest.bool "has final select" true (contains ~needle:"Final SELECT" s)

let test_experiment_names () =
  check Alcotest.bool "all present" true
    (List.for_all
       (fun n -> List.mem n Experiments.names)
       [ "table1"; "table2"; "table3"; "table6"; "fig1"; "fig2"; "fig3_4";
         "skew"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9" ])

(* run_grid with 4 domains must reproduce the sequential run measurement
   for measurement on every deterministic field. Wall-clock fields are
   excluded, and the wall-clock deadline is pushed out of reach so only the
   deterministic work budget can cap a cell. *)
let test_run_grid_deterministic_across_jobs () =
  let fresh () =
    Runner.create_lab ~scale:0.02 ~work_budget:20_000_000 ~deadline_ms:1e9 ()
  in
  let configs = [ Runner.Default; Runner.Reopt 8.0 ] in
  let queries lab =
    List.filteri (fun i _ -> i < 10) (Runner.queries lab)
  in
  let lab1 = fresh () in
  let seq = Runner.run_grid ~jobs:1 ~queries:(queries lab1) lab1 configs in
  let lab4 = fresh () in
  let par = Runner.run_grid ~jobs:4 ~queries:(queries lab4) lab4 configs in
  List.iter2
    (fun (c1, ms1) (c4, ms4) ->
      check Alcotest.string "config order" (Runner.config_name c1)
        (Runner.config_name c4);
      List.iter2
        (fun (m1 : Runner.measurement) (m4 : Runner.measurement) ->
          let ctx field =
            Printf.sprintf "%s/%s %s" (Runner.config_name c1) m1.Runner.m_query field
          in
          check Alcotest.string (ctx "query") m1.Runner.m_query m4.Runner.m_query;
          check Alcotest.int (ctx "rels") m1.Runner.m_rels m4.Runner.m_rels;
          check Alcotest.int (ctx "work") m1.Runner.m_work m4.Runner.m_work;
          check Alcotest.bool (ctx "capped") m1.Runner.m_capped m4.Runner.m_capped;
          check Alcotest.int (ctx "steps") m1.Runner.m_steps m4.Runner.m_steps)
        ms1 ms4)
    seq par

(* A cell whose plan blows the work budget is recorded as capped, and the
   rest of the sweep still runs. *)
let test_budget_cap_is_per_cell () =
  (* 100 work units sits inside the range the first workload queries need
     at this scale, so the sweep mixes capped and uncapped cells. *)
  let lab = Runner.create_lab ~scale:0.02 ~work_budget:100 ~deadline_ms:1e9 () in
  let queries = List.filteri (fun i _ -> i < 8) (Runner.queries lab) in
  let grid = Runner.run_grid ~jobs:1 ~queries lab [ Runner.Default ] in
  let ms = List.assoc Runner.Default grid in
  check Alcotest.int "all cells measured" 8 (List.length ms);
  check Alcotest.bool "tiny budget caps some cells" true
    (List.exists (fun m -> m.Runner.m_capped) ms);
  check Alcotest.bool "sweep continues past capped cells" true
    (List.exists (fun m -> not m.Runner.m_capped) ms)

let test_unknown_experiment () =
  let lab = Lazy.force lab in
  check Alcotest.bool "raises" true
    (try ignore (Experiments.run lab "nope"); false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "rdb_harness"
    [
      ( "runner",
        [
          Alcotest.test_case "binds workload" `Quick test_lab_binds_workload;
          Alcotest.test_case "caches measurements" `Quick test_run_query_caches;
          Alcotest.test_case "config names" `Quick test_config_names;
          Alcotest.test_case "measurements sane" `Quick test_measurements_sane;
          Alcotest.test_case "perfect <= default" `Slow
            test_perfect_beats_default_on_workload;
          Alcotest.test_case "run_grid jobs=4 = jobs=1" `Slow
            test_run_grid_deterministic_across_jobs;
          Alcotest.test_case "budget cap is per-cell" `Quick
            test_budget_cap_is_per_cell;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table3 text" `Quick test_table3_text;
          Alcotest.test_case "skew example" `Quick test_skew_example_underestimates;
          Alcotest.test_case "fig3_4 text" `Quick test_fig3_4_text;
          Alcotest.test_case "fig6 text" `Quick test_fig6_text;
          Alcotest.test_case "experiment names" `Quick test_experiment_names;
          Alcotest.test_case "unknown rejected" `Quick test_unknown_experiment;
        ] );
    ]
