module Json = Rdb_obs.Json
module Metrics = Rdb_obs.Metrics
module Trace = Rdb_obs.Trace

let check = Alcotest.check

(* ---- Json ---- *)

let test_json_render () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2 ]);
        ("o", Json.Obj []);
      ]
  in
  check Alcotest.string "rendering"
    {|{"s":"a\"b\\c\nd","i":-42,"f":1.5,"b":true,"n":null,"l":[1,2],"o":{}}|}
    (Json.to_string doc);
  (* NaN / infinities have no JSON literal *)
  check Alcotest.string "nan" "null" (Json.to_string (Json.Float nan));
  check Alcotest.string "inf" "null" (Json.to_string (Json.Float infinity))

let test_json_roundtrip () =
  let docs =
    [
      Json.Null;
      Json.Bool false;
      Json.Int 0;
      Json.Int max_int;
      Json.Float (-0.125);
      Json.Str "";
      Json.Str "tab\there \x01 unicode-escapes";
      Json.List [ Json.Obj [ ("k", Json.List []) ]; Json.Null ];
      Json.Obj [ ("a", Json.Int 1); ("a", Json.Int 2) ];
    ]
  in
  List.iter
    (fun doc ->
      let s = Json.to_string doc in
      match Json.parse_opt s with
      | None -> Alcotest.failf "did not parse back: %s" s
      | Some doc' ->
        check Alcotest.string "round-trip" s (Json.to_string doc'))
    docs

let test_json_rejects () =
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "rejects %S" s) false
        (Json.is_valid s))
    [
      ""; "{"; "}"; "[1,]"; "{\"a\":}"; "{\"a\" 1}"; "tru"; "nul"; "01";
      "1 2"; "\"unterminated"; "{\"a\":1}{"; "[1,2"; "'single'"; "+1";
      "\"bad\\escape\\q\"";
    ];
  List.iter
    (fun s ->
      check Alcotest.bool (Printf.sprintf "accepts %S" s) true
        (Json.is_valid s))
    [ " null "; "[]"; "{}"; "-1.5e3"; "[{\"a\":[1,2,3]}]"; "\"\\u0041\"" ]

(* ---- Metrics ---- *)

let test_metrics_counters () =
  Metrics.reset ();
  Metrics.incr "t.hits";
  Metrics.incr ~by:41 "t.hits";
  Metrics.incr "t.other";
  let snap = Metrics.snapshot () in
  check Alcotest.int "sum" 42 (Metrics.counter snap "t.hits");
  check Alcotest.int "other" 1 (Metrics.counter snap "t.other");
  check Alcotest.int "absent is 0" 0 (Metrics.counter snap "t.nope")

let test_metrics_domains () =
  (* updates from several domains land in per-domain shards and merge *)
  Metrics.reset ();
  Metrics.incr ~by:10 "t.multi";
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 100 do
              Metrics.incr "t.multi";
              Metrics.observe "t.dist" 2.0
            done))
  in
  List.iter Domain.join workers;
  Metrics.observe "t.dist" 7.0;
  let snap = Metrics.snapshot () in
  check Alcotest.int "merged counter" 410 (Metrics.counter snap "t.multi");
  match List.assoc_opt "t.dist" snap.Metrics.stats with
  | None -> Alcotest.fail "missing stat"
  | Some st ->
    check Alcotest.int "stat count" 401 st.Metrics.count;
    check (Alcotest.float 1e-9) "stat sum" 807.0 st.Metrics.sum;
    check (Alcotest.float 1e-9) "stat min" 2.0 st.Metrics.min;
    check (Alcotest.float 1e-9) "stat max" 7.0 st.Metrics.max

let test_metrics_diff () =
  Metrics.reset ();
  Metrics.incr ~by:3 "t.a";
  Metrics.incr ~by:5 "t.b";
  let before = Metrics.snapshot () in
  Metrics.incr ~by:4 "t.a";
  Metrics.incr "t.c";
  let after = Metrics.snapshot () in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "deltas, zero deltas omitted"
    [ ("t.a", 4); ("t.c", 1) ]
    (Metrics.diff_counters ~after ~before);
  (* the snapshot renders as valid JSON *)
  check Alcotest.bool "snapshot json valid" true
    (Json.is_valid (Json.to_string (Metrics.to_json after)))

(* ---- Trace ---- *)

let test_trace_jsonl () =
  let path = Filename.temp_file "rdb_trace" ".jsonl" in
  Trace.set_sink (Trace.Jsonl (open_out path));
  check Alcotest.bool "enabled" true (Trace.enabled ());
  let v =
    Trace.span "outer" ~attrs:[ ("q", "6d") ] (fun () ->
        Trace.span "inner" (fun () -> ());
        Trace.event "point" ~attrs:[ ("k", "v\"quoted") ];
        17)
  in
  check Alcotest.int "span returns f's value" 17 v;
  (* a raising span still records, and re-raises *)
  (try Trace.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Trace.set_sink Trace.Null;
  (* closes the channel *)
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check Alcotest.int "four records" 4 (List.length lines);
  List.iter
    (fun line ->
      check Alcotest.bool "line is one valid JSON object" true
        (Json.is_valid line))
    lines;
  (* nesting depth: inner and the event sit one level below outer *)
  let depth_of line =
    match Json.parse_opt line with
    | Some (Json.Obj fields) ->
      (match List.assoc "depth" fields with
       | Json.Int d -> d
       | _ -> Alcotest.fail "depth not an int")
    | _ -> Alcotest.fail "unparsable line"
  in
  (* Jsonl records spans at close, so "inner" and "point" precede "outer" *)
  (match lines with
   | [ inner; point; outer; boom ] ->
     check Alcotest.int "inner depth" 1 (depth_of inner);
     check Alcotest.int "event depth" 1 (depth_of point);
     check Alcotest.int "outer depth" 0 (depth_of outer);
     check Alcotest.int "depth restored after raise" 0 (depth_of boom)
   | _ -> Alcotest.fail "unexpected record count");
  Sys.remove path

let test_trace_null_passthrough () =
  Trace.set_sink Trace.Null;
  check Alcotest.bool "disabled" false (Trace.enabled ());
  check Alcotest.int "span is f ()" 5 (Trace.span "noop" (fun () -> 5))

let () =
  Alcotest.run "rdb_obs"
    [
      ( "json",
        [
          Alcotest.test_case "render" `Quick test_json_render;
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "strict parser" `Quick test_json_rejects;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "multi-domain merge" `Quick test_metrics_domains;
          Alcotest.test_case "diff + json" `Quick test_metrics_diff;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl sink" `Quick test_trace_jsonl;
          Alcotest.test_case "null sink" `Quick test_trace_null_passthrough;
        ] );
    ]
