(* The static resource certifier, tested four ways:

   - soundness: across all 113 JOB queries and seeded random SPJ queries
     (QCheck over generator seeds), the certified memory/work/output
     hi-bounds dominate a real execution's observed peak_rows/work/out_rows,
     and the lo-bounds undercut them — the certificate's contract with the
     executor's deterministic counters;
   - exactness anchors: a single-table seq-scan query's certified work is a
     point interval equal to the executor's observed work, and the peak of
     any run is at least the root intermediate's slots;
   - the re-opt side: observed replan steps never exceed the structural
     certificate bound, the transition simulation terminates and reports
     trajectories within it, and the thrashing detector (seeded-mutant
     oscillation sequences) fires exactly on departed-and-revisited shapes;
   - findings/admission: a tiny budget yields the resource-over-budget
     error the server's admission controller keys on, a huge one does not. *)

module Query = Rdb_query.Query
module Session = Rdb_core.Session
module Reopt = Rdb_core.Reopt
module Trigger = Rdb_core.Trigger
module Estimator = Rdb_card.Estimator
module Executor = Rdb_exec.Executor
module Plan = Rdb_plan.Plan
module Prng = Rdb_util.Prng
module Relset = Rdb_util.Relset
module Finding = Rdb_analysis.Finding
module Resource = Rdb_analysis.Resource
module Interval = Rdb_cost.Interval
module Query_gen = Rdb_verify.Query_gen
module Job_queries = Rdb_imdb.Job_queries

let imdb ?(scale = 0.02) ?(seed = 11) () =
  let catalog = Rdb_imdb.Imdb_gen.generate ~seed ~scale () in
  let session = Session.create catalog in
  Session.analyze session;
  (catalog, session)

let lazy_db = lazy (imdb ())

let parse catalog ~name sql =
  match Rdb_sql.Binder.bind catalog ~name (Rdb_sql.Parser.parse sql) with
  | Ok q -> q
  | Error e -> failwith e

(* Work budget for property executions: large enough that JOB at scale
   0.02 never trips it, so lo-bound checks stay meaningful, while still
   bounding a certifier-regression disaster. *)
let budget = 200_000_000

let check_sound ~what session (q : Query.t) =
  let prepared = Session.prepare session q in
  let plan, _, estimator = Session.plan prepared ~mode:Estimator.Default in
  let cert = Session.certify ~estimator prepared plan in
  let name = Printf.sprintf "%s/%s" what q.Query.name in
  let contains label (i : Interval.t) v =
    let v = float_of_int v in
    if v > i.Interval.hi +. 0.5 then
      Alcotest.failf "%s: observed %s %.0f exceeds certified hi %.1f" name
        label v i.Interval.hi;
    if v < i.Interval.lo -. 0.5 then
      Alcotest.failf "%s: observed %s %.0f undercuts certified lo %.1f" name
        label v i.Interval.lo
  in
  match Session.execute ~work_budget:budget prepared plan with
  | res ->
    contains "work" cert.Resource.cert_work res.Executor.work;
    contains "peak memory" cert.Resource.cert_mem res.Executor.peak_rows;
    contains "output rows" cert.Resource.cert_out res.Executor.out_rows;
    (* the root intermediate alone is [out_rows x n_rels] slots *)
    if res.Executor.peak_rows < res.Executor.out_rows * Query.n_rels q then
      Alcotest.failf "%s: peak %d below the root intermediate's %d slots"
        name res.Executor.peak_rows
        (res.Executor.out_rows * Query.n_rels q);
    res.Executor.work
  | exception Executor.Work_budget_exceeded { spent; _ } ->
    (* A capped run still observed a prefix of the full execution, so the
       hi-bounds must dominate what was seen; lo-bounds only constrain
       complete runs. *)
    if float_of_int spent > cert.Resource.cert_work.Interval.hi +. 0.5 then
      Alcotest.failf "%s: capped work %d exceeds certified hi %.1f" name
        spent cert.Resource.cert_work.Interval.hi;
    spent

let test_job_soundness () =
  let _, session = Lazy.force lazy_db in
  let queries = Job_queries.all (Session.catalog session) in
  Alcotest.(check int) "workload size" 113 (List.length queries);
  let total =
    List.fold_left
      (fun acc q -> acc + check_sound ~what:"job" session q)
      0 queries
  in
  if total <= 0 then Alcotest.fail "JOB sweep did no work"

let test_gen_soundness =
  QCheck.Test.make ~count:60 ~name:"generated SPJ certificates are sound"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let catalog, session = Lazy.force lazy_db in
      let g = Query_gen.create ~catalog in
      let rng = Prng.create (seed + 1) in
      let q = Query_gen.gen g rng ~name:(Printf.sprintf "r%d" seed) in
      let (_ : int) = check_sound ~what:"gen" session q in
      true)

let test_seq_scan_work_is_exact () =
  let catalog, session = Lazy.force lazy_db in
  (* A single-relation count over title: planned as one sequential scan
     whose certified work is the point [N, N]. *)
  let q = parse catalog ~name:"scan1" "SELECT COUNT(*) FROM title AS t" in
  let prepared = Session.prepare session q in
  let plan, _, estimator = Session.plan prepared ~mode:Estimator.Default in
  let cert = Session.certify ~estimator prepared plan in
  let res = Session.execute prepared plan in
  let n = Table.nrows (Catalog.table_exn catalog "title") in
  Alcotest.(check (float 0.5)) "work lo" (float_of_int n)
    cert.Resource.cert_work.Interval.lo;
  Alcotest.(check (float 0.5)) "work hi" (float_of_int n)
    cert.Resource.cert_work.Interval.hi;
  Alcotest.(check int) "observed work" n res.Executor.work;
  Alcotest.(check int) "replans bounded by rels - 1" 0
    cert.Resource.cert_replans_hi

let test_reopt_steps_within_bound () =
  let _, session = Lazy.force lazy_db in
  let queries = Job_queries.all (Session.catalog session) in
  (* An aggressive threshold forces materializations on many queries. *)
  let trigger = Trigger.create 2.0 in
  let checked = ref 0 in
  let stepped = ref 0 in
  List.iteri
    (fun i q ->
      if i mod 7 = 0 then begin
        let prepared = Session.prepare session q in
        let plan, _, estimator =
          Session.plan prepared ~mode:Estimator.Default
        in
        let cert =
          Session.certify ~transitions:true ~threshold:2.0 ~estimator
            prepared plan
        in
        let outcome =
          Reopt.run ~work_budget:budget session ~trigger
            ~mode:Estimator.Default q
        in
        incr checked;
        let steps = List.length outcome.Reopt.steps in
        if steps > 0 then incr stepped;
        if steps > cert.Resource.cert_replans_hi then
          Alcotest.failf "%s: %d re-opt steps exceed certified bound %d"
            q.Query.name steps cert.Resource.cert_replans_hi;
        if outcome.Reopt.peak_rows < outcome.Reopt.final_exec.Executor.peak_rows
        then
          Alcotest.failf "%s: run peak below final execution's peak"
            q.Query.name;
        match cert.Resource.cert_reopt with
        | None -> Alcotest.failf "%s: transitions requested but absent" q.Query.name
        | Some ro ->
          if ro.Resource.ro_predicted_replans > cert.Resource.cert_replans_hi
          then
            Alcotest.failf "%s: predicted %d replans above structural bound %d"
              q.Query.name ro.Resource.ro_predicted_replans
              cert.Resource.cert_replans_hi
      end)
    queries;
  if !checked = 0 then Alcotest.fail "no queries checked";
  if !stepped = 0 then
    Alcotest.fail "threshold 2.0 forced no re-optimization at all"

let test_thrashing_detector () =
  let fires shapes = Resource.detect_oscillation shapes <> None in
  Alcotest.(check bool) "A B A oscillates" true (fires [ "A"; "B"; "A" ]);
  Alcotest.(check bool) "A B B A oscillates" true (fires [ "A"; "B"; "B"; "A" ]);
  Alcotest.(check bool) "A A is a fixpoint, not thrashing" false
    (fires [ "A"; "A" ]);
  Alcotest.(check bool) "monotone progress" false (fires [ "A"; "B"; "C" ]);
  Alcotest.(check bool) "empty" false (fires []);
  (match Resource.detect_oscillation [ "A"; "B"; "A"; "B" ] with
  | Some ("A", 0, 2) -> ()
  | Some (s, i, j) ->
    Alcotest.failf "wrong witness (%s, %d, %d), wanted (A, 0, 2)" s i j
  | None -> Alcotest.fail "A B A B must oscillate");
  (* A forced oscillation through the full findings pipeline: the mutant
     report is what a thrashing simulation produces, and the finding must
     carry the resource-thrashing code. *)
  let mutant_cert =
    {
      Resource.cert_shape = "A";
      cert_mem = { Interval.lo = 0.0; hi = 10.0 };
      cert_work = { Interval.lo = 0.0; hi = 10.0 };
      cert_out = { Interval.lo = 0.0; hi = 10.0 };
      cert_replans_hi = 3;
      cert_reopt =
        Some
          {
            Resource.ro_threshold = 32.0;
            ro_transitions = [];
            ro_predicted_replans = 2;
            ro_stable = true;
            ro_thrashing = Resource.detect_oscillation [ "A"; "B"; "A" ];
            ro_temp_slots_hi = 0.0;
          };
    }
  in
  let q =
    parse (fst (Lazy.force lazy_db)) ~name:"mutant"
      "SELECT COUNT(*) FROM title AS t"
  in
  let codes = List.map (fun f -> f.Finding.code) (Resource.findings q mutant_cert) in
  Alcotest.(check bool) "thrashing finding emitted" true
    (List.mem "resource-thrashing" codes)

let test_budget_findings () =
  let _, session = Lazy.force lazy_db in
  let queries = Job_queries.all (Session.catalog session) in
  let q = List.nth queries 20 in
  let prepared = Session.prepare session q in
  let plan, _, estimator = Session.plan prepared ~mode:Estimator.Default in
  let cert = Session.certify ~estimator prepared plan in
  let codes b =
    List.map (fun f -> f.Finding.code) (Resource.findings ~budget:b q cert)
  in
  Alcotest.(check bool) "tiny budget rejects" true
    (List.mem "resource-over-budget" (codes 1.0));
  Alcotest.(check bool) "huge budget admits" false
    (List.mem "resource-over-budget"
       (codes (Resource.mem_hi cert +. 1.0)));
  Alcotest.(check bool) "admitted cert carries summary" true
    (List.mem "resource-certificate"
       (codes (Resource.mem_hi cert +. 1.0)))

let test_json_roundtrip () =
  let _, session = Lazy.force lazy_db in
  let queries = Job_queries.all (Session.catalog session) in
  let q = List.hd queries in
  let prepared = Session.prepare session q in
  let plan, _, estimator = Session.plan prepared ~mode:Estimator.Default in
  let cert = Session.certify ~transitions:true ~estimator prepared plan in
  let s = Rdb_obs.Json.to_string (Resource.to_json cert) in
  Alcotest.(check bool) "certificate JSON is strict" true
    (Rdb_obs.Json.is_valid s)

let () =
  Alcotest.run "rdb_resource"
    [
      ( "soundness",
        [
          Alcotest.test_case "113 JOB certificates dominate execution" `Slow
            test_job_soundness;
          QCheck_alcotest.to_alcotest test_gen_soundness;
          Alcotest.test_case "seq-scan work certificate is exact" `Quick
            test_seq_scan_work_is_exact;
        ] );
      ( "reopt",
        [
          Alcotest.test_case "observed steps within certified bound" `Slow
            test_reopt_steps_within_bound;
          Alcotest.test_case "thrashing detector (seeded mutants)" `Quick
            test_thrashing_detector;
        ] );
      ( "admission",
        [
          Alcotest.test_case "budget findings" `Quick test_budget_findings;
          Alcotest.test_case "certificate JSON" `Quick test_json_roundtrip;
        ] );
    ]
